package plancache

import (
	"sort"
	"sync"

	"mikpoly/internal/tensor"
)

// trackerEpoch is the observation count between decay steps: every epoch the
// tracker halves all counts, so a shape that stops appearing fades out after
// a few epochs instead of pinning the hot set forever. Decay is driven by
// traffic volume rather than wall clock, which keeps the tracker fully
// deterministic for replayed traces.
const trackerEpoch = 1024

// Tracker maintains an exponentially decayed count per observed GEMM shape.
// It answers "which shapes are hot right now" for background pre-planning and
// snapshot flushes. Safe for concurrent use.
type Tracker struct {
	mu     sync.Mutex
	counts map[tensor.GemmShape]float64
	seen   int // observations since the last decay step
	total  uint64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{counts: make(map[tensor.GemmShape]float64)}
}

// Observe records one request for shape.
func (t *Tracker) Observe(shape tensor.GemmShape) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[shape]++
	t.total++
	t.seen++
	if t.seen >= trackerEpoch {
		t.seen = 0
		for s, c := range t.counts {
			c /= 2
			if c < 0.5 {
				delete(t.counts, s)
			} else {
				t.counts[s] = c
			}
		}
	}
}

// Hot returns up to n shapes ordered by decayed count, hottest first. Ties
// break on the shape's field order (M, N, K) so the result is deterministic
// regardless of map iteration order.
func (t *Tracker) Hot(n int) []tensor.GemmShape {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	type entry struct {
		shape tensor.GemmShape
		count float64
	}
	all := make([]entry, 0, len(t.counts))
	for s, c := range t.counts {
		all = append(all, entry{s, c})
	}
	t.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		a, b := all[i].shape, all[j].shape
		if a.M != b.M {
			return a.M < b.M
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return a.K < b.K
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]tensor.GemmShape, len(all))
	for i, e := range all {
		out[i] = e.shape
	}
	return out
}

// Len reports how many distinct shapes currently have non-zero weight.
func (t *Tracker) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.counts)
}

// Total reports the lifetime observation count (not decayed).
func (t *Tracker) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
