// Package plancache is MikPoly's persistent, shareable program-cache tier.
//
// The online polymerization stage makes planning cheap, but a cold replica
// still replans every shape it sees before its cache warms. This package
// serializes planned programs — together with everything that makes them
// valid: the library content hash, the planner algorithm version, the target
// hardware, and the health fingerprint each program was planned under — into
// a crash-safe snapshot artifact (the tune.SaveFile idiom: temp file, fsync,
// atomic rename, SHA-256 trailer). A new replica loads the snapshot and
// serves its first hot shapes with zero online plans; a snapshot whose
// compatibility envelope mismatches is rejected wholesale and the replica
// falls back to planning online, which is always correct, merely slower.
//
// Program identity is bitwise: an entry's fingerprint pairs the program's
// region layout with the IEEE-754 bit pattern of its estimated cost, the same
// convention as the BENCH_planner.json perf gate, so "the warm program equals
// the cold program" is checkable to the last bit.
package plancache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"mikpoly/internal/poly"
)

// Schema names the snapshot wire format; FormatVersion guards structural
// changes within it.
const (
	Schema        = "mikpoly-plancache/v1"
	FormatVersion = 1
)

// ErrIncompatible marks a structurally intact snapshot that must not be used
// by this process: wrong library hash, planner version, format, or hardware.
// Callers distinguish it from corruption only for diagnostics — either way
// the correct reaction is to drop the snapshot and plan online.
var ErrIncompatible = errors.New("plancache: snapshot incompatible")

// Entry is one cached program: the health fingerprint of the hardware view it
// was planned against ("" = pristine) plus the program itself and its bitwise
// cost fingerprint.
type Entry struct {
	// FP is the health-view fingerprint the program targets.
	FP string `json:"fp,omitempty"`
	// Program is the planned program verbatim (regions, pattern, estimated
	// cost, target hardware).
	Program *poly.Program `json:"program"`
	// CostBits is the IEEE-754 bit pattern (hex) of Program.EstimatedCost,
	// recorded redundantly so JSON round-trip drift is detectable.
	CostBits string `json:"cost_bits"`
}

// Fingerprint is the entry's bitwise identity: region layout + cost bits.
func (e Entry) Fingerprint() string {
	if e.Program == nil {
		return ""
	}
	return ProgramFingerprint(e.Program)
}

// ProgramFingerprint renders a program's bitwise identity — its region layout
// string paired with the exact cost bit pattern. Two programs with equal
// fingerprints are the same plan at the same modeled cost.
func ProgramFingerprint(p *poly.Program) string {
	return p.String() + "|" + CostBits(p)
}

// CostBits is the IEEE-754 bit pattern of the program's estimated cost, hex
// encoded — the BENCH_planner.json convention.
func CostBits(p *poly.Program) string {
	return fmt.Sprintf("%016x", math.Float64bits(p.EstimatedCost))
}

// Snapshot is one persisted program-cache image with its compatibility
// envelope.
type Snapshot struct {
	Schema        string `json:"schema"`
	FormatVersion int    `json:"format_version"`

	// PlannerVersion is poly.PlannerVersion at save time; LibraryHash the
	// tune.Library content digest; HW the hardware class name. All three
	// must match the loading replica exactly.
	PlannerVersion int    `json:"planner_version"`
	LibraryHash    string `json:"library_hash"`
	HW             string `json:"hw"`

	Entries []Entry `json:"entries"`
}

// New builds an empty snapshot bound to a library hash and hardware name.
func New(libraryHash, hwName string) *Snapshot {
	return &Snapshot{
		Schema:         Schema,
		FormatVersion:  FormatVersion,
		PlannerVersion: poly.PlannerVersion,
		LibraryHash:    libraryHash,
		HW:             hwName,
	}
}

// Validate checks the snapshot's internal integrity and its compatibility
// with a consumer holding libraryHash and hwName. Every rejection wraps
// ErrIncompatible; a nil error means every entry carries a valid program
// whose recorded cost bits match the program's actual cost.
func (s *Snapshot) Validate(libraryHash, hwName string) error {
	switch {
	case s == nil:
		return fmt.Errorf("%w: nil snapshot", ErrIncompatible)
	case s.Schema != Schema:
		return fmt.Errorf("%w: schema %q, want %q", ErrIncompatible, s.Schema, Schema)
	case s.FormatVersion != FormatVersion:
		return fmt.Errorf("%w: format version %d, want %d", ErrIncompatible, s.FormatVersion, FormatVersion)
	case s.PlannerVersion != poly.PlannerVersion:
		return fmt.Errorf("%w: planner version %d, want %d (programs may differ between planner generations)",
			ErrIncompatible, s.PlannerVersion, poly.PlannerVersion)
	case libraryHash == "":
		return fmt.Errorf("%w: consuming library has no content hash", ErrIncompatible)
	case s.LibraryHash != libraryHash:
		return fmt.Errorf("%w: library hash %.12s.. does not match %.12s.. (library retuned or reloaded)",
			ErrIncompatible, s.LibraryHash, libraryHash)
	case s.HW != hwName:
		return fmt.Errorf("%w: snapshot targets %s, consumer runs %s", ErrIncompatible, s.HW, hwName)
	}
	for i, e := range s.Entries {
		if e.Program == nil {
			return fmt.Errorf("%w: entry %d has no program", ErrIncompatible, i)
		}
		if err := e.Program.Validate(); err != nil {
			return fmt.Errorf("%w: entry %d (%v): %v", ErrIncompatible, i, e.Program.Shape, err)
		}
		if got := CostBits(e.Program); e.CostBits != got {
			return fmt.Errorf("%w: entry %d (%v): cost bits %s do not match program cost %s",
				ErrIncompatible, i, e.Program.Shape, e.CostBits, got)
		}
	}
	return nil
}

// checksumPrefix introduces the integrity trailer appended after the JSON
// document, mirroring the tune artifact format: json.Decoder stops at the end
// of the first value, so the trailer is invisible to Load's decoder and
// LoadFile verifies it explicitly.
const checksumPrefix = "#mikpoly-sha256:"

// Save writes the snapshot as indented JSON.
func (s *Snapshot) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("plancache: encoding snapshot: %w", err)
	}
	return nil
}

// Load restores a snapshot saved with Save. It checks structure only; call
// Validate to check compatibility with a concrete library.
func Load(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("plancache: decoding snapshot: %w", err)
	}
	return &s, nil
}

// SaveFile persists the snapshot to path crash-safely: written to a temporary
// file in the same directory, fsynced, and atomically renamed over path, so a
// crash mid-flush can never leave a torn snapshot where a complete one is
// expected. A SHA-256 trailer over the JSON payload lets LoadFile detect bit
// rot and partial copies.
func SaveFile(s *Snapshot, path string) error {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return err
	}
	sum := sha256.Sum256(buf.Bytes())
	fmt.Fprintf(&buf, "%s%s\n", checksumPrefix, hex.EncodeToString(sum[:]))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("plancache: saving snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("plancache: saving snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("plancache: saving snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("plancache: saving snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("plancache: saving snapshot: %w", err)
	}
	// Persist the rename itself: fsync the directory so the new name
	// survives a crash. Some filesystems refuse directory syncs; the data
	// is already durable, so that is not fatal.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile restores a snapshot written by SaveFile, verifying the SHA-256
// trailer before decoding. Any corruption — truncation, bit flips, a missing
// trailer — is rejected with an error rather than silently loading a damaged
// artifact; the caller falls back to online planning.
func LoadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("plancache: loading snapshot: %w", err)
	}
	i := bytes.LastIndex(data, []byte(checksumPrefix))
	if i < 0 {
		return nil, fmt.Errorf("plancache: snapshot %s: missing integrity trailer (truncated or not written by SaveFile)", path)
	}
	payload, trailer := data[:i], data[i+len(checksumPrefix):]
	want := string(bytes.TrimSpace(trailer))
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, fmt.Errorf("plancache: snapshot %s: checksum mismatch (artifact corrupted)", path)
	}
	s, err := Load(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("plancache: snapshot %s: %w", path, err)
	}
	return s, nil
}
