package plancache

import (
	"testing"

	"mikpoly/internal/tensor"
)

func TestTrackerHotOrdering(t *testing.T) {
	tr := NewTracker()
	a := tensor.GemmShape{M: 128, N: 768, K: 768}
	b := tensor.GemmShape{M: 384, N: 3072, K: 768}
	c := tensor.GemmShape{M: 8, N: 4096, K: 4096}
	for i := 0; i < 5; i++ {
		tr.Observe(b)
	}
	for i := 0; i < 3; i++ {
		tr.Observe(a)
	}
	tr.Observe(c)

	hot := tr.Hot(10)
	want := []tensor.GemmShape{b, a, c}
	if len(hot) != len(want) {
		t.Fatalf("Hot returned %d shapes, want %d", len(hot), len(want))
	}
	for i := range want {
		if hot[i] != want[i] {
			t.Fatalf("Hot[%d] = %v, want %v", i, hot[i], want[i])
		}
	}
	if got := tr.Hot(1); len(got) != 1 || got[0] != b {
		t.Fatalf("Hot(1) = %v, want [%v]", got, b)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Total() != 9 {
		t.Fatalf("Total = %d, want 9", tr.Total())
	}
}

// Ties must break on (M, N, K) so the hot set is stable across map iteration
// orders — snapshot flushes depend on that determinism.
func TestTrackerTieBreak(t *testing.T) {
	tr := NewTracker()
	shapes := []tensor.GemmShape{
		{M: 512, N: 512, K: 512},
		{M: 64, N: 4096, K: 64},
		{M: 64, N: 64, K: 4096},
		{M: 64, N: 64, K: 64},
	}
	for _, s := range shapes {
		tr.Observe(s)
	}
	want := []tensor.GemmShape{
		{M: 64, N: 64, K: 64},
		{M: 64, N: 64, K: 4096},
		{M: 64, N: 4096, K: 64},
		{M: 512, N: 512, K: 512},
	}
	for trial := 0; trial < 8; trial++ {
		hot := tr.Hot(10)
		for i := range want {
			if hot[i] != want[i] {
				t.Fatalf("trial %d: Hot[%d] = %v, want %v", trial, i, hot[i], want[i])
			}
		}
	}
}

// TestTrackerDecay drives exactly one epoch and checks the halving: shapes
// whose decayed weight drops below 0.5 vanish, heavier ones persist.
func TestTrackerDecay(t *testing.T) {
	tr := NewTracker()
	cold := tensor.GemmShape{M: 1, N: 1, K: 1}
	hotS := tensor.GemmShape{M: 2, N: 2, K: 2}
	tr.Observe(cold) // count 1: halves to 0.5 → survives one epoch
	for i := 0; i < trackerEpoch-1; i++ {
		tr.Observe(hotS)
	}
	// Epoch boundary hit on the last Observe above: cold 1→0.5, hot 1023→511.5.
	if tr.Len() != 2 {
		t.Fatalf("after one epoch: Len = %d, want 2 (cold at 0.5 survives)", tr.Len())
	}
	if got := tr.Hot(1); got[0] != hotS {
		t.Fatalf("hottest = %v, want %v", got[0], hotS)
	}

	// A second epoch without cold traffic: 0.5→0.25 < 0.5 → evicted.
	for i := 0; i < trackerEpoch; i++ {
		tr.Observe(hotS)
	}
	if tr.Len() != 1 {
		t.Fatalf("after second epoch: Len = %d, want 1 (cold shape faded out)", tr.Len())
	}
	if got := tr.Hot(10); len(got) != 1 || got[0] != hotS {
		t.Fatalf("Hot = %v, want [%v]", got, hotS)
	}
	if tr.Total() != uint64(2*trackerEpoch) {
		t.Fatalf("Total = %d, want %d (lifetime count is not decayed)", tr.Total(), 2*trackerEpoch)
	}
}

// A nil tracker is a no-op everywhere — callers never need to guard.
func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.Observe(tensor.GemmShape{M: 1, N: 1, K: 1})
	if tr.Hot(5) != nil {
		t.Fatal("nil tracker Hot must be nil")
	}
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("nil tracker counters must be zero")
	}
}
