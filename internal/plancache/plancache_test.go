// Torn-write and compatibility matrix for the snapshot artifact: every way a
// snapshot file can be damaged or go stale must reject cleanly — an error,
// never a panic, never a silently loaded wrong program.
package plancache_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/plancache"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func testOpts() tune.Options {
	return tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256}
}

// buildSnapshot plans a few shapes on a real compiler and exports them, so the
// matrix exercises genuine programs rather than hand-built stand-ins.
func buildSnapshot(t *testing.T) (*plancache.Snapshot, *core.Compiler) {
	t.Helper()
	lib, err := core.SharedLibrary(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewCompilerFromLibrary(lib)
	for _, s := range []tensor.GemmShape{
		{M: 128, N: 768, K: 768},
		{M: 384, N: 3072, K: 768},
		{M: 8, N: 4096, K: 4096},
	} {
		if _, err := c.Plan(s); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 3 {
		t.Fatalf("exported %d entries, want 3", len(snap.Entries))
	}
	return snap, c
}

func saveToTemp(t *testing.T, snap *plancache.Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plans.snap")
	if err := plancache.SaveFile(snap, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap, c := buildSnapshot(t)
	path := saveToTemp(t, snap)

	loaded, err := plancache.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(c.LibraryHash(), c.Hardware().Name); err != nil {
		t.Fatalf("round-tripped snapshot invalid: %v", err)
	}
	if len(loaded.Entries) != len(snap.Entries) {
		t.Fatalf("loaded %d entries, want %d", len(loaded.Entries), len(snap.Entries))
	}
	for i := range snap.Entries {
		want, got := snap.Entries[i].Fingerprint(), loaded.Entries[i].Fingerprint()
		if want != got {
			t.Errorf("entry %d fingerprint drifted through JSON:\n saved:  %s\n loaded: %s", i, want, got)
		}
	}
}

// TestSnapshotCorruptionMatrix damages the on-disk artifact in every way a
// torn write, partial copy, or bit rot can, and requires a clean rejection.
func TestSnapshotCorruptionMatrix(t *testing.T) {
	snap, _ := buildSnapshot(t)
	path := saveToTemp(t, snap)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated trailer", func(b []byte) []byte { return b[:len(b)-10] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)/2] }},
		{"flipped byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)/3] ^= 0x40
			return out
		}},
		{"missing trailer", func(b []byte) []byte {
			i := len(b) - 1
			for i > 0 && b[i] != '#' {
				i--
			}
			return b[:i]
		}},
		{"empty file", func([]byte) []byte { return nil }},
		{"trailer only", func(b []byte) []byte {
			i := len(b) - 1
			for i > 0 && b[i] != '#' {
				i--
			}
			return b[i:]
		}},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "damaged.snap")
			if err := os.WriteFile(p, tc.mangle(append([]byte(nil), pristine...)), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := plancache.LoadFile(p)
			if err == nil {
				t.Fatalf("damaged artifact loaded: %+v", s)
			}
		})
	}

	if _, err := plancache.LoadFile(filepath.Join(t.TempDir(), "nope.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want os.ErrNotExist", err)
	}
}

// TestSnapshotCompatibilityMatrix stales the envelope in every dimension and
// requires each to reject with ErrIncompatible.
func TestSnapshotCompatibilityMatrix(t *testing.T) {
	snap, c := buildSnapshot(t)
	libHash, hwName := c.LibraryHash(), c.Hardware().Name

	stale := []struct {
		name   string
		mangle func(*plancache.Snapshot)
	}{
		{"wrong schema", func(s *plancache.Snapshot) { s.Schema = "mikpoly-plancache/v0" }},
		{"future format version", func(s *plancache.Snapshot) { s.FormatVersion++ }},
		{"future planner version", func(s *plancache.Snapshot) { s.PlannerVersion++ }},
		{"stale library hash", func(s *plancache.Snapshot) { s.LibraryHash = "0123456789abcdef" }},
		{"wrong hardware", func(s *plancache.Snapshot) { s.HW = "ascend910" }},
		{"nil entry program", func(s *plancache.Snapshot) { s.Entries[1].Program = nil }},
		{"tampered cost bits", func(s *plancache.Snapshot) { s.Entries[0].CostBits = "0000000000000000" }},
	}
	for _, tc := range stale {
		t.Run(tc.name, func(t *testing.T) {
			path := saveToTemp(t, snap)
			loaded, err := plancache.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.mangle(loaded)
			if err := loaded.Validate(libHash, hwName); !errors.Is(err, plancache.ErrIncompatible) {
				t.Fatalf("got %v, want ErrIncompatible", err)
			}
		})
	}

	var nilSnap *plancache.Snapshot
	if err := nilSnap.Validate(libHash, hwName); !errors.Is(err, plancache.ErrIncompatible) {
		t.Fatalf("nil snapshot: got %v, want ErrIncompatible", err)
	}
	if err := snap.Validate("", hwName); !errors.Is(err, plancache.ErrIncompatible) {
		t.Fatalf("hashless consumer: got %v, want ErrIncompatible", err)
	}
	if err := snap.Validate(libHash, hwName); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}
