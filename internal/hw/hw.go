// Package hw defines the multi-level accelerator abstraction of MikPoly §3.1:
// H = (P_multi, M_local, M_global). A device is a set of identical processing
// engines (PEs), each with private local memory, sharing a global memory
// whose bandwidth is divided among active PEs. The presets model the two
// platforms of Table 1 — an NVIDIA A100 (PE = SM, M_local = shared
// memory/registers) and a Huawei Ascend 910A (PE = DaVinci core, M_local =
// L1/L0 buffers) — plus an A100 restricted to CUDA cores for the
// DietCode/Nimble comparison of Fig. 10, which excludes Tensor Cores.
package hw

import "fmt"

// Scheduler selects how pipelined tasks are placed onto PEs (§4): GPUs use
// the hardware's dynamic thread-block scheduler, NPUs need a static max-min
// allocation computed by the compiler.
type Scheduler int

const (
	// ScheduleDynamic models a GPU hardware scheduler: any idle PE grabs
	// the next ready task, so regions of a polymerized program overlap.
	ScheduleDynamic Scheduler = iota
	// ScheduleStaticMaxMin models the NPU: tasks are pre-assigned to PEs
	// with a max-min (longest-processing-time-first) allocation.
	ScheduleStaticMaxMin
)

func (s Scheduler) String() string {
	switch s {
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleStaticMaxMin:
		return "static-maxmin"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// Hardware is the abstraction H = (P_multi, M_local, M_global).
type Hardware struct {
	// Name identifies the preset in reports.
	Name string

	// NumPEs is |P_multi|, the number of processing engines.
	NumPEs int

	// LocalMemBytes is the capacity of M_local's staging storage on one
	// PE (shared memory / L1 buffer); micro-kernel operand tiles must fit
	// here.
	LocalMemBytes int

	// AccumBytes is the capacity of the accumulator storage on one PE
	// (the register file on GPUs, the L0C buffer on the DaVinci core);
	// a micro-kernel's output tile must fit here.
	AccumBytes int

	// FlopsPerCyclePE is the peak floating-point operations one PE
	// completes per cycle at 100% efficiency (2 ops per MAC).
	FlopsPerCyclePE float64

	// GlobalBytesPerCycle is the aggregate M_global bandwidth in bytes per
	// cycle; it is shared equally among PEs with in-flight transfers.
	GlobalBytesPerCycle float64

	// GlobalMemBytes is the capacity of M_global (device HBM), the budget
	// graph-level memory planning allocates inter-op tensors against.
	// 0 means unspecified: capacity planning treats the device as
	// unbounded (the per-operator experiments never spill).
	GlobalMemBytes int64

	// L2ReuseFactor is the effective traffic amplification the last-level
	// cache provides: concurrent tasks in the same output row/column band
	// share operand tiles, so DRAM sees only 1/L2ReuseFactor of the
	// per-PE load bytes. Both platforms carry a sizable L2 (40 MiB on
	// A100, 32 MiB on Ascend 910).
	L2ReuseFactor float64

	// ClockHz converts cycles to seconds for TFLOPS-style reporting.
	ClockHz float64

	// InputBytes / OutputBytes are element sizes of operands and results
	// (fp16 in, fp32 accumulate/out on both evaluated platforms).
	InputBytes  int
	OutputBytes int

	// MMAAlign is the matrix-unit native tile granularity (16 for both
	// Tensor Cores and the DaVinci cube unit); tile sizes that are not
	// multiples of it pay an efficiency penalty, and 1 disables the
	// matrix unit (CUDA-core preset).
	MMAAlign int

	// TaskStartupCycles is the fixed cost of launching one pipelined task
	// on a PE (pipeline fill: first load before compute can start).
	TaskStartupCycles float64

	// Scheduler is the task placement policy.
	Scheduler Scheduler
}

// Validate reports whether the description is internally consistent.
func (h Hardware) Validate() error {
	switch {
	case h.NumPEs <= 0:
		return fmt.Errorf("hw %q: NumPEs must be positive, got %d", h.Name, h.NumPEs)
	case h.LocalMemBytes <= 0:
		return fmt.Errorf("hw %q: LocalMemBytes must be positive, got %d", h.Name, h.LocalMemBytes)
	case h.AccumBytes <= 0:
		return fmt.Errorf("hw %q: AccumBytes must be positive, got %d", h.Name, h.AccumBytes)
	case h.FlopsPerCyclePE <= 0:
		return fmt.Errorf("hw %q: FlopsPerCyclePE must be positive, got %g", h.Name, h.FlopsPerCyclePE)
	case h.GlobalBytesPerCycle <= 0:
		return fmt.Errorf("hw %q: GlobalBytesPerCycle must be positive, got %g", h.Name, h.GlobalBytesPerCycle)
	case h.GlobalMemBytes < 0:
		return fmt.Errorf("hw %q: GlobalMemBytes must be non-negative, got %d", h.Name, h.GlobalMemBytes)
	case h.L2ReuseFactor < 1:
		return fmt.Errorf("hw %q: L2ReuseFactor must be >= 1, got %g", h.Name, h.L2ReuseFactor)
	case h.ClockHz <= 0:
		return fmt.Errorf("hw %q: ClockHz must be positive, got %g", h.Name, h.ClockHz)
	case h.InputBytes <= 0:
		return fmt.Errorf("hw %q: InputBytes must be positive, got %d", h.Name, h.InputBytes)
	case h.OutputBytes <= 0:
		return fmt.Errorf("hw %q: OutputBytes must be positive, got %d", h.Name, h.OutputBytes)
	case h.MMAAlign <= 0:
		return fmt.Errorf("hw %q: MMAAlign must be positive, got %d", h.Name, h.MMAAlign)
	case h.TaskStartupCycles < 0:
		return fmt.Errorf("hw %q: TaskStartupCycles must be non-negative", h.Name)
	}
	return nil
}

// PeakFLOPS returns the device peak in FLOP/s.
func (h Hardware) PeakFLOPS() float64 {
	return float64(h.NumPEs) * h.FlopsPerCyclePE * h.ClockHz
}

// FairShareBandwidth is the per-PE global bandwidth when every PE is active —
// the allocation the abstraction assumes when building micro-kernel
// performance models offline (§3.1: "M_global allocates its bandwidth equally
// across PEs").
func (h Hardware) FairShareBandwidth() float64 {
	return h.GlobalBytesPerCycle / float64(h.NumPEs)
}

// CyclesToSeconds converts simulated cycles to wall-clock seconds.
func (h Hardware) CyclesToSeconds(cycles float64) float64 {
	return cycles / h.ClockHz
}

// A100 models the NVIDIA A100 GPU of Table 1: 108 SMs, 192 KiB of combined
// shared memory + register file per SM, 312 TFLOPS fp16 Tensor Core peak at
// 1.41 GHz, and 1555 GB/s of HBM2e bandwidth.
func A100() Hardware {
	clock := 1.41e9
	return Hardware{
		Name:                "nvidia-a100",
		NumPEs:              108,
		LocalMemBytes:       192 * 1024,
		AccumBytes:          256 * 1024,           // 64K 32-bit registers per SM
		FlopsPerCyclePE:     312e12 / 108 / clock, // ≈2048 FLOP/cycle/SM
		GlobalBytesPerCycle: 1555e9 / clock,       // ≈1103 B/cycle
		GlobalMemBytes:      40 << 30,             // 40 GiB HBM2e
		L2ReuseFactor:       4,
		ClockHz:             clock,
		InputBytes:          2, // fp16 operands
		OutputBytes:         4, // fp32 accumulate
		MMAAlign:            16,
		TaskStartupCycles:   1200,
		Scheduler:           ScheduleDynamic,
	}
}

// A100CUDACores models the A100 with Tensor Cores disabled (19.5 TFLOPS fp32
// CUDA-core peak), the configuration used for the DietCode/Nimble comparison
// in §5.2.3 since those compilers target CUDA cores only.
func A100CUDACores() Hardware {
	h := A100()
	h.Name = "nvidia-a100-cudacores"
	h.FlopsPerCyclePE = 19.5e12 / 108 / h.ClockHz // ≈128 FLOP/cycle/SM
	h.InputBytes = 4                              // fp32 operands
	h.MMAAlign = 1                                // no matrix unit
	return h
}

// Ascend910 models the Huawei Ascend 910A NPU of Table 1: 32 DaVinci cores,
// 1 MiB L1 buffer per core, 256 TFLOPS fp16 cube peak at 1 GHz, 1200 GB/s
// HBM bandwidth, and compiler-directed static task allocation.
func Ascend910() Hardware {
	clock := 1.0e9
	return Hardware{
		Name:                "ascend-910a",
		NumPEs:              32,
		LocalMemBytes:       1024 * 1024,
		AccumBytes:          256 * 1024,          // L0C output buffer
		FlopsPerCyclePE:     256e12 / 32 / clock, // 8192 FLOP/cycle/core
		GlobalBytesPerCycle: 1200e9 / clock,      // 1200 B/cycle
		GlobalMemBytes:      32 << 30,            // 32 GiB HBM
		L2ReuseFactor:       4,
		ClockHz:             clock,
		InputBytes:          2,
		OutputBytes:         4,
		MMAAlign:            16,
		TaskStartupCycles:   2500,
		Scheduler:           ScheduleStaticMaxMin,
	}
}
