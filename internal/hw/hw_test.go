package hw

import (
	"math"
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, h := range []Hardware{A100(), A100CUDACores(), Ascend910()} {
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", h.Name, err)
		}
		if h.GlobalMemBytes <= 0 {
			t.Errorf("%s: preset must declare M_global capacity", h.Name)
		}
	}
}

func TestValidateCatchesEveryField(t *testing.T) {
	base := A100()
	mutations := []struct {
		name string
		mut  func(*Hardware)
	}{
		{"NumPEs", func(h *Hardware) { h.NumPEs = 0 }},
		{"LocalMemBytes", func(h *Hardware) { h.LocalMemBytes = -1 }},
		{"AccumBytes", func(h *Hardware) { h.AccumBytes = 0 }},
		{"FlopsPerCyclePE", func(h *Hardware) { h.FlopsPerCyclePE = 0 }},
		{"GlobalBytesPerCycle", func(h *Hardware) { h.GlobalBytesPerCycle = 0 }},
		{"GlobalMemBytes", func(h *Hardware) { h.GlobalMemBytes = -1 }},
		{"L2ReuseFactor", func(h *Hardware) { h.L2ReuseFactor = 0.5 }},
		{"ClockHz", func(h *Hardware) { h.ClockHz = 0 }},
		{"InputBytes", func(h *Hardware) { h.InputBytes = 0 }},
		{"OutputBytes", func(h *Hardware) { h.OutputBytes = 0 }},
		{"MMAAlign", func(h *Hardware) { h.MMAAlign = 0 }},
		{"TaskStartupCycles", func(h *Hardware) { h.TaskStartupCycles = -1 }},
	}
	for _, m := range mutations {
		h := base
		m.mut(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("mutation %s not caught", m.name)
		} else if !strings.Contains(err.Error(), m.name) {
			t.Errorf("mutation %s: error %q does not name the field", m.name, err)
		}
	}
}

func TestA100Peak(t *testing.T) {
	h := A100()
	if got := h.PeakFLOPS(); math.Abs(got-312e12)/312e12 > 1e-9 {
		t.Fatalf("A100 peak = %g, want 312e12", got)
	}
	if h.NumPEs != 108 {
		t.Fatalf("A100 SMs = %d", h.NumPEs)
	}
	if h.Scheduler != ScheduleDynamic {
		t.Fatal("A100 must use dynamic scheduling")
	}
}

func TestCUDACorePresetIsSlower(t *testing.T) {
	tc := A100()
	cc := A100CUDACores()
	ratio := tc.PeakFLOPS() / cc.PeakFLOPS()
	if ratio < 10 || ratio > 20 {
		t.Fatalf("tensor-core/CUDA-core peak ratio = %g, want ~16", ratio)
	}
	if cc.MMAAlign != 1 {
		t.Fatal("CUDA-core preset must disable the matrix unit")
	}
}

func TestAscend910(t *testing.T) {
	h := Ascend910()
	if got := h.PeakFLOPS(); math.Abs(got-256e12)/256e12 > 1e-9 {
		t.Fatalf("Ascend peak = %g, want 256e12", got)
	}
	if h.Scheduler != ScheduleStaticMaxMin {
		t.Fatal("Ascend must use static max-min allocation")
	}
	if h.NumPEs != 32 {
		t.Fatalf("Ascend cores = %d", h.NumPEs)
	}
}

func TestFairShareBandwidth(t *testing.T) {
	h := A100()
	want := h.GlobalBytesPerCycle / 108
	if got := h.FairShareBandwidth(); got != want {
		t.Fatalf("FairShareBandwidth = %g, want %g", got, want)
	}
}

func TestCyclesToSeconds(t *testing.T) {
	h := Ascend910() // 1 GHz makes this exact
	if got := h.CyclesToSeconds(2e9); got != 2.0 {
		t.Fatalf("CyclesToSeconds = %g, want 2", got)
	}
}

func TestSchedulerString(t *testing.T) {
	if ScheduleDynamic.String() != "dynamic" ||
		ScheduleStaticMaxMin.String() != "static-maxmin" ||
		Scheduler(9).String() != "Scheduler(9)" {
		t.Fatal("Scheduler.String mismatch")
	}
}
