package bench

import "testing"

// TestExtObsOverheadZeroDrift asserts the hard half of the overhead
// experiment: with tracing and metrics fully on, planner cost totals and
// graph device cycles are bit-identical to the unobserved run. The wall
// overhead column is reported by the experiment but not asserted here — CI
// machines are too noisy for a tight wall-clock bound to be a reliable test.
func TestExtObsOverheadZeroDrift(t *testing.T) {
	tb, err := ExtObsOverhead(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (planner sweep + llama2 decode)", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[2] != "no" {
			t.Fatalf("observation changed workload results (cycle drift): %v", r)
		}
		if c := speedupCell(t, tb, 0, 1); c <= 0 {
			t.Fatalf("implausible fingerprint %g: %v", c, r)
		}
	}
}
