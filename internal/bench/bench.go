// Package bench regenerates every table and figure of the paper's evaluation
// (§5–§6) on the simulator substrate. Each experiment is a function
// returning a Table whose rows mirror what the paper plots; cmd/mikpoly
// prints them and bench_test.go exposes them as testing.B benchmarks.
//
// Absolute numbers are substrate numbers, not A100/910A numbers; the claims
// being reproduced are the *shapes* — who wins, by roughly what factor, and
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured for
// every experiment.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mikpoly/internal/baseline"
	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// Config controls experiment scale.
type Config struct {
	// Quick subsamples the suites so the whole set runs in seconds;
	// full runs use the complete paper counts (1599 GEMM cases, 5485
	// convolutions, 150 sentences, ...).
	Quick bool

	// ScatterDir, when set, makes the operator-suite experiments write
	// per-case (FLOPs, speedup) series as CSV — the raw points behind the
	// paper's scatter figures (Figs. 6, 7 and 10), which the summary
	// tables alone cannot regenerate.
	ScatterDir string
}

// scatterWriter appends per-case scatter points for one experiment.
type scatterWriter struct {
	f *os.File
}

// newScatterWriter opens <dir>/<id>-scatter.csv, or returns nil when
// scatter output is disabled.
func newScatterWriter(cfg Config, id string, header []string) (*scatterWriter, error) {
	if cfg.ScatterDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(cfg.ScatterDir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(cfg.ScatterDir, id+"-scatter.csv"))
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(f, strings.Join(header, ","))
	return &scatterWriter{f: f}, nil
}

// point writes one row.
func (w *scatterWriter) point(cells ...any) {
	if w == nil {
		return
	}
	parts := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%g", v)
		default:
			parts[i] = fmt.Sprint(v)
		}
	}
	fmt.Fprintln(w.f, strings.Join(parts, ","))
}

// close finishes the file.
func (w *scatterWriter) close() error {
	if w == nil {
		return nil
	}
	return w.f.Close()
}

// gemmCases returns the suite size for GEMM-operator experiments.
func (c Config) gemmCases() int {
	if c.Quick {
		return 120
	}
	return 0 // no subsampling
}

// convCases returns the suite size for convolution experiments.
func (c Config) convCases() int {
	if c.Quick {
		return 120
	}
	return 0
}

// seqCount returns how many sentence lengths e2e language experiments use.
func (c Config) seqCount() int {
	if c.Quick {
		return 20
	}
	return 150
}

// Table is one regenerated figure or table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as RFC-4180-ish CSV (header row first); notes
// are emitted as trailing comment lines.
func (t *Table) WriteCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// planFn abstracts a system's planning entry point.
type planFn func(tensor.GemmShape) (*poly.Program, error)

// simCycles plans and simulates one shape under a system.
func simCycles(plan planFn, h hw.Hardware, s tensor.GemmShape) (float64, error) {
	prog, err := plan(s)
	if err != nil {
		return 0, err
	}
	return prog.Simulate(h).Cycles, nil
}

// mikpolyGPU builds (or reuses) the Tensor-Core MikPoly compiler.
func mikpolyGPU() (*core.Compiler, error) {
	lib, err := core.SharedLibrary(hw.A100(), tune.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return core.NewCompilerFromLibrary(lib), nil
}

// mikpolyNPU builds (or reuses) the Ascend MikPoly compiler.
func mikpolyNPU() (*core.Compiler, error) {
	lib, err := core.SharedLibrary(hw.Ascend910(), tune.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return core.NewCompilerFromLibrary(lib), nil
}

// mikpolyCUDA builds (or reuses) the CUDA-core MikPoly compiler used in the
// DietCode/Nimble comparisons, which exclude Tensor Cores (§5.2.3).
func mikpolyCUDA() (*core.Compiler, error) {
	lib, err := core.SharedLibrary(hw.A100CUDACores(), tune.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return core.NewCompilerFromLibrary(lib), nil
}

// table3Ranges is the declared range DietCode/Nimble receive for the Fig. 10
// operator comparison: the envelope of Table 3.
func table3Ranges() baseline.Ranges {
	return baseline.Ranges{
		M: baseline.Range{Lo: 1, Hi: 10752},
		N: baseline.Range{Lo: 1, Hi: 48000},
		K: baseline.Range{Lo: 1, Hi: 500000},
	}
}
