package bench

import (
	"fmt"
	"time"

	"mikpoly/internal/baseline"
	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/poly"
	"mikpoly/internal/stats"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
	"mikpoly/internal/workload"
)

// Fig12a reproduces Figure 12(a): the online polymerization cost as a
// fraction of total execution time across shapes, alongside cuBLAS and
// CUTLASS execution times (paper: the fraction is small and shrinks as the
// shape grows; MikPoly's search takes ~2 µs per shape on their setup).
func Fig12a(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	cublas := baseline.CuBLAS(h)
	cutlass := baseline.NewCutlass(h)

	t := &Table{
		ID:    "fig12a",
		Title: "Online polymerization overhead in end-to-end GEMM execution",
		Header: []string{"shape", "go-plan-us", "candidates", "overhead-cycles",
			"exec-cycles", "overhead%", "cuBLAS-rel", "CUTLASS-rel"},
	}
	shapes := []tensor.GemmShape{
		{M: 128, N: 1024, K: 4096},
		{M: 512, N: 1024, K: 4096},
		{M: 1024, N: 1024, K: 4096},
		{M: 2048, N: 1024, K: 4096},
		{M: 4096, N: 1024, K: 4096},
		{M: 8192, N: 1024, K: 4096},
	}
	for _, s := range shapes {
		prog, st, err := mik.PlanUncached(s)
		if err != nil {
			return nil, err
		}
		planCycles := st.ModeledOverheadCycles()
		exec := prog.Simulate(h).Cycles
		vc, err := simCycles(cublas.Plan, h, s)
		if err != nil {
			return nil, err
		}
		cc, err := simCycles(cutlass.Plan, h, s)
		if err != nil {
			return nil, err
		}
		total := planCycles + exec
		t.AddRow(s.String(), float64(st.Elapsed.Microseconds()), st.Candidates,
			planCycles, exec, 100*planCycles/total, vc/total, cc/total)
	}
	t.Note("overhead-cycles models the paper's optimized runtime at %.0f cycles per costed candidate; go-plan-us is this Go implementation's wall-clock", poly.OnlineCostPerCandidate)
	t.Note("cuBLAS-rel / CUTLASS-rel: baseline execution time relative to MikPoly plan+exec (>1 means MikPoly wins including overhead)")
	return t, nil
}

// Fig12b reproduces Figure 12(b): cost-model ablation. Every variant's
// simulated performance is normalized to MikPoly-Oracle, which exhaustively
// simulates all candidates (paper: MikPoly 0.96x, Wave 0.81x, Pipe 0.72x,
// CUTLASS 0.45x; Oracle needs ~1.6 s per shape vs ~2 µs for MikPoly).
func Fig12b(cfg Config) (*Table, error) {
	h := hw.A100()
	lib, err := core.SharedLibrary(h, tune.DefaultOptions())
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		cost poly.CostModel
	}{
		{"MikPoly", poly.CostFull},
		{"MikPoly-Wave", poly.CostWaveOnly},
		{"MikPoly-Pipe", poly.CostPipeOnly},
	}
	oracle := poly.NewPlanner(lib)
	oracle.Cost = poly.CostOracle
	cutlass := baseline.NewCutlass(h)

	n := 30
	if !cfg.Quick {
		n = 120
	}
	cases := workload.Subsample(workload.Table3Suite(), n)

	rel := make(map[string][]float64)
	var oracleTime, mikTime time.Duration
	for _, c := range cases {
		t0 := time.Now()
		po, _, err := oracle.Plan(c.Shape)
		if err != nil {
			return nil, err
		}
		oracleTime += time.Since(t0)
		oc := po.EstimatedCost // oracle scores are simulated cycles
		for _, v := range variants {
			pl := poly.NewPlanner(lib)
			pl.Cost = v.cost
			t0 = time.Now()
			p, _, err := pl.Plan(c.Shape)
			if err != nil {
				return nil, err
			}
			if v.cost == poly.CostFull {
				mikTime += time.Since(t0)
			}
			rel[v.name] = append(rel[v.name], oc/p.Simulate(h).Cycles)
		}
		cc, err := simCycles(cutlass.Plan, h, c.Shape)
		if err != nil {
			return nil, err
		}
		rel["CUTLASS"] = append(rel["CUTLASS"], oc/cc)
	}

	t := &Table{
		ID:     "fig12b",
		Title:  "Cost-model ablation (performance normalized to MikPoly-Oracle)",
		Header: []string{"variant", "mean", "geomean", "min", "cases"},
	}
	for _, name := range []string{"MikPoly", "MikPoly-Wave", "MikPoly-Pipe", "CUTLASS"} {
		s := stats.Summarize(rel[name])
		t.AddRow(name, s.Mean, s.Geomean, s.Min, s.N)
	}
	t.Note("oracle search %.1f ms/shape vs MikPoly %.1f us/shape",
		float64(oracleTime.Microseconds())/float64(len(cases))/1000,
		float64(mikTime.Microseconds())/float64(len(cases)))
	return t, nil
}

// Fig13 reproduces Figure 13: sensitivity of the offline hyperparameters
// n_gen, n_syn and n_mik. Each sweep regenerates the library at one setting
// and reports the mean GEMM speedup over cuBLAS (paper: performance
// saturates around n_gen=32, n_syn=12, n_mik=40).
func Fig13(cfg Config) (*Table, error) {
	h := hw.A100()
	cublas := baseline.CuBLAS(h)
	n := 60
	if !cfg.Quick {
		n = 200
	}
	cases := workload.Subsample(workload.Table3Suite(), n)

	eval := func(opt tune.Options) (float64, error) {
		lib, err := core.SharedLibrary(h, opt)
		if err != nil {
			return 0, err
		}
		mik := core.NewCompilerFromLibrary(lib)
		var spd []float64
		for _, c := range cases {
			mc, err := simCycles(mik.Plan, h, c.Shape)
			if err != nil {
				return 0, err
			}
			vc, err := simCycles(cublas.Plan, h, c.Shape)
			if err != nil {
				return 0, err
			}
			spd = append(spd, vc/mc)
		}
		return stats.Mean(spd), nil
	}

	t := &Table{
		ID:     "fig13",
		Title:  "Hyperparameter sensitivity (mean GEMM speedup over cuBLAS)",
		Header: []string{"parameter", "value", "speedup"},
	}
	base := tune.DefaultOptions()
	genSweep := []int{4, 8, 16, 32, 40}
	synSweep := []int{0, 3, 6, 9, 12, 15}
	mikSweep := []int{5, 10, 20, 40, 60}
	if cfg.Quick {
		genSweep = []int{8, 32}
		synSweep = []int{3, 12}
		mikSweep = []int{10, 40}
	}
	for _, v := range genSweep {
		opt := base
		opt.NGen = v
		s, err := eval(opt)
		if err != nil {
			return nil, err
		}
		t.AddRow("n_gen", v, s)
	}
	for _, v := range synSweep {
		opt := base
		opt.NSyn = v
		s, err := eval(opt)
		if err != nil {
			return nil, err
		}
		t.AddRow("n_syn", v, s)
	}
	for _, v := range mikSweep {
		opt := base
		opt.NMik = v
		s, err := eval(opt)
		if err != nil {
			return nil, err
		}
		t.AddRow("n_mik", v, s)
	}
	return t, nil
}

// Table9 reproduces the §6 case study on (4096, 1024, 4096): the
// single-kernel program GEMM-A vs the polymerized two-region program
// GEMM-AB, with the Table 9 hardware counters (paper: sm_efficiency rises
// from 58.9% to ~87%, speedup ≈1.21x on GPU) plus the Fig. 15(a) sweep of M.
func Table9(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	// GEMM-A is the program a wave-oblivious static tuner builds: the
	// single micro-kernel with the best steady-state throughput on one
	// PE (the paper's kernel A, a large tile — oblivious to how its grid
	// quantizes into waves). GEMM-AB is MikPoly's polymerized program.
	var aKern kernel.MicroKernel
	bestTput := 0.0
	for _, k := range mik.Library().Kernels {
		flops := 64 * 2 * float64(k.UM) * float64(k.UN) * float64(k.UK)
		if tput := flops / tune.MeasureTaskCost(h, k, 64); tput > bestTput {
			bestTput = tput
			aKern = k
		}
	}
	planSingle := func(s tensor.GemmShape) (*poly.Program, error) {
		p := &poly.Program{
			Shape:   s,
			Pattern: poly.PatternI,
			Regions: []poly.Region{{M0: 0, N0: 0, M: s.M, N: s.N, K: s.K, Kern: aKern}},
		}
		return p, p.Validate()
	}
	shape := tensor.GemmShape{M: 4096, N: 1024, K: 4096}
	single, err := planSingle(shape)
	if err != nil {
		return nil, err
	}
	multi, err := mik.Plan(shape)
	if err != nil {
		return nil, err
	}
	rs := single.Simulate(h)
	rm := multi.Simulate(h)

	t := &Table{
		ID:     "table9",
		Title:  "Case study (4096, 1024, 4096): single kernel vs polymerized program",
		Header: []string{"program", "regions", "grid", "waves", "sm_eff%", "cycles", "speedup"},
	}
	t.AddRow(fmt.Sprintf("GEMM-A (%v)", aKern), len(single.Regions), rs.NumTasks,
		rs.Waves(), 100*rs.Efficiency(), rs.Cycles, 1.0)
	t.AddRow(fmt.Sprintf("GEMM-AB (pattern %s)", multi.Pattern), len(multi.Regions),
		rm.NumTasks, rm.Waves(), 100*rm.Efficiency(), rm.Cycles, rs.Cycles/rm.Cycles)

	// Fig. 15(a): sweep M in [1024, 4096] stride 256 — MikPoly vs the
	// static-tuner single-kernel program.
	for m := 1024; m <= 4096; m += 256 {
		s := tensor.GemmShape{M: m, N: 1024, K: 4096}
		ps, err := planSingle(s)
		if err != nil {
			return nil, err
		}
		pm, err := mik.Plan(s)
		if err != nil {
			return nil, err
		}
		rsw := ps.Simulate(h)
		rmw := pm.Simulate(h)
		t.AddRow(fmt.Sprintf("M=%d", m), len(pm.Regions), rmw.NumTasks, rmw.Waves(),
			100*rmw.Efficiency(), rmw.Cycles, rsw.Cycles/rmw.Cycles)
	}
	return t, nil
}

// AblationPatterns measures the value of the NPU's full pattern set against
// the GPU subset (design choice called out in DESIGN.md §6).
func AblationPatterns(cfg Config) (*Table, error) {
	h := hw.Ascend910()
	lib, err := core.SharedLibrary(h, tune.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cann := baseline.CANN(h)
	n := 60
	if !cfg.Quick {
		n = 200
	}
	cases := workload.Subsample(workload.Table3Suite(), n)

	t := &Table{
		ID:     "ablation-patterns",
		Title:  "Pattern-set ablation on the NPU (speedup over CANN)",
		Header: []string{"pattern set", "mean", "geomean", "max", "cases"},
	}
	for _, row := range []struct {
		name string
		pats []poly.PatternID
	}{
		{"I only", []poly.PatternID{poly.PatternI}},
		{"I-II (GPU subset)", poly.GPUPatterns()},
		{"I-IX (full)", poly.NPUPatterns()},
	} {
		pl := poly.NewPlanner(lib)
		pl.Patterns = row.pats
		var spd []float64
		for _, c := range cases {
			prog, _, err := pl.Plan(c.Shape)
			if err != nil {
				return nil, err
			}
			vc, err := simCycles(cann.Plan, h, c.Shape)
			if err != nil {
				return nil, err
			}
			spd = append(spd, vc/prog.Simulate(h).Cycles)
		}
		s := stats.Summarize(spd)
		t.AddRow(row.name, s.Mean, s.Geomean, s.Max, s.N)
	}
	return t, nil
}

// AblationPruning measures the branch-and-bound anchor pruning: same chosen
// programs, fewer candidates, lower online latency (§3.5).
func AblationPruning(cfg Config) (*Table, error) {
	h := hw.A100()
	lib, err := core.SharedLibrary(h, tune.DefaultOptions())
	if err != nil {
		return nil, err
	}
	n := 80
	if !cfg.Quick {
		n = 300
	}
	cases := workload.Subsample(workload.Table3Suite(), n)

	t := &Table{
		ID:     "ablation-pruning",
		Title:  "Branch-and-bound strategy pruning",
		Header: []string{"pruning", "candidates", "pruned-anchors", "plan-us/shape", "cost-identical"},
	}
	run := func(disable bool) (cand, pruned int, us float64, costs []float64, err error) {
		pl := poly.NewPlanner(lib)
		pl.DisablePruning = disable
		var elapsed time.Duration
		for _, c := range cases {
			prog, st, err := pl.Plan(c.Shape)
			if err != nil {
				return 0, 0, 0, nil, err
			}
			cand += st.Candidates
			pruned += st.PrunedAnchors
			elapsed += st.Elapsed
			costs = append(costs, prog.EstimatedCost)
		}
		return cand, pruned, float64(elapsed.Microseconds()) / float64(len(cases)), costs, nil
	}
	cOn, pOn, usOn, costOn, err := run(false)
	if err != nil {
		return nil, err
	}
	cOff, _, usOff, costOff, err := run(true)
	if err != nil {
		return nil, err
	}
	identical := true
	for i := range costOn {
		if costOn[i] != costOff[i] {
			identical = false
			break
		}
	}
	t.AddRow("on", cOn, pOn, usOn, fmt.Sprint(identical))
	t.AddRow("off", cOff, 0, usOff, "-")
	return t, nil
}
