package bench

import (
	"strconv"
	"testing"
)

func TestFig8LanguageModels(t *testing.T) {
	tb, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 models", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		mik := speedupCell(t, tb, i, 1)
		if mik < 1.0 {
			t.Errorf("%s: e2e speedup %.2f < 1 (paper 1.36-1.39)", row[0], mik)
		}
		if mik > 3.0 {
			t.Errorf("%s: e2e speedup %.2f implausibly high", row[0], mik)
		}
	}
}

func TestFig9CNNs(t *testing.T) {
	for _, npu := range []bool{false, true} {
		tb, err := Fig9(quickCfg(), npu)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Rows) != 4 {
			t.Fatalf("rows = %d, want 4 models", len(tb.Rows))
		}
		for i, row := range tb.Rows {
			mik := speedupCell(t, tb, i, 1)
			if mik < 0.95 {
				t.Errorf("npu=%v %s: e2e speedup %.2f < 0.95", npu, row[0], mik)
			}
		}
	}
}

func TestTable5InvalidRuns(t *testing.T) {
	tb, err := Table5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tb.Rows {
		dietInvalid, _ := strconv.Atoi(row[3])
		mikInvalid, _ := strconv.Atoi(row[5])
		if mikInvalid != 0 {
			t.Errorf("%s: MikPoly had %d invalid runs, must be 0", row[0], mikInvalid)
		}
		if dietInvalid == 0 {
			t.Errorf("%s: DietCode had no invalid runs; lengths outside [8,256] must fail", row[0])
		}
		if spd := speedupCell(t, tb, i, 1); spd < 1.0 {
			t.Errorf("%s: vs DietCode %.2f < 1 (paper ~1.55)", row[0], spd)
		}
	}
}

func TestTable8LlamaOperators(t *testing.T) {
	tb, err := Table8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 operators", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		spd := speedupCell(t, tb, i, 3)
		if spd < 0.95 || spd > 3 {
			t.Errorf("%s: operator speedup %.2f outside plausible band (paper 1.08-1.24)", row[0], spd)
		}
	}
}

func TestFig11LlamaE2E(t *testing.T) {
	tb, err := Fig11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 batch sizes", len(tb.Rows))
	}
	first := speedupCell(t, tb, 0, 1)
	last := speedupCell(t, tb, 3, 1)
	for i := range tb.Rows {
		spd := speedupCell(t, tb, i, 1)
		if spd < 0.95 || spd > 1.6 {
			t.Errorf("batch %s: e2e speedup %.2f outside plausible band (paper 1.01-1.05)",
				tb.Rows[i][0], spd)
		}
	}
	if last > first+0.05 {
		t.Errorf("gains should shrink with batch (paper 1.05 -> 1.01): b1=%.2f b8=%.2f", first, last)
	}
}

func TestFig12aOverheadSmallAndShrinking(t *testing.T) {
	tb, err := Fig12a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := 101.0
	for i := range tb.Rows {
		ov := speedupCell(t, tb, i, 5)
		if ov > 30 {
			t.Errorf("%s: overhead %.1f%% too large", tb.Rows[i][0], ov)
		}
		if i == len(tb.Rows)-1 && ov > prev {
			t.Errorf("overhead should shrink with shape: %.2f%% -> %.2f%%", prev, ov)
		}
		prev = ov
	}
}

func TestFig13Saturates(t *testing.T) {
	tb, err := Fig13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Per parameter: the larger setting must not be dramatically worse
	// than the smaller one (saturation, not regression).
	byParam := map[string][]float64{}
	for i, row := range tb.Rows {
		byParam[row[0]] = append(byParam[row[0]], speedupCell(t, tb, i, 2))
	}
	for p, vals := range byParam {
		if len(vals) < 2 {
			t.Fatalf("%s: only %d sweep points", p, len(vals))
		}
		last := vals[len(vals)-1]
		first := vals[0]
		if last < first*0.9 {
			t.Errorf("%s: larger setting regressed: %.2f -> %.2f", p, first, last)
		}
	}
}

func TestAblationPatternsMonotone(t *testing.T) {
	tb, err := AblationPatterns(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	only1 := speedupCell(t, tb, 0, 1)
	full := speedupCell(t, tb, 2, 1)
	if full < only1*0.98 {
		t.Errorf("full pattern set (%.2f) should not trail pattern I alone (%.2f)", full, only1)
	}
}
