package bench

import (
	"context"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/graphrt"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/tune"
)

// ExtGraphRT measures the graph runtime's plan-ahead pipeline on Llama2
// decode graphs: with a cold plan cache, how much of the online
// polymerization wall time does running planning concurrently with
// execution hide? Each mode gets a fresh compiler so both plan every shape
// from scratch; device cycles must be identical across modes (planning
// never changes the chosen programs, only when they are produced).
func ExtGraphRT(cfg Config) (*Table, error) {
	lib, err := core.SharedLibrary(hw.A100(), tune.DefaultOptions())
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ext-graphrt",
		Title: "Graph runtime: plan-ahead vs sequential planning (Llama2 decode, cold cache)",
		Header: []string{"graph", "cycles", "cycles-match", "plan-ms-seq", "stall-ms-seq",
			"plan-ms-ahead", "stall-ms-ahead", "hidden-frac"},
	}

	run := func(g nn.Graph, ahead int) (graphrt.Report, error) {
		// A fresh compiler per run keeps the plan cache cold: the pipeline
		// must hide real polymerization work, not cache hits.
		rt := graphrt.New(core.NewCompilerFromLibrary(lib), graphrt.Config{PlanAhead: ahead})
		return rt.Execute(context.Background(), g)
	}
	msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	kvs := []int{128, 512, 2048}
	if cfg.Quick {
		kvs = kvs[:2]
	}
	for _, kv := range kvs {
		g := nn.Llama2Decode(4, kv)
		seq, err := run(g, 0)
		if err != nil {
			return nil, err
		}
		pa, err := run(g, 4)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name, pa.Cycles, boolCell(seq.Cycles == pa.Cycles),
			msOf(seq.PlanWall), msOf(seq.StallWall),
			msOf(pa.PlanWall), msOf(pa.StallWall), pa.HiddenFraction())
	}
	t.Note("cycles-match: plan-ahead and sequential execution cost identical device cycles")
	t.Note("hidden-frac: share of plan-ahead planning wall time overlapped with execution")
	return t, nil
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
