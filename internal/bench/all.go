package bench

// Experiment pairs an experiment ID with its generator.
type Experiment struct {
	ID  string
	Run func(Config) (*Table, error)
}

// Experiments lists every regenerable figure and table in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", Fig1},
		{"fig6-gemm", Fig6GEMM},
		{"fig6-conv", Fig6Conv},
		{"fig7-gemm", Fig7GEMM},
		{"fig7-conv", Fig7Conv},
		{"fig8", Fig8},
		{"fig9", func(c Config) (*Table, error) { return Fig9(c, false) }},
		{"fig9-npu", func(c Config) (*Table, error) { return Fig9(c, true) }},
		{"fig10", Fig10},
		{"table5", Table5},
		{"table8", Table8},
		{"fig11", Fig11},
		{"fig12a", Fig12a},
		{"fig12b", Fig12b},
		{"fig13", Fig13},
		{"table9", Table9},
		{"ablation-patterns", AblationPatterns},
		{"ablation-pruning", AblationPruning},
		{"ablation-winograd", AblationWinograd},
		{"ablation-fusion", AblationFusion},
		{"ablation-splitk", AblationSplitK},
		{"ablation-evolve", AblationEvolve},
		{"ext-detection", ExtDetection},
		{"ext-graphrt", ExtGraphRT},
		{"ext-obs-overhead", ExtObsOverhead},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
