package bench

import (
	"fmt"

	"mikpoly/internal/baseline"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/stats"
	"mikpoly/internal/workload"
)

// Table8 reproduces Table 8: the four Llama2-13b GEMM operators under 4-way
// tensor parallelism, speedups over cuBLAS averaged across the dynamic token
// dimension (paper: qkv 1.09x, o_proj 1.24x, ffn_up 1.21x, ffn_down 1.08x).
func Table8(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	cublas := baseline.CuBLAS(h)

	t := &Table{
		ID:     "table8",
		Title:  "Llama2-13b GEMM operators vs cuBLAS (N = dynamic token count)",
		Header: []string{"layer", "M", "K", "speedup", "max", "cases"},
	}
	byOp := map[string][]float64{}
	for _, c := range workload.Table8Suite() {
		mc, err := simCycles(mik.Plan, h, c.Shape)
		if err != nil {
			return nil, err
		}
		vc, err := simCycles(cublas.Plan, h, c.Shape)
		if err != nil {
			return nil, err
		}
		byOp[c.Category] = append(byOp[c.Category], vc/mc)
	}
	for _, op := range workload.LlamaOps() {
		s := stats.Summarize(byOp[op.Layer])
		t.AddRow(op.Layer, op.M, op.K, s.Mean, s.Max, s.N)
	}
	return t, nil
}

// Fig11 reproduces Figure 11: end-to-end Llama2-13b inference with
// MikPoly's GEMMs integrated into the FasterTransformer-analog serving
// stack, against the unmodified stack (cuBLAS GEMMs). Latency = prefill at
// the input length + 512 decode steps (paper: 1.05x/1.04x/1.02x/1.01x for
// batch 1/2/4/8 — gains shrink as batching fattens the GEMMs).
func Fig11(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	ft := baseline.CuBLAS(h) // FasterTransformer's GEMM backend

	t := &Table{
		ID:     "fig11",
		Title:  "End-to-end Llama2-13b vs FasterTransformer (prefill + 512 decode steps)",
		Header: []string{"batch", "mean speedup", "max", "min", "seqs"},
	}
	seqs := nn.LlamaSeqLengths()
	if cfg.Quick {
		seqs = []int{1, 16, 128, 512}
	}
	for _, batch := range nn.LlamaBatchSizes() {
		mikEval := mikpolyEval(mik)
		ftEval := newGraphEval(h, ft.Plan)
		var spd []float64
		for _, seq := range seqs {
			lm, err := llamaE2E(mikEval, batch, seq)
			if err != nil {
				return nil, err
			}
			lf, err := llamaE2E(ftEval, batch, seq)
			if err != nil {
				return nil, err
			}
			spd = append(spd, lf/lm)
		}
		s := stats.Summarize(spd)
		t.AddRow(fmt.Sprintf("%d", batch), s.Mean, s.Max, s.Min, s.N)
	}
	return t, nil
}

// llamaE2E composes prefill plus the fixed-length generation; the decode
// step is evaluated once at the mid-generation KV length and repeated.
func llamaE2E(e *graphEval, batch, seq int) (float64, error) {
	pre, err := e.latency(nn.Llama2Prefill(batch, seq))
	if err != nil {
		return 0, err
	}
	dec, err := e.latency(nn.Llama2Decode(batch, seq+nn.LlamaOutputLen/2))
	if err != nil {
		return 0, err
	}
	return pre + float64(nn.LlamaOutputLen)*dec, nil
}
