package bench

import (
	"mikpoly/internal/baseline"
	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/stats"
	"mikpoly/internal/tensor"
	"mikpoly/internal/winograd"
	"mikpoly/internal/workload"
)

// winogradCycles evaluates the Winograd path: the 16 per-transform-point
// GEMMs launch as one batched grid (their tasks co-schedule on the device),
// plus the fused transform streaming traffic.
func winogradCycles(mik *core.Compiler, h hw.Hardware, s tensor.ConvShape) (float64, error) {
	low, err := winograd.Lower(s, h.InputBytes)
	if err != nil {
		return 0, err
	}
	prog, err := mik.Plan(low.Gemm)
	if err != nil {
		return 0, err
	}
	single := prog.Tasks(h)
	batched := make([]sim.Task, 0, len(single)*low.Count)
	for i := 0; i < low.Count; i++ {
		batched = append(batched, single...)
	}
	res := sim.Run(h, batched)
	return res.Cycles + low.TransformBytes/h.GlobalBytesPerCycle, nil
}

// AblationWinograd compares the implicit-GEMM convolution path against the
// Winograd F(2×2, 3×3) lowering (the paper's named future-work direction,
// §7) on the stride-1 3×3 cases of Table 4. Both paths plan their GEMMs with
// MikPoly; Winograd trades 2.25× less multiply work for transform traffic
// and 16 skinnier GEMMs, so it wins on compute-bound channel-heavy layers
// and loses on small-channel layers where K = InC is tiny.
func AblationWinograd(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	cudnn := baseline.CuDNN(h)

	n := 120
	if !cfg.Quick {
		n = 600
	}
	var spdOverIm2col, spdOverVendor []float64
	wins := 0
	for _, c := range workload.SubsampleConv(workload.Table4Suite(), n) {
		s := c.Shape
		if !winograd.Applicable(s) {
			continue
		}
		// Implicit-GEMM path.
		im2col, err := simCycles(mik.Plan, h, s.GemmShape())
		if err != nil {
			return nil, err
		}
		// Winograd path: 16 batched GEMMs + fused transform traffic.
		wino, err := winogradCycles(mik, h, s)
		if err != nil {
			return nil, err
		}
		// Vendor reference.
		vendor, err := simCycles(cudnn.Plan, h, s.GemmShape())
		if err != nil {
			return nil, err
		}
		spdOverIm2col = append(spdOverIm2col, im2col/wino)
		spdOverVendor = append(spdOverVendor, vendor/wino)
		if wino < im2col {
			wins++
		}
	}

	t := &Table{
		ID:     "ablation-winograd",
		Title:  "Winograd F(2x2,3x3) vs implicit-GEMM convolution (stride-1 3x3 cases)",
		Header: []string{"comparison", "mean", "geomean", "max", "min", "cases"},
	}
	for _, row := range []struct {
		name string
		s    stats.Summary
	}{
		{"Winograd vs MikPoly-im2col", stats.Summarize(spdOverIm2col)},
		{"Winograd vs cuDNN", stats.Summarize(spdOverVendor)},
	} {
		t.AddRow(row.name, row.s.Mean, row.s.Geomean, row.s.Max, row.s.Min, row.s.N)
	}
	t.Note("Winograd faster on %d/%d applicable Table 4 cases (its channel counts are small); both paths plan GEMMs with MikPoly", wins, len(spdOverIm2col))

	// Channel-heavy production layers — the regime libraries actually
	// dispatch to Winograd — shown individually to expose the crossover.
	heavy := []struct {
		name string
		s    tensor.ConvShape
	}{
		{"vgg-conv3 b8 c256", tensor.ConvShape{Batch: 8, InC: 256, InH: 56, InW: 56, OutC: 256, KH: 3, KW: 3, Stride: 1, Pad: 1}},
		{"vgg-conv5 b8 c512", tensor.ConvShape{Batch: 8, InC: 512, InH: 28, InW: 28, OutC: 512, KH: 3, KW: 3, Stride: 1, Pad: 1}},
		{"resnet-l3 b16 c256", tensor.ConvShape{Batch: 16, InC: 256, InH: 14, InW: 14, OutC: 256, KH: 3, KW: 3, Stride: 1, Pad: 1}},
	}
	for _, hc := range heavy {
		im2col, err := simCycles(mik.Plan, h, hc.s.GemmShape())
		if err != nil {
			return nil, err
		}
		wino, err := winogradCycles(mik, h, hc.s)
		if err != nil {
			return nil, err
		}
		ratio := im2col / wino
		t.AddRow(hc.name, ratio, ratio, ratio, ratio, 1)
	}
	return t, nil
}
