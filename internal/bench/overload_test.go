package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// overloadSeeds returns the seed matrix: OVERLOAD_SEEDS (comma-separated)
// overrides the quick default, which is what the CI job's matrix sets.
func overloadSeeds(t *testing.T) []uint64 {
	env := os.Getenv("OVERLOAD_SEEDS")
	if env == "" {
		return nil // RunOverloadSuite falls back to DefaultOverloadSeeds
	}
	var seeds []uint64
	for _, part := range strings.Split(env, ",") {
		s, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			t.Fatalf("bad OVERLOAD_SEEDS entry %q: %v", part, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// dumpOverload writes each seed's overload decision log to $OVERLOAD_LOG_DIR
// (when set — CI uploads it as an artifact) and, on failure, into the test
// log, mirroring the fleet-chaos harness.
func dumpOverload(t *testing.T, rep *OverloadReport) {
	t.Helper()
	if rep == nil {
		return
	}
	dir := os.Getenv("OVERLOAD_LOG_DIR")
	for _, seed := range rep.Seeds {
		data, err := json.MarshalIndent(seed.Events, "", "  ")
		if err != nil {
			t.Logf("marshaling seed %d events: %v", seed.Seed, err)
			continue
		}
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err == nil {
				path := filepath.Join(dir, fmt.Sprintf("overload-events-seed%d.json", seed.Seed))
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Logf("writing %s: %v", path, err)
				}
			}
		}
		if t.Failed() {
			t.Logf("seed %d result: %+v", seed.Seed, seed)
			t.Logf("seed %d overload events:\n%s", seed.Seed, data)
		}
	}
}

// TestOverloadSurgeGates runs the surge suite in quick mode and fails on any
// gate regression: defended goodput >= 2x undefended, zero KV leaks, bitwise
// preempt->restore, deterministic replay. The full matrix runs in CI via
// `mikbench -suite overload` and the OVERLOAD_SEEDS matrix here.
func TestOverloadSurgeGates(t *testing.T) {
	if testing.Short() {
		t.Skip("overload surge suite in -short mode")
	}
	rep, regs, err := RunOverloadSuite(true, overloadSeeds(t), ServeMeasureOpts{})
	if err != nil {
		t.Fatalf("overload suite: %v", err)
	}
	for _, r := range regs {
		t.Errorf("gate regression: %s", r)
	}
	for _, seed := range rep.Seeds {
		t.Logf("seed %d: defended %.0f tok/s (%d/%d SLO-good, %d sheds, %d preemptions) vs undefended %.0f tok/s (%d SLO-good); ratio %.2fx",
			seed.Seed, seed.DefendedGoodput, seed.DefendedSLOGood, seed.Requests,
			seed.DeadlineSheds, seed.Preemptions,
			seed.UndefendedGoodput, seed.UndefendedSLOGood, seed.GoodputRatio)
	}
	dumpOverload(t, rep)
}
