// Planner micro-benchmark harness: the online stage's hot-path trajectory.
//
// MikPoly's premise is that on-the-fly polymerization is cheap enough to run
// at request time for every new shape, so planner latency is a product
// number, not a curiosity. This file pins a suite of BERT-style dynamic
// sequence-length and Llama-decode GEMM shapes, measures planner ns/op,
// allocs/op and bytes/op with a self-contained measurement loop (no testing
// flags required, so cmd/mikbench can drive it), records the chosen program
// and its cycle costs bit-for-bit, and compares runs against a committed
// baseline (BENCH_planner.json) with explicit tolerances — the CI perf gate.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// PlannerBenchSchema versions the BENCH_planner.json layout.
const PlannerBenchSchema = "mikpoly-bench-planner/v1"

// PlannerCase is one pinned measurement: a shape planned on a device with a
// given search configuration.
type PlannerCase struct {
	Name    string `json:"name"`
	HW      string `json:"hw"` // "a100" or "ascend910"
	M       int    `json:"m"`
	N       int    `json:"n"`
	K       int    `json:"k"`
	Workers int    `json:"workers,omitempty"` // <= 1: sequential search
}

// PlannerSuite returns the pinned shape sweep. quick subsamples for tests.
//
// The suite is the contract with the committed baseline: adding, removing or
// renaming cases requires refreshing BENCH_planner.json (mikbench -out).
func PlannerSuite(quick bool) []PlannerCase {
	var cases []PlannerCase
	add := func(name, hwName string, m, n, k, workers int) {
		cases = append(cases, PlannerCase{Name: name, HW: hwName, M: m, N: n, K: k, Workers: workers})
	}

	// BERT-base dynamic sequence lengths on the GPU (patterns I–II):
	// QKV projection (seq, 768, 768) and FFN expansion (seq, 3072, 768).
	bertSeq := []int{64, 128, 256, 384, 512}
	if quick {
		bertSeq = []int{128, 384}
	}
	for _, s := range bertSeq {
		add(fmt.Sprintf("a100-bert-qkv-s%d", s), "a100", s, 768, 768, 0)
		add(fmt.Sprintf("a100-bert-ffn-s%d", s), "a100", s, 3072, 768, 0)
	}

	// Llama-7B decode on the GPU: batch-many single-token steps hit the
	// skinny-M regime the paper's Fig. 1 motivates.
	llamaBatch := []int{1, 8, 32}
	if quick {
		llamaBatch = []int{8}
	}
	for _, b := range llamaBatch {
		add(fmt.Sprintf("a100-llama-attn-b%d", b), "a100", b, 4096, 4096, 0)
		add(fmt.Sprintf("a100-llama-ffn-b%d", b), "a100", b, 11008, 4096, 0)
	}

	// NPU full nine-pattern search: the expensive end of the online stage.
	npuShapes := []struct {
		name    string
		m, n, k int
	}{
		{"npu-bert-s128", 128, 768, 768},
		{"npu-bert-s384", 384, 3072, 768},
		{"npu-llama-b4", 4, 11008, 4096},
		{"npu-ragged", 509, 3072, 768},
	}
	if quick {
		npuShapes = npuShapes[:2]
	}
	for _, s := range npuShapes {
		add("a910-"+s.name, "ascend910", s.m, s.n, s.k, 0)
	}

	// Parallel candidate search on the NPU suite's heaviest shapes —
	// chosen programs are asserted identical to sequential elsewhere; here
	// the question is wall-clock.
	par := []struct {
		name    string
		m, n, k int
	}{
		{"npu-bert-s384-w4", 384, 3072, 768},
		{"npu-ragged-w4", 509, 3072, 768},
	}
	if quick {
		par = par[:1]
	}
	for _, s := range par {
		add("a910-"+s.name, "ascend910", s.m, s.n, s.k, 4)
	}
	return cases
}

// PlannerCaseResult is one measured case in the stable JSON schema. The
// latency fields are machine-dependent and gated with a tolerance; the
// allocation counts and the chosen-program fields (candidates, pattern,
// program, cycle-cost bits) are deterministic and gated exactly.
type PlannerCaseResult struct {
	PlannerCase

	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`

	Candidates int    `json:"candidates"`
	Pattern    string `json:"pattern"`
	Regions    int    `json:"regions"`
	Program    string `json:"program"`

	// CycleCost is the planner's cost-model value for the chosen program;
	// SimCycles is its simulated makespan. The *_bits fields carry the
	// exact float64 bit patterns (IEEE-754, hex) for the bitwise CI gate.
	CycleCost     float64 `json:"cycle_cost"`
	CycleCostBits string  `json:"cycle_cost_bits"`
	SimCycles     float64 `json:"sim_cycles"`
	SimCyclesBits string  `json:"sim_cycles_bits"`
}

// PlannerBenchReport is the BENCH_planner.json document.
type PlannerBenchReport struct {
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// TuneNGen/NMik record the library scale the suite planned against.
	TuneNGen int                 `json:"tune_ngen"`
	TuneNMik int                 `json:"tune_nmik"`
	Cases    []PlannerCaseResult `json:"cases"`
}

// PlannerMeasureOpts controls the measurement loop.
type PlannerMeasureOpts struct {
	// MinTime is the minimum sampling window per repetition (default 150ms).
	MinTime time.Duration
	// Repeats is how many windows are sampled; the minimum ns/op across
	// repeats is reported (most robust location statistic under CI noise).
	// Default 3.
	Repeats int
	// Slowdown plans each shape this many times per reported op (>= 1).
	// It exists to prove the CI gate trips: Slowdown=2 must fail a
	// baseline recorded at Slowdown=1.
	Slowdown int
	// Tune selects the offline-library scale (zero value: paper defaults).
	Tune tune.Options
}

func (o PlannerMeasureOpts) withDefaults() PlannerMeasureOpts {
	if o.MinTime <= 0 {
		o.MinTime = 150 * time.Millisecond
	}
	if o.Repeats < 1 {
		o.Repeats = 3
	}
	if o.Slowdown < 1 {
		o.Slowdown = 1
	}
	if o.Tune == (tune.Options{}) {
		o.Tune = tune.DefaultOptions()
	}
	return o
}

// plannerHW resolves a suite hardware name.
func plannerHW(name string) (hw.Hardware, error) {
	switch name {
	case "a100":
		return hw.A100(), nil
	case "ascend910":
		return hw.Ascend910(), nil
	default:
		return hw.Hardware{}, fmt.Errorf("bench: unknown hardware %q", name)
	}
}

// RunPlannerSuite measures every case and returns the report. Libraries are
// generated once per device through the process-wide cache, so repeated runs
// (tests, -count) pay the offline stage once.
func RunPlannerSuite(cases []PlannerCase, opts PlannerMeasureOpts) (*PlannerBenchReport, error) {
	opts = opts.withDefaults()
	rep := &PlannerBenchReport{
		Schema:   PlannerBenchSchema,
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		TuneNGen: opts.Tune.NGen,
		TuneNMik: opts.Tune.NMik,
	}
	libs := map[string]*tune.Library{}
	for _, c := range cases {
		lib, ok := libs[c.HW]
		if !ok {
			h, err := plannerHW(c.HW)
			if err != nil {
				return nil, err
			}
			lib, err = core.SharedLibrary(h, opts.Tune)
			if err != nil {
				return nil, err
			}
			libs[c.HW] = lib
		}
		res, err := measurePlannerCase(c, lib, opts)
		if err != nil {
			return nil, err
		}
		rep.Cases = append(rep.Cases, res)
	}
	return rep, nil
}

// measurePlannerCase times one case with a testing-free benchmark loop:
// warm up (populating the skeleton memo and scratch pool, as a serving
// process would be), then sample Repeats windows of at least MinTime and
// report the fastest, with allocation deltas from runtime.MemStats.
func measurePlannerCase(c PlannerCase, lib *tune.Library, opts PlannerMeasureOpts) (PlannerCaseResult, error) {
	p := poly.NewPlanner(lib)
	p.Workers = c.Workers
	shape := tensor.GemmShape{M: c.M, N: c.N, K: c.K}

	prog, stats, err := p.Plan(shape)
	if err != nil {
		return PlannerCaseResult{}, fmt.Errorf("bench: case %s: %w", c.Name, err)
	}
	res := PlannerCaseResult{
		PlannerCase: c,
		Candidates:  stats.Candidates,
		Pattern:     prog.Pattern.String(),
		Regions:     len(prog.Regions),
		Program:     prog.String(),
		CycleCost:   prog.EstimatedCost,
		SimCycles:   prog.Simulate(lib.HW).Cycles,
	}
	res.CycleCostBits = fmt.Sprintf("%016x", math.Float64bits(res.CycleCost))
	res.SimCyclesBits = fmt.Sprintf("%016x", math.Float64bits(res.SimCycles))

	planOnce := func() error {
		for s := 0; s < opts.Slowdown; s++ {
			if _, _, err := p.Plan(shape); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < 16; i++ { // warmup
		if err := planOnce(); err != nil {
			return res, err
		}
	}

	bestNs := math.Inf(1)
	var bestAllocs, bestBytes int64
	var ms0, ms1 runtime.MemStats
	for r := 0; r < opts.Repeats; r++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		iters := 0
		start := time.Now()
		var elapsed time.Duration
		for elapsed < opts.MinTime || iters < 32 {
			if err := planOnce(); err != nil {
				return res, err
			}
			iters++
			elapsed = time.Since(start)
		}
		runtime.ReadMemStats(&ms1)
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		allocs := int64(ms1.Mallocs-ms0.Mallocs) / int64(iters)
		bytes := int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters)
		if ns < bestNs {
			bestNs = ns
		}
		if r == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
		if r == 0 || bytes < bestBytes {
			bestBytes = bytes
		}
	}
	res.NsPerOp = bestNs
	res.AllocsPerOp = bestAllocs
	res.BytesPerOp = bestBytes
	return res, nil
}

// PlannerCompareOpts are the CI gate tolerances.
type PlannerCompareOpts struct {
	// LatencyTolerance is the allowed fractional ns/op growth per case
	// (0.15 = +15%). Latency is machine-dependent; everything else is
	// gated exactly.
	LatencyTolerance float64
}

// ComparePlanner checks a current run against a baseline and returns the
// list of regressions (empty = gate passes) plus informational notes.
//
// Gate semantics:
//   - case sets must match exactly (a changed suite requires an explicit
//     baseline refresh);
//   - chosen programs, candidate counts and both cycle-cost bit patterns
//     must be bitwise identical — the planner's decisions are deterministic
//     and any drift is a correctness change, not noise;
//   - allocs/op may not increase at all;
//   - ns/op may grow by at most LatencyTolerance.
func ComparePlanner(baseline, current *PlannerBenchReport, opts PlannerCompareOpts) (regressions, notes []string) {
	if opts.LatencyTolerance <= 0 {
		opts.LatencyTolerance = 0.15
	}
	if baseline.Schema != current.Schema {
		return []string{fmt.Sprintf("schema %q != baseline %q", current.Schema, baseline.Schema)}, nil
	}
	if baseline.TuneNGen != current.TuneNGen || baseline.TuneNMik != current.TuneNMik {
		return []string{fmt.Sprintf("library scale ngen=%d,nmik=%d != baseline ngen=%d,nmik=%d (refresh baseline)",
			current.TuneNGen, current.TuneNMik, baseline.TuneNGen, baseline.TuneNMik)}, nil
	}

	cur := make(map[string]PlannerCaseResult, len(current.Cases))
	for _, c := range current.Cases {
		cur[c.Name] = c
	}
	base := make(map[string]PlannerCaseResult, len(baseline.Cases))
	for _, b := range baseline.Cases {
		base[b.Name] = b
	}
	var names []string
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: case missing from current run (suite changed? refresh baseline)", name))
			continue
		}
		if c.Program != b.Program || c.Pattern != b.Pattern || c.Regions != b.Regions {
			regressions = append(regressions, fmt.Sprintf("%s: chosen program changed:\n  baseline: %s\n  current:  %s", name, b.Program, c.Program))
		}
		if c.CycleCostBits != b.CycleCostBits {
			regressions = append(regressions, fmt.Sprintf("%s: cycle cost bits %s != baseline %s (%.6g vs %.6g)",
				name, c.CycleCostBits, b.CycleCostBits, c.CycleCost, b.CycleCost))
		}
		if c.SimCyclesBits != b.SimCyclesBits {
			regressions = append(regressions, fmt.Sprintf("%s: simulated cycles bits %s != baseline %s (%.6g vs %.6g)",
				name, c.SimCyclesBits, b.SimCyclesBits, c.SimCycles, b.SimCycles))
		}
		if c.Candidates != b.Candidates {
			regressions = append(regressions, fmt.Sprintf("%s: candidates %d != baseline %d", name, c.Candidates, b.Candidates))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regressions = append(regressions, fmt.Sprintf("%s: allocs/op %d > baseline %d (no alloc regressions allowed)",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
		limit := b.NsPerOp * (1 + opts.LatencyTolerance)
		switch {
		case c.NsPerOp > limit:
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %.0f > baseline %.0f +%.0f%% (limit %.0f)",
				name, c.NsPerOp, b.NsPerOp, opts.LatencyTolerance*100, limit))
		case c.NsPerOp < b.NsPerOp*0.80:
			notes = append(notes, fmt.Sprintf("%s: ns/op improved %.0f -> %.0f; consider refreshing the baseline",
				name, b.NsPerOp, c.NsPerOp))
		}
	}
	for _, c := range current.Cases {
		if _, ok := base[c.Name]; !ok {
			regressions = append(regressions, fmt.Sprintf("%s: case absent from baseline (suite changed? refresh baseline)", c.Name))
		}
	}
	return regressions, notes
}
