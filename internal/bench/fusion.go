package bench

import (
	"mikpoly/internal/baseline"
	"mikpoly/internal/graphopt"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/stats"
)

// AblationFusion measures the additional end-to-end gain from combining
// MikPoly with graph-level operator fusion (the paper's first future-work
// direction, §7): elementwise chains fold into GEMM epilogues, so the
// speedup over the unfused cuBLAS baseline grows beyond polymerization
// alone.
func AblationFusion(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	cublas := baseline.CuBLAS(h)

	t := &Table{
		ID:    "ablation-fusion",
		Title: "Operator fusion on top of polymerization (e2e language models)",
		Header: []string{"model", "MikPoly", "MikPoly+fusion", "fusion-gain",
			"fused-ops", "inputs"},
	}
	seqs := nn.SequenceLengths()[:cfg.seqCount()]
	for _, mcfg := range nn.LanguageModels() {
		mikEval := mikpolyEval(mik)
		mikFusedEval := mikpolyEval(mik)
		vEval := newGraphEval(h, cublas.Plan)
		var plain, fused []float64
		fusedOps := 0
		for _, seq := range seqs {
			g := nn.Transformer(mcfg, seq, 1)
			fg, st := graphopt.Fuse(g)
			if err := graphopt.Validate(g, fg); err != nil {
				return nil, err
			}
			fusedOps = st.FusedOps
			lv, err := vEval.latency(g)
			if err != nil {
				return nil, err
			}
			lm, err := mikEval.latency(g)
			if err != nil {
				return nil, err
			}
			lf, err := mikFusedEval.latency(fg)
			if err != nil {
				return nil, err
			}
			plain = append(plain, lv/lm)
			fused = append(fused, lv/lf)
		}
		p, f := stats.Mean(plain), stats.Mean(fused)
		t.AddRow(mcfg.Name, p, f, f/p, fusedOps, len(seqs))
	}
	t.Note("baseline (cuBLAS) runs unfused; fusion-gain is the extra factor fusion contributes")
	return t, nil
}
