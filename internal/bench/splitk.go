package bench

import (
	"mikpoly/internal/baseline"
	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/poly"
	"mikpoly/internal/stats"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
	"mikpoly/internal/workload"
)

// AblationSplitK measures the split-K pattern extension on
// reduction-dominant shapes — the family behind Fig. 1's worst vendor case,
// where the output plane yields fewer thread blocks than the device has PEs
// and no output-plane pattern can recover the lost occupancy.
func AblationSplitK(cfg Config) (*Table, error) {
	h := hw.A100()
	lib, err := core.SharedLibrary(h, tune.DefaultOptions())
	if err != nil {
		return nil, err
	}
	base := poly.NewPlanner(lib)
	sk := poly.NewPlanner(lib)
	sk.EnableSplitK = true
	cublas := baseline.CuBLAS(h)

	t := &Table{
		ID:    "ablation-splitk",
		Title: "Split-K pattern extension on reduction-dominant shapes",
		Header: []string{"shape", "base-cycles", "splitk-cycles", "gain",
			"pattern", "vs-cuBLAS"},
	}
	shapes := []tensor.GemmShape{
		{M: 105, N: 1024, K: 12544}, // Fig. 1's cliff shape
		{M: 128, N: 128, K: 65536},
		{M: 64, N: 256, K: 100000},
		{M: 32, N: 32, K: 500000},
		{M: 256, N: 64, K: 32768},
		{M: 512, N: 512, K: 8192}, // near-full grid: split-K should not fire
	}
	var gains []float64
	for _, s := range shapes {
		bp, _, err := base.Plan(s)
		if err != nil {
			return nil, err
		}
		sp, _, err := sk.Plan(s)
		if err != nil {
			return nil, err
		}
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		bc := bp.Simulate(h).Cycles
		sc := sp.Simulate(h).Cycles
		vc, err := simCycles(cublas.Plan, h, s)
		if err != nil {
			return nil, err
		}
		gains = append(gains, bc/sc)
		t.AddRow(s.String(), bc, sc, bc/sc, sp.Pattern.String(), vc/sc)
	}
	// A broader sweep over the DeepBench suite's reduction-heavy slice.
	var sweep []float64
	for _, c := range workload.DeepBenchGEMM() {
		s := c.Shape
		if s.K < 8*s.M || s.K < 8*s.N {
			continue
		}
		bp, _, err := base.Plan(s)
		if err != nil {
			return nil, err
		}
		sp, _, err := sk.Plan(s)
		if err != nil {
			return nil, err
		}
		sweep = append(sweep, bp.Simulate(h).Cycles/sp.Simulate(h).Cycles)
	}
	sum := stats.Summarize(sweep)
	t.Note("DeepBench reduction-heavy slice (K >= 8·max(M,N)): mean gain %.2fx, max %.2fx over %d cases",
		sum.Mean, sum.Max, sum.N)
	t.Note("headline shapes mean gain %.2fx; split-K is an extension beyond the paper's nine patterns", stats.Mean(gains))
	return t, nil
}
