package bench

import (
	"fmt"

	"mikpoly/internal/baseline"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/stats"
)

// ExtDetection evaluates the paper's §2.1 dynamic-resolution motivation
// end-to-end: a Faster R-CNN-style detector processing images at native
// resolution with a runtime-dependent proposal count. Every convolution
// shape changes with the image and every ROI GEMM changes with the proposal
// count, so a fixed-library stack pays dispatch mismatches on both axes.
func ExtDetection(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	cudnn := baseline.CuDNN(h)
	cublas := baseline.CuBLAS(h)

	resolutions := nn.DetectionResolutions()
	proposals := nn.DetectionProposalCounts()
	if cfg.Quick {
		resolutions = resolutions[:3]
		proposals = []int{50, 300}
	}

	t := &Table{
		ID:     "ext-detection",
		Title:  "Faster R-CNN at native resolution with dynamic proposal counts (vs cuDNN/cuBLAS)",
		Header: []string{"resolution", "speedup", "max", "min", "configs"},
	}
	var all []float64
	for _, res := range resolutions {
		mikEval := mikpolyEval(mik)
		vConv := newGraphEval(h, cudnn.Plan)
		vGemm := newGraphEval(h, cublas.Plan)
		var spd []float64
		for _, p := range proposals {
			g := nn.FasterRCNN(1, res[0], res[1], p)
			if err := g.Validate(); err != nil {
				return nil, err
			}
			lm, err := mikEval.latency(g)
			if err != nil {
				return nil, err
			}
			lv, err := vendorCNNLatency(g, h, vConv, vGemm)
			if err != nil {
				return nil, err
			}
			spd = append(spd, lv/lm)
		}
		s := stats.Summarize(spd)
		all = append(all, spd...)
		t.AddRow(fmt.Sprintf("%dx%d", res[0], res[1]), s.Mean, s.Max, s.Min, s.N)
	}
	overall := stats.Summarize(all)
	t.Note("overall mean %.2fx across %d (resolution, proposal) configs", overall.Mean, overall.N)
	return t, nil
}
