package bench

import (
	"strings"
	"testing"
	"time"

	"mikpoly/internal/tune"
)

// testMeasureOpts keeps the offline stage tiny (shared with other package
// tests through core.SharedLibrary) and the sampling windows short: these
// tests exercise the gate logic, not the numbers.
func testMeasureOpts() PlannerMeasureOpts {
	return PlannerMeasureOpts{
		MinTime: 3 * time.Millisecond,
		Repeats: 1,
		Tune:    tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256},
	}
}

// testCases is a two-case slice of the pinned suite — one GPU, one NPU — so
// the gate tests cover both pattern sets without paying the full sweep.
func testCases() []PlannerCase {
	return []PlannerCase{
		{Name: "a100-bert-qkv-s128", HW: "a100", M: 128, N: 768, K: 768},
		{Name: "a910-npu-bert-s128", HW: "ascend910", M: 128, N: 768, K: 768},
	}
}

// TestPlannerSuiteDeterministicAndSelfConsistent: two independent runs of the
// same cases must choose bitwise-identical programs (same cycle-cost bits,
// same program fingerprints, same candidate counts), and comparing a run
// against itself must pass the gate with zero regressions.
func TestPlannerSuiteDeterministicAndSelfConsistent(t *testing.T) {
	a, err := RunPlannerSuite(testCases(), testMeasureOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPlannerSuite(testCases(), testMeasureOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cases {
		ca, cb := a.Cases[i], b.Cases[i]
		if ca.CycleCostBits != cb.CycleCostBits || ca.SimCyclesBits != cb.SimCyclesBits {
			t.Fatalf("%s: cost bits differ across runs: %s/%s vs %s/%s",
				ca.Name, ca.CycleCostBits, ca.SimCyclesBits, cb.CycleCostBits, cb.SimCyclesBits)
		}
		if ca.Program != cb.Program {
			t.Fatalf("%s: program differs across runs:\n%s\n%s", ca.Name, ca.Program, cb.Program)
		}
		if ca.Candidates != cb.Candidates {
			t.Fatalf("%s: candidates %d != %d", ca.Name, ca.Candidates, cb.Candidates)
		}
		if ca.AllocsPerOp > 8 {
			t.Fatalf("%s: %d allocs/op on the steady-state hot path", ca.Name, ca.AllocsPerOp)
		}
	}
	if regs, _ := ComparePlanner(a, a, PlannerCompareOpts{}); len(regs) != 0 {
		t.Fatalf("self-comparison reported regressions: %v", regs)
	}
	// Cross-run comparison only risks latency jitter; with two identical
	// back-to-back runs the deterministic fields must all pass.
	regs, _ := ComparePlanner(a, b, PlannerCompareOpts{LatencyTolerance: 10})
	if len(regs) != 0 {
		t.Fatalf("cross-run comparison reported regressions: %v", regs)
	}
}

// TestPlannerGateFailsOnInjectedSlowdown is the acceptance check that the CI
// perf gate actually trips: re-running the suite with a 2x planner slowdown
// injected must fail the 15%-latency comparison against the clean baseline.
func TestPlannerGateFailsOnInjectedSlowdown(t *testing.T) {
	baseline, err := RunPlannerSuite(testCases(), testMeasureOpts())
	if err != nil {
		t.Fatal(err)
	}
	slowOpts := testMeasureOpts()
	slowOpts.Slowdown = 2
	slow, err := RunPlannerSuite(testCases(), slowOpts)
	if err != nil {
		t.Fatal(err)
	}
	regs, _ := ComparePlanner(baseline, slow, PlannerCompareOpts{LatencyTolerance: 0.15})
	if len(regs) == 0 {
		t.Fatal("2x injected slowdown passed the 15% latency gate")
	}
	found := false
	for _, r := range regs {
		if strings.Contains(r, "ns/op") {
			found = true
		}
	}
	if !found {
		t.Fatalf("slowdown regressions lack a latency entry: %v", regs)
	}
}

// TestPlannerGateFailsOnDeterministicDrift mutates the deterministic fields
// one at a time and asserts each mutation alone fails the gate.
func TestPlannerGateFailsOnDeterministicDrift(t *testing.T) {
	baseline, err := RunPlannerSuite(testCases(), testMeasureOpts())
	if err != nil {
		t.Fatal(err)
	}
	clone := func() *PlannerBenchReport {
		c := *baseline
		c.Cases = append([]PlannerCaseResult(nil), baseline.Cases...)
		return &c
	}
	mutations := []struct {
		name   string
		mutate func(r *PlannerBenchReport)
		want   string
	}{
		{"alloc-increase", func(r *PlannerBenchReport) { r.Cases[0].AllocsPerOp += 1 }, "allocs/op"},
		{"cost-bit-flip", func(r *PlannerBenchReport) { r.Cases[0].CycleCostBits = "dead" + r.Cases[0].CycleCostBits[4:] }, "cycle cost bits"},
		{"sim-bit-flip", func(r *PlannerBenchReport) { r.Cases[1].SimCyclesBits = "beef" + r.Cases[1].SimCyclesBits[4:] }, "simulated cycles"},
		{"program-change", func(r *PlannerBenchReport) { r.Cases[0].Program = "mutated" }, "chosen program"},
		{"candidate-drift", func(r *PlannerBenchReport) { r.Cases[1].Candidates++ }, "candidates"},
		{"case-removed", func(r *PlannerBenchReport) { r.Cases = r.Cases[:1] }, "missing"},
		{"latency-regression", func(r *PlannerBenchReport) { r.Cases[0].NsPerOp *= 1.5 }, "ns/op"},
	}
	for _, m := range mutations {
		mutated := clone()
		m.mutate(mutated)
		regs, _ := ComparePlanner(baseline, mutated, PlannerCompareOpts{LatencyTolerance: 0.15})
		if len(regs) == 0 {
			t.Fatalf("%s: mutation passed the gate", m.name)
		}
		hit := false
		for _, r := range regs {
			if strings.Contains(r, m.want) {
				hit = true
			}
		}
		if !hit {
			t.Fatalf("%s: regressions %v lack %q", m.name, regs, m.want)
		}
	}
	// A run with a new case the baseline lacks must also fail (the suite
	// changed; the baseline needs an explicit refresh).
	extra := clone()
	extra.Cases = append(extra.Cases, PlannerCaseResult{PlannerCase: PlannerCase{Name: "new-case"}})
	if regs, _ := ComparePlanner(baseline, extra, PlannerCompareOpts{}); len(regs) == 0 {
		t.Fatal("new unbaselined case passed the gate")
	}
}
