// Serving benchmark harness: goodput under SLO on synthetic LLM traffic.
//
// The serve suite drives the multi-tenant scheduler (internal/sched) and its
// paged KV cache (internal/kvcache) over deterministic Zipf/Poisson traces
// (internal/workload), executing every prefill chunk and decode wave through
// a real graph runtime on the simulated device. The clock is virtual —
// executed device cycles — so goodput, latency quantiles, decode digests and
// KV accounting are exact, machine-independent values: the committed
// BENCH_serve.json baseline gates them in CI the way BENCH_planner.json
// gates the planner.
//
// Every case runs twice, prefix reuse on and off, and the report carries
// both sides: the gate requires the decode digests to be bitwise identical
// (reuse is a pure optimization), prefill cycles to shrink when the trace
// shares prefixes, p99 decode-step latency to stay within the configured
// SLO bound, zero leaked KV pages, and goodput-under-SLO within 10% of the
// baseline.
package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/graphrt"
	"mikpoly/internal/hw"
	"mikpoly/internal/kvcache"
	"mikpoly/internal/nn"
	"mikpoly/internal/sched"
	"mikpoly/internal/tune"
	"mikpoly/internal/workload"
)

// ServeBenchSchema versions the BENCH_serve.json layout.
const ServeBenchSchema = "mikpoly-bench-serve/v1"

// ServeCase pins one trace-replay measurement: a synthetic workload, the
// scheduler/KV configuration it runs under, and the SLO it is judged by.
type ServeCase struct {
	Name string `json:"name"`
	HW   string `json:"hw"`

	Seed            uint64  `json:"seed"`
	Requests        int     `json:"requests"`
	Tenants         int     `json:"tenants"`
	ArrivalsPerSec  float64 `json:"arrivals_per_sec"`
	PromptMin       int     `json:"prompt_min"`
	PromptMax       int     `json:"prompt_max"`
	DecodeMin       int     `json:"decode_min"`
	DecodeMax       int     `json:"decode_max"`
	GroupsPerTenant int     `json:"groups_per_tenant"` // -1 disables shared prefixes
	SharedFrac      float64 `json:"shared_frac,omitempty"`
	FanoutEvery     int     `json:"fanout_every"` // -1 disables fanout

	KVPages        int     `json:"kv_pages"`
	PageTokens     int     `json:"page_tokens"`
	PrefillChunk   int     `json:"prefill_chunk"`
	MaxDecodeBatch int     `json:"max_decode_batch"`
	StepSLOMs      float64 `json:"step_slo_ms"`
	TTFTSLOMs      float64 `json:"ttft_slo_ms"`
	InFlightTokens int64   `json:"inflight_tokens"`
}

// ServeSuite returns the pinned serving workloads. quick subsamples the
// traces for tests and smoke runs.
//
// The suite is the contract with the committed baseline: changing a case
// requires refreshing BENCH_serve.json (mikbench -suite serve -out).
func ServeSuite(quick bool) []ServeCase {
	// SLO bounds are calibrated to the simulated A100 under the pinned
	// small library, where one 40-layer decode graph costs ~2-3ms: a
	// decode wave of a few KV buckets plus one prefill chunk needs ~20ms.
	shared := ServeCase{
		Name: "a100-shared-prefix", HW: "a100",
		Seed: 17, Requests: 64, Tenants: 4, ArrivalsPerSec: 100,
		PromptMin: 64, PromptMax: 768, DecodeMin: 8, DecodeMax: 32,
		GroupsPerTenant: 2, SharedFrac: 0.6, FanoutEvery: 6,
		KVPages: 4096, PageTokens: 16, PrefillChunk: 256, MaxDecodeBatch: 8,
		StepSLOMs: 35, TTFTSLOMs: 2000, InFlightTokens: 8192,
	}
	long := ServeCase{
		Name: "a100-long-prompts", HW: "a100",
		Seed: 23, Requests: 40, Tenants: 3, ArrivalsPerSec: 50,
		PromptMin: 512, PromptMax: 2048, DecodeMin: 16, DecodeMax: 48,
		GroupsPerTenant: -1, FanoutEvery: -1,
		KVPages: 8192, PageTokens: 16, PrefillChunk: 256, MaxDecodeBatch: 8,
		StepSLOMs: 30, TTFTSLOMs: 6000, InFlightTokens: 12288,
	}
	if quick {
		shared.Requests = 20
		long.Requests = 12
	}
	return []ServeCase{shared, long}
}

// ServeCaseResult is one measured case. All gated fields are deterministic:
// the replay clock is virtual, so they carry exact bit patterns.
type ServeCaseResult struct {
	ServeCase

	// Reuse-on side (the production configuration).
	GoodputTPS     float64 `json:"goodput_tps"`
	GoodputTPSBits string  `json:"goodput_tps_bits"`
	SLOGoodFrac    float64 `json:"slo_good_frac"`
	Completed      int     `json:"completed"`
	Failed         int     `json:"failed"`
	P50StepMs      float64 `json:"p50_step_ms"`
	P99StepMs      float64 `json:"p99_step_ms"`
	P99TTFTMs      float64 `json:"p99_ttft_ms"`

	PrefillCyclesOn  float64 `json:"prefill_cycles_on"`
	PrefillCyclesOff float64 `json:"prefill_cycles_off"`
	ReusedTokens     int64   `json:"reused_tokens"`
	COWCopies        int64   `json:"cow_copies"`
	KVSavedBytes     int64   `json:"kv_saved_bytes"`

	// DigestBits folds every completed request's decode digest (reuse-on
	// run); ReuseBitwiseEqual asserts the reuse-off run produced the same.
	DigestBits        string `json:"digest_bits"`
	ReuseBitwiseEqual bool   `json:"reuse_bitwise_equal"`
	StepWithinSLO     bool   `json:"step_within_slo"`
	LeakedPages       int    `json:"leaked_pages"`

	WallSec float64 `json:"wall_sec"` // measurement wall clock (informational)
}

// ServeBenchReport is the BENCH_serve.json document.
type ServeBenchReport struct {
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// TuneNGen/NMik record the library scale the suite executed against.
	TuneNGen int               `json:"tune_ngen"`
	TuneNMik int               `json:"tune_nmik"`
	Cases    []ServeCaseResult `json:"cases"`
}

// ServeMeasureOpts controls the suite run.
type ServeMeasureOpts struct {
	// Tune selects the offline-library scale. The zero value uses a small
	// pinned library (NGen 6, NSyn 9, NMik 10, NPred 256): the serve suite
	// measures scheduler behavior, not planner scale, and the small library
	// keeps the CI job minutes-cheap while staying fully deterministic.
	Tune tune.Options
}

func (o ServeMeasureOpts) withDefaults() ServeMeasureOpts {
	if o.Tune == (tune.Options{}) {
		o.Tune = tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256}
	}
	return o
}

// rtExecutor adapts a graph runtime to sched.Executor. The pool label is
// ignored: the bench runs one simulated device for both phases.
type rtExecutor struct{ rt *graphrt.Runtime }

func (e rtExecutor) ExecGraph(ctx context.Context, g nn.Graph, _ string) (float64, error) {
	rep, err := e.rt.Execute(ctx, g)
	if err != nil {
		return 0, err
	}
	return rep.Cycles, nil
}

// RunServeSuite replays every case twice (prefix reuse on and off) through
// a real graph runtime and returns the report.
func RunServeSuite(cases []ServeCase, opts ServeMeasureOpts) (*ServeBenchReport, error) {
	opts = opts.withDefaults()
	rep := &ServeBenchReport{
		Schema:   ServeBenchSchema,
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		TuneNGen: opts.Tune.NGen,
		TuneNMik: opts.Tune.NMik,
	}
	libs := map[string]*tune.Library{}
	for _, c := range cases {
		lib, ok := libs[c.HW]
		if !ok {
			h, err := plannerHW(c.HW)
			if err != nil {
				return nil, err
			}
			lib, err = core.SharedLibrary(h, opts.Tune)
			if err != nil {
				return nil, err
			}
			libs[c.HW] = lib
		}
		res, err := measureServeCase(c, lib)
		if err != nil {
			return nil, fmt.Errorf("bench: case %s: %w", c.Name, err)
		}
		rep.Cases = append(rep.Cases, res)
	}
	return rep, nil
}

func (c ServeCase) traceConfig(h hw.Hardware) workload.TraceConfig {
	return workload.TraceConfig{
		Seed:            c.Seed,
		Requests:        c.Requests,
		Tenants:         c.Tenants,
		ArrivalsPerSec:  c.ArrivalsPerSec,
		ClockHz:         h.ClockHz,
		PromptMin:       c.PromptMin,
		PromptMax:       c.PromptMax,
		DecodeMin:       c.DecodeMin,
		DecodeMax:       c.DecodeMax,
		GroupsPerTenant: c.GroupsPerTenant,
		SharedFrac:      c.SharedFrac,
		FanoutEvery:     c.FanoutEvery,
	}
}

func (c ServeCase) schedConfig(h hw.Hardware, disableSharing bool) sched.Config {
	return sched.Config{
		HW: h,
		KV: kvcache.Config{
			NumPages:       c.KVPages,
			TokensPerPage:  c.PageTokens,
			DisableSharing: disableSharing,
		},
		MaxDecodeBatch:    c.MaxDecodeBatch,
		PrefillChunk:      c.PrefillChunk,
		StepSLOMs:         c.StepSLOMs,
		TTFTSLOMs:         c.TTFTSLOMs,
		MaxInFlightTokens: c.InFlightTokens,
	}
}

// measureServeCase replays one case with prefix reuse on and off against a
// fresh runtime each, then folds both sides into the gated result.
func measureServeCase(c ServeCase, lib *tune.Library) (ServeCaseResult, error) {
	h := lib.HW
	trace := workload.GenerateTrace(c.traceConfig(h))
	start := time.Now()

	runSide := func(disable bool) (sched.Report, error) {
		comp := core.NewCompilerFromLibrary(lib)
		rt := graphrt.New(comp, graphrt.Config{})
		s := sched.New(rtExecutor{rt}, c.schedConfig(h, disable))
		rep, _, err := s.Replay(context.Background(), trace)
		return rep, err
	}
	on, err := runSide(false)
	if err != nil {
		return ServeCaseResult{}, err
	}
	off, err := runSide(true)
	if err != nil {
		return ServeCaseResult{}, err
	}

	res := ServeCaseResult{
		ServeCase:         c,
		GoodputTPS:        on.GoodputTokensPerSec,
		GoodputTPSBits:    fmt.Sprintf("%016x", math.Float64bits(on.GoodputTokensPerSec)),
		Completed:         on.Completed,
		Failed:            on.Failed,
		P50StepMs:         on.P50StepMs,
		P99StepMs:         on.P99StepMs,
		P99TTFTMs:         on.P99TTFTMs,
		PrefillCyclesOn:   on.PrefillCycles,
		PrefillCyclesOff:  off.PrefillCycles,
		ReusedTokens:      on.ReusedTokens,
		COWCopies:         on.KV.COWCopies,
		KVSavedBytes:      on.KV.SavedBytes,
		DigestBits:        fmt.Sprintf("%016x", on.DigestBits),
		ReuseBitwiseEqual: on.DigestBits == off.DigestBits && on.Completed == off.Completed,
		StepWithinSLO:     on.P99StepMs <= c.StepSLOMs,
		LeakedPages:       on.LeakedPages + off.LeakedPages,
		WallSec:           time.Since(start).Seconds(),
	}
	if on.Completed > 0 {
		res.SLOGoodFrac = float64(on.SLOGood) / float64(on.Completed)
	}
	return res, nil
}

// ServeCompareOpts are the serve-perf CI gate tolerances.
type ServeCompareOpts struct {
	// GoodputTolerance is the allowed fractional goodput-under-SLO drop vs
	// the baseline (0.10 = -10%). Everything else is gated exactly.
	GoodputTolerance float64
}

// CompareServe checks a current serve run against a baseline and returns
// the regressions (empty = gate passes) plus informational notes.
//
// Gate semantics:
//   - case sets and library scale must match exactly;
//   - decode digests must be bitwise identical within the run (reuse on vs
//     off) and against the baseline — prefix reuse and paging must never
//     change decode results;
//   - zero leaked KV pages, in every case;
//   - p99 decode-step latency must sit within the case's SLO bound;
//   - prefix reuse must not increase prefill cycles (and must decrease
//     them when the trace shares prefixes);
//   - goodput-under-SLO may drop at most GoodputTolerance vs the baseline.
func CompareServe(baseline, current *ServeBenchReport, opts ServeCompareOpts) (regressions, notes []string) {
	if opts.GoodputTolerance <= 0 {
		opts.GoodputTolerance = 0.10
	}
	if baseline.Schema != current.Schema {
		return []string{fmt.Sprintf("schema %q != baseline %q", current.Schema, baseline.Schema)}, nil
	}
	if baseline.TuneNGen != current.TuneNGen || baseline.TuneNMik != current.TuneNMik {
		return []string{fmt.Sprintf("library scale ngen=%d,nmik=%d != baseline ngen=%d,nmik=%d (refresh baseline)",
			current.TuneNGen, current.TuneNMik, baseline.TuneNGen, baseline.TuneNMik)}, nil
	}
	cur := make(map[string]ServeCaseResult, len(current.Cases))
	for _, c := range current.Cases {
		cur[c.Name] = c
	}
	for _, b := range baseline.Cases {
		c, ok := cur[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: case missing from current run (suite changed? refresh baseline)", b.Name))
			continue
		}
		if !c.ReuseBitwiseEqual {
			regressions = append(regressions, fmt.Sprintf("%s: decode digests differ between reuse on and off — paging changed results", c.Name))
		}
		if c.DigestBits != b.DigestBits {
			regressions = append(regressions, fmt.Sprintf("%s: decode digest %s != baseline %s — serving results changed",
				c.Name, c.DigestBits, b.DigestBits))
		}
		if c.LeakedPages != 0 {
			regressions = append(regressions, fmt.Sprintf("%s: %d leaked KV pages (must be 0)", c.Name, c.LeakedPages))
		}
		if !c.StepWithinSLO {
			regressions = append(regressions, fmt.Sprintf("%s: p99 decode step %.3fms exceeds the %.3fms SLO bound",
				c.Name, c.P99StepMs, c.StepSLOMs))
		}
		if c.PrefillCyclesOn > c.PrefillCyclesOff {
			regressions = append(regressions, fmt.Sprintf("%s: prefix reuse increased prefill cycles (%.4g on vs %.4g off)",
				c.Name, c.PrefillCyclesOn, c.PrefillCyclesOff))
		}
		if c.GroupsPerTenant > 0 && c.ReusedTokens == 0 {
			regressions = append(regressions, fmt.Sprintf("%s: shared-prefix trace reused zero tokens", c.Name))
		}
		limit := b.GoodputTPS * (1 - opts.GoodputTolerance)
		switch {
		case c.GoodputTPS < limit:
			regressions = append(regressions, fmt.Sprintf("%s: goodput %.1f tok/s < baseline %.1f -%.0f%% (limit %.1f)",
				c.Name, c.GoodputTPS, b.GoodputTPS, opts.GoodputTolerance*100, limit))
		case c.GoodputTPS > b.GoodputTPS*1.20:
			notes = append(notes, fmt.Sprintf("%s: goodput improved %.1f -> %.1f tok/s; consider refreshing the baseline",
				b.Name, b.GoodputTPS, c.GoodputTPS))
		}
	}
	for _, c := range current.Cases {
		found := false
		for _, b := range baseline.Cases {
			if b.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			regressions = append(regressions, fmt.Sprintf("%s: case absent from baseline (suite changed? refresh baseline)", c.Name))
		}
	}
	return regressions, notes
}
