// Plan-cache warm-start benchmark: cold vs warm plans-before-first-hit.
//
// The persistent plan-cache tier exists so a freshly started replica can
// serve its predecessor's hot shapes without paying the online planner once.
// This suite proves that end to end: a cold compiler plans the hot-shape set
// online, exports a snapshot, round-trips it through the crash-safe file
// format, and a second compiler warm-started from that file must serve every
// hot shape with ZERO online plans and bitwise-identical programs (program
// string plus IEEE-754 cost bits). A tampered library hash must reject the
// snapshot cleanly and fall back to online planning. The gate is
// self-contained — no committed baseline — because every gated quantity is
// exact by construction.
package bench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/plancache"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// PlanCacheBenchSchema versions the plancache suite report layout.
const PlanCacheBenchSchema = "mikpoly-bench-plancache/v1"

// PlanCacheCaseResult records one hot shape's cold-vs-warm comparison.
type PlanCacheCaseResult struct {
	Name        string `json:"name"`
	M           int    `json:"m"`
	N           int    `json:"n"`
	K           int    `json:"k"`
	ColdFP      string `json:"cold_fp"`
	WarmFP      string `json:"warm_fp"`
	Bitwise     bool   `json:"bitwise_equal"`
	WarmPlanned bool   `json:"warm_planned_online"`
}

// PlanCacheReport is the -suite plancache document (informational; the gate
// is self-contained).
type PlanCacheReport struct {
	Schema       string                `json:"schema"`
	HW           string                `json:"hw"`
	LibraryHash  string                `json:"library_hash"`
	ColdPlans    int                   `json:"cold_plans"`
	WarmPlans    int                   `json:"warm_plans"`
	Imported     int                   `json:"imported"`
	SnapshotSize int                   `json:"snapshot_entries"`
	Cases        []PlanCacheCaseResult `json:"cases"`
}

// planCacheShapes derives the hot-shape set from the planner suite's pinned
// GPU cases — the same traffic the perf gate measures.
func planCacheShapes(quick bool) []PlannerCase {
	var out []PlannerCase
	for _, c := range PlannerSuite(quick) {
		if c.HW == "a100" {
			out = append(out, c)
		}
	}
	return out
}

// RunPlanCacheSuite runs the cold/warm comparison and returns the report plus
// the list of gate regressions (empty = pass). An error means the suite
// itself could not run.
func RunPlanCacheSuite(quick bool, opts tune.Options) (*PlanCacheReport, []string, error) {
	if opts == (tune.Options{}) {
		opts = tune.DefaultOptions()
	}
	cases := planCacheShapes(quick)
	if len(cases) == 0 {
		return nil, nil, errors.New("bench: plancache suite has no cases")
	}
	lib, err := core.SharedLibrary(hw.A100(), opts)
	if err != nil {
		return nil, nil, err
	}

	var regressions []string
	rep := &PlanCacheReport{
		Schema: PlanCacheBenchSchema,
		HW:     lib.HW.Name,
	}

	// Cold replica: every hot shape is an online plan.
	cold := core.NewCompilerFromLibrary(lib)
	rep.LibraryHash = cold.LibraryHash()
	if rep.LibraryHash == "" {
		return nil, nil, errors.New("bench: library has no content hash; snapshots disabled")
	}
	coldFP := make(map[string]string, len(cases))
	for _, c := range cases {
		shape := tensor.GemmShape{M: c.M, N: c.N, K: c.K}
		prog, err := cold.Plan(shape)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: cold plan %s: %w", c.Name, err)
		}
		coldFP[c.Name] = plancache.ProgramFingerprint(prog)
	}
	rep.ColdPlans, _ = cold.PlanStats()
	if rep.ColdPlans != len(cases) {
		regressions = append(regressions, fmt.Sprintf(
			"cold replica planned %d shapes online, want %d (cache not cold?)", rep.ColdPlans, len(cases)))
	}

	// Snapshot round-trip through the crash-safe file format.
	snap, err := cold.ExportSnapshot()
	if err != nil {
		return nil, nil, fmt.Errorf("bench: export snapshot: %w", err)
	}
	rep.SnapshotSize = len(snap.Entries)
	dir, err := os.MkdirTemp("", "mikbench-plancache-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "plans.snap")
	if err := plancache.SaveFile(snap, path); err != nil {
		return nil, nil, fmt.Errorf("bench: save snapshot: %w", err)
	}
	loaded, err := plancache.LoadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: load snapshot: %w", err)
	}
	if len(loaded.Entries) != len(snap.Entries) {
		regressions = append(regressions, fmt.Sprintf(
			"snapshot round-trip lost entries: saved %d, loaded %d", len(snap.Entries), len(loaded.Entries)))
	}
	for i := range snap.Entries {
		if i >= len(loaded.Entries) {
			break
		}
		want := plancache.ProgramFingerprint(snap.Entries[i].Program)
		got := plancache.ProgramFingerprint(loaded.Entries[i].Program)
		if want != got {
			regressions = append(regressions, fmt.Sprintf(
				"snapshot round-trip entry %d not bitwise-identical:\n  saved:  %s\n  loaded: %s", i, want, got))
		}
	}

	// Warm replica: import the round-tripped snapshot, then serve every hot
	// shape. The gate: zero online plans, bitwise-identical programs.
	warm := core.NewCompilerFromLibrary(lib)
	imported, err := warm.ImportSnapshot(loaded)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: import snapshot: %w", err)
	}
	rep.Imported = imported
	for _, c := range cases {
		shape := tensor.GemmShape{M: c.M, N: c.N, K: c.K}
		before, _ := warm.PlanStats()
		prog, err := warm.Plan(shape)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: warm plan %s: %w", c.Name, err)
		}
		after, _ := warm.PlanStats()
		res := PlanCacheCaseResult{
			Name: c.Name, M: c.M, N: c.N, K: c.K,
			ColdFP:      coldFP[c.Name],
			WarmFP:      plancache.ProgramFingerprint(prog),
			WarmPlanned: after > before,
		}
		res.Bitwise = res.ColdFP == res.WarmFP
		if res.WarmPlanned {
			regressions = append(regressions, fmt.Sprintf(
				"%s: warm replica planned online (want snapshot hit)", c.Name))
		}
		if !res.Bitwise {
			regressions = append(regressions, fmt.Sprintf(
				"%s: warm program not bitwise-identical to cold:\n  cold: %s\n  warm: %s",
				c.Name, res.ColdFP, res.WarmFP))
		}
		rep.Cases = append(rep.Cases, res)
	}
	rep.WarmPlans, _ = warm.PlanStats()
	if rep.WarmPlans != 0 {
		regressions = append(regressions, fmt.Sprintf(
			"warm replica performed %d online plans over the hot set, want 0", rep.WarmPlans))
	}

	// Invalidation: a snapshot from a retuned (different-hash) library must
	// be rejected cleanly, and the replica must still plan online.
	tampered := *loaded
	tampered.LibraryHash = "deadbeef" + tampered.LibraryHash
	stale := core.NewCompilerFromLibrary(lib)
	if n, err := stale.ImportSnapshot(&tampered); err == nil {
		regressions = append(regressions, fmt.Sprintf(
			"tampered library-hash snapshot was accepted (%d entries), want rejection", n))
	} else if !errors.Is(err, plancache.ErrIncompatible) {
		regressions = append(regressions, fmt.Sprintf(
			"tampered snapshot rejection is not ErrIncompatible: %v", err))
	}
	first := cases[0]
	prog, err := stale.Plan(tensor.GemmShape{M: first.M, N: first.N, K: first.K})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: replan after rejected snapshot: %w", err)
	}
	if fp := plancache.ProgramFingerprint(prog); fp != coldFP[first.Name] {
		regressions = append(regressions, fmt.Sprintf(
			"%s: online replan after rejected snapshot diverged:\n  cold:   %s\n  replan: %s",
			first.Name, coldFP[first.Name], fp))
	}
	if n, _ := stale.PlanStats(); n != 1 {
		regressions = append(regressions, fmt.Sprintf(
			"replica with rejected snapshot performed %d online plans for one request, want 1", n))
	}

	return rep, regressions, nil
}
