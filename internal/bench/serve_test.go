package bench

import "testing"

// One quick-suite run must pass its own gate, and the gate must trip on a
// perturbed baseline — the serve-perf CI job's self-check.
func TestServeSuiteQuickAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("serve suite replays full traces; skipped in -short")
	}
	rep, err := RunServeSuite(ServeSuite(true), ServeMeasureOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 2 {
		t.Fatalf("got %d cases", len(rep.Cases))
	}
	for _, c := range rep.Cases {
		if c.Completed == 0 {
			t.Fatalf("%s: nothing completed", c.Name)
		}
		if c.LeakedPages != 0 {
			t.Fatalf("%s: leaked %d pages", c.Name, c.LeakedPages)
		}
		if !c.ReuseBitwiseEqual {
			t.Fatalf("%s: reuse on/off digests differ", c.Name)
		}
		if !c.StepWithinSLO {
			t.Fatalf("%s: p99 step %.3fms over the %.3fms bound", c.Name, c.P99StepMs, c.StepSLOMs)
		}
		if c.GroupsPerTenant > 0 {
			if c.ReusedTokens == 0 {
				t.Fatalf("%s: shared-prefix case reused no tokens", c.Name)
			}
			if c.PrefillCyclesOn >= c.PrefillCyclesOff {
				t.Fatalf("%s: reuse did not cut prefill cycles: on=%g off=%g",
					c.Name, c.PrefillCyclesOn, c.PrefillCyclesOff)
			}
		}
		if c.GoodputTPS <= 0 {
			t.Fatalf("%s: zero goodput", c.Name)
		}
	}

	// Self-compare passes.
	if regs, _ := CompareServe(rep, rep, ServeCompareOpts{}); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}
	// A goodput collapse beyond tolerance trips the gate.
	bad := *rep
	bad.Cases = append([]ServeCaseResult(nil), rep.Cases...)
	bad.Cases[0].GoodputTPS *= 0.5
	if regs, _ := CompareServe(rep, &bad, ServeCompareOpts{}); len(regs) == 0 {
		t.Fatal("gate did not trip on a 50% goodput drop")
	}
	// A digest change trips the gate.
	bad2 := *rep
	bad2.Cases = append([]ServeCaseResult(nil), rep.Cases...)
	bad2.Cases[1].DigestBits = "deadbeefdeadbeef"
	if regs, _ := CompareServe(rep, &bad2, ServeCompareOpts{}); len(regs) == 0 {
		t.Fatal("gate did not trip on a digest change")
	}
	// A leaked page trips the gate.
	bad3 := *rep
	bad3.Cases = append([]ServeCaseResult(nil), rep.Cases...)
	bad3.Cases[0].LeakedPages = 1
	if regs, _ := CompareServe(rep, &bad3, ServeCompareOpts{}); len(regs) == 0 {
		t.Fatal("gate did not trip on a KV page leak")
	}
}

// Two runs of the same case must produce bit-identical gated fields — the
// property that makes BENCH_serve.json machine-independent.
func TestServeSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("serve suite replays full traces; skipped in -short")
	}
	cases := ServeSuite(true)[:1]
	a, err := RunServeSuite(cases, ServeMeasureOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServeSuite(cases, ServeMeasureOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Cases[0], b.Cases[0]
	if ca.GoodputTPSBits != cb.GoodputTPSBits || ca.DigestBits != cb.DigestBits {
		t.Fatalf("replay not deterministic: goodput %s vs %s, digest %s vs %s",
			ca.GoodputTPSBits, cb.GoodputTPSBits, ca.DigestBits, cb.DigestBits)
	}
}
