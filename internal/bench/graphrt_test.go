package bench

import "testing"

func TestExtGraphRT(t *testing.T) {
	tb, err := ExtGraphRT(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 in quick mode", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[2] != "yes" {
			t.Fatalf("plan-ahead and sequential cycles diverged: %v", r)
		}
	}
}
