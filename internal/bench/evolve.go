package bench

import (
	"time"

	"mikpoly/internal/baseline"
	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/stats"
	"mikpoly/internal/tune"
	"mikpoly/internal/workload"
)

// AblationEvolve measures the evolutionary refinement of the offline stage:
// a small seed grid (n_gen = 4) plus mutation-based hill climbing should
// recover most of the full grid's quality at a fraction of the offline
// enumeration — the reason TVM-style auto-schedulers refine rather than
// enumerate.
func AblationEvolve(cfg Config) (*Table, error) {
	h := hw.A100()
	cublas := baseline.CuBLAS(h)
	n := 60
	if !cfg.Quick {
		n = 200
	}
	cases := workload.Subsample(workload.Table3Suite(), n)

	eval := func(lib *tune.Library) (float64, error) {
		mik := core.NewCompilerFromLibrary(lib)
		var spd []float64
		for _, c := range cases {
			mc, err := simCycles(mik.Plan, h, c.Shape)
			if err != nil {
				return 0, err
			}
			vc, err := simCycles(cublas.Plan, h, c.Shape)
			if err != nil {
				return 0, err
			}
			spd = append(spd, vc/mc)
		}
		return stats.Mean(spd), nil
	}

	t := &Table{
		ID:     "ablation-evolve",
		Title:  "Offline-stage refinement: seed grid vs evolved vs full grid (speedup over cuBLAS)",
		Header: []string{"offline stage", "speedup", "offline-ms", "improved-kernels"},
	}

	smallOpt := tune.DefaultOptions()
	smallOpt.NGen = 4
	start := time.Now()
	small, err := tune.Generate(h, smallOpt)
	if err != nil {
		return nil, err
	}
	smallMs := time.Since(start)
	s1, err := eval(small)
	if err != nil {
		return nil, err
	}
	t.AddRow("seed grid (n_gen=4)", s1, float64(smallMs.Milliseconds()), 0)

	start = time.Now()
	evolved, st, err := tune.Refine(small, tune.EvolveOptions{Rounds: 48, Seed: 5})
	if err != nil {
		return nil, err
	}
	evolveMs := time.Since(start)
	s2, err := eval(evolved)
	if err != nil {
		return nil, err
	}
	t.AddRow("seed + evolution", s2, float64((smallMs + evolveMs).Milliseconds()), st.Improved)

	start = time.Now()
	full, err := core.SharedLibrary(h, tune.DefaultOptions())
	if err != nil {
		return nil, err
	}
	fullMs := time.Since(start)
	s3, err := eval(full)
	if err != nil {
		return nil, err
	}
	t.AddRow("full grid (n_gen=32)", s3, float64(fullMs.Milliseconds()), 0)
	t.Note("full-grid time is zero when another experiment already built the shared library")
	return t, nil
}
