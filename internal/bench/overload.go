// Overload benchmark harness: surge survival with the defenses on vs off.
//
// The overload suite drives the scheduler through a Poisson trace whose base
// rate already saturates the simulated device and whose burst window multiplies
// arrivals several-fold — the traffic shape that melts an undefended replica.
// Every seed replays the same surge four ways:
//
//   - defended: AIMD adaptive admission + queue-time deadline shedding +
//     KV-pressure preemption over a tight arena;
//   - undefended: the same scheduler with every defense off;
//   - restore-tight / restore-wide: preemption alone through a tight arena vs
//     an arena that never preempts, for the bitwise-restore invariant.
//
// The gate is self-contained (no committed baseline) because the replay clock
// is virtual: goodput-under-SLO of the defended run must be at least
// OverloadGoodputFactor times the undefended run, no configuration may leak a
// single KV page, preempt→restore must reproduce the no-preemption decode
// digests bit for bit while completing every request, and a second defended
// replay must be bitwise-identical to the first (per-seed determinism).
package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/graphrt"
	"mikpoly/internal/hw"
	"mikpoly/internal/kvcache"
	"mikpoly/internal/sched"
	"mikpoly/internal/tune"
	"mikpoly/internal/workload"
)

// OverloadBenchSchema versions the overload suite report layout.
const OverloadBenchSchema = "mikpoly-bench-overload/v1"

// OverloadGoodputFactor is the headline gate: goodput-under-SLO with the
// defenses on must be at least this multiple of the undefended run on the
// same surge.
const OverloadGoodputFactor = 2.0

// DefaultOverloadSeeds is the seed matrix when the caller passes none (the
// CI job overrides it per matrix entry).
func DefaultOverloadSeeds(quick bool) []uint64 {
	if quick {
		return []uint64{11}
	}
	return []uint64{11, 29}
}

// OverloadCase pins the surge shape and the scheduler configuration both
// sides run under; only the defense switches differ between runs.
type OverloadCase struct {
	Requests       int     `json:"requests"`
	Tenants        int     `json:"tenants"`
	ArrivalsPerSec float64 `json:"arrivals_per_sec"`
	BurstFactor    float64 `json:"burst_factor"`
	BurstStartSec  float64 `json:"burst_start_sec"`
	BurstLenSec    float64 `json:"burst_len_sec"`
	PromptMin      int     `json:"prompt_min"`
	PromptMax      int     `json:"prompt_max"`
	DecodeMin      int     `json:"decode_min"`
	DecodeMax      int     `json:"decode_max"`

	KVPages        int     `json:"kv_pages"`
	KVPagesWide    int     `json:"kv_pages_wide"`
	PageTokens     int     `json:"page_tokens"`
	PrefillChunk   int     `json:"prefill_chunk"`
	StepSLOMs      float64 `json:"step_slo_ms"`
	TTFTSLOMs      float64 `json:"ttft_slo_ms"`
	InFlightTokens int64   `json:"inflight_tokens"`
	AdaptiveMin    int64   `json:"adaptive_min_tokens"`
}

// OverloadSuiteCase returns the pinned surge shape. The trace length is the
// same in quick mode — a shorter surge does not sustain the overload the
// gates are calibrated against — so quick subsamples the seed matrix
// (DefaultOverloadSeeds) instead.
func OverloadSuiteCase(quick bool) OverloadCase {
	c := OverloadCase{
		// The device drains this request mix at roughly 50 requests per
		// virtual second (measured; the serve suite's cases sit well under
		// that). 1200 arrivals/s with a 5x burst window on top is a >20x
		// overload: the shape that makes an undefended replica burn cycles
		// on requests that have already missed their deadline and drop
		// sequences mid-decode when the tight 48-page arena runs out.
		Requests: 48, Tenants: 3, ArrivalsPerSec: 1200,
		BurstFactor: 5, BurstStartSec: 0.01, BurstLenSec: 0.03,
		PromptMin: 64, PromptMax: 512, DecodeMin: 8, DecodeMax: 24,
		KVPages: 48, KVPagesWide: 8192, PageTokens: 16, PrefillChunk: 256,
		StepSLOMs: 30, TTFTSLOMs: 300, InFlightTokens: 16384, AdaptiveMin: 1024,
	}
	_ = quick
	return c
}

// OverloadSeedResult is one seed's four-way replay outcome.
type OverloadSeedResult struct {
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests"`

	// Defended run (adaptive + deadline shed + KV preemption).
	DefendedGoodput     float64 `json:"defended_goodput_tps"`
	DefendedGoodputBits string  `json:"defended_goodput_bits"`
	DefendedSLOGood     int     `json:"defended_slo_good"`
	DefendedCompleted   int     `json:"defended_completed"`
	DeadlineSheds       int64   `json:"deadline_sheds"`
	Preemptions         int64   `json:"preemptions"`
	Restores            int64   `json:"restores"`
	AdaptiveLimitTokens int64   `json:"adaptive_limit_tokens"`

	// Undefended run on the same surge.
	UndefendedGoodput float64 `json:"undefended_goodput_tps"`
	UndefendedSLOGood int     `json:"undefended_slo_good"`

	// GoodputRatio is defended/undefended (+Inf encoded as 0 ratio with
	// UndefendedGoodput 0 — the gate treats that as a pass when the
	// defended side produced goodput).
	GoodputRatio float64 `json:"goodput_ratio"`

	// Restore invariant: preemption churn vs the arena that never preempts.
	RestorePreemptions int64  `json:"restore_preemptions"`
	RestoreDigest      string `json:"restore_digest"`
	WideDigest         string `json:"wide_digest"`
	RestoreBitwise     bool   `json:"restore_bitwise_equal"`

	Deterministic bool `json:"deterministic"`
	LeakedPages   int  `json:"leaked_pages"` // summed across all runs

	// Events is the defended run's bounded overload decision log (preempt,
	// restore, shed-deadline, limit-cut) — the CI failure artifact.
	Events []sched.Event `json:"events,omitempty"`

	WallSec float64 `json:"wall_sec"`
}

// OverloadReport is the -suite overload document (informational; the gate is
// self-contained).
type OverloadReport struct {
	Schema   string               `json:"schema"`
	GoOS     string               `json:"goos"`
	GoArch   string               `json:"goarch"`
	TuneNGen int                  `json:"tune_ngen"`
	TuneNMik int                  `json:"tune_nmik"`
	Case     OverloadCase         `json:"case"`
	Seeds    []OverloadSeedResult `json:"seeds"`
}

func (c OverloadCase) traceConfig(seed uint64, h hw.Hardware) workload.TraceConfig {
	return workload.TraceConfig{
		Seed:           seed,
		Requests:       c.Requests,
		Tenants:        c.Tenants,
		ArrivalsPerSec: c.ArrivalsPerSec,
		ClockHz:        h.ClockHz,
		PromptMin:      c.PromptMin,
		PromptMax:      c.PromptMax,
		DecodeMin:      c.DecodeMin,
		DecodeMax:      c.DecodeMax,
		BurstFactor:    c.BurstFactor,
		BurstStartSec:  c.BurstStartSec,
		BurstLenSec:    c.BurstLenSec,
	}
}

// overloadRun describes one replay variant.
type overloadRun struct {
	pages    int
	adaptive bool
	shed     bool
	preempt  bool
	events   bool
}

func (c OverloadCase) schedConfig(h hw.Hardware, r overloadRun) sched.Config {
	return sched.Config{
		HW:                h,
		KV:                kvcache.Config{NumPages: r.pages, TokensPerPage: c.PageTokens},
		PrefillChunk:      c.PrefillChunk,
		StepSLOMs:         c.StepSLOMs,
		TTFTSLOMs:         c.TTFTSLOMs,
		MaxInFlightTokens: c.InFlightTokens,
		Adaptive:          r.adaptive,
		AdaptiveMinTokens: c.AdaptiveMin,
		ShedDeadlines:     r.shed,
		PreemptKV:         r.preempt,
		RecordEvents:      r.events,
	}
}

// RunOverloadSuite replays the surge for every seed and returns the report
// plus the gate regressions (empty = pass). An error means the suite itself
// could not run.
func RunOverloadSuite(quick bool, seeds []uint64, opts ServeMeasureOpts) (*OverloadReport, []string, error) {
	opts = opts.withDefaults()
	if len(seeds) == 0 {
		seeds = DefaultOverloadSeeds(quick)
	}
	c := OverloadSuiteCase(quick)
	h := hw.A100()
	lib, err := core.SharedLibrary(h, opts.Tune)
	if err != nil {
		return nil, nil, err
	}

	rep := &OverloadReport{
		Schema:   OverloadBenchSchema,
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		TuneNGen: opts.Tune.NGen,
		TuneNMik: opts.Tune.NMik,
		Case:     c,
	}
	var regressions []string
	for _, seed := range seeds {
		res, regs, err := measureOverloadSeed(c, seed, lib)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: overload seed %d: %w", seed, err)
		}
		rep.Seeds = append(rep.Seeds, res)
		regressions = append(regressions, regs...)
	}
	return rep, regressions, nil
}

// replayOverload runs one variant over the trace and returns the report,
// stats, and event log. Defended and restore runs are strict: every failure
// must be a deadline shed. Undefended runs are not — dropping requests on
// arena exhaustion is exactly the collapse the defenses exist to prevent,
// so those failures feed the baseline's goodput rather than erroring the
// suite. Leak accounting stays strict on both sides.
func replayOverload(c OverloadCase, lib *tune.Library, trace []workload.TraceRequest, r overloadRun, strict bool) (sched.Report, sched.Stats, []sched.Event, error) {
	comp := core.NewCompilerFromLibrary(lib)
	rt := graphrt.New(comp, graphrt.Config{})
	s := sched.New(rtExecutor{rt}, c.schedConfig(lib.HW, r))
	rep, results, err := s.Replay(context.Background(), trace)
	if err != nil {
		return sched.Report{}, sched.Stats{}, nil, err
	}
	if strict {
		for _, res := range results {
			if res.Err != nil && !errors.Is(res.Err, sched.ErrDeadline) {
				return sched.Report{}, sched.Stats{}, nil, fmt.Errorf("request %d failed: %w", res.ID, res.Err)
			}
		}
	}
	if err := s.KV().Quiescent(); err != nil {
		return sched.Report{}, sched.Stats{}, nil, fmt.Errorf("arena not quiescent after drain: %w", err)
	}
	return rep, s.Stats(), s.Events(), nil
}

func measureOverloadSeed(c OverloadCase, seed uint64, lib *tune.Library) (OverloadSeedResult, []string, error) {
	trace := workload.GenerateTrace(c.traceConfig(seed, lib.HW))
	start := time.Now()
	tag := func(format string, args ...any) string {
		return fmt.Sprintf("seed %d: ", seed) + fmt.Sprintf(format, args...)
	}

	defended := overloadRun{pages: c.KVPages, adaptive: true, shed: true, preempt: true, events: true}
	defRep, defStats, events, err := replayOverload(c, lib, trace, defended, true)
	if err != nil {
		return OverloadSeedResult{}, nil, err
	}
	undefRep, _, _, err := replayOverload(c, lib, trace, overloadRun{pages: c.KVPages}, false)
	if err != nil {
		return OverloadSeedResult{}, nil, err
	}
	tightRep, tightStats, _, err := replayOverload(c, lib, trace, overloadRun{pages: c.KVPages, preempt: true}, true)
	if err != nil {
		return OverloadSeedResult{}, nil, err
	}
	wideRep, _, _, err := replayOverload(c, lib, trace, overloadRun{pages: c.KVPagesWide}, true)
	if err != nil {
		return OverloadSeedResult{}, nil, err
	}
	defRep2, defStats2, _, err := replayOverload(c, lib, trace, defended, true)
	if err != nil {
		return OverloadSeedResult{}, nil, err
	}

	res := OverloadSeedResult{
		Seed:                seed,
		Requests:            len(trace),
		DefendedGoodput:     defRep.GoodputTokensPerSec,
		DefendedGoodputBits: fmt.Sprintf("%016x", math.Float64bits(defRep.GoodputTokensPerSec)),
		DefendedSLOGood:     defRep.SLOGood,
		DefendedCompleted:   defRep.Completed,
		DeadlineSheds:       defStats.DeadlineSheds,
		Preemptions:         defStats.Preemptions,
		Restores:            defStats.Restores,
		AdaptiveLimitTokens: defStats.AdaptiveLimitTokens,
		UndefendedGoodput:   undefRep.GoodputTokensPerSec,
		UndefendedSLOGood:   undefRep.SLOGood,
		RestorePreemptions:  tightStats.Preemptions,
		RestoreDigest:       fmt.Sprintf("%016x", tightRep.DigestBits),
		WideDigest:          fmt.Sprintf("%016x", wideRep.DigestBits),
		RestoreBitwise:      tightRep.DigestBits == wideRep.DigestBits && tightRep.Completed == wideRep.Completed,
		Deterministic:       defRep == defRep2 && defStats == defStats2,
		LeakedPages:         defRep.LeakedPages + undefRep.LeakedPages + tightRep.LeakedPages + wideRep.LeakedPages + defRep2.LeakedPages,
		Events:              events,
		WallSec:             time.Since(start).Seconds(),
	}
	if res.UndefendedGoodput > 0 {
		res.GoodputRatio = res.DefendedGoodput / res.UndefendedGoodput
	}

	var regs []string
	// Every request must be accounted for: completed or deadline-shed.
	if got := defRep.Completed + defRep.Failed; got != len(trace) {
		regs = append(regs, tag("defended run accounted %d of %d requests", got, len(trace)))
	}
	if res.LeakedPages != 0 {
		regs = append(regs, tag("%d KV pages leaked across the surge runs (must be 0)", res.LeakedPages))
	}
	switch {
	case res.UndefendedGoodput == 0 && res.DefendedGoodput == 0:
		regs = append(regs, tag("defenses produced no goodput under the surge"))
	case res.UndefendedGoodput > 0 && res.GoodputRatio < OverloadGoodputFactor:
		regs = append(regs, tag("defended goodput %.1f tok/s is only %.2fx the undefended %.1f (gate %.1fx)",
			res.DefendedGoodput, res.GoodputRatio, res.UndefendedGoodput, OverloadGoodputFactor))
	}
	if res.RestorePreemptions == 0 {
		regs = append(regs, tag("tight arena exercised no preemption; the restore invariant went untested"))
	}
	if tightRep.Failed != 0 {
		regs = append(regs, tag("preemption-only run failed %d requests (preemption must be lossless)", tightRep.Failed))
	}
	if !res.RestoreBitwise {
		regs = append(regs, tag("preempt→restore not bitwise-identical: tight %s (%d done) vs wide %s (%d done)",
			res.RestoreDigest, tightRep.Completed, res.WideDigest, wideRep.Completed))
	}
	if !res.Deterministic {
		regs = append(regs, tag("defended replay not deterministic: identical seed produced different bits"))
	}
	if res.DeadlineSheds == 0 && res.Preemptions == 0 && defStats.AdaptiveLimitTokens >= c.InFlightTokens {
		regs = append(regs, tag("surge engaged no defense (no sheds, no preemptions, limiter never moved)"))
	}
	return res, regs, nil
}
