package bench

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/engine"
	"mikpoly/internal/graphrt"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// The fusion gate: whole-graph polymerization must (a) beat the unfused
// execution on simulated cycles for every suite case, (b) be bitwise
// numerically identical to the per-op path, and (c) keep the fused planner's
// steady-state allocation count flat. The simulator, the tuner, and the
// planner are all deterministic, so the cycle numbers are exact quantities
// gated bitwise against the committed BENCH_fusion.json — regenerate the
// baseline (mikbench -suite fusion -out BENCH_fusion.json) when a deliberate
// cost-model change moves them.

// FusionStage describes one GEMM stage of a suite chain.
type FusionStage struct {
	N int `json:"n"`
	K int `json:"k"`
	// Epilogue names the elementwise function folded onto this stage's
	// output ("relu", "gelu", "" = none; must be empty on the last stage).
	Epilogue string `json:"epilogue,omitempty"`
}

// FusionPerfCase is one end-to-end graph case of the fusion suite.
type FusionPerfCase struct {
	Name string `json:"name"`
	// M is the shared row count of the chain.
	M      int           `json:"m"`
	Stages []FusionStage `json:"stages"`
}

// graph builds the case's operator graph: the GEMM chain with each named
// epilogue expressed as a standalone elementwise op between the GEMMs —
// exactly what fusion must detect, fold, and beat.
func (c FusionPerfCase) graph(h hw.Hardware) nn.Graph {
	g := nn.Graph{Name: "fusion-" + c.Name}
	for i, st := range c.Stages {
		g.Ops = append(g.Ops, nn.Op{
			Name: fmt.Sprintf("gemm%d", i), Kind: nn.OpGemm,
			Gemm:  tensor.GemmShape{M: c.M, N: st.N, K: st.K},
			Count: 1,
		})
		if st.Epilogue != "" {
			g.Ops = append(g.Ops, nn.Op{
				Name: fmt.Sprintf("%s%d", st.Epilogue, i), Kind: nn.OpOther,
				OtherBytes:  float64(c.M) * float64(st.N) * float64(h.InputBytes+h.OutputBytes),
				Elementwise: st.Epilogue,
				Count:       1,
			})
		}
	}
	return g
}

// spec is the planning request the detector would derive from the graph.
func (c FusionPerfCase) spec() poly.ChainSpec {
	var spec poly.ChainSpec
	for _, st := range c.Stages {
		ep := poly.EpNone
		switch st.Epilogue {
		case "relu":
			ep = poly.EpReLU
		case "gelu":
			ep = poly.EpGELU
		}
		spec.Stages = append(spec.Stages, poly.ChainStageSpec{
			Shape:    tensor.GemmShape{M: c.M, N: st.N, K: st.K},
			Epilogue: ep,
		})
	}
	return spec
}

// FusionSuite returns the pinned perf cases: long chains of narrow,
// memory-bound GEMMs with enough rows that strip-level parallelism still
// fills the device — the regime whole-graph polymerization exists for.
// Quick mode subsamples for tests.
func FusionSuite(quick bool) []FusionPerfCase {
	cases := []FusionPerfCase{
		{Name: "mlp-relu-14k", M: 13824, Stages: []FusionStage{
			{N: 256, K: 512, Epilogue: "relu"}, {N: 128, K: 256}}},
		{Name: "mlp-gelu-16k", M: 16384, Stages: []FusionStage{
			{N: 128, K: 256, Epilogue: "gelu"}, {N: 128, K: 128}}},
		{Name: "deep-3stage-8k", M: 8192, Stages: []FusionStage{
			{N: 192, K: 384, Epilogue: "relu"}, {N: 96, K: 192, Epilogue: "relu"}, {N: 64, K: 96}}},
		{Name: "ragged-m-relu", M: 7000, Stages: []FusionStage{
			{N: 256, K: 384, Epilogue: "relu"}, {N: 64, K: 256}}},
		{Name: "bare-chain-24k", M: 24576, Stages: []FusionStage{
			{N: 96, K: 192}, {N: 48, K: 96}}},
	}
	if quick {
		return cases[:2]
	}
	return cases
}

// fusionNumericsCases are the conformance shapes for the bitwise gate:
// deliberately small (they execute real arithmetic on the host) and ragged
// in every dimension, with biases exercising the epilogue path.
func fusionNumericsCases() []FusionPerfCase {
	return []FusionPerfCase{
		{Name: "tiny-relu", M: 96, Stages: []FusionStage{
			{N: 48, K: 64, Epilogue: "relu"}, {N: 32, K: 48}}},
		{Name: "ragged-gelu", M: 117, Stages: []FusionStage{
			{N: 53, K: 71, Epilogue: "gelu"}, {N: 29, K: 53}}},
		{Name: "deep-mixed", M: 160, Stages: []FusionStage{
			{N: 64, K: 80, Epilogue: "relu"}, {N: 48, K: 64, Epilogue: "gelu"}, {N: 24, K: 48}}},
		{Name: "wide-k-relu", M: 144, Stages: []FusionStage{
			{N: 40, K: 256, Epilogue: "relu"}, {N: 56, K: 40}}},
	}
}

// FusionPerfResult is one measured perf case in the stable JSON schema.
type FusionPerfResult struct {
	FusionPerfCase

	// FusedCycles/UnfusedCycles are the simulated end-to-end graph cycles
	// with fusion on and off; the *_bits fields carry exact IEEE-754 bit
	// patterns for the bitwise baseline gate.
	FusedCycles       float64 `json:"fused_cycles"`
	FusedCyclesBits   string  `json:"fused_cycles_bits"`
	UnfusedCycles     float64 `json:"unfused_cycles"`
	UnfusedCyclesBits string  `json:"unfused_cycles_bits"`

	// FusedChains is the number of chains the fused execution actually ran
	// fused (must be >= 1: a rejected chain makes the case meaningless).
	FusedChains int `json:"fused_chains"`
	// SavedBytes is the modeled inter-stage traffic the fusion avoided.
	SavedBytes float64 `json:"saved_bytes"`

	// PlanAllocsPerOp is the steady-state allocation count of one
	// PlanChain call (losing candidates must never materialize).
	PlanAllocsPerOp int64 `json:"plan_allocs_per_op"`
}

// FusionNumericsResult is one bitwise conformance case.
type FusionNumericsResult struct {
	Name          string `json:"name"`
	FusedDigest   string `json:"fused_digest"`
	UnfusedDigest string `json:"unfused_digest"`
	Bitwise       bool   `json:"bitwise"`
}

// FusionBenchReport is the BENCH_fusion.json document.
type FusionBenchReport struct {
	Schema   string                 `json:"schema"`
	GoOS     string                 `json:"goos"`
	GoArch   string                 `json:"goarch"`
	HW       string                 `json:"hw"`
	Cases    []FusionPerfResult     `json:"cases"`
	Numerics []FusionNumericsResult `json:"numerics"`
}

// FusionReportSchema versions the report format.
const FusionReportSchema = "mikpoly-fusion-bench/v1"

// RunFusionSuite measures the fusion suite on the shared A100 library and
// applies the self-contained gates (fused wins, chains fused, bitwise
// numerics); baseline-relative gates live in CompareFusion.
func RunFusionSuite(quick bool) (*FusionBenchReport, []string, error) {
	lib, err := core.SharedLibrary(hw.A100(), tune.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	h := lib.HW
	rep := &FusionBenchReport{
		Schema: FusionReportSchema,
		GoOS:   runtime.GOOS, GoArch: runtime.GOARCH,
		HW: h.Name,
	}
	var regs []string

	execute := func(g nn.Graph, fuse bool) (graphrt.Report, error) {
		rt := graphrt.New(core.NewCompilerFromLibrary(lib), graphrt.Config{Fuse: fuse})
		return rt.Execute(context.Background(), g)
	}
	for _, c := range FusionSuite(quick) {
		g := c.graph(h)
		unfused, err := execute(g, false)
		if err != nil {
			return nil, nil, fmt.Errorf("fusion case %s unfused: %w", c.Name, err)
		}
		fused, err := execute(g, true)
		if err != nil {
			return nil, nil, fmt.Errorf("fusion case %s fused: %w", c.Name, err)
		}
		allocs, err := measureChainPlanAllocs(lib, c.spec())
		if err != nil {
			return nil, nil, fmt.Errorf("fusion case %s allocs: %w", c.Name, err)
		}
		res := FusionPerfResult{
			FusionPerfCase:    c,
			FusedCycles:       fused.Cycles,
			FusedCyclesBits:   floatBits(fused.Cycles),
			UnfusedCycles:     unfused.Cycles,
			UnfusedCyclesBits: floatBits(unfused.Cycles),
			FusedChains:       fused.FusedChains,
			SavedBytes:        fused.FusedSavedBytes,
			PlanAllocsPerOp:   allocs,
		}
		rep.Cases = append(rep.Cases, res)
		if res.FusedChains < 1 {
			regs = append(regs, fmt.Sprintf("%s: chain was not fused (%d rejected)", c.Name, fused.FusionRejected))
		}
		if !(res.FusedCycles < res.UnfusedCycles) {
			regs = append(regs, fmt.Sprintf("%s: fused cycles %.0f do not beat unfused %.0f",
				c.Name, res.FusedCycles, res.UnfusedCycles))
		}
	}

	planner := &poly.Planner{Lib: lib}
	for _, c := range fusionNumericsCases() {
		res, err := runFusionNumerics(planner, c)
		if err != nil {
			return nil, nil, fmt.Errorf("fusion numerics %s: %w", c.Name, err)
		}
		rep.Numerics = append(rep.Numerics, res)
		if !res.Bitwise {
			regs = append(regs, fmt.Sprintf("numerics %s: fused digest %s != unfused %s",
				res.Name, res.FusedDigest[:12], res.UnfusedDigest[:12]))
		}
	}
	return rep, regs, nil
}

// measureChainPlanAllocs reports the steady-state allocations of one
// PlanChain call: after warmup (pool populated), losing candidates must cost
// nothing — only the winning program materializes.
func measureChainPlanAllocs(lib *tune.Library, spec poly.ChainSpec) (int64, error) {
	p := &poly.Planner{Lib: lib}
	for i := 0; i < 16; i++ {
		if _, _, err := p.PlanChain(spec); err != nil {
			return 0, err
		}
	}
	const iters = 64
	best := int64(math.MaxInt64)
	var ms0, ms1 runtime.MemStats
	for r := 0; r < 3; r++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for i := 0; i < iters; i++ {
			if _, _, err := p.PlanChain(spec); err != nil {
				return 0, err
			}
		}
		runtime.ReadMemStats(&ms1)
		if a := int64(ms1.Mallocs-ms0.Mallocs) / iters; a < best {
			best = a
		}
	}
	return best, nil
}

// runFusionNumerics executes one conformance chain both ways on identical
// deterministic operands and digests the raw output bits.
func runFusionNumerics(p *poly.Planner, c FusionPerfCase) (FusionNumericsResult, error) {
	spec := c.spec()
	rng := uint64(0x9e3779b97f4a7c15)
	fill := func(m *tensor.Matrix) {
		for i := range m.Data {
			rng = rng*6364136223846793005 + 1442695040888963407
			m.Data[i] = float32(int64(rng>>40)%2048-1024) / 512
		}
	}
	a := tensor.NewMatrix(c.M, c.Stages[0].K)
	fill(a)
	stages := make([]engine.ChainStage, len(c.Stages))
	acts := make([]engine.Activation, len(c.Stages))
	for i, st := range c.Stages {
		b := tensor.NewMatrix(st.K, st.N)
		fill(b)
		bias := make([]float32, st.N)
		for j := range bias {
			rng = rng*6364136223846793005 + 1442695040888963407
			bias[j] = float32(int64(rng>>40)%256-128) / 256
		}
		stages[i] = engine.ChainStage{B: b, Bias: bias}
		switch st.Epilogue {
		case "relu":
			acts[i] = engine.ActReLU
		case "gelu":
			acts[i] = engine.ActGELU
		}
	}

	fusedProg, _, err := p.PlanChain(spec)
	if err != nil {
		return FusionNumericsResult{}, err
	}
	fusedOut, err := engine.ExecuteChain(fusedProg, a, stages)
	if err != nil {
		return FusionNumericsResult{}, err
	}

	// Unfused reference: each stage plans and executes standalone with its
	// epilogue applied via the single-op fused write-back.
	cur := a
	for i, st := range c.Stages {
		prog, _, err := p.Plan(tensor.GemmShape{M: c.M, N: st.N, K: st.K})
		if err != nil {
			return FusionNumericsResult{}, err
		}
		cur, err = engine.ExecuteFused(prog, cur, stages[i].B, engine.Epilogue{Bias: stages[i].Bias, Act: acts[i]})
		if err != nil {
			return FusionNumericsResult{}, err
		}
	}

	fd, ud := matrixDigest(fusedOut), matrixDigest(cur)
	return FusionNumericsResult{
		Name: c.Name, FusedDigest: fd, UnfusedDigest: ud, Bitwise: fd == ud,
	}, nil
}

// matrixDigest hashes the exact float bit patterns of a matrix's logical
// contents (stride-safe).
func matrixDigest(m *tensor.Matrix) string {
	h := sha256.New()
	var buf [4]byte
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CompareFusion applies the baseline-relative gates: matching case sets,
// bitwise-identical cycle numbers (everything in the pipeline is
// deterministic), and zero allocation growth in the fused planner path.
// Self-contained gates (fused wins, bitwise numerics) are re-checked so a
// gate run never passes on a stale self-check.
func CompareFusion(base, cur *FusionBenchReport) (regressions, notes []string) {
	if base.Schema != cur.Schema {
		regressions = append(regressions, fmt.Sprintf("schema %q != baseline %q — regenerate the baseline", cur.Schema, base.Schema))
		return regressions, notes
	}
	baseCases := make(map[string]FusionPerfResult, len(base.Cases))
	for _, b := range base.Cases {
		baseCases[b.Name] = b
	}
	for _, c := range cur.Cases {
		if c.FusedChains < 1 {
			regressions = append(regressions, fmt.Sprintf("%s: chain was not fused", c.Name))
		}
		if !(c.FusedCycles < c.UnfusedCycles) {
			regressions = append(regressions, fmt.Sprintf("%s: fused cycles %.0f do not beat unfused %.0f",
				c.Name, c.FusedCycles, c.UnfusedCycles))
		}
		b, ok := baseCases[c.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new case, no baseline", c.Name))
			continue
		}
		delete(baseCases, c.Name)
		if c.FusedCyclesBits != b.FusedCyclesBits {
			regressions = append(regressions, fmt.Sprintf("%s: fused cycles %.0f != baseline %.0f (deterministic quantity; regenerate the baseline only for deliberate cost-model changes)",
				c.Name, c.FusedCycles, b.FusedCycles))
		}
		if c.PlanAllocsPerOp > b.PlanAllocsPerOp {
			regressions = append(regressions, fmt.Sprintf("%s: PlanChain allocs/op %d > baseline %d (no alloc growth allowed)",
				c.Name, c.PlanAllocsPerOp, b.PlanAllocsPerOp))
		}
	}
	for name := range baseCases {
		regressions = append(regressions, fmt.Sprintf("%s: baseline case missing from this run", name))
	}
	for _, n := range cur.Numerics {
		if !n.Bitwise {
			regressions = append(regressions, fmt.Sprintf("numerics %s: fused and unfused outputs differ", n.Name))
		}
	}
	return regressions, notes
}

// floatBits renders a float64's exact IEEE-754 bit pattern.
func floatBits(f float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(f))
}

// FusionSummary renders the human-readable table mikbench prints.
func FusionSummary(rep *FusionBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %14s %14s %8s %7s %12s %7s\n",
		"case", "fused-cycles", "unfused", "speedup", "chains", "saved-bytes", "allocs")
	for _, c := range rep.Cases {
		speedup := 0.0
		if c.FusedCycles > 0 {
			speedup = c.UnfusedCycles / c.FusedCycles
		}
		fmt.Fprintf(&b, "%-18s %14.0f %14.0f %7.2fx %7d %12.3g %7d\n",
			c.Name, c.FusedCycles, c.UnfusedCycles, speedup, c.FusedChains, c.SavedBytes, c.PlanAllocsPerOp)
	}
	for _, n := range rep.Numerics {
		fmt.Fprintf(&b, "numerics %-16s bitwise=%v\n", n.Name, n.Bitwise)
	}
	return b.String()
}

// fusionElapsed is a tiny helper for mikbench logging.
func fusionElapsed(start time.Time) string { return time.Since(start).Round(time.Millisecond).String() }
