package bench

import (
	"fmt"

	"mikpoly/internal/baseline"
	"mikpoly/internal/hw"
	"mikpoly/internal/stats"
	"mikpoly/internal/tensor"
	"mikpoly/internal/workload"
)

// Fig1 reproduces Figure 1: the same vendor GEMM routine delivers wildly
// different TFLOPS across shapes, including the paper's two headline shapes
// (4096³ ≈ 262 TFLOPS vs (105, 1024, 12544) ≈ 22 TFLOPS on the real A100).
func Fig1(cfg Config) (*Table, error) {
	h := hw.A100()
	v := baseline.CuBLAS(h)
	shapes := []tensor.GemmShape{
		{M: 4096, N: 4096, K: 4096},
		{M: 2048, N: 2048, K: 2048},
		{M: 1024, N: 1024, K: 1024},
		{M: 4096, N: 1024, K: 4096},
		{M: 512, N: 512, K: 4096},
		{M: 105, N: 1024, K: 12544},
		{M: 128, N: 128, K: 65536},
		{M: 33, N: 4096, K: 4096},
		{M: 7, N: 7, K: 40000},
		{M: 1, N: 1024, K: 1024},
	}
	t := &Table{
		ID:     "fig1",
		Title:  "GEMM performance variation across shapes (vendor library)",
		Header: []string{"shape", "GFLOPs", "TFLOPS", "%peak"},
	}
	peak := h.PeakFLOPS()
	var best, worst float64
	worst = peak
	for _, s := range shapes {
		cycles, err := simCycles(v.Plan, h, s)
		if err != nil {
			return nil, err
		}
		tput := s.FLOPs() / h.CyclesToSeconds(cycles)
		if tput > best {
			best = tput
		}
		if tput < worst {
			worst = tput
		}
		t.AddRow(s.String(), s.FLOPs()/1e9, tput/1e12, 100*tput/peak)
	}
	headline := func(s tensor.GemmShape) float64 {
		cycles, err := simCycles(v.Plan, h, s)
		if err != nil {
			return 0
		}
		return s.FLOPs() / h.CyclesToSeconds(cycles)
	}
	good := headline(tensor.GemmShape{M: 4096, N: 4096, K: 4096})
	bad := headline(tensor.GemmShape{M: 105, N: 1024, K: 12544})
	t.Note("headline shapes: %.1f vs %.1f TFLOPS, ratio %.1fx (paper: 262.2 vs 22.3 ≈ 11.8x); full sweep best/worst %.0fx",
		good/1e12, bad/1e12, good/bad, best/worst)
	return t, nil
}

// operatorComparison runs a GEMM suite under several systems and summarizes
// speedups over the first system (the baseline). With cfg.ScatterDir set it
// also writes the per-case (FLOPs, speedup) points the paper's scatter
// figures plot.
func operatorComparison(cfg Config, id, title string, h hw.Hardware, cases []workload.Case,
	base planFn, baseName string, systems []struct {
		name string
		plan planFn
	}) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"system", "mean", "geomean", "max", "min", "win%", "cases"},
	}
	header := []string{"case", "flops"}
	for _, sys := range systems {
		header = append(header, sys.name+"-speedup")
	}
	scatter, err := newScatterWriter(cfg, id, header)
	if err != nil {
		return nil, err
	}
	speedups := make([][]float64, len(systems))
	for _, c := range cases {
		bc, err := simCycles(base, h, c.Shape)
		if err != nil {
			return nil, fmt.Errorf("%s on %v: %w", baseName, c.Shape, err)
		}
		row := []any{c.ID, c.Shape.FLOPs()}
		for i, sys := range systems {
			sc, err := simCycles(sys.plan, h, c.Shape)
			if err != nil {
				return nil, fmt.Errorf("%s on %v: %w", sys.name, c.Shape, err)
			}
			speedups[i] = append(speedups[i], bc/sc)
			row = append(row, bc/sc)
		}
		scatter.point(row...)
	}
	if err := scatter.close(); err != nil {
		return nil, err
	}
	for i, sys := range systems {
		s := stats.Summarize(speedups[i])
		t.AddRow(sys.name+" vs "+baseName, s.Mean, s.Geomean, s.Max, s.Min,
			100*s.FractionOver, s.N)
	}
	return t, nil
}

// Fig6GEMM reproduces the GEMM half of Figure 6: MikPoly vs cuBLAS and
// CUTLASS on the Table 3 suite (paper: 1.47x over cuBLAS, max 4.82x; 3.02x
// over CUTLASS).
func Fig6GEMM(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	cublas := baseline.CuBLAS(h)
	cutlass := baseline.NewCutlass(h)
	cases := workload.Subsample(workload.Table3Suite(), cfg.gemmCases())
	return operatorComparison(cfg, "fig6-gemm",
		"Dynamic-shape GEMM on GPU (Table 3 suite)",
		h, cases, cublas.Plan, "cuBLAS",
		[]struct {
			name string
			plan planFn
		}{
			{"MikPoly", mik.Plan},
			{"CUTLASS", cutlass.Plan},
		})
}

// Fig6Conv reproduces the convolution half of Figure 6: MikPoly vs cuDNN on
// the Table 4 suite via the implicit-GEMM lowering (paper: 1.98x, max 5.38x;
// 1.72x over CUTLASS).
func Fig6Conv(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	cudnn := baseline.CuDNN(h)
	cutlass := baseline.NewCutlass(h)
	cases := convToGemm(workload.SubsampleConv(workload.Table4Suite(), cfg.convCases()))
	return operatorComparison(cfg, "fig6-conv",
		"Dynamic-shape convolution on GPU (Table 4 suite, implicit GEMM)",
		h, cases, cudnn.Plan, "cuDNN",
		[]struct {
			name string
			plan planFn
		}{
			{"MikPoly", mik.Plan},
			{"CUTLASS", cutlass.Plan},
		})
}

// Fig7GEMM reproduces the GEMM half of Figure 7 on the NPU (paper: 1.10x
// over CANN).
func Fig7GEMM(cfg Config) (*Table, error) {
	h := hw.Ascend910()
	mik, err := mikpolyNPU()
	if err != nil {
		return nil, err
	}
	cann := baseline.CANN(h)
	cases := workload.Subsample(workload.Table3Suite(), cfg.gemmCases())
	return operatorComparison(cfg, "fig7-gemm",
		"Dynamic-shape GEMM on NPU (Table 3 suite)",
		h, cases, cann.Plan, "CANN",
		[]struct {
			name string
			plan planFn
		}{{"MikPoly", mik.Plan}})
}

// Fig7Conv reproduces the convolution half of Figure 7 (paper: 1.41x over
// CANN).
func Fig7Conv(cfg Config) (*Table, error) {
	h := hw.Ascend910()
	mik, err := mikpolyNPU()
	if err != nil {
		return nil, err
	}
	cann := baseline.CANNConv(h)
	cases := convToGemm(workload.SubsampleConv(workload.Table4Suite(), cfg.convCases()))
	return operatorComparison(cfg, "fig7-conv",
		"Dynamic-shape convolution on NPU (Table 4 suite, implicit GEMM)",
		h, cases, cann.Plan, "CANN",
		[]struct {
			name string
			plan planFn
		}{{"MikPoly", mik.Plan}})
}

// convToGemm lowers a convolution suite to its GEMM cases.
func convToGemm(cases []workload.ConvCase) []workload.Case {
	out := make([]workload.Case, len(cases))
	for i, c := range cases {
		out[i] = workload.Case{ID: c.ID, Category: c.Category, Shape: c.Shape.GemmShape()}
	}
	return out
}

// Fig10 reproduces Figure 10: MikPoly vs DietCode, Nimble and CUTLASS on
// CUDA cores with the Table 3 ranges declared (paper: 2.94x, 7.54x, 3.59x).
func Fig10(cfg Config) (*Table, error) {
	h := hw.A100CUDACores()
	mik, err := mikpolyCUDA()
	if err != nil {
		return nil, err
	}
	diet, err := baseline.NewDietCode(mik.Library(), table3Ranges())
	if err != nil {
		return nil, err
	}
	nim, err := baseline.NewNimble(mik.Library(), table3Ranges())
	if err != nil {
		return nil, err
	}
	cutlass := baseline.NewCutlass(h)

	cases := workload.Subsample(workload.Table3Suite(), cfg.gemmCases())
	t := &Table{
		ID:     "fig10",
		Title:  "CUDA-core comparison with range-restricted compilers (normalized to each baseline)",
		Header: []string{"system", "mean", "geomean", "max", "min", "win%", "cases"},
	}
	scatter, err := newScatterWriter(cfg, "fig10",
		[]string{"case", "flops", "vs-dietcode", "vs-nimble", "vs-cutlass"})
	if err != nil {
		return nil, err
	}
	var vsDiet, vsNim, vsCut []float64
	invalid := 0
	for _, c := range cases {
		mc, err := simCycles(mik.Plan, h, c.Shape)
		if err != nil {
			return nil, err
		}
		point := []any{c.ID, c.Shape.FLOPs(), 0.0, 0.0, 0.0}
		if dc, err := simCycles(diet.Plan, h, c.Shape); err == nil {
			vsDiet = append(vsDiet, dc/mc)
			point[2] = dc / mc
		} else {
			invalid++
		}
		if nc, err := simCycles(nim.Plan, h, c.Shape); err == nil {
			vsNim = append(vsNim, nc/mc)
			point[3] = nc / mc
		}
		cc, err := simCycles(cutlass.Plan, h, c.Shape)
		if err != nil {
			return nil, err
		}
		vsCut = append(vsCut, cc/mc)
		point[4] = cc / mc
		scatter.point(point...)
	}
	if err := scatter.close(); err != nil {
		return nil, err
	}
	for _, row := range []struct {
		name string
		s    stats.Summary
	}{
		{"MikPoly vs DietCode", stats.Summarize(vsDiet)},
		{"MikPoly vs Nimble", stats.Summarize(vsNim)},
		{"MikPoly vs CUTLASS", stats.Summarize(vsCut)},
	} {
		t.AddRow(row.name, row.s.Mean, row.s.Geomean, row.s.Max, row.s.Min,
			100*row.s.FractionOver, row.s.N)
	}
	t.Note("DietCode tuned %d programs offline; %d out-of-range invalid runs", diet.NumTunedPrograms(), invalid)
	return t, nil
}
