package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true} }

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("v", 1.234567)
	tb.AddRow(42, "s")
	tb.Note("hello %d", 7)
	var buf bytes.Buffer
	tb.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "1.23", "42", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 25 {
		t.Fatalf("experiment count = %d, want 25", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Fatalf("%s has no runner", e.ID)
		}
	}
	if _, ok := Lookup("fig6-gemm"); !ok {
		t.Fatal("Lookup failed for fig6-gemm")
	}
	if _, ok := Lookup("nonexistent"); ok {
		t.Fatal("Lookup returned a phantom experiment")
	}
}

// speedupCell parses a formatted float cell.
func speedupCell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestFig1ShowsPerformanceCliff(t *testing.T) {
	tb, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 8 {
		t.Fatalf("too few rows: %d", len(tb.Rows))
	}
	var best, worst float64
	worst = 1e18
	for i := range tb.Rows {
		v := speedupCell(t, tb, i, 2)
		if v > best {
			best = v
		}
		if v < worst {
			worst = v
		}
	}
	if best/worst < 5 {
		t.Fatalf("cliff ratio %.1f too small (paper: ~11.8x)", best/worst)
	}
	if best < 100 {
		t.Fatalf("peak vendor TFLOPS %.1f implausibly low", best)
	}
}

func TestFig6GEMMShape(t *testing.T) {
	tb, err := Fig6GEMM(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	mik := speedupCell(t, tb, 0, 1) // MikPoly vs cuBLAS mean
	cut := speedupCell(t, tb, 1, 1) // CUTLASS vs cuBLAS mean
	if mik < 1.1 {
		t.Fatalf("MikPoly vs cuBLAS = %.2f, want > 1.1 (paper 1.47)", mik)
	}
	if cut > mik {
		t.Fatalf("CUTLASS (%.2f) must not beat MikPoly (%.2f) on average", cut, mik)
	}
}

func TestFig6ConvShape(t *testing.T) {
	tb, err := Fig6Conv(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if mik := speedupCell(t, tb, 0, 1); mik < 1.1 {
		t.Fatalf("MikPoly vs cuDNN = %.2f, want > 1.1 (paper 1.98)", mik)
	}
}

func TestFig7Shapes(t *testing.T) {
	g, err := Fig7GEMM(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v := speedupCell(t, g, 0, 1); v < 1.0 {
		t.Fatalf("NPU GEMM vs CANN = %.2f, want >= 1.0 (paper 1.10)", v)
	}
	c, err := Fig7Conv(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v := speedupCell(t, c, 0, 1); v < 1.05 {
		t.Fatalf("NPU conv vs CANN = %.2f, want > 1.05 (paper 1.41)", v)
	}
}

func TestFig10Ordering(t *testing.T) {
	tb, err := Fig10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	diet := speedupCell(t, tb, 0, 1)
	nim := speedupCell(t, tb, 1, 1)
	if diet < 1.2 {
		t.Fatalf("vs DietCode = %.2f, want > 1.2 (paper 2.94)", diet)
	}
	if nim <= diet {
		t.Fatalf("Nimble (%.2f) must trail DietCode (%.2f) (paper 7.54 vs 2.94)", nim, diet)
	}
}

func TestFig12bOrdering(t *testing.T) {
	tb, err := Fig12b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	full := speedupCell(t, tb, 0, 1)
	wave := speedupCell(t, tb, 1, 1)
	pipe := speedupCell(t, tb, 2, 1)
	if full < 0.9 || full > 1.01 {
		t.Fatalf("MikPoly vs oracle = %.2f, want ~0.96", full)
	}
	if wave >= full || pipe >= full {
		t.Fatalf("ablated variants (wave %.2f, pipe %.2f) must trail the full model (%.2f)",
			wave, pipe, full)
	}
}

func TestTable9CaseStudy(t *testing.T) {
	tb, err := Table9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Row 1 is GEMM-AB: its speedup over GEMM-A must be >= 1.
	spd := speedupCell(t, tb, 1, 6)
	if spd < 1.0 {
		t.Fatalf("polymerized case-study speedup = %.2f, want >= 1 (paper 1.21)", spd)
	}
	effA := speedupCell(t, tb, 0, 4)
	effAB := speedupCell(t, tb, 1, 4)
	if spd > 1.01 && effAB <= effA {
		t.Fatalf("sm_efficiency must improve with polymerization: %.1f%% -> %.1f%%", effA, effAB)
	}
}

func TestAblationPruningKeepsResults(t *testing.T) {
	tb, err := AblationPruning(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][4] != "true" {
		t.Fatal("pruning changed selected program costs")
	}
	candOn, _ := strconv.Atoi(tb.Rows[0][1])
	candOff, _ := strconv.Atoi(tb.Rows[1][1])
	if candOn > candOff {
		t.Fatalf("pruning evaluated more candidates (%d) than no-pruning (%d)", candOn, candOff)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"shape", "v"}}
	tb.AddRow("(1,2,3)", 1.5)
	tb.AddRow(`has"quote`, 2)
	tb.Note("a note")
	var buf bytes.Buffer
	tb.WriteCSV(&buf)
	out := buf.String()
	for _, want := range []string{
		"shape,v\n",
		`"(1,2,3)",1.50`,
		`"has""quote",2`,
		"# a note",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestScatterOutput(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Quick: true, ScatterDir: dir}
	if _, err := Fig6GEMM(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6-gemm-scatter.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("scatter has %d lines, want >= 100 (quick suite)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "case,flops,MikPoly-speedup") {
		t.Fatalf("scatter header = %q", lines[0])
	}
	cols := strings.Split(lines[1], ",")
	if len(cols) != 4 {
		t.Fatalf("scatter row has %d columns: %q", len(cols), lines[1])
	}
	if _, err := strconv.ParseFloat(cols[1], 64); err != nil {
		t.Fatalf("flops column not numeric: %q", cols[1])
	}
}
