package bench

import (
	"fmt"

	"mikpoly/internal/baseline"
	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/sim"
	"mikpoly/internal/stats"
	"mikpoly/internal/tensor"
)

// graphEval computes a model graph's end-to-end latency under one system:
// simulated cycles for every GEMM/conv operator (cached per distinct shape)
// plus bandwidth-bound cycles for the non-GEMM work, plus — when an overhead
// probe is supplied — the wall-clock cost of the online compilation stage
// once per distinct shape, converted to device cycles (the paper includes
// MikPoly's cost-model overhead in its e2e latencies, §5.2.2).
type graphEval struct {
	h        hw.Hardware
	plan     planFn
	overhead func(tensor.GemmShape) float64 // extra cycles, once per shape
	simCache map[batchKey]float64
}

// batchKey caches simulated cost per (shape, batch count): repeated
// operators (per-head attention GEMMs, grouped launches) dispatch as one
// batched grid whose tasks co-schedule, not as Count sequential launches.
type batchKey struct {
	s tensor.GemmShape
	n int
}

func newGraphEval(h hw.Hardware, plan planFn) *graphEval {
	return &graphEval{h: h, plan: plan, simCache: make(map[batchKey]float64)}
}

// mikpolyEval wires a MikPoly compiler in with online-overhead accounting.
func mikpolyEval(c *core.Compiler) *graphEval {
	e := newGraphEval(c.Hardware(), c.Plan)
	e.overhead = func(s tensor.GemmShape) float64 {
		_, st, err := c.PlanUncached(s)
		if err != nil {
			return 0
		}
		return st.ModeledOverheadCycles()
	}
	return e
}

// latency returns the graph's total cycles, or an error if any operator
// cannot be planned (an invalid inference run).
func (e *graphEval) latency(g nn.Graph) (float64, error) {
	var total float64
	for _, op := range g.Ops {
		switch op.Kind {
		case nn.OpOther:
			total += op.OtherCycles(e.h) * float64(op.Count)
		default:
			key := batchKey{s: op.Gemm, n: op.Count}
			cycles, ok := e.simCache[key]
			if !ok {
				prog, err := e.plan(op.Gemm)
				if err != nil {
					return 0, fmt.Errorf("graph %s op %s: %w", g.Name, op.Name, err)
				}
				single := prog.Tasks(e.h)
				batched := single
				if op.Count > 1 {
					batched = make([]sim.Task, 0, len(single)*op.Count)
					for i := 0; i < op.Count; i++ {
						batched = append(batched, single...)
					}
				}
				cycles = sim.Run(e.h, batched).Cycles
				e.simCache[key] = cycles
				if e.overhead != nil {
					total += e.overhead(op.Gemm)
				}
			}
			total += cycles
		}
	}
	return total, nil
}

// Fig8 reproduces Figure 8: end-to-end language-model inference on the GPU
// across 150 sentence lengths in [5, 500] (paper: MikPoly over
// cuBLAS-backed baselines — BERT 1.39x, DistilBERT 1.38x, RoBERTa 1.36x,
// ALBERT 1.37x; CUTLASS consistently below MikPoly).
func Fig8(cfg Config) (*Table, error) {
	h := hw.A100()
	mik, err := mikpolyGPU()
	if err != nil {
		return nil, err
	}
	cublas := baseline.CuBLAS(h)
	cutlass := baseline.NewCutlass(h)

	t := &Table{
		ID:     "fig8",
		Title:  "End-to-end language-model inference on GPU (dynamic sequence length)",
		Header: []string{"model", "MikPoly-vs-cuBLAS", "CUTLASS-vs-cuBLAS", "inputs"},
	}
	seqs := nn.SequenceLengths()[:cfg.seqCount()]
	for _, mcfg := range nn.LanguageModels() {
		mikEval := mikpolyEval(mik)
		vEval := newGraphEval(h, cublas.Plan)
		cEval := newGraphEval(h, cutlass.Plan)
		var spdMik, spdCut []float64
		for _, seq := range seqs {
			g := nn.Transformer(mcfg, seq, 1)
			lm, err := mikEval.latency(g)
			if err != nil {
				return nil, err
			}
			lv, err := vEval.latency(g)
			if err != nil {
				return nil, err
			}
			lc, err := cEval.latency(g)
			if err != nil {
				return nil, err
			}
			spdMik = append(spdMik, lv/lm)
			spdCut = append(spdCut, lv/lc)
		}
		t.AddRow(mcfg.Name, stats.Mean(spdMik), stats.Mean(spdCut), len(seqs))
	}
	return t, nil
}

// Fig9 reproduces Figure 9 (GPU) and the §5.2.2 NPU numbers: end-to-end CNN
// inference across batch sizes 2^0..2^7 and resolutions 64·i (paper GPU:
// AlexNet 1.34x, GoogLeNet 1.69x, ResNet 1.59x, VGG 1.22x; NPU: 1.30/1.19/
// 1.32/1.38x vs CANN).
func Fig9(cfg Config, npu bool) (*Table, error) {
	var (
		h        hw.Hardware
		mik      *core.Compiler
		convPlan planFn
		gemmPlan planFn
		baseName string
		err      error
	)
	if npu {
		h = hw.Ascend910()
		mik, err = mikpolyNPU()
		if err != nil {
			return nil, err
		}
		convPlan = baseline.CANNConv(h).Plan
		gemmPlan = baseline.CANN(h).Plan
		baseName = "CANN"
	} else {
		h = hw.A100()
		mik, err = mikpolyGPU()
		if err != nil {
			return nil, err
		}
		convPlan = baseline.CuDNN(h).Plan
		gemmPlan = baseline.CuBLAS(h).Plan
		baseName = "cuDNN/cuBLAS"
	}

	batches := nn.CNNBatchSizes()
	resolutions := nn.CNNResolutions()
	if cfg.Quick {
		batches = []int{1, 8, 64}
		resolutions = []int{64, 192, 448}
	}

	t := &Table{
		ID:     "fig9",
		Title:  fmt.Sprintf("End-to-end CNN inference (dynamic batch & resolution) vs %s", baseName),
		Header: []string{"model", "MikPoly speedup", "max", "min", "configs"},
	}
	if npu {
		t.ID = "fig9-npu"
	}
	models := []string{"alexnet", "googlenet", "resnet18", "vgg11"}
	builders := nn.CNNModels()
	for _, name := range models {
		build := builders[name]
		mikEval := mikpolyEval(mik)
		// The vendor stack dispatches convolutions to the conv library
		// and FC layers to the GEMM library.
		vEvalConv := newGraphEval(h, convPlan)
		vEvalGemm := newGraphEval(h, gemmPlan)
		var spd []float64
		for _, b := range batches {
			for _, r := range resolutions {
				g := build(b, r)
				lm, err := mikEval.latency(g)
				if err != nil {
					return nil, err
				}
				lv, err := vendorCNNLatency(g, h, vEvalConv, vEvalGemm)
				if err != nil {
					return nil, err
				}
				spd = append(spd, lv/lm)
			}
		}
		s := stats.Summarize(spd)
		t.AddRow(name, s.Mean, s.Max, s.Min, s.N)
	}
	return t, nil
}

// vendorCNNLatency evaluates a CNN graph under the vendor stack, routing
// conv ops to the conv library and GEMM ops to the GEMM library.
func vendorCNNLatency(g nn.Graph, h hw.Hardware, convEval, gemmEval *graphEval) (float64, error) {
	var total float64
	for _, op := range g.Ops {
		sub := nn.Graph{Name: g.Name, Ops: []nn.Op{op}}
		var e *graphEval
		switch op.Kind {
		case nn.OpConv:
			e = convEval
		case nn.OpGemm:
			e = gemmEval
		default:
			total += op.OtherCycles(h) * float64(op.Count)
			continue
		}
		c, err := e.latency(sub)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

// Table5 reproduces Table 5: end-to-end language models against the
// range-restricted compilers on CUDA cores. DietCode and Nimble were tuned
// for a declared sequence range; sentences outside it are invalid runs
// (paper: MikPoly ≈1.55x over DietCode with zero invalid runs of its own,
// DietCode/Nimble with numerous invalid runs).
func Table5(cfg Config) (*Table, error) {
	h := hw.A100CUDACores()
	mik, err := mikpolyCUDA()
	if err != nil {
		return nil, err
	}
	// The declared ranges assume the deployment default seq ∈ [8, 256];
	// the evaluation feeds lengths in [5, 500].
	ranges := baseline.Ranges{
		M: baseline.Range{Lo: 8, Hi: 256},
		N: baseline.Range{Lo: 8, Hi: 8192},
		K: baseline.Range{Lo: 8, Hi: 8192},
	}
	diet, err := baseline.NewDietCode(mik.Library(), ranges)
	if err != nil {
		return nil, err
	}
	nim, err := baseline.NewNimble(mik.Library(), ranges)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "table5",
		Title: "End-to-end language models vs range-restricted compilers (CUDA cores)",
		Header: []string{"model", "MikPoly-vs-DietCode", "MikPoly-vs-Nimble",
			"DietCode-invalid", "Nimble-invalid", "MikPoly-invalid", "inputs"},
	}
	seqs := nn.SequenceLengths()[:cfg.seqCount()]
	for _, mcfg := range nn.LanguageModels() {
		mikEval := mikpolyEval(mik)
		dEval := newGraphEval(h, diet.Plan)
		nEval := newGraphEval(h, nim.Plan)
		var vsDiet, vsNim []float64
		dietInvalid, nimInvalid, mikInvalid := 0, 0, 0
		for _, seq := range seqs {
			g := nn.Transformer(mcfg, seq, 1)
			lm, err := mikEval.latency(g)
			if err != nil {
				mikInvalid++
				continue
			}
			if ld, err := dEval.latency(g); err != nil {
				dietInvalid++
			} else {
				vsDiet = append(vsDiet, ld/lm)
			}
			if ln, err := nEval.latency(g); err != nil {
				nimInvalid++
			} else {
				vsNim = append(vsNim, ln/lm)
			}
		}
		t.AddRow(mcfg.Name, stats.Mean(vsDiet), stats.Mean(vsNim),
			dietInvalid, nimInvalid, mikInvalid, len(seqs))
	}
	t.Note("declared seq range [8,256], evaluated lengths [5,500]; invalid = whole-inference failures")
	return t, nil
}
