package bench

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/graphrt"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/obs"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// ExtObsOverhead validates the observability layer's two contracts on real
// workloads: (1) observation never changes results — planner cost totals and
// graph device cycles are bit-identical with tracing and metrics fully on —
// and (2) the instrumented path stays cheap (<2% wall overhead is the
// contract; the table reports the measured figure). The two modes run
// interleaved — off/on pairs with the order swapped every rep — and each
// keeps its minimum wall: running one mode as a block and then the other
// lets CPU-frequency and GC drift between the blocks masquerade as
// instrumentation overhead, which dominated the real signal in early runs.
func ExtObsOverhead(cfg Config) (*Table, error) {
	lib, err := core.SharedLibrary(hw.A100(), tune.DefaultOptions())
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ext-obs-overhead",
		Title: "Observability overhead: tracing+metrics on vs off (identical results required)",
		Header: []string{"workload", "cycles", "cycle-drift", "wall-ms-off",
			"wall-ms-on", "overhead-pct", "within-2pct"},
	}

	// Quick mode shrinks the planner sweep to ~14 ms; the pair count stays
	// at 10 because scheduler jitter, not workload size, is what the
	// estimator has to beat.
	nShapes, reps := 48, 10
	if cfg.Quick {
		nShapes = 16
	}
	rng := rand.New(rand.NewSource(23))
	shapes := make([]tensor.GemmShape, nShapes)
	for i := range shapes {
		shapes[i] = tensor.GemmShape{
			M: 1 + rng.Intn(2048), N: 1 + rng.Intn(2048), K: 1 + rng.Intn(1024),
		}
	}

	// Planner sweep: fresh compiler per rep (cold cache — every shape pays
	// full polymerization), fingerprinted by the summed Eq. 2 cost of the
	// chosen programs.
	plannerSweep := func(o *obs.Obs) (float64, error) {
		var opts []core.Option
		if o != nil {
			opts = append(opts, core.WithObs(o))
		}
		c := core.NewCompilerFromLibrary(lib, opts...)
		var sum float64
		for _, s := range shapes {
			prog, err := c.PlanContext(context.Background(), s)
			if err != nil {
				return 0, err
			}
			sum += prog.EstimatedCost
		}
		return sum, nil
	}

	// Graph execution: Llama2 decode end to end, fingerprinted by simulated
	// device cycles. Sequential planning keeps the wall deterministic. One
	// cold execution (planner spans, memo fills) plus hot steady-state
	// repeats per timed run: a single ~1 ms execution cannot discriminate a
	// 2% contract from scheduler jitter, and repeats are what serving does.
	g := nn.Llama2Decode(4, 512)
	const decodeExecs = 20
	graphRun := func(o *obs.Obs) (float64, error) {
		var opts []core.Option
		if o != nil {
			opts = append(opts, core.WithObs(o))
		}
		rt := graphrt.New(core.NewCompilerFromLibrary(lib, opts...), graphrt.Config{Obs: o})
		var sum float64
		for e := 0; e < decodeExecs; e++ {
			rep, err := rt.Execute(context.Background(), g)
			if err != nil {
				return 0, err
			}
			sum += rep.Cycles
		}
		return sum, nil
	}

	type workload struct {
		name string
		run  func(o *obs.Obs) (float64, error)
	}
	for _, w := range []workload{
		{"planner-sweep", plannerSweep},
		{"llama2-decode", graphRun},
	} {
		// One measurement of the workload in one mode: min wall of two
		// back-to-back runs, clipping the one-sided scheduler/GC spikes a
		// single run is exposed to. Observed mode gets a fresh Obs per run
		// so the ring buffer and registry fill from empty — the worst case
		// for the instrumented path (o is built outside the timed region).
		timed := func(observed bool) (float64, time.Duration, error) {
			var fp float64
			best := time.Duration(1<<63 - 1)
			for i := 0; i < 2; i++ {
				var o *obs.Obs
				if observed {
					o = obs.New(obs.DefaultTraceCapacity)
				}
				// Start both modes from the same heap state: without this,
				// the ring-buffer allocation above pushes a pending GC out
				// of the on-mode's timed region while off-mode runs absorb
				// theirs inside it, and the "overhead" goes negative.
				runtime.GC()
				start := time.Now()
				got, err := w.run(o)
				wall := time.Since(start)
				if err != nil {
					return 0, 0, err
				}
				if i == 0 {
					fp = got
				} else if got != fp {
					return 0, 0, errNondeterministic(w.name)
				}
				if wall < best {
					best = wall
				}
			}
			return fp, best, nil
		}

		// Interleaved pairs: every rep runs both modes back to back with the
		// order swapped each rep, so the two members of a pair see nearly
		// identical machine state. The headline overhead is the MEDIAN of
		// the per-pair relative deltas — comparing one mode's global
		// minimum against the other's lets a CPU burst that happens to
		// straddle half the run masquerade as instrumentation cost, while
		// the median simply discards burst-corrupted pairs. Fingerprints
		// must agree across every rep of each mode; fpOff vs fpOn below is
		// the 0-drift contract.
		var fpOff, fpOn float64
		wallOff := time.Duration(1<<63 - 1)
		wallOn := wallOff
		deltas := make([]float64, 0, reps)
		for rep := 0; rep < reps; rep++ {
			var pairOff, pairOn time.Duration
			for pass := 0; pass < 2; pass++ {
				observed := (rep+pass)%2 == 1
				got, wall, err := timed(observed)
				if err != nil {
					return nil, err
				}
				fp, best, pair := &fpOff, &wallOff, &pairOff
				if observed {
					fp, best, pair = &fpOn, &wallOn, &pairOn
				}
				if rep == 0 && *fp == 0 {
					*fp = got
				} else if got != *fp {
					// Nondeterminism across reps of the same mode would
					// invalidate the drift comparison entirely.
					return nil, errNondeterministic(w.name)
				}
				*pair = wall
				if wall < *best {
					*best = wall
				}
			}
			deltas = append(deltas, 100*(float64(pairOn)-float64(pairOff))/float64(pairOff))
		}
		sort.Float64s(deltas)
		overhead := deltas[len(deltas)/2]
		if len(deltas)%2 == 0 {
			overhead = (deltas[len(deltas)/2-1] + deltas[len(deltas)/2]) / 2
		}
		msOf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		t.AddRow(w.name, fpOff, boolCell(fpOn != fpOff),
			msOf(wallOff), msOf(wallOn), overhead, boolCell(overhead <= 2.0))
	}
	t.Note("cycle-drift must be no: tracing and metrics never change planner costs or device cycles")
	t.Note("overhead-pct: median of %d interleaved off/on pair deltas, each member min-of-2 runs (wall-ms columns are per-mode floors); contract is <2%%", reps)
	return t, nil
}

// errNondeterministic reports a workload whose fingerprint varied across
// repetitions of the same mode.
type errNondeterministic string

func (e errNondeterministic) Error() string {
	return "bench: workload " + string(e) + " is nondeterministic across reps"
}
