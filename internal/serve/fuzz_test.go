package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// fuzzServer builds one small shared server for all fuzz iterations; tight
// size limits keep even "accepted" inputs cheap.
func fuzzServer(tb testing.TB) http.Handler {
	tb.Helper()
	lib, err := core.SharedLibrary(hw.A100(), tune.Options{NGen: 4, NSyn: 6, NMik: 6, NPred: 128})
	if err != nil {
		tb.Fatal(err)
	}
	srv := New(core.NewCompilerFromLibrary(lib), Config{
		MaxBodyBytes: 1 << 10,
		MaxDim:       256,
		MaxPlanElems: 1 << 21,
		MaxExecElems: 1 << 16,
		MaxSimTasks:  1 << 12,
	})
	return srv.Handler()
}

// FuzzPlanRequest feeds arbitrary bodies to /plan and /execute. The contract
// under fuzzing: the handler never panics (recoverMW would turn that into a
// 500, which the fuzz body rejects for shape-level failures), never accepts
// an invalid shape, and classifies every failure as a 4xx.
func FuzzPlanRequest(f *testing.F) {
	h := fuzzServer(f)

	f.Add(`{"m":64,"n":64,"k":64}`)
	f.Add(`{"m":-1,"n":0,"k":9223372036854775807}`)
	f.Add(`{"m":1073741824,"n":1073741824,"k":1073741824}`)
	f.Add(`{"m":4,`)
	f.Add(`[1,2,3]`)
	f.Add(`{"m":"x","n":true,"k":null}`)
	f.Add(`{"m":1e308,"n":2,"k":2}`)
	f.Add("")
	f.Add(strings.Repeat(`{"m":1},`, 64))

	f.Fuzz(func(t *testing.T, body string) {
		for _, path := range []string{"/plan", "/execute"} {
			req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req) // must not panic

			switch {
			case rec.Code == http.StatusOK:
				// Accepted inputs must have been a valid, in-limit shape.
			case rec.Code >= 400 && rec.Code < 500:
				// Rejected cleanly.
			default:
				t.Fatalf("%s %q: unexpected status %d: %s", path, body, rec.Code, rec.Body)
			}
		}
	})
}

// FuzzGemmShape attacks the shape validator and the fallback program builder
// directly with arbitrary dimension triples: Valid() must agree with what the
// planner/fallback accept, and nothing may panic.
func FuzzGemmShape(f *testing.F) {
	lib, err := core.SharedLibrary(hw.A100(), tune.Options{NGen: 4, NSyn: 6, NMik: 6, NPred: 128})
	if err != nil {
		f.Fatal(err)
	}
	c := core.NewCompilerFromLibrary(lib)

	f.Add(64, 64, 64)
	f.Add(0, 1, 1)
	f.Add(-1, -1, -1)
	f.Add(1<<30, 1, 1)
	f.Add(1, 1<<30, 1<<30)
	f.Add(7, 13, 3)

	f.Fuzz(func(t *testing.T, m, n, k int) {
		shape := tensor.GemmShape{M: m, N: n, K: k}
		// Bound the accepted volume so fuzzing stays fast; validity itself is
		// checked for every input.
		huge := !shape.Valid() ||
			m > 1<<12 || n > 1<<12 || k > 1<<12
		if huge {
			if shape.Valid() {
				return
			}
			if _, _, err := c.PlanOrFallback(context.Background(), shape); err == nil {
				t.Fatalf("invalid shape %v accepted by PlanOrFallback", shape)
			}
			return
		}
		prog, _, err := c.PlanOrFallback(context.Background(), shape)
		if err != nil {
			t.Fatalf("valid shape %v rejected: %v", shape, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("shape %v: illegal program: %v", shape, err)
		}
	})
}
