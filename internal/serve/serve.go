// Package serve is MikPoly's production serving layer: the compilation
// service of the paper's deployment story (§3.5) hardened for heavy traffic.
// It fronts a core.Compiler with HTTP handlers (/plan, /execute), admission
// control (bounded in-flight requests with 429 + Retry-After on overload),
// per-request timeouts, request-size limits, panic-recovery middleware, and
// /healthz + /stats endpoints.
//
// Robustness semantics: planning runs under a deadline and degrades to the
// always-legal single-kernel program (poly.FallbackProgram) rather than
// failing a request — the serving analogue of the paper's "zero invalid
// runs" guarantee. When a simulated execution reports an injected fault
// (sim.Faults), the shape is invalidated and re-planned with exponential
// backoff plus deterministic jitter.
package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/fleet"
	"mikpoly/internal/graphrt"
	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/kvcache"
	"mikpoly/internal/obs"
	"mikpoly/internal/sched"
	"mikpoly/internal/sim"
)

// Config tunes the serving layer. The zero value of any field selects the
// DefaultConfig value, except PlanTimeout < 0, which means "already expired"
// and forces every plan down the fallback path (a test/chaos knob).
type Config struct {
	// MaxInFlight bounds concurrently admitted /plan and /execute
	// requests; excess requests receive 429 with a Retry-After header.
	// /healthz and /stats bypass admission so probes succeed under load.
	MaxInFlight int

	// RequestTimeout bounds one request end to end.
	RequestTimeout time.Duration

	// PlanTimeout bounds the online planning stage within a request;
	// exceeding it degrades to the single-kernel fallback program.
	PlanTimeout time.Duration

	// MaxBodyBytes bounds the request body (http.MaxBytesReader).
	MaxBodyBytes int64

	// MaxDim bounds each of M, N, K; MaxPlanElems bounds M·N·K. Shapes
	// beyond either limit are rejected with 413 before any planning.
	MaxDim       int
	MaxPlanElems int64

	// MaxSimTasks bounds the task count a /plan request will simulate;
	// larger programs are still planned and returned, with simulation
	// skipped (sim fields zero, "sim_skipped": true).
	MaxSimTasks int

	// MaxExecElems bounds each operand's element count (M·K, K·N, M·N)
	// for /execute, which materializes matrices and runs real arithmetic.
	MaxExecElems int64

	// MaxRetries is the number of re-plan + re-run attempts after a
	// simulated execution reports a fault. Negative disables retries.
	MaxRetries int

	// RetryBase and RetryMax shape the exponential backoff between
	// attempts: delay(n) ≈ RetryBase·2ⁿ with jitter, capped at RetryMax.
	RetryBase time.Duration
	RetryMax  time.Duration

	// Seed drives the backoff jitter stream (deterministic tests).
	Seed uint64

	// Faults, when non-nil, injects deterministic hardware degradation
	// into every simulated execution; each retry attempt re-runs with a
	// distinct salt so transient faults can clear.
	Faults *sim.Faults

	// PlanAhead is the graph runtime's plan-ahead depth for /model
	// requests (0 = default, negative = sequential inline planning).
	PlanAhead int

	// Fuse turns on whole-graph polymerization for /model requests:
	// fusible GEMM→epilogue→GEMM chains execute as fused programs when
	// the cost model prefers them (graphrt.Config.Fuse).
	Fuse bool

	// DecodeBatch enables continuous batching of llama2-decode /model
	// requests: concurrent requests share shape-bucketed step graphs.
	DecodeBatch bool

	// MaxModelSteps bounds the decode steps of one /model request.
	MaxModelSteps int

	// MaxModelOps bounds the operator count of a built model graph;
	// larger graphs are rejected with 413.
	MaxModelOps int

	// DisableSelfHeal turns off the health registry and stage-level
	// recovery: faults surface to the blind whole-graph retry loop, as in
	// the pre-self-healing serving layer. A test/benchmark knob — it
	// exists so the chaos harness can measure what the recovery ladder
	// buys over blind retries.
	DisableSelfHeal bool

	// BreakerThreshold is the consecutive unrecoverable-failure count per
	// model name that opens its circuit breaker; BreakerCooldown is how
	// long the breaker stays open before a half-open probe is admitted.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// SchedDecode enables the SLO-aware multi-tenant generation scheduler
	// over a paged KV cache: POST /generate requests are admitted against
	// a token budget (429 + Retry-After when exhausted), identical prompt
	// prefixes share KV pages, and prefill runs in chunks sized to the
	// decode waves' slack under the step SLO.
	SchedDecode bool

	// KVPages/KVPageTokens size the paged KV arena; PrefillChunk bounds
	// one prefill slice; StepSLOMs/TTFTSLOMs are the latency bounds the
	// scheduler packs against; SchedInFlightTokens is the token budget
	// admission counts (prompt + generation across branches, not
	// requests). Zero fields take the scheduler defaults.
	KVPages             int
	KVPageTokens        int
	PrefillChunk        int
	StepSLOMs           float64
	TTFTSLOMs           float64
	SchedInFlightTokens int64

	// Tenants, when non-empty, is the accepted X-Tenant allowlist for
	// /generate; requests naming an unknown tenant are answered 403.
	// Empty admits any tenant name.
	Tenants []string

	// AdaptiveAdmission replaces the scheduler's static token-budget gate
	// with an AIMD limiter that shrinks the admitted mass when decode waves
	// violate the step SLO and grows it while comfortably under.
	AdaptiveAdmission bool

	// ShedDeadlines drops queued /generate requests whose queue wait alone
	// already exceeds their deadline budget: they are answered 504
	// (deadline-exceeded) without ever consuming device cycles, counted
	// separately from admission 429s.
	ShedDeadlines bool

	// DeadlineMs is the default deadline budget (arrival → first token) for
	// /generate requests that do not carry their own deadline_ms; zero falls
	// back to the scheduler's TTFT SLO bound when ShedDeadlines is on.
	DeadlineMs float64

	// KVPreempt lets the scheduler preempt the least-important running
	// sequences when the paged KV arena runs dry, parking them for a
	// bitwise-identical prefix-recompute resume instead of failing them.
	KVPreempt bool

	// Brownout runs the overload ladder controller: ordered degradation
	// stages (tracing off → smaller prefill chunks → stretched hedges →
	// lowest-class shedding) driven by admission occupancy, scheduler
	// backlog, KV pressure, and breaker state, with hysteresis.
	Brownout bool

	// PlanSnapshotPath, when set, names the persistent plan-cache snapshot
	// artifact: SetCompiler warm-starts the program cache from it (an
	// incompatible snapshot is rejected and the replica plans online), and
	// POST /plancache/save and the periodic flusher write back to it.
	PlanSnapshotPath string
	// SnapshotInterval enables the background flusher: every interval the
	// server pre-plans the tracker's hot shapes and atomically rewrites
	// PlanSnapshotPath. Zero disables periodic flushes (manual saves via
	// POST /plancache/save still work).
	SnapshotInterval time.Duration

	// Obs optionally attaches the observability layer: the handler then
	// serves GET /metrics (Prometheus text) and GET /trace (span dump),
	// server/compiler/runtime counters are exported at scrape time, and
	// the same Obs is threaded into the graph runtime for tracing. nil
	// (the default) serves unobserved: both endpoints answer 404 and no
	// instrumentation runs.
	Obs *obs.Obs
}

// DefaultConfig returns production-leaning defaults.
func DefaultConfig() Config {
	return Config{
		MaxInFlight:      64,
		RequestTimeout:   10 * time.Second,
		PlanTimeout:      2 * time.Second,
		MaxBodyBytes:     1 << 16,
		MaxDim:           1 << 20,
		MaxPlanElems:     1 << 40,
		MaxSimTasks:      1 << 18,
		MaxExecElems:     1 << 22,
		MaxRetries:       3,
		RetryBase:        10 * time.Millisecond,
		RetryMax:         500 * time.Millisecond,
		PlanAhead:        2,
		MaxModelSteps:    32,
		MaxModelOps:      4096,
		BreakerThreshold: 5,
		BreakerCooldown:  5 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultConfig. PlanTimeout < 0 is
// preserved (forced-fallback knob).
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = d.MaxInFlight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.PlanTimeout == 0 {
		c.PlanTimeout = d.PlanTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.MaxDim <= 0 {
		c.MaxDim = d.MaxDim
	}
	if c.MaxPlanElems <= 0 {
		c.MaxPlanElems = d.MaxPlanElems
	}
	if c.MaxSimTasks <= 0 {
		c.MaxSimTasks = d.MaxSimTasks
	}
	if c.MaxExecElems <= 0 {
		c.MaxExecElems = d.MaxExecElems
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = d.RetryBase
	}
	if c.RetryMax <= 0 {
		c.RetryMax = d.RetryMax
	}
	if c.PlanAhead == 0 {
		c.PlanAhead = d.PlanAhead
	} else if c.PlanAhead < 0 {
		c.PlanAhead = 0
	}
	if c.MaxModelSteps <= 0 {
		c.MaxModelSteps = d.MaxModelSteps
	}
	if c.MaxModelOps <= 0 {
		c.MaxModelOps = d.MaxModelOps
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = d.BreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = d.BreakerCooldown
	}
	return c
}

// Server serves compilation, execution, and whole-model requests over HTTP.
// The compiler may be bound after construction (SetCompiler): a daemon can
// accept probes while the micro-kernel library loads or tunes, answering
// 503 on work endpoints until ready.
type Server struct {
	compiler atomic.Pointer[core.Compiler]
	runtime  atomic.Pointer[graphrt.Runtime]
	batcher  atomic.Pointer[graphrt.DecodeBatcher]
	sched    atomic.Pointer[sched.Loop]
	health   atomic.Pointer[health.Registry]
	fleet    atomic.Pointer[fleet.Dispatcher]
	cfg      Config
	o        *obs.Obs
	sem      chan struct{}
	bo       *backoff
	breakers *breakerSet
	started  time.Time
	genSeq   atomic.Uint64 // /generate request IDs

	snapQuit chan struct{} // stops the snapshot flusher
	snapOnce sync.Once
	snapWG   sync.WaitGroup
	snapMu   sync.Mutex // serializes snapshot file writes

	// Brownout ladder state (overload.go).
	overStage   atomic.Int32  // current stage, 0 = normal
	overQuit    chan struct{} // stops the ladder controller
	overOnce    sync.Once
	overWG      sync.WaitGroup
	tracerWasOn bool // whether stage 0 should re-enable tracing

	// cumulative counters, exported by /stats
	nRequests      atomic.Int64 // admitted plan/execute/model requests
	nRejected      atomic.Int64 // 429s from admission control
	nDegraded      atomic.Int64 // responses served via the fallback program
	nRetries       atomic.Int64 // fault-triggered re-plan attempts
	nFaults        atomic.Int64 // simulated runs that reported >= 1 faulted task
	nPanics        atomic.Int64 // handler panics recovered
	nModels        atomic.Int64 // /model graphs executed
	nUnrecoverable atomic.Int64 // /model requests failed with a StageError
	nBreakerTrips  atomic.Int64 // circuit-breaker open transitions
	nBreakerDrops  atomic.Int64 // requests rejected by an open breaker
	nGenerated     atomic.Int64 // /generate requests completed
	nTokenRejected atomic.Int64 // /generate 429s from the token budget
	nDeadlineSheds atomic.Int64 // /generate 504s (deadline provably missed)
	nBrownoutSheds atomic.Int64 // /generate 503s from the brownout ladder

	// plan-cache tier counters
	nSnapshotSaves   atomic.Int64 // snapshot files written
	nSnapshotLoads   atomic.Int64 // snapshots successfully imported
	nSnapshotRejects atomic.Int64 // snapshot loads/imports rejected
}

// New wraps a compiler in a serving layer. Zero Config fields take
// defaults. c may be nil: the server starts not-ready (503 on work
// endpoints and /healthz) until SetCompiler binds one.
func New(c *core.Compiler, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		o:        cfg.Obs,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		bo:       newBackoff(cfg.RetryBase, cfg.RetryMax, cfg.Seed),
		breakers: newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		started:  time.Now(),
		snapQuit: make(chan struct{}),
		overQuit: make(chan struct{}),
	}
	s.registerObs()
	if c != nil {
		s.SetCompiler(c)
	}
	if cfg.PlanSnapshotPath != "" && cfg.SnapshotInterval > 0 {
		s.startSnapshotFlusher()
	}
	if cfg.Brownout {
		s.startBrownout()
	}
	return s
}

// SetCompiler binds (or replaces) the compiler and builds the graph
// runtime over it, flipping the server ready. A fresh health registry is
// attached to both (degraded-mode planning and stage-level recovery share
// one view of the device), sized to the compiler's hardware.
func (s *Server) SetCompiler(c *core.Compiler) {
	// Warm-start the program cache from the configured snapshot before the
	// compiler goes live, so the replica's first hot shapes hit the cache.
	// A missing or incompatible snapshot just means planning online.
	if s.cfg.PlanSnapshotPath != "" {
		s.loadSnapshotInto(c)
	}
	var reg *health.Registry
	if !s.cfg.DisableSelfHeal {
		reg = health.NewRegistry(c.Hardware().NumPEs, health.Config{})
		s.health.Store(reg)
	}
	rt := graphrt.New(c, graphrt.Config{
		PlanAhead:   s.cfg.PlanAhead,
		PlanTimeout: s.cfg.PlanTimeout,
		Obs:         s.o,
		Health:      reg,
		Fuse:        s.cfg.Fuse,
	})
	rt.SetSimulator(func(h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result {
		return s.simulateTasks(h, v, tasks, salt)
	})
	s.runtime.Store(rt)
	if s.cfg.DecodeBatch {
		// With the paged generation scheduler on, KV is page-granular, so
		// the batcher's buckets clamp down to the page size (less padding).
		bc := graphrt.BatchConfig{}
		if s.cfg.SchedDecode {
			bc.PageTokens = kvcache.Config{TokensPerPage: s.cfg.KVPageTokens}.WithDefaults().TokensPerPage
		}
		b := graphrt.NewDecodeBatcher(rt, bc)
		b.Start()
		if old := s.batcher.Swap(b); old != nil {
			old.Stop()
		}
	}
	if s.cfg.SchedDecode {
		loop := sched.NewLoop(sched.New(schedExecutor{rt}, sched.Config{
			HW: c.Hardware(),
			KV: kvcache.Config{
				NumPages:      s.cfg.KVPages,
				TokensPerPage: s.cfg.KVPageTokens,
			},
			PrefillChunk:      s.cfg.PrefillChunk,
			StepSLOMs:         s.cfg.StepSLOMs,
			TTFTSLOMs:         s.cfg.TTFTSLOMs,
			MaxInFlightTokens: s.cfg.SchedInFlightTokens,
			Adaptive:          s.cfg.AdaptiveAdmission,
			ShedDeadlines:     s.cfg.ShedDeadlines,
			PreemptKV:         s.cfg.KVPreempt,
		}))
		if old := s.sched.Swap(loop); old != nil {
			old.Close()
		}
	}
	s.compiler.Store(c)
}

// comp returns the bound compiler, or nil while the server is not ready.
func (s *Server) comp() *core.Compiler { return s.compiler.Load() }

// Close releases background resources: the snapshot flusher, the brownout
// controller, the decode batching loop and, when a fleet is bound, its
// device workers and prober.
func (s *Server) Close() {
	s.snapOnce.Do(func() { close(s.snapQuit) })
	s.snapWG.Wait()
	s.overOnce.Do(func() { close(s.overQuit) })
	s.overWG.Wait()
	if b := s.batcher.Load(); b != nil {
		b.Stop()
	}
	if l := s.sched.Load(); l != nil {
		l.Close()
	}
	if f := s.fleet.Load(); f != nil {
		f.Close()
	}
}

// Handler returns the service's HTTP handler: panic recovery wraps
// everything; admission, timeout and body limits guard the work endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /plan", s.guard(http.HandlerFunc(s.handlePlan)))
	mux.Handle("POST /execute", s.guard(http.HandlerFunc(s.handleExecute)))
	mux.Handle("POST /model", s.guard(http.HandlerFunc(s.handleModel)))
	mux.Handle("POST /gemm", s.guard(http.HandlerFunc(s.handleGemm)))
	mux.Handle("POST /generate", s.guard(http.HandlerFunc(s.handleGenerate)))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	// Fleet admin endpoints bypass admission: an operator must be able to
	// inspect and drain replicas while the work endpoints shed load.
	mux.HandleFunc("GET /fleet", s.handleFleetSummary)
	mux.HandleFunc("POST /fleet/drain", s.handleFleetDrain)
	// Plan-cache admin endpoints likewise bypass admission: snapshot flushes
	// and warm-loads are exactly the operations an operator runs while a
	// replica is overloaded or about to be replaced.
	mux.HandleFunc("GET /plancache", s.handlePlanCache)
	mux.HandleFunc("POST /plancache/save", s.handlePlanCacheSave)
	mux.HandleFunc("POST /plancache/load", s.handlePlanCacheLoad)
	// Observability endpoints bypass admission like the probes: a scrape
	// must succeed while the work endpoints shed load.
	if m := s.o.M(); m != nil {
		mux.Handle("GET /metrics", m.Handler())
	}
	if t := s.o.T(); t != nil {
		mux.Handle("GET /trace", t.Handler())
	}
	return s.recoverMW(mux)
}

// guard stacks the per-request protections for work endpoints.
func (s *Server) guard(next http.Handler) http.Handler {
	return s.admitMW(s.timeoutMW(s.limitBodyMW(next)))
}
