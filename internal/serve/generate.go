package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"mikpoly/internal/graphrt"
	"mikpoly/internal/nn"
	"mikpoly/internal/sched"
	"mikpoly/internal/workload"
)

// schedExecutor adapts the graph runtime to the generation scheduler. The
// pool label is informational on a single device; a fleet-backed deployment
// routes it through class-restricted dispatch instead (fleet.ExecModelClass).
type schedExecutor struct{ rt *graphrt.Runtime }

// generateRequest is the wire format of one generation request. The prompt
// is materialized deterministically from (tenant, group, prefix_len,
// prompt_len, prompt_seed) — the same construction the synthetic trace
// generator uses — so clients can exercise prefix sharing by naming a group
// and reproduce any request exactly.
type generateRequest struct {
	PromptLen  int    `json:"prompt_len"`
	PromptSeed uint64 `json:"prompt_seed,omitempty"`
	// Group/PrefixLen make the leading PrefixLen tokens a function of
	// (tenant, group) only: requests sharing them share KV pages.
	Group     int `json:"group,omitempty"`
	PrefixLen int `json:"prefix_len,omitempty"`
	Steps     int `json:"steps,omitempty"`    // decode tokens per branch (default 1)
	Priority  int `json:"priority,omitempty"` // 0 most urgent
	Fanout    int `json:"fanout,omitempty"`   // parallel sampling branches
	// DeadlineMs is this request's deadline budget (arrival → first token)
	// in milliseconds; zero takes the server's DeadlineMs default. With
	// ShedDeadlines on, a request whose queue wait alone exceeds the budget
	// is answered 504 without consuming device cycles.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// generateResponse reports one scheduled generation.
type generateResponse struct {
	Tenant       string  `json:"tenant"`
	Mass         int64   `json:"mass"` // admission cost in tokens
	ReusedTokens int     `json:"reused_tokens"`
	DecodeTokens int     `json:"decode_tokens"`
	TTFTMs       float64 `json:"ttft_ms"`
	MaxStepMs    float64 `json:"max_step_ms"`
	Digest       string  `json:"digest"`
	SLOGood      bool    `json:"slo_good"`
}

// tenantOf resolves the request's tenant from the X-Tenant header and
// validates it against the configured allowlist.
func (s *Server) tenantOf(r *http.Request) (string, error) {
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if len(s.cfg.Tenants) == 0 {
		return tenant, nil
	}
	for _, t := range s.cfg.Tenants {
		if t == tenant {
			return tenant, nil
		}
	}
	return "", fmt.Errorf("unknown tenant %q", tenant)
}

// handleGenerate runs one request through the SLO-aware generation
// scheduler. Admission here is token-counted, not request-counted: a request
// whose mass (prompt + decode × fanout tokens) cannot fit the scheduler's
// in-flight token budget is rejected with 429 + Retry-After, while the
// request-counted admitMW semaphore only guards handler concurrency.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	loop := s.sched.Load()
	if loop == nil {
		httpError(w, http.StatusServiceUnavailable, "generation scheduler not enabled (SchedDecode)")
		return
	}
	tenant, err := s.tenantOf(r)
	if err != nil {
		httpError(w, http.StatusForbidden, err.Error())
		return
	}
	var req generateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.PromptLen < 1 || req.PromptLen > s.cfg.MaxDim {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("prompt_len %d outside [1, %d]", req.PromptLen, s.cfg.MaxDim))
		return
	}
	if req.Steps < 0 || req.Steps > s.cfg.MaxModelSteps {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("steps %d outside [0, %d]", req.Steps, s.cfg.MaxModelSteps))
		return
	}
	if req.PrefixLen < 0 || req.PrefixLen > req.PromptLen {
		httpError(w, http.StatusBadRequest, "prefix_len outside [0, prompt_len]")
		return
	}
	if req.Fanout < 0 || req.Fanout > maxGenerateFanout {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("fanout %d outside [0, %d]", req.Fanout, maxGenerateFanout))
		return
	}
	if req.DeadlineMs < 0 {
		httpError(w, http.StatusBadRequest, "deadline_ms must be non-negative")
		return
	}
	if req.Steps == 0 {
		req.Steps = 1
	}

	// The brownout ladder's last rung: shed the lowest priority class at the
	// HTTP edge before it touches the scheduler, with a backlog-derived
	// Retry-After like every other load-shed answer.
	if s.OverloadStage() >= brownoutShedStage && req.Priority >= sched.NumPriorities-1 {
		s.nBrownoutSheds.Add(1)
		w.Header().Set("Retry-After", s.retryAfterHint())
		httpError(w, http.StatusServiceUnavailable, "brownout: lowest-priority traffic shed")
		return
	}

	prompt := workload.TraceRequest{
		Tenant:     tenant,
		Group:      req.Group,
		PrefixLen:  req.PrefixLen,
		PromptLen:  req.PromptLen,
		PromptSeed: req.PromptSeed,
	}.PromptTokens()
	sreq := sched.Request{
		ID:       s.genSeq.Add(1),
		Tenant:   tenant,
		Priority: req.Priority,
		Prompt:   prompt,
		Decode:   req.Steps,
		Fanout:   req.Fanout,
	}
	deadlineMs := req.DeadlineMs
	if deadlineMs == 0 {
		deadlineMs = s.cfg.DeadlineMs
	}
	if deadlineMs > 0 {
		sreq.DeadlineCycles = deadlineMs / 1e3 * loop.Scheduler().Config().HW.ClockHz
	}

	select {
	case res := <-loop.Submit(sreq):
		if res.Err != nil {
			if errors.Is(res.Err, sched.ErrRejected) {
				s.nTokenRejected.Add(1)
				w.Header().Set("Retry-After", retryAfterSeconds(loop.Scheduler()))
				httpError(w, http.StatusTooManyRequests,
					fmt.Sprintf("token budget exhausted: request mass %d tokens", sreq.Mass()))
				return
			}
			if errors.Is(res.Err, sched.ErrDeadline) {
				s.nDeadlineSheds.Add(1)
				httpError(w, http.StatusGatewayTimeout,
					"deadline exceeded while queued; request shed before execution")
				return
			}
			httpError(w, http.StatusInternalServerError, res.Err.Error())
			return
		}
		s.nGenerated.Add(1)
		h := loop.Scheduler().Config().HW
		writeJSON(w, http.StatusOK, generateResponse{
			Tenant:       res.Tenant,
			Mass:         sreq.Mass(),
			ReusedTokens: res.ReusedTokens,
			DecodeTokens: res.DecodeTokens,
			TTFTMs:       res.TTFTCycles / h.ClockHz * 1e3,
			MaxStepMs:    res.MaxStepCycle / h.ClockHz * 1e3,
			Digest:       fmt.Sprintf("%016x", res.Digest),
			SLOGood:      res.SLOGood,
		})
	case <-r.Context().Done():
		// The wave loop still owns the request; the buffered result channel
		// absorbs its eventual delivery.
		httpError(w, http.StatusServiceUnavailable, "request interrupted: "+r.Context().Err().Error())
	}
}

// maxGenerateFanout bounds parallel-sampling branches per request.
const maxGenerateFanout = 8

// retryAfterBounds clamp the token-budget Retry-After header: at least 1s
// (the HTTP-sensible floor), at most 30s so a transient spike never tells
// clients to disappear for minutes.
const (
	retryAfterMin = 1
	retryAfterMax = 30
)

// retryAfterHint is the Retry-After value for load-shed answers outside the
// token-budget path (admitMW 429s, brownout 503s): backlog-derived when the
// generation scheduler is running, the 1-second floor otherwise. Before this
// helper, admitMW hardcoded "1", teaching every rejected client to retry in
// lockstep one second later regardless of how deep the backlog actually was.
func (s *Server) retryAfterHint() string {
	if l := s.sched.Load(); l != nil {
		return retryAfterSeconds(l.Scheduler())
	}
	return strconv.Itoa(retryAfterMin)
}

// retryAfterSeconds derives the Retry-After value for a token-budget 429
// from the scheduler's drain estimate — EWMA per-token cost times the
// running-plus-queued token mass — rounded up and clamped to
// [retryAfterMin, retryAfterMax]. A fixed "1" taught every rejected client
// to retry in lockstep regardless of backlog; this backs them off in
// proportion to how saturated the replica actually is.
func retryAfterSeconds(sc *sched.Scheduler) string {
	return retryAfterFromEstimate(sc.EstimateBacklogSeconds())
}

// retryAfterFromEstimate maps a backlog estimate in seconds onto the header
// value (split from retryAfterSeconds so the clamp is unit-testable).
func retryAfterFromEstimate(est float64) string {
	secs := retryAfterMin
	if est > 0 {
		secs = int(math.Ceil(est))
		if secs < retryAfterMin {
			secs = retryAfterMin
		}
		if secs > retryAfterMax {
			secs = retryAfterMax
		}
	}
	return strconv.Itoa(secs)
}

func (e schedExecutor) ExecGraph(ctx context.Context, g nn.Graph, _ string) (float64, error) {
	rep, err := e.rt.Execute(ctx, g)
	if err != nil {
		return 0, err
	}
	return rep.Cycles, nil
}
