package serve

import (
	"errors"
	"net/http"
	"sort"

	"mikpoly/internal/fleet"
	"mikpoly/internal/obs"
	"mikpoly/internal/tensor"
)

// SetFleet binds a device fleet to the server: POST /gemm and (when bound)
// /model requests route across its replicas with health-aware balancing,
// failover, and hedging instead of running on the single local compiler.
// The dispatcher must already be started; the server owns it from here and
// Close tears it down.
func (s *Server) SetFleet(f *fleet.Dispatcher) {
	s.fleet.Store(f)
}

// fleetD returns the bound dispatcher, or nil when the server runs
// single-device.
func (s *Server) fleetD() *fleet.Dispatcher { return s.fleet.Load() }

// fleetStatus maps a dispatcher error onto an HTTP status: capacity
// exhaustion and cancellation are 503 (retryable), everything else 500.
func fleetStatus(err error) int {
	if errors.Is(err, fleet.ErrNoDevices) || errors.Is(err, fleet.ErrDeviceBusy) ||
		errors.Is(err, fleet.ErrDeviceDraining) || errors.Is(err, fleet.ErrDeviceDown) ||
		errors.Is(err, fleet.ErrDeviceHung) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// handleGemm is the fleet-backed sibling of /execute: same request wire
// format, but the work is dispatched across the fleet (failover, hedging,
// per-device breakers) rather than run on the local compiler.
func (s *Server) handleGemm(w http.ResponseWriter, r *http.Request) {
	f := s.fleetD()
	if f == nil {
		httpError(w, http.StatusServiceUnavailable, "fleet not configured")
		return
	}
	var req execRequest
	if !decodeBody(w, r, &req) {
		return
	}
	shape := tensor.GemmShape{M: req.M, N: req.N, K: req.K}
	if status, err := s.checkShape(shape); err != nil {
		httpError(w, status, err.Error())
		return
	}
	if status, err := s.checkExecOperands(shape); err != nil {
		httpError(w, status, err.Error())
		return
	}
	if req.SeedA == 0 {
		req.SeedA = 1
	}
	if req.SeedB == 0 {
		req.SeedB = 2
	}
	res, err := f.ExecGemm(r.Context(), shape, req.SeedA, req.SeedB)
	if err != nil {
		httpError(w, fleetStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, execResponse{
		Shape:     shape.String(),
		Degraded:  res.Degraded,
		Attempts:  res.Attempts,
		SimCycles: res.Cycles,
		Checksum:  res.Checksum,
		Sample:    res.Sample,
		Device:    res.Device,
	})
}

// fleetResponse is the GET /fleet wire format.
type fleetResponse struct {
	Devices []fleet.DeviceSummary `json:"devices"`
	Stats   fleet.Stats           `json:"stats"`
}

func (s *Server) handleFleetSummary(w http.ResponseWriter, r *http.Request) {
	f := s.fleetD()
	if f == nil {
		httpError(w, http.StatusNotFound, "fleet not configured")
		return
	}
	writeJSON(w, http.StatusOK, fleetResponse{Devices: f.Summaries(), Stats: f.DispatchStats()})
}

// handleFleetDrain is the admin endpoint: POST /fleet/drain?device=NAME
// flips the named replica to draining (no new work, dead once its queue runs
// dry). It sits outside the admission guard so operators can drain a replica
// out of an overloaded fleet.
func (s *Server) handleFleetDrain(w http.ResponseWriter, r *http.Request) {
	f := s.fleetD()
	if f == nil {
		httpError(w, http.StatusNotFound, "fleet not configured")
		return
	}
	name := r.URL.Query().Get("device")
	if name == "" {
		httpError(w, http.StatusBadRequest, "missing device query parameter")
		return
	}
	if err := f.Drain(name); err != nil {
		status := http.StatusConflict
		if f.Device(name) == nil {
			status = http.StatusNotFound
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "draining", "device": name})
}

// stateValue encodes a device lifecycle state as a stable gauge value.
func stateValue(state string) float64 {
	switch state {
	case "starting":
		return 0
	case "healthy":
		return 1
	case "degraded":
		return 2
	case "draining":
		return 3
	default: // dead
		return 4
	}
}

// registerFleetObs exports fleet routing and per-device health into the
// metrics registry. All callbacks re-resolve the dispatcher through the
// atomic pointer at scrape time, so they are nil-safe before SetFleet and
// pick up a later binding automatically.
func (s *Server) registerFleetObs() {
	m := s.o.M()
	if m == nil {
		return
	}

	perDevice := func(value func(d fleet.DeviceSummary) float64) func() []obs.Sample {
		return func() []obs.Sample {
			f := s.fleetD()
			if f == nil {
				return nil
			}
			sums := f.Summaries()
			sort.Slice(sums, func(i, j int) bool { return sums[i].Name < sums[j].Name })
			samples := make([]obs.Sample, len(sums))
			for i, d := range sums {
				samples[i] = obs.Sample{
					Labels: [][2]string{{"device", d.Name}, {"class", d.Class}},
					Value:  value(d),
				}
			}
			return samples
		}
	}

	m.Collect("mik_fleet_device_state", "Device lifecycle state (0=starting 1=healthy 2=degraded 3=draining 4=dead).", "gauge",
		perDevice(func(d fleet.DeviceSummary) float64 { return stateValue(d.State) }))
	m.Collect("mik_fleet_device_outstanding", "Commands queued or running on the device.", "gauge",
		perDevice(func(d fleet.DeviceSummary) float64 { return float64(d.Outstanding) }))
	m.Collect("mik_fleet_device_weight", "Health- and capacity-derived routing weight.", "gauge",
		perDevice(func(d fleet.DeviceSummary) float64 { return d.Weight }))
	m.Collect("mik_fleet_served_total", "Commands completed successfully, per device.", "counter",
		perDevice(func(d fleet.DeviceSummary) float64 { return float64(d.Completed) }))
	m.Collect("mik_fleet_failed_total", "Commands failed, per device.", "counter",
		perDevice(func(d fleet.DeviceSummary) float64 { return float64(d.Failed) }))

	m.Collect("mik_fleet_requests_total", "Requests dispatched across the fleet.", "counter",
		func() []obs.Sample {
			f := s.fleetD()
			if f == nil {
				return nil
			}
			return []obs.Sample{{Value: float64(f.DispatchStats().Requests)}}
		})
	m.Collect("mik_fleet_events_total", "Fleet routing events by kind.", "counter",
		func() []obs.Sample {
			f := s.fleetD()
			if f == nil {
				return nil
			}
			st := f.DispatchStats()
			return []obs.Sample{
				{Labels: [][2]string{{"event", "failover"}}, Value: float64(st.Failovers)},
				{Labels: [][2]string{{"event", "hedge"}}, Value: float64(st.Hedges)},
				{Labels: [][2]string{{"event", "hedge_win"}}, Value: float64(st.HedgeWins)},
				{Labels: [][2]string{{"event", "breaker_trip"}}, Value: float64(st.BreakerTrips)},
				{Labels: [][2]string{{"event", "readmission"}}, Value: float64(st.Readmissions)},
				{Labels: [][2]string{{"event", "probe"}}, Value: float64(st.Probes)},
				{Labels: [][2]string{{"event", "no_device"}}, Value: float64(st.NoDevice)},
			}
		})
}
