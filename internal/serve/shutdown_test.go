package serve

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/fleet"
	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/tune"
)

// TestShutdownLeaksNoGoroutines is the graceful-drain regression test: a
// server running every background subsystem (decode-batch loop, plan-ahead
// workers, fleet device workers + prober) must return to the baseline
// goroutine count after Close. A leaked worker here is what turns SIGTERM
// into a hung pod in production.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	opts := tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256}
	// Warm the class-shared libraries so lazy tuning doesn't muddy the
	// baseline measurement below.
	for _, h := range []hw.Hardware{hw.A100(), hw.Ascend910()} {
		if _, err := core.SharedLibrary(h, opts); err != nil {
			t.Fatal(err)
		}
	}
	// Give goroutines from earlier tests in the package a moment to wind
	// down, then take the baseline.
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()

	devices := make([]*fleet.Device, 0, 2)
	for i, h := range []hw.Hardware{hw.A100(), hw.Ascend910()} {
		lib, err := core.SharedLibrary(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		name := []string{"gpu-0", "npu-0"}[i]
		devices = append(devices, fleet.NewDevice(lib, fleet.DeviceConfig{Name: name}))
	}
	f := fleet.NewDispatcher(devices, fleet.Config{
		ProbeInterval: 10 * time.Millisecond, // background prober must stop too
	})
	f.Start()

	srv := New(testCompiler(t), Config{DecodeBatch: true, PlanAhead: 2})
	srv.SetFleet(f)
	ts := httptest.NewServer(srv.Handler())

	// Exercise every background path: fleet-routed gemm and model, and a
	// single-device model to spin up plan-ahead workers.
	for i := 0; i < 3; i++ {
		if resp, data := postJSON(t, ts.URL+"/gemm", execRequest{M: 96, N: 96, K: 64}); resp.StatusCode != http.StatusOK {
			t.Fatalf("gemm status %d: %s", resp.StatusCode, data)
		}
	}
	if resp, data := postJSON(t, ts.URL+"/model", modelRequest{Model: "distilbert", Seq: 32}); resp.StatusCode != http.StatusOK {
		t.Fatalf("model status %d: %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/model", modelRequest{Model: "llama2-decode", KVLen: 64}); resp.StatusCode != http.StatusOK {
		t.Fatalf("decode status %d: %s", resp.StatusCode, data)
	}

	// Graceful drain, in mikserve's order: HTTP first, then background
	// machinery, then the client's idle keep-alive connections.
	ts.Close()
	srv.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(15 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			var sb strings.Builder
			_ = pprof.Lookup("goroutine").WriteTo(&sb, 1)
			t.Fatalf("goroutines leaked across shutdown: %d before, %d after\n%s", before, now, sb.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerCloseIsIdempotent: mikserve calls Close explicitly after
// ListenAndServe returns and again via defer; both must be safe, fleet
// bound or not.
func TestServerCloseIsIdempotent(t *testing.T) {
	srv, _, _ := newFleetServer(t, Config{DecodeBatch: true}, []sim.DeviceFaults{})
	srv.Close()
	srv.Close() // t.Cleanup from the helper adds a third call
}
