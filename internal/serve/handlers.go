package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/engine"
	"mikpoly/internal/fleet"
	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/kvcache"
	"mikpoly/internal/poly"
	"mikpoly/internal/sched"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// planRequest is the wire format of a compilation request.
type planRequest struct {
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`
}

// regionInfo describes one region of a returned program.
type regionInfo struct {
	RowOffset int    `json:"row_offset"`
	Rows      int    `json:"rows"`
	ColOffset int    `json:"col_offset"`
	Cols      int    `json:"cols"`
	KOffset   int    `json:"k_offset,omitempty"`
	KDepth    int    `json:"k_depth"`
	Kernel    string `json:"kernel"`
}

// planResponse is the wire format of a compilation result.
type planResponse struct {
	Shape      string       `json:"shape"`
	Pattern    string       `json:"pattern"`
	Regions    []regionInfo `json:"regions"`
	Tasks      int          `json:"tasks"`
	Degraded   bool         `json:"degraded"`
	SimSkipped bool         `json:"sim_skipped,omitempty"`
	SimCycles  float64      `json:"sim_cycles,omitempty"`
	SimTFLOPS  float64      `json:"sim_tflops,omitempty"`
	Efficiency float64      `json:"pe_efficiency,omitempty"`
}

// execRequest asks the service to numerically execute C = A × B for
// deterministic pseudo-random operands, proving the planned program correct
// end to end.
type execRequest struct {
	M     int    `json:"m"`
	N     int    `json:"n"`
	K     int    `json:"k"`
	SeedA uint64 `json:"seed_a,omitempty"`
	SeedB uint64 `json:"seed_b,omitempty"`
}

// execResponse reports the numeric digest and the (possibly fault-injected)
// simulated execution. Device is set only on the fleet-backed /gemm path:
// the replica that served the winning attempt.
type execResponse struct {
	Shape        string    `json:"shape"`
	Degraded     bool      `json:"degraded"`
	Attempts     int       `json:"attempts"`
	FaultedTasks int       `json:"faulted_tasks"`
	SimCycles    float64   `json:"sim_cycles"`
	Checksum     float64   `json:"checksum"`
	Sample       []float32 `json:"sample"`
	Device       string    `json:"device,omitempty"`
}

// errorResponse is the wire format of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// decodeBody decodes a JSON request, classifying failures: oversized bodies
// are 413, malformed JSON 400.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body too large")
		} else {
			httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
		}
		return false
	}
	return true
}

// checkShape validates a shape against the service limits. It returns a
// non-nil error plus the HTTP status to answer with.
func (s *Server) checkShape(shape tensor.GemmShape) (int, error) {
	if !shape.Valid() {
		return http.StatusBadRequest, fmt.Errorf("invalid shape %v: dimensions must be positive", shape)
	}
	if shape.M > s.cfg.MaxDim || shape.N > s.cfg.MaxDim || shape.K > s.cfg.MaxDim {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("shape %v exceeds per-dimension limit %d", shape, s.cfg.MaxDim)
	}
	if vol := int64(shape.M) * int64(shape.N) * int64(shape.K); vol > s.cfg.MaxPlanElems {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("shape %v volume %d exceeds limit %d", shape, vol, s.cfg.MaxPlanElems)
	}
	return 0, nil
}

// checkExecOperands bounds the materialized operand sizes for endpoints that
// run real arithmetic (/execute and the fleet-backed /gemm).
func (s *Server) checkExecOperands(shape tensor.GemmShape) (int, error) {
	for _, operand := range [][2]int{{shape.M, shape.K}, {shape.K, shape.N}, {shape.M, shape.N}} {
		if elems := int64(operand[0]) * int64(operand[1]); elems > s.cfg.MaxExecElems {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("operand %dx%d exceeds execute limit %d elements", operand[0], operand[1], s.cfg.MaxExecElems)
		}
	}
	return 0, nil
}

// planShape runs the deadline-bounded, fallback-protected planning stage.
func (s *Server) planShape(ctx context.Context, c *core.Compiler, shape tensor.GemmShape) (*poly.Program, bool, error) {
	pctx := ctx
	var cancel context.CancelFunc = func() {}
	if s.cfg.PlanTimeout != 0 {
		pctx, cancel = context.WithTimeout(ctx, s.cfg.PlanTimeout)
	}
	defer cancel()
	prog, degraded, err := c.PlanOrFallback(pctx, shape)
	if degraded {
		s.nDegraded.Add(1)
	}
	return prog, degraded, err
}

// ready returns the bound compiler, answering 503 (and returning nil) while
// the library is still loading or tuning.
func (s *Server) ready(w http.ResponseWriter) *core.Compiler {
	c := s.comp()
	if c == nil {
		httpError(w, http.StatusServiceUnavailable, "compiler not ready")
		return nil
	}
	return c
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	c := s.ready(w)
	if c == nil {
		return
	}
	var req planRequest
	if !decodeBody(w, r, &req) {
		return
	}
	shape := tensor.GemmShape{M: req.M, N: req.N, K: req.K}
	if status, err := s.checkShape(shape); err != nil {
		httpError(w, status, err.Error())
		return
	}
	prog, degraded, err := s.planShape(r.Context(), c, shape)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	h := c.Hardware()
	resp := planResponse{
		Shape:    shape.String(),
		Pattern:  prog.Pattern.String(),
		Tasks:    prog.NumTasks(),
		Degraded: degraded,
	}
	for _, reg := range prog.Regions {
		resp.Regions = append(resp.Regions, regionInfo{
			RowOffset: reg.M0, Rows: reg.M,
			ColOffset: reg.N0, Cols: reg.N,
			KOffset: reg.KOff, KDepth: reg.K,
			Kernel: reg.Kern.String(),
		})
	}
	if resp.Tasks > s.cfg.MaxSimTasks {
		resp.SimSkipped = true
	} else {
		res := s.simulate(c, prog, 0)
		resp.SimCycles = res.Cycles
		resp.SimTFLOPS = shape.FLOPs() / h.CyclesToSeconds(res.Cycles) / 1e12
		resp.Efficiency = res.Efficiency()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	c := s.ready(w)
	if c == nil {
		return
	}
	var req execRequest
	if !decodeBody(w, r, &req) {
		return
	}
	shape := tensor.GemmShape{M: req.M, N: req.N, K: req.K}
	if status, err := s.checkShape(shape); err != nil {
		httpError(w, status, err.Error())
		return
	}
	if status, err := s.checkExecOperands(shape); err != nil {
		httpError(w, status, err.Error())
		return
	}
	if req.SeedA == 0 {
		req.SeedA = 1
	}
	if req.SeedB == 0 {
		req.SeedB = 2
	}

	ctx := r.Context()
	prog, degraded, err := s.planShape(ctx, c, shape)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	// Simulated execution with fault-triggered re-planning: on a reported
	// fault, drop the cached program, back off (exponential + jitter) and
	// try again with a fresh plan and a distinct fault salt.
	attempts := 0
	var res sim.Result
	for {
		res = s.simulate(c, prog, uint64(attempts))
		attempts++
		if res.FaultedTasks == 0 || attempts > s.cfg.MaxRetries {
			break
		}
		s.nFaults.Add(1)
		s.nRetries.Add(1)
		if err := s.bo.sleep(ctx, attempts-1); err != nil {
			httpError(w, http.StatusServiceUnavailable, "retry budget interrupted: "+err.Error())
			return
		}
		c.Invalidate(shape)
		var d bool
		prog, d, err = s.planShape(ctx, c, shape)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		degraded = degraded || d
	}
	if res.FaultedTasks > 0 {
		s.nFaults.Add(1)
	}

	// Numeric execution on deterministic operands: the returned digest lets
	// the client verify the program against its own reference GEMM.
	a := tensor.RandomMatrix(shape.M, shape.K, req.SeedA)
	b := tensor.RandomMatrix(shape.K, shape.N, req.SeedB)
	out, err := engine.Execute(prog, a, b)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "execution failed: "+err.Error())
		return
	}
	var sum float64
	for _, v := range out.Data {
		sum += float64(v)
	}
	sample := []float32{
		out.At(0, 0),
		out.At(0, out.Cols-1),
		out.At(out.Rows-1, 0),
		out.At(out.Rows-1, out.Cols-1),
	}
	writeJSON(w, http.StatusOK, execResponse{
		Shape:        shape.String(),
		Degraded:     degraded,
		Attempts:     attempts,
		FaultedTasks: res.FaultedTasks,
		SimCycles:    res.Cycles,
		Checksum:     sum,
		Sample:       sample,
	})
}

// simulate runs the program on the (possibly degraded) simulated device:
// the health registry's current view shrinks the hardware before the tasks
// are lowered, and the outcome feeds back into the registry so /execute
// traffic contributes to fault classification just like /model stages.
// salt distinguishes retry attempts so transient injected faults can clear.
func (s *Server) simulate(c *core.Compiler, prog *poly.Program, salt uint64) sim.Result {
	h := c.Hardware()
	var v health.View
	reg := s.health.Load()
	if reg != nil {
		v = reg.View()
		h = v.Apply(h)
	}
	res := s.simulateTasks(h, v, prog.Tasks(h), salt)
	if reg != nil {
		reg.ObserveResult(v, res)
	}
	return res
}

// simulateTasks runs a raw task batch under the service's fault config; it
// is also the graph runtime's simulator seam, so /model executions see the
// same injected degradation as /execute.
func (s *Server) simulateTasks(h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result {
	if s.cfg.Faults == nil {
		return sim.Run(h, tasks)
	}
	// The runtime hands us the effective (possibly shrunken) hardware and
	// the health view it reflects: renumber the fault schedule's per-PE
	// entries onto the survivor indices so a quarantined PE's configured
	// faults die with it instead of landing on an innocent survivor.
	f := v.RemapFaults(*s.cfg.Faults)
	f.Salt += salt
	res, err := sim.RunWithFaults(h, tasks, f)
	if err != nil {
		// An unusable fault config degrades to the healthy simulation
		// rather than failing requests.
		return sim.Run(h, tasks)
	}
	return res
}

// healthResponse is the /healthz wire format. A degrading device stays
// HTTP 200 — the process is alive and serving, just on fewer PEs — with
// Status "degraded" and the view's forensics attached, so orchestrators
// don't kill a pod that is healing itself.
type healthResponse struct {
	Status string `json:"status"`
	Uptime string `json:"uptime"`

	Quarantined     []int             `json:"quarantined_pes,omitempty"`
	BandwidthFactor float64           `json:"bandwidth_factor,omitempty"`
	Fingerprint     string            `json:"health_fingerprint,omitempty"`
	Breakers        map[string]string `json:"breakers,omitempty"`

	// Devices summarizes the fleet when one is bound: per-replica lifecycle
	// state, breaker state, health fingerprint, and routing weight.
	Devices []fleet.DeviceSummary `json:"devices,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c := s.comp()
	if c == nil || len(c.Library().Kernels) == 0 {
		httpError(w, http.StatusServiceUnavailable, "compiler not ready")
		return
	}
	resp := healthResponse{
		Status:   "ok",
		Uptime:   time.Since(s.started).Round(time.Millisecond).String(),
		Breakers: s.breakers.snapshot(),
	}
	if reg := s.health.Load(); reg != nil {
		v := reg.View()
		if fp := v.Fingerprint(); fp != "" {
			resp.Status = "degraded"
			resp.Quarantined = v.Quarantined
			resp.BandwidthFactor = v.BandwidthFactor
			resp.Fingerprint = fp
		}
	}
	if len(resp.Breakers) > 0 {
		resp.Status = "degraded"
	}
	if f := s.fleetD(); f != nil {
		resp.Devices = f.Summaries()
		for _, d := range resp.Devices {
			if d.State != "healthy" || d.Breaker != "closed" {
				resp.Status = "degraded"
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// graphStats is the /stats view of the graph runtime's cumulative counters.
type graphStats struct {
	Graphs       int64   `json:"graphs"`
	Stages       int64   `json:"stages"`
	Plans        int64   `json:"plans"`
	Stalls       int64   `json:"stalls"`
	PlanMs       float64 `json:"plan_ms"`
	StallMs      float64 `json:"stall_ms"`
	HiddenMs     float64 `json:"hidden_ms"`
	Degraded     int64   `json:"degraded"`
	FaultedTasks int64   `json:"faulted_tasks"`
	Cycles       float64 `json:"cycles"`
	SpillBytes   float64 `json:"spill_bytes"`

	// Stage-recovery ladder outcomes.
	RetriedStages       int64 `json:"retried_stages,omitempty"`
	MigratedStages      int64 `json:"migrated_stages,omitempty"`
	ReplannedStages     int64 `json:"replanned_stages,omitempty"`
	UnrecoverableStages int64 `json:"unrecoverable_stages,omitempty"`

	// Whole-graph polymerization outcomes.
	FusedChains     int64   `json:"fused_chains,omitempty"`
	FusionRejected  int64   `json:"fusion_rejected,omitempty"`
	FusedSavedBytes float64 `json:"fused_saved_bytes,omitempty"`
}

// healthStats is the /stats view of the health registry and the compiler's
// degraded-mode planning counters.
type healthStats struct {
	Quarantined  []int   `json:"quarantined_pes,omitempty"`
	BWFactor     float64 `json:"bandwidth_factor"`
	Fingerprint  string  `json:"fingerprint,omitempty"`
	Generation   uint64  `json:"generation"`
	Observations uint64  `json:"observations"`
	Transients   uint64  `json:"transients"`
	Persistents  uint64  `json:"persistents"`
	Quarantines  uint64  `json:"quarantines"`
	BWAdoptions  uint64  `json:"bw_adoptions"`
	Replans      int64   `json:"replans"`
	DegradedPlan int64   `json:"degraded_plans"`
	BreakerTrips int64   `json:"breaker_trips"`
	BreakerDrops int64   `json:"breaker_drops"`
}

// batchStats is the /stats view of the continuous decode batcher.
type batchStats struct {
	Submitted        int64 `json:"submitted"`
	Completed        int64 `json:"completed"`
	StepGraphs       int64 `json:"step_graphs"`
	SharedStepGraphs int64 `json:"shared_step_graphs"`
	PaddedKVTokens   int64 `json:"padded_kv_tokens"`
	PaddedKVBytes    int64 `json:"padded_kv_bytes"`
}

// schedStatsView is the /stats view of the generation scheduler: the
// cumulative wave accounting plus the live step-latency quantiles.
type schedStatsView struct {
	sched.Stats
	Generated     int64   `json:"generated"`
	TokenRejected int64   `json:"token_rejected"` // 429s from the token budget
	P50StepMs     float64 `json:"p50_step_ms"`
	P99StepMs     float64 `json:"p99_step_ms"`
}

// overloadStats is the /stats view of the overload defenses: the brownout
// ladder's stage, shed counts by reason, KV-pressure preemption traffic, and
// the adaptive admission limiter's live ceiling.
type overloadStats struct {
	Stage               int   `json:"stage"`
	BrownoutSheds       int64 `json:"brownout_sheds"`
	DeadlineSheds       int64 `json:"deadline_sheds"`
	Preemptions         int64 `json:"preemptions"`
	Restores            int64 `json:"restores"`
	Parked              int   `json:"parked"`
	AdaptiveLimitTokens int64 `json:"adaptive_limit_tokens"`
}

// statsResponse is the /stats wire format.
type statsResponse struct {
	Uptime          string             `json:"uptime"`
	Ready           bool               `json:"ready"`
	Requests        int64              `json:"requests"`
	Rejected        int64              `json:"rejected"`
	Degraded        int64              `json:"degraded"`
	Retries         int64              `json:"retries"`
	FaultedRuns     int64              `json:"faulted_runs"`
	PanicsRecovered int64              `json:"panics_recovered"`
	InFlight        int                `json:"in_flight"`
	MaxInFlight     int                `json:"max_in_flight"`
	Plans           int                `json:"plans"`
	PlanCandidates  int                `json:"plan_candidates"`
	Cache           core.CacheStats    `json:"cache"`
	Fallbacks       int64              `json:"fallbacks"`
	PlannerPanics   int64              `json:"planner_panics"`
	Models          int64              `json:"models"`
	Unrecoverable   int64              `json:"unrecoverable"`
	Graph           *graphStats        `json:"graph,omitempty"`
	Batch           *batchStats        `json:"batch,omitempty"`
	Health          *healthStats       `json:"health,omitempty"`
	Sched           *schedStatsView    `json:"sched,omitempty"`
	KV              *kvcache.Stats     `json:"kv,omitempty"`
	Overload        *overloadStats     `json:"overload,omitempty"`
	PlanCache       *planCacheResponse `json:"plancache,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Uptime:          time.Since(s.started).Round(time.Millisecond).String(),
		Requests:        s.nRequests.Load(),
		Rejected:        s.nRejected.Load(),
		Degraded:        s.nDegraded.Load(),
		Retries:         s.nRetries.Load(),
		FaultedRuns:     s.nFaults.Load(),
		PanicsRecovered: s.nPanics.Load(),
		InFlight:        len(s.sem),
		MaxInFlight:     cap(s.sem),
		Models:          s.nModels.Load(),
		Unrecoverable:   s.nUnrecoverable.Load(),
	}
	if c := s.comp(); c != nil {
		resp.Ready = true
		plans, pstats := c.PlanStats()
		health := c.Health()
		resp.Plans = plans
		resp.PlanCandidates = pstats.Candidates
		resp.Cache = c.CacheStats()
		resp.Fallbacks = health.Fallbacks
		resp.PlannerPanics = health.PlannerPanics
		pc := s.planCacheStats(c)
		resp.PlanCache = &pc
	}
	if rt := s.runtime.Load(); rt != nil {
		gs := rt.Stats()
		resp.Graph = &graphStats{
			Graphs:              gs.Graphs,
			Stages:              gs.Stages,
			Plans:               gs.Plans,
			Stalls:              gs.Stalls,
			PlanMs:              float64(gs.PlanWall) / float64(time.Millisecond),
			StallMs:             float64(gs.StallWall) / float64(time.Millisecond),
			HiddenMs:            float64(gs.HiddenWall) / float64(time.Millisecond),
			Degraded:            gs.Degraded,
			FaultedTasks:        gs.FaultedTasks,
			Cycles:              gs.Cycles,
			SpillBytes:          gs.SpillBytes,
			RetriedStages:       gs.RetriedStages,
			MigratedStages:      gs.MigratedStages,
			ReplannedStages:     gs.ReplannedStages,
			UnrecoverableStages: gs.UnrecoverableStages,
			FusedChains:         gs.FusedChains,
			FusionRejected:      gs.FusionRejected,
			FusedSavedBytes:     gs.FusedSavedBytes,
		}
	}
	if reg := s.health.Load(); reg != nil {
		hs, v := reg.Stats(), reg.View()
		var replans, degradedPlans int64
		if c := s.comp(); c != nil {
			ch := c.Health()
			replans, degradedPlans = ch.Replans, ch.DegradedPlans
		}
		resp.Health = &healthStats{
			Quarantined:  v.Quarantined,
			BWFactor:     v.BandwidthFactor,
			Fingerprint:  v.Fingerprint(),
			Generation:   hs.Generation,
			Observations: hs.Observations,
			Transients:   hs.Transients,
			Persistents:  hs.Persistents,
			Quarantines:  hs.Quarantines,
			BWAdoptions:  hs.BWAdoptions,
			Replans:      replans,
			DegradedPlan: degradedPlans,
			BreakerTrips: s.nBreakerTrips.Load(),
			BreakerDrops: s.nBreakerDrops.Load(),
		}
	}
	if b := s.batcher.Load(); b != nil {
		bs := b.Stats()
		resp.Batch = &batchStats{
			Submitted:        bs.Submitted,
			Completed:        bs.Completed,
			StepGraphs:       bs.StepGraphs,
			SharedStepGraphs: bs.SharedStepGraphs,
			PaddedKVTokens:   bs.PaddedKVTokens,
			PaddedKVBytes:    bs.PaddedKVBytes,
		}
	}
	if l := s.sched.Load(); l != nil {
		sc := l.Scheduler()
		resp.Sched = &schedStatsView{
			Stats:         sc.Stats(),
			Generated:     s.nGenerated.Load(),
			TokenRejected: s.nTokenRejected.Load(),
			P50StepMs:     sc.StepQuantileMs(0.50),
			P99StepMs:     sc.StepQuantileMs(0.99),
		}
		kv := sc.KV().Stats()
		resp.KV = &kv
	}
	if l := s.sched.Load(); l != nil || s.cfg.Brownout {
		ov := &overloadStats{
			Stage:         s.OverloadStage(),
			BrownoutSheds: s.nBrownoutSheds.Load(),
			DeadlineSheds: s.nDeadlineSheds.Load(),
		}
		if l != nil {
			// The scheduler's count is authoritative: it includes sheds whose
			// HTTP 504 was never delivered (client already disconnected).
			ss := l.Scheduler().Stats()
			ov.DeadlineSheds = ss.DeadlineSheds
			ov.Preemptions = ss.Preemptions
			ov.Restores = ss.Restores
			ov.Parked = ss.Parked
			ov.AdaptiveLimitTokens = ss.AdaptiveLimitTokens
		}
		resp.Overload = ov
	}
	writeJSON(w, http.StatusOK, resp)
}
