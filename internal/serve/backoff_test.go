package serve

import (
	"context"
	"testing"
	"time"
)

// TestBackoffJitterBounds samples every attempt many times: equal jitter
// guarantees delay(n) ∈ [exp(n)/2, exp(n)] where exp(n) is the capped
// exponential — never zero, never above the cap.
func TestBackoffJitterBounds(t *testing.T) {
	const base, max = 5 * time.Millisecond, 40 * time.Millisecond
	b := newBackoff(base, max, 7)
	for attempt := 0; attempt < 10; attempt++ {
		exp := base << attempt
		if exp > max || exp <= 0 {
			exp = max
		}
		for i := 0; i < 200; i++ {
			d := b.delay(attempt)
			if d < exp/2 || d > exp {
				t.Fatalf("attempt %d sample %d: delay %v outside [%v, %v]", attempt, i, d, exp/2, exp)
			}
		}
	}
}

// TestBackoffMonotonicCap pins the cap behaviour: the deterministic half of
// the delay grows monotonically with the attempt number until it reaches
// max/2 and then stays flat — including attempt numbers large enough to
// overflow a naive 1<<n computation.
func TestBackoffMonotonicCap(t *testing.T) {
	const base, max = time.Millisecond, 64 * time.Millisecond
	b := newBackoff(base, max, 1)
	prevFloor := time.Duration(0)
	for _, attempt := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 16, 32, 63, 64, 1 << 20} {
		d := b.delay(attempt)
		if d > max {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", attempt, d, max)
		}
		// The deterministic floor is half the capped exponential; it must
		// never shrink as attempts grow.
		floor := base << attempt
		if attempt >= 6 || floor > max || floor <= 0 {
			floor = max
		}
		floor /= 2
		if d < floor {
			t.Fatalf("attempt %d: delay %v below deterministic floor %v", attempt, d, floor)
		}
		if floor < prevFloor {
			t.Fatalf("attempt %d: floor %v regressed below %v", attempt, floor, prevFloor)
		}
		prevFloor = floor
	}
	// Saturated attempts must draw from the same [max/2, max] band.
	for i := 0; i < 100; i++ {
		if d := b.delay(1 << 30); d < max/2 || d > max {
			t.Fatalf("saturated delay %v outside [%v, %v]", d, max/2, max)
		}
	}
}

// TestBackoffSeedDeterminism: the full delay sequence is a pure function of
// (base, max, seed); replaying the same seed replays the same schedule.
func TestBackoffSeedDeterminism(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		b := newBackoff(3*time.Millisecond, 24*time.Millisecond, seed)
		out := make([]time.Duration, 12)
		for i := range out {
			out[i] = b.delay(i % 5)
		}
		return out
	}
	a, b2 := seq(42), seq(42)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, a[i], b2[i])
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 12-step schedules")
	}
}

// TestBackoffConstructorClamps: non-positive base defaults to 1ms and a max
// below base is raised to base, so the zero-config server can never spin in
// a zero-delay retry loop.
func TestBackoffConstructorClamps(t *testing.T) {
	b := newBackoff(0, 0, 1)
	if b.base != time.Millisecond || b.max != time.Millisecond {
		t.Fatalf("zero config -> base=%v max=%v, want 1ms/1ms", b.base, b.max)
	}
	b = newBackoff(10*time.Millisecond, time.Millisecond, 1)
	if b.max != 10*time.Millisecond {
		t.Fatalf("max below base not clamped: %v", b.max)
	}
	for i := 0; i < 50; i++ {
		if d := b.delay(i); d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", i, d)
		}
	}
}

// TestBackoffSleepHonorsContext: an expired context aborts the wait with the
// context's error instead of sleeping out the delay.
func TestBackoffSleepHonorsContext(t *testing.T) {
	b := newBackoff(time.Hour, time.Hour, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.sleep(ctx, 3); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("sleep ignored the dead context")
	}
}

// TestBackoffSleepFailsFastNearDeadline pins the retry-budget audit: when
// the computed delay cannot complete before ctx's deadline, sleep must
// return immediately with DeadlineExceeded instead of burning the request's
// remaining budget asleep and timing out mid-wait.
func TestBackoffSleepFailsFastNearDeadline(t *testing.T) {
	b := newBackoff(time.Hour, time.Hour, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := b.sleep(ctx, 5); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The whole point: the caller learns *before* the deadline, not at it.
	if elapsed := time.Since(start); elapsed >= 20*time.Millisecond {
		t.Fatalf("sleep held the caller %v, past the 20ms deadline", elapsed)
	}
}

// TestBackoffSleepCompletesUnderGenerousDeadline guards the fail-fast check
// against false positives: a delay that fits the deadline still sleeps it
// out and returns nil.
func TestBackoffSleepCompletesUnderGenerousDeadline(t *testing.T) {
	b := newBackoff(time.Millisecond, 2*time.Millisecond, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.sleep(ctx, 0); err != nil {
		t.Fatalf("sleep under a generous deadline: %v", err)
	}
}
