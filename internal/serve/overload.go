package serve

import (
	"time"

	"mikpoly/internal/obs"
)

// The brownout ladder degrades the service in ordered stages as the overload
// signal climbs, and climbs back down with hysteresis as it clears. Each
// stage sheds progressively more optional work before any request is turned
// away, so the last rung (dropping the lowest tenant class) is reached only
// when cheaper degradation has already failed to relieve pressure:
//
//	stage 1: disable span tracing (observability overhead first)
//	stage 2: shrink the prefill chunk cap (protect decode-step latency)
//	stage 3: stretch fleet hedge delays ×2 (halve duplicate dispatches)
//	stage 4: shed the lowest-priority /generate class with 503
//
// Stage transitions up are immediate — overload punishes hesitation — while
// transitions down require the signal to fall below the stage's entry
// threshold minus brownoutExitGap for brownoutDwell consecutive ticks, so a
// load level oscillating around one threshold cannot flap the ladder.
const (
	brownoutStages   = 4
	brownoutExitGap  = 0.10
	brownoutDwell    = 5
	brownoutInterval = 25 * time.Millisecond

	// brownoutShedStage is the rung at which low-class /generate load sheds.
	brownoutShedStage = 4
)

// brownoutEnter[i] is the signal threshold that enters stage i+1.
var brownoutEnter = [brownoutStages]float64{0.70, 0.80, 0.90, 0.97}

// nextBrownoutStage is the pure ladder automaton: given the current stage,
// the consecutive-calm-tick count, and the instantaneous overload signal, it
// returns the next stage and updated dwell counter. Split from the ticker so
// the hysteresis is unit-testable without wall clocks.
func nextBrownoutStage(cur, dwell int, signal float64) (int, int) {
	up := 0
	for s := brownoutStages; s >= 1; s-- {
		if signal >= brownoutEnter[s-1] {
			up = s
			break
		}
	}
	if up > cur {
		return up, 0
	}
	if cur > 0 && signal < brownoutEnter[cur-1]-brownoutExitGap {
		if dwell++; dwell >= brownoutDwell {
			return cur - 1, 0
		}
		return cur, dwell
	}
	return cur, 0
}

// overloadSignal folds the server's load indicators into one [0,1+] scalar:
// the worst of HTTP admission occupancy, scheduler backlog drain time as a
// fraction of the TTFT bound, KV arena occupancy, and the fraction of model
// breakers currently open. Taking the max (not a blend) means any single
// saturated resource is enough to climb the ladder.
func (s *Server) overloadSignal() float64 {
	sig := float64(len(s.sem)) / float64(cap(s.sem))
	if l := s.sched.Load(); l != nil {
		sc := l.Scheduler()
		if bound := sc.Config().TTFTSLOMs / 1e3; bound > 0 {
			if f := sc.EstimateBacklogSeconds() / bound; f > sig {
				sig = f
			}
		}
		ks := sc.KV().Stats()
		if ks.Pages > 0 {
			if occ := 1 - float64(ks.FreePages+ks.CachedPages)/float64(ks.Pages); occ > sig {
				sig = occ
			}
		}
	}
	if states := s.breakers.states(); len(states) > 0 {
		open := 0
		for _, st := range states {
			if st == breakerOpen {
				open++
			}
		}
		if f := float64(open) / float64(len(states)); f > sig {
			sig = f
		}
	}
	return sig
}

// OverloadStage reports the ladder's current stage (0 = normal operation).
func (s *Server) OverloadStage() int { return int(s.overStage.Load()) }

// setBrownoutStage applies the target stage's cumulative actions. Actions
// are idempotent and derived from the target alone (not deltas), so a stage
// jump of more than one rung — or a re-application after SetCompiler swaps
// the scheduler — lands in the right configuration.
func (s *Server) setBrownoutStage(target int) {
	old := int(s.overStage.Swap(int32(target)))
	if old == target {
		return
	}
	if t := s.o.T(); t != nil && s.tracerWasOn {
		t.SetEnabled(target < 1)
	}
	if l := s.sched.Load(); l != nil {
		sc := l.Scheduler()
		if target >= 2 {
			sc.SetChunkCap(sc.Config().PrefillChunk / 4)
		} else {
			sc.SetChunkCap(0)
		}
	}
	if f := s.fleetD(); f != nil {
		if target >= 3 {
			f.SetHedgeScale(2)
		} else {
			f.SetHedgeScale(1)
		}
	}
}

// startBrownout runs the ladder controller: every tick it folds the load
// signals and steps the automaton. The dwell counter lives in the goroutine —
// it is meaningless between restarts.
func (s *Server) startBrownout() {
	s.tracerWasOn = s.o.T().Enabled()
	s.overWG.Add(1)
	go func() {
		defer s.overWG.Done()
		tick := time.NewTicker(brownoutInterval)
		defer tick.Stop()
		dwell := 0
		for {
			select {
			case <-s.overQuit:
				return
			case <-tick.C:
				cur := int(s.overStage.Load())
				next, nd := nextBrownoutStage(cur, dwell, s.overloadSignal())
				dwell = nd
				if next != cur {
					s.setBrownoutStage(next)
				}
			}
		}
	}()
}

// registerOverloadObs exports the overload-defense series. Like every other
// bridge in obs.go the callbacks re-resolve the scheduler pointer at scrape
// time, so a rebound compiler is picked up and a sched-less server scrapes
// zeros rather than panicking.
func (s *Server) registerOverloadObs() {
	m := s.o.M()
	if m == nil {
		return
	}
	one := func(v float64) []obs.Sample { return []obs.Sample{{Value: v}} }

	m.Collect("mik_overload_stage", "Brownout ladder stage (0 = normal, 4 = shedding lowest class).", "gauge",
		func() []obs.Sample { return one(float64(s.overStage.Load())) })
	m.Collect("mik_overload_sheds_total", "Requests shed by overload defenses, by reason.", "counter",
		func() []obs.Sample {
			var deadline int64
			if l := s.sched.Load(); l != nil {
				deadline = l.Scheduler().Stats().DeadlineSheds
			}
			return []obs.Sample{
				{Labels: [][2]string{{"reason", "deadline"}}, Value: float64(deadline)},
				{Labels: [][2]string{{"reason", "brownout"}}, Value: float64(s.nBrownoutSheds.Load())},
			}
		})
	m.Collect("mik_overload_preemptions_total", "KV-pressure preemption parks and prefix-recompute restores.", "counter",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			ss := l.Scheduler().Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"kind", "preempt"}}, Value: float64(ss.Preemptions)},
				{Labels: [][2]string{{"kind", "restore"}}, Value: float64(ss.Restores)},
			}
		})
	m.Collect("mik_overload_adaptive_limit_tokens", "AIMD admission limiter's current token ceiling.", "gauge",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			return one(float64(l.Scheduler().Stats().AdaptiveLimitTokens))
		})
}
