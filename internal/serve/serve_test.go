package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func testCompiler(t *testing.T) *core.Compiler {
	t.Helper()
	lib, err := core.SharedLibrary(hw.A100(), tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256})
	if err != nil {
		t.Fatal(err)
	}
	return core.NewCompilerFromLibrary(lib)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(testCompiler(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/plan", planRequest{M: 4096, N: 1024, K: 4096})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var pr planResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Degraded {
		t.Fatal("healthy plan marked degraded")
	}
	if len(pr.Regions) == 0 || pr.Tasks <= 0 || pr.SimCycles <= 0 {
		t.Fatalf("implausible plan response: %+v", pr)
	}
}

func TestPlanRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"negative dim", `{"m":-4,"n":8,"k":8}`, http.StatusBadRequest},
		{"zero dim", `{"m":0,"n":8,"k":8}`, http.StatusBadRequest},
		{"malformed json", `{"m":4,`, http.StatusBadRequest},
		{"wrong type", `{"m":"four","n":8,"k":8}`, http.StatusBadRequest},
		{"unknown field", `{"m":4,"n":8,"k":8,"x":1}`, http.StatusBadRequest},
		{"huge dim", `{"m":1073741824,"n":8,"k":8}`, http.StatusRequestEntityTooLarge},
		{"huge volume", `{"m":1048576,"n":1048576,"k":1048576}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/plan", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	// GET on a POST endpoint is routed away by the method pattern.
	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /plan: status %d, want 405", resp.StatusCode)
	}
}

func TestRequestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"m":4,"n":8,"k":8,"pad":%q}`, strings.Repeat("x", 256))
	resp, err := http.Post(ts.URL+"/plan", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestGracefulDegradationEndToEnd is the acceptance scenario: with a planner
// deadline of ~0 every plan falls back, yet /execute still returns a
// numerically correct result, verified against the reference GEMM.
func TestGracefulDegradationEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, Config{PlanTimeout: -1})

	req := execRequest{M: 33, N: 21, K: 17, SeedA: 5, SeedB: 6}
	resp, data := postJSON(t, ts.URL+"/execute", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er execResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded {
		t.Fatal("expired planner deadline must force the fallback path")
	}

	// Client-side verification against the reference GEMM.
	a := tensor.RandomMatrix(req.M, req.K, req.SeedA)
	b := tensor.RandomMatrix(req.K, req.N, req.SeedB)
	want := tensor.Gemm(a, b)
	var wantSum float64
	for _, v := range want.Data {
		wantSum += float64(v)
	}
	if math.Abs(er.Checksum-wantSum) > 1e-2*math.Max(1, math.Abs(wantSum)) {
		t.Fatalf("checksum %g, reference %g", er.Checksum, wantSum)
	}
	wantSample := []float32{
		want.At(0, 0), want.At(0, want.Cols-1),
		want.At(want.Rows-1, 0), want.At(want.Rows-1, want.Cols-1),
	}
	for i, v := range wantSample {
		if math.Abs(float64(er.Sample[i]-v)) > 1e-3*math.Max(1, math.Abs(float64(v))) {
			t.Fatalf("sample[%d] = %g, reference %g", i, er.Sample[i], v)
		}
	}

	// /plan degrades the same way and still returns a legal program.
	presp, pdata := postJSON(t, ts.URL+"/plan", planRequest{M: 100, N: 100, K: 100})
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", presp.StatusCode, pdata)
	}
	var pr planResponse
	if err := json.Unmarshal(pdata, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Degraded || len(pr.Regions) != 1 {
		t.Fatalf("degraded plan response: %+v", pr)
	}
	if srv.nDegraded.Load() < 2 {
		t.Fatalf("degraded counter = %d, want >= 2", srv.nDegraded.Load())
	}
	if h := srv.comp().Health(); h.Fallbacks < 2 {
		t.Fatalf("compiler fallback counter = %d, want >= 2", h.Fallbacks)
	}
}

// TestRetryBackoffOnInjectedFaults drives the fault-retry loop with a
// deterministic seed: every simulated run faults, so the server performs
// exactly MaxRetries re-plans with backoff and still answers correctly.
func TestRetryBackoffOnInjectedFaults(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
		RetryMax:   4 * time.Millisecond,
		Seed:       7,
		Faults:     &sim.Faults{Seed: 42, TaskFaultRate: 1},
	})

	req := execRequest{M: 24, N: 24, K: 24, SeedA: 3, SeedB: 4}
	resp, data := postJSON(t, ts.URL+"/execute", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er execResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + MaxRetries)", er.Attempts)
	}
	if er.FaultedTasks == 0 {
		t.Fatal("rate-1 injection must report faulted tasks")
	}
	if got := srv.nRetries.Load(); got != 2 {
		t.Fatalf("retry counter = %d, want 2", got)
	}
	// Each retry invalidated the cache and re-planned.
	if plans, _ := srv.comp().PlanStats(); plans != 3 {
		t.Fatalf("planner ran %d times, want 3", plans)
	}
	// Numerics are unaffected by simulated faults.
	a := tensor.RandomMatrix(req.M, req.K, req.SeedA)
	b := tensor.RandomMatrix(req.K, req.N, req.SeedB)
	want := tensor.Gemm(a, b)
	var wantSum float64
	for _, v := range want.Data {
		wantSum += float64(v)
	}
	if math.Abs(er.Checksum-wantSum) > 1e-2*math.Max(1, math.Abs(wantSum)) {
		t.Fatalf("checksum %g, reference %g", er.Checksum, wantSum)
	}

	// A fault-free server answers in one attempt.
	_, ts2 := newTestServer(t, Config{})
	resp2, data2 := postJSON(t, ts2.URL+"/execute", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, data2)
	}
	var er2 execResponse
	if err := json.Unmarshal(data2, &er2); err != nil {
		t.Fatal(err)
	}
	if er2.Attempts != 1 || er2.FaultedTasks != 0 {
		t.Fatalf("healthy execute: %+v", er2)
	}
}

func TestExecuteOperandLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxExecElems: 1024})
	resp, data := postJSON(t, ts.URL+"/execute", execRequest{M: 64, N: 64, K: 64})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, data)
	}
}

func TestAdmissionControl(t *testing.T) {
	srv := New(testCompiler(t), Config{MaxInFlight: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	blocked := srv.admitMW(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	first := httptest.NewRecorder()
	go func() {
		defer wg.Done()
		blocked.ServeHTTP(first, httptest.NewRequest(http.MethodPost, "/plan", nil))
	}()
	<-entered

	second := httptest.NewRecorder()
	blocked.ServeHTTP(second, httptest.NewRequest(http.MethodPost, "/plan", nil))
	if second.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", second.Code)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	close(release)
	wg.Wait()
	if first.Code != http.StatusOK {
		t.Fatalf("admitted request status %d", first.Code)
	}
	if srv.nRejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", srv.nRejected.Load())
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	srv := New(testCompiler(t), Config{})
	h := srv.recoverMW(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if srv.nPanics.Load() != 1 {
		t.Fatalf("panic counter = %d, want 1", srv.nPanics.Load())
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	postJSON(t, ts.URL+"/plan", planRequest{M: 64, N: 64, K: 64})
	postJSON(t, ts.URL+"/plan", planRequest{M: 64, N: 64, K: 64})

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var st statsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Plans != 1 {
		t.Fatalf("stats = %+v, want 2 requests and 1 plan (second was a cache hit)", st)
	}
	if st.Cache.Hits != 1 || st.Cache.Size != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.MaxInFlight != DefaultConfig().MaxInFlight {
		t.Fatalf("max in flight = %d", st.MaxInFlight)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	b1 := newBackoff(10*time.Millisecond, 80*time.Millisecond, 99)
	b2 := newBackoff(10*time.Millisecond, 80*time.Millisecond, 99)
	for attempt := 0; attempt < 6; attempt++ {
		d1 := b1.delay(attempt)
		d2 := b2.delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, d1, d2)
		}
		exp := 10 * time.Millisecond << attempt
		if exp > 80*time.Millisecond {
			exp = 80 * time.Millisecond
		}
		if d1 < exp/2 || d1 > exp {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, exp/2, exp)
		}
		if d1 > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds cap", attempt, d1)
		}
	}
	b3 := newBackoff(10*time.Millisecond, 80*time.Millisecond, 100)
	b4 := newBackoff(10*time.Millisecond, 80*time.Millisecond, 99)
	diff := false
	for attempt := 0; attempt < 6; attempt++ {
		if b3.delay(attempt) != b4.delay(attempt) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}
