package serve

import (
	"testing"
	"time"
)

// fakeClock gives breaker tests deterministic time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedBreakers(threshold int, cooldown time.Duration) (*breakerSet, *fakeClock) {
	bs := newBreakerSet(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	bs.now = clk.now
	return bs, clk
}

func TestBreakerOpensAtThresholdAndSheds(t *testing.T) {
	bs, _ := newClockedBreakers(3, time.Minute)
	for i := 0; i < 2; i++ {
		if bs.record("bert", false) {
			t.Fatalf("tripped after %d failures, threshold is 3", i+1)
		}
		if !bs.allow("bert") {
			t.Fatalf("shed below threshold after %d failures", i+1)
		}
	}
	if !bs.record("bert", false) {
		t.Fatal("third failure did not trip the breaker")
	}
	if bs.allow("bert") {
		t.Fatal("open breaker admitted a request")
	}
	// Other models are unaffected.
	if !bs.allow("llama2-decode") {
		t.Fatal("breaker leaked across model names")
	}
	if snap := bs.snapshot(); snap["bert"] != "open" {
		t.Fatalf("snapshot %v, want bert open", snap)
	}
}

func TestBreakerHalfOpenProbeAndReclose(t *testing.T) {
	bs, clk := newClockedBreakers(1, time.Minute)
	bs.record("bert", false) // trips at threshold 1
	if bs.allow("bert") {
		t.Fatal("open breaker admitted before cooldown")
	}
	clk.advance(time.Minute)
	if !bs.allow("bert") {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	// Only one probe: concurrent requests during half-open are shed.
	if bs.allow("bert") {
		t.Fatal("half-open breaker admitted a second probe")
	}
	if snap := bs.snapshot(); snap["bert"] != "half-open" {
		t.Fatalf("snapshot %v, want bert half-open", snap)
	}
	bs.record("bert", true)
	if !bs.allow("bert") {
		t.Fatal("successful probe did not re-close the breaker")
	}
	if snap := bs.snapshot(); snap != nil {
		t.Fatalf("snapshot %v, want empty after re-close", snap)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	bs, clk := newClockedBreakers(1, time.Minute)
	bs.record("bert", false)
	clk.advance(time.Minute)
	if !bs.allow("bert") {
		t.Fatal("probe rejected")
	}
	if !bs.record("bert", false) {
		t.Fatal("failed probe must re-trip the breaker")
	}
	if bs.allow("bert") {
		t.Fatal("re-opened breaker admitted a request before a fresh cooldown")
	}
	clk.advance(time.Minute)
	if !bs.allow("bert") {
		t.Fatal("second cooldown elapsed but probe rejected")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	bs, _ := newClockedBreakers(3, time.Minute)
	bs.record("bert", false)
	bs.record("bert", false)
	bs.record("bert", true) // heal: streak resets
	bs.record("bert", false)
	bs.record("bert", false)
	if !bs.allow("bert") {
		t.Fatal("interrupted failure streak still tripped the breaker")
	}
}
