package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one model's circuit: consecutive unrecoverable failures open
// it, opening sheds that model's traffic with 503 until the cooldown
// elapses, then a single half-open probe decides between re-closing and
// re-opening. Transient faults healed by the runtime's recovery ladder
// never reach the breaker — only typed unrecoverable failures count, so a
// degraded-but-functional device keeps serving.
type breaker struct {
	state    breakerState
	failures int
	openedAt time.Time
}

// breakerSet is the per-model-name breaker registry.
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	byModel   map[string]*breaker
	now       func() time.Time // seam for deterministic tests
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		byModel:   make(map[string]*breaker),
		now:       time.Now,
	}
}

// allow reports whether a request for the model may proceed. An open
// breaker past its cooldown transitions to half-open and admits exactly one
// probe; concurrent requests during the probe are still shed.
func (bs *breakerSet) allow(model string) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.byModel[model]
	if b == nil {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if bs.now().Sub(b.openedAt) >= bs.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: one probe is already in flight
		return false
	}
}

// record feeds one request outcome back. Returns true when this outcome
// tripped the breaker open (for the trip counter).
func (bs *breakerSet) record(model string, ok bool) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.byModel[model]
	if b == nil {
		// Register the model either way: the /metrics state gauge exports a
		// series per model seen, and a closed series is what makes a later
		// open transition legible as 0→1.
		b = &breaker{}
		bs.byModel[model] = b
	}
	if ok {
		b.state = breakerClosed
		b.failures = 0
		return false
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= bs.threshold {
		tripped := b.state != breakerOpen
		b.state = breakerOpen
		b.openedAt = bs.now()
		b.failures = 0
		return tripped
	}
	return false
}

// states lists every model the breaker set has seen with its current state,
// closed included — the /metrics gauge needs the full series so a breaker
// re-closing is visible as a 1→0 transition, not a vanished series.
func (bs *breakerSet) states() map[string]breakerState {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	out := make(map[string]breakerState, len(bs.byModel))
	for name, b := range bs.byModel {
		out[name] = b.state
	}
	return out
}

// snapshot lists the non-closed breakers for /healthz.
func (bs *breakerSet) snapshot() map[string]string {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var out map[string]string
	for name, b := range bs.byModel {
		if b.state != breakerClosed {
			if out == nil {
				out = make(map[string]string)
			}
			out[name] = b.state.String()
		}
	}
	return out
}
