package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func fetchJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestPlanCacheSaveAndWarmStart drives the tier end to end over HTTP: replica
// one plans a shape and flushes a snapshot; replica two, configured with the
// same path, warm-starts at construction and serves the shape with zero
// online plans.
func TestPlanCacheSaveAndWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.snap")

	srv1, ts1 := newTestServer(t, Config{PlanSnapshotPath: path})
	resp, data := postJSON(t, ts1.URL+"/plan", planRequest{M: 512, N: 768, K: 768})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, data)
	}
	resp, err := http.Post(ts1.URL+"/plancache/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var saved savedResponse
	if err := json.NewDecoder(resp.Body).Decode(&saved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || saved.Entries < 1 {
		t.Fatalf("save status %d, entries %d: want 200 with >=1", resp.StatusCode, saved.Entries)
	}
	if srv1.nSnapshotSaves.Load() != 1 {
		t.Fatalf("snapshot_saves = %d, want 1", srv1.nSnapshotSaves.Load())
	}

	var pc planCacheResponse
	if resp := fetchJSON(t, ts1.URL+"/plancache", &pc); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /plancache status %d", resp.StatusCode)
	}
	if pc.SnapshotPath != path || pc.SnapshotSaves != 1 || pc.LibraryHash == "" {
		t.Fatalf("plancache stats %+v", pc)
	}

	// Replica two: warm-started from the file during New, before the
	// compiler goes live.
	srv2, ts2 := newTestServer(t, Config{PlanSnapshotPath: path})
	if srv2.nSnapshotLoads.Load() != 1 {
		t.Fatalf("replica two snapshot_loads = %d, want 1", srv2.nSnapshotLoads.Load())
	}
	if imported := srv2.comp().PlanCache().Imported; imported < 1 {
		t.Fatalf("replica two imported %d entries, want >=1", imported)
	}
	resp, data = postJSON(t, ts2.URL+"/plan", planRequest{M: 512, N: 768, K: 768})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm plan status %d: %s", resp.StatusCode, data)
	}
	if plans, _ := srv2.comp().PlanStats(); plans != 0 {
		t.Fatalf("warm replica planned %d shapes online, want 0", plans)
	}

	// Manual reload is idempotent and counted.
	resp, err = http.Post(ts2.URL+"/plancache/load", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manual load status %d, want 200", resp.StatusCode)
	}
	if srv2.nSnapshotLoads.Load() != 2 {
		t.Fatalf("snapshot_loads = %d, want 2", srv2.nSnapshotLoads.Load())
	}

	// /stats carries the plancache section when a snapshot path is set.
	var stats struct {
		PlanCache *planCacheResponse `json:"plancache"`
	}
	if resp := fetchJSON(t, ts2.URL+"/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats status %d", resp.StatusCode)
	}
	if stats.PlanCache == nil || stats.PlanCache.Imported < 1 {
		t.Fatalf("/stats plancache section missing or empty: %+v", stats.PlanCache)
	}
}

// TestPlanCacheCorruptSnapshotNonFatal: a torn snapshot file must not stop
// the server from coming up — it starts cold, counts the reject, and the
// manual load endpoint answers 409.
func TestPlanCacheCorruptSnapshotNonFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.snap")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{PlanSnapshotPath: path})
	if srv.nSnapshotRejects.Load() != 1 {
		t.Fatalf("snapshot_rejects = %d, want 1", srv.nSnapshotRejects.Load())
	}
	resp, data := postJSON(t, ts.URL+"/plan", planRequest{M: 128, N: 256, K: 512})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold plan status %d: %s", resp.StatusCode, data)
	}
	resp, err := http.Post(ts.URL+"/plancache/load", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("load of corrupt snapshot status %d, want 409", resp.StatusCode)
	}
}

// TestPlanCacheEndpointsWithoutPath: the flush/reload admin surface requires
// a configured path (no client-supplied paths), answering 409 otherwise.
func TestPlanCacheEndpointsWithoutPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, ep := range []string{"/plancache/save", "/plancache/load"} {
		resp, err := http.Post(ts.URL+ep, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s without configured path: status %d, want 409", ep, resp.StatusCode)
		}
	}
	var pc planCacheResponse
	if resp := fetchJSON(t, ts.URL+"/plancache", &pc); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /plancache status %d, want 200 even without a path", resp.StatusCode)
	}
}
