package serve

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// backoff computes capped exponential retry delays with "equal jitter": half
// the exponential delay is fixed, half is drawn from a seeded stream, so
// concurrent retries decorrelate without ever collapsing to zero wait. A
// fixed seed makes the whole delay sequence reproducible in tests.
type backoff struct {
	base, max time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(base, max time.Duration, seed uint64) *backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	return &backoff{base: base, max: max, rng: rand.New(rand.NewSource(int64(seed)))}
}

// delay returns the wait before retry attempt (0-based).
func (b *backoff) delay(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	half := d / 2
	b.mu.Lock()
	jitter := time.Duration(b.rng.Int63n(int64(half) + 1))
	b.mu.Unlock()
	return half + jitter
}

// sleep waits for the attempt's delay or until ctx expires, reporting ctx's
// error in the latter case. A delay that cannot complete before ctx's
// deadline fails fast instead of burning the request's remaining budget
// asleep: the caller learns immediately that its retry budget is gone.
func (b *backoff) sleep(ctx context.Context, attempt int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d := b.delay(attempt)
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
