package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mikpoly/internal/core"
	"mikpoly/internal/hw"
	"mikpoly/internal/obs"
	"mikpoly/internal/tune"
)

// newObsServer builds a fully observed stack: compiler with planner metrics
// and tracing, server exporting /metrics and /trace.
func newObsServer(t *testing.T, o *obs.Obs, cfg Config) (*Server, string) {
	t.Helper()
	lib, err := core.SharedLibrary(hw.A100(), tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = o
	srv := New(core.NewCompilerFromLibrary(lib, core.WithObs(o)), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

func TestMetricsEndpoint(t *testing.T) {
	o := obs.New(obs.DefaultTraceCapacity)
	_, ts := newObsServer(t, o, Config{})

	// One uncached plan, one cached replay (a cache hit), one model run —
	// every exported subsystem has something to report.
	for i := 0; i < 2; i++ {
		if resp, data := postJSON(t, ts+"/plan", planRequest{M: 512, N: 512, K: 512}); resp.StatusCode != http.StatusOK {
			t.Fatalf("plan status %d: %s", resp.StatusCode, data)
		}
	}
	if resp, data := postJSON(t, ts+"/model", modelRequest{Model: "distilbert", Seq: 32}); resp.StatusCode != http.StatusOK {
		t.Fatalf("model status %d: %s", resp.StatusCode, data)
	}

	resp, body := getBody(t, ts+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE mik_plan_latency_seconds histogram",
		"mik_plan_latency_seconds_bucket{le=\"+Inf\"}",
		`mik_cache_ops_total{op="hit"}`,
		`mik_cache_ops_total{op="miss"}`,
		`mik_cache_ops_total{op="eviction"}`,
		`mik_cache_entries{state="used"}`,
		"mik_serve_requests_total 3",
		"mik_graph_executions_total 1",
		`mik_pe_utilization{pe="0"}`,
		"mik_wave_imbalance",
		`mik_graph_plan_wall_seconds{kind="hidden"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	resp, body = getBody(t, ts+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	for _, want := range []string{"core.plan", "poly.plan", "graphrt.execute", "graphrt.stage"} {
		if !strings.Contains(body, want) {
			t.Errorf("trace dump missing span %q", want)
		}
	}
}

func TestObsDisabledServes404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, ep := range []string{"/metrics", "/trace"} {
		resp, _ := getBody(t, ts.URL+ep)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without Obs: status %d, want 404", ep, resp.StatusCode)
		}
	}
}

// TestConcurrentModelStatsClearCache is the race regression for the stats
// snapshotting path: model executions mutate the runtime's cumulative
// counters (including the per-PE busy slice) while /stats, /metrics, and
// ClearCache read and reset shared compiler state. Run under -race (the CI
// does); any unsynchronized access fails the build.
func TestConcurrentModelStatsClearCache(t *testing.T) {
	o := obs.New(256)
	srv, ts := newObsServer(t, o, Config{PlanAhead: 2})

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, data := postJSON(t, ts+"/model", modelRequest{Model: "distilbert", Seq: 32})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("model status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if resp, _ := getBody(t, ts+"/stats"); resp.StatusCode != http.StatusOK {
					t.Error("stats failed mid-churn")
					return
				}
				if resp, _ := getBody(t, ts+"/metrics"); resp.StatusCode != http.StatusOK {
					t.Error("metrics failed mid-churn")
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				srv.comp().ClearCache()
			}
		}()
	}
	wg.Wait()

	if resp, _ := getBody(t, ts+"/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatal("metrics unavailable after churn")
	}
}
