package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"mikpoly/internal/graphrt"
	"mikpoly/internal/nn"
)

// modelRequest asks the service to execute a whole model graph end to end
// through the graph runtime. Zero dimensions take the registry defaults;
// Steps (llama2-decode only) defaults to 1.
type modelRequest struct {
	Model      string `json:"model"`
	Seq        int    `json:"seq,omitempty"`
	Batch      int    `json:"batch,omitempty"`
	Resolution int    `json:"resolution,omitempty"`
	KVLen      int    `json:"kv_len,omitempty"`
	Steps      int    `json:"steps,omitempty"`
}

// modelResponse reports one model execution: device time, plan-ahead
// accounting, memory-planner results, and (for batched decode) the sharing
// achieved by continuous batching.
type modelResponse struct {
	Graph  string `json:"graph"`
	Ops    int    `json:"ops"`
	Stages int    `json:"stages,omitempty"`

	SimCycles float64 `json:"sim_cycles"`

	Plans      int     `json:"plans,omitempty"`
	Stalls     int     `json:"stalls"`
	PlanMs     float64 `json:"plan_ms"`
	StallMs    float64 `json:"stall_ms"`
	HiddenMs   float64 `json:"hidden_ms"`
	HiddenFrac float64 `json:"hidden_frac"`

	Degraded     int `json:"degraded"`
	Attempts     int `json:"attempts"`
	FaultedTasks int `json:"faulted_tasks"`

	// Stage-recovery accounting: stages healed by the runtime's escalation
	// ladder and the faulted tasks it absorbed doing so.
	RecoveredStages int `json:"recovered_stages,omitempty"`
	RecoveredFaults int `json:"recovered_faults,omitempty"`

	Batched     bool `json:"batched,omitempty"`
	Tokens      int  `json:"tokens,omitempty"`
	SharedSteps int  `json:"shared_steps,omitempty"`

	// Device names the fleet replica that served the winning attempt
	// (fleet-backed path only).
	Device string `json:"device,omitempty"`

	PeakMemBytes    int64   `json:"peak_mem_bytes,omitempty"`
	WorkingSetBytes int64   `json:"working_set_bytes,omitempty"`
	SpilledBuffers  int     `json:"spilled_buffers,omitempty"`
	SpillBytes      float64 `json:"spill_bytes,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	c := s.ready(w)
	if c == nil {
		return
	}
	rt := s.runtime.Load()
	if rt == nil {
		httpError(w, http.StatusServiceUnavailable, "graph runtime not ready")
		return
	}
	var req modelRequest
	if !decodeBody(w, r, &req) {
		return
	}
	for _, dim := range []struct {
		name string
		v    int
	}{{"seq", req.Seq}, {"batch", req.Batch}, {"resolution", req.Resolution}, {"kv_len", req.KVLen}} {
		if dim.v < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("%s must be non-negative", dim.name))
			return
		}
		if dim.v > s.cfg.MaxDim {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("%s %d exceeds per-dimension limit %d", dim.name, dim.v, s.cfg.MaxDim))
			return
		}
	}
	if req.Steps < 0 || req.Steps > s.cfg.MaxModelSteps {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("steps %d outside [0, %d]", req.Steps, s.cfg.MaxModelSteps))
		return
	}
	if req.Steps == 0 {
		req.Steps = 1
	}
	// Per-model circuit breaker: a model whose graphs keep failing
	// unrecoverably is shed early, so a persistently broken shape class
	// cannot monopolize the device while other models still serve.
	if !s.breakers.allow(req.Model) {
		s.nBreakerDrops.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.BreakerCooldown/time.Second)+1))
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("circuit breaker open for model %q", req.Model))
		return
	}

	// llama2-decode rides the continuous batcher when enabled: concurrent
	// requests with nearby KV lengths share shape-bucketed step graphs.
	// Fleet-backed servers skip it — batching is a single-runtime loop,
	// while the fleet wants each request individually routable.
	if req.Model == "llama2-decode" && req.Batch <= 1 && s.fleetD() == nil {
		if b := s.batcher.Load(); b != nil {
			s.handleBatchedDecode(w, r, b, req)
			return
		}
	}

	g, err := nn.BuildModel(req.Model, nn.ModelDims{
		Seq: req.Seq, Batch: req.Batch, Resolution: req.Resolution, KVLen: req.KVLen,
	})
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(g.Ops) > s.cfg.MaxModelOps {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("graph %s has %d ops, exceeds limit %d", g.Name, len(g.Ops), s.cfg.MaxModelOps))
		return
	}

	// Fleet-backed execution: the dispatcher owns retries (failover across
	// replicas with per-attempt fault salts), so the whole-graph retry loop
	// below would be redundant. Breaker accounting still applies — a model
	// no replica can run should be shed just like on a single device.
	if f := s.fleetD(); f != nil {
		rep, device, attempts, err := f.ExecModel(r.Context(), g)
		if err != nil {
			s.nUnrecoverable.Add(1)
			if s.breakers.record(req.Model, false) {
				s.nBreakerTrips.Add(1)
			}
			httpError(w, fleetStatus(err), err.Error())
			return
		}
		s.breakers.record(req.Model, true)
		if rep.FaultedTasks > 0 {
			s.nFaults.Add(1)
		}
		if rep.Degraded > 0 {
			s.nDegraded.Add(1)
		}
		s.nModels.Add(1)
		writeJSON(w, http.StatusOK, modelResponse{
			Graph:           rep.Graph,
			Ops:             rep.Ops,
			Stages:          rep.Stages,
			SimCycles:       rep.Cycles,
			Plans:           rep.Plans,
			Stalls:          rep.Stalls,
			PlanMs:          ms(rep.PlanWall),
			StallMs:         ms(rep.StallWall),
			HiddenMs:        ms(rep.HiddenWall),
			HiddenFrac:      rep.HiddenFraction(),
			Degraded:        rep.Degraded,
			Attempts:        attempts,
			FaultedTasks:    rep.FaultedTasks,
			RecoveredStages: rep.RecoveredStages,
			RecoveredFaults: rep.RecoveredFaults,
			PeakMemBytes:    rep.Mem.PeakBytes,
			WorkingSetBytes: rep.Mem.WorkingSetBytes,
			SpilledBuffers:  rep.Mem.SpilledBuffers,
			SpillBytes:      rep.Mem.SpillBytes,
			Device:          device,
		})
		return
	}

	// Execute with fault-triggered re-planning. The runtime's recovery
	// ladder absorbs most faults stage-locally; what reaches this loop is
	// either residual faulted tasks (runtime without health recovery) or a
	// typed StageError (ladder exhausted). Both get the whole-graph
	// treatment: drop the graph's cached programs, back off, and retry
	// under a fresh fault salt — bounded by MaxRetries.
	ctx := r.Context()
	attempts := 0
	var rep graphrt.Report
	var stageErr *graphrt.StageError
	for {
		rep, err = rt.ExecuteSalted(ctx, g, uint64(attempts))
		attempts++
		retryable := err == nil && rep.FaultedTasks > 0
		if err != nil && errors.As(err, &stageErr) {
			s.nUnrecoverable.Add(1)
			retryable = true
		}
		if err != nil && !retryable {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if !retryable || attempts > s.cfg.MaxRetries {
			break
		}
		s.nFaults.Add(1)
		s.nRetries.Add(1)
		if berr := s.bo.sleep(ctx, attempts-1); berr != nil {
			httpError(w, http.StatusServiceUnavailable, "retry budget interrupted: "+berr.Error())
			return
		}
		for shape := range g.GemmShapes() {
			c.Invalidate(shape)
		}
	}
	if err != nil {
		// Retries exhausted on an unrecoverable stage: typed 503 (the
		// device genuinely cannot run this graph right now) and a strike
		// against the model's circuit breaker.
		if s.breakers.record(req.Model, false) {
			s.nBreakerTrips.Add(1)
		}
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.breakers.record(req.Model, true)
	if rep.FaultedTasks > 0 {
		s.nFaults.Add(1)
	}
	if rep.Degraded > 0 {
		s.nDegraded.Add(1)
	}
	s.nModels.Add(1)

	writeJSON(w, http.StatusOK, modelResponse{
		Graph:           rep.Graph,
		Ops:             rep.Ops,
		Stages:          rep.Stages,
		SimCycles:       rep.Cycles,
		Plans:           rep.Plans,
		Stalls:          rep.Stalls,
		PlanMs:          ms(rep.PlanWall),
		StallMs:         ms(rep.StallWall),
		HiddenMs:        ms(rep.HiddenWall),
		HiddenFrac:      rep.HiddenFraction(),
		Degraded:        rep.Degraded,
		Attempts:        attempts,
		FaultedTasks:    rep.FaultedTasks,
		RecoveredStages: rep.RecoveredStages,
		RecoveredFaults: rep.RecoveredFaults,
		PeakMemBytes:    rep.Mem.PeakBytes,
		WorkingSetBytes: rep.Mem.WorkingSetBytes,
		SpilledBuffers:  rep.Mem.SpilledBuffers,
		SpillBytes:      rep.Mem.SpillBytes,
	})
}

// handleBatchedDecode submits a single-sequence decode request to the
// continuous batcher and blocks until its steps complete.
func (s *Server) handleBatchedDecode(w http.ResponseWriter, r *http.Request, b *graphrt.DecodeBatcher, req modelRequest) {
	kv := req.KVLen
	if kv == 0 {
		kv = nn.DefaultKVLen
	}
	if kv < 1 {
		httpError(w, http.StatusBadRequest, "kv_len must be >= 1")
		return
	}
	res, err := b.Submit(r.Context(), graphrt.DecodeRequest{KVLen: kv, Tokens: req.Steps})
	if err != nil {
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err.Error())
		return
	}
	if res.FaultedTasks > 0 {
		s.nFaults.Add(1)
	}
	if res.Degraded > 0 {
		s.nDegraded.Add(1)
	}
	s.nModels.Add(1)
	writeJSON(w, http.StatusOK, modelResponse{
		Graph:        fmt.Sprintf("llama2-decode@kv%d+%d", kv, req.Steps),
		SimCycles:    res.Cycles,
		Stalls:       res.Stalls,
		Degraded:     res.Degraded,
		Attempts:     1,
		FaultedTasks: res.FaultedTasks,
		Batched:      true,
		Tokens:       res.Tokens,
		SharedSteps:  res.SharedSteps,
	})
}
