package serve

import (
	"context"
	"errors"
	"net/http"
	"os"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/obs"
	"mikpoly/internal/plancache"
)

// This file is the serving layer's plan-cache tier surface: snapshot
// warm-load on compiler bind, a periodic flusher that pre-plans the traffic
// tracker's hot shapes and atomically rewrites the snapshot file, admin
// endpoints to inspect/flush/reload, and the mik_plancache_* metrics.

// snapshotHotLimit bounds how many tracker-hot shapes one flush pre-plans;
// snapshotFlushTimeout bounds the whole pre-plan sweep so a pathological
// shape cannot wedge the flusher.
const (
	snapshotHotLimit     = 64
	snapshotFlushTimeout = 30 * time.Second
)

// loadSnapshotInto warm-starts c's program cache from the configured
// snapshot path. Missing file, corruption, and compatibility mismatches are
// all non-fatal: the replica plans online. File-level failures count in
// nSnapshotRejects (a simply absent file does not); compatibility rejects
// are counted by the compiler itself (PlanCache().ImportRejects).
func (s *Server) loadSnapshotInto(c *core.Compiler) {
	snap, err := plancache.LoadFile(s.cfg.PlanSnapshotPath)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.nSnapshotRejects.Add(1)
		}
		return
	}
	if _, err := c.ImportSnapshot(snap); err != nil {
		return
	}
	s.nSnapshotLoads.Add(1)
}

// startSnapshotFlusher launches the periodic flush loop; Close stops it.
func (s *Server) startSnapshotFlusher() {
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_, _ = s.flushSnapshot(context.Background())
			case <-s.snapQuit:
				return
			}
		}
	}()
}

// flushSnapshot pre-plans the tracker's hot shapes and atomically rewrites
// the configured snapshot file, returning how many programs it persisted.
func (s *Server) flushSnapshot(ctx context.Context) (int, error) {
	c := s.comp()
	if c == nil {
		return 0, errors.New("compiler not ready")
	}
	pctx, cancel := context.WithTimeout(ctx, snapshotFlushTimeout)
	defer cancel()
	_, _ = c.PrePlanHot(pctx, snapshotHotLimit)
	snap, err := c.ExportSnapshot()
	if err != nil {
		return 0, err
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := plancache.SaveFile(snap, s.cfg.PlanSnapshotPath); err != nil {
		return 0, err
	}
	s.nSnapshotSaves.Add(1)
	return len(snap.Entries), nil
}

// planCacheResponse is the GET /plancache (and /stats plancache section)
// wire format.
type planCacheResponse struct {
	core.PlanCacheStats
	SnapshotPath    string   `json:"snapshot_path,omitempty"`
	SnapshotSaves   int64    `json:"snapshot_saves"`
	SnapshotLoads   int64    `json:"snapshot_loads"`
	SnapshotRejects int64    `json:"snapshot_rejects"`
	CachedPrograms  int      `json:"cached_programs"`
	HotShapes       []string `json:"hot_shapes,omitempty"`
}

// planCacheStats assembles the tier's live view from the bound compiler.
func (s *Server) planCacheStats(c *core.Compiler) planCacheResponse {
	resp := planCacheResponse{
		PlanCacheStats:  c.PlanCache(),
		SnapshotPath:    s.cfg.PlanSnapshotPath,
		SnapshotSaves:   s.nSnapshotSaves.Load(),
		SnapshotLoads:   s.nSnapshotLoads.Load(),
		SnapshotRejects: s.nSnapshotRejects.Load(),
		CachedPrograms:  c.CacheStats().Size,
	}
	for _, sh := range c.HotShapes(8) {
		resp.HotShapes = append(resp.HotShapes, sh.String())
	}
	return resp
}

// handlePlanCache reports the plan-cache tier's state.
func (s *Server) handlePlanCache(w http.ResponseWriter, r *http.Request) {
	c := s.ready(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.planCacheStats(c))
}

// savedResponse reports one manual snapshot flush.
type savedResponse struct {
	Path    string `json:"path"`
	Entries int    `json:"entries"`
}

// handlePlanCacheSave flushes the program cache to the configured snapshot
// path immediately (pre-planning hot shapes first, like the periodic
// flusher). 409 when no snapshot path is configured.
func (s *Server) handlePlanCacheSave(w http.ResponseWriter, r *http.Request) {
	if s.ready(w) == nil {
		return
	}
	if s.cfg.PlanSnapshotPath == "" {
		httpError(w, http.StatusConflict, "no snapshot path configured (-plan-snapshot)")
		return
	}
	n, err := s.flushSnapshot(r.Context())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, savedResponse{Path: s.cfg.PlanSnapshotPath, Entries: n})
}

// loadedResponse reports one manual snapshot load.
type loadedResponse struct {
	Path     string `json:"path"`
	Imported int    `json:"imported"`
}

// handlePlanCacheLoad re-reads the configured snapshot file into the live
// program cache — the warm-start path, invocable at runtime (e.g. after
// another replica flushed a richer snapshot to shared storage). Corruption
// and compatibility mismatches answer 409 and leave the cache untouched.
func (s *Server) handlePlanCacheLoad(w http.ResponseWriter, r *http.Request) {
	c := s.ready(w)
	if c == nil {
		return
	}
	if s.cfg.PlanSnapshotPath == "" {
		httpError(w, http.StatusConflict, "no snapshot path configured (-plan-snapshot)")
		return
	}
	snap, err := plancache.LoadFile(s.cfg.PlanSnapshotPath)
	if err != nil {
		s.nSnapshotRejects.Add(1)
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	n, err := c.ImportSnapshot(snap)
	if err != nil {
		// Compatibility rejects are counted by the compiler
		// (PlanCache().ImportRejects); don't double-book them here.
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	s.nSnapshotLoads.Add(1)
	writeJSON(w, http.StatusOK, loadedResponse{Path: s.cfg.PlanSnapshotPath, Imported: n})
}

// registerPlanCacheObs exports the tier's counters (scrape-time bridges, same
// idiom as registerObs).
func (s *Server) registerPlanCacheObs() {
	m := s.o.M()
	if m == nil {
		return
	}
	one := func(v float64) []obs.Sample { return []obs.Sample{{Value: v}} }

	m.Collect("mik_plancache_imported_total", "Programs warm-loaded into the cache from snapshots.", "counter",
		func() []obs.Sample {
			c := s.comp()
			if c == nil {
				return nil
			}
			return one(float64(c.PlanCache().Imported))
		})
	m.Collect("mik_plancache_preplans_total", "Background pre-plans of traffic-hot shapes.", "counter",
		func() []obs.Sample {
			c := s.comp()
			if c == nil {
				return nil
			}
			return one(float64(c.PlanCache().PrePlans))
		})
	m.Collect("mik_plancache_tracked_shapes", "Distinct shapes with non-zero decayed traffic weight.", "gauge",
		func() []obs.Sample {
			c := s.comp()
			if c == nil {
				return nil
			}
			return one(float64(c.PlanCache().TrackedShapes))
		})
	m.Collect("mik_plancache_snapshot_ops_total", "Snapshot file operations: saves, loads, and rejected loads/imports (incl. compiler-side rejects).", "counter",
		func() []obs.Sample {
			rejects := s.nSnapshotRejects.Load()
			if c := s.comp(); c != nil {
				rejects += c.PlanCache().ImportRejects
			}
			return []obs.Sample{
				{Labels: [][2]string{{"op", "save"}}, Value: float64(s.nSnapshotSaves.Load())},
				{Labels: [][2]string{{"op", "load"}}, Value: float64(s.nSnapshotLoads.Load())},
				{Labels: [][2]string{{"op", "reject"}}, Value: float64(rejects)},
			}
		})
}
