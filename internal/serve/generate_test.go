package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
)

// postTenant posts JSON with an X-Tenant header.
func postTenant(t *testing.T, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestGenerateDisabledWithoutSched(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/generate", generateRequest{PromptLen: 64})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d without SchedDecode, want 503: %s", resp.StatusCode, data)
	}
}

func TestGenerateHappyPathAndPrefixReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{SchedDecode: true})

	gen := func(prefix int) generateResponse {
		t.Helper()
		resp, data := postTenant(t, ts.URL+"/generate", "acme", generateRequest{
			PromptLen: 96, Group: 1, PrefixLen: prefix, Steps: 4,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var gr generateResponse
		if err := json.Unmarshal(data, &gr); err != nil {
			t.Fatal(err)
		}
		return gr
	}

	first := gen(64)
	if first.Tenant != "acme" {
		t.Fatalf("tenant %q, want acme", first.Tenant)
	}
	if first.DecodeTokens != 4 {
		t.Fatalf("decode_tokens %d, want 4", first.DecodeTokens)
	}
	if first.Mass != 96+4 {
		t.Fatalf("mass %d, want 100", first.Mass)
	}
	if first.Digest == "" || first.Digest == "0000000000000000" {
		t.Fatalf("empty digest %q", first.Digest)
	}

	// Same tenant+group+prefix: the second request must hit the sealed
	// prefix pages, and reuse must not change the decoded bits.
	second := gen(64)
	if second.ReusedTokens == 0 {
		t.Fatal("second request with shared prefix reused no tokens")
	}
	if second.Digest != first.Digest {
		t.Fatalf("digest changed under prefix reuse: %s vs %s", second.Digest, first.Digest)
	}

	// Validation: prompt_len out of range.
	resp, _ := postTenant(t, ts.URL+"/generate", "acme", generateRequest{PromptLen: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("prompt_len 0 status %d, want 400", resp.StatusCode)
	}
}

func TestGenerateTenantAllowlist(t *testing.T) {
	_, ts := newTestServer(t, Config{SchedDecode: true, Tenants: []string{"acme", "globex"}})

	resp, data := postTenant(t, ts.URL+"/generate", "intruder", generateRequest{PromptLen: 32, Steps: 1})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown tenant status %d, want 403: %s", resp.StatusCode, data)
	}
	// No header resolves to "default", which the allowlist also rejects.
	resp, _ = postTenant(t, ts.URL+"/generate", "", generateRequest{PromptLen: 32, Steps: 1})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("default tenant status %d, want 403", resp.StatusCode)
	}
	resp, data = postTenant(t, ts.URL+"/generate", "globex", generateRequest{PromptLen: 32, Steps: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("allowlisted tenant status %d, want 200: %s", resp.StatusCode, data)
	}
}

// TestGenerateTokenBudget429 exercises token-counted admission: a request
// whose mass exceeds the in-flight token budget is rejected with 429 and a
// Retry-After header — distinct from the request-counted admitMW semaphore,
// which would have admitted it.
func TestGenerateTokenBudget429(t *testing.T) {
	srv, ts := newTestServer(t, Config{SchedDecode: true, SchedInFlightTokens: 64})

	resp, data := postTenant(t, ts.URL+"/generate", "acme", generateRequest{PromptLen: 128, Steps: 4})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget status %d, want 429: %s", resp.StatusCode, data)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if got := srv.nTokenRejected.Load(); got != 1 {
		t.Fatalf("token_rejected counter %d, want 1", got)
	}

	// A request that fits the budget still goes through.
	resp, data = postTenant(t, ts.URL+"/generate", "acme", generateRequest{PromptLen: 32, Steps: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-budget status %d, want 200: %s", resp.StatusCode, data)
	}
}

// TestRetryAfterFromEstimate pins the backlog→header mapping: the floor is
// 1s regardless of estimate, values round up, growth is monotone with the
// backlog, and a pathological estimate clamps at 30s.
func TestRetryAfterFromEstimate(t *testing.T) {
	cases := []struct {
		est  float64
		want string
	}{
		{0, "1"},
		{0.2, "1"},
		{1.0, "1"},
		{1.01, "2"},
		{3.4, "4"},
		{29.5, "30"},
		{1e9, "30"},
	}
	prev := 0
	for _, c := range cases {
		got := retryAfterFromEstimate(c.est)
		if got != c.want {
			t.Errorf("retryAfterFromEstimate(%v) = %q, want %q", c.est, got, c.want)
		}
		n, _ := strconv.Atoi(got)
		if n < prev {
			t.Errorf("Retry-After not monotone in backlog: %d after %d", n, prev)
		}
		prev = n
	}
}
