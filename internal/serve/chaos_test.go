package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// chaosRecord is one request's externally visible outcome.
type chaosRecord struct {
	Endpoint string
	Status   int
	Cycles   float64
	Faulted  int
	Checksum float64
}

// chaosOutcome is everything a chaos scenario exposes to its invariants:
// the per-request records plus the final health state. Two runs of the same
// seed must produce identical outcomes.
type chaosOutcome struct {
	Records     []chaosRecord
	Quarantined []int
	HealthState string
	Recovered   int64 // ladder recoveries (retried+migrated+replanned)
	GraphCycles float64
}

// runChaosScenario drives a scripted traffic mix through a full serve stack
// wired with the seed's chaos fault schedule, and collects the outcome.
func runChaosScenario(t *testing.T, seed uint64, disableHeal bool) chaosOutcome {
	t.Helper()
	faults := sim.ChaosSchedule(seed, hw.A100())
	srv, ts := newTestServer(t, Config{
		Faults:          &faults,
		Seed:            seed,
		DisableSelfHeal: disableHeal,
		RetryBase:       1, // keep blind-retry backoff out of the wall clock
		RetryMax:        2,
	})
	t.Cleanup(srv.Close)

	var out chaosOutcome
	record := func(endpoint string, body any) {
		resp, data := postJSON(t, ts.URL+endpoint, body)
		rec := chaosRecord{Endpoint: endpoint, Status: resp.StatusCode}
		switch resp.StatusCode {
		case http.StatusOK:
			switch endpoint {
			case "/model":
				var mr modelResponse
				if err := json.Unmarshal(data, &mr); err != nil {
					t.Fatalf("%s: %v", endpoint, err)
				}
				rec.Cycles, rec.Faulted = mr.SimCycles, mr.FaultedTasks
			case "/execute":
				var er execResponse
				if err := json.Unmarshal(data, &er); err != nil {
					t.Fatalf("%s: %v", endpoint, err)
				}
				rec.Cycles, rec.Faulted, rec.Checksum = er.SimCycles, er.FaultedTasks, er.Checksum
			}
		case http.StatusServiceUnavailable:
			// Typed rejection: acceptable chaos outcome.
		default:
			t.Fatalf("%s: status %d is neither success nor typed 503: %s", endpoint, resp.StatusCode, data)
		}
		out.Records = append(out.Records, rec)
	}

	// The traffic mix: repeated model graphs (stage memo + plan cache under
	// a changing health view), a decode graph, and a numeric execution.
	for i := 0; i < 3; i++ {
		record("/model", modelRequest{Model: "distilbert", Seq: 32})
	}
	record("/model", modelRequest{Model: "llama2-decode", KVLen: 128, Steps: 2})
	record("/execute", execRequest{M: 96, N: 96, K: 64, SeedA: 7, SeedB: 9})
	record("/model", modelRequest{Model: "distilbert", Seq: 32})

	// Final health state.
	data := getJSON(t, ts.URL+"/healthz")
	var hr healthResponse
	if err := json.Unmarshal(data, &hr); err != nil {
		t.Fatal(err)
	}
	out.Quarantined = hr.Quarantined
	out.HealthState = hr.Status

	if rt := srv.runtime.Load(); rt != nil {
		gs := rt.Stats()
		out.Recovered = gs.RetriedStages + gs.MigratedStages + gs.ReplannedStages
		out.GraphCycles = gs.Cycles
	}

	// Invariant: no panics anywhere in the stack.
	if n := srv.nPanics.Load(); n != 0 {
		t.Fatalf("seed %d: %d handler panics recovered", seed, n)
	}
	// Invariant: health status consistent with the quarantine set.
	if len(hr.Quarantined) > 0 && hr.Status != "degraded" {
		t.Fatalf("seed %d: quarantined %v but status %q", seed, hr.Quarantined, hr.Status)
	}
	return out
}

// getJSON fetches a GET endpoint's body.
func getJSON(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf []byte
	buf, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, buf)
	}
	return buf
}

// TestChaosSeedsInvariants is the chaos harness: for several seeds, a full
// serve stack under that seed's persistent-fault schedule (PE death, sticky
// streaks, brownouts, transient faults) must (a) answer every request with a
// correct result or a typed error, (b) never panic, (c) never leak a
// degraded program into the healthy cache, and (d) behave identically when
// the same seed is replayed.
func TestChaosSeedsInvariants(t *testing.T) {
	for _, seed := range []uint64{1, 7, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			first := runChaosScenario(t, seed, false)
			second := runChaosScenario(t, seed, false)
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("seed %d nondeterministic:\n first %+v\nsecond %+v", seed, first, second)
			}
			for _, rec := range first.Records {
				if rec.Status == http.StatusOK && rec.Faulted != 0 {
					t.Fatalf("seed %d: %s answered 200 with %d unhealed faulted tasks", seed, rec.Endpoint, rec.Faulted)
				}
			}
		})
	}
}

// TestChaosNoCachePoisoning plants a persistent PE death, lets the stack
// degrade, and then verifies the healthy cache entry was never overwritten
// by a degraded-view program: after the registry heals, the same shape plans
// back to full-width hardware.
func TestChaosNoCachePoisoning(t *testing.T) {
	faults := sim.Faults{Seed: 5, PEDeathCycle: map[int]float64{4: 1}}
	srv, ts := newTestServer(t, Config{Faults: &faults, RetryBase: 1, RetryMax: 2})
	t.Cleanup(srv.Close)

	base := hw.A100().NumPEs
	shape := tensor.GemmShape{M: 96, N: 96, K: 64}

	// Healthy plan first: cached under fp "".
	resp, data := postJSON(t, ts.URL+"/plan", planRequest{M: 96, N: 96, K: 64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, data)
	}
	c := srv.comp()
	if !c.Cached(shape, "") {
		t.Fatal("healthy plan not cached under the pristine fingerprint")
	}

	// Drive executions until the PE death is observed and quarantined.
	for i := 0; i < 6; i++ {
		postJSON(t, ts.URL+"/model", modelRequest{Model: "distilbert", Seq: 32})
		if reg := srv.health.Load(); reg != nil && len(reg.View().Quarantined) > 0 {
			break
		}
	}
	reg := srv.health.Load()
	fp := reg.View().Fingerprint()
	if fp == "" {
		t.Fatal("persistent PE death never quarantined a PE")
	}

	// A degraded re-plan of the same shape lands under fp, not "".
	resp, data = postJSON(t, ts.URL+"/plan", planRequest{M: 96, N: 96, K: 64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded plan: %d %s", resp.StatusCode, data)
	}
	if !c.Cached(shape, fp) {
		t.Fatalf("degraded plan not cached under fp %q", fp)
	}

	// The healthy entry must be intact: heal the registry and plan again —
	// the cache must hand back a full-width program without replanning.
	reg.Reset()
	prog, err := c.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	if prog.HW.NumPEs != base {
		t.Fatalf("healthy cache entry poisoned: targets %d PEs, want %d", prog.HW.NumPEs, base)
	}
}

// TestChaosPEDeathHealsWithCorrectNumerics is the acceptance scenario: a PE
// dies mid-graph; the stack must quarantine it, replan on the degraded view,
// and return numerics identical to a fault-free run — while /healthz reports
// the quarantined PE.
func TestChaosPEDeathHealsWithCorrectNumerics(t *testing.T) {
	exec := execRequest{M: 192, N: 160, K: 96, SeedA: 3, SeedB: 5}

	// Reference numerics: fault-free stack.
	_, refTS := newTestServer(t, Config{})
	resp, data := postJSON(t, refTS.URL+"/execute", exec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference execute: %d %s", resp.StatusCode, data)
	}
	var ref execResponse
	if err := json.Unmarshal(data, &ref); err != nil {
		t.Fatal(err)
	}

	// Chaos stack: PE 6 dies at cycle 1 of every run — every stage faults
	// until the registry quarantines it and the remap drops its schedule.
	faults := sim.Faults{Seed: 11, PEDeathCycle: map[int]float64{6: 1}}
	srv, ts := newTestServer(t, Config{Faults: &faults, RetryBase: 1, RetryMax: 2})
	t.Cleanup(srv.Close)

	resp, data = postJSON(t, ts.URL+"/model", modelRequest{Model: "distilbert", Seq: 32})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model under PE death: %d %s", resp.StatusCode, data)
	}
	var mr modelResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.FaultedTasks != 0 {
		t.Fatalf("model surfaced %d faulted tasks despite recovery", mr.FaultedTasks)
	}
	if mr.RecoveredStages == 0 {
		t.Fatal("PE death healed without any recorded stage recovery")
	}

	// /healthz must now report the quarantined PE and degraded status.
	data = getJSON(t, ts.URL+"/healthz")
	var hr healthResponse
	if err := json.Unmarshal(data, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || len(hr.Quarantined) != 1 || hr.Quarantined[0] != 6 {
		t.Fatalf("healthz %+v, want degraded with PE 6 quarantined", hr)
	}

	// Degraded-mode numerics must equal the fault-free reference exactly:
	// every program partitions the same iteration space with sequential-K
	// accumulation, so region layout cannot change the result.
	resp, data = postJSON(t, ts.URL+"/execute", exec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded execute: %d %s", resp.StatusCode, data)
	}
	var er execResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.FaultedTasks != 0 {
		t.Fatalf("degraded execute surfaced %d faults", er.FaultedTasks)
	}
	if er.Checksum != ref.Checksum || !reflect.DeepEqual(er.Sample, ref.Sample) {
		t.Fatalf("degraded numerics diverged: checksum %v vs %v, sample %v vs %v",
			er.Checksum, ref.Checksum, er.Sample, ref.Sample)
	}
}

// TestChaosDegradedCycleRegression pins the degraded-mode execution cost:
// the same seed must reproduce the exact same device-cycle count, so any
// change to fault simulation, health classification, or the recovery ladder
// shows up as a diff here.
func TestChaosDegradedCycleRegression(t *testing.T) {
	run := func() (float64, int) {
		faults := sim.Faults{Seed: 21, PEDeathCycle: map[int]float64{2: 1}, StickyFaults: map[int]int{9: 3}}
		srv, ts := newTestServer(t, Config{Faults: &faults, RetryBase: 1, RetryMax: 2})
		t.Cleanup(srv.Close)
		resp, data := postJSON(t, ts.URL+"/model", modelRequest{Model: "distilbert", Seq: 32})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model: %d %s", resp.StatusCode, data)
		}
		var mr modelResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			t.Fatal(err)
		}
		return mr.SimCycles, mr.RecoveredStages
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("degraded-mode outcome drifted: cycles %v vs %v, recovered %d vs %d", c1, c2, r1, r2)
	}
	if r1 == 0 {
		t.Fatal("scenario exercised no recovery — regression pin is vacuous")
	}
	if c1 <= 0 {
		t.Fatalf("implausible cycle count %v", c1)
	}
	t.Logf("pinned degraded-mode cycles: %v (recovered stages: %d)", c1, r1)
}

// TestChaosSelfHealBeatsBlindRetry compares the same persistent-fault
// scenario with and without the recovery ladder: stage-local healing must
// finish the traffic in fewer device cycles than whole-graph blind retries,
// because it re-executes single stages instead of entire graphs.
func TestChaosSelfHealBeatsBlindRetry(t *testing.T) {
	run := func(disableHeal bool) (cycles float64, cleanResponses int) {
		faults := sim.Faults{Seed: 33, PEDeathCycle: map[int]float64{5: 1}}
		srv, ts := newTestServer(t, Config{
			Faults: &faults, DisableSelfHeal: disableHeal,
			RetryBase: 1, RetryMax: 2,
		})
		t.Cleanup(srv.Close)
		for i := 0; i < 2; i++ {
			resp, data := postJSON(t, ts.URL+"/model", modelRequest{Model: "distilbert", Seq: 32})
			if resp.StatusCode == http.StatusOK {
				var mr modelResponse
				if err := json.Unmarshal(data, &mr); err != nil {
					t.Fatal(err)
				}
				if mr.FaultedTasks == 0 {
					cleanResponses++
				}
			}
		}
		rt := srv.runtime.Load()
		return rt.Stats().Cycles, cleanResponses
	}

	healCycles, healClean := run(false)
	blindCycles, _ := run(true)
	if healClean != 2 {
		t.Fatalf("self-healing stack answered only %d/2 requests cleanly", healClean)
	}
	if healCycles >= blindCycles {
		t.Fatalf("self-healing spent %v device cycles, blind retry %v — replanning on H' should be cheaper",
			healCycles, blindCycles)
	}
	t.Logf("device cycles: self-heal %v vs blind retry %v (%.1fx)", healCycles, blindCycles, blindCycles/healCycles)
}
