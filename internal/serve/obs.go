package serve

import (
	"sort"
	"strconv"
	"time"

	"mikpoly/internal/obs"
)

// registerObs exports the server's counters, the compiler's cache/health
// stats, and the graph runtime's aggregates into the observability registry.
// Everything that already lives behind a mutex or atomic is bridged with
// scrape-time Collect callbacks reading live snapshots — no second set of
// books to keep consistent, and a rebound compiler (SetCompiler) is picked up
// automatically because the callbacks re-resolve through the atomic pointers.
func (s *Server) registerObs() {
	m := s.o.M()
	if m == nil {
		return
	}

	one := func(v float64) []obs.Sample { return []obs.Sample{{Value: v}} }

	m.Collect("mik_serve_requests_total", "Admitted plan/execute/model requests.", "counter",
		func() []obs.Sample { return one(float64(s.nRequests.Load())) })
	m.Collect("mik_serve_rejected_total", "Requests refused by admission control (429).", "counter",
		func() []obs.Sample { return one(float64(s.nRejected.Load())) })
	m.Collect("mik_serve_degraded_total", "Responses served via the fallback program.", "counter",
		func() []obs.Sample { return one(float64(s.nDegraded.Load())) })
	m.Collect("mik_serve_retries_total", "Fault-triggered re-plan attempts.", "counter",
		func() []obs.Sample { return one(float64(s.nRetries.Load())) })
	m.Collect("mik_serve_faulted_runs_total", "Simulated runs reporting at least one faulted task.", "counter",
		func() []obs.Sample { return one(float64(s.nFaults.Load())) })
	m.Collect("mik_serve_panics_total", "Handler panics recovered.", "counter",
		func() []obs.Sample { return one(float64(s.nPanics.Load())) })
	m.Collect("mik_serve_models_total", "Model graphs executed via /model.", "counter",
		func() []obs.Sample { return one(float64(s.nModels.Load())) })
	m.Collect("mik_serve_in_flight", "Requests currently admitted.", "gauge",
		func() []obs.Sample { return one(float64(len(s.sem))) })
	m.Collect("mik_serve_uptime_seconds", "Seconds since server construction.", "gauge",
		func() []obs.Sample { return one(time.Since(s.started).Seconds()) })

	m.Collect("mik_cache_entries", "Program cache size and capacity.", "gauge",
		func() []obs.Sample {
			c := s.comp()
			if c == nil {
				return nil
			}
			cs := c.CacheStats()
			return []obs.Sample{
				{Labels: [][2]string{{"state", "used"}}, Value: float64(cs.Size)},
				{Labels: [][2]string{{"state", "capacity"}}, Value: float64(cs.Capacity)},
			}
		})
	m.Collect("mik_cache_ops_total", "Program cache hits, misses, and evictions.", "counter",
		func() []obs.Sample {
			c := s.comp()
			if c == nil {
				return nil
			}
			cs := c.CacheStats()
			return []obs.Sample{
				{Labels: [][2]string{{"op", "hit"}}, Value: float64(cs.Hits)},
				{Labels: [][2]string{{"op", "miss"}}, Value: float64(cs.Misses)},
				{Labels: [][2]string{{"op", "eviction"}}, Value: float64(cs.Evictions)},
			}
		})

	m.Collect("mik_graph_executions_total", "Graphs executed by the graph runtime.", "counter",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			return one(float64(rt.Stats().Graphs))
		})
	m.Collect("mik_graph_plan_wall_seconds", "Plan-ahead wall-time split: total planning, executor stalls, and the portion hidden behind execution.", "counter",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			gs := rt.Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"kind", "plan"}}, Value: gs.PlanWall.Seconds()},
				{Labels: [][2]string{{"kind", "stall"}}, Value: gs.StallWall.Seconds()},
				{Labels: [][2]string{{"kind", "hidden"}}, Value: gs.HiddenWall.Seconds()},
			}
		})
	m.Collect("mik_graph_device_cycles_total", "Cumulative simulated device cycles across graph executions.", "counter",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			return one(rt.Stats().Cycles)
		})
	m.Collect("mik_graph_spill_bytes_total", "Memory-planner spill traffic across graph executions.", "counter",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			return one(rt.Stats().SpillBytes)
		})
	m.Collect("mik_fusion_chains_total", "Whole-graph polymerization decisions: chains executed fused vs kept unfused by the cost model.", "counter",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			gs := rt.Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"decision", "fused"}}, Value: float64(gs.FusedChains)},
				{Labels: [][2]string{{"decision", "rejected"}}, Value: float64(gs.FusionRejected)},
			}
		})
	m.Collect("mik_fusion_saved_bytes_total", "Modeled inter-stage global-memory traffic avoided by fused chain executions.", "counter",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			return one(rt.Stats().FusedSavedBytes)
		})
	m.Collect("mik_pe_utilization", "Per-PE busy fraction of cumulative co-scheduled stage time.", "gauge",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			u := rt.Stats().PEUtilization()
			samples := make([]obs.Sample, len(u))
			for i, v := range u {
				samples[i] = obs.Sample{Labels: [][2]string{{"pe", strconv.Itoa(i)}}, Value: v}
			}
			return samples
		})
	m.Collect("mik_wave_imbalance", "Relative spread (max-min)/max of cumulative per-PE busy cycles.", "gauge",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			return one(rt.Stats().WaveImbalance())
		})

	m.Collect("mik_health_quarantined_pes", "PEs currently quarantined by the health registry.", "gauge",
		func() []obs.Sample {
			reg := s.health.Load()
			if reg == nil {
				return nil
			}
			return one(float64(reg.Stats().Quarantined))
		})
	m.Collect("mik_health_bandwidth_factor", "Adopted global-bandwidth derate factor (1 = pristine).", "gauge",
		func() []obs.Sample {
			reg := s.health.Load()
			if reg == nil {
				return nil
			}
			return one(reg.View().BandwidthFactor)
		})
	m.Collect("mik_health_generation", "Health-view generation (0 = pristine, bumps on every view change).", "counter",
		func() []obs.Sample {
			reg := s.health.Load()
			if reg == nil {
				return nil
			}
			return one(float64(reg.Stats().Generation))
		})
	m.Collect("mik_health_observations_total", "Stage outcomes fed to the health registry, by classification.", "counter",
		func() []obs.Sample {
			reg := s.health.Load()
			if reg == nil {
				return nil
			}
			hs := reg.Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"class", "transient"}}, Value: float64(hs.Transients)},
				{Labels: [][2]string{{"class", "persistent"}}, Value: float64(hs.Persistents)},
				{Labels: [][2]string{{"class", "clean"}}, Value: float64(hs.Observations - hs.Transients - hs.Persistents)},
			}
		})
	m.Collect("mik_recovery_stages_total", "Stage-recovery ladder outcomes by rung.", "counter",
		func() []obs.Sample {
			rt := s.runtime.Load()
			if rt == nil {
				return nil
			}
			gs := rt.Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"outcome", "retried"}}, Value: float64(gs.RetriedStages)},
				{Labels: [][2]string{{"outcome", "migrated"}}, Value: float64(gs.MigratedStages)},
				{Labels: [][2]string{{"outcome", "replanned"}}, Value: float64(gs.ReplannedStages)},
				{Labels: [][2]string{{"outcome", "unrecoverable"}}, Value: float64(gs.UnrecoverableStages)},
			}
		})
	m.Collect("mik_health_replans_total", "Background replans triggered by health-view changes and plans executed against a degraded view.", "counter",
		func() []obs.Sample {
			c := s.comp()
			if c == nil {
				return nil
			}
			ch := c.Health()
			return []obs.Sample{
				{Labels: [][2]string{{"kind", "background"}}, Value: float64(ch.Replans)},
				{Labels: [][2]string{{"kind", "degraded"}}, Value: float64(ch.DegradedPlans)},
			}
		})
	m.Collect("mik_breaker_events_total", "Circuit-breaker open transitions and requests shed while open.", "counter",
		func() []obs.Sample {
			return []obs.Sample{
				{Labels: [][2]string{{"event", "trip"}}, Value: float64(s.nBreakerTrips.Load())},
				{Labels: [][2]string{{"event", "drop"}}, Value: float64(s.nBreakerDrops.Load())},
			}
		})
	m.Collect("mik_serve_breaker_state", "Per-model circuit-breaker state (0=closed 1=open 2=half-open).", "gauge",
		func() []obs.Sample {
			states := s.breakers.states()
			names := make([]string, 0, len(states))
			for name := range states {
				names = append(names, name)
			}
			sort.Strings(names)
			samples := make([]obs.Sample, len(names))
			for i, name := range names {
				samples[i] = obs.Sample{
					Labels: [][2]string{{"model", name}},
					Value:  float64(states[name]),
				}
			}
			return samples
		})

	m.Collect("mik_kv_pages", "Paged KV arena occupancy by page state.", "gauge",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			ks := l.Scheduler().KV().Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"state", "active"}}, Value: float64(ks.ActivePages)},
				{Labels: [][2]string{{"state", "cached"}}, Value: float64(ks.CachedPages)},
				{Labels: [][2]string{{"state", "free"}}, Value: float64(ks.FreePages)},
			}
		})
	m.Collect("mik_kv_prefix_hit_tokens_total", "Prompt tokens served from shared KV pages instead of recomputed.", "counter",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			return one(float64(l.Scheduler().KV().Stats().PrefixHitTokens))
		})
	m.Collect("mik_kv_cow_copies_total", "Copy-on-write page copies on shared-page divergence.", "counter",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			return one(float64(l.Scheduler().KV().Stats().COWCopies))
		})
	m.Collect("mik_kv_evictions_total", "Cached (refs==0) KV pages reclaimed under arena pressure.", "counter",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			return one(float64(l.Scheduler().KV().Stats().Evictions))
		})
	m.Collect("mik_kv_bytes_total", "Exact sharing economics: KV bytes saved by prefix reuse vs recomputed after eviction.", "counter",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			ks := l.Scheduler().KV().Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"kind", "saved"}}, Value: float64(ks.SavedBytes)},
				{Labels: [][2]string{{"kind", "recomputed"}}, Value: float64(ks.RecomputedBytes)},
			}
		})
	m.Collect("mik_sched_requests_total", "Generation-scheduler request outcomes.", "counter",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			ss := l.Scheduler().Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"outcome", "admitted"}}, Value: float64(ss.Admitted)},
				{Labels: [][2]string{{"outcome", "completed"}}, Value: float64(ss.Completed)},
				{Labels: [][2]string{{"outcome", "failed"}}, Value: float64(ss.Failed)},
				{Labels: [][2]string{{"outcome", "slo_good"}}, Value: float64(ss.SLOGood)},
				{Labels: [][2]string{{"outcome", "token_rejected"}}, Value: float64(s.nTokenRejected.Load())},
			}
		})
	m.Collect("mik_sched_inflight_tokens", "Token-budget admission occupancy (prompt + generation tokens in flight).", "gauge",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			ss := l.Scheduler().Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"state", "used"}}, Value: float64(ss.InFlightTokens)},
				{Labels: [][2]string{{"state", "budget"}}, Value: float64(ss.BudgetTokens)},
			}
		})
	m.Collect("mik_sched_tokens_total", "Scheduler token flow: prefill executed, prefix-reused, decode steps.", "counter",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			ss := l.Scheduler().Stats()
			return []obs.Sample{
				{Labels: [][2]string{{"kind", "prefill"}}, Value: float64(ss.PrefillTokens)},
				{Labels: [][2]string{{"kind", "reused"}}, Value: float64(ss.ReusedTokens)},
				{Labels: [][2]string{{"kind", "decode"}}, Value: float64(ss.DecodeSteps)},
				{Labels: [][2]string{{"kind", "padded"}}, Value: float64(ss.PaddedKVTokens)},
			}
		})
	m.Collect("mik_sched_step_latency_ms", "Decode-step latency quantiles on the virtual device clock.", "gauge",
		func() []obs.Sample {
			l := s.sched.Load()
			if l == nil {
				return nil
			}
			sc := l.Scheduler()
			return []obs.Sample{
				{Labels: [][2]string{{"q", "p50"}}, Value: sc.StepQuantileMs(0.50)},
				{Labels: [][2]string{{"q", "p99"}}, Value: sc.StepQuantileMs(0.99)},
			}
		})

	s.registerFleetObs()
	s.registerPlanCacheObs()
	s.registerOverloadObs()
}
