package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestModelEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/model", modelRequest{Model: "distilbert", Seq: 32})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var mr modelResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Graph == "" || mr.Ops == 0 || mr.Stages == 0 {
		t.Fatalf("implausible model response: %+v", mr)
	}
	if mr.SimCycles <= 0 {
		t.Fatalf("no device time reported: %+v", mr)
	}
	if mr.Attempts != 1 || mr.FaultedTasks != 0 || mr.Degraded != 0 {
		t.Fatalf("healthy run reported retries/faults/degradation: %+v", mr)
	}
	if mr.PlanMs > mr.StallMs+mr.HiddenMs+1e-6 {
		t.Fatalf("plan accounting broken: plan=%g stall=%g hidden=%g", mr.PlanMs, mr.StallMs, mr.HiddenMs)
	}
	if mr.PeakMemBytes <= 0 || mr.WorkingSetBytes <= 0 {
		t.Fatalf("memory plan missing: %+v", mr)
	}
}

func TestModelEndpointBatchedDecode(t *testing.T) {
	srv, ts := newTestServer(t, Config{DecodeBatch: true})
	t.Cleanup(srv.Close)
	resp, data := postJSON(t, ts.URL+"/model", modelRequest{Model: "llama2-decode", KVLen: 100, Steps: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var mr modelResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Batched || mr.Tokens != 2 {
		t.Fatalf("batched decode response: %+v", mr)
	}
	if mr.SimCycles <= 0 {
		t.Fatalf("no device time reported: %+v", mr)
	}

	// /stats reflects the batcher.
	sresp, sdata := get(t, ts.URL+"/stats")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", sresp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(sdata, &st); err != nil {
		t.Fatal(err)
	}
	if st.Batch == nil || st.Batch.Completed != 1 || st.Batch.StepGraphs < 2 {
		t.Fatalf("batch stats %+v, want 1 completed request over >= 2 steps", st.Batch)
	}
	if st.Graph == nil || st.Graph.Graphs < 2 {
		t.Fatalf("graph runtime stats %+v, want >= 2 executed step graphs", st.Graph)
	}
	if st.Models != 1 {
		t.Fatalf("models counter %d, want 1", st.Models)
	}
}

func TestModelEndpointRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxModelSteps: 4, MaxModelOps: 50})
	cases := []struct {
		name   string
		req    modelRequest
		status int
	}{
		{"unknown model", modelRequest{Model: "gpt-17"}, http.StatusBadRequest},
		{"negative seq", modelRequest{Model: "bert-base", Seq: -1}, http.StatusBadRequest},
		{"tiny resolution", modelRequest{Model: "resnet18", Resolution: 4}, http.StatusBadRequest},
		{"too many steps", modelRequest{Model: "llama2-decode", Steps: 5}, http.StatusRequestEntityTooLarge},
		{"too many ops", modelRequest{Model: "bert-base"}, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, data := postJSON(t, ts.URL+"/model", c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, data)
		}
	}
}

// TestReadinessGate is the late-binding acceptance scenario: a server built
// without a compiler answers 503 on /healthz and every work endpoint, then
// flips ready when SetCompiler binds the tuned library.
func TestReadinessGate(t *testing.T) {
	srv := New(nil, Config{DecodeBatch: true})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz before ready: %d, want 503", resp.StatusCode)
	}
	for _, ep := range []string{"/plan", "/execute", "/model"} {
		resp, _ := postJSON(t, ts.URL+ep, map[string]any{})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s before ready: %d, want 503", ep, resp.StatusCode)
		}
	}
	// /stats stays reachable while not ready and says so.
	sresp, sdata := get(t, ts.URL+"/stats")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stats before ready: %d", sresp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(sdata, &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready {
		t.Fatal("stats claims ready before SetCompiler")
	}

	srv.SetCompiler(testCompiler(t))

	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after ready: %d, want 200", resp.StatusCode)
	}
	resp, data := postJSON(t, ts.URL+"/model", modelRequest{Model: "llama2-decode", KVLen: 64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model after ready: %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/plan", planRequest{M: 128, N: 64, K: 128})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan after ready: %d: %s", resp.StatusCode, data)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, buf
}
