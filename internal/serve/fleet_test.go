package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/fleet"
	"mikpoly/internal/hw"
	"mikpoly/internal/obs"
	"mikpoly/internal/sim"
	"mikpoly/internal/tune"
)

// newFleetServer builds a server backed by a mixed-class fleet (2×A100 +
// 1×NPU) with per-device fault schedules, fast hedging, and manual probing.
func newFleetServer(t *testing.T, cfg Config, faults []sim.DeviceFaults) (*Server, *httptest.Server, *fleet.Dispatcher) {
	t.Helper()
	opts := tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256}
	classes := []hw.Hardware{hw.A100(), hw.A100(), hw.Ascend910()}
	names := []string{"a100-0", "a100-1", "npu-0"}
	devices := make([]*fleet.Device, len(classes))
	for i, h := range classes {
		lib, err := core.SharedLibrary(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		dcfg := fleet.DeviceConfig{Name: names[i]}
		if i < len(faults) {
			dcfg.DevFaults = faults[i]
		}
		devices[i] = fleet.NewDevice(lib, dcfg)
	}
	f := fleet.NewDispatcher(devices, fleet.Config{
		MaxAttempts:      6,
		HedgeAfter:       5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Millisecond,
	})
	f.Start()
	srv := New(testCompiler(t), cfg)
	srv.SetFleet(f)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, f
}

func TestGemmEndpointRoutesAcrossFleet(t *testing.T) {
	_, ts, _ := newFleetServer(t, Config{}, nil)

	// The fleet-backed /gemm and the single-device /execute must agree
	// bitwise: routing must never change numerics.
	req := execRequest{M: 96, N: 96, K: 64, SeedA: 11, SeedB: 22}
	resp, data := postJSON(t, ts.URL+"/execute", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status %d: %s", resp.StatusCode, data)
	}
	var ref execResponse
	if err := json.Unmarshal(data, &ref); err != nil {
		t.Fatal(err)
	}

	served := map[string]int{}
	for i := 0; i < 9; i++ {
		resp, data := postJSON(t, ts.URL+"/gemm", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gemm %d status %d: %s", i, resp.StatusCode, data)
		}
		var er execResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatal(err)
		}
		if er.Device == "" {
			t.Fatalf("gemm response %d missing device: %s", i, data)
		}
		if er.Checksum != ref.Checksum {
			t.Fatalf("gemm checksum %g != execute checksum %g (device %s)", er.Checksum, ref.Checksum, er.Device)
		}
		served[er.Device]++
	}
	if len(served) < 2 {
		t.Fatalf("9 sequential requests all landed on one replica: %v", served)
	}
}

func TestGemmWithoutFleetIs503(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/gemm", execRequest{M: 64, N: 64, K: 64})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gemm without fleet: status %d, want 503: %s", resp.StatusCode, data)
	}
}

func TestGemmEndpointValidatesShapes(t *testing.T) {
	_, ts, _ := newFleetServer(t, Config{}, nil)
	cases := []struct {
		body   string
		status int
	}{
		{`{"m":-4,"n":8,"k":8}`, http.StatusBadRequest},
		{`{"m":4,`, http.StatusBadRequest},
		{`{"m":1073741824,"n":8,"k":8}`, http.StatusRequestEntityTooLarge},
		{`{"m":1048576,"n":1048576,"k":8}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/gemm", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.status)
		}
	}
}

func TestModelEndpointRoutesAcrossFleet(t *testing.T) {
	// DecodeBatch on: the fleet path must still win over the batcher for
	// llama2-decode, because batching is a single-runtime loop.
	_, ts, _ := newFleetServer(t, Config{DecodeBatch: true}, nil)
	resp, data := postJSON(t, ts.URL+"/model", modelRequest{Model: "llama2-decode", KVLen: 64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model status %d: %s", resp.StatusCode, data)
	}
	var mr modelResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Device == "" {
		t.Fatalf("fleet-routed model response missing device: %s", data)
	}
	if mr.Batched {
		t.Fatal("fleet-routed model response claims the batcher path")
	}
	if mr.SimCycles <= 0 || mr.Ops <= 0 {
		t.Fatalf("implausible model response: %+v", mr)
	}
}

func TestGemmEndpointFailsOverCrashedDevice(t *testing.T) {
	// Device 0 dies on its first op; every request must still succeed.
	_, ts, f := newFleetServer(t, Config{}, []sim.DeviceFaults{{CrashAtOp: 1}})
	req := execRequest{M: 96, N: 96, K: 64}
	for i := 0; i < 8; i++ {
		resp, data := postJSON(t, ts.URL+"/gemm", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gemm %d status %d: %s", i, resp.StatusCode, data)
		}
	}
	if d := f.Device("a100-0"); d.State() != fleet.StateDead {
		t.Fatalf("crash victim state = %s, want dead", d.State())
	}

	// /healthz reports the fleet: status degraded, summaries attached.
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, body)
	}
	var hr healthResponse
	if err := json.Unmarshal([]byte(body), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" {
		t.Fatalf("healthz status %q with a dead replica, want degraded", hr.Status)
	}
	if len(hr.Devices) != 3 {
		t.Fatalf("healthz reported %d devices, want 3: %s", len(hr.Devices), body)
	}
}

func TestFleetSummaryAndDrainEndpoints(t *testing.T) {
	_, ts, f := newFleetServer(t, Config{}, nil)

	resp, body := getBody(t, ts.URL+"/fleet")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet status %d: %s", resp.StatusCode, body)
	}
	var fr fleetResponse
	if err := json.Unmarshal([]byte(body), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Devices) != 3 {
		t.Fatalf("fleet summary has %d devices, want 3", len(fr.Devices))
	}

	drain := func(query string) *http.Response {
		resp, err := http.Post(ts.URL+"/fleet/drain"+query, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := drain(""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("drain without device: status %d, want 400", resp.StatusCode)
	}
	if resp := drain("?device=nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown device: status %d, want 404", resp.StatusCode)
	}
	if resp := drain("?device=a100-1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain a100-1: status %d, want 200", resp.StatusCode)
	}
	if resp := drain("?device=a100-1"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double drain: status %d, want 409", resp.StatusCode)
	}
	if d := f.Device("a100-1"); d.State() != fleet.StateDead {
		t.Fatalf("drained idle device state = %s, want dead", d.State())
	}

	// The drained replica takes no further traffic.
	for i := 0; i < 6; i++ {
		resp, data := postJSON(t, ts.URL+"/gemm", execRequest{M: 96, N: 96, K: 64})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gemm after drain: status %d: %s", resp.StatusCode, data)
		}
		var er execResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Fatal(err)
		}
		if er.Device == "a100-1" {
			t.Fatal("drained device served a request")
		}
	}
}

func TestFleetEndpointsWithoutFleetAre404(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, body := getBody(t, ts.URL+"/fleet"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /fleet without fleet: status %d, want 404: %s", resp.StatusCode, body)
	}
	resp, err := http.Post(ts.URL+"/fleet/drain?device=x", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /fleet/drain without fleet: status %d, want 404", resp.StatusCode)
	}
}

func TestFleetMetricsExported(t *testing.T) {
	o := obs.New(obs.DefaultTraceCapacity)
	_, ts, _ := newFleetServer(t, Config{Obs: o}, []sim.DeviceFaults{{CrashAtOp: 1}})

	for i := 0; i < 6; i++ {
		if resp, data := postJSON(t, ts.URL+"/gemm", execRequest{M: 96, N: 96, K: 64}); resp.StatusCode != http.StatusOK {
			t.Fatalf("gemm status %d: %s", resp.StatusCode, data)
		}
	}

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		`mik_fleet_device_state{device="a100-0",class="nvidia-a100"} 4`, // crashed → dead
		`mik_fleet_device_state{device="a100-1",class="nvidia-a100"} 1`,
		"mik_fleet_requests_total 6",
		`mik_fleet_events_total{event="failover"}`,
		"mik_fleet_served_total",
		"mik_fleet_device_weight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBreakerStateMetric pins the per-model breaker gauge: 0 while closed,
// 1 once tripped open, back to 0 after a successful close.
func TestBreakerStateMetric(t *testing.T) {
	o := obs.New(obs.DefaultTraceCapacity)
	srv, ts := newObsServer(t, o, Config{BreakerThreshold: 2})

	if resp, data := postJSON(t, ts+"/model", modelRequest{Model: "distilbert", Seq: 32}); resp.StatusCode != http.StatusOK {
		t.Fatalf("model status %d: %s", resp.StatusCode, data)
	}
	if _, body := getBody(t, ts+"/metrics"); !strings.Contains(body, `mik_serve_breaker_state{model="distilbert"} 0`) {
		t.Fatalf("metrics missing closed breaker gauge for distilbert:\n%s", grepLines(body, "mik_serve_breaker_state"))
	}

	// Trip the breaker directly (the scrape path is what's under test).
	srv.breakers.record("distilbert", false)
	srv.breakers.record("distilbert", false)
	if _, body := getBody(t, ts+"/metrics"); !strings.Contains(body, `mik_serve_breaker_state{model="distilbert"} 1`) {
		t.Fatalf("metrics missing open breaker gauge for distilbert:\n%s", grepLines(body, "mik_serve_breaker_state"))
	}

	srv.breakers.record("distilbert", true)
	if _, body := getBody(t, ts+"/metrics"); !strings.Contains(body, `mik_serve_breaker_state{model="distilbert"} 0`) {
		t.Fatalf("breaker gauge did not return to 0 after re-close:\n%s", grepLines(body, "mik_serve_breaker_state"))
	}
}

func grepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
