package serve

import (
	"context"
	"log"
	"net/http"
)

// recoverMW converts a panicking handler into a 500 instead of killing the
// process — the outermost layer of the stack.
func (s *Server) recoverMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.nPanics.Add(1)
				log.Printf("serve: recovered panic in %s %s: %v", r.Method, r.URL.Path, rec)
				httpError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// admitMW bounds in-flight work requests. Overload is answered immediately
// with 429 + Retry-After rather than queueing: under heavy traffic a bounded
// queue only converts overload into latency.
func (s *Server) admitMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			s.nRequests.Add(1)
			next.ServeHTTP(w, r)
		default:
			s.nRejected.Add(1)
			w.Header().Set("Retry-After", s.retryAfterHint())
			httpError(w, http.StatusTooManyRequests, "server at capacity")
		}
	})
}

// timeoutMW bounds one request end to end via its context.
func (s *Server) timeoutMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// limitBodyMW caps the request body; oversized bodies surface as
// *http.MaxBytesError from Decode and are answered with 413.
func (s *Server) limitBodyMW(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		next.ServeHTTP(w, r)
	})
}
