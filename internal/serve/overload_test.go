package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mikpoly/internal/obs"
	"mikpoly/internal/sched"
)

// TestBrownoutLadderHysteresis drives the pure automaton through a load
// spike and decay, pinning the asymmetry: ascent is immediate (including
// multi-rung jumps), descent requires the signal to sit below the exit
// threshold for brownoutDwell consecutive ticks, and a signal oscillating
// inside the hysteresis band holds the stage instead of flapping.
func TestBrownoutLadderHysteresis(t *testing.T) {
	stage, dwell := 0, 0
	step := func(signal float64) int {
		stage, dwell = nextBrownoutStage(stage, dwell, signal)
		return stage
	}

	if got := step(0.50); got != 0 {
		t.Fatalf("calm signal entered stage %d", got)
	}
	if got := step(0.72); got != 1 {
		t.Fatalf("0.72 → stage %d, want 1", got)
	}
	if got := step(0.99); got != 4 {
		t.Fatalf("spike must jump straight to 4, got %d", got)
	}

	// Oscillating inside the band [enter-gap, enter) neither climbs nor
	// descends — and each touch of the band resets the dwell clock.
	for i := 0; i < 3*brownoutDwell; i++ {
		sig := 0.90 // band for stage 4: [0.87, 0.97)
		if i%2 == 1 {
			sig = 0.88
		}
		if got := step(sig); got != 4 {
			t.Fatalf("tick %d: stage %d, want 4 (no flapping in the band)", i, got)
		}
	}

	// A calm signal must dwell before each single-rung descent.
	for want := 3; want >= 0; want-- {
		for i := 0; i < brownoutDwell-1; i++ {
			if got := step(0.10); got != want+1 {
				t.Fatalf("descended to %d after only %d calm ticks", got, i+1)
			}
		}
		if got := step(0.10); got != want {
			t.Fatalf("stage %d after full dwell, want %d", got, want)
		}
	}
	if got := step(0.10); got != 0 {
		t.Fatalf("stage %d below the ladder, want 0", got)
	}
}

// TestBrownoutStageActions applies ladder stages directly and checks each
// rung's effect end to end: tracing off, prefill chunk cap on the live
// scheduler, stage-4 shedding of the lowest priority class at the HTTP edge
// (with Retry-After), urgent traffic still served, and a clean unwind.
func TestBrownoutStageActions(t *testing.T) {
	o := obs.New(obs.DefaultTraceCapacity)
	srv, ts := newObsServer(t, o, Config{SchedDecode: true})
	srv.tracerWasOn = o.T().Enabled()
	if !srv.tracerWasOn {
		t.Fatal("test premise: tracer starts enabled")
	}

	srv.setBrownoutStage(4)
	if o.T().Enabled() {
		t.Error("stage 4 left tracing enabled")
	}
	if srv.OverloadStage() != 4 {
		t.Fatalf("OverloadStage() = %d, want 4", srv.OverloadStage())
	}

	// Lowest class shed with 503 + Retry-After; urgent class still served.
	resp, data := postTenant(t, ts+"/generate", "acme",
		generateRequest{PromptLen: 32, Steps: 1, Priority: sched.NumPriorities - 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("low-class status %d under stage 4, want 503: %s", resp.StatusCode, data)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("brownout 503 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if got := srv.nBrownoutSheds.Load(); got != 1 {
		t.Fatalf("brownout shed counter %d, want 1", got)
	}
	resp, data = postTenant(t, ts+"/generate", "acme", generateRequest{PromptLen: 32, Steps: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("urgent status %d under stage 4, want 200: %s", resp.StatusCode, data)
	}

	// The live scheduler's prefill budget is capped at stage >= 2.
	sc := srv.sched.Load().Scheduler()
	want := sc.Config().PrefillChunk / 4
	if got := sc.Stats().ChunkTokens; got > want && want > 0 {
		t.Errorf("prefill budget %d exceeds the stage-2 cap %d", got, want)
	}

	// /stats surfaces the stage and the shed books.
	resp, body := getBody(t, ts+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats statsResponse
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Overload == nil || stats.Overload.Stage != 4 || stats.Overload.BrownoutSheds != 1 {
		t.Fatalf("stats overload section = %+v, want stage 4 with 1 brownout shed", stats.Overload)
	}

	// Unwinding to stage 0 restores tracing and lifts the chunk cap.
	srv.setBrownoutStage(0)
	if !o.T().Enabled() {
		t.Error("stage 0 did not re-enable tracing")
	}
	resp, data = postTenant(t, ts+"/generate", "acme",
		generateRequest{PromptLen: 32, Steps: 1, Priority: sched.NumPriorities - 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("low-class status %d after unwind, want 200: %s", resp.StatusCode, data)
	}

	// The overload metrics are exported.
	resp, body = getBody(t, ts+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, wantM := range []string{
		"mik_overload_stage",
		`mik_overload_sheds_total{reason="brownout"} 1`,
		`mik_overload_sheds_total{reason="deadline"}`,
		`mik_overload_preemptions_total{kind="preempt"}`,
		"mik_overload_adaptive_limit_tokens",
	} {
		if !strings.Contains(body, wantM) {
			t.Errorf("metrics output missing %q", wantM)
		}
	}
}

// TestAdmitRetryAfterBacklog is the satellite regression: admitMW's 429 must
// carry the same backlog-derived Retry-After as the token-budget path rather
// than a hardcoded "1". With no scheduler bound, the hint degrades to the
// 1-second floor; either way the header parses as a bounded integer.
func TestAdmitRetryAfterBacklog(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 1, SchedDecode: true})

	if got := srv.retryAfterHint(); got == "" {
		t.Fatal("retryAfterHint empty with a scheduler bound")
	}

	// Occupy the only admission slot, then hit the wall.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	resp, _ := postJSON(t, ts.URL+"/plan", planRequest{M: 64, N: 64, K: 64})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with the semaphore full, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < retryAfterMin || ra > retryAfterMax {
		t.Fatalf("admitMW Retry-After = %q, want an integer in [%d, %d]",
			resp.Header.Get("Retry-After"), retryAfterMin, retryAfterMax)
	}

	// Schedless server: the hint is the floor, not an empty header.
	srv2, _ := newTestServer(t, Config{})
	if got := srv2.retryAfterHint(); got != strconv.Itoa(retryAfterMin) {
		t.Fatalf("schedless retryAfterHint = %q, want %q", got, strconv.Itoa(retryAfterMin))
	}
}

// TestGenerateDeadline504 exercises deadline propagation end to end: a
// queued request with a microscopic deadline budget behind a request that
// fills the token budget must come back 504, shed before it ever touched the
// device, while the occupying request completes normally.
func TestGenerateDeadline504(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		SchedDecode:         true,
		ShedDeadlines:       true,
		SchedInFlightTokens: 600,
	})

	// Fill the budget with a long-running request so the victim queues.
	var wg sync.WaitGroup
	wg.Add(1)
	var firstStatus int
	go func() {
		defer wg.Done()
		resp, _ := postTenant(t, ts.URL+"/generate", "acme",
			generateRequest{PromptLen: 512, Steps: 32})
		firstStatus = resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the occupier be admitted

	resp, data := postTenant(t, ts.URL+"/generate", "acme",
		generateRequest{PromptLen: 512, Steps: 1, DeadlineMs: 0.0001})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stale queued request status %d, want 504: %s", resp.StatusCode, data)
	}
	wg.Wait()
	if firstStatus != http.StatusOK {
		t.Fatalf("occupying request status %d, want 200", firstStatus)
	}
	if got := srv.nDeadlineSheds.Load(); got != 1 {
		t.Fatalf("deadline shed counter %d, want 1", got)
	}
	if st := srv.sched.Load().Scheduler().Stats(); st.DeadlineSheds != 1 {
		t.Fatalf("scheduler deadline_sheds %d, want 1", st.DeadlineSheds)
	}
}

// TestGenerateDeadlineValidation: a negative deadline is a client error.
func TestGenerateDeadlineValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{SchedDecode: true})
	resp, _ := postTenant(t, ts.URL+"/generate", "acme",
		generateRequest{PromptLen: 32, Steps: 1, DeadlineMs: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline status %d, want 400", resp.StatusCode)
	}
}

// TestBrownoutControllerLifecycle: a Brownout server starts calm, survives
// traffic, and Close joins the controller goroutine (run under -race).
func TestBrownoutControllerLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, Config{SchedDecode: true, Brownout: true,
		AdaptiveAdmission: true, KVPreempt: true})
	resp, data := postTenant(t, ts.URL+"/generate", "acme", generateRequest{PromptLen: 64, Steps: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	time.Sleep(2 * brownoutInterval) // let the controller tick against live state
	if got := srv.OverloadStage(); got != 0 {
		t.Fatalf("idle server climbed to stage %d", got)
	}
	srv.Close()
}
