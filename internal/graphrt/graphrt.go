// Package graphrt is the graph runtime: it executes whole model graphs
// (nn.Graph) end to end on the simulator substrate, the missing layer
// between per-operator planning (core.Compiler) and the end-to-end results
// of §5.2.2–§5.2.4. It contributes four things the per-operator path lacks:
//
//   - a dependency-aware schedule: ops run in topological stages derived
//     from the graph's edges; ops sharing a stage (and the Count instances
//     of per-head GEMMs) co-schedule on the device in one simulator launch;
//
//   - an asynchronous plan-ahead pipeline: a bounded worker pool plans
//     upcoming ops through the compiler's LRU/singleflight cache while the
//     executor runs the current stage, hiding the online polymerization
//     cost behind execution — the "on-the-fly" story at model granularity.
//     Per-graph stats separate hidden planning time from planning stalls
//     (wall time the executor waited on an unfinished plan);
//
//   - a global-memory planner: liveness-based first-fit assignment of
//     inter-op tensors against H.M_global, reusing freed regions and
//     charging spill traffic as bandwidth-bound cycles when the working
//     set exceeds device memory (see mem.go);
//
//   - continuous decode batching: concurrent Llama decode requests with
//     differing KV lengths aggregate into shape-bucketed step graphs, with
//     join/leave between steps (see batch.go).
package graphrt

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/obs"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// Config tunes a Runtime. The zero value is the sequential executor: plans
// are produced inline, on the critical path, exactly when needed.
type Config struct {
	// PlanAhead is the number of ops the planning pipeline may run ahead
	// of the executor; 0 disables the pipeline (inline planning).
	PlanAhead int

	// Workers bounds the concurrent planner goroutines of the pipeline
	// (default min(PlanAhead, 4)).
	Workers int

	// PlanTimeout bounds one op's online planning; exceeding it degrades
	// to the always-legal fallback program (0 = no deadline, negative =
	// already expired, the forced-degradation knob of the serve layer).
	PlanTimeout time.Duration

	// Obs optionally attaches tracing to graph execution; nil (the
	// default) runs unobserved at zero cost.
	Obs *obs.Obs

	// Health, when non-nil, turns on stage-level self-healing: every
	// stage executes against the registry's current degraded view, stage
	// outcomes feed the registry, and a dirty stage walks the escalation
	// ladder (retry-in-place -> migrate to H' -> replan on H' -> typed
	// StageError) instead of surfacing faults to the caller.
	Health *health.Registry

	// MaxStageAttempts bounds total executions of one stage, the initial
	// run included (default 4: one rung of the ladder each).
	MaxStageAttempts int

	// Fuse turns on whole-graph polymerization: fusible GEMM→epilogue→GEMM
	// chains (graphopt.DetectChains) execute as single fused multi-region
	// programs when the cost model prefers them, keeping inter-stage
	// intermediates out of global memory. Off by default: fusion changes
	// which programs a graph executes.
	Fuse bool
}

// Runtime executes model graphs against one compiler and its hardware.
// It is safe for concurrent use; cumulative stats aggregate across calls.
type Runtime struct {
	comp *core.Compiler
	h    hw.Hardware
	cfg  Config
	o    *obs.Obs

	// planFn is the per-op planning entry; a seam tests use to inject
	// slow planners. Defaults to PlanOrFallback under cfg.PlanTimeout.
	planFn func(ctx context.Context, shape tensor.GemmShape) (*poly.Program, bool, error)

	// simFn executes one stage's task batch; a seam the serve layer uses
	// for fault injection and tests use for slow devices. v is the health
	// view the stage runs under, so injected fault schedules can be
	// remapped onto the shrunken survivor numbering. Defaults to sim.Run
	// (salt and view ignored).
	simFn func(h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result

	mu         sync.Mutex
	agg        Stats
	simCache   map[string]simEntry
	chainCache map[string]chainEntry
}

// simEntry caches one stage's simulated execution within a salt generation.
// The full Result is retained: memoized replays still accumulate per-PE
// utilization, and the recovery ladder needs the fault breakdown (faulted,
// stranded, dead PEs) when a cached dirty stage replays.
type simEntry struct {
	salt uint64
	res  sim.Result
}

// Stats are the runtime's cumulative counters, aggregated across Execute
// calls (exported via /stats in the serving layer).
type Stats struct {
	// Graphs and Stages count completed executions and executed stages.
	Graphs, Stages int64
	// Plans counts planning-pipeline results consumed (including cache
	// hits inside the compiler); Stalls counts the subset the executor
	// had to wait for.
	Plans, Stalls int64
	// PlanWall is total planning wall time; StallWall the part the
	// executor spent blocked on unfinished plans; HiddenWall the part
	// overlapped with execution (per-op max(0, wall−stall), so
	// PlanWall ≤ StallWall + HiddenWall always holds).
	PlanWall, StallWall, HiddenWall time.Duration
	// Degraded counts ops answered with the fallback program.
	Degraded int64
	// FaultedTasks accumulates simulator-reported faulted tasks that the
	// runtime could not absorb (no recovery, or recovery exhausted).
	FaultedTasks int64
	// Stage-recovery ladder counters: stages that recovered via an
	// in-place retry, by migrating onto the degraded view, or by
	// replanning their ops against it — and stages that exhausted the
	// ladder.
	RetriedStages, MigratedStages, ReplannedStages, UnrecoverableStages int64
	// Whole-graph polymerization counters: chains executed fused, chains
	// the cost model (or a failed plan) rejected, and the modeled
	// inter-stage global-memory traffic the fused executions avoided.
	FusedChains, FusionRejected int64
	FusedSavedBytes             float64
	// Cycles and SpillBytes accumulate end-to-end device cycles and
	// memory-planner spill traffic.
	Cycles     float64
	SpillBytes float64
	// GemmStageCycles accumulates co-scheduled GEMM stage makespans — the
	// denominator of per-PE utilization. PEBusy accumulates per-PE busy
	// cycles across stages (length = NumPEs once any stage has run);
	// memoized stage replays accumulate like fresh simulations.
	GemmStageCycles float64
	PEBusy          []float64
}

// PEUtilization returns each PE's busy fraction of the cumulative
// co-scheduled stage time, or nil before any GEMM stage has run.
func (s Stats) PEUtilization() []float64 {
	if s.GemmStageCycles <= 0 || len(s.PEBusy) == 0 {
		return nil
	}
	u := make([]float64, len(s.PEBusy))
	for i, b := range s.PEBusy {
		u[i] = b / s.GemmStageCycles
	}
	return u
}

// WaveImbalance scores the spread of the cumulative per-PE busy series,
// (max − min)/max; see sim.Imbalance.
func (s Stats) WaveImbalance() float64 { return sim.Imbalance(s.PEBusy) }

// Report describes one graph execution.
type Report struct {
	Graph  string
	Ops    int
	Stages int

	// Cycles is the end-to-end device time: co-scheduled GEMM/conv stage
	// makespans + bandwidth-bound OpOther work + spill traffic.
	Cycles      float64
	GemmCycles  float64
	OtherCycles float64
	SpillCycles float64

	// Plan-ahead accounting (wall clock, this process).
	Plans      int
	Stalls     int
	PlanWall   time.Duration
	StallWall  time.Duration
	HiddenWall time.Duration

	Degraded     int
	FaultedTasks int

	// FusedChains counts chains this execution ran as fused programs;
	// FusionRejected counts detected chains the cost model kept unfused;
	// FusedSavedBytes is the modeled inter-stage traffic fusion avoided.
	FusedChains     int
	FusionRejected  int
	FusedSavedBytes float64

	// RecoveredStages counts stages that hit faults but were healed by
	// the recovery ladder; RecoveredFaults the faulted tasks absorbed
	// doing so (not included in FaultedTasks).
	RecoveredStages int
	RecoveredFaults int

	Mem MemReport
}

// HiddenFraction is the share of online planning time hidden behind
// execution — the plan-ahead pipeline's figure of merit.
func (r Report) HiddenFraction() float64 {
	if r.PlanWall <= 0 {
		return 0
	}
	return float64(r.HiddenWall) / float64(r.PlanWall)
}

// New builds a runtime over a ready compiler. When cfg.Health is set it is
// also attached to the compiler, so planning and execution share one view of
// the degrading device.
func New(comp *core.Compiler, cfg Config) *Runtime {
	if cfg.MaxStageAttempts <= 0 {
		cfg.MaxStageAttempts = 4
	}
	if cfg.Health != nil {
		comp.SetHealth(cfg.Health)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.PlanAhead
		if cfg.Workers > 4 {
			cfg.Workers = 4
		}
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	r := &Runtime{
		comp:       comp,
		h:          comp.Hardware(),
		cfg:        cfg,
		o:          cfg.Obs,
		simCache:   make(map[string]simEntry),
		chainCache: make(map[string]chainEntry),
	}
	r.planFn = func(ctx context.Context, shape tensor.GemmShape) (*poly.Program, bool, error) {
		pctx := ctx
		var cancel context.CancelFunc
		if cfg.PlanTimeout != 0 {
			pctx, cancel = context.WithTimeout(ctx, cfg.PlanTimeout)
			defer cancel()
		}
		return comp.PlanOrFallback(pctx, shape)
	}
	r.simFn = func(h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result {
		return sim.Run(h, tasks)
	}
	return r
}

// Compiler returns the compiler the runtime plans through.
func (r *Runtime) Compiler() *core.Compiler { return r.comp }

// Hardware returns the target device.
func (r *Runtime) Hardware() hw.Hardware { return r.h }

// SetSimulator overrides stage execution (fault injection in the serving
// layer). fn must be deterministic for a given (h, v, tasks, salt).
func (r *Runtime) SetSimulator(fn func(h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result) {
	r.simFn = fn
}

// healthView snapshots the registry's current view together with its
// fingerprint and the effective hardware H' a stage should run on. Without a
// registry the pristine device is returned.
func (r *Runtime) healthView() (health.View, string, hw.Hardware) {
	if r.cfg.Health == nil {
		return health.View{}, "", r.h
	}
	v := r.cfg.Health.View()
	fp := v.Fingerprint()
	if fp == "" {
		return v, "", r.h
	}
	return v, fp, v.Apply(r.h)
}

// Stats returns the cumulative counters. The PEBusy slice is deep-copied:
// callers (metric scrapes, /stats snapshots) may hold the result while
// executions keep accumulating.
func (r *Runtime) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.agg
	s.PEBusy = append([]float64(nil), r.agg.PEBusy...)
	return s
}

// ticket is one op's plan, produced by the pipeline or inline.
type ticket struct {
	done     chan struct{}
	prog     *poly.Program
	degraded bool
	err      error
	wall     time.Duration
}

// Execute runs the graph end to end and returns its report.
func (r *Runtime) Execute(ctx context.Context, g nn.Graph) (Report, error) {
	return r.ExecuteSalted(ctx, g, 0)
}

// ExecuteSalted is Execute with a fault-injection salt distinguishing retry
// attempts (forwarded to the simulator seam).
func (r *Runtime) ExecuteSalted(ctx context.Context, g nn.Graph, salt uint64) (Report, error) {
	if err := g.Validate(); err != nil {
		return Report{}, err
	}
	stages, err := g.Stages()
	if err != nil {
		return Report{}, err
	}
	rep := Report{Graph: g.Name, Ops: len(g.Ops), Stages: len(stages)}
	ctx, esp := r.o.T().Start(ctx, "graphrt.execute")
	defer func() {
		esp.Attr("ops", float64(rep.Ops)).Attr("stages", float64(rep.Stages)).
			Attr("cycles", rep.Cycles).End()
	}()
	_, msp := r.o.T().Start(ctx, "graphrt.memplan")
	rep.Mem = planMemory(g, stages, r.h)
	msp.Attr("buffers", float64(rep.Mem.Buffers)).
		Attr("spill_bytes", rep.Mem.SpillBytes).End()
	rep.SpillCycles = rep.Mem.SpillBytes / r.h.GlobalBytesPerCycle

	// Whole-graph polymerization decides before the plan-ahead pipeline
	// starts: a fused chain's member ops are never ticketed (an unconsumed
	// ticket would pin one of the pipeline's lookahead tokens forever).
	var fusion *fusionPlan
	if r.cfg.Fuse {
		fusion = r.planFusion(ctx, g, &rep)
	}

	// Flatten the stage schedule into the planning order and start the
	// plan-ahead pipeline (nil tickets = inline planning).
	order := make([]int, 0, len(g.Ops))
	for _, stage := range stages {
		order = append(order, stage...)
	}
	pctx, stop := context.WithCancel(ctx)
	defer stop()
	pipe := r.startPipeline(pctx, g, order, fusion)

	// Spans cover novel work only: each memo-missing stage gets a
	// graphrt.stage span inside runStageCached, while memoized replays —
	// the bulk of a deep model's stages — ride on the enclosing execute
	// span. Spanning all ~N stages of a decode graph would put hundreds of
	// span commits on a ~ms execution, busting the <2% overhead contract.
	for si, stage := range stages {
		var tasks []sim.Task
		var ops []stageOp
		stageKey := ""
		// The health view is resolved per stage, not per graph: a PE
		// quarantined while stage k executes shrinks the hardware stage
		// k+1 runs on — mid-graph adaptation.
		v, fp, hEff := r.healthView()
		for _, i := range stage {
			op := g.Ops[i]
			if fusion != nil {
				if fusion.skip[i] {
					// Member of a fused chain: its GEMM (or folded
					// elementwise epilogue) executes inside the head's
					// program, so it is neither launched nor charged here.
					continue
				}
				if fprog := fusion.head[i]; fprog != nil {
					tasks = append(tasks, fprog.Tasks(hEff)...)
					ops = append(ops, stageOp{shape: op.Gemm, count: 1,
						prog: fprog, chainShapes: fusion.shapes[i]})
					stageKey += progKey(fprog, 1)
					continue
				}
			}
			if op.Kind == nn.OpOther {
				rep.OtherCycles += op.OtherCycles(r.h) * float64(op.Count)
				continue
			}
			t, err := r.consumePlan(ctx, pipe, i, op.Gemm, &rep)
			if err != nil {
				return Report{}, fmt.Errorf("graphrt: graph %s op %s: %w", g.Name, op.Name, err)
			}
			single := t.prog.Tasks(hEff)
			for c := 0; c < op.Count; c++ {
				tasks = append(tasks, single...)
			}
			ops = append(ops, stageOp{shape: op.Gemm, count: op.Count, prog: t.prog})
			stageKey += progKey(t.prog, op.Count)
		}
		if len(tasks) > 0 {
			res := r.runStageCached(ctx, si, stageKey, fp, hEff, v, tasks, salt)
			r.observe(v, res)
			switch {
			case res.Clean():
				// Healthy stage.
			case r.cfg.Health != nil:
				recovered, err := r.recoverStage(ctx, g, si, ops, stageKey, tasks, salt, res, &rep)
				if err != nil {
					return Report{}, err
				}
				res = recovered
			default:
				// No registry: surface faults; the layer above owns
				// the (blind) retry policy.
				rep.FaultedTasks += res.FaultedTasks + res.StrandedTasks
			}
			rep.GemmCycles += res.Cycles
		}
		if err := ctx.Err(); err != nil {
			return Report{}, err
		}
	}
	rep.Cycles = rep.GemmCycles + rep.OtherCycles + rep.SpillCycles

	r.mu.Lock()
	r.agg.Graphs++
	r.agg.Stages += int64(rep.Stages)
	r.agg.Plans += int64(rep.Plans)
	r.agg.Stalls += int64(rep.Stalls)
	r.agg.PlanWall += rep.PlanWall
	r.agg.StallWall += rep.StallWall
	r.agg.HiddenWall += rep.HiddenWall
	r.agg.Degraded += int64(rep.Degraded)
	r.agg.FaultedTasks += int64(rep.FaultedTasks)
	r.agg.FusedChains += int64(rep.FusedChains)
	r.agg.FusionRejected += int64(rep.FusionRejected)
	r.agg.FusedSavedBytes += rep.FusedSavedBytes
	r.agg.Cycles += rep.Cycles
	r.agg.SpillBytes += rep.Mem.SpillBytes
	r.mu.Unlock()
	return rep, nil
}
