package graphrt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mikpoly/internal/nn"
)

// BatchConfig tunes the continuous decode batcher. Zero fields take the
// defaults below.
type BatchConfig struct {
	// MaxBatch bounds the requests aggregated into one step graph
	// (default 8).
	MaxBatch int
	// KVQuantum is the KV-length bucket granularity: a request's context
	// length is padded up to the next multiple, so requests with nearby
	// KV lengths share one step graph — legal because local padding
	// (§3.4) makes any padded shape executable (default 64).
	KVQuantum int
	// PageTokens, when set, declares that KV lives in a paged cache with
	// this page size. Padding then wastes real attention bandwidth only up
	// to the page boundary — the pager never materializes tokens past the
	// sequence's last page — so the bucket quantum is clamped down to the
	// page size: finer buckets, strictly less padded work, and the step
	// graphs stay shape-shareable because pages are uniform.
	PageTokens int
	// KVBytesPerToken converts padded tokens into wasted attention-read
	// bytes for the PaddedKVBytes counter (default 5120, the per-token
	// KV footprint of the llama2-13b reference model at fp16).
	KVBytesPerToken int64
}

const (
	defaultMaxBatch        = 8
	defaultKVQuantum       = 64
	defaultKVBytesPerToken = 5120
)

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = defaultMaxBatch
	}
	if c.KVQuantum <= 0 {
		c.KVQuantum = defaultKVQuantum
	}
	if c.PageTokens > 0 && c.KVQuantum > c.PageTokens {
		c.KVQuantum = c.PageTokens
	}
	if c.KVBytesPerToken <= 0 {
		c.KVBytesPerToken = defaultKVBytesPerToken
	}
	return c
}

// DecodeRequest asks for Tokens autoregressive decode steps of a Llama2
// sequence whose KV cache currently holds KVLen tokens.
type DecodeRequest struct {
	KVLen  int
	Tokens int
}

// DecodeResult reports one request's generation.
type DecodeResult struct {
	// Tokens is the number of decode steps executed.
	Tokens int
	// SharedSteps counts steps co-batched with at least one other
	// request (the continuous-batching win).
	SharedSteps int
	// Cycles is the summed device latency of every step graph the
	// request rode in — the latency this request observed.
	Cycles float64
	// Stalls and Degraded aggregate the underlying executions' planning
	// stalls and fallback plans.
	Stalls   int
	Degraded int
	// FaultedTasks aggregates simulator-reported faults across steps.
	FaultedTasks int
}

// BatchStats are the batcher's cumulative counters.
type BatchStats struct {
	// Submitted and Completed count requests.
	Submitted, Completed int64
	// StepGraphs counts executed step graphs; SharedStepGraphs the
	// subset carrying more than one request.
	StepGraphs, SharedStepGraphs int64
	// PaddedKVTokens sums the per-request KV padding introduced by
	// bucketing (wasted attention work, the cost of sharing), and
	// PaddedKVBytes the attention-read bandwidth that padding burned
	// (PaddedKVTokens × KVBytesPerToken) — the exact price paid for
	// shape-shared step graphs.
	PaddedKVTokens int64
	PaddedKVBytes  int64
}

// errStopped answers submissions to a stopped batcher.
var errStopped = errors.New("graphrt: decode batcher stopped")

// DecodeBatcher aggregates concurrent Llama decode requests into
// shape-bucketed step graphs with join/leave between steps: a request
// joins the batch at the next step boundary, decodes one token per step
// alongside everyone in its KV bucket, and leaves when done.
type DecodeBatcher struct {
	rt  *Runtime
	cfg BatchConfig

	mu      sync.Mutex
	waiting []*decodeCall
	stats   BatchStats
	stopped bool

	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup
}

// decodeCall is one in-flight request.
type decodeCall struct {
	ctx  context.Context
	kv   int // current KV length
	left int // tokens still to decode
	res  DecodeResult
	err  error
	done chan struct{}
}

// NewDecodeBatcher builds a batcher over rt. Call Start to launch the
// serving loop; tests may instead drive RunStep directly.
func NewDecodeBatcher(rt *Runtime, cfg BatchConfig) *DecodeBatcher {
	return &DecodeBatcher{
		rt:   rt,
		cfg:  cfg.withDefaults(),
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
}

// Start launches the continuous batching loop.
func (b *DecodeBatcher) Start() {
	b.wg.Add(1)
	go b.loop()
}

// Stop terminates the loop and fails queued requests. In-flight steps
// complete first.
func (b *DecodeBatcher) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	b.mu.Unlock()
	close(b.quit)
	b.wg.Wait()
	b.mu.Lock()
	for _, c := range b.waiting {
		c.err = errStopped
		close(c.done)
	}
	b.waiting = nil
	b.mu.Unlock()
}

// Stats returns the cumulative batching counters.
func (b *DecodeBatcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Submit enqueues a request and blocks until it completes, its context
// expires, or the batcher stops.
func (b *DecodeBatcher) Submit(ctx context.Context, req DecodeRequest) (DecodeResult, error) {
	if req.KVLen < 1 || req.Tokens < 1 {
		return DecodeResult{}, fmt.Errorf("graphrt: invalid decode request kv=%d tokens=%d", req.KVLen, req.Tokens)
	}
	c, err := b.enqueue(ctx, req)
	if err != nil {
		return DecodeResult{}, err
	}
	select {
	case <-c.done:
		return c.res, c.err
	case <-ctx.Done():
		// The loop observes the dead context at the next step boundary
		// and completes the call with its error; waiting here keeps the
		// result delivery single-writer.
		<-c.done
		return c.res, c.err
	}
}

// enqueue adds a request to the waiting queue (non-blocking half of
// Submit, used directly by deterministic tests).
func (b *DecodeBatcher) enqueue(ctx context.Context, req DecodeRequest) (*decodeCall, error) {
	c := &decodeCall{ctx: ctx, kv: req.KVLen, left: req.Tokens, done: make(chan struct{})}
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return nil, errStopped
	}
	b.waiting = append(b.waiting, c)
	b.stats.Submitted++
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	return c, nil
}

// loop drains steps while work exists, sleeping until woken otherwise.
func (b *DecodeBatcher) loop() {
	defer b.wg.Done()
	var active []*decodeCall
	for {
		active = b.RunStep(context.Background(), active)
		if len(active) > 0 {
			continue
		}
		b.mu.Lock()
		idle := len(b.waiting) == 0
		b.mu.Unlock()
		if !idle {
			continue
		}
		select {
		case <-b.wake:
		case <-b.quit:
			return
		}
	}
}

// RunStep executes one decode step: it admits waiting requests (join),
// buckets the active set by padded KV length, runs one step graph per
// bucket, advances every member one token, and retires finished requests
// (leave). It returns the requests still active. Exposed so tests can
// drive batching deterministically; the serving path uses Start/Submit.
func (b *DecodeBatcher) RunStep(ctx context.Context, active []*decodeCall) []*decodeCall {
	// Join: pick up everything waiting at this step boundary.
	b.mu.Lock()
	active = append(active, b.waiting...)
	b.waiting = nil
	b.mu.Unlock()

	// Evict requests whose caller has gone away.
	keep := active[:0]
	for _, c := range active {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			close(c.done)
			continue
		}
		keep = append(keep, c)
	}
	active = keep
	if len(active) == 0 {
		return nil
	}

	// Bucket by padded KV length, deterministically.
	q := b.cfg.KVQuantum
	buckets := make(map[int][]*decodeCall)
	for _, c := range active {
		padded := (c.kv + q - 1) / q * q
		buckets[padded] = append(buckets[padded], c)
	}
	kvs := make([]int, 0, len(buckets))
	for kv := range buckets {
		kvs = append(kvs, kv)
	}
	sort.Ints(kvs)

	for _, kv := range kvs {
		group := buckets[kv]
		for len(group) > 0 {
			n := len(group)
			if n > b.cfg.MaxBatch {
				n = b.cfg.MaxBatch
			}
			b.step(ctx, group[:n], kv)
			group = group[n:]
		}
	}

	// Leave: retire completed requests.
	keep = active[:0]
	for _, c := range active {
		if c.left == 0 || c.err != nil {
			if c.err == nil {
				b.mu.Lock()
				b.stats.Completed++
				b.mu.Unlock()
			}
			close(c.done)
			continue
		}
		keep = append(keep, c)
	}
	return keep
}

// step runs one shape-bucketed step graph for a group of requests.
func (b *DecodeBatcher) step(ctx context.Context, group []*decodeCall, paddedKV int) {
	g := nn.Llama2Decode(len(group), paddedKV)
	rep, err := b.rt.Execute(ctx, g)
	b.mu.Lock()
	b.stats.StepGraphs++
	if len(group) > 1 {
		b.stats.SharedStepGraphs++
	}
	for _, c := range group {
		pad := int64(paddedKV - c.kv)
		b.stats.PaddedKVTokens += pad
		b.stats.PaddedKVBytes += pad * b.cfg.KVBytesPerToken
	}
	b.mu.Unlock()
	for _, c := range group {
		if err != nil {
			c.err = err
			continue
		}
		c.res.Tokens++
		c.res.Cycles += rep.Cycles
		c.res.Stalls += rep.Stalls
		c.res.Degraded += rep.Degraded
		c.res.FaultedTasks += rep.FaultedTasks
		if len(group) > 1 {
			c.res.SharedSteps++
		}
		c.kv++
		c.left--
	}
}
