package graphrt

import (
	"context"
	"fmt"
	"time"

	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// pipeline is one execution's asynchronous plan-ahead state: a ticket per
// op (nil for OpOther), filled by a bounded worker pool that runs at most
// PlanAhead ops past the executor's consumption point.
type pipeline struct {
	tickets []*ticket
	// ahead holds one token per dispatched-but-unconsumed plan; the
	// dispatcher acquires before handing a job to the pool, the executor
	// releases on consumption, bounding the lookahead to cap(ahead).
	ahead chan struct{}
}

// startPipeline launches the plan-ahead pipeline for the ops in `order`
// (the flattened stage schedule). Returns nil when PlanAhead is 0: the
// executor then plans inline, on its critical path — the sequential mode.
// Ops covered by a fusion plan (chain heads and their members) get no
// ticket: heads already hold their fused program and members never execute
// standalone, so a ticket would hold a lookahead token that is never
// released. All goroutines exit when ctx is cancelled (the executor cancels
// it on return), so an aborted execution leaks nothing.
func (r *Runtime) startPipeline(ctx context.Context, g nn.Graph, order []int, fusion *fusionPlan) *pipeline {
	if r.cfg.PlanAhead <= 0 {
		return nil
	}
	p := &pipeline{
		tickets: make([]*ticket, len(g.Ops)),
		ahead:   make(chan struct{}, r.cfg.PlanAhead),
	}
	var planned []int
	for _, i := range order {
		if g.Ops[i].Kind != nn.OpOther && !fusion.covered(i) {
			p.tickets[i] = &ticket{done: make(chan struct{})}
			planned = append(planned, i)
		}
	}

	jobs := make(chan int)
	go func() { // dispatcher: feeds jobs in schedule order, k-bounded
		defer close(jobs)
		for _, i := range planned {
			select {
			case p.ahead <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < r.cfg.Workers; w++ {
		go func() {
			for i := range jobs {
				t := p.tickets[i]
				start := time.Now()
				t.prog, t.degraded, t.err = r.planFn(ctx, g.Ops[i].Gemm)
				t.wall = time.Since(start)
				close(t.done)
			}
		}()
	}
	return p
}

// consumePlan hands the executor op i's program: from the pipeline when one
// is running (accounting stall vs hidden wall time), inline otherwise.
func (r *Runtime) consumePlan(ctx context.Context, pipe *pipeline, i int, shape tensor.GemmShape, rep *Report) (*ticket, error) {
	if pipe == nil {
		// Sequential mode: the whole planning wall is executor stall.
		t := &ticket{}
		start := time.Now()
		t.prog, t.degraded, t.err = r.planFn(ctx, shape)
		t.wall = time.Since(start)
		rep.Plans++
		rep.Stalls++
		rep.PlanWall += t.wall
		rep.StallWall += t.wall
		if t.degraded {
			rep.Degraded++
		}
		return t, t.err
	}

	t := pipe.tickets[i]
	var stall time.Duration
	select {
	case <-t.done:
	default:
		// Plan not ready: the executor stalls until the pipeline
		// delivers — the planning time the pipeline failed to hide.
		waitStart := time.Now()
		select {
		case <-t.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		stall = time.Since(waitStart)
		rep.Stalls++
	}
	<-pipe.ahead // release the lookahead token
	rep.Plans++
	rep.PlanWall += t.wall
	rep.StallWall += stall
	if hidden := t.wall - stall; hidden > 0 {
		rep.HiddenWall += hidden
	}
	if t.degraded {
		rep.Degraded++
	}
	return t, t.err
}

// progKey fingerprints a program for the stage-simulation memo. Identity by
// content, not pointer, so a recycled allocation can never alias a stale
// entry: shape + pattern + region count + task count separates an optimized
// program from the single-kernel fallback for the same shape.
func progKey(p *poly.Program, count int) string {
	return fmt.Sprintf("%v|%s|%d|%d*%d;", p.Shape, p.Pattern, len(p.Regions), p.NumTasks(), count)
}

// runStageCached executes one stage's co-scheduled task batch, memoizing by
// (program identity, count, health fingerprint, salt) signature: model
// graphs repeat the same operator stack across layers, and the simulator is
// deterministic, so identical stages under the same device view cost
// identical cycles. The fingerprint in the key keeps healthy and degraded
// executions strictly separated (no cross-contamination), and recovery
// attempts always miss because their salts differ. Only the memo miss — the
// stage that actually hits the simulator — earns a span; replays are
// aggregated into the parent graphrt.execute span's counters.
func (r *Runtime) runStageCached(ctx context.Context, stage int, key, fp string, h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result {
	key = fmt.Sprintf("%s#%s#%d", key, fp, salt)
	r.mu.Lock()
	if e, ok := r.simCache[key]; ok && e.salt == salt {
		r.accumulateStageLocked(e)
		r.mu.Unlock()
		return e.res
	}
	r.mu.Unlock()

	_, sp := r.o.T().Start(ctx, "graphrt.stage")
	res := r.simFn(h, v, tasks, salt)
	sp.Attr("stage", float64(stage)).Attr("tasks", float64(len(tasks))).
		Attr("cycles", res.Cycles).End()

	e := simEntry{salt: salt, res: res}
	r.mu.Lock()
	if len(r.simCache) >= simCacheCap {
		// The cache is per-process scratch, not a correctness structure:
		// dropping it wholesale keeps memory flat under shape churn.
		r.simCache = make(map[string]simEntry)
	}
	r.simCache[key] = e
	r.accumulateStageLocked(e)
	r.mu.Unlock()
	return res
}

// accumulateStageLocked folds one executed (or memo-replayed) stage into the
// cumulative utilization counters. Callers hold r.mu. The cached PEBusy
// slice is only read, never aliased into agg.PEBusy. Degraded stages report
// fewer PEs than healthy ones; the shorter series folds into the prefix, so
// cumulative utilization reflects survivor positions — an accepted
// approximation while quarantines are live.
func (r *Runtime) accumulateStageLocked(e simEntry) {
	r.agg.GemmStageCycles += e.res.Cycles
	if len(e.res.PEBusy) == 0 {
		return
	}
	if len(r.agg.PEBusy) < len(e.res.PEBusy) {
		grown := make([]float64, len(e.res.PEBusy))
		copy(grown, r.agg.PEBusy)
		r.agg.PEBusy = grown
	}
	for i, b := range e.res.PEBusy {
		r.agg.PEBusy[i] += b
	}
}

// simCacheCap bounds the stage-simulation memo.
const simCacheCap = 4096
