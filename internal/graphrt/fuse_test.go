package graphrt

import (
	"context"
	"testing"

	"mikpoly/internal/nn"
	"mikpoly/internal/tensor"
)

// fusibleGraph is a chain the cost model prefers fused on the (small) test
// library: many rows, narrow stages, an elementwise middle to fold.
func fusibleGraph() nn.Graph {
	return nn.Graph{Name: "fusible", Ops: []nn.Op{
		{Name: "up", Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 16384, N: 128, K: 256}, Count: 1},
		{Name: "act", Kind: nn.OpOther, OtherBytes: 16384 * 128 * 8, Elementwise: "gelu", Count: 1},
		{Name: "down", Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 16384, N: 128, K: 128}, Count: 1},
	}}
}

func TestExecuteFusedBeatsUnfused(t *testing.T) {
	g := fusibleGraph()
	off := testRuntime(t, Config{})
	unfused, err := off.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	on := testRuntime(t, Config{Fuse: true})
	fused, err := on.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if fused.FusedChains != 1 {
		t.Fatalf("FusedChains = %d (rejected %d), want 1", fused.FusedChains, fused.FusionRejected)
	}
	if fused.FusedSavedBytes <= 0 {
		t.Fatal("no saved traffic reported")
	}
	if fused.Cycles >= unfused.Cycles {
		t.Fatalf("fused %.0f cycles, unfused %.0f — fusion adopted but slower", fused.Cycles, unfused.Cycles)
	}
	// The folded elementwise middle must not be double-charged.
	if fused.OtherCycles != 0 {
		t.Fatalf("folded middle still charged %.0f other-cycles", fused.OtherCycles)
	}
	st := on.Stats()
	if st.FusedChains != 1 || st.FusedSavedBytes != fused.FusedSavedBytes {
		t.Fatalf("aggregate stats %+v do not reflect the fused run", st)
	}
}

func TestExecuteFuseRejectsUnprofitableChain(t *testing.T) {
	// Few rows over wide, deep stages: strip-parallel execution serializes
	// heavy per-strip work onto a handful of PEs, so the cost model must
	// keep the chain on the per-op path.
	g := nn.Graph{Name: "narrow", Ops: []nn.Op{
		{Name: "a", Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 1024, N: 1024, K: 1024}, Count: 1},
		{Name: "b", Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 1024, N: 512, K: 1024}, Count: 1},
	}}
	off := testRuntime(t, Config{})
	unfused, err := off.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	on := testRuntime(t, Config{Fuse: true})
	rep, err := on.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FusedChains != 0 {
		// The chain fused after all — then it must not be slower.
		if rep.Cycles > unfused.Cycles {
			t.Fatalf("adopted fusion is slower: %.0f vs %.0f", rep.Cycles, unfused.Cycles)
		}
		return
	}
	if rep.FusionRejected < 1 {
		t.Fatalf("chain neither fused nor rejected: %+v", rep)
	}
	// Rejected fusion must execute exactly like the unfused path.
	if rep.Cycles != unfused.Cycles {
		t.Fatalf("rejected fusion changed cycles: %.0f vs %.0f", rep.Cycles, unfused.Cycles)
	}
}

func TestExecuteFuseWithPlanAheadPipeline(t *testing.T) {
	// Fused member ops are never ticketed; the pipeline's lookahead tokens
	// must all be released (a stuck token would deadlock later plans).
	g := fusibleGraph()
	// Surround the chain with independent planable ops so the pipeline has
	// genuine lookahead work.
	for i := 0; i < 6; i++ {
		g.Ops = append(g.Ops, nn.Op{
			Name: "tail", Kind: nn.OpGemm,
			Gemm:  tensor.GemmShape{M: 512 + 16*i, N: 768, K: 768},
			Count: 1,
		})
	}
	rt := testRuntime(t, Config{Fuse: true, PlanAhead: 2})
	rep, err := rt.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FusedChains != 1 {
		t.Fatalf("FusedChains = %d, want 1", rep.FusedChains)
	}
	// Run again: the chain decision and plans are cached; must terminate.
	if _, err := rt.Execute(context.Background(), g); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteFuseDeterministicAcrossRuns(t *testing.T) {
	g := fusibleGraph()
	rt := testRuntime(t, Config{Fuse: true})
	a, err := rt.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.FusedChains != b.FusedChains {
		t.Fatalf("fused execution not deterministic: %+v vs %+v", a, b)
	}
}
