package graphrt

import (
	"context"
	"sync"
	"testing"

	"mikpoly/internal/nn"
)

// TestRaceConcurrentDecodeAndExecute exercises the plan-ahead pipeline under
// concurrent decode traffic (run with -race): direct graph executions and
// batched decode submissions share one runtime, and every plan-ahead
// execution must remain cycle-for-cycle deterministic against a sequential
// baseline while the stall accounting invariants hold.
func TestRaceConcurrentDecodeAndExecute(t *testing.T) {
	g := nn.Llama2Decode(1, 100)

	// Sequential baseline on its own cold compiler.
	want, err := fastRuntime(t, Config{}).Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}

	rt := fastRuntime(t, Config{PlanAhead: 3})
	b := NewDecodeBatcher(rt, BatchConfig{MaxBatch: 4})
	b.Start()
	defer b.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Concurrent decode requests with differing KV lengths.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(kv int) {
			defer wg.Done()
			res, err := b.Submit(context.Background(), DecodeRequest{KVLen: kv, Tokens: 2})
			if err != nil {
				errs <- err
				return
			}
			if res.Tokens != 2 {
				errs <- errTokens(res.Tokens)
			}
		}(90 + 7*i)
	}
	// Concurrent plan-ahead executions of the same graph: all must cost
	// exactly the sequential baseline's cycles.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := rt.Execute(context.Background(), g)
			if err != nil {
				errs <- err
				return
			}
			if rep.Cycles != want.Cycles {
				errs <- errCycles{rep.Cycles, want.Cycles}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := rt.Stats()
	if st.Stalls > st.Plans {
		t.Errorf("stalls %d > plans %d", st.Stalls, st.Plans)
	}
	if st.HiddenWall > st.PlanWall {
		t.Errorf("hidden wall %v > plan wall %v", st.HiddenWall, st.PlanWall)
	}
	if st.PlanWall > st.StallWall+st.HiddenWall {
		t.Errorf("plan wall %v > stall %v + hidden %v", st.PlanWall, st.StallWall, st.HiddenWall)
	}
	if st.Graphs < 3 {
		t.Errorf("aggregated %d graphs, want >= 3 direct executions", st.Graphs)
	}

	bs := b.Stats()
	if bs.Submitted != 6 || bs.Completed != 6 {
		t.Errorf("batch stats %+v, want 6 submitted and completed", bs)
	}
}

type errCycles struct{ got, want float64 }

func (e errCycles) Error() string {
	return "plan-ahead cycles diverged from sequential baseline"
}

type errTokens int

func (e errTokens) Error() string { return "wrong token count from batched decode" }
