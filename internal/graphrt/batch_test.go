package graphrt

import (
	"context"
	"errors"
	"testing"
)

// TestBucketSharing is the batching acceptance scenario: two decode requests
// with different KV lengths (100 and 120) land in the same 64-quantum bucket
// (both pad to 128) and share a single step graph, each receiving its own
// per-request result.
func TestBucketSharing(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2})
	b := NewDecodeBatcher(rt, BatchConfig{}) // not started: driven directly
	ctx := context.Background()

	c1, err := b.enqueue(ctx, DecodeRequest{KVLen: 100, Tokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := b.enqueue(ctx, DecodeRequest{KVLen: 120, Tokens: 1})
	if err != nil {
		t.Fatal(err)
	}

	active := b.RunStep(ctx, nil)
	if len(active) != 0 {
		t.Fatalf("%d requests still active after their single step", len(active))
	}
	for _, c := range []*decodeCall{c1, c2} {
		select {
		case <-c.done:
		default:
			t.Fatal("completed request's done channel not closed")
		}
		if c.err != nil {
			t.Fatal(c.err)
		}
		if c.res.Tokens != 1 || c.res.SharedSteps != 1 {
			t.Fatalf("per-request result %+v, want 1 token in 1 shared step", c.res)
		}
		if c.res.Cycles <= 0 {
			t.Fatal("request observed no device time")
		}
	}
	// Both rode the same graph, so they observed identical step latency.
	if c1.res.Cycles != c2.res.Cycles {
		t.Fatalf("co-batched requests observed different cycles: %g vs %g", c1.res.Cycles, c2.res.Cycles)
	}

	st := b.Stats()
	if st.StepGraphs != 1 || st.SharedStepGraphs != 1 {
		t.Fatalf("stats %+v, want exactly one shared step graph", st)
	}
	if st.PaddedKVTokens != (128-100)+(128-120) {
		t.Fatalf("padded KV tokens %d, want 36", st.PaddedKVTokens)
	}
	if st.PaddedKVBytes != st.PaddedKVTokens*defaultKVBytesPerToken {
		t.Fatalf("padded KV bytes %d, want tokens %d x %d bytes/token",
			st.PaddedKVBytes, st.PaddedKVTokens, defaultKVBytesPerToken)
	}
	if st.Submitted != 2 || st.Completed != 2 {
		t.Fatalf("stats %+v, want 2 submitted and completed", st)
	}
}

// TestPagedQuantumShrinksPadding: with a paged KV cache declared, the bucket
// quantum clamps down to the page size — the pager never reads past the last
// page, so coarser padding buys nothing — and the accounted waste shrinks.
func TestPagedQuantumShrinksPadding(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2})
	ctx := context.Background()

	run := func(cfg BatchConfig) BatchStats {
		b := NewDecodeBatcher(rt, cfg)
		for _, kv := range []int{100, 120} {
			if _, err := b.enqueue(ctx, DecodeRequest{KVLen: kv, Tokens: 1}); err != nil {
				t.Fatal(err)
			}
		}
		b.RunStep(ctx, nil)
		return b.Stats()
	}

	coarse := run(BatchConfig{})              // quantum 64: both pad to 128
	paged := run(BatchConfig{PageTokens: 16}) // quantum 16: pad to 112 and 128
	if coarse.PaddedKVTokens != 36 {
		t.Fatalf("coarse padding %d tokens, want 36", coarse.PaddedKVTokens)
	}
	if want := int64((112 - 100) + (128 - 120)); paged.PaddedKVTokens != want {
		t.Fatalf("paged padding %d tokens, want %d", paged.PaddedKVTokens, want)
	}
	if paged.PaddedKVTokens >= coarse.PaddedKVTokens {
		t.Fatalf("page-granular buckets did not shrink padding: %d vs %d",
			paged.PaddedKVTokens, coarse.PaddedKVTokens)
	}
	if paged.PaddedKVBytes != paged.PaddedKVTokens*defaultKVBytesPerToken {
		t.Fatalf("paged bytes %d inconsistent with tokens %d", paged.PaddedKVBytes, paged.PaddedKVTokens)
	}
	// An explicit quantum below the page size is kept as-is (never raised).
	b := NewDecodeBatcher(rt, BatchConfig{KVQuantum: 8, PageTokens: 16})
	if b.cfg.KVQuantum != 8 {
		t.Fatalf("quantum %d, want explicit 8 preserved", b.cfg.KVQuantum)
	}
}

// TestJoinLeave verifies continuous batching across step boundaries: a
// request joins an in-progress stream at the next step, shares steps while
// both run, and each leaves exactly when its token budget is spent.
func TestJoinLeave(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2})
	b := NewDecodeBatcher(rt, BatchConfig{})
	ctx := context.Background()

	a, err := b.enqueue(ctx, DecodeRequest{KVLen: 10, Tokens: 3})
	if err != nil {
		t.Fatal(err)
	}
	active := b.RunStep(ctx, nil) // step 1: a alone
	if len(active) != 1 {
		t.Fatalf("after step 1: %d active, want 1", len(active))
	}

	c, err := b.enqueue(ctx, DecodeRequest{KVLen: 30, Tokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	active = b.RunStep(ctx, active) // step 2: c joins, both pad to 64
	if len(active) != 1 {
		t.Fatalf("after step 2: %d active, want 1 (c left)", len(active))
	}
	if c.err != nil || c.res.Tokens != 1 || c.res.SharedSteps != 1 {
		t.Fatalf("joiner result %+v err=%v", c.res, c.err)
	}

	active = b.RunStep(ctx, active) // step 3: a alone again, then leaves
	if len(active) != 0 {
		t.Fatalf("after step 3: %d active, want 0", len(active))
	}
	if a.err != nil || a.res.Tokens != 3 || a.res.SharedSteps != 1 {
		t.Fatalf("long request result %+v err=%v", a.res, a.err)
	}

	st := b.Stats()
	if st.StepGraphs != 3 || st.SharedStepGraphs != 1 {
		t.Fatalf("stats %+v, want 3 step graphs of which 1 shared", st)
	}
}

func TestMaxBatchSplitsBuckets(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2})
	b := NewDecodeBatcher(rt, BatchConfig{MaxBatch: 2})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := b.enqueue(ctx, DecodeRequest{KVLen: 50, Tokens: 1}); err != nil {
			t.Fatal(err)
		}
	}
	b.RunStep(ctx, nil)
	st := b.Stats()
	// One bucket of three, capped at 2 per graph: a shared pair + a single.
	if st.StepGraphs != 2 || st.SharedStepGraphs != 1 {
		t.Fatalf("stats %+v, want 2 step graphs of which 1 shared", st)
	}
}

func TestRunStepEvictsDeadContexts(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2})
	b := NewDecodeBatcher(rt, BatchConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	c, err := b.enqueue(ctx, DecodeRequest{KVLen: 10, Tokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if active := b.RunStep(context.Background(), nil); len(active) != 0 {
		t.Fatalf("%d active, want eviction", len(active))
	}
	if !errors.Is(c.err, context.Canceled) {
		t.Fatalf("evicted request error %v, want context.Canceled", c.err)
	}
	if st := b.Stats(); st.Completed != 0 || st.StepGraphs != 0 {
		t.Fatalf("evicted request counted as work: %+v", st)
	}
}

func TestSubmitValidationAndStop(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2})
	b := NewDecodeBatcher(rt, BatchConfig{})
	ctx := context.Background()

	if _, err := b.Submit(ctx, DecodeRequest{KVLen: 0, Tokens: 1}); err == nil {
		t.Fatal("kv=0 accepted")
	}
	if _, err := b.Submit(ctx, DecodeRequest{KVLen: 1, Tokens: 0}); err == nil {
		t.Fatal("tokens=0 accepted")
	}

	// A queued request fails with errStopped when the batcher stops.
	c, err := b.enqueue(ctx, DecodeRequest{KVLen: 10, Tokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Stop()
	<-c.done
	if !errors.Is(c.err, errStopped) {
		t.Fatalf("queued request error %v, want errStopped", c.err)
	}
	if _, err := b.Submit(ctx, DecodeRequest{KVLen: 10, Tokens: 1}); !errors.Is(err, errStopped) {
		t.Fatalf("submit after stop: %v, want errStopped", err)
	}
	b.Stop() // idempotent
}

// TestStartSubmitEndToEnd drives the background loop the way the serving
// layer does.
func TestStartSubmitEndToEnd(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2})
	b := NewDecodeBatcher(rt, BatchConfig{})
	b.Start()
	defer b.Stop()
	res, err := b.Submit(context.Background(), DecodeRequest{KVLen: 90, Tokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tokens != 2 || res.Cycles <= 0 {
		t.Fatalf("result %+v, want 2 tokens with device time", res)
	}
}
