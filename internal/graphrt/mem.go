package graphrt

import (
	"fmt"
	"sort"

	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
)

// MemReport summarizes the global-memory plan of one graph execution.
type MemReport struct {
	// CapacityBytes is H.M_global (0 = unspecified, treated as unbounded).
	CapacityBytes int64
	// Buffers is the number of inter-op tensors planned.
	Buffers int
	// PeakBytes is the allocator's high-water mark among buffers that fit.
	PeakBytes int64
	// WorkingSetBytes is the peak sum of simultaneously-live buffer sizes
	// — what the graph would need with no capacity bound.
	WorkingSetBytes int64
	// SpilledBuffers and SpillBytes describe tensors that did not fit:
	// each spill pays its size once to store plus once per consuming
	// stage to reload, charged as bandwidth-bound traffic.
	SpilledBuffers int
	SpillBytes     float64
}

// buffer is one inter-op tensor: the output of a GEMM/conv op, live from
// its producing stage through the stage of its last consumer. OpOther ops
// are bandwidth passes that forward their input in place, so demand on
// their output is demand on their producers' buffers.
type buffer struct {
	op          int
	size        int64
	birth, last int   // stage interval [birth, last]
	reads       int   // consuming stages (reload count if spilled)
	off         int64 // assigned offset when fitted
	spilled     bool
}

// planMemory performs liveness-based first-fit assignment of inter-op
// tensors against the device's global memory, reusing freed regions; a
// tensor that cannot fit is spilled and its round-trip traffic charged to
// the execution. The schedule's stage order defines liveness.
func planMemory(g nn.Graph, stages [][]int, h hw.Hardware) MemReport {
	rep := MemReport{CapacityBytes: h.GlobalMemBytes}

	pos := make([]int, len(g.Ops)) // op -> stage index
	for s, stage := range stages {
		for _, i := range stage {
			pos[i] = s
		}
	}
	consumers := g.Consumers()

	// lastUse resolves demand through OpOther forwarding: a consumer that
	// is itself an OpOther extends the buffer's life to that op's own
	// consumers, transitively.
	var lastUse func(i int, seen []bool) (last, reads int)
	lastUse = func(i int, seen []bool) (int, int) {
		last, reads := pos[i], 0
		for _, c := range consumers[i] {
			if seen[c] {
				continue
			}
			seen[c] = true
			if g.Ops[c].Kind == nn.OpOther {
				l, n := lastUse(c, seen)
				if l > last {
					last = l
				}
				reads += n
				continue
			}
			if pos[c] > last {
				last = pos[c]
			}
			reads++
		}
		return last, reads
	}

	var bufs []*buffer
	for i, op := range g.Ops {
		if op.Kind == nn.OpOther {
			continue
		}
		size := int64(op.Gemm.M) * int64(op.Gemm.N) * int64(h.OutputBytes) * int64(op.Count)
		b := &buffer{op: i, size: size, birth: pos[i]}
		b.last, b.reads = lastUse(i, make([]bool, len(g.Ops)))
		if b.reads == 0 {
			// A graph output: stays resident until the run completes.
			b.last = len(stages) - 1
		}
		bufs = append(bufs, b)
	}
	rep.Buffers = len(bufs)

	// Birth events per stage, in op order (deterministic).
	byBirth := make([][]*buffer, len(stages))
	for _, b := range bufs {
		byBirth[b.birth] = append(byBirth[b.birth], b)
	}

	alloc := newArena(h.GlobalMemBytes)
	var live []*buffer
	var liveBytes, workingPeak int64
	for s := range stages {
		// Free buffers whose last consumer ran in an earlier stage.
		keep := live[:0]
		for _, b := range live {
			if b.last < s {
				if !b.spilled {
					alloc.release(b.off, b.size)
				}
				liveBytes -= b.size
			} else {
				keep = append(keep, b)
			}
		}
		live = keep

		for _, b := range byBirth[s] {
			liveBytes += b.size
			off, ok := alloc.alloc(b.size)
			if ok {
				b.off = off
			} else {
				b.spilled = true
				rep.SpilledBuffers++
				rep.SpillBytes += float64(b.size) * float64(1+b.reads)
			}
			live = append(live, b)
		}
		if liveBytes > workingPeak {
			workingPeak = liveBytes
		}
	}
	rep.PeakBytes = alloc.peak
	rep.WorkingSetBytes = workingPeak
	return rep
}

// arena is an offset-based first-fit allocator over [0, cap) with a sorted
// free list and neighbor merging on free. Every outstanding allocation is
// tracked by offset, so a double release, a release of a never-allocated
// offset, or a release with the wrong size panics instead of silently
// corrupting the free list — those were representable before and would have
// surfaced as impossible peak/spill numbers far from the cause.
type arena struct {
	cap  int64 // 0 = unbounded
	free []span
	peak int64
	// used maps each outstanding allocation's offset to its size; inUse is
	// their sum and can never go negative (release panics first).
	used  map[int64]int64
	inUse int64
}

type span struct{ off, len int64 }

func newArena(capacity int64) *arena {
	a := &arena{cap: capacity, used: make(map[int64]int64)}
	limit := capacity
	if limit <= 0 {
		limit = int64(1) << 62 // unbounded
	}
	a.free = []span{{off: 0, len: limit}}
	return a
}

// alloc carves the lowest-offset free span that fits.
func (a *arena) alloc(size int64) (int64, bool) {
	if size <= 0 {
		return 0, true
	}
	for i := range a.free {
		if a.free[i].len >= size {
			off := a.free[i].off
			a.free[i].off += size
			a.free[i].len -= size
			if a.free[i].len == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			if end := off + size; end > a.peak {
				a.peak = end
			}
			a.used[off] = size
			a.inUse += size
			return off, true
		}
	}
	return 0, false
}

// release returns a span to the list, merging with adjacent neighbors. The
// span must exactly match a live allocation from alloc.
func (a *arena) release(off, size int64) {
	if size <= 0 {
		return
	}
	got, ok := a.used[off]
	if !ok {
		panic(fmt.Sprintf("graphrt: arena release of offset %d with no live allocation (double free?)", off))
	}
	if got != size {
		panic(fmt.Sprintf("graphrt: arena release of offset %d with size %d, allocated %d", off, size, got))
	}
	delete(a.used, off)
	a.inUse -= size
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{off: off, len: size}
	// Merge with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].len == a.free[i+1].off {
		a.free[i].len += a.free[i+1].len
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].len == a.free[i].off {
		a.free[i-1].len += a.free[i].len
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}
