package graphrt

import (
	"context"
	"time"

	"mikpoly/internal/graphopt"
	"mikpoly/internal/nn"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// chainEntry caches one fusion chain's planning decision, keyed by the chain
// spec's content fingerprint. prog is nil when the cost model rejected fusion
// (or the fused plan failed): the member ops then stay on the per-op path,
// and the rejection itself is remembered so repeated graphs do not re-pay the
// comparison.
type chainEntry struct {
	prog *poly.Program
}

// chainCacheCap bounds the chain-plan memo (entries are small; the cap only
// guards against unbounded dynamic-shape churn).
const chainCacheCap = 1024

// fusionPlan is one execution's fusion decision: which ops execute as fused
// chain programs and which ops those programs absorb.
type fusionPlan struct {
	// head maps a chain head op index to its fused program.
	head map[int]*poly.Program
	// shapes maps a head to its member GEMM shapes, retained so the
	// recovery ladder's replan rung can dissolve the chain back into
	// per-op programs against a degraded view.
	shapes map[int][]tensor.GemmShape
	// skip marks member ops (later GEMMs and folded elementwise middles)
	// that execute inside their head's program and must not be scheduled,
	// ticketed, or charged separately.
	skip map[int]bool
}

// covered reports whether op i is part of a fused chain (head or member) and
// therefore must not be planned through the per-op pipeline.
func (f *fusionPlan) covered(i int) bool {
	return f != nil && (f.skip[i] || f.head[i] != nil)
}

// planFusion decides, before the plan-ahead pipeline starts, which detected
// chains execute fused. Fusion is attempted only on the pristine device view:
// fused candidates are priced against H, and under a degraded fingerprint the
// per-op path (which replans against H') is the conservative choice. Each
// chain's decision — fused program planned, per-op alternative priced, cost
// comparison — is memoized across executions by the chain spec fingerprint.
// Inline decision wall time is charged as planning stall: it sits on the
// critical path exactly like sequential-mode planning.
func (r *Runtime) planFusion(ctx context.Context, g nn.Graph, rep *Report) *fusionPlan {
	if _, fp, _ := r.healthView(); fp != "" {
		return nil
	}
	chains := graphopt.DetectChains(g, r.h)
	if len(chains) == 0 {
		return nil
	}
	f := &fusionPlan{
		head:   make(map[int]*poly.Program),
		shapes: make(map[int][]tensor.GemmShape),
		skip:   make(map[int]bool),
	}
	for _, ch := range chains {
		start := time.Now()
		entry := r.chainPlan(ctx, g, ch)
		wall := time.Since(start)
		rep.Plans++
		rep.Stalls++
		rep.PlanWall += wall
		rep.StallWall += wall
		if entry.prog == nil {
			rep.FusionRejected++
			continue
		}
		head := ch.Ops[0]
		f.head[head] = entry.prog
		for _, m := range ch.Ops {
			if g.Ops[m].Kind == nn.OpGemm {
				f.shapes[head] = append(f.shapes[head], g.Ops[m].Gemm)
			}
		}
		for _, m := range ch.Ops[1:] {
			f.skip[m] = true
		}
		rep.FusedChains++
		rep.FusedSavedBytes += ch.SavedBytes
	}
	if len(f.head) == 0 {
		return nil
	}
	return f
}

// chainPlan resolves one chain's fusion decision, memoized by spec
// fingerprint. A chain fuses only when the fused program's modeled cost beats
// the summed per-op alternative — the member GEMMs' planned programs plus the
// folded elementwise middles' bandwidth-bound cycles. Fused strip tasks trade
// output-tile parallelism for inter-stage traffic, so the comparison is
// genuinely two-sided: wide, compute-bound chains on a big device often lose.
// A degraded or failed member plan rejects fusion outright (never fuse on top
// of a fallback-quality estimate).
func (r *Runtime) chainPlan(ctx context.Context, g nn.Graph, ch graphopt.Chain) chainEntry {
	key := ch.Spec.String()
	r.mu.Lock()
	if e, ok := r.chainCache[key]; ok {
		r.mu.Unlock()
		return e
	}
	r.mu.Unlock()

	var entry chainEntry
	fused, _, err := r.comp.Planner().PlanChainContext(ctx, ch.Spec)
	if err == nil {
		unfused, ok := 0.0, true
		for _, m := range ch.Ops {
			op := g.Ops[m]
			if op.Kind == nn.OpOther {
				unfused += op.OtherCycles(r.h)
				continue
			}
			prog, degraded, perr := r.planFn(ctx, op.Gemm)
			if perr != nil || degraded || prog.EstimatedCost <= 0 {
				ok = false
				break
			}
			unfused += prog.EstimatedCost
		}
		if ok && fused.EstimatedCost < unfused {
			entry.prog = fused
		}
	}
	if ctx.Err() != nil {
		// Never memoize a decision aborted by cancellation or deadline.
		return entry
	}
	r.mu.Lock()
	if len(r.chainCache) >= chainCacheCap {
		r.chainCache = make(map[string]chainEntry)
	}
	r.chainCache[key] = entry
	r.mu.Unlock()
	return entry
}
