package graphrt

import (
	"context"
	"sync"
	"testing"
	"time"

	"mikpoly/internal/core"
	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// testRuntime builds a runtime over a fresh compiler (cold plan cache) that
// shares the test-sized micro-kernel library across tests.
func testRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	lib, err := core.SharedLibrary(hw.A100(), tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256})
	if err != nil {
		t.Fatal(err)
	}
	return New(core.NewCompilerFromLibrary(lib), cfg)
}

// fastRuntime swaps the simulator for a deterministic stub so tests that
// exercise scheduling and batching run instantly.
func fastRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	rt := testRuntime(t, cfg)
	rt.simFn = func(h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result {
		return sim.Result{Cycles: float64(len(tasks)), NumTasks: len(tasks)}
	}
	return rt
}

func checkWallInvariants(t *testing.T, rep Report) {
	t.Helper()
	if rep.PlanWall > rep.StallWall+rep.HiddenWall {
		t.Errorf("PlanWall %v > StallWall %v + HiddenWall %v", rep.PlanWall, rep.StallWall, rep.HiddenWall)
	}
	if rep.HiddenWall > rep.PlanWall {
		t.Errorf("HiddenWall %v > PlanWall %v", rep.HiddenWall, rep.PlanWall)
	}
	if rep.Stalls > rep.Plans {
		t.Errorf("Stalls %d > Plans %d", rep.Stalls, rep.Plans)
	}
}

func TestExecuteBasic(t *testing.T) {
	rt := testRuntime(t, Config{})
	g := nn.Transformer(nn.DistilBERTConfig, 32, 1)
	rep, err := rt.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != len(g.Ops) || rep.Stages != len(g.Ops) {
		t.Fatalf("ops=%d stages=%d, want both %d (chain graph)", rep.Ops, rep.Stages, len(g.Ops))
	}
	gemms := 0
	for _, op := range g.Ops {
		if op.Kind != nn.OpOther {
			gemms++
		}
	}
	if rep.Plans != gemms {
		t.Fatalf("plans=%d, want one per GEMM op (%d)", rep.Plans, gemms)
	}
	if rep.Stalls != rep.Plans {
		t.Fatalf("sequential mode: stalls=%d, want %d (every plan on the critical path)", rep.Stalls, rep.Plans)
	}
	if rep.HiddenWall != 0 {
		t.Fatalf("sequential mode hid %v of planning", rep.HiddenWall)
	}
	if rep.GemmCycles <= 0 || rep.OtherCycles <= 0 {
		t.Fatalf("implausible cycle split: gemm=%g other=%g", rep.GemmCycles, rep.OtherCycles)
	}
	if rep.Cycles != rep.GemmCycles+rep.OtherCycles+rep.SpillCycles {
		t.Fatalf("cycles %g != gemm %g + other %g + spill %g", rep.Cycles, rep.GemmCycles, rep.OtherCycles, rep.SpillCycles)
	}
	if rep.Mem.Buffers != gemms {
		t.Fatalf("mem planned %d buffers, want %d", rep.Mem.Buffers, gemms)
	}
	if rep.Degraded != 0 {
		t.Fatalf("healthy planning degraded %d ops", rep.Degraded)
	}
	checkWallInvariants(t, rep)

	st := rt.Stats()
	if st.Graphs != 1 || st.Plans != int64(rep.Plans) || st.Cycles != rep.Cycles {
		t.Fatalf("stats not aggregated: %+v", st)
	}
}

// TestPlanAheadMatchesSequential is acceptance criterion (a): the plan-ahead
// pipeline changes when programs are produced, never which programs — so an
// end-to-end Llama2 decode graph costs identical device cycles in both modes.
func TestPlanAheadMatchesSequential(t *testing.T) {
	g := nn.Llama2Decode(2, 300)
	seq, err := testRuntime(t, Config{}).Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	ahead, err := testRuntime(t, Config{PlanAhead: 4}).Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cycles != ahead.Cycles {
		t.Fatalf("cycles diverge: sequential %g, plan-ahead %g", seq.Cycles, ahead.Cycles)
	}
	if seq.GemmCycles != ahead.GemmCycles || seq.OtherCycles != ahead.OtherCycles {
		t.Fatalf("cycle split diverges: seq(%g,%g) ahead(%g,%g)",
			seq.GemmCycles, seq.OtherCycles, ahead.GemmCycles, ahead.OtherCycles)
	}
	if seq.Plans != ahead.Plans {
		t.Fatalf("plan count diverges: %d vs %d", seq.Plans, ahead.Plans)
	}
	checkWallInvariants(t, seq)
	checkWallInvariants(t, ahead)
}

// TestPlanAheadHidesPlanning is acceptance criterion (b): with a cold plan
// cache and planning cost made visible (a deterministic per-distinct-shape
// delay standing in for real polymerization search), the pipeline hides more
// than half of the online planning wall time, while sequential execution
// hides none.
func TestPlanAheadHidesPlanning(t *testing.T) {
	const coldPlanDelay = 30 * time.Millisecond
	slowPlans := func(rt *Runtime) {
		orig := rt.planFn
		var mu sync.Mutex
		seen := make(map[tensor.GemmShape]bool)
		rt.planFn = func(ctx context.Context, shape tensor.GemmShape) (*poly.Program, bool, error) {
			mu.Lock()
			first := !seen[shape]
			seen[shape] = true
			mu.Unlock()
			if first {
				time.Sleep(coldPlanDelay)
			}
			return orig(ctx, shape)
		}
	}
	g := nn.Llama2Decode(1, 200) // 4 distinct GEMM shapes, all cold

	seqRT := testRuntime(t, Config{})
	slowPlans(seqRT)
	seq, err := seqRT.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if seq.HiddenWall != 0 || seq.HiddenFraction() != 0 {
		t.Fatalf("sequential mode claims hidden planning: %v", seq.HiddenWall)
	}
	if seq.PlanWall < 4*coldPlanDelay {
		t.Fatalf("cold planning wall %v, want >= %v", seq.PlanWall, 4*coldPlanDelay)
	}

	aheadRT := testRuntime(t, Config{PlanAhead: 4})
	slowPlans(aheadRT)
	ahead, err := aheadRT.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if ahead.Cycles != seq.Cycles {
		t.Fatalf("cycles diverge under slow planning: %g vs %g", ahead.Cycles, seq.Cycles)
	}
	if frac := ahead.HiddenFraction(); frac <= 0.5 {
		t.Fatalf("plan-ahead hid %.0f%% of planning (plan=%v stall=%v hidden=%v), want > 50%%",
			frac*100, ahead.PlanWall, ahead.StallWall, ahead.HiddenWall)
	}
	if ahead.Stalls < 1 {
		t.Fatal("the first cold plan must register as a stall")
	}
	checkWallInvariants(t, ahead)
}

func TestPlanTimeoutDegrades(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2, PlanTimeout: -1})
	g := nn.Transformer(nn.DistilBERTConfig, 16, 1)
	rep, err := rt.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != rep.Plans {
		t.Fatalf("expired deadline degraded %d of %d plans, want all", rep.Degraded, rep.Plans)
	}
	if rep.Cycles <= 0 {
		t.Fatal("degraded execution still must report cycles")
	}
}

func TestExecuteRejectsBadGraphs(t *testing.T) {
	rt := fastRuntime(t, Config{})
	if _, err := rt.Execute(context.Background(), nn.Graph{Name: "empty"}); err == nil {
		t.Fatal("empty graph accepted")
	}
	cyc := nn.Graph{Name: "cyclic", Ops: []nn.Op{
		{Name: "a", Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 8, N: 8, K: 8}, Count: 1, Inputs: []int{1}},
		{Name: "b", Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 8, N: 8, K: 8}, Count: 1, Inputs: []int{0}},
	}}
	if _, err := rt.Execute(context.Background(), cyc); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestExecuteHonorsCancellation(t *testing.T) {
	rt := fastRuntime(t, Config{PlanAhead: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.Execute(ctx, nn.Llama2Decode(1, 64)); err == nil {
		t.Fatal("cancelled context must abort execution")
	}
}
