package graphrt

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// chainGraph builds an n-op GEMM chain (one op per stage). Shapes differ
// per stage so the stage-simulation memo never collapses two stages into one
// simulator call — scripted fault injection stays call-addressable.
func chainGraph(n int) nn.Graph {
	g := nn.Graph{Name: "chain"}
	for i := 0; i < n; i++ {
		g.Ops = append(g.Ops, nn.Op{
			Name: "op", Kind: nn.OpGemm,
			Gemm:  tensor.GemmShape{M: 96 + 16*i, N: 96, K: 64},
			Count: 1,
		})
	}
	return g
}

// faultScript is a deterministic simulator stub scripted per invocation:
// decide(call, v, salt) returns the faults to report; every call costs
// len(tasks) cycles so cycle accounting stays checkable.
type faultScript struct {
	mu     sync.Mutex
	calls  int
	decide func(call int, v health.View, salt uint64) sim.Result
}

func (f *faultScript) simFn(h hw.Hardware, v health.View, tasks []sim.Task, salt uint64) sim.Result {
	f.mu.Lock()
	call := f.calls
	f.calls++
	f.mu.Unlock()
	res := f.decide(call, v, salt)
	res.Cycles = float64(len(tasks))
	res.NumTasks = len(tasks)
	return res
}

func healthyRuntime(t *testing.T) (*Runtime, *health.Registry) {
	t.Helper()
	reg := health.NewRegistry(hw.A100().NumPEs, health.Config{})
	rt := testRuntime(t, Config{Health: reg})
	return rt, reg
}

// TestRecoveryRetryInPlaceClearsTransient: a one-off transient fault on the
// first execution of a stage is healed by rung 1 (retry with a fresh salt)
// and never surfaces to the caller.
func TestRecoveryRetryInPlaceClearsTransient(t *testing.T) {
	rt, _ := healthyRuntime(t)
	fs := &faultScript{decide: func(call int, v health.View, salt uint64) sim.Result {
		if call == 0 {
			return sim.Result{FaultedTasks: 2}
		}
		return sim.Result{}
	}}
	rt.SetSimulator(fs.simFn)

	rep, err := rt.Execute(context.Background(), chainGraph(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultedTasks != 0 {
		t.Fatalf("transient fault surfaced: %d faulted tasks", rep.FaultedTasks)
	}
	if rep.RecoveredStages != 1 || rep.RecoveredFaults != 2 {
		t.Fatalf("recovered stages=%d faults=%d, want 1/2", rep.RecoveredStages, rep.RecoveredFaults)
	}
	st := rt.Stats()
	if st.RetriedStages != 1 || st.MigratedStages != 0 || st.ReplannedStages != 0 {
		t.Fatalf("ladder stats %+v, want exactly one in-place retry", st)
	}
}

// TestRecoveryMigratesOntoDegradedView: a PE death persists across the
// in-place retry, so rung 2 regenerates the stage's tasks on the survivor
// view (the dead PE quarantined by the registry) and succeeds. The healed
// stage must run on NumPEs-1 hardware.
func TestRecoveryMigratesOntoDegradedView(t *testing.T) {
	rt, reg := healthyRuntime(t)
	base := rt.Hardware().NumPEs
	var migratedPEs int
	var mu sync.Mutex
	fs := &faultScript{decide: func(call int, v health.View, salt uint64) sim.Result {
		switch call {
		case 0: // initial run: PE 5 dies mid-stage
			return sim.Result{FaultedTasks: 1, DeadPEs: []int{5}}
		case 1: // rung 1 retry: still dirty (the death already quarantined
			// PE 5, but script the retry dirty to force rung 2)
			return sim.Result{FaultedTasks: 1}
		default:
			mu.Lock()
			migratedPEs = v.NumPEs - len(v.Quarantined)
			mu.Unlock()
			return sim.Result{}
		}
	}}
	rt.SetSimulator(fs.simFn)

	rep, err := rt.Execute(context.Background(), chainGraph(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultedTasks != 0 || rep.RecoveredStages != 1 {
		t.Fatalf("report %+v, want clean with one recovered stage", rep)
	}
	if st := rt.Stats(); st.MigratedStages != 1 {
		t.Fatalf("ladder stats %+v, want one migrated stage", st)
	}
	if got := reg.View().Quarantined; len(got) != 1 || got[0] != 5 {
		t.Fatalf("quarantined %v, want [5]", got)
	}
	if migratedPEs != base-1 {
		t.Fatalf("migrated run saw %d live PEs, want %d", migratedPEs, base-1)
	}
}

// TestRecoveryReplansOnDegradedView: rungs 1 and 2 stay dirty, so rung 3
// replans the stage's ops against H' — the replanned program must target the
// shrunken hardware, and the replan is visible in the report's plan counters.
func TestRecoveryReplansOnDegradedView(t *testing.T) {
	rt, reg := healthyRuntime(t)
	base := rt.Hardware().NumPEs
	fs := &faultScript{decide: func(call int, v health.View, salt uint64) sim.Result {
		if call < 3 { // initial + rung1 + rung2 all dirty
			return sim.Result{FaultedTasks: 1, DeadPEs: []int{7}}
		}
		return sim.Result{}
	}}
	rt.SetSimulator(fs.simFn)

	g := chainGraph(1)
	rep, err := rt.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultedTasks != 0 || rep.RecoveredStages != 1 {
		t.Fatalf("report %+v, want clean with one recovered stage", rep)
	}
	if st := rt.Stats(); st.ReplannedStages != 1 {
		t.Fatalf("ladder stats %+v, want one replanned stage", st)
	}
	// 1 plan for the initial execution + 1 for the rung-3 replan.
	if rep.Plans != 2 {
		t.Fatalf("plans=%d, want 2 (initial + recovery replan)", rep.Plans)
	}
	// The degraded program must be cached under the degraded fingerprint,
	// isolated from the healthy entry.
	fp := reg.View().Fingerprint()
	if fp == "" {
		t.Fatal("registry still pristine after repeated PE death")
	}
	c := rt.Compiler()
	if !c.Cached(g.Ops[0].Gemm, fp) {
		t.Fatalf("replanned program not cached under fp %q", fp)
	}
	prog, err := c.PlanContext(context.Background(), g.Ops[0].Gemm)
	if err != nil {
		t.Fatal(err)
	}
	if prog.HW.NumPEs >= base {
		t.Fatalf("degraded plan targets %d PEs, want < %d", prog.HW.NumPEs, base)
	}
}

// TestRecoveryExhaustionReturnsTypedError: a stage that stays dirty through
// the whole ladder fails with a StageError wrapping ErrStageUnrecoverable —
// never a panic, never a silent wrong answer.
func TestRecoveryExhaustionReturnsTypedError(t *testing.T) {
	rt, _ := healthyRuntime(t)
	fs := &faultScript{decide: func(call int, v health.View, salt uint64) sim.Result {
		return sim.Result{FaultedTasks: 3, DeadPEs: []int{2}}
	}}
	rt.SetSimulator(fs.simFn)

	_, err := rt.Execute(context.Background(), chainGraph(2))
	if err == nil {
		t.Fatal("permanently dirty stage must fail")
	}
	if !errors.Is(err, ErrStageUnrecoverable) {
		t.Fatalf("error %v does not wrap ErrStageUnrecoverable", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *StageError", err)
	}
	if se.Attempts != 4 {
		t.Fatalf("attempts=%d, want MaxStageAttempts default 4", se.Attempts)
	}
	if len(se.Quarantined) == 0 {
		t.Fatal("StageError carries no quarantine forensics")
	}
	if !strings.Contains(se.Error(), "stage 0") {
		t.Fatalf("error text %q names no stage", se.Error())
	}
	if st := rt.Stats(); st.UnrecoverableStages != 1 {
		t.Fatalf("ladder stats %+v, want one unrecoverable stage", st)
	}
}

// TestRecoveryFaultDuringFinalStage: edge case — the persistent fault lands
// on the last stage of the graph, after every other stage completed. The
// final stage must be recovered in isolation (earlier stages are not
// re-executed) and the report must stay internally consistent.
func TestRecoveryFaultDuringFinalStage(t *testing.T) {
	rt, _ := healthyRuntime(t)
	const nOps = 4
	var faultedCall int
	fs := &faultScript{}
	fs.decide = func(call int, v health.View, salt uint64) sim.Result {
		if call == nOps-1 { // the final stage's first execution
			faultedCall = call
			return sim.Result{FaultedTasks: 1, DeadPEs: []int{3}}
		}
		return sim.Result{}
	}
	rt.SetSimulator(fs.simFn)

	rep, err := rt.Execute(context.Background(), chainGraph(nOps))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultedTasks != 0 || rep.RecoveredStages != 1 {
		t.Fatalf("report %+v, want clean with one recovered stage", rep)
	}
	// nOps stage executions + exactly 1 recovery re-execution: recovery
	// re-ran only the final stage, not the whole graph.
	fs.mu.Lock()
	calls := fs.calls
	fs.mu.Unlock()
	if calls != nOps+1 {
		t.Fatalf("simulator ran %d times, want %d (no earlier stage re-executed)", calls, nOps+1)
	}
	if faultedCall != nOps-1 {
		t.Fatalf("fault injected at call %d, script broken", faultedCall)
	}
}

// TestRecoveryWithMemoryPlannerReuse: edge case — the faulted stage's output
// buffer lives in a memory region the planner later reuses for another
// tensor. Memory planning is a pre-execution pass over the graph, so stage
// recovery must neither disturb the plan nor corrupt accounting: the healed
// run's memory report must be identical to a fault-free run of the same
// graph.
func TestRecoveryWithMemoryPlannerReuse(t *testing.T) {
	// A chain long enough that early outputs die and their regions are
	// reused by later buffers (liveness-based first-fit).
	g := chainGraph(6)

	clean := func() Report {
		rt, _ := healthyRuntime(t)
		fs := &faultScript{decide: func(int, health.View, uint64) sim.Result { return sim.Result{} }}
		rt.SetSimulator(fs.simFn)
		rep, err := rt.Execute(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}()

	rt, _ := healthyRuntime(t)
	fs := &faultScript{decide: func(call int, v health.View, salt uint64) sim.Result {
		if call == 1 { // stage 1: its output region is reused downstream
			return sim.Result{FaultedTasks: 1, DeadPEs: []int{9}}
		}
		return sim.Result{}
	}}
	rt.SetSimulator(fs.simFn)
	rep, err := rt.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveredStages != 1 || rep.FaultedTasks != 0 {
		t.Fatalf("report %+v, want one recovered stage and no surfaced faults", rep)
	}
	if rep.Mem != clean.Mem {
		t.Fatalf("memory plan diverged under recovery:\n  healed %+v\n  clean  %+v", rep.Mem, clean.Mem)
	}
	if rep.Mem.PeakBytes >= rep.Mem.WorkingSetBytes && rep.Mem.Buffers > 1 {
		// Region reuse is what this edge case is about: peak < working
		// set proves a freed region was actually recycled.
		t.Logf("note: no reuse detected (peak=%d ws=%d)", rep.Mem.PeakBytes, rep.Mem.WorkingSetBytes)
	}
}

// TestRecoveryWithDecodeBatchingInFlight: edge case — persistent faults
// strike while the continuous batcher has mixed-KV-bucket decode requests in
// flight. Both requests must complete cleanly (the ladder heals the faulted
// step graphs); nothing may deadlock or panic.
func TestRecoveryWithDecodeBatchingInFlight(t *testing.T) {
	rt, reg := healthyRuntime(t)
	var mu sync.Mutex
	faulted := 0
	fs := &faultScript{}
	fs.decide = func(call int, v health.View, salt uint64) sim.Result {
		mu.Lock()
		defer mu.Unlock()
		// The first execution under the pristine view faults with a dying
		// PE (index 4 in base numbering — faulting only while pristine
		// keeps survivor renumbering out of the script); recovery attempts
		// (salt high bits set) and later steps run clean.
		if faulted < 1 && salt>>32 == 0 && len(v.Quarantined) == 0 {
			faulted++
			return sim.Result{FaultedTasks: 1, DeadPEs: []int{4}}
		}
		return sim.Result{}
	}
	rt.SetSimulator(fs.simFn)

	b := NewDecodeBatcher(rt, BatchConfig{})
	b.Start()
	defer b.Stop()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	res := make([]DecodeResult, 2)
	// KV lengths in different buckets (quantum 64): 60 -> 64, 700 -> 704.
	for i, kv := range []int{60, 700} {
		wg.Add(1)
		go func(i, kv int) {
			defer wg.Done()
			res[i], errs[i] = b.Submit(context.Background(), DecodeRequest{KVLen: kv, Tokens: 3})
		}(i, kv)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		if res[i].Tokens != 3 {
			t.Fatalf("request %d decoded %d tokens, want 3", i, res[i].Tokens)
		}
		if res[i].FaultedTasks != 0 {
			t.Fatalf("request %d saw %d unhealed faults", i, res[i].FaultedTasks)
		}
	}
	if st := rt.Stats(); st.RetriedStages+st.MigratedStages+st.ReplannedStages == 0 {
		t.Fatalf("no recovery recorded despite injected faults: %+v", st)
	}
	if got := reg.View().Quarantined; len(got) != 1 || got[0] != 4 {
		t.Fatalf("quarantined %v, want [4]", got)
	}
}
