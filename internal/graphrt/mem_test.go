package graphrt

import (
	"context"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/tensor"
)

// memOp builds a 16×16 GEMM op (512 output bytes at OutputBytes=2) with
// explicit dependency edges.
func memOp(name string, inputs []int) nn.Op {
	return nn.Op{
		Name: name, Kind: nn.OpGemm,
		Gemm:   tensor.GemmShape{M: 16, N: 16, K: 8},
		Count:  1,
		Inputs: inputs,
	}
}

func otherOp(name string, inputs []int) nn.Op {
	return nn.Op{Name: name, Kind: nn.OpOther, OtherBytes: 64, Count: 1, Inputs: inputs}
}

func memPlan(t *testing.T, g nn.Graph, capacity int64) MemReport {
	t.Helper()
	stages, err := g.Stages()
	if err != nil {
		t.Fatal(err)
	}
	h := hw.Hardware{OutputBytes: 2, GlobalMemBytes: capacity}
	return planMemory(g, stages, h)
}

func TestPlanMemoryChain(t *testing.T) {
	// a → b → c: at any stage at most two 512-byte buffers are live
	// (producer output + consumer output).
	g := nn.Graph{Name: "chain", Ops: []nn.Op{
		memOp("a", []int{}), memOp("b", []int{0}), memOp("c", []int{1}),
	}}

	rep := memPlan(t, g, 0) // unbounded
	if rep.Buffers != 3 || rep.SpilledBuffers != 0 || rep.SpillBytes != 0 {
		t.Fatalf("unbounded plan spilled: %+v", rep)
	}
	if rep.WorkingSetBytes != 1024 {
		t.Fatalf("working set %d, want 1024", rep.WorkingSetBytes)
	}
	// Freed regions are reused: the peak footprint equals the working set,
	// not the 1536 bytes of all buffers.
	if rep.PeakBytes != 1024 {
		t.Fatalf("peak %d, want 1024 (a's region reused for c)", rep.PeakBytes)
	}

	// Capacity for exactly the working set: still no spills.
	if rep := memPlan(t, g, 1024); rep.SpilledBuffers != 0 {
		t.Fatalf("plan spilled at exact working-set capacity: %+v", rep)
	}

	// Room for one buffer only: b cannot fit while a is live, and pays its
	// size once to store plus once for its single consumer to reload.
	rep = memPlan(t, g, 512)
	if rep.SpilledBuffers == 0 {
		t.Fatalf("undersized capacity did not spill: %+v", rep)
	}
	if rep.SpillBytes != 512*2 {
		t.Fatalf("spill bytes %g, want 1024 (512 × (1 store + 1 reload))", rep.SpillBytes)
	}
}

func TestPlanMemoryOtherForwarding(t *testing.T) {
	// a → other → b: the elementwise pass forwards a's tensor in place, so
	// a's buffer stays live until b consumes it (stage 2) and counts one
	// read through the forwarding chain.
	g := nn.Graph{Name: "forward", Ops: []nn.Op{
		memOp("a", []int{}), otherOp("norm", []int{0}), memOp("b", []int{1}),
	}}
	rep := memPlan(t, g, 512)
	if rep.Buffers != 2 {
		t.Fatalf("buffers %d, want 2 (OpOther owns no buffer)", rep.Buffers)
	}
	// a lives through stage 2, so b (a sink, no reloads) cannot fit
	// alongside it and pays its one store.
	if rep.SpilledBuffers != 1 || rep.SpillBytes != 512 {
		t.Fatalf("forwarded liveness not honored: %+v", rep)
	}
}

func TestPlanMemoryDiamond(t *testing.T) {
	// a → (b, c) → d: b and c share a stage; working set peaks at a+b+c.
	g := nn.Graph{Name: "diamond", Ops: []nn.Op{
		memOp("a", []int{}),
		memOp("b", []int{0}),
		memOp("c", []int{0}),
		memOp("d", []int{1, 2}),
	}}
	rep := memPlan(t, g, 0)
	if rep.WorkingSetBytes != 3*512 {
		t.Fatalf("diamond working set %d, want %d", rep.WorkingSetBytes, 3*512)
	}
	if rep.SpilledBuffers != 0 {
		t.Fatalf("unbounded diamond spilled: %+v", rep)
	}
}

func TestExecuteChargesSpillTraffic(t *testing.T) {
	rt := fastRuntime(t, Config{})
	rt.h.GlobalMemBytes = 64 // far below any real working set
	rep, err := rt.Execute(context.Background(), nn.Llama2Decode(1, 64))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mem.SpilledBuffers == 0 || rep.Mem.SpillBytes <= 0 {
		t.Fatalf("tiny device memory produced no spills: %+v", rep.Mem)
	}
	if rep.SpillCycles <= 0 {
		t.Fatal("spill traffic not charged as cycles")
	}
	if rep.Cycles != rep.GemmCycles+rep.OtherCycles+rep.SpillCycles {
		t.Fatal("spill cycles missing from the end-to-end total")
	}
}

func TestArenaFirstFitAndMerge(t *testing.T) {
	a := newArena(100)
	off1, ok := a.alloc(40)
	if !ok || off1 != 0 {
		t.Fatalf("first alloc at %d ok=%v", off1, ok)
	}
	off2, ok := a.alloc(40)
	if !ok || off2 != 40 {
		t.Fatalf("second alloc at %d ok=%v", off2, ok)
	}
	if _, ok := a.alloc(40); ok {
		t.Fatal("overcommit accepted")
	}
	// Free the first span; first-fit reuses the low region.
	a.release(off1, 40)
	off3, ok := a.alloc(30)
	if !ok || off3 != 0 {
		t.Fatalf("reuse alloc at %d ok=%v, want offset 0", off3, ok)
	}
	// Free everything; neighbor merging must restore one span so a
	// full-capacity request fits again.
	a.release(off3, 30)
	a.release(off2, 40)
	if a.peak != 80 {
		t.Fatalf("peak %d, want 80", a.peak)
	}
	if _, ok := a.alloc(100); !ok {
		t.Fatal("freed spans did not merge back to full capacity")
	}
}

// mustPanic asserts fn panics; the arena's accounting guards must fail loudly
// rather than corrupt the free list.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestArenaReleaseGuards(t *testing.T) {
	a := newArena(100)
	off, ok := a.alloc(40)
	if !ok {
		t.Fatal("alloc failed")
	}
	if a.inUse != 40 {
		t.Fatalf("inUse %d after alloc, want 40", a.inUse)
	}
	mustPanic(t, "release with wrong size", func() { a.release(off, 30) })
	mustPanic(t, "release of unallocated offset", func() { a.release(off+1, 39) })
	a.release(off, 40)
	if a.inUse != 0 {
		t.Fatalf("inUse %d after release, want 0", a.inUse)
	}
	// The double free is the bug this guard exists for: before it, the
	// second release would insert an overlapping span and inUse (had it
	// existed) would have gone negative.
	mustPanic(t, "double free", func() { a.release(off, 40) })
	if a.inUse != 0 {
		t.Fatalf("inUse %d went negative or drifted after guarded double free", a.inUse)
	}
}

func TestSpillChargedExactlyOnce(t *testing.T) {
	// a → b → c → d with room for exactly one buffer. b spills at birth
	// (a is resident) and is charged 512 × (1 store + 1 reload) = 1024;
	// d spills at birth (c is resident) and, as a graph output with no
	// consuming stage, is charged its 512-byte store only. The regression:
	// b dies at stage 2 and the free sweep must not charge its spill
	// traffic a second time (nor release memory it never held).
	g := nn.Graph{Name: "spill-once", Ops: []nn.Op{
		memOp("a", []int{}), memOp("b", []int{0}),
		memOp("c", []int{1}), memOp("d", []int{2}),
	}}
	rep := memPlan(t, g, 512)
	if rep.SpilledBuffers != 2 {
		t.Fatalf("spilled buffers %d, want 2: %+v", rep.SpilledBuffers, rep)
	}
	if want := float64(512*2 + 512); rep.SpillBytes != want {
		t.Fatalf("spill bytes %g, want %g (each spill charged exactly once)", rep.SpillBytes, want)
	}
	// Replanning the same graph is deterministic — a double charge or a
	// corrupted free list would show up as drift between runs.
	if again := memPlan(t, g, 512); again != rep {
		t.Fatalf("replan drifted: %+v vs %+v", again, rep)
	}
}
