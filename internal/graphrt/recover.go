package graphrt

import (
	"context"
	"errors"
	"fmt"

	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// ErrStageUnrecoverable marks a stage that exhausted the recovery ladder.
// Callers match it with errors.Is; the wrapping StageError carries the
// forensics.
var ErrStageUnrecoverable = errors.New("graphrt: stage unrecoverable")

// StageError is the typed failure of one graph stage after bounded
// escalation — the self-healing contract's "correct result or typed error"
// terminal state.
type StageError struct {
	Graph    string
	Stage    int
	Attempts int
	// Quarantined is the quarantined-PE set at failure time, for the
	// operator's postmortem.
	Quarantined []int
	Err         error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("graphrt: graph %s stage %d failed after %d attempts (quarantined PEs %v): %v",
		e.Graph, e.Stage, e.Attempts, e.Quarantined, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// stageOp is one GEMM op of a stage, retained so recovery can regenerate or
// replan the stage's task batch.
type stageOp struct {
	shape tensor.GemmShape
	count int
	prog  *poly.Program
	// chainShapes, when non-nil, marks prog as a fused chain program and
	// lists its member GEMM shapes: the replan rung dissolves the chain
	// back into per-op programs against the degraded view (fused plans are
	// only priced on the pristine device; under faults, correctness beats
	// the traffic saving).
	chainShapes []tensor.GemmShape
}

// recoverySalt derives the fault-injection salt for a recovery attempt: the
// high bits carry the attempt so recovery re-executions draw a fresh
// transient-fault stream (and a fresh memo key) without colliding with the
// serve layer's low-bit retry salts.
func recoverySalt(salt uint64, attempt int) uint64 {
	return salt + uint64(attempt)<<32
}

// observe feeds one stage outcome into the health registry, if configured.
func (r *Runtime) observe(v health.View, res sim.Result) {
	if r.cfg.Health != nil {
		r.cfg.Health.ObserveResult(v, res)
	}
}

// recoverStage walks the bounded escalation ladder for a stage whose
// execution came back dirty (faulted or stranded tasks):
//
//	rung 1 — retry in place: identical task batch, fresh salt. Clears
//	         transient faults at the cost of one stage re-execution.
//	rung 2 — migrate: regenerate the same programs' tasks on the *current*
//	         degraded view H' (the initial failure's observation may have
//	         quarantined a PE) and run on the survivors.
//	rung 3 — replan: re-derive each op's program against H' through the
//	         compiler (hitting the (shape, fingerprint)-keyed cache), then
//	         run the new program — the paper's Cost(S, H') argument made
//	         operational.
//
// Every attempt's outcome feeds the health registry, every dirty attempt's
// cycles are charged to the report (device time really elapsed), and the
// ladder gives up with a typed *StageError after cfg.MaxStageAttempts total
// executions. On success the healed result is returned; its cycles are
// charged by the caller.
func (r *Runtime) recoverStage(ctx context.Context, g nn.Graph, si int, ops []stageOp,
	stageKey string, tasks []sim.Task, salt uint64, first sim.Result, rep *Report) (sim.Result, error) {

	res := first
	for attempt := 1; ; attempt++ {
		// Charge the dirty attempt: its device cycles elapsed, and its
		// faults were absorbed by the ladder rather than surfaced.
		rep.GemmCycles += res.Cycles
		rep.RecoveredFaults += res.FaultedTasks + res.StrandedTasks

		if attempt >= r.cfg.MaxStageAttempts {
			r.mu.Lock()
			r.agg.UnrecoverableStages++
			r.mu.Unlock()
			rep.FaultedTasks += res.FaultedTasks + res.StrandedTasks
			var quarantined []int
			if r.cfg.Health != nil {
				quarantined = r.cfg.Health.View().Quarantined
			}
			return res, &StageError{
				Graph: g.Name, Stage: si, Attempts: attempt,
				Quarantined: quarantined, Err: ErrStageUnrecoverable,
			}
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}

		v, fp, hEff := r.healthView()
		key := stageKey
		runTasks := tasks
		switch {
		case attempt == 1:
			// Retry in place: same batch, fresh salt.
		case attempt == 2:
			// Migrate: same programs, current survivor set.
			runTasks = regenTasks(ops, hEff)
		default:
			// Replan every op against the degraded view. The compiler's
			// cache key carries fp, so this never dredges up a
			// healthy-mode program — and a repeat failure re-plans
			// against the then-current view.
			newOps := make([]stageOp, 0, len(ops))
			key = ""
			for _, op := range ops {
				// A fused chain dissolves into its member GEMMs here:
				// each member replans individually against H'.
				shapes := op.chainShapes
				if shapes == nil {
					shapes = []tensor.GemmShape{op.shape}
				}
				for _, s := range shapes {
					prog, degraded, err := r.planFn(ctx, s)
					if err != nil {
						return res, &StageError{
							Graph: g.Name, Stage: si, Attempts: attempt,
							Quarantined: v.Quarantined, Err: err,
						}
					}
					rep.Plans++
					if degraded {
						rep.Degraded++
					}
					newOps = append(newOps, stageOp{shape: s, count: op.count, prog: prog})
					key += progKey(prog, op.count)
				}
			}
			ops = newOps
			runTasks = regenTasks(ops, hEff)
		}

		res = r.runStageCached(ctx, si, key, fp, hEff, v, runTasks, recoverySalt(salt, attempt))
		r.observe(v, res)
		if res.Clean() {
			rep.RecoveredStages++
			r.mu.Lock()
			switch {
			case attempt == 1:
				r.agg.RetriedStages++
			case attempt == 2:
				r.agg.MigratedStages++
			default:
				r.agg.ReplannedStages++
			}
			r.mu.Unlock()
			return res, nil
		}
	}
}

// regenTasks materializes the stage's task batch from its programs on the
// given hardware.
func regenTasks(ops []stageOp, h hw.Hardware) []sim.Task {
	var tasks []sim.Task
	for _, op := range ops {
		batch := op.prog.Tasks(h)
		for i := 0; i < op.count; i++ {
			tasks = append(tasks, batch...)
		}
	}
	return tasks
}
