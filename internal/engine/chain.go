package engine

import (
	"fmt"

	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// ChainStage supplies one GEMM stage's operands for a fused-chain execution:
// the right-hand matrix plus an optional per-column bias folded into the
// stage's epilogue. The stage's activation comes from the program's chain IR
// (poly.FusedStage.Epilogue), so the numerics executed always match what the
// planner priced.
type ChainStage struct {
	// B is the stage's right-hand operand (K_s × N_s).
	B *tensor.Matrix
	// Bias, when non-nil, is added per output column (length N_s) before
	// the stage's activation.
	Bias []float32
}

// activationFor maps the planner's epilogue kind onto the engine activation.
func activationFor(e poly.EpilogueKind) (Activation, error) {
	switch e {
	case poly.EpNone:
		return ActNone, nil
	case poly.EpReLU:
		return ActReLU, nil
	case poly.EpGELU:
		return ActGELU, nil
	default:
		return ActNone, fmt.Errorf("engine: unknown epilogue kind %v", e)
	}
}

// applyEpilogue runs the epilogue in place over a matrix.
func applyEpilogue(m *tensor.Matrix, ep Epilogue) {
	if ep.Bias == nil && ep.Act == ActNone {
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		if ep.Bias != nil {
			for j := range row {
				row[j] += ep.Bias[j]
			}
		}
		if ep.Act != ActNone {
			for j := range row {
				row[j] = ep.Act.Apply(row[j])
			}
		}
	}
}

// ExecuteChain runs a fused multi-stage program (poly.PatternChain) on
// concrete operands: the input A feeds stage 0, each stage's (epilogued)
// output feeds the next stage's left operand, and the final stage's output
// is the result. Execution is strip-banded exactly like the planned program:
// each region's row band runs every stage back to back with the
// intermediates held in pooled scratch, never written to the output until
// the final stage — the numerical mirror of keeping them in M_local.
//
// The result is bitwise identical to executing the stages separately
// through Execute/ExecuteFused: every output element's reduction is
// accumulated strictly in ascending-K order regardless of tiling (the
// padded-zero contributions are skipped, not added), rows are independent,
// and the epilogue applies the same scalar function either way. The
// conformance suite asserts this equality across the shape set.
func ExecuteChain(prog *poly.Program, a *tensor.Matrix, stages []ChainStage) (*tensor.Matrix, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if prog.Pattern != poly.PatternChain {
		return nil, fmt.Errorf("engine: program pattern %s is not a fused chain", prog.Pattern)
	}
	chain := prog.Regions[0].Chain
	nStages := len(chain) + 1
	if len(stages) != nStages {
		return nil, fmt.Errorf("engine: %d stage operands for a %d-stage chain", len(stages), nStages)
	}
	s0 := prog.Shape
	if a.Rows != s0.M || a.Cols != chain[0].K {
		return nil, fmt.Errorf("engine: A is %dx%d, want %dx%d", a.Rows, a.Cols, s0.M, chain[0].K)
	}
	dims := func(s int) (n, k int) {
		if s < len(chain) {
			return chain[s].N, chain[s].K
		}
		return s0.N, s0.K
	}
	acts := make([]Activation, nStages)
	for s := 0; s < nStages; s++ {
		n, k := dims(s)
		if stages[s].B == nil || stages[s].B.Rows != k || stages[s].B.Cols != n {
			return nil, fmt.Errorf("engine: stage %d operand B must be %dx%d", s, k, n)
		}
		if stages[s].Bias != nil && len(stages[s].Bias) != n {
			return nil, fmt.Errorf("engine: stage %d bias length %d, want %d", s, len(stages[s].Bias), n)
		}
		ep := poly.EpNone
		if s < len(chain) {
			ep = chain[s].Epilogue
		}
		act, err := activationFor(ep)
		if err != nil {
			return nil, err
		}
		acts[s] = act
	}

	c := tensor.NewMatrix(s0.M, s0.N)
	var ws scratch
	defer ws.release()
	for _, r := range prog.Regions {
		cur := a.View(r.M0, 0, r.M, a.Cols)
		for s := 0; s < nStages; s++ {
			n, k := dims(s)
			var dst *tensor.Matrix
			if s == nStages-1 {
				dst = c.View(r.M0, 0, r.M, r.N)
			} else {
				dst = ws.matrix(r.M, n)
			}
			executeRegion(poly.Region{M: r.M, N: n, K: k, Kern: r.Kern}, cur, stages[s].B, dst, &ws)
			applyEpilogue(dst, Epilogue{Bias: stages[s].Bias, Act: acts[s]})
			cur = dst
		}
	}
	return c, nil
}
