package engine

// Fused-chain conformance: executing a GEMM→epilogue→GEMM chain through one
// fused program must be bitwise identical to executing the stages separately
// — the property that lets the planner choose fused vs unfused purely on
// cost, never on numerics.

import (
	"testing"

	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

type chainConfCase struct {
	name   string
	m      int
	stages []poly.ChainStageSpec
}

func chainConfCases(m int) []chainConfCase {
	sh := func(n, k int) tensor.GemmShape { return tensor.GemmShape{M: m, N: n, K: k} }
	return []chainConfCase{
		{"relu-2stage", m, []poly.ChainStageSpec{
			{Shape: sh(48, 64), Epilogue: poly.EpReLU}, {Shape: sh(32, 48)}}},
		{"gelu-2stage", m, []poly.ChainStageSpec{
			{Shape: sh(56, 40), Epilogue: poly.EpGELU}, {Shape: sh(24, 56)}}},
		{"plain-2stage", m, []poly.ChainStageSpec{
			{Shape: sh(64, 96), Epilogue: poly.EpNone}, {Shape: sh(48, 64)}}},
		{"mixed-3stage", m, []poly.ChainStageSpec{
			{Shape: sh(40, 72), Epilogue: poly.EpReLU},
			{Shape: sh(64, 40), Epilogue: poly.EpGELU},
			{Shape: sh(16, 64)}}},
	}
}

func actFor(e poly.EpilogueKind) Activation {
	switch e {
	case poly.EpReLU:
		return ActReLU
	case poly.EpGELU:
		return ActGELU
	default:
		return ActNone
	}
}

func TestExecuteChainBitwiseEqualsUnfused(t *testing.T) {
	pl := planner(t)
	// Ragged and aligned row counts, including one below a full tile.
	for _, m := range []int{96, 117, 13} {
		for _, c := range chainConfCases(m) {
			t.Run(c.name, func(t *testing.T) {
				spec := poly.ChainSpec{Stages: c.stages}
				prog, _, err := pl.PlanChain(spec)
				if err != nil {
					t.Fatalf("PlanChain: %v", err)
				}

				rng := uint32(12345 + uint32(m))
				fill := func(mat *tensor.Matrix) {
					for i := range mat.Data {
						rng = rng*1664525 + 1013904223
						mat.Data[i] = float32(int32(rng>>16)%512-256) / 128
					}
				}
				a := tensor.NewMatrix(m, c.stages[0].Shape.K)
				fill(a)
				stages := make([]ChainStage, len(c.stages))
				for i, st := range c.stages {
					b := tensor.NewMatrix(st.Shape.K, st.Shape.N)
					fill(b)
					bias := make([]float32, st.Shape.N)
					for j := range bias {
						rng = rng*1664525 + 1013904223
						bias[j] = float32(int32(rng>>16)%64-32) / 64
					}
					stages[i] = ChainStage{B: b, Bias: bias}
				}

				fused, err := ExecuteChain(prog, a, stages)
				if err != nil {
					t.Fatalf("ExecuteChain: %v", err)
				}

				cur := a
				for i, st := range c.stages {
					p, _, err := pl.Plan(st.Shape)
					if err != nil {
						t.Fatalf("Plan stage %d: %v", i, err)
					}
					cur, err = ExecuteFused(p, cur, stages[i].B,
						Epilogue{Bias: stages[i].Bias, Act: actFor(st.Epilogue)})
					if err != nil {
						t.Fatalf("ExecuteFused stage %d: %v", i, err)
					}
				}

				if fused.Rows != cur.Rows || fused.Cols != cur.Cols {
					t.Fatalf("shape %dx%d vs %dx%d", fused.Rows, fused.Cols, cur.Rows, cur.Cols)
				}
				for i := 0; i < fused.Rows; i++ {
					fr, ur := fused.Row(i), cur.Row(i)
					for j := range fr {
						if fr[j] != ur[j] {
							t.Fatalf("m=%d row %d col %d: fused %x != unfused %x",
								m, i, j, fr[j], ur[j])
						}
					}
				}
			})
		}
	}
}

func TestExecuteChainRejectsBadInputs(t *testing.T) {
	pl := planner(t)
	spec := poly.ChainSpec{Stages: []poly.ChainStageSpec{
		{Shape: tensor.GemmShape{M: 64, N: 32, K: 48}, Epilogue: poly.EpReLU},
		{Shape: tensor.GemmShape{M: 64, N: 16, K: 32}},
	}}
	prog, _, err := pl.PlanChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.NewMatrix(64, 48)
	b0 := tensor.NewMatrix(48, 32)
	b1 := tensor.NewMatrix(32, 16)
	ok := []ChainStage{{B: b0}, {B: b1}}

	if _, err := ExecuteChain(prog, tensor.NewMatrix(64, 40), ok); err == nil {
		t.Fatal("wrong A accepted")
	}
	if _, err := ExecuteChain(prog, a, ok[:1]); err == nil {
		t.Fatal("missing stage operand accepted")
	}
	if _, err := ExecuteChain(prog, a, []ChainStage{{B: b0}, {B: tensor.NewMatrix(32, 24)}}); err == nil {
		t.Fatal("wrong stage B accepted")
	}
	if _, err := ExecuteChain(prog, a, []ChainStage{{B: b0, Bias: make([]float32, 7)}, {B: b1}}); err == nil {
		t.Fatal("wrong bias length accepted")
	}
	plain, _, err := pl.Plan(tensor.GemmShape{M: 64, N: 16, K: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteChain(plain, a, ok); err == nil {
		t.Fatal("non-chain program accepted")
	}
}
