package engine

import (
	"fmt"
	"math"

	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// Activation selects the nonlinearity a fused epilogue applies.
type Activation int

const (
	// ActNone applies no nonlinearity.
	ActNone Activation = iota
	// ActReLU applies max(0, x).
	ActReLU
	// ActGELU applies the tanh-approximated Gaussian error linear unit.
	ActGELU
)

func (a Activation) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActReLU:
		return "relu"
	case ActGELU:
		return "gelu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Apply evaluates the activation on one value.
func (a Activation) Apply(x float32) float32 {
	switch a {
	case ActReLU:
		if x < 0 {
			return 0
		}
		return x
	case ActGELU:
		// tanh approximation: 0.5x(1 + tanh(√(2/π)(x + 0.044715x³)))
		v := float64(x)
		return float32(0.5 * v * (1 + math.Tanh(0.7978845608028654*(v+0.044715*v*v*v))))
	default:
		return x
	}
}

// Epilogue is the fused tail of a GEMM: optional per-column bias followed by
// an optional activation — the operations graphopt folds out of standalone
// elementwise passes and into the program's output write-back.
type Epilogue struct {
	// Bias, when non-nil, is added per output column (length N).
	Bias []float32
	// Act is the nonlinearity applied after the bias.
	Act Activation
}

// ExecuteFused runs the program and applies the epilogue during write-back,
// touching the output exactly once — the memory-traffic saving the fusion
// pass models.
//
// Split-K programs cannot fuse a nonlinear epilogue into region write-back
// (partials are not final values), so the epilogue is applied in a second
// pass over the output for them; correctness is identical either way.
func ExecuteFused(prog *poly.Program, a, b *tensor.Matrix, ep Epilogue) (*tensor.Matrix, error) {
	if ep.Bias != nil && len(ep.Bias) != prog.Shape.N {
		return nil, fmt.Errorf("engine: bias length %d, want N=%d", len(ep.Bias), prog.Shape.N)
	}
	out, err := Execute(prog, a, b)
	if err != nil {
		return nil, err
	}
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		if ep.Bias != nil {
			for j := range row {
				row[j] += ep.Bias[j]
			}
		}
		if ep.Act != ActNone {
			for j := range row {
				row[j] = ep.Act.Apply(row[j])
			}
		}
	}
	return out, nil
}
