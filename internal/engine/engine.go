// Package engine executes polymerized programs numerically. The paper's
// runtime dispatches pre-compiled micro-kernel binaries with adjusted tensor
// address offsets (§4); here each region's tiles run the micro-kernel's Go
// body over locally padded operand views, so any program planned for any
// runtime shape can be validated against reference GEMM — the mechanism
// behind MikPoly's "zero invalid runs" property (Table 5).
package engine

import (
	"fmt"

	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// Execute runs the program on concrete operands: C[M×N] = A[M×K] × B[K×N].
func Execute(prog *poly.Program, a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	s := prog.Shape
	if a.Rows != s.M || a.Cols != s.K {
		return nil, fmt.Errorf("engine: A is %dx%d, want %dx%d", a.Rows, a.Cols, s.M, s.K)
	}
	if b.Rows != s.K || b.Cols != s.N {
		return nil, fmt.Errorf("engine: B is %dx%d, want %dx%d", b.Rows, b.Cols, s.K, s.N)
	}
	c := tensor.NewMatrix(s.M, s.N)
	var ws scratch
	for _, r := range prog.Regions {
		executeRegion(r, a, b, c, &ws)
	}
	ws.release()
	return c, nil
}

// executeRegion computes one loop nest R_i: the region's slice of A and B is
// zero-padded up to the micro-kernel tile grid (local padding, §3.4), every
// tile runs the kernel across the full reduction loop, and the valid part of
// the padded accumulator is written back.
func executeRegion(r poly.Region, a, b, c *tensor.Matrix, ws *scratch) {
	t1, t2, t3 := r.Tiles()
	k := r.Kern
	pm, pn, pk := t1*k.UM, t2*k.UN, t3*k.UK

	// Local padding: copy the region's slice of the operands (rows/cols
	// from the output block, columns/rows from the reduction slice) into
	// tile-aligned pooled workspaces (zeroed, so padding contributes
	// nothing).
	pa := ws.matrix(pm, pk)
	for i := 0; i < r.M; i++ {
		copy(pa.Row(i)[:r.K], a.Row(r.M0 + i)[r.KOff:r.KOff+r.K])
	}
	pb := ws.matrix(pk, pn)
	for i := 0; i < r.K; i++ {
		copy(pb.Row(i)[:r.N], b.Row(r.KOff + i)[r.N0:r.N0+r.N])
	}
	pc := ws.matrix(pm, pn)

	var dst, av, bv tensor.Matrix
	for i := 0; i < t1; i++ {
		for j := 0; j < t2; j++ {
			pc.ViewInto(&dst, i*k.UM, j*k.UN, k.UM, k.UN)
			for kk := 0; kk < t3; kk++ {
				pa.ViewInto(&av, i*k.UM, kk*k.UK, k.UM, k.UK)
				pb.ViewInto(&bv, kk*k.UK, j*k.UN, k.UK, k.UN)
				k.Execute(&dst, &av, &bv)
			}
		}
	}

	// Accumulate the unpadded part into the output: regions of a split-K
	// program contribute partial products to the same block (the atomic
	// accumulation of a split-K kernel); output-plane regions touch
	// disjoint blocks, where accumulating into the zeroed output equals a
	// plain store.
	for i := 0; i < r.M; i++ {
		dstRow := c.Row(r.M0 + i)[r.N0 : r.N0+r.N]
		srcRow := pc.Row(i)[:r.N]
		for j := range dstRow {
			dstRow[j] += srcRow[j]
		}
	}
}

// ExecuteConv runs a polymerized program planned for the implicit-GEMM
// lowering of a convolution: input activations are lowered with im2col, the
// program computes the GEMM, and the output is reshaped back to NCHW.
func ExecuteConv(prog *poly.Program, in, filters *tensor.Tensor4, shape tensor.ConvShape) (*tensor.Tensor4, error) {
	g := shape.GemmShape()
	if prog.Shape != g {
		return nil, fmt.Errorf("engine: program shape %v does not match conv lowering %v", prog.Shape, g)
	}
	cols := tensor.Im2col(in, shape)
	fm := tensor.FilterMatrix(filters, shape)
	out, err := Execute(prog, cols, fm)
	if err != nil {
		return nil, err
	}
	return tensor.GemmOutputToTensor(out, shape), nil
}
