package engine

import (
	"sync"
	"testing"
	"testing/quick"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

var (
	once sync.Once
	lib  *tune.Library
)

func planner(t *testing.T) *poly.Planner {
	t.Helper()
	once.Do(func() {
		var err error
		lib, err = tune.Generate(hw.A100(), tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256})
		if err != nil {
			panic(err)
		}
	})
	return poly.NewPlanner(lib)
}

func TestExecuteMatchesReference(t *testing.T) {
	pl := planner(t)
	shapes := []tensor.GemmShape{
		{M: 64, N: 64, K: 64},
		{M: 100, N: 60, K: 40},  // ragged everything
		{M: 1, N: 1, K: 1},      // degenerate
		{M: 17, N: 200, K: 31},  // tiny M
		{M: 130, N: 17, K: 96},  // tiny N
		{M: 257, N: 129, K: 65}, // off-by-one over tile sizes
	}
	for _, s := range shapes {
		prog, _, err := pl.Plan(s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		a := tensor.RandomMatrix(s.M, s.K, 101)
		b := tensor.RandomMatrix(s.K, s.N, 102)
		got, err := Execute(prog, a, b)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		want := tensor.Gemm(a, b)
		if !tensor.AllClose(got, want, 1e-3) {
			t.Fatalf("%v: polymerized result differs from reference (max diff %g)",
				s, tensor.MaxAbsDiff(got, want))
		}
	}
}

func TestExecuteMultiRegionProgram(t *testing.T) {
	// Hand-built two-region program (Pattern II) with different kernels.
	s := tensor.GemmShape{M: 96, N: 48, K: 32}
	prog := &poly.Program{
		Shape:   s,
		Pattern: poly.PatternII,
		Regions: []poly.Region{
			{M0: 0, N0: 0, M: 64, N: 48, K: 32, Kern: kernel.New(32, 16, 32, kernel.DefaultConfig())},
			{M0: 64, N0: 0, M: 32, N: 48, K: 32, Kern: kernel.New(16, 48, 16, kernel.DefaultConfig())},
		},
	}
	a := tensor.RandomMatrix(s.M, s.K, 7)
	b := tensor.RandomMatrix(s.K, s.N, 8)
	got, err := Execute(prog, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, tensor.Gemm(a, b), 1e-3) {
		t.Fatal("multi-region execution differs from reference")
	}
}

func TestExecuteRejectsBadOperands(t *testing.T) {
	pl := planner(t)
	s := tensor.GemmShape{M: 32, N: 32, K: 32}
	prog, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(prog, tensor.NewMatrix(32, 31), tensor.NewMatrix(32, 32)); err == nil {
		t.Fatal("wrong A shape accepted")
	}
	if _, err := Execute(prog, tensor.NewMatrix(32, 32), tensor.NewMatrix(31, 32)); err == nil {
		t.Fatal("wrong B shape accepted")
	}
}

func TestExecuteRejectsInvalidProgram(t *testing.T) {
	s := tensor.GemmShape{M: 32, N: 32, K: 32}
	prog := &poly.Program{Shape: s} // no regions
	if _, err := Execute(prog, tensor.NewMatrix(32, 32), tensor.NewMatrix(32, 32)); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestExecuteConvMatchesDirect(t *testing.T) {
	pl := planner(t)
	cs := tensor.ConvShape{Batch: 2, InC: 3, InH: 10, InW: 10, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	prog, _, err := pl.Plan(cs.GemmShape())
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.RandomTensor4(cs.Batch, cs.InC, cs.InH, cs.InW, 31)
	w := tensor.RandomTensor4(cs.OutC, cs.InC, cs.KH, cs.KW, 32)
	got, err := ExecuteConv(prog, in, w, cs)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.ConvRef(in, w, cs)
	if d := tensor.Tensor4MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("conv differs from direct by %g", d)
	}
}

func TestExecuteConvShapeMismatch(t *testing.T) {
	pl := planner(t)
	cs := tensor.ConvShape{Batch: 1, InC: 1, InH: 4, InW: 4, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 0}
	prog, _, err := pl.Plan(tensor.GemmShape{M: 5, N: 5, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.NewTensor4(1, 1, 4, 4)
	w := tensor.NewTensor4(1, 1, 3, 3)
	if _, err := ExecuteConv(prog, in, w, cs); err == nil {
		t.Fatal("mismatched program accepted")
	}
}

// The paper's central correctness claim: MikPoly handles *arbitrary* runtime
// shapes with zero invalid runs. Fuzz shapes, plan, execute, compare.
func TestExecuteArbitraryShapesProperty(t *testing.T) {
	pl := planner(t)
	f := func(seed uint64) bool {
		s := tensor.GemmShape{
			M: int(seed%300) + 1,
			N: int(seed/300%300) + 1,
			K: int(seed/90000%150) + 1,
		}
		prog, _, err := pl.Plan(s)
		if err != nil {
			return false
		}
		a := tensor.RandomMatrix(s.M, s.K, seed|1)
		b := tensor.RandomMatrix(s.K, s.N, seed|2)
		got, err := Execute(prog, a, b)
		if err != nil {
			return false
		}
		return tensor.AllClose(got, tensor.Gemm(a, b), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The pooled workspaces must make repeated executions allocation-light: the
// steady-state allocations are the output matrix plus pool bookkeeping, far
// below the multi-megabyte staging copies an unpooled implementation makes.
func TestExecuteReusesWorkspaces(t *testing.T) {
	pl := planner(t)
	s := tensor.GemmShape{M: 150, N: 130, K: 96}
	prog, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.RandomMatrix(s.M, s.K, 1)
	b := tensor.RandomMatrix(s.K, s.N, 2)
	// Warm the pool.
	if _, err := Execute(prog, a, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Execute(prog, a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Fatalf("Execute performs %v allocations per run; workspaces are not pooled", allocs)
	}
}

func TestScratchZeroesReusedBuffers(t *testing.T) {
	var ws scratch
	m := ws.matrix(4, 4)
	m.Fill(7)
	ws.release()
	m2 := ws.matrix(4, 4)
	defer ws.release()
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("reused workspace not zeroed")
		}
	}
}

// Split-K programs accumulate partial products from reduction slices into
// the shared output; numeric execution must still match reference GEMM.
func TestExecuteSplitKProgram(t *testing.T) {
	s := tensor.GemmShape{M: 48, N: 32, K: 100}
	k := kernel.New(16, 16, 16, kernel.DefaultConfig())
	prog := &poly.Program{
		Shape:   s,
		Pattern: poly.PatternSplitK,
		Regions: []poly.Region{
			{M: 48, N: 32, KOff: 0, K: 33, Kern: k},
			{M: 48, N: 32, KOff: 33, K: 33, Kern: k},
			{M: 48, N: 32, KOff: 66, K: 34, Kern: k},
		},
	}
	a := tensor.RandomMatrix(s.M, s.K, 61)
	b := tensor.RandomMatrix(s.K, s.N, 62)
	got, err := Execute(prog, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, tensor.Gemm(a, b), 1e-3) {
		t.Fatal("split-K execution differs from reference")
	}
}

// A planner with split-K enabled must still produce numerically correct
// programs for the shapes where it triggers.
func TestExecutePlannedSplitK(t *testing.T) {
	pl := planner(t)
	pl.EnableSplitK = true
	s := tensor.GemmShape{M: 33, N: 17, K: 512}
	prog, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.RandomMatrix(s.M, s.K, 71)
	b := tensor.RandomMatrix(s.K, s.N, 72)
	got, err := Execute(prog, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, tensor.Gemm(a, b), 1e-3) {
		t.Fatalf("planned %s program differs from reference", prog.Pattern)
	}
}
