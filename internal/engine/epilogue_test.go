package engine

import (
	"math"
	"testing"

	"mikpoly/internal/tensor"
)

func TestActivationValues(t *testing.T) {
	if ActReLU.Apply(-3) != 0 || ActReLU.Apply(2) != 2 {
		t.Fatal("ReLU wrong")
	}
	if ActNone.Apply(-3) != -3 {
		t.Fatal("None wrong")
	}
	// GELU reference points: gelu(0)=0, gelu(1)≈0.8412, gelu(-1)≈-0.1588.
	if ActGELU.Apply(0) != 0 {
		t.Fatal("GELU(0) != 0")
	}
	if g := float64(ActGELU.Apply(1)); math.Abs(g-0.8412) > 0.001 {
		t.Fatalf("GELU(1) = %g", g)
	}
	if g := float64(ActGELU.Apply(-1)); math.Abs(g+0.1588) > 0.001 {
		t.Fatalf("GELU(-1) = %g", g)
	}
	if ActNone.String() != "none" || ActReLU.String() != "relu" || ActGELU.String() != "gelu" {
		t.Fatal("names wrong")
	}
	if Activation(9).String() != "Activation(9)" {
		t.Fatal("unknown name wrong")
	}
}

func TestExecuteFusedBiasReLU(t *testing.T) {
	pl := planner(t)
	s := tensor.GemmShape{M: 70, N: 50, K: 40}
	prog, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.RandomMatrix(s.M, s.K, 91)
	b := tensor.RandomMatrix(s.K, s.N, 92)
	bias := make([]float32, s.N)
	for j := range bias {
		bias[j] = float32(j)*0.01 - 0.2
	}
	got, err := ExecuteFused(prog, a, b, Epilogue{Bias: bias, Act: ActReLU})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Gemm(a, b)
	for i := 0; i < s.M; i++ {
		for j := 0; j < s.N; j++ {
			ref := want.At(i, j) + bias[j]
			if ref < 0 {
				ref = 0
			}
			if d := float64(got.At(i, j) - ref); math.Abs(d) > 1e-3 {
				t.Fatalf("fused epilogue wrong at (%d,%d): %g vs %g", i, j, got.At(i, j), ref)
			}
		}
	}
}

func TestExecuteFusedBadBias(t *testing.T) {
	pl := planner(t)
	prog, _, err := pl.Plan(tensor.GemmShape{M: 8, N: 8, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, err = ExecuteFused(prog, tensor.NewMatrix(8, 8), tensor.NewMatrix(8, 8),
		Epilogue{Bias: make([]float32, 7)})
	if err == nil {
		t.Fatal("wrong bias length accepted")
	}
}

func TestExecuteFusedNoEpilogueEqualsExecute(t *testing.T) {
	pl := planner(t)
	s := tensor.GemmShape{M: 30, N: 20, K: 25}
	prog, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.RandomMatrix(s.M, s.K, 93)
	b := tensor.RandomMatrix(s.K, s.N, 94)
	plain, err := Execute(prog, a, b)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := ExecuteFused(prog, a, b, Epilogue{})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(plain, fused) != 0 {
		t.Fatal("empty epilogue changed results")
	}
}

// Epilogues must compose with split-K partial accumulation: the activation
// applies to the final sum, never to partials.
func TestExecuteFusedSplitK(t *testing.T) {
	pl := planner(t)
	pl.EnableSplitK = true
	s := tensor.GemmShape{M: 17, N: 19, K: 600}
	prog, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.RandomMatrix(s.M, s.K, 95)
	b := tensor.RandomMatrix(s.K, s.N, 96)
	got, err := ExecuteFused(prog, a, b, Epilogue{Act: ActReLU})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Gemm(a, b)
	for i := 0; i < s.M; i++ {
		for j := 0; j < s.N; j++ {
			ref := want.At(i, j)
			if ref < 0 {
				ref = 0
			}
			if d := float64(got.At(i, j) - ref); math.Abs(d) > 1e-3 {
				t.Fatalf("split-K fused wrong at (%d,%d)", i, j)
			}
		}
	}
}
