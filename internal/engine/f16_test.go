package engine

// The evaluated platforms compute on fp16 operands with fp32 accumulation.
// This test reproduces that numeric regime: operands quantized to binary16,
// polymerized execution in float32, and verifies the end-to-end error stays
// within the fp16 input-rounding bound — i.e., the compiler adds no error of
// its own on top of the dtype.

import (
	"math"
	"testing"

	"mikpoly/internal/f16"
	"mikpoly/internal/tensor"
)

func TestF16OperandPrecisionRegime(t *testing.T) {
	pl := planner(t)
	s := tensor.GemmShape{M: 96, N: 80, K: 257}
	prog, _, err := pl.Plan(s)
	if err != nil {
		t.Fatal(err)
	}

	a := tensor.RandomMatrix(s.M, s.K, 201)
	b := tensor.RandomMatrix(s.K, s.N, 202)
	f16.QuantizeSlice(a.Data)
	f16.QuantizeSlice(b.Data)

	got, err := Execute(prog, a, b)
	if err != nil {
		t.Fatal(err)
	}

	// Float64 reference on the quantized operands: the compiler's own
	// error (different summation order in float32) must be tiny relative
	// to the magnitude the fp16 inputs already carry.
	var maxErr float64
	for i := 0; i < s.M; i++ {
		for j := 0; j < s.N; j++ {
			var acc float64
			for k := 0; k < s.K; k++ {
				acc += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			if d := math.Abs(float64(got.At(i, j)) - acc); d > maxErr {
				maxErr = d
			}
		}
	}
	// Summation-order error bound for float32 accumulation over K=257
	// terms of magnitude <= 1: comfortably below 1e-3.
	if maxErr > 1e-3 {
		t.Fatalf("compiler-added numeric error %g exceeds float32 accumulation bound", maxErr)
	}
}
