package engine

import (
	"sync"

	"mikpoly/internal/tensor"
)

// Workspace management: executing a polymerized program needs tile-aligned
// staging copies of each region's operands and accumulator (the local
// padding of §3.4). A serving process dispatches thousands of programs, so
// these workspaces are pooled rather than reallocated per call — the analog
// of the persistent workspace buffers a GPU runtime binds per stream.

// bufPool recycles float32 backing arrays. Buffers are stored by pointer to
// avoid the allocation a slice-header interface conversion would cause.
var bufPool = sync.Pool{New: func() any { return new([]float32) }}

// scratch hands out zeroed matrices from pooled storage and returns them on
// release.
type scratch struct {
	held []*[]float32
}

// matrix returns a zeroed rows×cols matrix backed by pooled storage.
func (s *scratch) matrix(rows, cols int) *tensor.Matrix {
	n := rows * cols
	p := bufPool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	buf := (*p)[:n]
	for i := range buf {
		buf[i] = 0
	}
	s.held = append(s.held, p)
	return &tensor.Matrix{Rows: rows, Cols: cols, Stride: cols, Data: buf}
}

// release returns every handed-out buffer to the pool. Matrices obtained
// from this scratch must not be used afterwards.
func (s *scratch) release() {
	for _, p := range s.held {
		bufPool.Put(p)
	}
	s.held = s.held[:0]
}
