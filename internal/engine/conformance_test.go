package engine

// Operator conformance: the end-to-end experiments replace every GEMM and
// convolution in the evaluated models with MikPoly-planned programs, so every
// distinct operator shape those graphs contain must execute bit-plausibly.
// This harness walks the real model graphs, plans each (size-capped) shape,
// executes it on random operands, and compares against reference GEMM — the
// engineering content behind Table 5's "zero invalid runs".

import (
	"testing"

	"mikpoly/internal/nn"
	"mikpoly/internal/tensor"
)

// conformanceCap bounds the work per operator so the harness stays fast;
// the correctness mechanism (local padding + region partition) is size
// independent.
const conformanceCap = 1 << 22 // M·N·K

func conformanceGraphs() []nn.Graph {
	return []nn.Graph{
		nn.Transformer(nn.BERTBaseConfig, 37, 1),
		nn.Transformer(nn.DistilBERTConfig, 203, 1),
		nn.Transformer(nn.ALBERTXLargeConfig, 64, 1),
		nn.ResNet18(1, 64),
		nn.AlexNet(1, 96),
		nn.GoogLeNet(1, 64),
		nn.VGG11(1, 64),
		nn.FasterRCNN(1, 64, 96, 30),
		nn.Llama2Decode(2, 64),
	}
}

func TestModelOperatorConformance(t *testing.T) {
	pl := planner(t)
	tested := 0
	seen := map[tensor.GemmShape]bool{}
	for _, g := range conformanceGraphs() {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for shape := range g.GemmShapes() {
			if seen[shape] {
				continue
			}
			seen[shape] = true
			if float64(shape.M)*float64(shape.N)*float64(shape.K) > conformanceCap {
				continue
			}
			prog, _, err := pl.Plan(shape)
			if err != nil {
				t.Fatalf("%s %v: plan: %v", g.Name, shape, err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("%s %v: %v", g.Name, shape, err)
			}
			a := tensor.RandomMatrix(shape.M, shape.K, uint64(shape.M*31+shape.K))
			b := tensor.RandomMatrix(shape.K, shape.N, uint64(shape.K*37+shape.N))
			got, err := Execute(prog, a, b)
			if err != nil {
				t.Fatalf("%s %v: execute: %v", g.Name, shape, err)
			}
			if !tensor.AllClose(got, tensor.Gemm(a, b), 1e-3) {
				t.Fatalf("%s %v: wrong result", g.Name, shape)
			}
			tested++
		}
	}
	if tested < 30 {
		t.Fatalf("only %d operator shapes exercised; conformance sweep too thin", tested)
	}
	t.Logf("conformance: %d distinct operator shapes executed and validated", tested)
}
