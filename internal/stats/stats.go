// Package stats provides the aggregation helpers the evaluation harness
// uses: means, geometric means, extrema, percentiles, and speedup summaries
// matching the way the paper reports results ("average speedup of 1.47× with
// a maximum of 4.82×").
//
// Percentile convention: nearest-rank. Percentile(xs, p) is the element at
// rank ⌈p/100·n⌉ (1-based) of the sorted sample, so p=0 is the minimum,
// p=100 the maximum, and a single-element sample answers every p with that
// element. p outside [0, 100] — including NaN — panics, as does a NaN in any
// other aggregate's precondition; NaN *values* in the sample are skipped
// (they carry no order), and an all-NaN sample returns NaN rather than
// masquerading as a zero measurement. Empty inputs return 0 across the
// package, matching the harness's "no data yet" rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of positive values, or 0 for an empty
// slice. It panics on non-positive entries, which always indicate a harness
// bug.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using the
// nearest-rank definition on a copy of the input; see the package comment
// for the exact boundary and NaN semantics.
//
// Two latent hazards are handled explicitly. A NaN p used to slip past the
// range check (every comparison with NaN is false) and reach int(Ceil(NaN)),
// whose value is platform-defined — it now panics like any out-of-range p.
// NaN sample values used to sort ahead of every finite value (sort.Float64s
// orders NaN first), silently corrupting low percentiles — they are now
// skipped, and an all-NaN sample reports NaN.
func Percentile(xs []float64, p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of range", p))
	}
	c := make([]float64, 0, len(xs))
	sawNaN := false
	for _, x := range xs {
		if math.IsNaN(x) {
			sawNaN = true
			continue
		}
		c = append(c, x)
	}
	if len(c) == 0 {
		if sawNaN {
			return math.NaN()
		}
		return 0
	}
	sort.Float64s(c)
	rank := int(math.Ceil(p / 100 * float64(len(c)))) // 1-based nearest rank
	if rank < 1 {
		rank = 1
	}
	if rank > len(c) {
		rank = len(c)
	}
	return c[rank-1]
}

// Summary condenses a speedup series the way the paper quotes results.
type Summary struct {
	N            int
	Mean         float64
	Geomean      float64
	Max          float64
	Min          float64
	FractionOver float64 // fraction of cases with speedup > 1
}

// Summarize builds a Summary from a speedup series.
func Summarize(speedups []float64) Summary {
	over := 0
	for _, s := range speedups {
		if s > 1 {
			over++
		}
	}
	frac := 0.0
	if len(speedups) > 0 {
		frac = float64(over) / float64(len(speedups))
	}
	return Summary{
		N:            len(speedups),
		Mean:         Mean(speedups),
		Geomean:      Geomean(speedups),
		Max:          Max(speedups),
		Min:          Min(speedups),
		FractionOver: frac,
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fx geomean=%.2fx max=%.2fx min=%.2fx win%%=%.0f",
		s.N, s.Mean, s.Geomean, s.Max, s.Min, 100*s.FractionOver)
}
