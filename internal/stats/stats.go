// Package stats provides the aggregation helpers the evaluation harness
// uses: means, geometric means, extrema, and speedup summaries matching the
// way the paper reports results ("average speedup of 1.47× with a maximum of
// 4.82×").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of positive values, or 0 for an empty
// slice. It panics on non-positive entries, which always indicate a harness
// bug.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %g", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// copy of the input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of range", p))
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	rank := int(math.Ceil(p/100*float64(len(c)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(c) {
		rank = len(c) - 1
	}
	return c[rank]
}

// Summary condenses a speedup series the way the paper quotes results.
type Summary struct {
	N            int
	Mean         float64
	Geomean      float64
	Max          float64
	Min          float64
	FractionOver float64 // fraction of cases with speedup > 1
}

// Summarize builds a Summary from a speedup series.
func Summarize(speedups []float64) Summary {
	over := 0
	for _, s := range speedups {
		if s > 1 {
			over++
		}
	}
	frac := 0.0
	if len(speedups) > 0 {
		frac = float64(over) / float64(len(speedups))
	}
	return Summary{
		N:            len(speedups),
		Mean:         Mean(speedups),
		Geomean:      Geomean(speedups),
		Max:          Max(speedups),
		Min:          Min(speedups),
		FractionOver: frac,
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fx geomean=%.2fx max=%.2fx min=%.2fx win%%=%.0f",
		s.N, s.Mean, s.Geomean, s.Max, s.Min, 100*s.FractionOver)
}
