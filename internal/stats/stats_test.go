package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Fatal("Geomean(nil)")
	}
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Geomean = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive input")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Fatal("Max/Min wrong")
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty Max/Min must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %g", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %g", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(xs, 101)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 1.5, 2.0})
	if s.N != 3 || s.Max != 2.0 || s.Min != 0.5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.FractionOver-2.0/3) > 1e-12 {
		t.Fatalf("FractionOver = %g", s.FractionOver)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.FractionOver != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
}

// Property: geomean lies between min and max; mean >= geomean (AM-GM).
func TestAMGMProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000)/100 + 0.01
		}
		g, m := Geomean(xs), Mean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9 && m >= g-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
