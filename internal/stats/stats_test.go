package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Fatal("Geomean(nil)")
	}
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Geomean = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive input")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Fatal("Max/Min wrong")
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty Max/Min must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %g", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %g", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(xs, 101)
}

// TestPercentileBoundaries pins the nearest-rank convention documented in the
// package comment: every (sample, p) cell here is part of the API contract.
func TestPercentileBoundaries(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"p0 is the minimum", []float64{9, 2, 7}, 0, 2},
		{"p100 is the maximum", []float64{9, 2, 7}, 100, 9},
		{"single element answers p0", []float64{42}, 0, 42},
		{"single element answers p50", []float64{42}, 50, 42},
		{"single element answers p100", []float64{42}, 100, 42},
		{"two elements split at p50", []float64{10, 20}, 50, 10},
		{"two elements just past p50", []float64{10, 20}, 50.001, 20},
		{"duplicates collapse ranks", []float64{5, 5, 5, 1}, 75, 5},
		{"nearest rank rounds up", []float64{1, 2, 3, 4}, 26, 2},
		{"NaN values are skipped", []float64{nan, 3, 1, nan, 2}, 100, 3},
		{"NaN values do not pollute low ranks", []float64{nan, 3, 1, 2}, 0, 1},
	}
	for _, c := range cases {
		if got := Percentile(c.xs, c.p); got != c.want {
			t.Errorf("%s: Percentile(%v, %g) = %g, want %g", c.name, c.xs, c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{nan, nan}, 50); !math.IsNaN(got) {
		t.Errorf("all-NaN sample = %g, want NaN", got)
	}
	if got := Percentile(nil, 0); got != 0 {
		t.Errorf("empty sample = %g, want 0", got)
	}
}

// TestPercentileNaNPPanics is the regression for the NaN-p hole: NaN passed
// every ordered comparison in the old range check and flowed into
// int(math.Ceil(NaN)), whose result is platform-defined.
func TestPercentileNaNPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(xs, NaN) did not panic")
		}
	}()
	Percentile([]float64{1, 2, 3}, math.NaN())
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 1.5, 2.0})
	if s.N != 3 || s.Max != 2.0 || s.Min != 0.5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.FractionOver-2.0/3) > 1e-12 {
		t.Fatalf("FractionOver = %g", s.FractionOver)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.FractionOver != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
}

// Property: geomean lies between min and max; mean >= geomean (AM-GM).
func TestAMGMProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000)/100 + 0.01
		}
		g, m := Geomean(xs), Mean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9 && m >= g-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
