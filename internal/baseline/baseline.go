// Package baseline implements simulator-substrate analogs of every system
// MikPoly is compared against in the paper's evaluation:
//
//   - cuBLAS / cuDNN / CANN — vendor libraries: a fixed set of hand-tuned
//     kernels (with a hand-written-assembly efficiency premium) selected by
//     a shape heuristic that minimizes padding waste but is oblivious to
//     wave quantization — the blind spot MikPoly exploits (Fig. 1, §6);
//   - CUTLASS — a single default template configuration with static padding;
//   - DietCode — an offline auto-scheduler over a declared shape range: one
//     tuned program per representative shape bucket, with errors for
//     out-of-range runtime shapes (§2.2, §5.2.3);
//   - Nimble — a single shape-generic program tuned once for the declared
//     range, paying a genericity penalty on every shape.
//
// All baselines emit poly.Program values, so they execute and simulate on
// exactly the same substrate as MikPoly.
package baseline

import (
	"errors"
	"fmt"

	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// Planner is the common planning interface shared by MikPoly and every
// baseline: produce a tensor program for a runtime shape.
type Planner interface {
	// Name identifies the system in reports.
	Name() string
	// Plan returns a program for the shape, or an error for shapes the
	// system cannot handle (an "invalid run" in Table 5's accounting).
	Plan(shape tensor.GemmShape) (*poly.Program, error)
}

// ErrOutOfRange marks a runtime shape outside a range-restricted compiler's
// declared tuning range — DietCode/Nimble's invalid runs.
var ErrOutOfRange = errors.New("baseline: shape outside declared tuning range")

// singleKernelProgram builds the Pattern-I program every baseline uses: one
// region, one kernel, local padding.
func singleKernelProgram(shape tensor.GemmShape, k kernelRef) (*poly.Program, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("baseline: invalid shape %v", shape)
	}
	return &poly.Program{
		Shape:   shape,
		Pattern: poly.PatternI,
		Regions: []poly.Region{{M0: 0, N0: 0, M: shape.M, N: shape.N, K: shape.K, Kern: k.k}},
	}, nil
}
