package baseline

import (
	"fmt"

	"mikpoly/internal/hw"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// Cutlass models CUTLASS used as the paper uses it: the template library's
// device-level default heuristic, which picks among a small ladder of
// thread-block tiles purely by problem size (largest tile whose grid still
// roughly occupies the device), with static padding, no per-kernel cost
// knowledge and no hand-written-assembly premium. It is strong on large
// aligned shapes and weak on small or ragged ones — the 0.45×-of-oracle
// reference line in Fig. 12(b).
type Cutlass struct {
	hw     hw.Hardware
	ladder []kernelRef // largest first
}

// NewCutlass builds the CUTLASS analog for h, dropping ladder rungs that do
// not fit the device.
func NewCutlass(h hw.Hardware) *Cutlass {
	c := &Cutlass{hw: h}
	for _, t := range [][3]int{{128, 128, 32}, {64, 64, 32}, {32, 32, 32}, {16, 16, 16}} {
		if k, ok := vendorConfig(h, t[0], t[1], t[2], 1.0); ok {
			c.ladder = append(c.ladder, kernelRef{k: k})
		}
	}
	if len(c.ladder) == 0 {
		panic(fmt.Sprintf("baseline: no feasible CUTLASS tile for %s", h.Name))
	}
	return c
}

// Name implements Planner.
func (c *Cutlass) Name() string { return "CUTLASS" }

// Plan implements Planner: the largest ladder tile whose grid reaches at
// least a quarter of the device, else the smallest tile.
func (c *Cutlass) Plan(shape tensor.GemmShape) (*poly.Program, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("baseline CUTLASS: invalid shape %v", shape)
	}
	pick := c.ladder[len(c.ladder)-1]
	for _, kr := range c.ladder {
		k := kr.k
		tasks := ((shape.M + k.UM - 1) / k.UM) * ((shape.N + k.UN - 1) / k.UN)
		if tasks*4 >= c.hw.NumPEs {
			pick = kr
			break
		}
	}
	return singleKernelProgram(shape, pick)
}
