package baseline

import (
	"errors"
	"sync"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

var (
	once    sync.Once
	cudaLib *tune.Library
)

func cudaLibrary(t *testing.T) *tune.Library {
	t.Helper()
	once.Do(func() {
		var err error
		cudaLib, err = tune.Generate(hw.A100CUDACores(),
			tune.Options{NGen: 8, NSyn: 10, NMik: 12, NPred: 512})
		if err != nil {
			panic(err)
		}
	})
	return cudaLib
}

func TestVendorLibrariesConstruct(t *testing.T) {
	for _, v := range []*Vendor{CuBLAS(hw.A100()), CuDNN(hw.A100()), CANN(hw.Ascend910())} {
		if len(v.Kernels()) < 4 {
			t.Errorf("%s: only %d kernels survived feasibility", v.Name(), len(v.Kernels()))
		}
		for _, k := range v.Kernels() {
			if k.Premium <= 1 {
				t.Errorf("%s kernel %v lacks hand-tuning premium", v.Name(), k)
			}
		}
	}
}

func TestVendorPlanValidAnyShape(t *testing.T) {
	v := CuBLAS(hw.A100())
	for _, s := range []tensor.GemmShape{
		{M: 4096, N: 4096, K: 4096},
		{M: 105, N: 1024, K: 12544},
		{M: 1, N: 1, K: 1},
		{M: 17, N: 31, K: 999},
	} {
		prog, err := v.Plan(s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(prog.Regions) != 1 {
			t.Fatalf("vendor must emit single-kernel programs, got %d regions", len(prog.Regions))
		}
	}
	if _, err := v.Plan(tensor.GemmShape{}); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestVendorDispatchPrefersBigTilesForBigShapes(t *testing.T) {
	v := CuBLAS(hw.A100())
	big, _ := v.Plan(tensor.GemmShape{M: 4096, N: 4096, K: 4096})
	small, _ := v.Plan(tensor.GemmShape{M: 33, N: 33, K: 64})
	bk, sk := big.Regions[0].Kern, small.Regions[0].Kern
	if bk.UM*bk.UN <= sk.UM*sk.UN {
		t.Fatalf("dispatch picked %v for big and %v for small", bk, sk)
	}
}

// Fig. 1's premise: the same vendor library delivers wildly different TFLOPS
// on equal-FLOP-class shapes; the balanced 4096³ shape must far outrun the
// skinny (105,1024,12544) shape.
func TestVendorShapePerformanceCliff(t *testing.T) {
	h := hw.A100()
	v := CuBLAS(h)
	tput := func(s tensor.GemmShape) float64 {
		prog, err := v.Plan(s)
		if err != nil {
			t.Fatal(err)
		}
		res := prog.Simulate(h)
		return s.FLOPs() / h.CyclesToSeconds(res.Cycles)
	}
	good := tput(tensor.GemmShape{M: 4096, N: 4096, K: 4096})
	bad := tput(tensor.GemmShape{M: 105, N: 1024, K: 12544})
	if ratio := good / bad; ratio < 3 {
		t.Fatalf("vendor cliff ratio = %.2f, want >= 3 (paper: 262 vs 22 TFLOPS)", ratio)
	}
	if good < 100e12 {
		t.Fatalf("vendor peak GEMM = %.1f TFLOPS, implausibly low", good/1e12)
	}
}

func TestCutlassSizeLadder(t *testing.T) {
	c := NewCutlass(hw.A100())
	big, err := c.Plan(tensor.GemmShape{M: 4096, N: 4096, K: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if k := big.Regions[0].Kern; k.UM != 128 || k.UN != 128 {
		t.Fatalf("large-shape tile = %v, want the 128x128 default", k)
	}
	tiny, err := c.Plan(tensor.GemmShape{M: 7, N: 9, K: 11})
	if err != nil {
		t.Fatal(err)
	}
	if k := tiny.Regions[0].Kern; k.UM != 16 {
		t.Fatalf("degenerate-grid tile = %v, want the smallest rung", k)
	}
	if _, err := c.Plan(tensor.GemmShape{}); err == nil {
		t.Fatal("invalid shape accepted")
	}
	// Wave quantization stays invisible to the ladder: 1.2 waves of the
	// default tile is still the default tile.
	mid, err := c.Plan(tensor.GemmShape{M: 4096, N: 1024, K: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if k := mid.Regions[0].Kern; k.UM != 128 {
		t.Fatalf("mid-shape tile = %v, want default", k)
	}
}

func TestRangeAndRanges(t *testing.T) {
	r := Range{Lo: 2, Hi: 10}
	if !r.Contains(2) || !r.Contains(10) || r.Contains(1) || r.Contains(11) {
		t.Fatal("Range.Contains wrong")
	}
	if (Range{Lo: 0, Hi: 5}).Validate() == nil || (Range{Lo: 5, Hi: 4}).Validate() == nil {
		t.Fatal("invalid ranges accepted")
	}
	rs := Ranges{M: Range{1, 8}, N: Range{4, 4}, K: Range{1, 100}}
	if !rs.Contains(tensor.GemmShape{M: 8, N: 4, K: 50}) {
		t.Fatal("Ranges.Contains wrong")
	}
	if rs.Contains(tensor.GemmShape{M: 8, N: 5, K: 50}) {
		t.Fatal("static dim violation not caught")
	}
}

func TestRepPoints(t *testing.T) {
	pts := repPoints(Range{Lo: 1, Hi: 4096})
	if len(pts) > maxRepsPerDim || len(pts) < 2 {
		t.Fatalf("repPoints = %v, want 2..%d points", pts, maxRepsPerDim)
	}
	if pts[0] != 1 || pts[len(pts)-1] != 4096 {
		t.Fatalf("endpoints missing: %v", pts)
	}
	for _, p := range pts {
		if p < 1 || p > 4096 {
			t.Fatalf("rep %d outside range", p)
		}
	}
	if got := repPoints(Range{Lo: 7, Hi: 7}); len(got) != 1 || got[0] != 7 {
		t.Fatalf("static dim reps = %v", got)
	}
}

func TestDietCodeInRangeAndInvalidRuns(t *testing.T) {
	lib := cudaLibrary(t)
	d, err := NewDietCode(lib, Ranges{
		M: Range{1, 512}, N: Range{1024, 1024}, K: Range{4096, 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One dynamic dim (M) × two static dims → at most maxRepsPerDim
	// tuned programs.
	if n := d.NumTunedPrograms(); n < 2 || n > maxRepsPerDim {
		t.Fatalf("tuned programs = %d, want 2..%d", n, maxRepsPerDim)
	}
	prog, err := d.Plan(tensor.GemmShape{M: 100, N: 1024, K: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// Out-of-range M → invalid run, the behaviour Table 5 counts.
	_, err = d.Plan(tensor.GemmShape{M: 513, N: 1024, K: 4096})
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range shape gave %v, want ErrOutOfRange", err)
	}
	_, err = d.Plan(tensor.GemmShape{M: 100, N: 512, K: 4096})
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatal("static-dim mismatch must be out of range")
	}
}

func TestDietCodeBucketing(t *testing.T) {
	reps := []int{1, 2, 4, 8, 16}
	for _, tc := range []struct{ v, want int }{{1, 1}, {3, 4}, {8, 8}, {9, 16}} {
		got, ok := bucketFor(reps, tc.v)
		if !ok || got != tc.want {
			t.Fatalf("bucketFor(%d) = %d,%v want %d", tc.v, got, ok, tc.want)
		}
	}
	over, ok := bucketFor(reps, 99)
	if !ok || over != 16 {
		t.Fatalf("bucketFor(99) = %d,%v", over, ok)
	}
}

func TestNimbleSingleGenericProgram(t *testing.T) {
	lib := cudaLibrary(t)
	n, err := NewNimble(lib, Ranges{M: Range{1, 4096}, N: Range{1024, 1024}, K: Range{4096, 4096}})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := n.Plan(tensor.GemmShape{M: 64, N: 1024, K: 4096})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := n.Plan(tensor.GemmShape{M: 4000, N: 1024, K: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Regions[0].Kern != p2.Regions[0].Kern {
		t.Fatal("Nimble must reuse one generic program")
	}
	if p1.Regions[0].Kern.Premium >= 1 {
		t.Fatal("Nimble kernel must carry the genericity penalty")
	}
	if _, err := n.Plan(tensor.GemmShape{M: 5000, N: 1024, K: 4096}); !errors.Is(err, ErrOutOfRange) {
		t.Fatal("out-of-range shape must fail")
	}
}

func TestDietCodeRejectsBadRanges(t *testing.T) {
	lib := cudaLibrary(t)
	if _, err := NewDietCode(lib, Ranges{}); err == nil {
		t.Fatal("zero ranges accepted")
	}
	if _, err := NewNimble(lib, Ranges{}); err == nil {
		t.Fatal("zero ranges accepted by Nimble")
	}
}

func TestVendorPlanDeterministic(t *testing.T) {
	v := CuBLAS(hw.A100())
	s := tensor.GemmShape{M: 300, N: 700, K: 900}
	p1, err := v.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := v.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Regions[0].Kern != p2.Regions[0].Kern {
		t.Fatal("vendor dispatch is not deterministic")
	}
}

func TestCANNConvNarrowerThanCANNGemm(t *testing.T) {
	h := hw.Ascend910()
	gemm := CANN(h)
	conv := CANNConv(h)
	if len(conv.Kernels()) >= len(gemm.Kernels()) {
		t.Fatalf("conv set (%d kernels) should be narrower than GEMM set (%d)",
			len(conv.Kernels()), len(gemm.Kernels()))
	}
}

func TestVendorDegenerateGridDiscount(t *testing.T) {
	v := CuBLAS(hw.A100())
	// A shape whose biggest tile yields a single task: the dispatch must
	// not choose it (the split-K/skinny-kernel switch real libraries have).
	p, err := v.Plan(tensor.GemmShape{M: 108, N: 119, K: 117073})
	if err != nil {
		t.Fatal(err)
	}
	k := p.Regions[0].Kern
	tasks := ((108 + k.UM - 1) / k.UM) * ((119 + k.UN - 1) / k.UN)
	if tasks < 8 {
		t.Fatalf("dispatch chose %v (%d tasks) for a degenerate grid", k, tasks)
	}
}

func TestDietCodeDeterministicPrograms(t *testing.T) {
	lib := cudaLibrary(t)
	ranges := Ranges{M: Range{1, 512}, N: Range{1024, 1024}, K: Range{4096, 4096}}
	d1, err := NewDietCode(lib, ranges)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDietCode(lib, ranges)
	if err != nil {
		t.Fatal(err)
	}
	s := tensor.GemmShape{M: 77, N: 1024, K: 4096}
	p1, err := d1.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d2.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Regions[0].Kern != p2.Regions[0].Kern {
		t.Fatal("DietCode offline tuning is not deterministic")
	}
}

func TestDietCodeKernelsCarryPenalty(t *testing.T) {
	lib := cudaLibrary(t)
	d, err := NewDietCode(lib, Ranges{M: Range{1, 64}, N: Range{64, 64}, K: Range{64, 64}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Plan(tensor.GemmShape{M: 32, N: 64, K: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Regions[0].Kern.Premium; got != dietCodeGenericityPenalty {
		t.Fatalf("DietCode kernel premium = %g, want %g", got, dietCodeGenericityPenalty)
	}
}
