package baseline

import (
	"fmt"
	"math"

	"mikpoly/internal/hw"
	"mikpoly/internal/kernel"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// kernelRef pairs a vendor kernel with its pre-measured cost density, the
// knowledge a vendor's dispatch heuristic has about its own routines.
type kernelRef struct {
	k kernel.MicroKernel
	// cyclesPerFLOP is the fair-share pipelined cost per floating-point
	// operation, measured once at library build time.
	cyclesPerFLOP float64
}

// Vendor models a hand-crafted vendor library (cuBLAS, cuDNN, CANN): a
// small fixed set of aggressively tuned kernels and a dispatch heuristic
// that picks the kernel minimizing padded work weighted by kernel speed.
// The heuristic knows nothing about wave quantization on the concrete
// device — the "imbalance" blind spot of §6 — and it cannot compose
// kernels, so ragged shapes pay full padding on the single chosen tile.
type Vendor struct {
	name    string
	hw      hw.Hardware
	kernels []kernelRef
}

// vendorConfig hand-tunes the internal schedule for a vendor tile the way a
// library team would: best measured schedule at a representative depth.
func vendorConfig(h hw.Hardware, um, un, uk int, premium float64) (kernel.MicroKernel, bool) {
	best := kernel.MicroKernel{}
	bestCost := math.Inf(1)
	for _, stages := range []int{4, 3, 2, 1} {
		for _, vec := range []int{8, 4, 2, 1} {
			k := kernel.MicroKernel{UM: um, UN: un, UK: uk,
				Cfg: kernel.Config{Stages: stages, Vec: vec}, Premium: premium}
			if !k.Feasible(h) {
				continue
			}
			c := tune.MeasureTaskCost(h, k, 8)
			if c < bestCost {
				bestCost = c
				best = k
			}
		}
	}
	return best, !math.IsInf(bestCost, 1)
}

// newVendor assembles a library from tile descriptors, dropping tiles that
// do not fit the device.
func newVendor(name string, h hw.Hardware, tiles [][3]int, premium float64) *Vendor {
	v := &Vendor{name: name, hw: h}
	for _, t := range tiles {
		k, ok := vendorConfig(h, t[0], t[1], t[2], premium)
		if !ok {
			continue
		}
		flops := 8 * 2 * float64(t[0]) * float64(t[1]) * float64(t[2])
		v.kernels = append(v.kernels, kernelRef{
			k:             k,
			cyclesPerFLOP: tune.MeasureTaskCost(h, k, 8) / flops,
		})
	}
	if len(v.kernels) == 0 {
		panic(fmt.Sprintf("baseline: no feasible vendor kernels for %s", h.Name))
	}
	return v
}

// CuBLAS returns the GPU GEMM vendor library analog. The tile list mirrors
// the cuBLAS fp16 Tensor-Core kernel families.
func CuBLAS(h hw.Hardware) *Vendor {
	return newVendor("cuBLAS", h, [][3]int{
		{256, 128, 32}, {128, 256, 32}, {128, 128, 32}, {128, 128, 64},
		{128, 64, 32}, {64, 128, 32}, {96, 96, 32}, {64, 64, 32},
		{64, 64, 64}, {32, 64, 32}, {64, 32, 32}, {32, 32, 64},
		// Skinny and GEMV-flavoured kernels for degenerate dimensions.
		{16, 128, 64}, {128, 16, 64}, {16, 64, 64}, {64, 16, 64},
		{16, 16, 64}, {32, 16, 128}, {16, 32, 128},
	}, 1.06)
}

// CuDNN returns the GPU convolution vendor library analog (implicit-GEMM
// kernel families; convolutions reach it through the GEMM lowering).
func CuDNN(h hw.Hardware) *Vendor {
	// The implicit-GEMM kernel families are tuned for standard ImageNet
	// layer shapes; the set is narrower than the GEMM library's, which is
	// why dynamic channel counts and batch sizes hurt more (Fig. 6's
	// larger convolution speedups).
	return newVendor("cuDNN", h, [][3]int{
		{256, 128, 32}, {128, 128, 32}, {128, 64, 32}, {64, 128, 64},
		{128, 128, 64}, {64, 64, 32}, {64, 64, 64},
	}, 1.05)
}

// CANN returns the Ascend NPU vendor GEMM library analog: tiles matched to
// the 1 MiB L1 and the wide cube unit, including the skinny variants the
// matmul routine dispatches for degenerate dimensions, and a slightly lower
// hand-tuning premium than the more mature CUDA stack.
func CANN(h hw.Hardware) *Vendor {
	return newVendor("CANN", h, [][3]int{
		{256, 256, 64}, {256, 128, 64}, {128, 256, 64}, {128, 128, 128},
		{128, 128, 64}, {256, 256, 128}, {64, 64, 64}, {64, 256, 64},
		{256, 64, 64}, {32, 256, 128}, {64, 128, 128}, {32, 64, 128},
		{64, 32, 128}, {16, 256, 64}, {256, 16, 64}, {32, 32, 128},
		{16, 64, 128}, {64, 16, 128}, {16, 16, 128},
	}, 1.04)
}

// CANNConv returns the Ascend convolution routine analog. Like cuDNN, the
// conv kernel families are much narrower than the GEMM library's — they are
// tuned for standard CNN layer geometries — which is why dynamic channel
// counts open a wider gap on convolution (Fig. 7: 1.41× vs 1.10×).
func CANNConv(h hw.Hardware) *Vendor {
	v := newVendor("CANN", h, [][3]int{
		{256, 256, 64}, {256, 128, 64}, {128, 256, 64}, {128, 128, 128},
		{128, 128, 64}, {64, 64, 64},
	}, 1.04)
	return v
}

// Name implements Planner.
func (v *Vendor) Name() string { return v.name }

// Kernels exposes the library's kernel set (for reporting).
func (v *Vendor) Kernels() []kernel.MicroKernel {
	out := make([]kernel.MicroKernel, len(v.kernels))
	for i, kr := range v.kernels {
		out[i] = kr.k
	}
	return out
}

// Plan implements the dispatch heuristic: minimize padded work × per-kernel
// cost density, discounted when the grid is too small to occupy the device
// (vendor libraries switch to smaller or split-K kernels for degenerate
// grids). The heuristic is padding- and occupancy-aware but oblivious to
// wave *quantization* — a grid of 1.2 waves scores the same as 1.0 waves,
// which is exactly the imbalance MikPoly's polymerization removes (§6).
func (v *Vendor) Plan(shape tensor.GemmShape) (*poly.Program, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("baseline %s: invalid shape %v", v.name, shape)
	}
	best := v.kernels[0]
	bestScore := math.Inf(1)
	for _, kr := range v.kernels {
		k := kr.k
		padded := float64(roundUpTo(shape.M, k.UM)) * float64(roundUpTo(shape.N, k.UN)) *
			float64(roundUpTo(shape.K, k.UK))
		tasks := ((shape.M + k.UM - 1) / k.UM) * ((shape.N + k.UN - 1) / k.UN)
		// Degenerate-grid discount: the dispatch tables know that a grid
		// far below device width is catastrophic (they switch to split-K
		// or skinny kernels there), but they tolerate moderate
		// under-occupancy and any wave quantization — the imbalance
		// MikPoly exploits.
		underutil := math.Max(1, float64(v.hw.NumPEs)/4/float64(tasks))
		score := padded * kr.cyclesPerFLOP * underutil
		if score < bestScore {
			bestScore = score
			best = kr
		}
	}
	return singleKernelProgram(shape, best)
}

func roundUpTo(n, align int) int { return (n + align - 1) / align * align }
