package baseline

import (
	"fmt"
	"math"

	"mikpoly/internal/kernel"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// Range declares one dimension's dynamic range [Lo, Hi] (Lo == Hi for a
// static dimension) — the foreknowledge DietCode and Nimble require from the
// developer (§2.2).
type Range struct{ Lo, Hi int }

// Contains reports whether v lies in the declared range.
func (r Range) Contains(v int) bool { return v >= r.Lo && v <= r.Hi }

// Validate checks the range is non-empty and positive.
func (r Range) Validate() error {
	if r.Lo < 1 || r.Hi < r.Lo {
		return fmt.Errorf("baseline: invalid range [%d, %d]", r.Lo, r.Hi)
	}
	return nil
}

// Ranges declares the GEMM shape ranges supplied at DietCode/Nimble
// compile time.
type Ranges struct{ M, N, K Range }

// Contains reports whether the runtime shape falls inside the declaration.
func (rs Ranges) Contains(s tensor.GemmShape) bool {
	return rs.M.Contains(s.M) && rs.N.Contains(s.N) && rs.K.Contains(s.K)
}

// Validate checks every dimension range.
func (rs Ranges) Validate() error {
	for _, r := range []Range{rs.M, rs.N, rs.K} {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// maxRepsPerDim bounds how many representative values DietCode tunes per
// dynamic dimension. DietCode keeps its auto-scheduling budget small by
// tuning a handful of programs across the declared range (§2.2: "a series of
// tuned tensor programs, each tailored for a set of shapes"); the coarse
// buckets are precisely why in-range shapes still run sub-optimally
// (§5.2.3).
const maxRepsPerDim = 4

// repPoints returns the representative values DietCode tunes for inside one
// dimension range: both endpoints plus geometrically spaced interior points,
// at most maxRepsPerDim total. A static dimension (Lo == Hi) gets one point.
func repPoints(r Range) []int {
	if r.Lo == r.Hi {
		return []int{r.Lo}
	}
	seen := map[int]bool{}
	var out []int
	add := func(v int) {
		if v < r.Lo {
			v = r.Lo
		}
		if v > r.Hi {
			v = r.Hi
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	add(r.Lo)
	ratio := float64(r.Hi) / float64(r.Lo)
	for i := 1; i < maxRepsPerDim-1; i++ {
		f := float64(i) / float64(maxRepsPerDim-1)
		add(int(float64(r.Lo) * math.Pow(ratio, f)))
	}
	add(r.Hi)
	return out
}

// bucketFor returns the smallest representative >= v (DietCode dispatches a
// runtime shape to the tuned program whose tuning shape covers it).
func bucketFor(reps []int, v int) (int, bool) {
	best := -1
	for _, r := range reps {
		if r >= v && (best == -1 || r < best) {
			best = r
		}
	}
	if best == -1 {
		// v above every representative: fall back to the largest.
		for _, r := range reps {
			if r > best {
				best = r
			}
		}
		if best == -1 {
			return 0, false
		}
	}
	return best, true
}

// dietCodeGenericityPenalty reflects that each of DietCode's tuned programs
// must stay valid and reasonable across its whole shape bucket, forfeiting
// the per-shape specialization (unroll factors, if-hoisting, exact-fit
// tiling) a shape-specific schedule gets.
const dietCodeGenericityPenalty = 0.7

// DietCode models the DietCode dynamic-shape auto-scheduler: at compile time
// it tunes one single-kernel program per representative shape in the
// declared range (using the same micro-kernel search space MikPoly's offline
// stage has, minus polymerization); at runtime it dispatches to the program
// of the covering bucket and refuses shapes outside the declaration.
type DietCode struct {
	lib    *tune.Library
	ranges Ranges
	reps   [3][]int
	tuned  map[[3]int]kernel.MicroKernel
}

// NewDietCode runs DietCode's offline tuning over the declared ranges.
func NewDietCode(lib *tune.Library, ranges Ranges) (*DietCode, error) {
	if err := ranges.Validate(); err != nil {
		return nil, err
	}
	d := &DietCode{
		lib:    lib,
		ranges: ranges,
		reps:   [3][]int{repPoints(ranges.M), repPoints(ranges.N), repPoints(ranges.K)},
		tuned:  make(map[[3]int]kernel.MicroKernel),
	}
	pl := poly.NewPlanner(lib)
	pl.Patterns = []poly.PatternID{poly.PatternI}
	for _, m := range d.reps[0] {
		for _, n := range d.reps[1] {
			for _, k := range d.reps[2] {
				prog, _, err := pl.Plan(tensor.GemmShape{M: m, N: n, K: k})
				if err != nil {
					return nil, fmt.Errorf("dietcode offline tuning (%d,%d,%d): %w", m, n, k, err)
				}
				kern := prog.Regions[0].Kern
				kern.Premium = dietCodeGenericityPenalty
				d.tuned[[3]int{m, n, k}] = kern
			}
		}
	}
	return d, nil
}

// Name implements Planner.
func (d *DietCode) Name() string { return "DietCode" }

// NumTunedPrograms reports the offline program count (compile-cost proxy).
func (d *DietCode) NumTunedPrograms() int { return len(d.tuned) }

// Plan implements Planner. Out-of-range shapes are invalid runs.
func (d *DietCode) Plan(shape tensor.GemmShape) (*poly.Program, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("baseline DietCode: invalid shape %v", shape)
	}
	if !d.ranges.Contains(shape) {
		return nil, fmt.Errorf("%w: %v not in M%v N%v K%v", ErrOutOfRange,
			shape, d.ranges.M, d.ranges.N, d.ranges.K)
	}
	key := [3]int{}
	for i, v := range []int{shape.M, shape.N, shape.K} {
		b, ok := bucketFor(d.reps[i], v)
		if !ok {
			return nil, ErrOutOfRange
		}
		key[i] = b
	}
	k, ok := d.tuned[key]
	if !ok {
		return nil, fmt.Errorf("baseline DietCode: no tuned program for bucket %v", key)
	}
	return singleKernelProgram(shape, kernelRef{k: k})
}

// Nimble models Nimble's virtual-machine execution of a single shape-generic
// program: one kernel tuned for the middle of the declared range, carrying a
// genericity penalty for the runtime shape checks and non-specialized code
// the VM executes, and the same range restriction as DietCode.
type Nimble struct {
	lib    *tune.Library
	ranges Ranges
	k      kernelRef
}

// nimbleGenericityPenalty reflects shape-generic kernel code: symbolic loop
// bounds block tensorization and vectorization of the inner loop, and every
// launch pays VM dispatch — the reason Nimble trails DietCode by ~2.5× in
// Fig. 10 despite handling the same ranges.
const nimbleGenericityPenalty = 0.25

// NewNimble tunes the single generic program.
func NewNimble(lib *tune.Library, ranges Ranges) (*Nimble, error) {
	if err := ranges.Validate(); err != nil {
		return nil, err
	}
	mid := func(r Range) int { return int(math.Sqrt(float64(r.Lo) * float64(r.Hi))) }
	pl := poly.NewPlanner(lib)
	pl.Patterns = []poly.PatternID{poly.PatternI}
	shape := tensor.GemmShape{M: max(1, mid(ranges.M)), N: max(1, mid(ranges.N)), K: max(1, mid(ranges.K))}
	prog, _, err := pl.Plan(shape)
	if err != nil {
		return nil, fmt.Errorf("nimble offline tuning: %w", err)
	}
	k := prog.Regions[0].Kern
	k.Premium = nimbleGenericityPenalty
	return &Nimble{lib: lib, ranges: ranges, k: kernelRef{k: k}}, nil
}

// Name implements Planner.
func (n *Nimble) Name() string { return "Nimble" }

// Plan implements Planner.
func (n *Nimble) Plan(shape tensor.GemmShape) (*poly.Program, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("baseline Nimble: invalid shape %v", shape)
	}
	if !n.ranges.Contains(shape) {
		return nil, fmt.Errorf("%w: %v", ErrOutOfRange, shape)
	}
	return singleKernelProgram(shape, n.k)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
