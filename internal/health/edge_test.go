package health

import (
	"reflect"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
)

// TestMassDeathNeverEmptiesDevice drives the registry through a cascade that
// kills every PE it is shown, across successive (shrinking) views: the
// registry must stop at n-1 quarantined, the view must always apply to a
// plannable >= 1-PE device, and further death reports must be no-ops rather
// than panics.
func TestMassDeathNeverEmptiesDevice(t *testing.T) {
	const n = 8
	reg := NewRegistry(n, Config{})
	for i := 0; i < n+3; i++ { // several more rounds than PEs
		v := reg.View()
		live := n - len(v.Quarantined)
		r := res(live)
		for pe := 0; pe < live; pe++ {
			r.DeadPEs = append(r.DeadPEs, pe)
		}
		r.FaultedTasks = live
		reg.ObserveResult(v, r)
	}
	v := reg.View()
	if len(v.Quarantined) != n-1 {
		t.Fatalf("quarantined %d PEs, want %d (all but one)", len(v.Quarantined), n-1)
	}
	dev := hw.A100()
	dev.NumPEs = n
	if h := v.Apply(dev); h.NumPEs != 1 {
		t.Fatalf("maximally degraded view applies to %d PEs, want 1", h.NumPEs)
	}
	if v.Fingerprint() == "" {
		t.Fatal("maximally degraded view has no fingerprint")
	}
	// A hand-built view claiming every PE dead (which the registry itself
	// never produces) must still clamp to a 1-PE device.
	all := View{NumPEs: n, Quarantined: []int{0, 1, 2, 3, 4, 5, 6, 7}}
	if h := all.Apply(dev); h.NumPEs != 1 {
		t.Fatalf("all-quarantined view applies to %d PEs, want 1", h.NumPEs)
	}
}

// TestZeroViewIsHealthyAndInert pins the zero value's semantics: callers
// (the runtime without a registry) pass View{} around freely, so it must be
// healthy, fingerprintless, and an identity for Apply and RemapFaults.
func TestZeroViewIsHealthyAndInert(t *testing.T) {
	var v View
	if !v.Healthy() {
		t.Fatal("zero view is not healthy")
	}
	if fp := v.Fingerprint(); fp != "" {
		t.Fatalf("zero view fingerprint = %q, want empty", fp)
	}
	h := hw.A100()
	if got := v.Apply(h); !reflect.DeepEqual(got, h) {
		t.Fatalf("zero view changed the hardware: %+v", got)
	}
	f := sim.Faults{
		Seed:          7,
		TaskFaultRate: 0.25,
		DropPEs:       []int{2, 5},
		StickyFaults:  map[int]int{3: 4},
		SlowPE:        map[int]float64{1: 2},
	}
	if got := v.RemapFaults(f); !reflect.DeepEqual(got, f) {
		t.Fatalf("zero view rewrote the fault config:\n got %+v\nwant %+v", got, f)
	}
}

// TestFingerprintStableUnderObservationOrder: two registries reaching the
// same degraded state through different observation orders must agree on the
// fingerprint — the compiler's (shape, fingerprint) cache key depends on it.
func TestFingerprintStableUnderObservationOrder(t *testing.T) {
	kill := func(reg *Registry, basePEs ...int) {
		for _, pe := range basePEs {
			v := reg.View()
			// Translate the base id into the current view's index.
			idx, seen := 0, 0
			for b := 0; b < 8; b++ {
				q := false
				for _, qp := range v.Quarantined {
					if qp == b {
						q = true
					}
				}
				if q {
					continue
				}
				if b == pe {
					idx = seen
					break
				}
				seen++
			}
			r := res(8 - len(v.Quarantined))
			r.DeadPEs = []int{idx}
			r.FaultedTasks = 1
			reg.ObserveResult(v, r)
		}
	}
	a := NewRegistry(8, Config{})
	kill(a, 1, 3, 6)
	b := NewRegistry(8, Config{})
	kill(b, 6, 1, 3)
	if fa, fb := a.View().Fingerprint(), b.View().Fingerprint(); fa != fb || fa == "" {
		t.Fatalf("fingerprints diverge by observation order: %q vs %q", fa, fb)
	}
}

// TestFingerprintIsPureAndRepeatable: Fingerprint must neither depend on the
// input slice's order nor mutate it, and repeated computation must be
// byte-identical — it is a cache key, and Go map iteration order must never
// leak into it via callers that assembled Quarantined from a map.
func TestFingerprintIsPureAndRepeatable(t *testing.T) {
	v := View{NumPEs: 16, Quarantined: []int{5, 2, 9}, BandwidthFactor: 0.6}
	want := "q2,5,9|bw0.60"
	for i := 0; i < 100; i++ {
		if got := v.Fingerprint(); got != want {
			t.Fatalf("iteration %d: fingerprint %q, want %q", i, got, want)
		}
	}
	if !reflect.DeepEqual(v.Quarantined, []int{5, 2, 9}) {
		t.Fatalf("Fingerprint mutated its input slice: %v", v.Quarantined)
	}
}
