// Package health tracks accelerator degradation observed by the simulator
// and condenses it into a *degraded hardware view* the planner can re-target.
//
// MikPoly's online stage prices candidate programs with Cost(S, H) — the
// hardware abstraction H = (P_multi, M_local, M_global) is a planner input,
// not a constant (PAPER.md §4). That makes degradation a planning problem:
// when a PE dies or bandwidth browns out, the cheapest correct response is
// not to retry blindly but to re-derive the program against
// H' = (P_multi − quarantined, M_local, derated M_global).
//
// The registry classifies fault outcomes from sim.Result into transient
// (salt-varying, a retry clears them) and persistent (streaks concentrated
// on few PEs, mid-run deaths, repeated bandwidth derates), quarantines PEs
// crossing the streak threshold, and exposes the current View with a stable
// fingerprint for keying program caches. All methods are safe for concurrent
// use.
package health

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
)

// Classification is the registry's verdict on one observed execution.
type Classification int

const (
	// Healthy: the run completed with no faults.
	Healthy Classification = iota
	// Transient: faults occurred but look systemic or salt-clearable — a
	// retry with a fresh salt is the right response.
	Transient
	// Persistent: the run carries evidence of lasting degradation (PE
	// death, a streak crossing the quarantine threshold, adopted
	// bandwidth derate) — replanning against the degraded view is the
	// right response.
	Persistent
)

func (c Classification) String() string {
	switch c {
	case Healthy:
		return "healthy"
	case Transient:
		return "transient"
	default:
		return "persistent"
	}
}

// Config tunes the registry's classification thresholds. Zero values select
// the defaults.
type Config struct {
	// StreakThreshold is the number of consecutive faulty observations a
	// PE must accrue before it is quarantined. Default 3.
	StreakThreshold int

	// BandwidthStreak is the number of consecutive derated observations
	// before the registry adopts the derate into the view (and the number
	// of consecutive clean ones before it lifts it). Default 2.
	BandwidthStreak int
}

func (c Config) withDefaults() Config {
	if c.StreakThreshold <= 0 {
		c.StreakThreshold = 3
	}
	if c.BandwidthStreak <= 0 {
		c.BandwidthStreak = 2
	}
	return c
}

// Stats is a snapshot of the registry's counters.
type Stats struct {
	Observations uint64 // total ObserveResult calls
	Transients   uint64 // observations classified Transient
	Persistents  uint64 // observations classified Persistent
	Quarantines  uint64 // PEs quarantined over the registry's lifetime
	BWAdoptions  uint64 // bandwidth derates adopted into the view
	Generation   uint64 // view-change counter (0 = pristine)
	Quarantined  int    // currently quarantined PEs
}

// Registry accumulates per-PE fault evidence and maintains the degraded
// view. One registry serves one device (numPEs is the base P_multi).
type Registry struct {
	mu  sync.Mutex
	n   int
	cfg Config

	streak      []int  // consecutive faulty observations per base PE
	quarantined []bool // per base PE
	nQuar       int

	bwStreak int     // consecutive observations carrying a derate
	bwClear  int     // consecutive clean observations since a derate
	bwFactor float64 // adopted view factor, 1 = full bandwidth
	bwSeen   float64 // most recent observed derate (candidate factor)

	gen   uint64
	stats Stats
}

// NewRegistry creates a registry for a device with numPEs processing
// elements.
func NewRegistry(numPEs int, cfg Config) *Registry {
	if numPEs <= 0 {
		panic("health: registry needs at least one PE")
	}
	return &Registry{
		n:           numPEs,
		cfg:         cfg.withDefaults(),
		streak:      make([]int, numPEs),
		quarantined: make([]bool, numPEs),
		bwFactor:    1,
	}
}

// ObserveResult folds one simulated execution into the registry. v must be
// the view the run was planned and executed under: the result's PE indices
// are positions in that view's survivor set, and are translated back to base
// PE ids before attribution. Returns the classification of this observation.
func (r *Registry) ObserveResult(v View, res sim.Result) Classification {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Observations++

	survivors := r.survivorsFor(v)
	changed := false
	persistent := false

	// Mid-run deaths are unambiguous: quarantine immediately.
	for _, pe := range res.DeadPEs {
		base, ok := mapPE(survivors, pe)
		if !ok {
			continue
		}
		persistent = true
		if r.quarantineLocked(base) {
			changed = true
		}
	}

	// Streak bookkeeping. Faults concentrated on few PEs are a hardware
	// signal; a uniform storm (many PEs faulting at once) is systemic —
	// workload- or injection-level — and must not poison per-PE streaks,
	// or a high transient rate would quarantine the whole device.
	faulty := 0
	for _, n := range res.PEFaults {
		if n > 0 {
			faulty++
		}
	}
	live := r.n - r.nQuar
	concentrated := faulty > 0 && faulty <= maxInt(1, live/4)
	nPE := len(res.PEBusy)
	if len(res.PEFaults) > nPE {
		nPE = len(res.PEFaults)
	}
	for pe := 0; pe < nPE; pe++ {
		base, ok := mapPE(survivors, pe)
		if !ok || r.quarantined[base] {
			continue
		}
		nFaults := 0
		if pe < len(res.PEFaults) {
			nFaults = res.PEFaults[pe]
		}
		switch {
		case nFaults == 0:
			// The PE ran clean this observation (if it ran at all):
			// streaks are *consecutive* evidence.
			if pe < len(res.PEBusy) && res.PEBusy[pe] > 0 {
				r.streak[base] = 0
			}
		case concentrated:
			r.streak[base]++
			if r.streak[base] >= r.cfg.StreakThreshold {
				persistent = true
				if r.quarantineLocked(base) {
					changed = true
				}
			}
		}
	}

	// Bandwidth derate hysteresis.
	if res.BandwidthDerate > 0 && res.BandwidthDerate < 1 {
		r.bwStreak++
		r.bwClear = 0
		r.bwSeen = res.BandwidthDerate
		if r.bwStreak >= r.cfg.BandwidthStreak && r.bwFactor != r.bwSeen {
			r.bwFactor = r.bwSeen
			r.stats.BWAdoptions++
			persistent = true
			changed = true
		}
	} else {
		r.bwClear++
		r.bwStreak = 0
		if r.bwClear >= r.cfg.BandwidthStreak && r.bwFactor != 1 {
			r.bwFactor = 1
			changed = true
		}
	}

	if changed {
		r.gen++
		r.stats.Generation = r.gen
	}
	switch {
	case persistent:
		r.stats.Persistents++
		return Persistent
	case !res.Clean():
		r.stats.Transients++
		return Transient
	default:
		return Healthy
	}
}

// quarantineLocked marks a base PE quarantined, refusing to take the last
// live PE offline (a 0-PE view is unplannable; the planner's job is to
// degrade gracefully, not to halt). Returns whether the view changed.
func (r *Registry) quarantineLocked(base int) bool {
	if r.quarantined[base] || r.nQuar >= r.n-1 {
		return false
	}
	r.quarantined[base] = true
	r.nQuar++
	r.stats.Quarantines++
	return true
}

// survivorsFor returns the base-PE ids the given view's PE indices refer to,
// or nil when the view is the full device (identity mapping).
func (r *Registry) survivorsFor(v View) []int {
	if len(v.Quarantined) == 0 {
		return nil
	}
	quar := make(map[int]bool, len(v.Quarantined))
	for _, pe := range v.Quarantined {
		quar[pe] = true
	}
	out := make([]int, 0, r.n)
	for pe := 0; pe < r.n; pe++ {
		if !quar[pe] {
			out = append(out, pe)
		}
	}
	return out
}

func mapPE(survivors []int, pe int) (int, bool) {
	if survivors == nil {
		return pe, true
	}
	if pe < 0 || pe >= len(survivors) {
		return 0, false
	}
	return survivors[pe], true
}

// View returns the current degraded hardware view.
func (r *Registry) View() View {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := View{NumPEs: r.n, BandwidthFactor: r.bwFactor, Generation: r.gen}
	for pe, q := range r.quarantined {
		if q {
			v.Quarantined = append(v.Quarantined, pe)
		}
	}
	return v
}

// Stats returns a snapshot of the counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Quarantined = r.nQuar
	return s
}

// Reset returns the registry to the pristine state (all PEs live, full
// bandwidth) and bumps the generation so cached degraded plans age out.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.streak {
		r.streak[i] = 0
		r.quarantined[i] = false
	}
	if r.nQuar > 0 || r.bwFactor != 1 {
		r.gen++
		r.stats.Generation = r.gen
	}
	r.nQuar = 0
	r.bwStreak, r.bwClear = 0, 0
	r.bwFactor, r.bwSeen = 1, 0
}

// View is an immutable snapshot of the degraded hardware state:
// H' = (NumPEs − |Quarantined|, M_local, BandwidthFactor · M_global).
type View struct {
	// NumPEs is the base device PE count the quarantine indices refer to.
	NumPEs int
	// Quarantined lists quarantined base PE ids, sorted ascending.
	Quarantined []int
	// BandwidthFactor scales global bandwidth, in (0, 1]; 1 = full.
	BandwidthFactor float64
	// Generation is the registry's view-change counter at snapshot time.
	Generation uint64
}

// Healthy reports whether the view is the pristine device.
func (v View) Healthy() bool {
	return len(v.Quarantined) == 0 && (v.BandwidthFactor == 0 || v.BandwidthFactor >= 1)
}

// Fingerprint is a stable, human-readable key for the degraded state —
// empty for the healthy view, e.g. "q1,3|bw0.60" for PEs 1 and 3
// quarantined under a 0.6 bandwidth derate. Program caches key on it so
// healthy-mode and degraded-mode plans never cross-contaminate.
func (v View) Fingerprint() string {
	if v.Healthy() {
		return ""
	}
	var b strings.Builder
	if len(v.Quarantined) > 0 {
		q := append([]int(nil), v.Quarantined...)
		sort.Ints(q)
		b.WriteByte('q')
		for i, pe := range q {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", pe)
		}
	}
	if v.BandwidthFactor > 0 && v.BandwidthFactor < 1 {
		if b.Len() > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "bw%.2f", v.BandwidthFactor)
	}
	return b.String()
}

// Apply derives the degraded hardware H' from the base device: survivors
// only (never fewer than one PE) and derated global bandwidth. M_local is
// untouched — quarantining removes PEs, it does not shrink the ones left.
func (v View) Apply(h hw.Hardware) hw.Hardware {
	drop := 0
	for _, pe := range v.Quarantined {
		if pe >= 0 && pe < h.NumPEs {
			drop++
		}
	}
	if h.NumPEs-drop < 1 {
		drop = h.NumPEs - 1
	}
	h.NumPEs -= drop
	if v.BandwidthFactor > 0 && v.BandwidthFactor < 1 {
		h.GlobalBytesPerCycle *= v.BandwidthFactor
	}
	return h
}

// RemapFaults translates a fault config expressed in base-PE ids into the
// view's survivor numbering, so a schedule injected at the serve layer stays
// meaningful when a stage executes on the shrunken H'. Entries addressing
// quarantined PEs are dropped — that hardware no longer takes part — and
// device-wide knobs (seed, salt, rates, bandwidth, brownout) pass through.
func (v View) RemapFaults(f sim.Faults) sim.Faults {
	if len(v.Quarantined) == 0 {
		return f
	}
	quar := make(map[int]bool, len(v.Quarantined))
	for _, pe := range v.Quarantined {
		quar[pe] = true
	}
	rank := make(map[int]int, v.NumPEs)
	next := 0
	for pe := 0; pe < v.NumPEs; pe++ {
		if !quar[pe] {
			rank[pe] = next
			next++
		}
	}

	out := f
	out.DropPEs = nil
	for _, pe := range f.DropPEs {
		if r, ok := rank[pe]; ok {
			out.DropPEs = append(out.DropPEs, r)
		}
	}
	out.SlowPE = remapMap(f.SlowPE, rank)
	out.PEDeathCycle = remapMap(f.PEDeathCycle, rank)
	out.StickyFaults = remapMap(f.StickyFaults, rank)
	return out
}

func remapMap[V any](m map[int]V, rank map[int]int) map[int]V {
	if len(m) == 0 {
		return nil
	}
	out := make(map[int]V, len(m))
	for pe, val := range m {
		if r, ok := rank[pe]; ok {
			out[r] = val
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
