package health

import (
	"reflect"
	"sync"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
)

// res builds a sim.Result with faults attributed to the given PEs (one fault
// each) on an 8-PE run where every PE was busy.
func res(n int, faultyPEs ...int) sim.Result {
	r := sim.Result{NumTasks: n, PEBusy: make([]float64, n)}
	for i := range r.PEBusy {
		r.PEBusy[i] = 100
	}
	if len(faultyPEs) > 0 {
		r.PEFaults = make([]int, n)
		for _, pe := range faultyPEs {
			r.PEFaults[pe]++
			r.FaultedTasks++
		}
	}
	return r
}

func TestCleanRunsStayHealthy(t *testing.T) {
	reg := NewRegistry(8, Config{})
	for i := 0; i < 10; i++ {
		if c := reg.ObserveResult(reg.View(), res(8)); c != Healthy {
			t.Fatalf("clean observation classified %v", c)
		}
	}
	v := reg.View()
	if !v.Healthy() || v.Fingerprint() != "" || v.Generation != 0 {
		t.Fatalf("registry degraded without evidence: %+v", v)
	}
}

func TestConcentratedStreakQuarantines(t *testing.T) {
	reg := NewRegistry(8, Config{StreakThreshold: 3})
	v := reg.View()
	if c := reg.ObserveResult(v, res(8, 2)); c != Transient {
		t.Fatalf("first fault classified %v, want transient", c)
	}
	if c := reg.ObserveResult(v, res(8, 2)); c != Transient {
		t.Fatalf("second fault classified %v, want transient", c)
	}
	if c := reg.ObserveResult(v, res(8, 2)); c != Persistent {
		t.Fatalf("third fault classified %v, want persistent", c)
	}
	got := reg.View()
	if !reflect.DeepEqual(got.Quarantined, []int{2}) {
		t.Fatalf("quarantined = %v, want [2]", got.Quarantined)
	}
	if got.Generation == 0 || got.Fingerprint() != "q2" {
		t.Fatalf("view after quarantine: %+v fp=%q", got, got.Fingerprint())
	}
}

func TestCleanRunResetsStreak(t *testing.T) {
	reg := NewRegistry(8, Config{StreakThreshold: 3})
	v := reg.View()
	reg.ObserveResult(v, res(8, 2))
	reg.ObserveResult(v, res(8, 2))
	reg.ObserveResult(v, res(8)) // PE 2 ran clean: streak resets
	reg.ObserveResult(v, res(8, 2))
	reg.ObserveResult(v, res(8, 2))
	if q := reg.View().Quarantined; len(q) != 0 {
		t.Fatalf("interrupted streak still quarantined %v", q)
	}
}

func TestUniformFaultStormIsSystemic(t *testing.T) {
	reg := NewRegistry(8, Config{StreakThreshold: 1})
	v := reg.View()
	// All 8 PEs faulting at once is workload/systemic, not a per-PE signal
	// — even with threshold 1 nothing must be quarantined.
	for i := 0; i < 5; i++ {
		if c := reg.ObserveResult(v, res(8, 0, 1, 2, 3, 4, 5, 6, 7)); c != Transient {
			t.Fatalf("storm classified %v, want transient", c)
		}
	}
	if q := reg.View().Quarantined; len(q) != 0 {
		t.Fatalf("uniform storm quarantined PEs: %v", q)
	}
}

func TestDeadPEQuarantinedImmediately(t *testing.T) {
	reg := NewRegistry(8, Config{})
	r := res(8)
	r.DeadPEs = []int{5}
	r.FaultedTasks = 1
	if c := reg.ObserveResult(reg.View(), r); c != Persistent {
		t.Fatalf("death classified %v, want persistent", c)
	}
	v := reg.View()
	if !reflect.DeepEqual(v.Quarantined, []int{5}) || v.Fingerprint() != "q5" {
		t.Fatalf("view after death: %+v fp=%q", v, v.Fingerprint())
	}
}

func TestNeverQuarantinesLastPE(t *testing.T) {
	reg := NewRegistry(2, Config{})
	r := res(2)
	r.DeadPEs = []int{0, 1}
	reg.ObserveResult(reg.View(), r)
	v := reg.View()
	if len(v.Quarantined) != 1 {
		t.Fatalf("quarantined %v — exactly one of two PEs may go", v.Quarantined)
	}
	if h := v.Apply(hw.A100()); h.NumPEs < 1 {
		t.Fatalf("Apply produced %d PEs", h.NumPEs)
	}
}

func TestSurvivorIndexTranslation(t *testing.T) {
	reg := NewRegistry(4, Config{})
	// Quarantine base PE 1 via a death.
	r := res(4)
	r.DeadPEs = []int{1}
	reg.ObserveResult(reg.View(), r)
	degraded := reg.View()
	if !reflect.DeepEqual(degraded.Quarantined, []int{1}) {
		t.Fatalf("setup: %v", degraded.Quarantined)
	}
	// A run under the degraded view has 3 PEs: view-PE 1 is base PE 2,
	// view-PE 2 is base PE 3. A death of view-PE 2 must quarantine base 3.
	r2 := res(3)
	r2.DeadPEs = []int{2}
	reg.ObserveResult(degraded, r2)
	if q := reg.View().Quarantined; !reflect.DeepEqual(q, []int{1, 3}) {
		t.Fatalf("quarantined = %v, want [1 3]", q)
	}
}

func TestBandwidthHysteresis(t *testing.T) {
	reg := NewRegistry(8, Config{BandwidthStreak: 2})
	v := reg.View()
	derated := res(8)
	derated.BandwidthDerate = 0.6
	if reg.ObserveResult(v, derated); reg.View().BandwidthFactor != 1 {
		t.Fatal("single derate adopted without hysteresis")
	}
	if c := reg.ObserveResult(v, derated); c != Persistent {
		t.Fatalf("second derate classified %v, want persistent", c)
	}
	got := reg.View()
	if got.BandwidthFactor != 0.6 || got.Fingerprint() != "bw0.60" {
		t.Fatalf("after adoption: factor %g fp %q", got.BandwidthFactor, got.Fingerprint())
	}
	// Two clean observations lift it.
	reg.ObserveResult(v, res(8))
	reg.ObserveResult(v, res(8))
	if got := reg.View(); got.BandwidthFactor != 1 || !got.Healthy() {
		t.Fatalf("derate not lifted: %+v", got)
	}
}

func TestViewApply(t *testing.T) {
	h := hw.A100()
	v := View{NumPEs: h.NumPEs, Quarantined: []int{0, 7}, BandwidthFactor: 0.5}
	got := v.Apply(h)
	if got.NumPEs != h.NumPEs-2 {
		t.Fatalf("NumPEs = %d, want %d", got.NumPEs, h.NumPEs-2)
	}
	if got.GlobalBytesPerCycle != h.GlobalBytesPerCycle*0.5 {
		t.Fatalf("bandwidth = %g", got.GlobalBytesPerCycle)
	}
	if got.LocalMemBytes != h.LocalMemBytes {
		t.Fatal("Apply must not touch M_local")
	}
	// Healthy view is identity.
	if id := (View{NumPEs: h.NumPEs}).Apply(h); id != h {
		t.Fatalf("healthy Apply changed hardware: %+v", id)
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	a := View{NumPEs: 8, Quarantined: []int{3, 1}, BandwidthFactor: 0.75}
	b := View{NumPEs: 8, Quarantined: []int{1, 3}, BandwidthFactor: 0.75}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("order-sensitive fingerprint: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != "q1,3|bw0.75" {
		t.Fatalf("fingerprint = %q", a.Fingerprint())
	}
	c := View{NumPEs: 8, Quarantined: []int{1}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("distinct views share a fingerprint")
	}
}

func TestRemapFaults(t *testing.T) {
	v := View{NumPEs: 4, Quarantined: []int{1}}
	f := sim.Faults{
		Seed:          9,
		TaskFaultRate: 0.1,
		DropPEs:       []int{0, 1},
		SlowPE:        map[int]float64{3: 2},
		PEDeathCycle:  map[int]float64{1: 100, 2: 200},
		StickyFaults:  map[int]int{1: 5},
	}
	got := v.RemapFaults(f)
	// Survivors are base 0,2,3 → view 0,1,2. Base-1 entries vanish.
	if !reflect.DeepEqual(got.DropPEs, []int{0}) {
		t.Fatalf("DropPEs = %v", got.DropPEs)
	}
	if !reflect.DeepEqual(got.SlowPE, map[int]float64{2: 2}) {
		t.Fatalf("SlowPE = %v", got.SlowPE)
	}
	if !reflect.DeepEqual(got.PEDeathCycle, map[int]float64{1: 200}) {
		t.Fatalf("PEDeathCycle = %v", got.PEDeathCycle)
	}
	if got.StickyFaults != nil {
		t.Fatalf("StickyFaults = %v, want nil (only entry was quarantined)", got.StickyFaults)
	}
	if got.Seed != f.Seed || got.TaskFaultRate != f.TaskFaultRate {
		t.Fatal("device-wide knobs must pass through")
	}
	// Healthy view is identity.
	if id := (View{NumPEs: 4}).RemapFaults(f); !reflect.DeepEqual(id, f) {
		t.Fatalf("healthy remap changed config: %+v", id)
	}
}

func TestResetRestoresPristine(t *testing.T) {
	reg := NewRegistry(4, Config{})
	r := res(4)
	r.DeadPEs = []int{2}
	reg.ObserveResult(reg.View(), r)
	genBefore := reg.View().Generation
	reg.Reset()
	v := reg.View()
	if !v.Healthy() || v.Generation <= genBefore {
		t.Fatalf("reset view: %+v (gen before %d)", v, genBefore)
	}
}

func TestStatsCounters(t *testing.T) {
	reg := NewRegistry(8, Config{StreakThreshold: 1})
	v := reg.View()
	reg.ObserveResult(v, res(8))    // healthy
	reg.ObserveResult(v, res(8, 3)) // concentrated, threshold 1 → quarantine
	s := reg.Stats()
	if s.Observations != 2 || s.Persistents != 1 || s.Quarantines != 1 || s.Quarantined != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentObserveAndView(t *testing.T) {
	reg := NewRegistry(8, Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					reg.ObserveResult(reg.View(), res(8, g))
				} else {
					v := reg.View()
					_ = v.Fingerprint()
					_ = v.Apply(hw.A100())
					_ = reg.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}
