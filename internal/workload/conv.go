package workload

import (
	"fmt"

	"mikpoly/internal/tensor"
)

// ConvCase is one convolution benchmark case.
type ConvCase struct {
	ID       string
	Category string
	Shape    tensor.ConvShape
}

// convLayerSpec describes one convolution layer family from Table 4: a
// filter geometry plus the dynamic input-channel range sampled by the suite.
type convLayerSpec struct {
	model          string
	kh, kw         int
	stride         int
	pad            int
	inCLo, inCHi   int
	outCLo, outCHi int
	res            int // nominal input resolution at this layer depth
	cases          int // test-case count from Table 4
}

// table4Specs mirrors the rows of Table 4; the per-row case counts sum to
// 5485. Channel ranges follow the "[lo, hi]" dynamic channel sweeps of the
// table, and the nominal resolutions follow each model's layer depths.
var table4Specs = []convLayerSpec{
	// AlexNet
	{"alexnet", 11, 11, 4, 2, 3, 3, 64, 640, 224, 80},
	{"alexnet", 3, 3, 1, 1, 3, 39, 64, 384, 27, 240},
	// GoogLeNet
	{"googlenet", 7, 7, 2, 3, 3, 3, 64, 640, 224, 80},
	{"googlenet", 1, 1, 1, 0, 16, 160, 16, 160, 56, 160},
	{"googlenet", 3, 3, 1, 1, 8, 80, 8, 80, 28, 880},
	{"googlenet", 1, 1, 1, 0, 4, 40, 4, 40, 14, 1760},
	{"googlenet", 3, 3, 1, 1, 2, 40, 2, 40, 14, 240},
	{"googlenet", 1, 1, 1, 0, 2, 20, 2, 20, 7, 720},
	// ResNet-18
	{"resnet", 1, 1, 1, 0, 16, 160, 16, 160, 56, 240},
	{"resnet", 3, 3, 1, 1, 8, 80, 8, 80, 28, 240},
	{"resnet", 3, 3, 1, 1, 4, 40, 4, 40, 14, 240},
	{"resnet", 3, 3, 1, 1, 2, 20, 2, 20, 7, 160},
	// VGG-11
	{"vgg", 3, 3, 1, 1, 64, 640, 64, 640, 224, 77},
	{"vgg", 3, 3, 1, 1, 32, 320, 32, 320, 112, 80},
	{"vgg", 3, 3, 1, 1, 16, 160, 16, 160, 56, 128},
	{"vgg", 3, 3, 1, 1, 8, 80, 8, 80, 28, 80},
	{"vgg", 3, 3, 1, 1, 4, 40, 4, 40, 14, 80},
}

// Table4Suite returns the full 5485-case convolution suite.
func Table4Suite() []ConvCase {
	r := newRNG(2001)
	var out []ConvCase
	for _, spec := range table4Specs {
		for i := 0; i < spec.cases; i++ {
			s := tensor.ConvShape{
				Batch:  r.logIn(1, 16),
				InC:    r.intIn(spec.inCLo, spec.inCHi),
				InH:    spec.res,
				InW:    spec.res,
				OutC:   r.intIn(spec.outCLo, spec.outCHi),
				KH:     spec.kh,
				KW:     spec.kw,
				Stride: spec.stride,
				Pad:    spec.pad,
			}
			if !s.Valid() {
				panic(fmt.Sprintf("workload: generated invalid conv case %v", s))
			}
			out = append(out, ConvCase{
				ID:       fmt.Sprintf("conv/%s/%dx%d/%d", spec.model, spec.kh, spec.kw, i),
				Category: spec.model,
				Shape:    s,
			})
		}
	}
	return out
}

// SubsampleConv mirrors Subsample for convolution suites.
func SubsampleConv(cases []ConvCase, target int) []ConvCase {
	if target <= 0 || target >= len(cases) {
		return cases
	}
	step := (len(cases) + target - 1) / target
	out := make([]ConvCase, 0, target)
	for i := 0; i < len(cases); i += step {
		out = append(out, cases[i])
	}
	return out
}
