package workload

import (
	"testing"

	"mikpoly/internal/tensor"
)

func TestDeepBenchGEMMCountAndRanges(t *testing.T) {
	cases := DeepBenchGEMM()
	if len(cases) != 166 {
		t.Fatalf("DeepBench cases = %d, want 166 (Table 3)", len(cases))
	}
	for _, c := range cases {
		s := c.Shape
		if !s.Valid() {
			t.Fatalf("%s: invalid shape %v", c.ID, s)
		}
		if s.M < 2 || s.M > 10752 || s.N < 1 || s.N > 48000 || s.K < 128 || s.K > 500000 {
			t.Fatalf("%s: shape %v outside Table 3 ranges", c.ID, s)
		}
	}
}

func TestTransformerGEMM(t *testing.T) {
	cases := TransformerGEMM(100)
	if len(cases) != 100 {
		t.Fatalf("count = %d", len(cases))
	}
	validN := map[int]bool{
		768: true, 3 * 768: true, 3072: true,
		2048: true, 3 * 2048: true, 8192: true,
	}
	for _, c := range cases {
		if !c.Shape.Valid() {
			t.Fatalf("%s invalid", c.ID)
		}
		if !validN[c.Shape.N] {
			t.Fatalf("%s: N=%d is not a Transformer projection width", c.ID, c.Shape.N)
		}
		if c.Shape.M < 1 || c.Shape.M > 512*64 {
			t.Fatalf("%s: M=%d outside dynamic range", c.ID, c.Shape.M)
		}
	}
}

func TestCNNFCGEMM(t *testing.T) {
	for _, c := range CNNFCGEMM(50) {
		if !c.Shape.Valid() {
			t.Fatalf("%s invalid", c.ID)
		}
		if c.Shape.M > 1024 {
			t.Fatalf("%s: batch %d > 1024", c.ID, c.Shape.M)
		}
	}
}

func TestTable3SuiteSize(t *testing.T) {
	suite := Table3Suite()
	if len(suite) != 1599 {
		t.Fatalf("Table 3 suite = %d cases, want 1599 (§5.2.3)", len(suite))
	}
	ids := map[string]bool{}
	for _, c := range suite {
		if ids[c.ID] {
			t.Fatalf("duplicate case ID %s", c.ID)
		}
		ids[c.ID] = true
	}
}

func TestSuitesDeterministic(t *testing.T) {
	a, b := Table3Suite(), Table3Suite()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("case %d differs between runs", i)
		}
	}
}

func TestSubsample(t *testing.T) {
	suite := Table3Suite()
	small := Subsample(suite, 100)
	if len(small) < 80 || len(small) > 100 {
		t.Fatalf("Subsample(100) = %d cases", len(small))
	}
	if got := Subsample(suite, 0); len(got) != len(suite) {
		t.Fatal("target 0 must return all")
	}
	if got := Subsample(suite, 10000); len(got) != len(suite) {
		t.Fatal("oversized target must return all")
	}
}

func TestTable4SuiteSizeAndValidity(t *testing.T) {
	suite := Table4Suite()
	if len(suite) != 5485 {
		t.Fatalf("Table 4 suite = %d cases, want 5485", len(suite))
	}
	models := map[string]int{}
	for _, c := range suite {
		if !c.Shape.Valid() {
			t.Fatalf("%s: invalid conv shape %v", c.ID, c.Shape)
		}
		if !c.Shape.GemmShape().Valid() {
			t.Fatalf("%s: invalid GEMM lowering", c.ID)
		}
		models[c.Category]++
	}
	for _, m := range []string{"alexnet", "googlenet", "resnet", "vgg"} {
		if models[m] == 0 {
			t.Fatalf("no cases for %s", m)
		}
	}
}

func TestSubsampleConv(t *testing.T) {
	suite := Table4Suite()
	small := SubsampleConv(suite, 50)
	if len(small) < 40 || len(small) > 50 {
		t.Fatalf("SubsampleConv(50) = %d", len(small))
	}
}

func TestTable8Suite(t *testing.T) {
	suite := Table8Suite()
	if len(suite) != 52 {
		t.Fatalf("Table 8 suite = %d cases, want 52 (4 ops × 13 token counts)", len(suite))
	}
	ops := map[string]int{}
	for _, c := range suite {
		if !c.Shape.Valid() {
			t.Fatalf("%s invalid", c.ID)
		}
		if c.Shape.N < 1 || c.Shape.N > 4096 {
			t.Fatalf("%s: N=%d outside [1, 4096]", c.ID, c.Shape.N)
		}
		ops[c.Category]++
	}
	if len(ops) != 4 {
		t.Fatalf("ops = %v, want 4 operators", ops)
	}
	for op, n := range ops {
		if n != 13 {
			t.Fatalf("%s has %d cases, want 13", op, n)
		}
	}
}

func TestLlamaOpsMatchTable8(t *testing.T) {
	ops := LlamaOps()
	want := map[string][2]int{
		"qkv_proj": {3840, 5120}, "o_proj": {5120, 1280},
		"ffn_up": {3456, 5120}, "ffn_down": {5120, 3456},
	}
	for _, op := range ops {
		w, ok := want[op.Layer]
		if !ok || op.M != w[0] || op.K != w[1] {
			t.Fatalf("op %+v does not match Table 8", op)
		}
	}
}

func TestLogInBounds(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.logIn(3, 777)
		if v < 3 || v > 777 {
			t.Fatalf("logIn out of bounds: %d", v)
		}
	}
	if r.logIn(5, 5) != 5 {
		t.Fatal("degenerate range")
	}
	if r.intIn(9, 9) != 9 {
		t.Fatal("degenerate intIn")
	}
}

func TestFromGemmShapes(t *testing.T) {
	shapes := map[tensor.GemmShape]int{
		{M: 1, N: 2, K: 3}: 5,
		{M: 4, N: 5, K: 6}: 1,
	}
	cases := FromGemmShapes("model", shapes)
	if len(cases) != 2 {
		t.Fatalf("cases = %d", len(cases))
	}
	if cases[0].ID > cases[1].ID {
		t.Fatal("cases not sorted")
	}
	for _, c := range cases {
		if c.Category != "model" || !c.Shape.Valid() {
			t.Fatalf("bad case %+v", c)
		}
	}
	again := FromGemmShapes("model", shapes)
	for i := range cases {
		if cases[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}
