package workload

import (
	"reflect"
	"testing"
)

// TestTraceBurstWindow checks the surge window: a ×8 burst must pack
// substantially more arrivals into the window than the unbursted trace,
// leave arrivals outside it untouched in distribution, and stay
// deterministic per seed.
func TestTraceBurstWindow(t *testing.T) {
	base := TraceConfig{
		Seed: 7, Requests: 400, ArrivalsPerSec: 50, ClockHz: 1e9,
	}
	burst := base
	burst.BurstFactor = 8
	burst.BurstStartSec = 1
	burst.BurstLenSec = 2

	plain := GenerateTrace(base)
	surged := GenerateTrace(burst)

	count := func(tr []TraceRequest, lo, hi float64) int {
		n := 0
		for _, r := range tr {
			if r.ArrivalCycle >= lo*1e9 && r.ArrivalCycle < hi*1e9 {
				n++
			}
		}
		return n
	}
	inPlain := count(plain, 1, 3)
	inSurged := count(surged, 1, 3)
	if inSurged < 3*inPlain {
		t.Fatalf("burst window holds %d arrivals, plain %d; want >= 3x", inSurged, inPlain)
	}

	// Before the window the traces are identical: the burst only rescales
	// gaps once the clock enters [start, start+len).
	for i := range plain {
		if plain[i].ArrivalCycle >= 1e9 {
			break
		}
		if !reflect.DeepEqual(plain[i], surged[i]) {
			t.Fatalf("request %d differs before the burst window", i)
		}
	}

	again := GenerateTrace(burst)
	if !reflect.DeepEqual(surged, again) {
		t.Fatal("burst trace is not deterministic per seed")
	}
}

// TestTraceBurstDefaultOff ensures the zero value means no burst.
func TestTraceBurstDefaultOff(t *testing.T) {
	a := GenerateTrace(TraceConfig{Seed: 3, Requests: 64})
	b := GenerateTrace(TraceConfig{Seed: 3, Requests: 64, BurstFactor: 1})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BurstFactor 1 changed the trace")
	}
}
