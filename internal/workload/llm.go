package workload

import (
	"fmt"

	"mikpoly/internal/tensor"
)

// LlamaOp identifies one of the four GEMM operators of Table 8 in the
// Llama2-13b decoder layer under 4-way tensor parallelism (hidden 5120,
// 40 heads, FFN 13824; per-GPU slices as reported by the paper).
type LlamaOp struct {
	// Layer is the operator name (qkv_proj, o_proj, ffn_up, ffn_down).
	Layer string
	// M and K are the static dimensions of the weight slice; N is the
	// dynamic token dimension (batch × sequence tokens in flight).
	M, K int
}

// LlamaOps returns the four operators of Table 8.
func LlamaOps() []LlamaOp {
	return []LlamaOp{
		{Layer: "qkv_proj", M: 3840, K: 5120},
		{Layer: "o_proj", M: 5120, K: 1280},
		{Layer: "ffn_up", M: 3456, K: 5120},
		{Layer: "ffn_down", M: 5120, K: 3456},
	}
}

// LlamaTokenCounts returns the distinct dynamic-N values of §5.2.4: sequence
// lengths 2^0..2^9 crossed with batch sizes 2^0..2^3 give the distinct
// products 2^0..2^12.
func LlamaTokenCounts() []int {
	var out []int
	for i := 0; i <= 12; i++ {
		out = append(out, 1<<i)
	}
	return out
}

// Table8Suite returns the 52 unique GEMM test cases of Table 8: the four
// operators crossed with the 13 distinct token counts.
func Table8Suite() []Case {
	var out []Case
	for _, op := range LlamaOps() {
		for _, n := range LlamaTokenCounts() {
			out = append(out, Case{
				ID:       fmt.Sprintf("llama2-13b/%s/n%d", op.Layer, n),
				Category: op.Layer,
				Shape:    tensor.GemmShape{M: op.M, N: n, K: op.K},
			})
		}
	}
	return out
}
