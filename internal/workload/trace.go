package workload

import "math"

// TraceRequest is one synthetic serving request: an arrival time in device
// cycles, a tenant with a priority class, and a deterministic prompt built
// from a shared-prefix group plus a request-unique suffix. Prompts within
// the same group share their leading block — the structure KV prefix reuse
// amortizes (system prompts, few-shot preambles).
type TraceRequest struct {
	// ArrivalCycle is the request's arrival on the virtual device clock.
	ArrivalCycle float64
	Tenant       string
	Priority     int
	// Group identifies the shared-prefix group within the tenant.
	Group int
	// PrefixLen leading tokens are the group's shared block; PromptLen is
	// the full prompt length (PrefixLen <= PromptLen).
	PrefixLen    int
	PromptLen    int
	DecodeTokens int
	Fanout       int

	// PromptSeed makes the request-unique prompt suffix deterministic;
	// distinct seeds give distinct suffixes.
	PromptSeed uint64
}

// PromptTokens materializes the deterministic prompt: the group block
// first (a function of tenant and group only), then a request-unique tail.
func (t TraceRequest) PromptTokens() []int32 {
	out := make([]int32, t.PromptLen)
	g := newRNG(t.groupSeed())
	for i := 0; i < t.PrefixLen && i < t.PromptLen; i++ {
		out[i] = int32(g.next() % 32000)
	}
	u := newRNG(t.PromptSeed)
	for i := t.PrefixLen; i < t.PromptLen; i++ {
		out[i] = int32(u.next() % 32000)
	}
	return out
}

func (t TraceRequest) groupSeed() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, c := range []byte(t.Tenant) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return h ^ uint64(t.Group)*0xff51afd7ed558ccd
}

// TraceConfig shapes a synthetic serving trace. Zero fields take defaults.
type TraceConfig struct {
	Seed     uint64
	Requests int // default 128
	Tenants  int // default 4

	// ArrivalsPerSec is the Poisson arrival rate (default 32). Inter-
	// arrival gaps are exponential; ClockHz converts them to cycles.
	ArrivalsPerSec float64
	ClockHz        float64 // default 1e9

	// ZipfS skews both the tenant mix and the prompt-length distribution
	// (default 1.2; 0 < s, larger = more skew).
	ZipfS float64

	// PromptMin/PromptMax bound prompt lengths (defaults 32..1024); the
	// Zipf rank picks long prompts rarely, short ones often.
	PromptMin, PromptMax int

	// GroupsPerTenant is the number of shared-prefix groups per tenant
	// (default 3); SharedFrac of each prompt (default 0.5) is the group
	// block. Zero groups disables prefix sharing in the trace.
	GroupsPerTenant int
	SharedFrac      float64

	// DecodeMin/DecodeMax bound generation lengths (defaults 16..128).
	DecodeMin, DecodeMax int

	// FanoutEvery gives every k-th request parallel-sampling fanout 2
	// (default 8; 0 disables). Fanout exercises fork + copy-on-write.
	FanoutEvery int

	// BurstFactor multiplies the arrival rate inside the surge window
	// [BurstStartSec, BurstStartSec+BurstLenSec) — a Poisson burst on top
	// of the base rate (default 1 = no burst; the overload harness uses
	// 5–10×). Arrivals stay exponential, only the mean gap shrinks, so the
	// trace remains fully deterministic per seed.
	BurstFactor   float64
	BurstStartSec float64
	BurstLenSec   float64
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Requests <= 0 {
		c.Requests = 128
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.ArrivalsPerSec <= 0 {
		c.ArrivalsPerSec = 32
	}
	if c.ClockHz <= 0 {
		c.ClockHz = 1e9
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.2
	}
	if c.PromptMin <= 0 {
		c.PromptMin = 32
	}
	if c.PromptMax < c.PromptMin {
		c.PromptMax = 1024
		if c.PromptMax < c.PromptMin {
			c.PromptMax = c.PromptMin
		}
	}
	if c.GroupsPerTenant < 0 {
		c.GroupsPerTenant = 0
	} else if c.GroupsPerTenant == 0 {
		c.GroupsPerTenant = 3
	}
	if c.SharedFrac <= 0 || c.SharedFrac > 1 {
		c.SharedFrac = 0.5
	}
	if c.DecodeMin <= 0 {
		c.DecodeMin = 16
	}
	if c.DecodeMax < c.DecodeMin {
		c.DecodeMax = 128
		if c.DecodeMax < c.DecodeMin {
			c.DecodeMax = c.DecodeMin
		}
	}
	if c.FanoutEvery < 0 {
		c.FanoutEvery = 0
	} else if c.FanoutEvery == 0 {
		c.FanoutEvery = 8
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 1
	}
	if c.BurstLenSec < 0 {
		c.BurstLenSec = 0
	}
	return c
}

// zipfRank samples a rank in [0, n) with P(r) ∝ 1/(r+1)^s by inverting the
// discrete CDF — deterministic, no allocation beyond the weight table.
func zipfRank(r *rng, weights []float64, total float64) int {
	u := float64(r.next()>>11) / float64(1<<53) * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

func zipfWeights(n int, s float64) ([]float64, float64) {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	return w, total
}

// GenerateTrace builds a deterministic synthetic serving trace: Poisson
// arrivals, Zipf-skewed tenant mix and prompt lengths, shared-prefix groups
// within each tenant, and periodic parallel-sampling fanout.
func GenerateTrace(cfg TraceConfig) []TraceRequest {
	cfg = cfg.withDefaults()
	r := newRNG(cfg.Seed)
	tenantW, tenantTotal := zipfWeights(cfg.Tenants, cfg.ZipfS)

	// Prompt lengths: Zipf over log-spaced buckets between min and max, so
	// short prompts dominate and the tail is long.
	nBuckets := 1
	for v := cfg.PromptMin; v < cfg.PromptMax; v *= 2 {
		nBuckets++
	}
	bucketW, bucketTotal := zipfWeights(nBuckets, cfg.ZipfS)

	cyclesPerArrival := cfg.ClockHz / cfg.ArrivalsPerSec
	clock := 0.0
	out := make([]TraceRequest, 0, cfg.Requests)
	burstStart := cfg.BurstStartSec * cfg.ClockHz
	burstEnd := burstStart + cfg.BurstLenSec*cfg.ClockHz
	for i := 0; i < cfg.Requests; i++ {
		// Exponential inter-arrival gap: -ln(U) · mean. Inside the surge
		// window the mean gap divides by BurstFactor.
		u := (float64(r.next()>>11) + 1) / float64(1<<53)
		gap := -math.Log(u) * cyclesPerArrival
		if cfg.BurstFactor > 1 && clock >= burstStart && clock < burstEnd {
			gap /= cfg.BurstFactor
		}
		clock += gap

		tenant := zipfRank(r, tenantW, tenantTotal)
		b := zipfRank(r, bucketW, bucketTotal)
		lo := cfg.PromptMin << b
		hi := lo * 2
		if hi > cfg.PromptMax {
			hi = cfg.PromptMax
		}
		if lo > cfg.PromptMax {
			lo = cfg.PromptMax
		}
		promptLen := r.intIn(lo, hi)

		tr := TraceRequest{
			ArrivalCycle: clock,
			Tenant:       tenantName(tenant),
			Priority:     tenant % 3, // heavy tenants get the urgent class
			PromptLen:    promptLen,
			DecodeTokens: r.intIn(cfg.DecodeMin, cfg.DecodeMax),
			Fanout:       1,
			PromptSeed:   r.next(),
		}
		if cfg.GroupsPerTenant > 0 {
			tr.Group = r.intIn(0, cfg.GroupsPerTenant-1)
			tr.PrefixLen = int(float64(promptLen) * cfg.SharedFrac)
		}
		if cfg.FanoutEvery > 0 && (i+1)%cfg.FanoutEvery == 0 {
			tr.Fanout = 2
		}
		out = append(out, tr)
	}
	return out
}

func tenantName(i int) string {
	return string(rune('a'+i%26)) + "-tenant"
}
