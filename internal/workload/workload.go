// Package workload generates the benchmark suites of the paper's evaluation:
// the dynamic-shape GEMM test cases of Table 3 (DeepBench plus real-world
// Transformer and CNN fully-connected shapes, 1599 cases total), the
// dynamic-shape convolution cases of Table 4 (5485 cases across AlexNet,
// GoogLeNet, ResNet and VGG), and the Llama2-13b GEMM operators of Table 8
// (52 cases). Generation is deterministic so every run benchmarks the same
// suite.
package workload

import (
	"fmt"

	"mikpoly/internal/tensor"
)

// Case is one GEMM benchmark case.
type Case struct {
	// ID is a stable identifier like "deepbench/17".
	ID string
	// Category groups cases the way Table 3 does.
	Category string
	// Shape is the runtime GEMM shape.
	Shape tensor.GemmShape
}

// rng is the deterministic generator used across suites (xorshift64*).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x243f6a8885a308d3
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// intIn returns a deterministic value in [lo, hi].
func (r *rng) intIn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + int(r.next()%uint64(hi-lo+1))
}

// logIn returns a value in [lo, hi] sampled roughly log-uniformly — matching
// how DeepBench and real model shapes spread over orders of magnitude.
func (r *rng) logIn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	bitsLo, bitsHi := 0, 0
	for v := lo; v > 1; v >>= 1 {
		bitsLo++
	}
	for v := hi; v > 1; v >>= 1 {
		bitsHi++
	}
	b := r.intIn(bitsLo, bitsHi)
	base := 1 << b
	v := base + int(r.next()%uint64(base))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// DeepBenchGEMM returns the 166 DeepBench-style training/inference GEMMs of
// Table 3 row 1: M ∈ [2, 10752], N ∈ [1, 48000], K ∈ [128, 500000].
func DeepBenchGEMM() []Case {
	r := newRNG(1001)
	out := make([]Case, 0, 166)
	for i := 0; i < 166; i++ {
		s := tensor.GemmShape{
			M: r.logIn(2, 10752),
			N: r.logIn(1, 48000),
			K: r.logIn(128, 500000),
		}
		out = append(out, Case{
			ID:       fmt.Sprintf("deepbench/%d", i),
			Category: "DeepBench",
			Shape:    s,
		})
	}
	return out
}

// transformerModels lists the language models whose GEMM operators populate
// the Transformer rows of Table 3 (hidden size, FFN size, layer count is
// irrelevant for operator shapes).
var transformerModels = []struct {
	name   string
	hidden int
	ffn    int
}{
	{"bert-base", 768, 3072},
	{"distilbert", 768, 3072},
	{"roberta-base", 768, 3072},
	{"albert-xlarge", 2048, 8192},
}

// TransformerGEMM returns count GEMM cases drawn from Transformer operator
// shapes with dynamic sequence length (M = batch·seq ∈ [1, 65536] overall).
func TransformerGEMM(count int) []Case {
	r := newRNG(1002)
	out := make([]Case, 0, count)
	for i := 0; i < count; i++ {
		m := transformerModels[r.intIn(0, len(transformerModels)-1)]
		seq := r.logIn(1, 512)
		batch := r.logIn(1, 64)
		rows := seq * batch
		var s tensor.GemmShape
		switch r.intIn(0, 3) {
		case 0: // fused QKV projection
			s = tensor.GemmShape{M: rows, N: 3 * m.hidden, K: m.hidden}
		case 1: // attention output projection
			s = tensor.GemmShape{M: rows, N: m.hidden, K: m.hidden}
		case 2: // FFN up
			s = tensor.GemmShape{M: rows, N: m.ffn, K: m.hidden}
		default: // FFN down
			s = tensor.GemmShape{M: rows, N: m.hidden, K: m.ffn}
		}
		out = append(out, Case{
			ID:       fmt.Sprintf("transformer/%s/%d", m.name, i),
			Category: "Transformer",
			Shape:    s,
		})
	}
	return out
}

// cnnFCLayers lists the fully-connected layer dimensions (out, in) of the
// four CNNs of Table 3.
var cnnFCLayers = []struct {
	model   string
	out, in int
}{
	{"alexnet", 4096, 9216},
	{"alexnet", 4096, 4096},
	{"alexnet", 1000, 4096},
	{"vgg11", 4096, 25088},
	{"vgg11", 4096, 4096},
	{"vgg11", 1000, 4096},
	{"resnet18", 1000, 512},
	{"googlenet", 1000, 1024},
}

// CNNFCGEMM returns count GEMM cases from CNN fully-connected layers with
// dynamic batch size M ∈ [1, 1024].
func CNNFCGEMM(count int) []Case {
	r := newRNG(1003)
	out := make([]Case, 0, count)
	for i := 0; i < count; i++ {
		l := cnnFCLayers[r.intIn(0, len(cnnFCLayers)-1)]
		out = append(out, Case{
			ID:       fmt.Sprintf("cnnfc/%s/%d", l.model, i),
			Category: "CNN-FC",
			Shape:    tensor.GemmShape{M: r.logIn(1, 1024), N: l.out, K: l.in},
		})
	}
	return out
}

// Table3Suite returns the full GEMM suite: 1599 cases as in §5.2.3
// (166 DeepBench + 1433 real-world).
func Table3Suite() []Case {
	out := DeepBenchGEMM()
	out = append(out, TransformerGEMM(800)...)
	out = append(out, CNNFCGEMM(633)...)
	return out
}

// Subsample keeps every k-th case (k = len/target rounded up), preserving
// category balance well enough for quick runs; target <= 0 or >= len returns
// the input.
func Subsample(cases []Case, target int) []Case {
	if target <= 0 || target >= len(cases) {
		return cases
	}
	step := (len(cases) + target - 1) / target
	out := make([]Case, 0, target)
	for i := 0; i < len(cases); i += step {
		out = append(out, cases[i])
	}
	return out
}

// FromGemmShapes converts a shape→count map (e.g. nn.Graph.GemmShapes) into
// benchmark cases, so any model graph doubles as an operator suite.
func FromGemmShapes(category string, shapes map[tensor.GemmShape]int) []Case {
	out := make([]Case, 0, len(shapes))
	for s := range shapes {
		out = append(out, Case{
			ID:       fmt.Sprintf("%s/%s", category, s.String()),
			Category: category,
			Shape:    s,
		})
	}
	// Deterministic order for reproducible benchmarking.
	sortCases(out)
	return out
}

// sortCases orders cases by ID.
func sortCases(cs []Case) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].ID < cs[j-1].ID; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
