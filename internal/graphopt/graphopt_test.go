package graphopt

import (
	"testing"

	"mikpoly/internal/nn"
	"mikpoly/internal/tensor"
)

func bertGraph() nn.Graph { return nn.Transformer(nn.BERTBaseConfig, 128, 1) }

func TestFuseTransformer(t *testing.T) {
	g := bertGraph()
	fused, st := Fuse(g)
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, fused); err != nil {
		t.Fatal(err)
	}
	// Every layer's elementwise op follows ffn_down (a Count-1 GEMM).
	if st.FusedOps != 12 {
		t.Fatalf("fused %d ops, want 12 (one per layer)", st.FusedOps)
	}
	if st.BytesSaved <= 0 {
		t.Fatal("no traffic saved")
	}
	// Saved bytes must equal the traffic delta.
	var before, after float64
	for i := range g.Ops {
		before += g.Ops[i].OtherBytes * float64(g.Ops[i].Count)
		after += fused.Ops[i].OtherBytes * float64(fused.Ops[i].Count)
	}
	if diff := before - after; diff != st.BytesSaved {
		t.Fatalf("BytesSaved %g != traffic delta %g", st.BytesSaved, diff)
	}
}

func TestFuseSkipsRepeatedProducers(t *testing.T) {
	g := nn.Graph{Name: "x"}
	g.Ops = append(g.Ops,
		nn.Op{Name: "batched", Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 8, N: 8, K: 8}, Count: 12},
		nn.Op{Name: "eltwise", Kind: nn.OpOther, OtherBytes: 1000, Count: 1},
	)
	fused, st := Fuse(g)
	if st.FusedOps != 0 {
		t.Fatal("fused across a repeated producer")
	}
	if fused.Ops[1].OtherBytes != 1000 {
		t.Fatal("traffic changed without fusion")
	}
}

func TestFuseSkipsLeadingElementwise(t *testing.T) {
	g := nn.Graph{Name: "x"}
	g.Ops = append(g.Ops,
		nn.Op{Name: "pre", Kind: nn.OpOther, OtherBytes: 500, Count: 1},
		nn.Op{Name: "gemm", Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 8, N: 8, K: 8}, Count: 1},
	)
	_, st := Fuse(g)
	if st.FusedOps != 0 {
		t.Fatal("fused an op with no producer")
	}
}

func TestFuseIdempotentStructure(t *testing.T) {
	g := bertGraph()
	once, st1 := Fuse(g)
	twice, st2 := Fuse(once)
	if st2.FusedOps != st1.FusedOps {
		t.Fatalf("second pass fused %d vs %d", st2.FusedOps, st1.FusedOps)
	}
	// Traffic shrinks geometrically but structure is stable; a second
	// fusion must not break validity.
	if err := Validate(once, twice); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := bertGraph()
	fused, _ := Fuse(g)

	grown := fused
	grown.Ops = append([]nn.Op(nil), fused.Ops...)
	grown.Ops[6].OtherBytes = 1e18
	if Validate(g, grown) == nil {
		t.Fatal("traffic increase not caught")
	}

	shrunk := fused
	shrunk.Ops = fused.Ops[:len(fused.Ops)-1]
	if Validate(g, shrunk) == nil {
		t.Fatal("op removal not caught")
	}
}

func TestFuseCNN(t *testing.T) {
	g := nn.ResNet18(4, 224)
	fused, st := Fuse(g)
	if err := Validate(g, fused); err != nil {
		t.Fatal(err)
	}
	// Every conv's activation pass is fusible.
	if st.FusedOps < 10 {
		t.Fatalf("only %d CNN ops fused", st.FusedOps)
	}
}

// Property: Fuse over random op sequences always yields a valid graph with
// non-increased traffic and identical GEMM structure.
func TestFuseProperty(t *testing.T) {
	build := func(seed uint64) nn.Graph {
		g := nn.Graph{Name: "rand"}
		s := seed
		n := int(seed%12) + 1
		for i := 0; i < n; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			switch s % 3 {
			case 0:
				g.Ops = append(g.Ops, nn.Op{
					Name: "g", Kind: nn.OpGemm,
					Gemm:  tensor.GemmShape{M: int(s/3%50) + 1, N: int(s/150%50) + 1, K: int(s/7500%50) + 1},
					Count: int(s/375000%3) + 1,
				})
			case 1:
				g.Ops = append(g.Ops, nn.Op{
					Name: "o", Kind: nn.OpOther,
					OtherBytes: float64(s % 100000),
					Count:      1,
				})
			default:
				cs := tensor.ConvShape{Batch: 1, InC: 2, InH: 8, InW: 8,
					OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}
				g.Ops = append(g.Ops, nn.Op{
					Name: "c", Kind: nn.OpConv, Conv: cs, Gemm: cs.GemmShape(), Count: 1,
				})
			}
		}
		return g
	}
	for seed := uint64(1); seed < 60; seed++ {
		g := build(seed)
		fused, st := Fuse(g)
		if err := Validate(g, fused); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.BytesSaved < 0 {
			t.Fatalf("seed %d: negative savings", seed)
		}
	}
}
