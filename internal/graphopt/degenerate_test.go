package graphopt

import (
	"strings"
	"testing"

	"mikpoly/internal/nn"
	"mikpoly/internal/tensor"
)

func gemmOp(name string) nn.Op {
	return nn.Op{Name: name, Kind: nn.OpGemm, Gemm: tensor.GemmShape{M: 8, N: 8, K: 8}, Count: 1}
}

func otherOp(name string, bytes float64) nn.Op {
	return nn.Op{Name: name, Kind: nn.OpOther, OtherBytes: bytes, Count: 1}
}

func TestFuseEmptyGraph(t *testing.T) {
	out, st := Fuse(nn.Graph{Name: "empty"})
	if len(out.Ops) != 0 || st.FusedOps != 0 || st.BytesSaved != 0 {
		t.Fatalf("empty graph fused into %d ops, stats %+v", len(out.Ops), st)
	}
	if err := Validate(nn.Graph{}, out); err != nil {
		t.Fatal(err)
	}
}

// TestFuseZeroByteOther: a zero-traffic elementwise op has nothing to fold;
// it must pass through untouched — no rename, no fusion credit.
func TestFuseZeroByteOther(t *testing.T) {
	g := nn.Graph{Name: "g", Ops: []nn.Op{gemmOp("mm"), otherOp("noop", 0)}}
	out, st := Fuse(g)
	if st.FusedOps != 0 || st.BytesSaved != 0 {
		t.Fatalf("zero-byte op fused: %+v", st)
	}
	if out.Ops[1].Name != "noop" || out.Ops[1].OtherBytes != 0 {
		t.Fatalf("zero-byte op altered: %+v", out.Ops[1])
	}
	if err := Validate(g, out); err != nil {
		t.Fatal(err)
	}
}

// TestFuseFollowsExplicitEdges: fusibility depends on the producing edge,
// not list adjacency — an elementwise op whose explicit producer is a GEMM
// fuses even when another op sits between them, and one whose sole producer
// is another elementwise op does not.
func TestFuseFollowsExplicitEdges(t *testing.T) {
	g := nn.Graph{Name: "g", Ops: []nn.Op{
		gemmOp("mm"),            // 0
		otherOp("softmax", 100), // 1: chain default -> 0, fusible
		otherOp("scale", 100),   // 2: explicit -> 0 (non-adjacent GEMM), fusible
		otherOp("norm", 100),    // 3: explicit -> 1 (an Other), not fusible
		otherOp("add", 100),     // 4: two producers, not fusible
	}}
	g.Ops[2].Inputs = []int{0}
	g.Ops[3].Inputs = []int{1}
	g.Ops[4].Inputs = []int{0, 3}

	out, st := Fuse(g)
	if st.FusedOps != 2 {
		t.Fatalf("fused %d ops, want 2", st.FusedOps)
	}
	for i, wantFused := range []bool{false, true, true, false, false} {
		fused := strings.HasSuffix(out.Ops[i].Name, "(fused)")
		if fused != wantFused {
			t.Errorf("op %d (%s): fused=%v, want %v", i, g.Ops[i].Name, fused, wantFused)
		}
	}
	if err := Validate(g, out); err != nil {
		t.Fatal(err)
	}
}

// TestFuseRepeatedProducerNotFused: a Count>1 producer has no single
// epilogue to host the chain.
func TestFuseRepeatedProducerNotFused(t *testing.T) {
	heads := gemmOp("attn")
	heads.Count = 12
	g := nn.Graph{Name: "g", Ops: []nn.Op{heads, otherOp("softmax", 100)}}
	if _, st := Fuse(g); st.FusedOps != 0 {
		t.Fatalf("fused across a repeated producer: %+v", st)
	}
}

// TestValidateCatchesDependencyChange: an optimization that rewires edges is
// not traffic-preserving bookkeeping and must be rejected.
func TestValidateCatchesDependencyChange(t *testing.T) {
	before := nn.Graph{Name: "g", Ops: []nn.Op{gemmOp("a"), gemmOp("b"), gemmOp("c")}}
	after := nn.Graph{Name: "g", Ops: []nn.Op{gemmOp("a"), gemmOp("b"), gemmOp("c")}}
	after.Ops[2].Inputs = []int{0}
	if err := Validate(before, after); err == nil {
		t.Fatal("rewired dependencies accepted")
	}
}
