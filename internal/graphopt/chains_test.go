package graphopt

// Fusion-chain legality edge cases: each ineligible topology must yield no
// chains, so the runtime falls back to per-op programs identical to the
// unfused path — detection never alters the graph.

import (
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

func chainGemm(name string, m, n, k int) nn.Op {
	return nn.Op{Name: name, Kind: nn.OpGemm,
		Gemm: tensor.GemmShape{M: m, N: n, K: k}, Count: 1}
}

func reluOp(name string) nn.Op {
	return nn.Op{Name: name, Kind: nn.OpOther, OtherBytes: 1 << 20,
		Elementwise: "relu", Count: 1}
}

func mustValidate(t *testing.T, g nn.Graph) nn.Graph {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("test graph invalid: %v", err)
	}
	return g
}

func TestDetectChainsFusesLinearChain(t *testing.T) {
	h := hw.A100()
	g := mustValidate(t, nn.Graph{Name: "mlp", Ops: []nn.Op{
		chainGemm("up", 8192, 256, 512),
		reluOp("act"),
		chainGemm("down", 8192, 128, 256),
	}})
	chains := DetectChains(g, h)
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1", len(chains))
	}
	ch := chains[0]
	if len(ch.Ops) != 3 || ch.Ops[0] != 0 || ch.Ops[1] != 1 || ch.Ops[2] != 2 {
		t.Fatalf("chain members %v, want [0 1 2]", ch.Ops)
	}
	if len(ch.Spec.Stages) != 2 || ch.Spec.Stages[0].Epilogue != poly.EpReLU {
		t.Fatalf("spec %v: relu middle not folded", ch.Spec)
	}
	if err := ch.Spec.Validate(); err != nil {
		t.Fatalf("emitted spec invalid: %v", err)
	}
	if ch.SavedBytes <= 0 {
		t.Fatal("no traffic saving modeled")
	}
}

func TestDetectChainsSingleOpGraph(t *testing.T) {
	g := mustValidate(t, nn.Graph{Name: "one", Ops: []nn.Op{chainGemm("g", 8192, 256, 512)}})
	if chains := DetectChains(g, hw.A100()); len(chains) != 0 {
		t.Fatalf("single-op graph produced %d chains", len(chains))
	}
}

func TestDetectChainsDiamondFanOut(t *testing.T) {
	// g0 feeds both g1 and g2: the intermediate must live in global memory
	// for the second consumer, so no link may fuse across it.
	g := mustValidate(t, nn.Graph{Name: "diamond", Ops: []nn.Op{
		chainGemm("src", 8192, 256, 512),
		chainGemm("left", 8192, 128, 256),
		func() nn.Op { o := chainGemm("right", 8192, 128, 256); o.Inputs = []int{0}; return o }(),
	}})
	if chains := DetectChains(g, hw.A100()); len(chains) != 0 {
		t.Fatalf("diamond fan-out produced %d chains", len(chains))
	}
}

func TestDetectChainsSplitKProneStage(t *testing.T) {
	h := hw.A100()
	// A skinny-output, deep-reduction stage the planner could serve with a
	// split-K program: its partials are not final values, so it must stay
	// unfused rather than constrain the planner.
	g := mustValidate(t, nn.Graph{Name: "skinny", Ops: []nn.Op{
		chainGemm("a", 64, 64, 4096),
		chainGemm("b", 64, 32, 64),
	}})
	if chains := DetectChains(g, h); len(chains) != 0 {
		t.Fatalf("split-K-prone chain fused: %d chains", len(chains))
	}
}

func TestDetectChainsDTypeMismatch(t *testing.T) {
	g := mustValidate(t, nn.Graph{Name: "mixed", Ops: []nn.Op{
		func() nn.Op { o := chainGemm("f32", 8192, 256, 512); o.DType = "f32"; return o }(),
		func() nn.Op { o := chainGemm("f16", 8192, 128, 256); o.DType = "f16"; return o }(),
	}})
	if chains := DetectChains(g, hw.A100()); len(chains) != 0 {
		t.Fatal("mixed-precision boundary fused")
	}
	// The explicit-f32 spelling is equivalent to the default.
	g2 := mustValidate(t, nn.Graph{Name: "same", Ops: []nn.Op{
		func() nn.Op { o := chainGemm("f32", 8192, 256, 512); o.DType = "f32"; return o }(),
		chainGemm("default", 8192, 128, 256),
	}})
	if chains := DetectChains(g2, hw.A100()); len(chains) != 1 {
		t.Fatal("default-dtype link did not fuse")
	}
}

func TestDetectChainsDegenerateRows(t *testing.T) {
	// A 1×N GEMM has no row strips to parallelize over; fused execution
	// would serialize the whole graph onto one PE.
	g := mustValidate(t, nn.Graph{Name: "deg", Ops: []nn.Op{
		chainGemm("a", 1, 4096, 4096),
		chainGemm("b", 1, 4096, 4096),
	}})
	if chains := DetectChains(g, hw.A100()); len(chains) != 0 {
		t.Fatal("degenerate 1-row chain fused")
	}
}

func TestDetectChainsOpaqueMiddle(t *testing.T) {
	// A non-elementwise middle (layernorm-style) blocks the link.
	g := mustValidate(t, nn.Graph{Name: "opaque", Ops: []nn.Op{
		chainGemm("a", 8192, 256, 512),
		nn.Op{Name: "ln", Kind: nn.OpOther, OtherBytes: 1 << 20, Count: 1},
		chainGemm("b", 8192, 128, 256),
	}})
	if chains := DetectChains(g, hw.A100()); len(chains) != 0 {
		t.Fatal("opaque middle op fused")
	}
}

func TestDetectChainsWidthLimit(t *testing.T) {
	h := hw.A100()
	w := poly.ChainWidthLimit(h)
	g := mustValidate(t, nn.Graph{Name: "wide", Ops: []nn.Op{
		chainGemm("a", 8192, 8*w, 512),
		chainGemm("b", 8192, 128, 8*w),
	}})
	if chains := DetectChains(g, h); len(chains) != 0 {
		t.Fatalf("intermediate wider than the %d-column hardware bound fused", w)
	}
}

func TestDetectChainsBoundsLengthAndOverlap(t *testing.T) {
	h := hw.A100()
	// Six chainable GEMMs: the detector must cap each chain at
	// maxChainGemms stages and never reuse a member.
	var ops []nn.Op
	n := 256
	for i := 0; i < 6; i++ {
		ops = append(ops, chainGemm("g", 8192, n, n))
	}
	g := mustValidate(t, nn.Graph{Name: "long", Ops: ops})
	chains := DetectChains(g, h)
	seen := map[int]bool{}
	for _, ch := range chains {
		if len(ch.Spec.Stages) > maxChainGemms {
			t.Fatalf("chain has %d stages, cap is %d", len(ch.Spec.Stages), maxChainGemms)
		}
		for _, m := range ch.Ops {
			if seen[m] {
				t.Fatalf("op %d in two chains", m)
			}
			seen[m] = true
		}
	}
	if len(chains) != 2 {
		t.Fatalf("got %d chains from 6 GEMMs, want 2 (4+2)", len(chains))
	}
}

func TestDetectChainsRepeatedOps(t *testing.T) {
	// Count>1 ops (per-head GEMMs) have no single dataflow to fuse.
	g := mustValidate(t, nn.Graph{Name: "heads", Ops: []nn.Op{
		func() nn.Op { o := chainGemm("qk", 8192, 256, 512); o.Count = 12; return o }(),
		chainGemm("proj", 8192, 128, 256),
	}})
	if chains := DetectChains(g, hw.A100()); len(chains) != 0 {
		t.Fatal("repeated producer fused")
	}
}
