package graphopt

import (
	"mikpoly/internal/hw"
	"mikpoly/internal/nn"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// Chain is one fusible GEMM→epilogue→GEMM run detected in a model graph:
// the member ops can execute as a single fused multi-stage program whose
// inter-stage intermediates never touch global memory.
type Chain struct {
	// Ops are the member op indices in dataflow order, folded elementwise
	// middles included. Ops[0] is the chain head; the runtime executes
	// the fused program at the head's schedule slot and skips the rest.
	Ops []int
	// Spec is the planning request for poly.PlanChain, built from the
	// member GEMM shapes and the folded middles' activations.
	Spec poly.ChainSpec
	// SavedBytes is the modeled inter-stage global-memory traffic fusion
	// eliminates: each intermediate's store and reload, plus the folded
	// elementwise middles' own traffic.
	SavedBytes float64
}

// maxChainGemms bounds a chain's GEMM stages: every stage multiplies the
// per-strip working set and compute, and beyond a few stages the strip task
// is so long that losing output-tile parallelism outweighs the traffic
// saving.
const maxChainGemms = 4

// minStripRows is the least M a chain member may have: fused execution
// parallelizes over row strips only, so an output with fewer rows than one
// micro-kernel tile (the planner's tileGrid granularity) degenerates to a
// single task.
const minStripRows = 16

// splitKProne reports whether the planner could pick a split-K program for
// the shape: the output-plane grid underfills the device even at the finest
// tile granularity. Split-K partials are not final values, so a nonlinear
// epilogue cannot fuse onto them (see engine/epilogue.go) — such stages stay
// unfused rather than constraining the planner.
func splitKProne(s tensor.GemmShape, h hw.Hardware) bool {
	tiles := ((s.M + minStripRows - 1) / minStripRows) * ((s.N + minStripRows - 1) / minStripRows)
	return tiles < h.NumPEs
}

// epilogueFor maps an elementwise op's declared function to the chain
// epilogue; ok is false for opaque elementwise work.
func epilogueFor(fn string) (poly.EpilogueKind, bool) {
	switch fn {
	case "relu":
		return poly.EpReLU, true
	case "gelu":
		return poly.EpGELU, true
	default:
		return poly.EpNone, false
	}
}

// DetectChains scans the graph for maximal, non-overlapping fusible chains.
// A link from GEMM a to GEMM b (optionally through one elementwise op) is
// legal when:
//
//   - both ends are single-count OpGemm ops (convolutions keep their
//     im2col lowering, repeated ops have no single dataflow to fuse);
//   - a's output is consumed only by the link (single consumer — a
//     diamond fan-out needs the intermediate in global memory anyway);
//   - a middle op is a pure elementwise function (Op.Elementwise) with
//     exactly that producer and consumer;
//   - shapes chain under a shared strip anchor: equal M, b.K == a.N;
//   - every member agrees on the element type;
//   - the intermediate width fits the hardware bound
//     poly.ChainWidthLimit (M_local must hold a double-buffered strip) —
//     the hardware-aware prune applied before any candidate is costed;
//   - neither end is split-K-prone (see splitKProne), and M supports
//     strip parallelism at all.
//
// Ineligible ops simply stay on the per-op path; detection never alters the
// graph.
func DetectChains(g nn.Graph, h hw.Hardware) []Chain {
	cons := g.Consumers()
	widthLimit := poly.ChainWidthLimit(h)
	used := make([]bool, len(g.Ops))
	var out []Chain

	gemmOK := func(i int) bool {
		op := g.Ops[i]
		return !used[i] && op.Kind == nn.OpGemm && op.Count == 1 &&
			op.Gemm.M >= minStripRows && !splitKProne(op.Gemm, h)
	}
	// nextLink follows cur's dataflow to the next fusible GEMM, through at
	// most one foldable elementwise op. mid is -1 when the link is direct.
	nextLink := func(dtype string, cur int) (next, mid int, ep poly.EpilogueKind, ok bool) {
		if len(cons[cur]) != 1 {
			return 0, -1, poly.EpNone, false
		}
		n := cons[cur][0]
		mid = -1
		if op := g.Ops[n]; op.Kind == nn.OpOther {
			e, foldable := epilogueFor(op.Elementwise)
			if !foldable || op.Count != 1 || op.EffectiveDType() != dtype ||
				len(g.Deps(n)) != 1 || len(cons[n]) != 1 {
				return 0, -1, poly.EpNone, false
			}
			mid, ep = n, e
			n = cons[n][0]
		}
		nop := g.Ops[n]
		if !gemmOK(n) || nop.EffectiveDType() != dtype || len(g.Deps(n)) != 1 {
			return 0, -1, poly.EpNone, false
		}
		prev := g.Ops[cur].Gemm
		if nop.Gemm.M != prev.M || nop.Gemm.K != prev.N || prev.N > widthLimit {
			return 0, -1, poly.EpNone, false
		}
		return n, mid, ep, true
	}

	for i := range g.Ops {
		if !gemmOK(i) {
			continue
		}
		dtype := g.Ops[i].EffectiveDType()
		members := []int{i}
		spec := poly.ChainSpec{Stages: []poly.ChainStageSpec{{Shape: g.Ops[i].Gemm}}}
		var saved float64
		cur := i
		for gemms := 1; gemms < maxChainGemms; gemms++ {
			next, mid, ep, ok := nextLink(dtype, cur)
			if !ok {
				break
			}
			inter := g.Ops[cur].Gemm
			saved += float64(inter.M) * float64(inter.N) * float64(h.OutputBytes+h.InputBytes)
			spec.Stages[len(spec.Stages)-1].Epilogue = ep
			if mid >= 0 {
				members = append(members, mid)
				saved += g.Ops[mid].OtherBytes
			}
			members = append(members, next)
			spec.Stages = append(spec.Stages, poly.ChainStageSpec{Shape: g.Ops[next].Gemm})
			cur = next
		}
		if len(spec.Stages) < 2 {
			continue
		}
		for _, m := range members {
			used[m] = true
		}
		out = append(out, Chain{Ops: members, Spec: spec, SavedBytes: saved})
	}
	return out
}
