// Package graphopt implements graph-level optimization over model graphs —
// the direction the paper names first among its future work (§7: "combine
// MikPoly with graph-level optimization techniques, such as operator
// fusion"). The pass fuses bandwidth-bound elementwise operators into the
// epilogue of the producing GEMM/convolution: the producer already writes
// its output tile once, so a fused elementwise chain applies in registers
// and eliminates the chain's intermediate reads and writes from global
// memory.
//
// Fusion composes cleanly with micro-kernel polymerization because it only
// changes the non-GEMM traffic; the polymerized GEMM programs are untouched.
package graphopt

import (
	"fmt"
	"slices"

	"mikpoly/internal/nn"
)

// FusedTrafficFraction is the fraction of an elementwise chain's traffic
// that survives fusion: the chain's final result must still be written once
// (1 write out of the unfused read+write per pass), and layer boundaries
// (residual reads from other tensors) keep part of the input traffic. The
// value models a typical 4-pass chain collapsing to one write plus one
// residual read.
const FusedTrafficFraction = 0.25

// Stats reports what the pass did.
type Stats struct {
	// FusedOps is the number of elementwise operators fused into a
	// producer epilogue.
	FusedOps int
	// BytesSaved is the global-memory traffic eliminated.
	BytesSaved float64
}

// Fuse returns a copy of the graph with every fusible elementwise operator
// folded into its producing GEMM/convolution. An elementwise op is fusible
// when its sole producer (its effective dependency — the preceding op for
// chain graphs, the explicit edge otherwise) is a GEMM or convolution
// operator with Count 1: a repeated producer has no single epilogue to host
// the chain, and an op joining several producers has no unique one.
func Fuse(g nn.Graph) (nn.Graph, Stats) {
	out := nn.Graph{Name: g.Name + "+fused", Ops: make([]nn.Op, 0, len(g.Ops))}
	var st Stats
	for i, op := range g.Ops {
		deps := g.Deps(i)
		if op.Kind == nn.OpOther && len(deps) == 1 && deps[0] >= 0 && deps[0] < len(g.Ops) {
			prev := g.Ops[deps[0]]
			if (prev.Kind == nn.OpGemm || prev.Kind == nn.OpConv) && prev.Count == 1 && op.OtherBytes > 0 {
				saved := op.OtherBytes * float64(op.Count) * (1 - FusedTrafficFraction)
				fused := op
				fused.Name = op.Name + "(fused)"
				fused.OtherBytes = op.OtherBytes * FusedTrafficFraction
				out.Ops = append(out.Ops, fused)
				st.FusedOps++
				st.BytesSaved += saved
				continue
			}
		}
		out.Ops = append(out.Ops, op)
	}
	return out, st
}

// Validate checks that fusion preserved the graph's compute: identical GEMM
// work, identical operator count, and non-increased traffic.
func Validate(before, after nn.Graph) error {
	if len(before.Ops) != len(after.Ops) {
		return fmt.Errorf("graphopt: op count changed %d -> %d", len(before.Ops), len(after.Ops))
	}
	if before.TotalFLOPs() != after.TotalFLOPs() {
		return fmt.Errorf("graphopt: GEMM work changed")
	}
	for i := range before.Ops {
		b, a := before.Ops[i], after.Ops[i]
		if b.Kind != a.Kind || b.Gemm != a.Gemm || b.Count != a.Count {
			return fmt.Errorf("graphopt: op %d structure changed", i)
		}
		if a.OtherBytes > b.OtherBytes {
			return fmt.Errorf("graphopt: op %d traffic increased", i)
		}
		if !slices.Equal(before.Deps(i), after.Deps(i)) {
			return fmt.Errorf("graphopt: op %d dependencies changed", i)
		}
	}
	return nil
}
