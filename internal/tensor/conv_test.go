package tensor

import (
	"testing"
	"testing/quick"
)

func TestConvShapeOutDims(t *testing.T) {
	s := ConvShape{Batch: 1, InC: 3, InH: 224, InW: 224, OutC: 64, KH: 7, KW: 7, Stride: 2, Pad: 3}
	oh, ow := s.OutDims()
	if oh != 112 || ow != 112 {
		t.Fatalf("OutDims = %d,%d want 112,112", oh, ow)
	}
	if !s.Valid() {
		t.Fatal("shape should be valid")
	}
}

func TestConvShapeInvalid(t *testing.T) {
	s := ConvShape{Batch: 1, InC: 1, InH: 2, InW: 2, OutC: 1, KH: 5, KW: 5, Stride: 1, Pad: 0}
	if s.Valid() {
		t.Fatal("kernel larger than input without padding must be invalid")
	}
}

func TestConvShapeGemmLowering(t *testing.T) {
	s := ConvShape{Batch: 2, InC: 3, InH: 8, InW: 8, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	g := s.GemmShape()
	if g.M != 2*8*8 || g.N != 16 || g.K != 27 {
		t.Fatalf("GemmShape = %v", g)
	}
	if s.FLOPs() != g.FLOPs() {
		t.Fatal("FLOPs mismatch between conv and its GEMM lowering")
	}
}

// The central correctness property of the GEMM-based convolution path:
// im2col(input) × filterMatrix == direct convolution, for random shapes.
func TestIm2colGemmMatchesDirectConv(t *testing.T) {
	cases := []ConvShape{
		{Batch: 1, InC: 1, InH: 5, InW: 5, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 0},
		{Batch: 2, InC: 3, InH: 7, InW: 6, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{Batch: 1, InC: 2, InH: 9, InW: 9, OutC: 3, KH: 1, KW: 1, Stride: 1, Pad: 0},
		{Batch: 1, InC: 3, InH: 11, InW: 11, OutC: 2, KH: 5, KW: 5, Stride: 2, Pad: 2},
		{Batch: 3, InC: 1, InH: 8, InW: 8, OutC: 2, KH: 3, KW: 3, Stride: 2, Pad: 0},
	}
	for _, s := range cases {
		in := RandomTensor4(s.Batch, s.InC, s.InH, s.InW, 11)
		w := RandomTensor4(s.OutC, s.InC, s.KH, s.KW, 12)
		direct := ConvRef(in, w, s)
		lowered := Gemm(Im2col(in, s), FilterMatrix(w, s))
		back := GemmOutputToTensor(lowered, s)
		if d := Tensor4MaxAbsDiff(direct, back); d > 1e-4 {
			t.Errorf("%v: im2col path differs from direct conv by %g", s, d)
		}
	}
}

func TestIm2colGemmProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := ConvShape{
			Batch:  int(seed%2) + 1,
			InC:    int(seed/2%3) + 1,
			InH:    int(seed/6%5) + 4,
			InW:    int(seed/30%5) + 4,
			OutC:   int(seed/150%4) + 1,
			KH:     []int{1, 3}[seed/600%2],
			KW:     []int{1, 3}[seed/600%2],
			Stride: int(seed/1200%2) + 1,
			Pad:    int(seed / 2400 % 2),
		}
		if !s.Valid() {
			return true
		}
		in := RandomTensor4(s.Batch, s.InC, s.InH, s.InW, seed|1)
		w := RandomTensor4(s.OutC, s.InC, s.KH, s.KW, seed|2)
		direct := ConvRef(in, w, s)
		back := GemmOutputToTensor(Gemm(Im2col(in, s), FilterMatrix(w, s)), s)
		return Tensor4MaxAbsDiff(direct, back) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2colShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := ConvShape{Batch: 1, InC: 2, InH: 4, InW: 4, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 0}
	Im2col(NewTensor4(1, 3, 4, 4), s)
}

func TestTensor4Basics(t *testing.T) {
	x := NewTensor4(2, 3, 4, 5)
	if x.Elems() != 120 {
		t.Fatalf("Elems = %d", x.Elems())
	}
	x.Set(1, 2, 3, 4, 7)
	if x.At(1, 2, 3, 4) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	x.At(2, 0, 0, 0)
}

func TestGroupedConvShape(t *testing.T) {
	g := GroupedConvShape{
		Conv:   ConvShape{Batch: 2, InC: 8, InH: 6, InW: 6, OutC: 12, KH: 3, KW: 3, Stride: 1, Pad: 1},
		Groups: 4,
	}
	if !g.Valid() {
		t.Fatal("valid grouped shape rejected")
	}
	gg := g.GroupGemmShape()
	if gg.N != 3 || gg.K != 2*9 {
		t.Fatalf("group GEMM = %v", gg)
	}
	if g.FLOPs() != gg.FLOPs()*4 {
		t.Fatal("FLOPs must sum over groups")
	}
	bad := g
	bad.Groups = 3 // 8 % 3 != 0
	if bad.Valid() {
		t.Fatal("indivisible channels accepted")
	}
}

func TestGroupedConvRefMatchesUngroupedWhenGroupsIs1(t *testing.T) {
	s := ConvShape{Batch: 1, InC: 3, InH: 7, InW: 7, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	g := GroupedConvShape{Conv: s, Groups: 1}
	in := RandomTensor4(1, 3, 7, 7, 5)
	w := RandomTensor4(4, 3, 3, 3, 6)
	grouped := GroupedConvRef(in, w, g)
	direct := ConvRef(in, w, s)
	if d := Tensor4MaxAbsDiff(grouped, direct); d > 1e-5 {
		t.Fatalf("groups=1 differs from plain conv by %g", d)
	}
}

func TestGroupedConvExtractMergeRoundTrip(t *testing.T) {
	g := GroupedConvShape{
		Conv:   ConvShape{Batch: 2, InC: 6, InH: 5, InW: 5, OutC: 4, KH: 1, KW: 1, Stride: 1, Pad: 0},
		Groups: 2,
	}
	in := RandomTensor4(2, 6, 5, 5, 9)
	w := RandomTensor4(4, 3, 1, 1, 10)
	want := GroupedConvRef(in, w, g)
	// Compute per group with the plain reference and merge.
	got := NewTensor4(2, 4, 5, 5)
	for grp := 0; grp < 2; grp++ {
		gi := ExtractGroup(in, g, grp)
		gw := ExtractGroupFilters(w, g, grp)
		gout := ConvRef(gi, gw, g.GroupShape())
		MergeGroupOutput(got, gout, g, grp)
	}
	if d := Tensor4MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("group decomposition differs by %g", d)
	}
}

// Depthwise is the extreme case: Groups = InC = OutC.
func TestDepthwiseViaGroups(t *testing.T) {
	g := GroupedConvShape{
		Conv:   ConvShape{Batch: 1, InC: 5, InH: 8, InW: 8, OutC: 5, KH: 3, KW: 3, Stride: 1, Pad: 1},
		Groups: 5,
	}
	if !g.Valid() {
		t.Fatal("depthwise shape rejected")
	}
	in := RandomTensor4(1, 5, 8, 8, 11)
	w := RandomTensor4(5, 1, 3, 3, 12)
	out := GroupedConvRef(in, w, g)
	// Channel 2's output must depend only on channel 2's input: zero that
	// channel and verify only it changes.
	in2 := RandomTensor4(1, 5, 8, 8, 11)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			in2.Set(0, 2, y, x, 0)
		}
	}
	out2 := GroupedConvRef(in2, w, g)
	for c := 0; c < 5; c++ {
		var diff float64
		for y := 0; y < out.H; y++ {
			for x := 0; x < out.W; x++ {
				d := float64(out.At(0, c, y, x) - out2.At(0, c, y, x))
				if d < 0 {
					d = -d
				}
				if d > diff {
					diff = d
				}
			}
		}
		if c == 2 && diff == 0 {
			t.Fatal("channel 2 output did not change")
		}
		if c != 2 && diff != 0 {
			t.Fatalf("channel %d output changed (cross-group leakage)", c)
		}
	}
}
