package tensor

import (
	"fmt"
	"math"
)

// MaxAbsDiff returns the largest element-wise absolute difference between two
// equally shaped matrices.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: compare shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var max float64
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			d := math.Abs(float64(ra[j]) - float64(rb[j]))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// AllClose reports whether all elements agree within tol absolute or
// tol relative error (whichever is looser), the usual mixed tolerance for
// float32 GEMM with different summation orders.
func AllClose(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			x, y := float64(ra[j]), float64(rb[j])
			d := math.Abs(x - y)
			if d <= tol {
				continue
			}
			scale := math.Max(math.Abs(x), math.Abs(y))
			if d > tol*scale {
				return false
			}
		}
	}
	return true
}

// Tensor4MaxAbsDiff returns the largest element-wise absolute difference
// between two equally shaped NCHW tensors.
func Tensor4MaxAbsDiff(a, b *Tensor4) float64 {
	if a.N != b.N || a.C != b.C || a.H != b.H || a.W != b.W {
		panic(fmt.Sprintf("tensor: compare shape mismatch (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.N, a.C, a.H, a.W, b.N, b.C, b.H, b.W))
	}
	var max float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}
