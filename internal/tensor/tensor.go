// Package tensor provides the dense float32 tensor substrate used throughout
// the MikPoly reproduction: row-major matrices and 4-D activation/filter
// tensors, reference GEMM and convolution implementations that serve as
// ground truth for correctness tests, and im2col lowering used by the
// GEMM-based convolution path (the paper's convolution implementation, §7).
package tensor

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use NewMatrix to allocate.
type Matrix struct {
	Rows, Cols int
	// Stride is the distance in elements between the starts of adjacent
	// rows. Stride >= Cols; a Matrix with Stride > Cols is a view into a
	// larger buffer.
	Stride int
	Data   []float32
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from a slice of rows. All rows must have equal
// length.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d: got %d want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Stride:i*m.Stride+m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 {
	m.check(i, j)
	return m.Data[i*m.Stride+j]
}

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float32) {
	m.check(i, j)
	m.Data[i*m.Stride+j] = v
}

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float32) {
	m.check(i, j)
	m.Data[i*m.Stride+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// View returns an r×c sub-matrix starting at (i, j) that shares storage with
// m. Mutations through the view are visible in m.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if r < 0 || c < 0 || i < 0 || j < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("tensor: view (%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Matrix{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i*m.Stride+j:]}
}

// ViewInto fills *dst with an r×c sub-matrix view starting at (i, j),
// sharing storage with m. Unlike View it performs no allocation, so tight
// tile loops can reuse one Matrix header.
func (m *Matrix) ViewInto(dst *Matrix, i, j, r, c int) {
	if r < 0 || c < 0 || i < 0 || j < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("tensor: view (%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	dst.Rows, dst.Cols, dst.Stride = r, c, m.Stride
	dst.Data = m.Data[i*m.Stride+j:]
}

// Clone returns a compact deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// Zero clears all elements.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// PadTo returns a copy of m zero-padded to rows×cols (each at least the
// current dimension). Used by the local-padding technique (§3.4) so that
// micro-kernels never need boundary checks.
func (m *Matrix) PadTo(rows, cols int) *Matrix {
	if rows < m.Rows || cols < m.Cols {
		panic(fmt.Sprintf("tensor: PadTo(%d,%d) smaller than %dx%d", rows, cols, m.Rows, m.Cols))
	}
	out := NewMatrix(rows, cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i)[:m.Cols], m.Row(i))
	}
	return out
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Tensor4 is a dense NCHW float32 tensor (batch, channels, height, width),
// the activation layout used by the convolution suites of Table 4.
type Tensor4 struct {
	N, C, H, W int
	Data       []float32
}

// NewTensor4 allocates a zeroed NCHW tensor.
func NewTensor4(n, c, h, w int) *Tensor4 {
	if n < 0 || c < 0 || h < 0 || w < 0 {
		panic(fmt.Sprintf("tensor: invalid dims %d,%d,%d,%d", n, c, h, w))
	}
	return &Tensor4{N: n, C: c, H: h, W: w, Data: make([]float32, n*c*h*w)}
}

// At returns element (n, c, h, w).
func (t *Tensor4) At(n, c, h, w int) float32 {
	return t.Data[t.index(n, c, h, w)]
}

// Set stores v at element (n, c, h, w).
func (t *Tensor4) Set(n, c, h, w int, v float32) {
	t.Data[t.index(n, c, h, w)] = v
}

func (t *Tensor4) index(n, c, h, w int) int {
	if n < 0 || n >= t.N || c < 0 || c >= t.C || h < 0 || h >= t.H || w < 0 || w >= t.W {
		panic(fmt.Sprintf("tensor: index (%d,%d,%d,%d) out of range (%d,%d,%d,%d)", n, c, h, w, t.N, t.C, t.H, t.W))
	}
	return ((n*t.C+c)*t.H+h)*t.W + w
}

// Elems reports the number of elements.
func (t *Tensor4) Elems() int { return t.N * t.C * t.H * t.W }

// Transpose returns a compact copy of mᵀ. Frameworks commonly store linear
// layer weights transposed; the runtime materializes the layout the
// micro-kernels expect.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}
