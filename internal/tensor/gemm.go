package tensor

import "fmt"

// Gemm computes C = A × B with float32 accumulation, the reference
// implementation against which every polymerized program is validated.
// A is M×K, B is K×N, C is M×N.
func Gemm(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: gemm dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	GemmInto(c, a, b)
	return c
}

// GemmInto accumulates A × B into dst (dst += A·B). dst must be
// a.Rows × b.Cols. Loop order (i, k, j) keeps inner accesses sequential.
func GemmInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: gemm-into dim mismatch dst %dx%d, a %dx%d, b %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// GemmShape is a GEMM problem size (M, N, K): C[M×N] = A[M×K] × B[K×N].
// It is the dynamic shape that MikPoly learns only at runtime.
type GemmShape struct {
	M, N, K int
}

// Valid reports whether every dimension is positive.
func (s GemmShape) Valid() bool { return s.M > 0 && s.N > 0 && s.K > 0 }

// FLOPs returns the floating-point operation count 2·M·N·K used on the
// x-axes of Figs. 6, 7, 10 and 12(b).
func (s GemmShape) FLOPs() float64 {
	return 2 * float64(s.M) * float64(s.N) * float64(s.K)
}

// String formats the shape as (M, N, K).
func (s GemmShape) String() string { return fmt.Sprintf("(%d,%d,%d)", s.M, s.N, s.K) }
