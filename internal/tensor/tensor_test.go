package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("unexpected dims %d %d %d", m.Rows, m.Cols, m.Stride)
	}
	for i := range m.Data {
		if m.Data[i] != 0 {
			t.Fatalf("element %d not zeroed", i)
		}
	}
}

func TestMatrixSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At = %v, want 5", got)
	}
	m.Add(1, 2, 2.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At after Add = %v, want 7.5", got)
	}
}

func TestMatrixBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	m := NewMatrix(2, 2)
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows content wrong: %v", m)
	}
	if got := FromRows(nil); got.Rows != 0 || got.Cols != 0 {
		t.Fatalf("FromRows(nil) = %dx%d", got.Rows, got.Cols)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged input")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestViewSharesStorage(t *testing.T) {
	m := RandomMatrix(6, 8, 1)
	v := m.View(2, 3, 2, 4)
	if v.Rows != 2 || v.Cols != 4 {
		t.Fatalf("view dims %dx%d", v.Rows, v.Cols)
	}
	if v.At(0, 0) != m.At(2, 3) || v.At(1, 3) != m.At(3, 6) {
		t.Fatal("view content mismatch")
	}
	v.Set(1, 1, 42)
	if m.At(3, 4) != 42 {
		t.Fatal("view mutation not visible in parent")
	}
}

func TestViewOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(4, 4).View(2, 2, 3, 1)
}

func TestCloneIsDeep(t *testing.T) {
	m := RandomMatrix(5, 7, 2)
	c := m.Clone()
	if MaxAbsDiff(m, c) != 0 {
		t.Fatal("clone differs")
	}
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("clone shares storage")
	}
	// Cloning a view must compact the stride.
	v := m.View(1, 1, 3, 3)
	cv := v.Clone()
	if cv.Stride != 3 {
		t.Fatalf("clone of view stride = %d, want 3", cv.Stride)
	}
	if MaxAbsDiff(v, cv) != 0 {
		t.Fatal("view clone differs")
	}
}

func TestZeroAndFill(t *testing.T) {
	m := RandomMatrix(3, 3, 3)
	m.Fill(2)
	for i := range m.Data {
		if m.Data[i] != 2 {
			t.Fatal("Fill missed an element")
		}
	}
	m.Zero()
	for i := range m.Data {
		if m.Data[i] != 0 {
			t.Fatal("Zero missed an element")
		}
	}
}

func TestPadTo(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	p := m.PadTo(3, 4)
	if p.Rows != 3 || p.Cols != 4 {
		t.Fatalf("padded dims %dx%d", p.Rows, p.Cols)
	}
	if p.At(0, 0) != 1 || p.At(1, 1) != 4 {
		t.Fatal("padded content moved")
	}
	if p.At(2, 0) != 0 || p.At(0, 3) != 0 || p.At(2, 3) != 0 {
		t.Fatal("padding not zero")
	}
}

func TestPadToSmallerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(4, 4).PadTo(3, 4)
}

func TestGemmSmallKnown(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := Gemm(a, b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) != 0 {
		t.Fatalf("gemm = %v, want %v", c, want)
	}
}

func TestGemmIdentity(t *testing.T) {
	a := RandomMatrix(9, 9, 4)
	id := NewMatrix(9, 9)
	for i := 0; i < 9; i++ {
		id.Set(i, i, 1)
	}
	if MaxAbsDiff(Gemm(a, id), a) != 0 {
		t.Fatal("A·I != A")
	}
	if MaxAbsDiff(Gemm(id, a), a) != 0 {
		t.Fatal("I·A != A")
	}
}

func TestGemmMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm(NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestGemmIntoAccumulates(t *testing.T) {
	a := RandomMatrix(4, 5, 5)
	b := RandomMatrix(5, 6, 6)
	dst := NewMatrix(4, 6)
	dst.Fill(1)
	GemmInto(dst, a, b)
	want := Gemm(a, b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			if diff := dst.At(i, j) - (want.At(i, j) + 1); diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("accumulation wrong at (%d,%d)", i, j)
			}
		}
	}
}

// Property: GEMM distributes over horizontal splits of A — computing the top
// and bottom row blocks separately must equal the fused product. This is the
// algebraic fact that makes micro-kernel polymerization correct.
func TestGemmSplitProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%13) + 2
		n := int(seed/13%11) + 1
		k := int(seed/143%7) + 1
		a := RandomMatrix(m, k, seed|1)
		b := RandomMatrix(k, n, seed|2)
		full := Gemm(a, b)
		split := m / 2
		top := Gemm(a.View(0, 0, split, k), b)
		bot := Gemm(a.View(split, 0, m-split, k), b)
		return AllClose(full.View(0, 0, split, n), top, 1e-4) &&
			AllClose(full.View(split, 0, m-split, n), bot, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: GEMM distributes over the reduction dimension — summing partial
// products over K-slices equals the full product (the t3 pipelined instances
// of a micro-kernel along the reduction loop).
func TestGemmReductionSplitProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%7) + 1
		n := int(seed/7%9) + 1
		k := int(seed/63%12) + 2
		a := RandomMatrix(m, k, seed|1)
		b := RandomMatrix(k, n, seed|2)
		full := Gemm(a, b)
		split := k / 2
		partial := NewMatrix(m, n)
		GemmInto(partial, a.View(0, 0, m, split), b.View(0, 0, split, n))
		GemmInto(partial, a.View(0, split, m, k-split), b.View(split, 0, k-split, n))
		return AllClose(full, partial, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: zero padding of A's rows and B's columns never changes the
// valid region of the product (the local-padding technique of §3.4).
func TestGemmPaddingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%9) + 1
		n := int(seed/9%9) + 1
		k := int(seed/81%9) + 1
		a := RandomMatrix(m, k, seed|1)
		b := RandomMatrix(k, n, seed|2)
		want := Gemm(a, b)
		ap := a.PadTo(m+3, k+2)
		bp := b.PadTo(k+2, n+5)
		got := Gemm(ap, bp).View(0, 0, m, n)
		return AllClose(want, got, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmShape(t *testing.T) {
	s := GemmShape{M: 4, N: 5, K: 6}
	if !s.Valid() {
		t.Fatal("shape should be valid")
	}
	if (GemmShape{M: 0, N: 5, K: 6}).Valid() {
		t.Fatal("zero dim should be invalid")
	}
	if got := s.FLOPs(); got != 240 {
		t.Fatalf("FLOPs = %v, want 240", got)
	}
	if s.String() != "(4,5,6)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestRandomMatrixDeterministic(t *testing.T) {
	a := RandomMatrix(8, 8, 7)
	b := RandomMatrix(8, 8, 7)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed produced different matrices")
	}
	c := RandomMatrix(8, 8, 8)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds produced identical matrices")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v outside [-1,1)", v)
		}
	}
}

func TestAllCloseRelative(t *testing.T) {
	a := FromRows([][]float32{{1000}})
	b := FromRows([][]float32{{1000.0001}})
	if !AllClose(a, b, 1e-5) {
		t.Fatal("relative tolerance should accept")
	}
	c := FromRows([][]float32{{1001}})
	if AllClose(a, c, 1e-5) {
		t.Fatal("should reject 0.1% error at 1e-5 tol")
	}
	if AllClose(NewMatrix(1, 2), NewMatrix(2, 1), 1) {
		t.Fatal("shape mismatch must not be close")
	}
}

func TestViewInto(t *testing.T) {
	m := RandomMatrix(6, 8, 9)
	var v Matrix
	m.ViewInto(&v, 2, 3, 2, 4)
	want := m.View(2, 3, 2, 4)
	if MaxAbsDiff(&v, want) != 0 {
		t.Fatal("ViewInto content differs from View")
	}
	v.Set(0, 0, 42)
	if m.At(2, 3) != 42 {
		t.Fatal("ViewInto does not share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range ViewInto")
		}
	}()
	m.ViewInto(&v, 5, 5, 4, 4)
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	mt := m.Transpose()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(0, 1) != 4 || mt.At(2, 0) != 3 {
		t.Fatalf("transpose content wrong: %v", mt)
	}
	// (Aᵀ)ᵀ = A, including through views.
	v := RandomMatrix(7, 9, 3).View(1, 2, 4, 5)
	if MaxAbsDiff(v.Transpose().Transpose(), v.Clone()) != 0 {
		t.Fatal("double transpose differs")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestTransposeGemmProperty(t *testing.T) {
	f := func(seed uint64) bool {
		m := int(seed%9) + 1
		n := int(seed/9%9) + 1
		k := int(seed/81%9) + 1
		a := RandomMatrix(m, k, seed|1)
		b := RandomMatrix(k, n, seed|2)
		left := Gemm(a, b).Transpose()
		right := Gemm(b.Transpose(), a.Transpose())
		return AllClose(left, right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
