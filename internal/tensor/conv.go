package tensor

import "fmt"

// ConvShape describes a 2-D convolution problem in the terms of Table 4:
// Batch×InC×InH×InW input, OutC filters of KH×KW, with stride and symmetric
// padding. The batch size, resolution and channel counts are the dynamic
// dimensions in the paper's convolution suites.
type ConvShape struct {
	Batch    int
	InC      int
	InH, InW int
	OutC     int
	KH, KW   int
	Stride   int
	Pad      int
}

// Valid reports whether the shape describes a non-empty convolution.
func (c ConvShape) Valid() bool {
	if c.Stride <= 0 || c.Pad < 0 {
		return false
	}
	oh, ow := c.OutDims()
	return c.Batch > 0 && c.InC > 0 && c.OutC > 0 && c.KH > 0 && c.KW > 0 &&
		oh > 0 && ow > 0
}

// OutDims returns the spatial output size (OH, OW). The stride must be
// positive (Valid checks this before dividing).
func (c ConvShape) OutDims() (int, int) {
	oh := (c.InH+2*c.Pad-c.KH)/c.Stride + 1
	ow := (c.InW+2*c.Pad-c.KW)/c.Stride + 1
	return oh, ow
}

// GemmShape returns the implicit-GEMM lowering of the convolution:
// M = Batch·OH·OW, N = OutC, K = InC·KH·KW. This is the GEMM the paper's
// convolution path executes (§5.1: "we switch to GEMM for convolution").
func (c ConvShape) GemmShape() GemmShape {
	oh, ow := c.OutDims()
	return GemmShape{M: c.Batch * oh * ow, N: c.OutC, K: c.InC * c.KH * c.KW}
}

// FLOPs returns the multiply-add operation count of the convolution.
func (c ConvShape) FLOPs() float64 { return c.GemmShape().FLOPs() }

// String formats the shape compactly.
func (c ConvShape) String() string {
	return fmt.Sprintf("conv(n=%d c=%d %dx%d oc=%d k=%dx%d s=%d p=%d)",
		c.Batch, c.InC, c.InH, c.InW, c.OutC, c.KH, c.KW, c.Stride, c.Pad)
}

// Im2col lowers input activations to the matrix whose product with the
// flattened filter bank yields the convolution output. The result is
// M×K with M = Batch·OH·OW and K = InC·KH·KW; out-of-bounds taps
// contribute zeros (implicit padding).
func Im2col(in *Tensor4, shape ConvShape) *Matrix {
	if in.N != shape.Batch || in.C != shape.InC || in.H != shape.InH || in.W != shape.InW {
		panic(fmt.Sprintf("tensor: im2col input %dx%dx%dx%d does not match %v",
			in.N, in.C, in.H, in.W, shape))
	}
	oh, ow := shape.OutDims()
	g := shape.GemmShape()
	out := NewMatrix(g.M, g.K)
	for n := 0; n < shape.Batch; n++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := out.Row((n*oh+oy)*ow + ox)
				col := 0
				for c := 0; c < shape.InC; c++ {
					for ky := 0; ky < shape.KH; ky++ {
						iy := oy*shape.Stride + ky - shape.Pad
						for kx := 0; kx < shape.KW; kx++ {
							ix := ox*shape.Stride + kx - shape.Pad
							if iy >= 0 && iy < shape.InH && ix >= 0 && ix < shape.InW {
								row[col] = in.At(n, c, iy, ix)
							}
							col++
						}
					}
				}
			}
		}
	}
	return out
}

// FilterMatrix flattens an OutC×InC×KH×KW filter bank into the K×N matrix
// (K = InC·KH·KW, N = OutC) used by the implicit-GEMM lowering.
func FilterMatrix(w *Tensor4, shape ConvShape) *Matrix {
	if w.N != shape.OutC || w.C != shape.InC || w.H != shape.KH || w.W != shape.KW {
		panic(fmt.Sprintf("tensor: filter %dx%dx%dx%d does not match %v", w.N, w.C, w.H, w.W, shape))
	}
	g := shape.GemmShape()
	out := NewMatrix(g.K, g.N)
	for oc := 0; oc < shape.OutC; oc++ {
		k := 0
		for c := 0; c < shape.InC; c++ {
			for ky := 0; ky < shape.KH; ky++ {
				for kx := 0; kx < shape.KW; kx++ {
					out.Set(k, oc, w.At(oc, c, ky, kx))
					k++
				}
			}
		}
	}
	return out
}

// ConvRef computes the convolution directly (no GEMM lowering); it is the
// ground truth for the im2col path. The result is Batch×OutC×OH×OW.
func ConvRef(in, w *Tensor4, shape ConvShape) *Tensor4 {
	oh, ow := shape.OutDims()
	out := NewTensor4(shape.Batch, shape.OutC, oh, ow)
	for n := 0; n < shape.Batch; n++ {
		for oc := 0; oc < shape.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for c := 0; c < shape.InC; c++ {
						for ky := 0; ky < shape.KH; ky++ {
							iy := oy*shape.Stride + ky - shape.Pad
							if iy < 0 || iy >= shape.InH {
								continue
							}
							for kx := 0; kx < shape.KW; kx++ {
								ix := ox*shape.Stride + kx - shape.Pad
								if ix < 0 || ix >= shape.InW {
									continue
								}
								acc += in.At(n, c, iy, ix) * w.At(oc, c, ky, kx)
							}
						}
					}
					out.Set(n, oc, oy, ox, acc)
				}
			}
		}
	}
	return out
}

// GemmOutputToTensor reshapes the M×N implicit-GEMM output (rows ordered
// n, oy, ox; columns are output channels) back to Batch×OutC×OH×OW.
func GemmOutputToTensor(m *Matrix, shape ConvShape) *Tensor4 {
	oh, ow := shape.OutDims()
	g := shape.GemmShape()
	if m.Rows != g.M || m.Cols != g.N {
		panic(fmt.Sprintf("tensor: gemm output %dx%d does not match %v", m.Rows, m.Cols, shape))
	}
	out := NewTensor4(shape.Batch, shape.OutC, oh, ow)
	for n := 0; n < shape.Batch; n++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := m.Row((n*oh+oy)*ow + ox)
				for oc := 0; oc < shape.OutC; oc++ {
					out.Set(n, oc, oy, ox, row[oc])
				}
			}
		}
	}
	return out
}
