package tensor

import "fmt"

// GroupedConvShape describes a grouped convolution (ResNeXt/MobileNet-style):
// input and output channels are partitioned into Groups independent slices,
// each convolved with its own filter bank of shape
// (OutC/Groups) × (InC/Groups) × KH × KW. Groups = 1 degenerates to ConvShape;
// Groups = InC = OutC is depthwise convolution.
type GroupedConvShape struct {
	Conv   ConvShape
	Groups int
}

// Valid reports whether the grouped shape is well-formed.
func (g GroupedConvShape) Valid() bool {
	return g.Conv.Valid() && g.Groups >= 1 &&
		g.Conv.InC%g.Groups == 0 && g.Conv.OutC%g.Groups == 0
}

// GroupShape returns the per-group convolution.
func (g GroupedConvShape) GroupShape() ConvShape {
	c := g.Conv
	c.InC = g.Conv.InC / g.Groups
	c.OutC = g.Conv.OutC / g.Groups
	return c
}

// GroupGemmShape returns the implicit-GEMM lowering of one group; the full
// operator is Groups such GEMMs launched as one batch.
func (g GroupedConvShape) GroupGemmShape() GemmShape {
	return g.GroupShape().GemmShape()
}

// FLOPs returns the total multiply-add work across groups.
func (g GroupedConvShape) FLOPs() float64 {
	return g.GroupGemmShape().FLOPs() * float64(g.Groups)
}

// String formats the grouped shape.
func (g GroupedConvShape) String() string {
	return fmt.Sprintf("%v groups=%d", g.Conv, g.Groups)
}

// GroupedConvRef computes the grouped convolution directly. Filters are
// OutC × (InC/Groups) × KH × KW.
func GroupedConvRef(in, w *Tensor4, g GroupedConvShape) *Tensor4 {
	if !g.Valid() {
		panic(fmt.Sprintf("tensor: invalid grouped conv %v", g))
	}
	s := g.Conv
	if in.N != s.Batch || in.C != s.InC || in.H != s.InH || in.W != s.InW {
		panic(fmt.Sprintf("tensor: grouped input %dx%dx%dx%d does not match %v", in.N, in.C, in.H, in.W, g))
	}
	icPerG := s.InC / g.Groups
	ocPerG := s.OutC / g.Groups
	if w.N != s.OutC || w.C != icPerG || w.H != s.KH || w.W != s.KW {
		panic(fmt.Sprintf("tensor: grouped filter %dx%dx%dx%d does not match %v", w.N, w.C, w.H, w.W, g))
	}
	oh, ow := s.OutDims()
	out := NewTensor4(s.Batch, s.OutC, oh, ow)
	for n := 0; n < s.Batch; n++ {
		for oc := 0; oc < s.OutC; oc++ {
			grp := oc / ocPerG
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for ci := 0; ci < icPerG; ci++ {
						ic := grp*icPerG + ci
						for ky := 0; ky < s.KH; ky++ {
							iy := oy*s.Stride + ky - s.Pad
							if iy < 0 || iy >= s.InH {
								continue
							}
							for kx := 0; kx < s.KW; kx++ {
								ix := ox*s.Stride + kx - s.Pad
								if ix < 0 || ix >= s.InW {
									continue
								}
								acc += in.At(n, ic, iy, ix) * w.At(oc, ci, ky, kx)
							}
						}
					}
					out.Set(n, oc, oy, ox, acc)
				}
			}
		}
	}
	return out
}

// ExtractGroup copies one group's channel slice of an activation tensor.
func ExtractGroup(in *Tensor4, g GroupedConvShape, group int) *Tensor4 {
	icPerG := in.C / g.Groups
	out := NewTensor4(in.N, icPerG, in.H, in.W)
	for n := 0; n < in.N; n++ {
		for c := 0; c < icPerG; c++ {
			for y := 0; y < in.H; y++ {
				for x := 0; x < in.W; x++ {
					out.Set(n, c, y, x, in.At(n, group*icPerG+c, y, x))
				}
			}
		}
	}
	return out
}

// ExtractGroupFilters copies one group's filter bank: rows
// [group·OutC/G, (group+1)·OutC/G) of the OutC×(InC/G)×KH×KW bank.
func ExtractGroupFilters(w *Tensor4, g GroupedConvShape, group int) *Tensor4 {
	ocPerG := g.Conv.OutC / g.Groups
	out := NewTensor4(ocPerG, w.C, w.H, w.W)
	for oc := 0; oc < ocPerG; oc++ {
		for c := 0; c < w.C; c++ {
			for y := 0; y < w.H; y++ {
				for x := 0; x < w.W; x++ {
					out.Set(oc, c, y, x, w.At(group*ocPerG+oc, c, y, x))
				}
			}
		}
	}
	return out
}

// MergeGroupOutput writes one group's output channels into the full output.
func MergeGroupOutput(dst, groupOut *Tensor4, g GroupedConvShape, group int) {
	ocPerG := g.Conv.OutC / g.Groups
	for n := 0; n < groupOut.N; n++ {
		for oc := 0; oc < ocPerG; oc++ {
			for y := 0; y < groupOut.H; y++ {
				for x := 0; x < groupOut.W; x++ {
					dst.Set(n, group*ocPerG+oc, y, x, groupOut.At(n, oc, y, x))
				}
			}
		}
	}
}
