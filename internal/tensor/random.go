package tensor

// rng is a small deterministic PRNG (xorshift64*) so that tests and
// benchmarks are reproducible without importing math/rand state handling.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// float32n returns a value in [-1, 1).
func (r *rng) float32n() float32 {
	return float32(int64(r.next()>>40)-1<<23) / float32(1<<23)
}

// RandomMatrix fills a rows×cols matrix with deterministic pseudo-random
// values in [-1, 1) derived from seed.
func RandomMatrix(rows, cols int, seed uint64) *Matrix {
	m := NewMatrix(rows, cols)
	r := newRNG(seed)
	for i := range m.Data {
		m.Data[i] = r.float32n()
	}
	return m
}

// RandomTensor4 fills an NCHW tensor with deterministic pseudo-random values.
func RandomTensor4(n, c, h, w int, seed uint64) *Tensor4 {
	t := NewTensor4(n, c, h, w)
	r := newRNG(seed)
	for i := range t.Data {
		t.Data[i] = r.float32n()
	}
	return t
}
