package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every entry point must be a no-op on nil receivers — the disabled
	// configuration call sites rely on.
	var o *Obs
	ctx, sp := o.T().Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	sp.Attr("k", 1).End() // must not panic
	if ctx != context.Background() {
		t.Fatal("disabled tracer touched the context")
	}
	o.M().Counter("c", "").Inc()
	o.M().Gauge("g", "").Set(3)
	o.M().Gauge("g", "").Add(1)
	o.M().Histogram("h", "", nil).Observe(0.5)
	o.M().Collect("f", "", "gauge", func() []Sample { return nil })
	o.T().SetEnabled(true)
	o.T().Reset()
	if o.T().Snapshot() != nil || o.T().Dropped() != 0 {
		t.Fatal("nil tracer holds data")
	}
	var b strings.Builder
	o.M().WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatal("nil registry rendered output")
	}
}

func TestSpanHierarchyAndRing(t *testing.T) {
	tr := NewTracer(4)
	ctx := context.Background()
	ctx, root := tr.Start(ctx, "root")
	_, child := tr.Start(ctx, "child")
	child.Attr("n", 7).End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Children end first, so order is child, root.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("unexpected order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent %d != root id %d", spans[0].Parent, spans[1].ID)
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Attr{Key: "n", Value: 7}) {
		t.Fatalf("attrs lost: %+v", spans[0].Attrs)
	}

	// Overflow evicts oldest-first and counts drops.
	for i := 0; i < 6; i++ {
		_, s := tr.Start(context.Background(), "fill")
		s.End()
	}
	spans = tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(spans))
	}
	if tr.Dropped() != 4 {
		t.Fatalf("dropped = %d, want 4", tr.Dropped())
	}
	for _, s := range spans {
		if s.Name != "fill" {
			t.Fatalf("stale span survived overflow: %s", s.Name)
		}
	}

	tr.Reset()
	if len(tr.Snapshot()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

func TestDisabledTracerIsInert(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(false)
	ctx := context.Background()
	got, sp := tr.Start(ctx, "x")
	if sp != nil || got != ctx {
		t.Fatal("disabled tracer allocated a span or context")
	}
	if len(tr.Snapshot()) != 0 {
		t.Fatal("disabled tracer recorded spans")
	}
}

func TestTraceHandlerDumpAndReset(t *testing.T) {
	tr := NewTracer(8)
	_, s := tr.Start(context.Background(), "op")
	s.End()

	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/trace?reset=1", nil))
	var dump struct {
		Enabled  bool         `json:"enabled"`
		Capacity int          `json:"capacity"`
		Spans    []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if !dump.Enabled || dump.Capacity != 8 || len(dump.Spans) != 1 || dump.Spans[0].Name != "op" {
		t.Fatalf("bad dump: %+v", dump)
	}
	if len(tr.Snapshot()) != 0 {
		t.Fatal("?reset=1 did not clear the buffer")
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mik_test_ops_total", "ops")
	c.Add(3)
	g := r.Gauge("mik_test_depth", "depth")
	g.Set(2.5)
	h := r.Histogram("mik_test_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Collect("mik_test_pe_utilization", "per-PE", "gauge", func() []Sample {
		return []Sample{
			{Labels: [][2]string{{"pe", "0"}}, Value: 0.75},
			{Labels: [][2]string{{"pe", "1"}}, Value: 0.5},
		}
	})

	var b strings.Builder
	r.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		"# TYPE mik_test_ops_total counter\nmik_test_ops_total 3\n",
		"# TYPE mik_test_depth gauge\nmik_test_depth 2.5\n",
		`mik_test_latency_seconds_bucket{le="0.1"} 1`,
		`mik_test_latency_seconds_bucket{le="1"} 2`,
		`mik_test_latency_seconds_bucket{le="+Inf"} 3`,
		"mik_test_latency_seconds_sum 5.55",
		"mik_test_latency_seconds_count 3",
		`mik_test_pe_utilization{pe="0"} 0.75`,
		`mik_test_pe_utilization{pe="1"} 0.5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, text)
		}
	}
}

func TestRegistryDedupAndReplace(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "first")
	b := r.Counter("c", "second")
	if a != b {
		t.Fatal("re-registration returned a distinct counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("dedup lost the shared state")
	}

	r.Collect("f", "", "gauge", func() []Sample { return []Sample{{Value: 1}} })
	r.Collect("f", "", "gauge", func() []Sample { return []Sample{{Value: 2}} })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "f 2\n") {
		t.Fatalf("Collect replacement not in effect:\n%s", sb.String())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("type-mismatched re-registration did not panic")
		}
	}()
	r.Gauge("c", "now a gauge")
}

func TestConcurrentInstruments(t *testing.T) {
	// Exercised under -race by CI: counters, gauges, histograms, span
	// recording and scraping must all be data-race free.
	o := New(64)
	c := o.M().Counter("n", "")
	g := o.M().Gauge("v", "")
	h := o.M().Histogram("l", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-5)
				ctx, sp := o.T().Start(context.Background(), "w")
				_, inner := o.T().Start(ctx, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			o.M().WritePrometheus(&b)
			o.T().Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 1600 || g.Value() != 1600 || h.Count() != 1600 {
		t.Fatalf("lost updates: c=%d g=%g h=%d", c.Value(), g.Value(), h.Count())
	}
}
