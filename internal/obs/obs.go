// Package obs is the repo's zero-dependency observability layer: hierarchical
// wall-clock spans recorded into a bounded ring buffer (the /trace dump) and
// a Prometheus-text metrics registry (the /metrics endpoint), threaded
// through the planner, simulator-facing runtime and serving hot paths.
//
// Two contracts govern the design:
//
//   - Disabled is (near) free. Every entry point is safe on a nil *Obs, nil
//     *Tracer, nil *Registry and nil instrument, and a disabled tracer's
//     Start returns the caller's context untouched with a nil span — no
//     allocation, no clock read, no lock. Call sites therefore never branch
//     on "is observability on"; they simply call through.
//
//   - Observation never changes results. Spans and metrics record wall-clock
//     and counters only; simulated device cycles and planner decisions are
//     pure functions of their inputs, so enabling tracing must leave them
//     bit-identical (the ext-obs-overhead experiment enforces this).
//
// Metric naming follows mik_<subsystem>_<quantity>[_<unit>][_total]:
// mik_plan_latency_seconds, mik_cache_hits_total, mik_pe_utilization, ...
// Cumulative counters end in _total; gauges carry no suffix; histograms use
// base-unit seconds.
package obs

// Obs bundles the span tracer and the metrics registry one process shares
// across subsystems. A nil *Obs disables everything.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
}

// New returns an Obs with an enabled tracer of the given ring capacity
// (values < 1 select DefaultTraceCapacity) and a fresh registry.
func New(traceCap int) *Obs {
	return &Obs{Tracer: NewTracer(traceCap), Metrics: NewRegistry()}
}

// T returns the tracer, nil-safe: (*Obs)(nil).T() is a nil (disabled) tracer.
func (o *Obs) T() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// M returns the registry, nil-safe: (*Obs)(nil).M() is a nil (disabled)
// registry whose constructors hand back nil (no-op) instruments.
func (o *Obs) M() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
