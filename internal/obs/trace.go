package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the span ring-buffer bound when none is given.
const DefaultTraceCapacity = 4096

// spanCtxKey carries the current span ID through a context for parenting.
type spanCtxKey struct{}

// Attr is one numeric span attribute (candidate counts, cycles, bytes, ...).
type Attr struct {
	Key   string  `json:"k"`
	Value float64 `json:"v"`
}

// SpanRecord is one completed span in the ring buffer. IDs are process-unique
// and monotone; Parent is 0 for roots.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Start  int64  `json:"start_ns"` // Unix nanoseconds
	Dur    int64  `json:"dur_ns"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Tracer records hierarchical spans into a bounded ring buffer. All methods
// are safe for concurrent use and safe on a nil receiver (nil = disabled).
//
// The ring grows lazily: storage is appended as spans arrive and only rings
// (overwriting oldest) once the configured capacity is reached. Records hold
// pointers (name, attrs), so a preallocated default-capacity ring adds ~300 KB
// to every GC scan — measured at 3–5% of wall on short graph executions —
// while a lazily grown ring costs GC only what was actually recorded.
type Tracer struct {
	enabled atomic.Bool
	nextID  atomic.Uint64

	mu       sync.Mutex
	capacity int          // configured bound; buf never grows past it
	buf      []SpanRecord // grows to capacity, then rings; growth phase ⇒ head == n == len(buf)
	head     int          // next write position
	n        int          // records currently held (<= len(buf))
	dropped  uint64       // records overwritten since last Reset
}

// NewTracer returns an enabled tracer with the given ring capacity (values
// < 1 select DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{capacity: capacity}
	t.enabled.Store(true)
	return t
}

// SetEnabled toggles recording. While disabled, Start is a near-no-op.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Span is one in-flight timed operation. A nil *Span (from a disabled or nil
// tracer) accepts every method as a no-op, so call sites never branch.
// Attributes live in a small inline array so the common span (≤6 attrs)
// costs one heap allocation for the Span itself and one more at End.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	nattrs int
	attrs  [6]Attr
	spill  []Attr // overflow beyond the inline array; rare
}

// Start opens a span named name as a child of the span carried by ctx (root
// if none) and returns a derived context carrying the new span. When the
// tracer is nil or disabled it returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(uint64)
	s := &Span{t: t, id: t.nextID.Add(1), parent: parent, name: name, start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s.id), s
}

// Attr attaches a numeric attribute; chainable, nil-safe.
func (s *Span) Attr(key string, v float64) *Span {
	if s == nil {
		return s
	}
	if s.nattrs < len(s.attrs) {
		s.attrs[s.nattrs] = Attr{Key: key, Value: v}
		s.nattrs++
	} else {
		s.spill = append(s.spill, Attr{Key: key, Value: v})
	}
	return s
}

// End closes the span and commits it to the ring buffer; nil-safe. A span
// must be ended at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	var attrs []Attr
	if n := s.nattrs + len(s.spill); n > 0 {
		attrs = make([]Attr, 0, n)
		attrs = append(attrs, s.attrs[:s.nattrs]...)
		attrs = append(attrs, s.spill...)
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start.UnixNano(),
		Dur:    int64(time.Since(s.start)),
		Attrs:  attrs,
	}
	t := s.t
	t.mu.Lock()
	if len(t.buf) < t.capacity {
		t.buf = append(t.buf, rec)
		t.n = len(t.buf)
		t.head = len(t.buf) % t.capacity
	} else {
		t.dropped++
		t.buf[t.head] = rec
		t.head = (t.head + 1) % len(t.buf)
	}
	t.mu.Unlock()
}

// Snapshot returns the buffered spans oldest-first.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return nil
	}
	out := make([]SpanRecord, 0, t.n)
	start := (t.head - t.n + len(t.buf)) % len(t.buf)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Dropped reports spans overwritten because the ring was full.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all buffered spans and the dropped count. The backing
// array's capacity is kept, so a tracer that once filled up doesn't re-pay
// growth, but its length is truncated to restore the growth-phase invariant.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.head, t.n, t.dropped = 0, 0, 0
	t.mu.Unlock()
}

// traceDump is the /trace wire format.
type traceDump struct {
	Enabled  bool         `json:"enabled"`
	Capacity int          `json:"capacity"`
	Dropped  uint64       `json:"dropped"`
	Spans    []SpanRecord `json:"spans"`
}

// Handler serves the buffered spans as JSON. `?reset=1` clears the buffer
// after the dump, so successive scrapes see disjoint windows.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dump := traceDump{Enabled: t.Enabled(), Dropped: t.Dropped(), Spans: t.Snapshot()}
		if t != nil {
			t.mu.Lock()
			dump.Capacity = t.capacity
			t.mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(dump)
		if r.URL.Query().Get("reset") == "1" {
			t.Reset()
		}
	})
}
