package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds (seconds), spanning
// the microsecond planner fast path through multi-second degraded plans.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// Counter is a monotonically increasing integer metric; nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric; nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram; nil-safe. Bounds are
// upper-inclusive per Prometheus convention (le).
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last = +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Sample is one exposition line produced by a Collect callback.
type Sample struct {
	// Suffix is appended to the family name (usually empty).
	Suffix string
	// Labels are rendered as {k="v",...} in declaration order.
	Labels [][2]string
	// Value is the sample value.
	Value float64
}

// family is one named metric family in the registry.
type family struct {
	name, help, typ string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	collect func() []Sample
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are nil-safe: a nil registry hands back nil
// instruments, which accept observations as no-ops.
type Registry struct {
	mu    sync.Mutex
	order []string
	fams  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// register adds f under its name, or returns the existing family. Re-using a
// name with a different metric type panics: that is always a wiring bug.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.fams[f.name]; ok {
		if old.typ != f.typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", f.name, f.typ, old.typ))
		}
		return old
	}
	r.fams[f.name] = f
	r.order = append(r.order, f.name)
	return f
}

// Counter returns the counter named name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&family{name: name, help: help, typ: "counter", counter: &Counter{}}).counter
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&family{name: name, help: help, typ: "gauge", gauge: &Gauge{}}).gauge
}

// Histogram returns the histogram named name with the given bucket bounds
// (nil selects DefBuckets), creating it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	return r.register(&family{name: name, help: help, typ: "histogram", hist: h}).hist
}

// Collect registers (or replaces) a callback-backed family sampled at scrape
// time — the bridge for stats that already live behind their own mutexes
// (cache counters, runtime aggregates, per-PE utilization). typ is the
// Prometheus type to declare ("counter" or "gauge").
func (r *Registry) Collect(name, help, typ string, fn func() []Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.fams[name]; ok {
		// Replacement keeps the scrape bound to the live producer when a
		// server or compiler is rebuilt over a shared registry.
		old.help, old.typ, old.collect = help, typ, fn
		old.counter, old.gauge, old.hist = nil, nil, nil
		return
	}
	r.fams[name] = &family{name: name, help: help, typ: typ, collect: fn}
	r.order = append(r.order, name)
}

// fmtFloat renders a value the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// renderLabels formats {k="v",...}; empty labels render as "".
func renderLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(kv[1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in registration order in the text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counter != nil:
			fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
		case f.gauge != nil:
			fmt.Fprintf(w, "%s %s\n", f.name, fmtFloat(f.gauge.Value()))
		case f.hist != nil:
			h := f.hist
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", f.name, fmtFloat(bound), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", f.name, fmtFloat(h.Sum()))
			fmt.Fprintf(w, "%s_count %d\n", f.name, h.Count())
		case f.collect != nil:
			for _, s := range f.collect() {
				fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.Suffix, renderLabels(s.Labels), fmtFloat(s.Value))
			}
		}
	}
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}
