package infer

import (
	"math"
	"sync"
	"testing"

	"mikpoly/internal/core"
	"mikpoly/internal/engine"
	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

var (
	once sync.Once
	comp *core.Compiler
)

func compiler(t *testing.T) *core.Compiler {
	t.Helper()
	once.Do(func() {
		lib, err := core.SharedLibrary(hw.A100(), tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256})
		if err != nil {
			panic(err)
		}
		comp = core.NewCompilerFromLibrary(lib)
	})
	return comp
}

func TestLinearForward(t *testing.T) {
	l := &Linear{
		W:   tensor.FromRows([][]float32{{1, 0}, {0, 1}, {1, 1}}),
		B:   []float32{0.5, -10},
		Act: engine.ActReLU,
	}
	x := tensor.FromRows([][]float32{{1, 2, 3}})
	y, err := l.Forward(x, Reference)
	if err != nil {
		t.Fatal(err)
	}
	// xW = [4, 5]; +bias = [4.5, -5]; relu = [4.5, 0].
	if y.At(0, 0) != 4.5 || y.At(0, 1) != 0 {
		t.Fatalf("linear forward = %v", y)
	}
	if _, err := l.Forward(tensor.NewMatrix(1, 2), Reference); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestLayerNorm(t *testing.T) {
	ln := &LayerNorm{Gamma: []float32{1, 1, 1, 1}, Beta: []float32{0, 0, 0, 0}}
	x := tensor.FromRows([][]float32{{1, 2, 3, 4}})
	y, err := ln.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	var mean, varsum float64
	for j := 0; j < 4; j++ {
		mean += float64(y.At(0, j))
	}
	mean /= 4
	for j := 0; j < 4; j++ {
		d := float64(y.At(0, j)) - mean
		varsum += d * d
	}
	if math.Abs(mean) > 1e-6 {
		t.Fatalf("normalized mean = %g", mean)
	}
	if math.Abs(varsum/4-1) > 1e-3 {
		t.Fatalf("normalized variance = %g", varsum/4)
	}
	if _, err := ln.Forward(tensor.NewMatrix(1, 3)); err == nil {
		t.Fatal("param mismatch accepted")
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := tensor.FromRows([][]float32{{0, 0, 0}, {1000, 1000, 1000}, {1, 2, 3}})
	Softmax(x)
	for i := 0; i < 3; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := float64(x.At(i, j))
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax value %g out of range (row %d)", v, i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	// Monotone: larger logit → larger probability.
	if !(x.At(2, 0) < x.At(2, 1) && x.At(2, 1) < x.At(2, 2)) {
		t.Fatal("softmax not monotone")
	}
}

func TestAttentionHeadsDivide(t *testing.T) {
	a := &SelfAttention{
		Wq: tensor.NewMatrix(6, 6), Wk: tensor.NewMatrix(6, 6),
		Wv: tensor.NewMatrix(6, 6), Wo: tensor.NewMatrix(6, 6),
		Heads: 4,
	}
	if _, err := a.Forward(tensor.NewMatrix(3, 6), Reference); err == nil {
		t.Fatal("4 heads over hidden 6 accepted")
	}
}

// The integration claim of §5.1: swapping the framework's GEMM for MikPoly's
// must not change model outputs, at any runtime sequence length.
func TestEncoderCompiledMatchesReference(t *testing.T) {
	c := compiler(t)
	enc := NewRandomEncoder(2, 64, 128, 4, 42)
	for _, seq := range []int{1, 7, 33, 100} {
		x := tensor.RandomMatrix(seq, 64, uint64(seq))
		ref, err := enc.Forward(x.Clone(), Reference)
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.Forward(x.Clone(), Compiled(c))
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(ref, got, 1e-2) {
			t.Fatalf("seq %d: compiled encoder diverges from reference (max diff %g)",
				seq, tensor.MaxAbsDiff(ref, got))
		}
	}
}

// Numerical sanity: the encoder keeps activations bounded (the random-weight
// scaling works), so float32 GEMM differences stay interpretable.
func TestEncoderActivationsBounded(t *testing.T) {
	enc := NewRandomEncoder(3, 64, 128, 4, 7)
	x := tensor.RandomMatrix(50, 64, 9)
	y, err := enc.Forward(x, Reference)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 1e3 {
			t.Fatalf("activation %g out of bounds", v)
		}
	}
}

func TestEncoderDeterministic(t *testing.T) {
	enc := NewRandomEncoder(1, 32, 64, 2, 5)
	x := tensor.RandomMatrix(9, 32, 5)
	a, err := enc.Forward(x.Clone(), Reference)
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Forward(x.Clone(), Reference)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("encoder forward is not deterministic")
	}
}
