// Package infer is a small numeric inference engine over the compiler: model
// layers whose every matrix multiplication flows through a pluggable GEMM
// strategy. With the reference strategy the layers compute ground truth;
// with a MikPoly compiler they exercise exactly the operator-replacement
// integration of the paper's end-to-end experiments (§5.1: "we substituted
// the standard GEMM operators in the DNN framework with those tailored by
// MikPoly") — and the two must agree for any runtime sequence length.
package infer

import (
	"fmt"
	"math"

	"mikpoly/internal/core"
	"mikpoly/internal/engine"
	"mikpoly/internal/tensor"
)

// Gemm is the strategy the layers multiply with.
type Gemm func(a, b *tensor.Matrix) (*tensor.Matrix, error)

// Reference multiplies with the validated reference implementation.
func Reference(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("infer: dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return tensor.Gemm(a, b), nil
}

// Compiled multiplies through a MikPoly compiler (planning cached per shape).
func Compiled(c *core.Compiler) Gemm {
	return func(a, b *tensor.Matrix) (*tensor.Matrix, error) { return c.GEMM(a, b) }
}

// Linear is a dense layer y = act(xW + b).
type Linear struct {
	// W is the K×N weight matrix; B the optional per-output bias.
	W *tensor.Matrix
	B []float32
	// Act is the fused activation.
	Act engine.Activation
}

// Forward applies the layer to an M×K input.
func (l *Linear) Forward(x *tensor.Matrix, g Gemm) (*tensor.Matrix, error) {
	y, err := g(x, l.W)
	if err != nil {
		return nil, err
	}
	if l.B != nil && len(l.B) != y.Cols {
		return nil, fmt.Errorf("infer: bias length %d, want %d", len(l.B), y.Cols)
	}
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			if l.B != nil {
				row[j] += l.B[j]
			}
			row[j] = l.Act.Apply(row[j])
		}
	}
	return y, nil
}

// LayerNorm normalizes each row to zero mean and unit variance, then scales
// and shifts.
type LayerNorm struct {
	Gamma, Beta []float32
	Eps         float64
}

// Forward applies layer normalization row-wise.
func (l *LayerNorm) Forward(x *tensor.Matrix) (*tensor.Matrix, error) {
	if len(l.Gamma) != x.Cols || len(l.Beta) != x.Cols {
		return nil, fmt.Errorf("infer: layernorm params %d/%d, want %d", len(l.Gamma), len(l.Beta), x.Cols)
	}
	eps := l.Eps
	if eps == 0 {
		eps = 1e-5
	}
	out := tensor.NewMatrix(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(len(row))
		var varsum float64
		for _, v := range row {
			d := float64(v) - mean
			varsum += d * d
		}
		inv := 1 / math.Sqrt(varsum/float64(len(row))+eps)
		dst := out.Row(i)
		for j, v := range row {
			dst[j] = float32((float64(v)-mean)*inv)*l.Gamma[j] + l.Beta[j]
		}
	}
	return out, nil
}

// Softmax applies a numerically stable row-wise softmax in place.
func Softmax(x *tensor.Matrix) {
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - max))
			row[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// SelfAttention is a multi-head self-attention block (no masking: encoder
// style).
type SelfAttention struct {
	// Wq, Wk, Wv, Wo are H×H projection matrices.
	Wq, Wk, Wv, Wo *tensor.Matrix
	Heads          int
}

// Forward applies attention to a seq×H input.
func (a *SelfAttention) Forward(x *tensor.Matrix, g Gemm) (*tensor.Matrix, error) {
	h := x.Cols
	if a.Heads < 1 || h%a.Heads != 0 {
		return nil, fmt.Errorf("infer: %d heads do not divide hidden %d", a.Heads, h)
	}
	q, err := g(x, a.Wq)
	if err != nil {
		return nil, err
	}
	k, err := g(x, a.Wk)
	if err != nil {
		return nil, err
	}
	v, err := g(x, a.Wv)
	if err != nil {
		return nil, err
	}
	d := h / a.Heads
	scale := float32(1 / math.Sqrt(float64(d)))
	ctx := tensor.NewMatrix(x.Rows, h)
	for head := 0; head < a.Heads; head++ {
		qh := q.View(0, head*d, x.Rows, d)
		kh := k.View(0, head*d, x.Rows, d)
		vh := v.View(0, head*d, x.Rows, d)
		scores, err := g(qh.Clone(), kh.Clone().Transpose())
		if err != nil {
			return nil, err
		}
		for i := range scores.Data {
			scores.Data[i] *= scale
		}
		Softmax(scores)
		ch, err := g(scores, vh.Clone())
		if err != nil {
			return nil, err
		}
		for i := 0; i < x.Rows; i++ {
			copy(ctx.Row(i)[head*d:(head+1)*d], ch.Row(i))
		}
	}
	return g(ctx, a.Wo)
}

// EncoderLayer is one pre-norm transformer encoder layer.
type EncoderLayer struct {
	Norm1, Norm2 *LayerNorm
	Attn         *SelfAttention
	FFNUp        *Linear
	FFNDown      *Linear
}

// Forward applies the layer with residual connections.
func (e *EncoderLayer) Forward(x *tensor.Matrix, g Gemm) (*tensor.Matrix, error) {
	n1, err := e.Norm1.Forward(x)
	if err != nil {
		return nil, err
	}
	att, err := e.Attn.Forward(n1, g)
	if err != nil {
		return nil, err
	}
	mid := addInto(att, x)

	n2, err := e.Norm2.Forward(mid)
	if err != nil {
		return nil, err
	}
	up, err := e.FFNUp.Forward(n2, g)
	if err != nil {
		return nil, err
	}
	down, err := e.FFNDown.Forward(up, g)
	if err != nil {
		return nil, err
	}
	return addInto(down, mid), nil
}

// Encoder is a stack of layers.
type Encoder struct {
	Layers []*EncoderLayer
}

// Forward runs the stack.
func (enc *Encoder) Forward(x *tensor.Matrix, g Gemm) (*tensor.Matrix, error) {
	cur := x
	for i, l := range enc.Layers {
		next, err := l.Forward(cur, g)
		if err != nil {
			return nil, fmt.Errorf("layer %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// addInto returns a + b (element-wise; a is mutated and returned).
func addInto(a, b *tensor.Matrix) *tensor.Matrix {
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			ra[j] += rb[j]
		}
	}
	return a
}

// NewRandomEncoder builds an encoder with deterministic random weights,
// scaled down to keep activations in a stable range.
func NewRandomEncoder(layers, hidden, ffn, heads int, seed uint64) *Encoder {
	scale := func(m *tensor.Matrix, s float32) *tensor.Matrix {
		for i := range m.Data {
			m.Data[i] *= s
		}
		return m
	}
	ones := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	wScale := float32(1 / math.Sqrt(float64(hidden)))
	enc := &Encoder{}
	for l := 0; l < layers; l++ {
		base := seed + uint64(l)*1000
		enc.Layers = append(enc.Layers, &EncoderLayer{
			Norm1: &LayerNorm{Gamma: ones(hidden), Beta: make([]float32, hidden)},
			Norm2: &LayerNorm{Gamma: ones(hidden), Beta: make([]float32, hidden)},
			Attn: &SelfAttention{
				Wq:    scale(tensor.RandomMatrix(hidden, hidden, base+1), wScale),
				Wk:    scale(tensor.RandomMatrix(hidden, hidden, base+2), wScale),
				Wv:    scale(tensor.RandomMatrix(hidden, hidden, base+3), wScale),
				Wo:    scale(tensor.RandomMatrix(hidden, hidden, base+4), wScale),
				Heads: heads,
			},
			FFNUp: &Linear{
				W:   scale(tensor.RandomMatrix(hidden, ffn, base+5), wScale),
				B:   make([]float32, ffn),
				Act: engine.ActGELU,
			},
			FFNDown: &Linear{
				W: scale(tensor.RandomMatrix(ffn, hidden, base+6), float32(1/math.Sqrt(float64(ffn)))),
				B: make([]float32, hidden),
			},
		})
	}
	return enc
}
