package sched

// Event is one overload decision (preempt, restore, shed-deadline,
// limit-cut), recorded when Config.RecordEvents is set. The surge harness
// dumps the log as a CI artifact when an invariant trips, mirroring the
// fleet chaos event log.
type Event struct {
	Wave   int64   `json:"wave"`
	Clock  float64 `json:"clock"`
	Kind   string  `json:"kind"`
	ID     uint64  `json:"id,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// eventCap bounds the in-memory log; past it the oldest half is dropped so
// a long surge keeps the tail (the interesting end) without unbounded
// growth.
const eventCap = 8192

func (s *Scheduler) eventLocked(kind string, id uint64, detail string) {
	if !s.cfg.RecordEvents {
		return
	}
	if len(s.events) >= eventCap {
		s.events = append(s.events[:0], s.events[eventCap/2:]...)
	}
	s.events = append(s.events, Event{
		Wave: s.stats.Waves, Clock: s.clock, Kind: kind, ID: id, Detail: detail,
	})
}

// Events snapshots the recorded overload event log.
func (s *Scheduler) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
