package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"mikpoly/internal/hw"
	"mikpoly/internal/workload"
)

// overloadTrace is a surge-shaped trace: the base rate alone saturates the
// small test device and a ×6 burst piles on top.
func overloadTrace(seed uint64, n int) []workload.TraceRequest {
	return workload.GenerateTrace(workload.TraceConfig{
		Seed:           seed,
		Requests:       n,
		Tenants:        3,
		ArrivalsPerSec: 3000,
		ClockHz:        hw.A100().ClockHz,
		PromptMin:      32,
		PromptMax:      512,
		DecodeMin:      4,
		DecodeMax:      24,
		BurstFactor:    6,
		BurstStartSec:  0.002,
		BurstLenSec:    0.01,
	})
}

// TestPreemptRestoreBitwise is the preemption invariant: a run through an
// arena tight enough to force preemption churn must complete every request
// with decode digests bitwise-identical to a run through an arena that
// never preempts. KV words and decode tokens are pure functions of
// (token, position), so a correct preempt→restore leaves no trace in the
// output; any divergence means restore rebuilt the wrong KV state.
func TestPreemptRestoreBitwise(t *testing.T) {
	trace := testTrace(13, 48)
	run := func(pages int, preempt bool) (Report, Stats) {
		cfg := testCfg()
		cfg.KV.NumPages = pages
		cfg.PreemptKV = preempt
		s := New(newFakeExec(), cfg)
		rep, _, err := s.Replay(context.Background(), trace)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.KV().Quiescent(); err != nil {
			t.Fatalf("pages=%d preempt=%v: %v", pages, preempt, err)
		}
		return rep, s.Stats()
	}

	wide, _ := run(4096, false)
	tight, st := run(192, true)

	if st.Preemptions == 0 || st.Restores == 0 {
		t.Fatalf("tight arena exercised no preemption: preemptions=%d restores=%d",
			st.Preemptions, st.Restores)
	}
	if tight.Completed != wide.Completed || tight.Failed != 0 {
		t.Fatalf("tight arena completed %d (failed %d), wide completed %d — preemption lost requests",
			tight.Completed, tight.Failed, wide.Completed)
	}
	if tight.DigestBits != wide.DigestBits {
		t.Fatalf("preempt→restore not bitwise-identical: tight %016x, wide %016x",
			tight.DigestBits, wide.DigestBits)
	}
	if tight.LeakedPages != 0 {
		t.Fatalf("preemption churn leaked %d pages", tight.LeakedPages)
	}

	// Per-seed determinism under preemption churn.
	again, st2 := run(192, true)
	if tight != again || st != st2 {
		t.Fatalf("preemption replay not deterministic:\n%+v\n%+v", tight, again)
	}
}

// TestPreemptionPrefersLowPriorityYoungest pins the victim order: under
// pressure the low-priority class parks, the urgent class keeps running.
func TestPreemptionPrefersLowPriorityYoungest(t *testing.T) {
	cfg := testCfg()
	cfg.KV.NumPages = 160
	cfg.PreemptKV = true
	cfg.RecordEvents = true
	s := New(newFakeExec(), cfg)

	var trace []workload.TraceRequest
	for i := 0; i < 12; i++ {
		trace = append(trace, workload.TraceRequest{
			ArrivalCycle: float64(i) * 1000,
			Tenant:       "t",
			Priority:     i % 2 * 2, // alternate urgent (0) and background (2)
			PromptLen:    256,
			DecodeTokens: 24,
			PromptSeed:   uint64(i + 1),
		})
	}
	if _, _, err := s.Replay(context.Background(), trace); err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	preempted := 0
	for _, e := range events {
		if e.Kind != "preempt" {
			continue
		}
		preempted++
		// IDs are trace indices; odd indices are the background class.
		if e.ID%2 == 0 {
			t.Fatalf("preempted urgent request %d while background requests ran: %+v", e.ID, e)
		}
	}
	if preempted == 0 {
		t.Fatal("scenario exercised no preemption")
	}
	if err := s.KV().Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineShedQueueTime: with ShedDeadlines on and a TTFT bound the
// surge makes unmeetable, stale queued requests must drain as ErrDeadline
// — provably-late work never reaches the device — while survivors still
// complete, deterministically.
func TestDeadlineShedQueueTime(t *testing.T) {
	run := func() (Report, []Result, Stats) {
		cfg := testCfg()
		cfg.TTFTSLOMs = 2
		cfg.MaxInFlightTokens = 2048 // force a queue so waits actually build
		cfg.ShedDeadlines = true
		s := New(newFakeExec(), cfg)
		rep, results, err := s.Replay(context.Background(), overloadTrace(17, 96))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.KV().Quiescent(); err != nil {
			t.Fatal(err)
		}
		return rep, results, s.Stats()
	}
	rep, results, st := run()
	if st.DeadlineSheds == 0 {
		t.Fatal("surge shed no deadlines")
	}
	sheds := 0
	for _, r := range results {
		if errors.Is(r.Err, ErrDeadline) {
			sheds++
		} else if r.Err != nil {
			t.Fatalf("unexpected failure: %v", r.Err)
		}
	}
	if int64(sheds) != st.DeadlineSheds {
		t.Fatalf("%d ErrDeadline results, stats count %d", sheds, st.DeadlineSheds)
	}
	if rep.Completed == 0 {
		t.Fatal("shedding drained everything; survivors should complete")
	}
	rep2, _, _ := run()
	if rep != rep2 {
		t.Fatalf("deadline shedding not deterministic:\n%+v\n%+v", rep, rep2)
	}
}

// TestAdaptiveLimitTracksLoad: the AIMD limiter must cut the admitted mass
// under step-SLO violations and never leave [min, max].
func TestAdaptiveLimitTracksLoad(t *testing.T) {
	cfg := testCfg()
	cfg.StepSLOMs = 0.1 // tight enough that full admission violates
	cfg.Adaptive = true
	cfg.AdaptiveMinTokens = 512
	s := New(newFakeExec(), cfg)
	rep, _, err := s.Replay(context.Background(), overloadTrace(23, 96))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.StepViolations == 0 {
		t.Fatal("load never violated the step SLO; limiter untested")
	}
	if st.AdaptiveLimitTokens >= cfg.MaxInFlightTokens && cfg.MaxInFlightTokens > 0 {
		t.Fatalf("limit %d never moved below the static budget", st.AdaptiveLimitTokens)
	}
	if st.AdaptiveLimitTokens < cfg.AdaptiveMinTokens {
		t.Fatalf("limit %d fell under the floor %d", st.AdaptiveLimitTokens, cfg.AdaptiveMinTokens)
	}
	if rep.Completed+rep.Failed == 0 {
		t.Fatal("nothing drained")
	}
	if err := s.KV().Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestStarvationGuardPerRequest is the regression for the global deferral
// counter: with a high-priority prefill stream hogging every guard page,
// the old guard reset globally whenever *any* prefill ran, so a
// low-priority prefill starved unboundedly. The per-request guard must
// round-robin guard pages to the most-starved request, bounding every
// request's deferral by the guard cadence times the contending queue.
func TestStarvationGuardPerRequest(t *testing.T) {
	s := New(newFakeExec(), testCfg())
	urgent := &reqState{req: Request{ID: 1, Priority: 0}, need: 4096}
	background := &reqState{req: Request{ID: 2, Priority: 2}, need: 4096}
	s.running = []*reqState{urgent, background}
	s.cyclesPerTk = 2000 // established cost model

	s.mu.Lock()
	defer s.mu.Unlock()
	const waves = 60
	for w := 0; w < waves; w++ {
		// Decode fills the whole bound: zero slack, every wave defers.
		budget := s.prefillBudgetLocked(true, s.stepBound)
		for _, job := range s.buildPrefillLocked(budget) {
			job.st.filled += job.chunk
		}
	}
	if urgent.filled == 0 {
		t.Fatal("urgent prefill made no progress")
	}
	if background.filled == 0 {
		t.Fatalf("background prefill starved across %d waves (urgent got %d tokens)",
			waves, urgent.filled)
	}
	// Both contenders progress at the guard cadence; neither may defer much
	// past one full rotation of the two-deep queue.
	bound := int64(2 * (starvedWaves + 1) * 2)
	if s.stats.MaxDeferredWaves > bound {
		t.Fatalf("max deferral %d exceeds bound %d", s.stats.MaxDeferredWaves, bound)
	}
}

// TestLoopLiveSubmitShutdown closes the loop mid-wave while submitters are
// still firing, with every overload defense enabled over a tight arena:
// each submit must deliver exactly one result, no goroutine may leak, and
// the KV arena must drain quiescent with no tenant queue stranded.
func TestLoopLiveSubmitShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 4; round++ {
		cfg := testCfg()
		cfg.KV.NumPages = 192
		cfg.Adaptive = true
		cfg.ShedDeadlines = true
		cfg.PreemptKV = true
		s := New(newFakeExec(), cfg)
		loop := NewLoop(s)

		const submitters, perSubmitter = 4, 24
		var wg sync.WaitGroup
		results := make(chan Result, submitters*perSubmitter)
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perSubmitter; i++ {
					req := Request{
						ID:       uint64(g*perSubmitter + i),
						Tenant:   string(rune('a' + g)),
						Priority: i % NumPriorities,
						Prompt:   make([]int32, 64+16*(i%8)),
						Decode:   8,
					}
					if i%8 == 0 {
						req.Fanout = 2
					}
					results <- <-loop.Submit(req)
				}
			}(g)
		}
		// Let some waves run, then slam the door mid-flight.
		time.Sleep(time.Duration(1+round) * time.Millisecond)
		loop.Close()
		wg.Wait()
		close(results)

		delivered := 0
		for range results {
			delivered++
		}
		if delivered != submitters*perSubmitter {
			t.Fatalf("round %d: %d results for %d submits", round, delivered, submitters*perSubmitter)
		}
		st := s.Stats()
		if st.Queued != 0 || st.Running != 0 || st.Parked != 0 {
			t.Fatalf("round %d: stranded state after close: queued=%d running=%d parked=%d",
				round, st.Queued, st.Running, st.Parked)
		}
		if err := s.KV().Quiescent(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// The loop goroutine must be gone; allow the runtime a moment to reap.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
