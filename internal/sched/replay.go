package sched

import (
	"context"
	"sort"

	"mikpoly/internal/kvcache"
	"mikpoly/internal/workload"
)

// Report aggregates one trace replay. Every field is deterministic given
// the trace and configuration: the clock is virtual (executed device
// cycles), so two replays of the same trace produce identical bits.
type Report struct {
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	SLOGood   int `json:"slo_good"`

	// GoodputTokensPerSec counts decode tokens of SLO-good requests per
	// virtual second — the headline metric the CI gate protects.
	GoodputTokensPerSec float64 `json:"goodput_tokens_per_sec"`
	GoodDecodeTokens    int64   `json:"good_decode_tokens"`
	DecodeTokens        int64   `json:"decode_tokens"`

	P50StepMs  float64 `json:"p50_step_ms"`
	P99StepMs  float64 `json:"p99_step_ms"`
	P99TTFTMs  float64 `json:"p99_ttft_ms"`
	ElapsedSec float64 `json:"elapsed_sec"`

	PrefillCycles float64 `json:"prefill_cycles"`
	DecodeCycles  float64 `json:"decode_cycles"`
	CopyCycles    float64 `json:"copy_cycles"`
	ReusedTokens  int64   `json:"reused_tokens"`

	// DigestBits folds every completed request's decode digest in request
	// order — the bitwise-equality handle for reuse-on vs reuse-off.
	DigestBits uint64 `json:"-"`

	KV kvcache.Stats `json:"kv"`
	// LeakedPages must be zero after a drained replay.
	LeakedPages int `json:"leaked_pages"`
}

// Replay runs a synthetic trace to completion in virtual time and returns
// the aggregate report plus per-request results (in completion order).
// Arrivals are injected when the virtual clock reaches them; when the
// scheduler goes idle with arrivals still pending, the clock jumps forward.
func (s *Scheduler) Replay(ctx context.Context, trace []workload.TraceRequest) (Report, []Result, error) {
	reqs := make([]workload.TraceRequest, len(trace))
	copy(reqs, trace)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].ArrivalCycle < reqs[j].ArrivalCycle })

	next := 0
	inject := func() {
		s.mu.Lock()
		for next < len(reqs) && reqs[next].ArrivalCycle <= s.clock {
			tr := reqs[next]
			st := &reqState{req: traceToRequest(tr, uint64(next)), arrival: tr.ArrivalCycle}
			s.enqueueLocked(st)
			next++
		}
		s.mu.Unlock()
	}

	for {
		if err := ctx.Err(); err != nil {
			return Report{}, nil, err
		}
		inject()
		_, worked := s.runWave(ctx)
		if worked {
			continue
		}
		// Idle: jump to the next arrival, or finish.
		s.mu.Lock()
		pending := s.pendingLocked()
		if !pending && next < len(reqs) {
			if reqs[next].ArrivalCycle > s.clock {
				s.clock = reqs[next].ArrivalCycle
			}
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		if pending {
			// Queued work the wave could not start with nothing running
			// to release pages or budget: the head request can never fit.
			// Fail it and keep draining the rest.
			s.failHeadQueued()
			continue
		}
		break
	}
	return s.buildReport(), s.takeResults(), nil
}

// failHeadQueued fails the first queued request (admission order) with
// ErrRejected — the drain path when a request can never fit the arena or
// budget and everything runnable has already drained. With nothing running
// to free pages, an unrestorable parked request is equally stuck, so it
// drains first (it holds the oldest commitment).
func (s *Scheduler) failHeadQueued() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.running) == 0 && len(s.parked) > 0 {
		st := s.parked[0]
		s.parked = s.parked[1:]
		st.done = true
		s.stats.Failed++
		res := Result{ID: st.req.ID, Tenant: st.req.Tenant, Err: ErrRejected}
		if st.deliver != nil {
			st.deliver(res)
		} else {
			s.collected = append(s.collected, res)
		}
		return
	}
	for p := 0; p < NumPriorities; p++ {
		for _, tn := range s.tenants {
			q := s.queues[tn]
			if len(q[p]) == 0 {
				continue
			}
			st := q[p][0]
			q[p] = q[p][1:]
			st.done = true
			s.stats.Failed++
			res := Result{ID: st.req.ID, Tenant: st.req.Tenant, Err: ErrRejected}
			if st.deliver != nil {
				st.deliver(res)
			} else {
				s.collected = append(s.collected, res)
			}
			return
		}
	}
}

func (s *Scheduler) takeResults() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.collected
	s.collected = nil
	return out
}

// buildReport snapshots the replay outcome.
func (s *Scheduler) buildReport() Report {
	s.mu.Lock()
	results := append([]Result(nil), s.collected...)
	st := s.stats
	clock := s.clock
	p50 := s.steps.quantile(0.50)
	p99 := s.steps.quantile(0.99)
	ttft99 := s.ttfts.quantile(0.99)
	s.mu.Unlock()

	h := s.cfg.HW
	r := Report{
		Requests:      len(results),
		PrefillCycles: st.PrefillCycles,
		DecodeCycles:  st.DecodeCycles,
		CopyCycles:    st.CopyCycles,
		ReusedTokens:  st.ReusedTokens,
		P50StepMs:     h.CyclesToSeconds(p50) * 1e3,
		P99StepMs:     h.CyclesToSeconds(p99) * 1e3,
		P99TTFTMs:     h.CyclesToSeconds(ttft99) * 1e3,
		ElapsedSec:    h.CyclesToSeconds(clock),
		KV:            s.kv.Stats(),
	}
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	for _, res := range results {
		r.DecodeTokens += int64(res.DecodeTokens)
		switch {
		case res.Err != nil:
			r.Failed++
		default:
			r.Completed++
			r.DigestBits = r.DigestBits*0x100000001b3 ^ res.Digest
			if res.SLOGood {
				r.SLOGood++
				r.GoodDecodeTokens += int64(res.DecodeTokens)
			}
		}
	}
	if r.ElapsedSec > 0 {
		r.GoodputTokensPerSec = float64(r.GoodDecodeTokens) / r.ElapsedSec
	}
	r.LeakedPages = r.KV.ActivePages
	return r
}

// traceToRequest materializes a trace entry's deterministic prompt. Prompts
// within a shared-prefix group start with the group's block, which is what
// prefix reuse amortizes across requests.
func traceToRequest(tr workload.TraceRequest, id uint64) Request {
	return Request{
		ID:       id,
		Tenant:   tr.Tenant,
		Priority: tr.Priority,
		Prompt:   tr.PromptTokens(),
		Decode:   tr.DecodeTokens,
		Fanout:   tr.Fanout,
	}
}
