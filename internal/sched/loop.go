package sched

import (
	"context"
	"sync"
)

// Loop is the online driver: one goroutine runs waves whenever requests are
// queued or running, and Submit hands results back over a channel. The
// clock stays virtual (executed cycles), so online behavior matches replay
// behavior for the same request stream.
type Loop struct {
	s      *Scheduler
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewLoop starts the wave loop over a scheduler.
func NewLoop(s *Scheduler) *Loop {
	ctx, cancel := context.WithCancel(context.Background())
	l := &Loop{s: s, ctx: ctx, cancel: cancel}
	l.wg.Add(1)
	go l.run()
	return l
}

// Scheduler returns the underlying scheduler.
func (l *Loop) Scheduler() *Scheduler { return l.s }

// Submit enqueues a request and returns a channel delivering its single
// Result. A request whose mass exceeds the configured token budget — one
// that could never be admitted — fails fast with ErrRejected so the serve
// layer can answer 429 instead of queueing it forever.
func (l *Loop) Submit(req Request) <-chan Result {
	ch := make(chan Result, 1)
	s := l.s
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		ch <- Result{ID: req.ID, Tenant: req.Tenant, Err: ErrRejected}
		return ch
	case !s.CanAdmit(req.Mass()):
		s.mu.Unlock()
		ch <- Result{ID: req.ID, Tenant: req.Tenant, Err: ErrRejected}
		return ch
	}
	st := &reqState{req: req, arrival: s.clock, deliver: func(r Result) { ch <- r }}
	s.enqueueLocked(st)
	s.cond.Signal()
	s.mu.Unlock()
	return ch
}

// Close stops the loop, failing everything still queued or running.
func (l *Loop) Close() {
	l.cancel()
	l.s.mu.Lock()
	l.s.closed = true
	l.s.cond.Signal()
	l.s.mu.Unlock()
	l.wg.Wait()
}

func (l *Loop) run() {
	defer l.wg.Done()
	s := l.s
	for {
		s.mu.Lock()
		for !s.pendingLocked() && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.drainLocked()
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		if _, worked := s.runWave(l.ctx); !worked {
			// Queued work that cannot start (arena exhausted with nothing
			// running): fail the head so the queue keeps moving.
			s.failHeadQueued()
		}
		if l.ctx.Err() != nil {
			s.mu.Lock()
			s.closed = true
			s.drainLocked()
			s.mu.Unlock()
			return
		}
	}
}

// drainLocked fails every queued and running request on shutdown, releasing
// all KV pages.
func (s *Scheduler) drainLocked() {
	for _, tn := range s.tenants {
		q := s.queues[tn]
		for p := range q {
			for _, st := range q[p] {
				st.done = true
				s.stats.Failed++
				if st.deliver != nil {
					st.deliver(Result{ID: st.req.ID, Tenant: st.req.Tenant, Err: ErrRejected})
				}
			}
			q[p] = nil
		}
	}
	for len(s.running) > 0 {
		s.finishLocked(s.running[0], ErrRejected)
	}
	// Parked requests hold no pages; fail them directly.
	for _, st := range s.parked {
		st.done = true
		s.stats.Failed++
		if st.deliver != nil {
			st.deliver(Result{ID: st.req.ID, Tenant: st.req.Tenant, Err: ErrRejected})
		}
	}
	s.parked = nil
}
