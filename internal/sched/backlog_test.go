package sched

import (
	"math"
	"testing"
)

// TestEstimateBacklogSeconds pins the drain estimate the serve layer turns
// into Retry-After: zero until a per-token cost is observed, proportional to
// inflight plus queued token mass after, and strictly growing with queue
// depth.
func TestEstimateBacklogSeconds(t *testing.T) {
	s := New(newFakeExec(), testCfg())
	if got := s.EstimateBacklogSeconds(); got != 0 {
		t.Fatalf("estimate before any observed cost = %v, want 0", got)
	}

	s.mu.Lock()
	s.cyclesPerTk = 1000
	s.mu.Unlock()
	if got := s.EstimateBacklogSeconds(); got != 0 {
		t.Fatalf("estimate with empty queues = %v, want 0", got)
	}

	s.mu.Lock()
	s.inflight = 500
	s.mu.Unlock()
	clock := s.cfg.HW.ClockHz
	want := 500 * 1000 / clock
	base := s.EstimateBacklogSeconds()
	if math.Abs(base-want) > want*1e-9 {
		t.Fatalf("inflight-only estimate = %v, want %v", base, want)
	}

	s.mu.Lock()
	s.enqueueLocked(&reqState{req: Request{Tenant: "a", Prompt: make([]int32, 100), Decode: 28}}) // mass 128
	s.mu.Unlock()
	withQueue := s.EstimateBacklogSeconds()
	want = (500 + 128) * 1000 / clock
	if math.Abs(withQueue-want) > want*1e-9 {
		t.Fatalf("estimate with one queued request = %v, want %v", withQueue, want)
	}
	if withQueue <= base {
		t.Fatalf("estimate did not grow with queue depth: %v <= %v", withQueue, base)
	}

	s.mu.Lock()
	s.enqueueLocked(&reqState{req: Request{Tenant: "b", Priority: 1, Prompt: make([]int32, 256)}})
	s.mu.Unlock()
	if deeper := s.EstimateBacklogSeconds(); deeper <= withQueue {
		t.Fatalf("estimate not monotone in queued mass: %v <= %v", deeper, withQueue)
	}
}
