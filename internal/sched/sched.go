// Package sched is the SLO-aware multi-tenant request scheduler in front of
// the graph runtime: per-tenant queues with priority classes, token-budget
// admission, chunked prefill interleaved with continuous decode waves, and —
// when a device fleet is attached — prefill/decode pool separation.
//
// The scheduler thinks in *waves*. Each wave admits what the token budget
// allows, builds one batched decode step over every running sequence
// (bucketed by page-padded KV length), carves a bounded chunk off the
// longest-waiting prefill backlog, executes both through an Executor, and
// advances a virtual cycle clock by the executed cycles. Because the
// executor's costs come from the deterministic device simulator, the whole
// serving loop replays bit-for-bit: goodput, latency quantiles, and decode
// digests are exact values a CI gate can compare, not noisy measurements.
//
// Chunked prefill is the latency mechanism: a long prompt never runs as one
// monolithic graph alongside decode. Its chunk budget adapts — sized from a
// running cycles-per-token estimate so that prefill plus the decode wave
// fits the decode-step SLO bound, halved after a violation, grown while
// comfortably under — and becomes unbounded when no decode is in flight or
// when prefill runs on its own device pool.
//
// KV state lives in a kvcache.Manager: admission allocates the prompt's
// pages (sharing every prefix block the cache already holds — shared blocks
// skip prefill compute entirely), decode appends through it, parallel
// sampling forks it, and completion or failure releases it. A request whose
// executor crashes releases its pages on the spot; the chaos harness holds
// the scheduler to exactly zero leaked pages.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mikpoly/internal/hw"
	"mikpoly/internal/kvcache"
	"mikpoly/internal/nn"
	"mikpoly/internal/sim"
)

// Pool names passed to the Executor. Without pool separation both map to
// the same devices and the executor may ignore them.
const (
	PoolPrefill = "prefill"
	PoolDecode  = "decode"
)

// NumPriorities is the number of priority classes (0 is most urgent).
const NumPriorities = 3

// Executor runs one graph and returns its device cost in cycles. The
// scheduler serializes calls; implementations need not be concurrency-safe
// for scheduler use. pool is PoolPrefill or PoolDecode.
type Executor interface {
	ExecGraph(ctx context.Context, g nn.Graph, pool string) (cycles float64, err error)
}

// ExecutorFunc adapts a function to Executor.
type ExecutorFunc func(ctx context.Context, g nn.Graph, pool string) (float64, error)

// ExecGraph implements Executor.
func (f ExecutorFunc) ExecGraph(ctx context.Context, g nn.Graph, pool string) (float64, error) {
	return f(ctx, g, pool)
}

// ErrRejected reports an admission rejection (token budget exceeded by a
// request that could never fit, or a closed scheduler).
var ErrRejected = errors.New("sched: rejected")

// ErrDeadline reports a request shed because it provably could not meet its
// deadline: its queue wait alone already exceeded the deadline budget, so
// running it would burn device cycles on a guaranteed SLO miss. The serve
// layer maps this to 504, counted separately from admission 429s.
var ErrDeadline = errors.New("sched: deadline exceeded")

// Config tunes the scheduler. Zero fields take defaults.
type Config struct {
	// HW is the hardware model used to convert SLO milliseconds to cycles
	// and to charge KV page-copy bandwidth (required).
	HW hw.Hardware
	// KV configures the paged KV-cache manager the scheduler owns.
	KV kvcache.Config
	// MaxDecodeBatch bounds one decode graph's batch (default 8, matching
	// the graphrt decode batcher).
	MaxDecodeBatch int
	// DecodeBucket is the KV-length bucketing granule for decode batching
	// in tokens (default 128, never below the KV page size). Pages keep
	// the *memory* granularity fine; the bucket keeps the *batching*
	// granularity coarse enough that one wave does not shatter into a
	// graph per sequence. The padding this costs is accounted exactly in
	// Stats.PaddedKVTokens/PaddedKVBytes.
	DecodeBucket int
	// PrefillChunk is the largest prefill chunk in tokens (default 256).
	// The live chunk adapts below this; it never goes under one KV page.
	PrefillChunk int
	// StepSLOMs bounds one decode step (the full wave when prefill shares
	// the pool) in milliseconds (default 50).
	StepSLOMs float64
	// TTFTSLOMs bounds time-to-first-token in milliseconds (default 1000).
	TTFTSLOMs float64
	// MaxInFlightTokens is the admission token budget: the summed mass
	// (prompt + decode·branches) of running requests (default 262144).
	MaxInFlightTokens int64
	// SeparatePools routes prefill and decode to their named pools and
	// stops charging prefill cycles against the decode-step latency.
	SeparatePools bool

	// Adaptive replaces the static token-budget gate with an AIMD
	// concurrency limiter: the admitted token mass shrinks multiplicatively
	// when a decode wave violates the step SLO and grows additively while
	// comfortably under it, with growth accelerated when the EWMA queue
	// wait signals backlog pressure. MaxInFlightTokens stays the hard
	// ceiling; AdaptiveMinTokens the floor.
	Adaptive          bool
	AdaptiveMinTokens int64 // default 4096

	// ShedDeadlines drops queued requests whose deadline has provably
	// passed (queue wait alone exceeds the deadline budget) with
	// ErrDeadline before they consume device cycles. Requests without an
	// explicit DeadlineCycles use the TTFT SLO bound as their deadline.
	ShedDeadlines bool

	// PreemptKV preempts the least-important running requests (lowest
	// priority class, then youngest arrival) when the paged KV arena runs
	// out under decode pressure: their pages are released through the
	// normal refcount machinery and they park in a restore queue, resuming
	// later via prefix-cache recompute — bitwise-identical to
	// uninterrupted execution because KV words and decode tokens are pure
	// functions of (token, position).
	PreemptKV bool
	// KVLowWater/KVHighWater are the preemption hysteresis fractions of
	// allocatable (free+cached) pages: pressure preemption starts below
	// the low water mark and frees until the high water mark; parked
	// requests restore only above it (defaults 1/16 and 1/4).
	KVLowWater, KVHighWater float64

	// RecordEvents keeps a bounded in-memory log of overload decisions
	// (preempt, restore, deadline sheds, limit cuts) for harness
	// artifacts.
	RecordEvents bool
}

func (c Config) withDefaults() Config {
	if c.MaxDecodeBatch <= 0 {
		c.MaxDecodeBatch = 8
	}
	if c.PrefillChunk <= 0 {
		c.PrefillChunk = 256
	}
	if c.DecodeBucket <= 0 {
		c.DecodeBucket = 128
	}
	if c.StepSLOMs <= 0 {
		c.StepSLOMs = 50
	}
	if c.TTFTSLOMs <= 0 {
		c.TTFTSLOMs = 1000
	}
	if c.MaxInFlightTokens <= 0 {
		c.MaxInFlightTokens = 262144
	}
	if c.AdaptiveMinTokens <= 0 {
		c.AdaptiveMinTokens = 4096
	}
	if c.AdaptiveMinTokens > c.MaxInFlightTokens {
		c.AdaptiveMinTokens = c.MaxInFlightTokens
	}
	if c.KVLowWater <= 0 {
		c.KVLowWater = 1.0 / 16
	}
	if c.KVHighWater <= c.KVLowWater {
		c.KVHighWater = 4 * c.KVLowWater
	}
	if c.KVHighWater > 1 {
		c.KVHighWater = 1
	}
	return c
}

// Request is one serving request.
type Request struct {
	ID       uint64
	Tenant   string
	Priority int // 0..NumPriorities-1, 0 most urgent; out of range clamps
	Prompt   []int32
	Decode   int // tokens to generate per branch
	Fanout   int // parallel sampling branches (<=1 means 1)

	// DeadlineCycles is the request's deadline budget in device cycles,
	// relative to its arrival (0 = none; with Config.ShedDeadlines the
	// TTFT SLO bound applies instead). A queued request whose wait alone
	// exceeds the budget is shed with ErrDeadline.
	DeadlineCycles float64
}

// Mass is the admission cost of a request in tokens: the prompt plus every
// branch's generation budget. This is what the token-budget admission
// control and the serve layer's 429 check count.
func (r Request) Mass() int64 {
	fan := r.Fanout
	if fan < 1 {
		fan = 1
	}
	return int64(len(r.Prompt)) + int64(r.Decode)*int64(fan)
}

// Result is the outcome of one request.
type Result struct {
	ID           uint64
	Tenant       string
	Err          error
	ReusedTokens int     // prompt tokens satisfied by KV prefix hits
	TTFTCycles   float64 // arrival → first decode token
	DecodeTokens int     // tokens generated across branches
	MaxStepCycle float64 // worst decode-step latency observed
	Digest       uint64  // fold of every branch's final KV digest
	SLOGood      bool    // TTFT and every decode step within bounds
}

// Stats is the scheduler's cumulative accounting, exported to /stats and
// /metrics as mik_sched_*.
type Stats struct {
	Queued         int   `json:"queued"`
	Running        int   `json:"running"`
	InFlightTokens int64 `json:"inflight_tokens"`
	BudgetTokens   int64 `json:"budget_tokens"`

	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	SLOGood   int64 `json:"slo_good"`

	Waves          int64   `json:"waves"`
	PrefillChunks  int64   `json:"prefill_chunks"`
	PrefillTokens  int64   `json:"prefill_tokens"`
	ReusedTokens   int64   `json:"reused_tokens"`
	DecodeSteps    int64   `json:"decode_steps"`
	PrefillCycles  float64 `json:"prefill_cycles"`
	DecodeCycles   float64 `json:"decode_cycles"`
	CopyCycles     float64 `json:"copy_cycles"`
	StepViolations int64   `json:"step_violations"`
	ChunkTokens    int     `json:"chunk_tokens"` // last granted prefill budget

	// PaddedKVTokens/Bytes account the decode-bucket padding exactly:
	// attention work charged beyond each sequence's true KV length.
	PaddedKVTokens int64 `json:"padded_kv_tokens"`
	PaddedKVBytes  int64 `json:"padded_kv_bytes"`

	// Overload-defense accounting. AdaptiveLimitTokens is the AIMD
	// limiter's current admitted-mass ceiling (equals BudgetTokens when
	// the limiter is off); DeadlineSheds counts queued requests dropped
	// with ErrDeadline; Preemptions/Restores count KV-pressure parks and
	// their prefix-recompute resumes; Parked is the restore queue depth.
	AdaptiveLimitTokens int64 `json:"adaptive_limit_tokens"`
	DeadlineSheds       int64 `json:"deadline_sheds"`
	Preemptions         int64 `json:"preemptions"`
	Restores            int64 `json:"restores"`
	Parked              int   `json:"parked"`
	// MaxDeferredWaves is the high-water mark of consecutive waves any
	// single request's prefill went ungranted (starvation-guard bound).
	MaxDeferredWaves int64 `json:"max_deferred_waves"`
}

// reqState tracks one admitted request through prefill and decode.
type reqState struct {
	req     Request
	mass    int64
	arrival float64 // clock at admission enqueue (set by the driver)

	seqs    []*kvcache.Sequence // branch 0 first; forks appear after prefill
	need    int                 // prompt tokens requiring prefill compute
	filled  int                 // prefill tokens executed so far
	decoded []int               // decode steps completed per branch

	// gen is the per-branch generated-token history, kept only under
	// PreemptKV: it is the restore recipe (prompt ++ gen[b] rebuilds the
	// branch's exact KV state via prefix-cache recompute).
	gen      [][]int32
	parked   bool // preempted, waiting in the restore queue
	deferred int  // consecutive waves this request's prefill got nothing

	firstTok float64 // clock at first decode token (-1 until then)
	maxStep  float64
	sloBad   bool
	done     bool         // finished (completed or failed); never finish twice
	deliver  func(Result) // non-nil for online submits
}

func (st *reqState) prefillDone() bool { return st.filled >= st.need }

func (st *reqState) decodeDone() bool {
	for _, d := range st.decoded {
		if d < st.req.Decode {
			return false
		}
	}
	return true
}

// Scheduler is the multi-tenant serving scheduler. One goroutine drives
// waves (Loop or Replay); Submit/Stats are safe from any goroutine.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config
	kv   *kvcache.Manager
	exec Executor

	stepBound float64 // cycles
	ttftBound float64 // cycles

	queues  map[string]*[NumPriorities][]*reqState
	tenants []string // sorted; rotation makes round-robin fair
	rr      int

	inflight int64
	running  []*reqState
	parked   []*reqState // preempted requests awaiting restore (FIFO)

	chunk         int     // last prefill budget granted (stats)
	chunkCap      int     // brownout cap on the prefill chunk (0 = none)
	cyclesPerTk   float64 // EWMA prefill cycles per token
	guardCooldown int     // waves until the starvation guard may fire again

	limit     float64 // AIMD admitted-mass ceiling (tokens; Adaptive only)
	queueWait float64 // EWMA queue wait at admission (cycles)

	clock     float64
	lastCopy  int64 // kv CopiedBytes already charged
	stats     Stats
	steps     quantiles
	ttfts     quantiles
	events    []Event
	collected []Result // replay results
	closed    bool
}

// New builds a scheduler over its own KV manager.
func New(exec Executor, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	if err := cfg.HW.Validate(); err != nil {
		panic(fmt.Sprintf("sched: %v", err))
	}
	s := &Scheduler{
		cfg:       cfg,
		kv:        kvcache.New(cfg.KV),
		exec:      exec,
		stepBound: cfg.StepSLOMs / 1e3 * cfg.HW.ClockHz,
		ttftBound: cfg.TTFTSLOMs / 1e3 * cfg.HW.ClockHz,
		queues:    make(map[string]*[NumPriorities][]*reqState),
	}
	s.limit = float64(cfg.MaxInFlightTokens)
	s.cond = sync.NewCond(&s.mu)
	return s
}

// KV exposes the scheduler's KV manager (stats, leak assertions).
func (s *Scheduler) KV() *kvcache.Manager { return s.kv }

// Config returns the effective configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// StepBoundCycles returns the decode-step SLO bound in cycles.
func (s *Scheduler) StepBoundCycles() float64 { return s.stepBound }

// Stats snapshots the accounting.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Running = len(s.running)
	st.InFlightTokens = s.inflight
	st.BudgetTokens = s.cfg.MaxInFlightTokens
	st.ChunkTokens = s.chunk
	st.Parked = len(s.parked)
	st.AdaptiveLimitTokens = s.cfg.MaxInFlightTokens
	if s.cfg.Adaptive {
		st.AdaptiveLimitTokens = int64(s.limit)
	}
	queued := 0
	for _, q := range s.queues {
		for p := range q {
			queued += len(q[p])
		}
	}
	st.Queued = queued
	return st
}

// StepQuantileMs returns the q-quantile (0..1) of observed decode-step
// latency in milliseconds.
func (s *Scheduler) StepQuantileMs(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.HW.CyclesToSeconds(s.steps.quantile(q)) * 1e3
}

// CanAdmit reports whether a request of the given mass could ever fit the
// token budget — the serve layer's 429-vs-queue distinction.
func (s *Scheduler) CanAdmit(mass int64) bool {
	return mass <= s.cfg.MaxInFlightTokens
}

// EstimateBacklogSeconds estimates how long the scheduler needs to drain its
// current commitment: the summed token mass of running plus queued requests,
// priced at the EWMA per-token prefill cost on this hardware's clock. Zero
// when no per-token cost has been observed yet or nothing is pending. The
// serve layer turns this into a proportional Retry-After on token-budget
// rejections, so clients back off in step with actual queue depth instead of
// hammering a saturated replica every second.
func (s *Scheduler) EstimateBacklogSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cyclesPerTk <= 0 || s.cfg.HW.ClockHz <= 0 {
		return 0
	}
	mass := s.inflight
	for _, st := range s.parked {
		mass += st.mass
	}
	for _, q := range s.queues {
		for p := range q {
			for _, st := range q[p] {
				mass += st.mass
			}
		}
	}
	if mass <= 0 {
		return 0
	}
	return float64(mass) * s.cyclesPerTk / s.cfg.HW.ClockHz
}

// SetChunkCap caps the prefill chunk budget below Config.PrefillChunk
// (brownout stage 2: shrink prefill to protect decode latency). Zero lifts
// the cap; a positive cap never goes under one KV page.
func (s *Scheduler) SetChunkCap(tokens int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tokens > 0 {
		if pt := s.kv.Config().TokensPerPage; tokens < pt {
			tokens = pt
		}
	} else {
		tokens = 0
	}
	s.chunkCap = tokens
}

// enqueueLocked files a request under its tenant and priority.
func (s *Scheduler) enqueueLocked(st *reqState) {
	if st.req.Decode < 1 {
		st.req.Decode = 1
	}
	st.mass = st.req.Mass()
	p := st.req.Priority
	if p < 0 {
		p = 0
	}
	if p >= NumPriorities {
		p = NumPriorities - 1
	}
	st.req.Priority = p
	q, ok := s.queues[st.req.Tenant]
	if !ok {
		q = new([NumPriorities][]*reqState)
		s.queues[st.req.Tenant] = q
		s.tenants = append(s.tenants, st.req.Tenant)
		sort.Strings(s.tenants)
	}
	q[p] = append(q[p], st)
}

// admitLocked moves queued requests into the running set while the token
// budget and KV arena allow: priority classes strictly in order, tenants
// round-robin within a class (rotating start so no tenant is structurally
// first), FIFO within a tenant. Preempted requests restore first — they
// were admitted once and hold a prior claim on the arena.
func (s *Scheduler) admitLocked() {
	s.restoreParkedLocked()
	for p := 0; p < NumPriorities; p++ {
		for {
			admittedAny := false
			n := len(s.tenants)
			for i := 0; i < n; i++ {
				tn := s.tenants[(s.rr+i)%n]
				q := s.queues[tn]
				if len(q[p]) == 0 {
					continue
				}
				st := q[p][0]
				if !s.admitFitsLocked(st.mass) {
					continue
				}
				seq, err := s.kv.NewSequence(st.req.Tenant, st.req.Prompt)
				if err != nil {
					// Arena full: stop admitting entirely this wave;
					// running sequences will release pages.
					return
				}
				q[p] = q[p][1:]
				st.seqs = []*kvcache.Sequence{seq}
				st.need = len(st.req.Prompt) - seq.Reused()
				st.firstTok = -1
				fan := st.req.Fanout
				if fan < 1 {
					fan = 1
				}
				st.decoded = make([]int, 1, fan)
				if s.cfg.PreemptKV {
					st.gen = make([][]int32, 1, fan)
				}
				s.running = append(s.running, st)
				s.inflight += st.mass
				s.stats.Admitted++
				s.stats.ReusedTokens += int64(seq.Reused())
				if s.cfg.Adaptive {
					w := s.clock - st.arrival
					if s.queueWait == 0 {
						s.queueWait = w
					} else {
						s.queueWait = 0.7*s.queueWait + 0.3*w
					}
				}
				s.rr = (s.rr + i + 1) % n
				admittedAny = true
			}
			if !admittedAny {
				break
			}
		}
	}
}

// admitFitsLocked is the admission budget gate. The static path compares
// against MaxInFlightTokens; the adaptive path compares against the AIMD
// limit, with an idle-scheduler escape so a request wider than a collapsed
// limit still starts once nothing else is running (liveness).
func (s *Scheduler) admitFitsLocked(mass int64) bool {
	if !s.cfg.Adaptive {
		return s.inflight+mass <= s.cfg.MaxInFlightTokens
	}
	if s.inflight == 0 {
		return true
	}
	return s.inflight+mass <= int64(s.limit)
}

// decodeEntry is one branch taking part in this wave's decode step.
type decodeEntry struct {
	st     *reqState
	branch int
}

// waveExec is the executor work one wave produced.
type waveExec struct {
	prefill []prefillJob
	decode  []decodeJob
}

type prefillJob struct {
	st    *reqState
	chunk int
	g     nn.Graph
}

type decodeJob struct {
	entries []decodeEntry
	g       nn.Graph
}

// buildDecodeLocked forms the decode wave: every running branch with
// prefill complete and tokens left, bucketed by page-padded KV length so
// one graph's members share a shape without padding past the page boundary.
func (s *Scheduler) buildDecodeLocked() []decodeJob {
	var decode []decodeJob
	q := s.cfg.DecodeBucket
	if pt := s.kv.Config().TokensPerPage; q < pt {
		q = pt
	}
	buckets := make(map[int][]decodeEntry)
	var lens []int
	for _, st := range s.running {
		if !st.prefillDone() {
			continue
		}
		for b := range st.seqs {
			if st.decoded[b] >= st.req.Decode {
				continue
			}
			kvLen := st.seqs[b].Len()
			padded := (kvLen + q - 1) / q * q
			s.stats.PaddedKVTokens += int64(padded - kvLen)
			s.stats.PaddedKVBytes += int64(padded-kvLen) * s.kv.Config().BytesPerToken
			if _, ok := buckets[padded]; !ok {
				lens = append(lens, padded)
			}
			buckets[padded] = append(buckets[padded], decodeEntry{st, b})
		}
	}
	sort.Ints(lens)
	for _, kv := range lens {
		group := buckets[kv]
		for len(group) > 0 {
			n := len(group)
			if n > s.cfg.MaxDecodeBatch {
				n = s.cfg.MaxDecodeBatch
			}
			decode = append(decode, decodeJob{
				entries: group[:n],
				g:       nn.Llama2Decode(n, kv),
			})
			group = group[n:]
		}
	}
	return decode
}

// starvedWaves is the starvation-guard bound: a request whose prefill went
// ungranted this many consecutive waves is owed a chunk regardless of
// decode slack or higher-priority contention.
const starvedWaves = 4

// buildPrefillLocked carves prefill chunks under a token budget: starved
// requests first (most-deferred first, so the per-request guard bound
// holds even when multiple prefills compete), then priority classes in
// order, then the running set's admission order, each request contributing
// at most one chunk per wave. Requests whose prefill got nothing this wave
// age their deferral counter; granted ones reset it.
func (s *Scheduler) buildPrefillLocked(budget int) []prefillJob {
	var prefill []prefillJob
	if budget > s.cfg.PrefillChunk {
		budget = s.cfg.PrefillChunk
	}
	if s.chunkCap > 0 && budget > s.chunkCap {
		budget = s.chunkCap
	}
	s.chunk = budget
	granted := make(map[*reqState]bool)
	grant := func(st *reqState) {
		n := st.need - st.filled
		if n > budget {
			n = budget
		}
		prefill = append(prefill, prefillJob{
			st: st, chunk: n, g: nn.Llama2Prefill(1, n),
		})
		budget -= n
		granted[st] = true
	}
	// Starved requests jump the priority order, most-deferred first
	// (admission order breaks ties deterministically).
	if budget > 0 {
		var starved []*reqState
		for _, st := range s.running {
			if !st.done && !st.prefillDone() && st.deferred >= starvedWaves {
				starved = append(starved, st)
			}
		}
		sort.SliceStable(starved, func(i, j int) bool { return starved[i].deferred > starved[j].deferred })
		for _, st := range starved {
			if budget <= 0 {
				break
			}
			grant(st)
		}
	}
	for p := 0; p < NumPriorities && budget > 0; p++ {
		for _, st := range s.running {
			if budget <= 0 {
				break
			}
			if st.done || st.req.Priority != p || st.prefillDone() || granted[st] {
				continue
			}
			grant(st)
		}
	}
	for _, st := range s.running {
		if st.done || st.prefillDone() {
			continue
		}
		if granted[st] {
			st.deferred = 0
			continue
		}
		st.deferred++
		if int64(st.deferred) > s.stats.MaxDeferredWaves {
			s.stats.MaxDeferredWaves = int64(st.deferred)
		}
	}
	return prefill
}

// prefillBudgetLocked sizes this wave's prefill token budget from the
// *measured* decode cycles of the same wave: the chunk fits exactly into
// the slack the decode-step SLO bound leaves, at the running cycles-per-
// token estimate. With no decode in flight or with separated pools the
// budget is the full configured chunk. When decode alone consumes the
// bound, prefill defers — but never more than starvedWaves in a row for
// any single request (per-request starvation guard: once the most-starved
// request has waited out the bound, the wave grants one page regardless).
func (s *Scheduler) prefillBudgetLocked(decodeActive bool, decodeCycles float64) int {
	if !decodeActive || s.cfg.SeparatePools {
		return s.cfg.PrefillChunk
	}
	pageTokens := s.kv.Config().TokensPerPage
	if s.cyclesPerTk <= 0 {
		// No cost estimate yet: seed it with one conservative page.
		return pageTokens
	}
	slack := s.stepBound - decodeCycles
	fit := int(slack / s.cyclesPerTk)
	fit -= fit % pageTokens // page-granular chunks bound the shape vocabulary
	if fit < pageTokens {
		if s.guardCooldown > 0 {
			s.guardCooldown--
			return 0
		}
		for _, st := range s.running {
			if !st.done && !st.prefillDone() && st.deferred >= starvedWaves {
				// Starvation guard: bounded overshoot, paced to at most
				// one guard page per starvedWaves+1 waves so sustained
				// contention cannot turn every wave into an SLO
				// violation. buildPrefillLocked hands the page to the
				// most-starved request, so per-request deferral stays
				// bounded by the guard cadence times the prefill queue
				// length.
				s.guardCooldown = starvedWaves
				return pageTokens
			}
		}
		return 0 // defer; decode already fills the bound
	}
	return fit
}

// runWave executes one full wave. Decode runs first so the prefill chunk
// can be sized to the slack the SLO bound leaves after the wave's actual
// decode cycles; the executor is always called outside the scheduler lock
// so an online executor (real devices) never blocks Submit or Stats. It
// returns the cycles the wave consumed and whether it did any work.
func (s *Scheduler) runWave(ctx context.Context) (float64, bool) {
	s.mu.Lock()
	s.shedLateLocked()
	s.admitLocked()
	s.preemptForPressureLocked()
	decode := s.buildDecodeLocked()
	s.mu.Unlock()

	var prefillCycles, decodeCycles float64
	decodeErr := make([]error, len(decode))
	for i, job := range decode {
		c, err := s.exec.ExecGraph(ctx, job.g, PoolDecode)
		decodeErr[i] = err
		if err == nil {
			decodeCycles += c
		}
	}

	s.mu.Lock()
	budget := s.prefillBudgetLocked(len(decode) > 0, decodeCycles)
	prefill := s.buildPrefillLocked(budget)
	s.mu.Unlock()

	prefillErr := make([]error, len(prefill))
	for i, job := range prefill {
		c, err := s.exec.ExecGraph(ctx, job.g, PoolPrefill)
		prefillErr[i] = err
		if err == nil {
			prefillCycles += c
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(prefill) == 0 && len(decode) == 0 {
		return 0, false
	}
	w := waveExec{prefill: prefill, decode: decode}
	return s.applyWaveLocked(w, prefillCycles, decodeCycles, prefillErr, decodeErr), true
}

// applyWaveLocked folds execution results back into scheduler state and
// returns the wave's cycle cost.
func (s *Scheduler) applyWaveLocked(w waveExec, prefillCycles, decodeCycles float64, prefillErr, decodeErr []error) float64 {
	s.stats.Waves++

	// Prefill progression (and failures).
	for i, job := range w.prefill {
		if job.st.done {
			continue // already finished via a failure path
		}
		if err := prefillErr[i]; err != nil {
			s.finishLocked(job.st, fmt.Errorf("prefill: %w", err))
			continue
		}
		job.st.filled += job.chunk
		s.stats.PrefillChunks++
		s.stats.PrefillTokens += int64(job.chunk)
		if job.st.prefillDone() {
			s.forkLocked(job.st)
		}
	}
	// Requests admitted with a fully reused prompt never see a prefill
	// job; fork them as soon as they are running.
	for _, st := range s.running {
		if st.prefillDone() && len(st.decoded) < cap(st.decoded) {
			s.forkLocked(st)
		}
	}

	// Update the prefill cost model.
	var prefTokens int
	for i, job := range w.prefill {
		if prefillErr[i] == nil {
			prefTokens += job.chunk
		}
	}
	if prefTokens > 0 && prefillCycles > 0 {
		per := prefillCycles / float64(prefTokens)
		if s.cyclesPerTk == 0 {
			s.cyclesPerTk = per
		} else {
			s.cyclesPerTk = 0.7*s.cyclesPerTk + 0.3*per
		}
	}

	// Charge COW page-copy bandwidth to the decode side (appends cause it).
	kvStats := s.kv.Stats()
	copied := kvStats.CopiedBytes - s.lastCopy
	s.lastCopy = kvStats.CopiedBytes
	copyCycles := sim.TransferCycles(s.cfg.HW, float64(copied))
	decodeCycles += copyCycles
	s.stats.CopyCycles += copyCycles

	// Wave timing: with separated pools prefill overlaps decode and the
	// decode step only pays its own cycles; sharing one pool serializes.
	var wave, stepLatency float64
	if s.cfg.SeparatePools {
		wave = decodeCycles
		if prefillCycles > wave {
			wave = prefillCycles
		}
		stepLatency = decodeCycles
	} else {
		wave = prefillCycles + decodeCycles
		stepLatency = wave
	}
	s.stats.PrefillCycles += prefillCycles
	s.stats.DecodeCycles += decodeCycles
	s.clock += wave
	now := s.clock

	// Decode progression: append one token per surviving branch.
	decodedAny := false
	for i, job := range w.decode {
		if err := decodeErr[i]; err != nil {
			for _, e := range job.entries {
				if !e.st.done {
					s.finishLocked(e.st, fmt.Errorf("decode: %w", err))
				}
			}
			continue
		}
		decodedAny = true
		for _, e := range job.entries {
			st := e.st
			if st.done || st.parked || e.branch >= len(st.seqs) {
				continue // request already failed or was preempted this wave
			}
			seq := st.seqs[e.branch]
			tok := nextToken(s.kv.Digest(seq), e.branch)
			if err := s.appendWithPreemptLocked(st, seq, tok); err != nil {
				s.finishLocked(st, fmt.Errorf("kv append: %w", err))
				continue
			}
			if st.parked {
				continue // preempted itself under KV pressure; restored later
			}
			if s.cfg.PreemptKV {
				st.gen[e.branch] = append(st.gen[e.branch], tok)
			}
			st.decoded[e.branch]++
			s.stats.DecodeSteps++
			if st.firstTok < 0 {
				st.firstTok = now
				s.ttfts.add(now - st.arrival)
			}
			if stepLatency > st.maxStep {
				st.maxStep = stepLatency
			}
			if stepLatency > s.stepBound {
				st.sloBad = true
			}
		}
	}
	if decodedAny {
		s.steps.add(stepLatency)
		if stepLatency > s.stepBound {
			s.stats.StepViolations++
		}
		s.adaptLimitLocked(stepLatency)
	}

	// Completions. Collect first: finishLocked edits s.running in place,
	// so finishing while ranging over it would skip or repeat entries.
	var finished []*reqState
	for _, st := range s.running {
		if st.prefillDone() && st.decodeDone() {
			finished = append(finished, st)
		}
	}
	for _, st := range finished {
		s.finishLocked(st, nil)
	}
	return wave
}

// nextToken derives the branch's next generated token from its KV digest,
// so decode output depends on every KV word the branch can see — the
// bitwise sharing-on/off equality rides on this.
func nextToken(digest uint64, branch int) int32 {
	x := digest ^ uint64(branch+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 29
	return int32(x % 32000)
}

// forkLocked creates the request's remaining sampling branches once prefill
// completes. Forked branches share every page until their first divergent
// append triggers COW.
func (s *Scheduler) forkLocked(st *reqState) {
	for len(st.decoded) < cap(st.decoded) {
		st.seqs = append(st.seqs, s.kv.Fork(st.seqs[0]))
		st.decoded = append(st.decoded, 0)
		if s.cfg.PreemptKV {
			st.gen = append(st.gen, append([]int32(nil), st.gen[0]...))
		}
	}
}

// finishLocked completes a request (err == nil) or fails it, releasing its
// KV pages either way — the crash-no-leak invariant.
func (s *Scheduler) finishLocked(st *reqState, err error) {
	if st.done {
		panic(fmt.Sprintf("sched: request %d finished twice", st.req.ID))
	}
	st.done = true
	for i := range s.running {
		if s.running[i] == st {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	var digest uint64
	decoded := 0
	reused := 0
	if len(st.seqs) > 0 {
		reused = st.seqs[0].Reused()
	}
	for b, seq := range st.seqs {
		digest ^= s.kv.Digest(seq) * uint64(2*b+1)
		s.kv.Release(seq)
		decoded += st.decoded[b]
	}
	st.seqs = nil
	s.inflight -= st.mass
	res := Result{
		ID:           st.req.ID,
		Tenant:       st.req.Tenant,
		Err:          err,
		ReusedTokens: reused,
		TTFTCycles:   st.firstTok - st.arrival,
		DecodeTokens: decoded,
		MaxStepCycle: st.maxStep,
		Digest:       digest,
		SLOGood:      err == nil && !st.sloBad && st.firstTok >= 0 && st.firstTok-st.arrival <= s.ttftBound,
	}
	if st.firstTok < 0 {
		res.TTFTCycles = 0
	}
	if err != nil {
		s.stats.Failed++
	} else {
		s.stats.Completed++
		if res.SLOGood {
			s.stats.SLOGood++
		}
	}
	if st.deliver != nil {
		st.deliver(res)
	} else {
		s.collected = append(s.collected, res)
	}
}

// pendingLocked reports whether any request is queued, running or parked.
func (s *Scheduler) pendingLocked() bool {
	if len(s.running) > 0 || len(s.parked) > 0 {
		return true
	}
	for _, q := range s.queues {
		for p := range q {
			if len(q[p]) > 0 {
				return true
			}
		}
	}
	return false
}

// quantiles keeps a deterministic bounded sample for latency quantiles.
// Past the cap it thins by keeping every other future observation — exact
// for replay-scale counts, stable and allocation-bounded online.
type quantiles struct {
	vals   []float64
	stride int64
	seen   int64
}

const quantileCap = 8192

func (r *quantiles) add(v float64) {
	if r.stride == 0 {
		r.stride = 1
	}
	if r.seen%r.stride == 0 {
		if len(r.vals) >= quantileCap {
			// Thin: drop every other retained sample, double the stride.
			kept := r.vals[:0]
			for i := 0; i < len(r.vals); i += 2 {
				kept = append(kept, r.vals[i])
			}
			r.vals = kept
			r.stride *= 2
		}
		r.vals = append(r.vals, v)
	}
	r.seen++
}

func (r *quantiles) quantile(q float64) float64 {
	if len(r.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.vals...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
