package sched

// Overload defenses: deadline shedding, KV-pressure preemption with a
// parked/restore queue, and the AIMD admission limiter. All three are
// opt-in via Config (ShedDeadlines, PreemptKV, Adaptive) so the default
// scheduling path stays bitwise-identical to the committed serve baseline.

import (
	"errors"
	"fmt"

	"mikpoly/internal/kvcache"
)

// shedLateLocked drops queued requests whose deadline has provably passed:
// time-to-first-token can never undercut the queue wait already incurred,
// so once clock − arrival exceeds the deadline budget the request is a
// guaranteed SLO miss and running it would only steal cycles from requests
// that can still make theirs. Sheds happen strictly before admission, so a
// shed request never touches the KV arena or the device.
func (s *Scheduler) shedLateLocked() {
	if !s.cfg.ShedDeadlines {
		return
	}
	for _, tn := range s.tenants {
		q := s.queues[tn]
		for p := range q {
			kept := q[p][:0]
			for _, st := range q[p] {
				deadline := st.req.DeadlineCycles
				if deadline <= 0 {
					deadline = s.ttftBound
				}
				if s.clock-st.arrival <= deadline {
					kept = append(kept, st)
					continue
				}
				st.done = true
				s.stats.Failed++
				s.stats.DeadlineSheds++
				s.eventLocked("shed-deadline", st.req.ID,
					fmt.Sprintf("waited %.0f of %.0f cycles", s.clock-st.arrival, deadline))
				res := Result{ID: st.req.ID, Tenant: st.req.Tenant, Err: ErrDeadline}
				if st.deliver != nil {
					st.deliver(res)
				} else {
					s.collected = append(s.collected, res)
				}
			}
			q[p] = kept
		}
	}
}

// availableFracLocked is the fraction of the KV arena still allocatable:
// free pages plus cached (refs == 0, evictable) pages over the arena size.
func (s *Scheduler) availableFracLocked() float64 {
	total := s.kv.Config().NumPages
	if total <= 0 {
		return 1
	}
	kst := s.kv.Stats()
	return float64(kst.FreePages+kst.CachedPages) / float64(total)
}

// leastImportantRunningLocked picks the preemption victim: lowest priority
// class first (numerically highest), then youngest arrival, then highest
// ID — fully deterministic. Returns nil when nothing is running.
func (s *Scheduler) leastImportantRunningLocked() *reqState {
	var v *reqState
	for _, st := range s.running {
		if st.done || st.parked {
			continue
		}
		if v == nil {
			v = st
			continue
		}
		switch {
		case st.req.Priority != v.req.Priority:
			if st.req.Priority > v.req.Priority {
				v = st
			}
		case st.arrival != v.arrival:
			if st.arrival > v.arrival {
				v = st
			}
		case st.req.ID > v.req.ID:
			v = st
		}
	}
	return v
}

// preemptLocked releases every page the request holds through the normal
// refcount machinery and parks it in the restore queue. The generated-token
// history (reqState.gen) is the complete restore recipe; nothing else about
// the request's identity changes, so TTFT, step maxima and SLO state carry
// across the park.
func (s *Scheduler) preemptLocked(st *reqState, detail string) {
	for _, seq := range st.seqs {
		s.kv.Release(seq)
	}
	st.seqs = nil
	st.parked = true
	for i := range s.running {
		if s.running[i] == st {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.inflight -= st.mass
	s.parked = append(s.parked, st)
	s.stats.Preemptions++
	s.eventLocked("preempt", st.req.ID, detail)
}

// preemptForPressureLocked is the proactive ladder rung: when allocatable
// pages fall under the low water mark, the least-important running
// requests park until the high water mark is restored. At least one
// request always keeps running so every wave makes progress (and a lone
// restored request can never ping-pong back out).
func (s *Scheduler) preemptForPressureLocked() {
	if !s.cfg.PreemptKV || s.availableFracLocked() >= s.cfg.KVLowWater {
		return
	}
	for len(s.running) > 1 && s.availableFracLocked() < s.cfg.KVHighWater {
		v := s.leastImportantRunningLocked()
		if v == nil {
			return
		}
		s.preemptLocked(v, "kv-pressure")
	}
}

// appendWithPreemptLocked appends one decode token, preempting the least-
// important running request on arena exhaustion and retrying. When the
// appending request is itself the least important, it parks instead (its
// own failed token is regenerated deterministically after restore). Without
// PreemptKV this is a plain append and exhaustion fails the request.
func (s *Scheduler) appendWithPreemptLocked(st *reqState, seq *kvcache.Sequence, tok int32) error {
	for {
		err := s.kv.Append(seq, tok)
		if err == nil || !s.cfg.PreemptKV || !errors.Is(err, kvcache.ErrNoPages) {
			return err
		}
		v := s.leastImportantRunningLocked()
		if v == nil {
			return err
		}
		if v == st {
			s.preemptLocked(st, "append-pressure")
			return nil
		}
		s.preemptLocked(v, "append-pressure")
	}
}

// restoreParkedLocked resumes parked requests in park order by rebuilding
// every branch as a fresh sequence over prompt ++ generated history. KV
// words and decode tokens are pure functions of (token, position), so the
// rebuilt state — and every token decoded after it — is bitwise-identical
// to uninterrupted execution; prefix-cache hits (booked as SavedBytes in
// the eviction ledger) make the rebuild cheap, and the non-reused remainder
// re-runs as ordinary chunked prefill (RecomputedBytes: the other side of
// the trade). Restores wait for the high water mark unless the scheduler is
// otherwise idle, mirroring the preemption hysteresis.
func (s *Scheduler) restoreParkedLocked() {
	for len(s.parked) > 0 {
		if len(s.running) > 0 && s.cfg.PreemptKV && s.availableFracLocked() < s.cfg.KVHighWater {
			return
		}
		st := s.parked[0]
		seqs := make([]*kvcache.Sequence, 0, len(st.decoded))
		need := 0
		reused := 0
		restored := true
		for b := range st.decoded {
			toks := st.req.Prompt
			if b < len(st.gen) && len(st.gen[b]) > 0 {
				toks = make([]int32, 0, len(st.req.Prompt)+len(st.gen[b]))
				toks = append(toks, st.req.Prompt...)
				toks = append(toks, st.gen[b]...)
			}
			seq, err := s.kv.NewSequence(st.req.Tenant, toks)
			if err != nil {
				restored = false
				break
			}
			seqs = append(seqs, seq)
			need += len(toks) - seq.Reused()
			reused += seq.Reused()
		}
		if !restored {
			for _, seq := range seqs {
				s.kv.Release(seq)
			}
			return // arena still too tight; retry next wave
		}
		s.parked = s.parked[1:]
		st.parked = false
		st.seqs = seqs
		st.need = need
		st.filled = 0
		s.running = append(s.running, st)
		s.inflight += st.mass
		s.stats.Restores++
		s.stats.ReusedTokens += int64(reused)
		s.eventLocked("restore", st.req.ID,
			fmt.Sprintf("recompute %d tokens, %d reused", need, reused))
	}
}

// adaptLimitLocked is the AIMD step, run once per decode wave: a step-SLO
// violation cuts the admitted-mass ceiling multiplicatively (proportional
// to the overshoot, at most halving), while a comfortably-fast wave grows
// it by one decode bucket — doubled when the EWMA queue wait exceeds half
// the TTFT bound, since a deep queue with fast steps means the limiter is
// the bottleneck, not the device.
func (s *Scheduler) adaptLimitLocked(stepLatency float64) {
	if !s.cfg.Adaptive {
		return
	}
	switch {
	case stepLatency > s.stepBound:
		f := s.stepBound / stepLatency
		if f < 0.5 {
			f = 0.5
		}
		s.limit *= f
		if s.limit < float64(s.cfg.AdaptiveMinTokens) {
			s.limit = float64(s.cfg.AdaptiveMinTokens)
		}
		s.eventLocked("limit-cut", 0, fmt.Sprintf("limit %.0f tokens", s.limit))
	case stepLatency <= 0.9*s.stepBound:
		add := float64(s.cfg.DecodeBucket)
		if s.queueWait > s.ttftBound/2 {
			add *= 2
		}
		s.limit += add
		if s.limit > float64(s.cfg.MaxInFlightTokens) {
			s.limit = float64(s.cfg.MaxInFlightTokens)
		}
	}
}
