package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/kvcache"
	"mikpoly/internal/nn"
	"mikpoly/internal/workload"
)

// fakeExec prices graphs with a deterministic analytic model parsed from
// the llama graph names: prefill costs per token, decode costs a base plus
// a KV-length term. Good enough to exercise every scheduling decision
// without tuning a kernel library.
type fakeExec struct {
	mu        sync.Mutex
	calls     []string
	perToken  float64
	decodeFix float64
	perKV     float64
	failWhen  func(g nn.Graph, pool string) error
}

func newFakeExec() *fakeExec {
	return &fakeExec{perToken: 2000, decodeFix: 40000, perKV: 50}
}

func (f *fakeExec) ExecGraph(_ context.Context, g nn.Graph, pool string) (float64, error) {
	f.mu.Lock()
	f.calls = append(f.calls, pool+":"+g.Name)
	fail := f.failWhen
	f.mu.Unlock()
	if fail != nil {
		if err := fail(g, pool); err != nil {
			return 0, err
		}
	}
	var b, s int
	if _, err := fmt.Sscanf(g.Name, "llama2-13b-prefill@b%d_s%d", &b, &s); err == nil {
		return float64(b*s) * f.perToken, nil
	}
	if _, err := fmt.Sscanf(g.Name, "llama2-13b-decode@b%d_kv%d", &b, &s); err == nil {
		return f.decodeFix + float64(s)*f.perKV, nil
	}
	return 0, fmt.Errorf("fakeExec: unknown graph %q", g.Name)
}

func testCfg() Config {
	return Config{
		HW:             hw.A100(),
		KV:             kvcache.Config{NumPages: 4096, TokensPerPage: 16},
		StepSLOMs:      0.2, // 282k cycles at 1.41 GHz
		TTFTSLOMs:      50,
		PrefillChunk:   256,
		MaxDecodeBatch: 8,
	}
}

func testTrace(seed uint64, n int) []workload.TraceRequest {
	return workload.GenerateTrace(workload.TraceConfig{
		Seed:           seed,
		Requests:       n,
		Tenants:        3,
		ArrivalsPerSec: 2000,
		ClockHz:        hw.A100().ClockHz,
		PromptMin:      32,
		PromptMax:      512,
		DecodeMin:      4,
		DecodeMax:      24,
	})
}

// Replaying the same trace twice must produce bit-identical reports.
func TestReplayDeterministic(t *testing.T) {
	run := func() Report {
		s := New(newFakeExec(), testCfg())
		rep, _, err := s.Replay(context.Background(), testTrace(7, 64))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Completed != 64 || a.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 64/0", a.Completed, a.Failed)
	}
	if a.LeakedPages != 0 {
		t.Fatalf("leaked %d pages", a.LeakedPages)
	}
}

// Decode digests must be bitwise-equal with prefix reuse on vs off, while
// reuse measurably cuts prefill work on a shared-prefix trace.
func TestReuseOnOffBitwiseEqualAndCheaper(t *testing.T) {
	trace := testTrace(11, 96)
	run := func(disable bool) Report {
		cfg := testCfg()
		cfg.KV.DisableSharing = disable
		s := New(newFakeExec(), cfg)
		rep, _, err := s.Replay(context.Background(), trace)
		if err != nil {
			t.Fatal(err)
		}
		if rep.LeakedPages != 0 {
			t.Fatalf("leaked %d pages (disable=%v)", rep.LeakedPages, disable)
		}
		return rep
	}
	on, off := run(false), run(true)
	if on.Completed != off.Completed || on.Completed != 96 {
		t.Fatalf("completed on=%d off=%d", on.Completed, off.Completed)
	}
	if on.DigestBits != off.DigestBits {
		t.Fatalf("decode digests differ: reuse-on %x, reuse-off %x", on.DigestBits, off.DigestBits)
	}
	if on.ReusedTokens == 0 {
		t.Fatal("shared-prefix trace produced zero reused tokens")
	}
	if on.PrefillCycles >= off.PrefillCycles {
		t.Fatalf("prefix reuse did not reduce prefill cycles: on=%g off=%g",
			on.PrefillCycles, off.PrefillCycles)
	}
}

// Chunked prefill: long prompts arriving during decode must not push the
// p99 decode-step latency past the SLO bound.
func TestChunkedPrefillBoundsStepLatency(t *testing.T) {
	cfg := testCfg()
	cfg.StepSLOMs = 0.6
	cfg.MaxInFlightTokens = 16384 // bound concurrency: decode can't eat the SLO alone
	s := New(newFakeExec(), cfg)
	trace := workload.GenerateTrace(workload.TraceConfig{
		Seed: 3, Requests: 48, Tenants: 2,
		ArrivalsPerSec: 5000, ClockHz: cfg.HW.ClockHz,
		PromptMin: 512, PromptMax: 4096, // long prompts
		DecodeMin: 16, DecodeMax: 64,
		GroupsPerTenant: -1, // no shared prefixes: maximum prefill pressure
	})
	rep, _, err := s.Replay(context.Background(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if rep.P99StepMs > cfg.StepSLOMs {
		t.Fatalf("p99 decode step %.3fms exceeds SLO bound %.3fms", rep.P99StepMs, cfg.StepSLOMs)
	}
	st := s.Stats()
	if st.PrefillChunks <= int64(rep.Completed) {
		t.Fatalf("prompts were not chunked: %d chunks for %d requests", st.PrefillChunks, rep.Completed)
	}
}

// With separated pools prefill overlaps decode entirely: the decode step
// never pays prefill cycles, so its latency can only improve on the
// shared-pool schedule of the same trace.
func TestSeparatePoolsDecodeUnaffected(t *testing.T) {
	trace := workload.GenerateTrace(workload.TraceConfig{
		Seed: 5, Requests: 32, Tenants: 2,
		ArrivalsPerSec: 5000, ClockHz: hw.A100().ClockHz,
		PromptMin: 256, PromptMax: 2048,
		DecodeMin: 16, DecodeMax: 48,
		GroupsPerTenant: -1,
	})
	run := func(sep bool) (Report, *fakeExec) {
		cfg := testCfg()
		cfg.StepSLOMs = 0.6
		// Saturate the same bounded running set in both modes so decode
		// wave sizes match and the only difference is prefill placement.
		cfg.MaxInFlightTokens = 8192
		cfg.SeparatePools = sep
		fe := newFakeExec()
		s := New(fe, cfg)
		rep, _, err := s.Replay(context.Background(), trace)
		if err != nil {
			t.Fatal(err)
		}
		return rep, fe
	}
	shared, _ := run(false)
	sep, fe := run(true)
	if sep.P99StepMs > shared.P99StepMs {
		t.Fatalf("separated pools made decode worse: p99 %.3fms vs shared %.3fms",
			sep.P99StepMs, shared.P99StepMs)
	}
	if sep.Completed != shared.Completed {
		t.Fatalf("completed diverged: sep=%d shared=%d", sep.Completed, shared.Completed)
	}
	// The executor must have seen both pool labels.
	var sawPrefill, sawDecode bool
	for _, c := range fe.calls {
		if strings.HasPrefix(c, PoolPrefill+":") {
			sawPrefill = true
		}
		if strings.HasPrefix(c, PoolDecode+":") {
			sawDecode = true
		}
	}
	if !sawPrefill || !sawDecode {
		t.Fatalf("pools not labeled: prefill=%v decode=%v", sawPrefill, sawDecode)
	}
}

// Fanout requests fork after prefill and diverge through COW; the KV books
// must record the copies and still balance to zero on drain.
func TestFanoutForksAndCOW(t *testing.T) {
	s := New(newFakeExec(), testCfg())
	trace := workload.GenerateTrace(workload.TraceConfig{
		Seed: 9, Requests: 24, Tenants: 2,
		ArrivalsPerSec: 1000, ClockHz: hw.A100().ClockHz,
		PromptMin: 40, PromptMax: 200, DecodeMin: 8, DecodeMax: 16,
		FanoutEvery: 2,
	})
	rep, results, err := s.Replay(context.Background(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KV.COWCopies == 0 {
		t.Fatal("fanout trace triggered no COW copies")
	}
	if rep.CopyCycles <= 0 {
		t.Fatal("COW bandwidth was not charged")
	}
	var fanned bool
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d failed: %v", i, res.Err)
		}
		if tr := trace[res.ID]; tr.Fanout > 1 {
			fanned = true
			if res.DecodeTokens != tr.DecodeTokens*tr.Fanout {
				t.Fatalf("fanout request decoded %d tokens, want %d",
					res.DecodeTokens, tr.DecodeTokens*tr.Fanout)
			}
		}
	}
	if !fanned {
		t.Fatal("trace had no fanout requests")
	}
	if err := s.KV().Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// An executor crash mid-decode must fail only the affected requests,
// release their pages, and leave the queue moving for everyone else.
func TestExecutorCrashNoLeakNoStrandedQueue(t *testing.T) {
	fe := newFakeExec()
	calls := 0
	fe.failWhen = func(g nn.Graph, pool string) error {
		calls++
		if pool == PoolDecode && calls%17 == 0 {
			return errors.New("device crashed mid-decode")
		}
		return nil
	}
	s := New(fe, testCfg())
	rep, results, err := s.Replay(context.Background(), testTrace(13, 48))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("crash schedule failed nothing")
	}
	if rep.Completed == 0 {
		t.Fatal("crashes stranded the whole queue")
	}
	if rep.Completed+rep.Failed != 48 {
		t.Fatalf("completed+failed = %d, want 48", rep.Completed+rep.Failed)
	}
	if rep.LeakedPages != 0 {
		t.Fatalf("crash leaked %d KV pages", rep.LeakedPages)
	}
	if err := s.KV().Quiescent(); err != nil {
		t.Fatal(err)
	}
	_ = results
}

// Token-budget admission: a request that can never fit is rejected fast;
// fitting requests from other tenants keep flowing around a heavy one.
func TestTokenBudgetAdmission(t *testing.T) {
	cfg := testCfg()
	cfg.MaxInFlightTokens = 600
	s := New(newFakeExec(), cfg)
	l := NewLoop(s)
	defer l.Close()

	if res := <-l.Submit(Request{ID: 1, Tenant: "big", Prompt: make([]int32, 700), Decode: 8}); !errors.Is(res.Err, ErrRejected) {
		t.Fatalf("oversized request err = %v, want ErrRejected", res.Err)
	}
	var chans []<-chan Result
	for i := 0; i < 6; i++ {
		chans = append(chans, l.Submit(Request{
			ID: uint64(10 + i), Tenant: fmt.Sprintf("t%d", i%2),
			Prompt: make([]int32, 200), Decode: 4,
		}))
	}
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
	}
	if err := s.KV().Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// Priority classes: under a budget that admits one request at a time, the
// urgent request always finishes first even when submitted last.
func TestPriorityOrdering(t *testing.T) {
	cfg := testCfg()
	cfg.KV.NumPages = 8
	cfg.KV.TokensPerPage = 16
	cfg.MaxInFlightTokens = 1 << 40 // KV arena is the bottleneck
	fe := newFakeExec()
	s := New(fe, cfg)

	trace := []workload.TraceRequest{
		{ArrivalCycle: 0, Tenant: "t", Priority: 2, PromptLen: 96, DecodeTokens: 4, Fanout: 1, PromptSeed: 101},
		{ArrivalCycle: 0, Tenant: "t", Priority: 2, PromptLen: 96, DecodeTokens: 4, Fanout: 1, PromptSeed: 102},
		{ArrivalCycle: 0, Tenant: "t", Priority: 0, PromptLen: 96, DecodeTokens: 4, Fanout: 1, PromptSeed: 103},
	}
	_, results, err := s.Replay(context.Background(), trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// Completion order: the priority-0 request (ID 2) must finish first.
	if results[0].ID != 2 {
		t.Fatalf("first completion was request %d, want the priority-0 request (2)", results[0].ID)
	}
}

// Online loop under -race: concurrent submits from several tenants all
// complete and the KV books balance.
func TestLoopConcurrentSubmits(t *testing.T) {
	s := New(newFakeExec(), testCfg())
	l := NewLoop(s)
	defer l.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				prompt := make([]int32, 64+w*16+i)
				for j := range prompt {
					prompt[j] = int32((w*1000 + i*100 + j) % 32000)
				}
				res := <-l.Submit(Request{
					ID: uint64(w*100 + i), Tenant: fmt.Sprintf("t%d", w),
					Priority: w % NumPriorities, Prompt: prompt, Decode: 4,
				})
				if res.Err != nil {
					errs <- fmt.Errorf("w%d/%d: %w", w, i, res.Err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.KV().Quiescent(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed != 40 {
		t.Fatalf("completed %d, want 40", st.Completed)
	}
}
