package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mikpoly/internal/engine"
	"mikpoly/internal/hw"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

func testHW() hw.Hardware { return hw.A100() }

func TestLRUCacheNeverExceedsCapacity(t *testing.T) {
	lib, err := SharedLibrary(testHW(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompilerFromLibrary(lib, WithCacheCapacity(4))
	for i := 0; i < 10; i++ {
		if _, err := c.Plan(tensor.GemmShape{M: 16 + i, N: 16, K: 16}); err != nil {
			t.Fatal(err)
		}
		if st := c.CacheStats(); st.Size > st.Capacity {
			t.Fatalf("cache size %d exceeds capacity %d", st.Size, st.Capacity)
		}
	}
	st := c.CacheStats()
	if st.Capacity != 4 || st.Size != 4 {
		t.Fatalf("stats = %+v, want capacity 4, size 4", st)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions)
	}

	// The first shape was evicted: re-planning it must invoke the planner
	// again.
	before, _ := c.PlanStats()
	if _, err := c.Plan(tensor.GemmShape{M: 16, N: 16, K: 16}); err != nil {
		t.Fatal(err)
	}
	if after, _ := c.PlanStats(); after != before+1 {
		t.Fatalf("evicted shape did not re-plan: planCount %d -> %d", before, after)
	}

	// The most recent shape is still cached: no new plan.
	before, _ = c.PlanStats()
	if _, err := c.Plan(tensor.GemmShape{M: 25, N: 16, K: 16}); err != nil {
		t.Fatal(err)
	}
	if after, _ := c.PlanStats(); after != before {
		t.Fatal("cached shape re-planned")
	}
}

func TestLRURecencyOrder(t *testing.T) {
	l := newLRU(2)
	pa, pb, pc := &poly.Program{}, &poly.Program{}, &poly.Program{}
	sa := tensor.GemmShape{M: 1, N: 1, K: 1}
	sb := tensor.GemmShape{M: 2, N: 2, K: 2}
	sc := tensor.GemmShape{M: 3, N: 3, K: 3}
	ka := cacheKey{shape: sa}
	kb := cacheKey{shape: sb}
	kc := cacheKey{shape: sc}
	l.add(ka, pa)
	l.add(kb, pb)
	if _, ok := l.get(ka); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	l.add(kc, pc) // evicts b
	if _, ok := l.get(kb); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := l.get(ka); !ok {
		t.Fatal("a should have survived")
	}
	if got := l.stats(); got.Evictions != 1 || got.Size != 2 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestSingleflightDedupsConcurrentPlans(t *testing.T) {
	lib, err := SharedLibrary(testHW(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompilerFromLibrary(lib)

	var invocations atomic.Int32
	gate := make(chan struct{})
	real := c.planFn
	c.planFn = func(ctx context.Context, s tensor.GemmShape, fp string) (*poly.Program, poly.PlanStats, error) {
		invocations.Add(1)
		<-gate
		return real(ctx, s, fp)
	}

	shape := tensor.GemmShape{M: 123, N: 45, K: 67}
	const n = 16
	var wg sync.WaitGroup
	progs := make([]*poly.Program, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Plan(shape)
			if err != nil {
				t.Error(err)
			}
			progs[i] = p
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let every goroutine reach the flight
	close(gate)
	wg.Wait()

	if got := invocations.Load(); got != 1 {
		t.Fatalf("planner invoked %d times for one shape, want 1", got)
	}
	if n, _ := c.PlanStats(); n != 1 {
		t.Fatalf("planCount = %d, want 1", n)
	}
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent callers received different programs")
		}
	}
}

func TestPlanContextDeadlineAndWaiterRetry(t *testing.T) {
	c := newTestCompiler(t)

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.PlanContext(expired, tensor.GemmShape{M: 64, N: 64, K: 64}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ctx: got %v", err)
	}

	// A waiter whose own context is alive must retry as leader when the
	// first leader dies of its deadline.
	var invocations atomic.Int32
	leaderIn := make(chan struct{})
	real := c.planFn
	c.planFn = func(ctx context.Context, s tensor.GemmShape, fp string) (*poly.Program, poly.PlanStats, error) {
		if invocations.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done() // simulate a search outliving the leader's deadline
			return nil, poly.PlanStats{}, ctx.Err()
		}
		return real(ctx, s, fp)
	}
	shape := tensor.GemmShape{M: 99, N: 88, K: 77}
	leaderCtx, leaderCancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		_, err := c.PlanContext(leaderCtx, shape)
		done <- err
	}()
	<-leaderIn
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.PlanContext(context.Background(), shape)
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // waiter parks on the in-flight call
	leaderCancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader: got %v", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter should have retried and planned: %v", err)
	}
	if got := invocations.Load(); got != 2 {
		t.Fatalf("planner invoked %d times, want 2 (failed leader + retrying waiter)", got)
	}
}

func TestPanicIsolation(t *testing.T) {
	c := newTestCompiler(t)
	c.planFn = func(ctx context.Context, s tensor.GemmShape, fp string) (*poly.Program, poly.PlanStats, error) {
		panic("cost model exploded")
	}
	_, err := c.Plan(tensor.GemmShape{M: 10, N: 10, K: 10})
	if err == nil || !strings.Contains(err.Error(), "planner panic") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	if h := c.Health(); h.PlannerPanics != 1 {
		t.Fatalf("PlannerPanics = %d, want 1", h.PlannerPanics)
	}
}

func TestPlanOrFallbackDegradesGracefully(t *testing.T) {
	c := newTestCompiler(t)

	// Healthy path: no degradation.
	prog, degraded, err := c.PlanOrFallback(context.Background(), tensor.GemmShape{M: 100, N: 100, K: 100})
	if err != nil || degraded || prog == nil {
		t.Fatalf("healthy path: prog=%v degraded=%v err=%v", prog, degraded, err)
	}

	// Expired deadline: fallback program, still numerically correct.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	shape := tensor.GemmShape{M: 33, N: 21, K: 17}
	fb, degraded, err := c.PlanOrFallback(expired, shape)
	if err != nil || !degraded {
		t.Fatalf("deadline path: degraded=%v err=%v", degraded, err)
	}
	if err := fb.Validate(); err != nil {
		t.Fatalf("fallback invalid: %v", err)
	}
	a := tensor.RandomMatrix(shape.M, shape.K, 5)
	b := tensor.RandomMatrix(shape.K, shape.N, 6)
	got, err := engine.Execute(fb, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, tensor.Gemm(a, b), 1e-3) {
		t.Fatal("fallback program numerically wrong")
	}
	if h := c.Health(); h.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", h.Fallbacks)
	}

	// Panicking planner: fallback too.
	c.planFn = func(ctx context.Context, s tensor.GemmShape, fp string) (*poly.Program, poly.PlanStats, error) {
		panic("boom")
	}
	if _, degraded, err := c.PlanOrFallback(context.Background(), tensor.GemmShape{M: 5, N: 5, K: 5}); err != nil || !degraded {
		t.Fatalf("panic path: degraded=%v err=%v", degraded, err)
	}

	// Invalid shapes still error — degradation never hides bad input.
	if _, _, err := c.PlanOrFallback(context.Background(), tensor.GemmShape{M: -1, N: 1, K: 1}); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestInvalidateForcesReplan(t *testing.T) {
	c := newTestCompiler(t)
	shape := tensor.GemmShape{M: 40, N: 40, K: 40}
	if _, err := c.Plan(shape); err != nil {
		t.Fatal(err)
	}
	before, _ := c.PlanStats()
	c.Invalidate(shape)
	if _, err := c.Plan(shape); err != nil {
		t.Fatal(err)
	}
	if after, _ := c.PlanStats(); after != before+1 {
		t.Fatalf("Invalidate did not force a re-plan: %d -> %d", before, after)
	}
}

// TestConcurrencyHammer exercises Plan, PlanOrFallback, ClearCache,
// Invalidate, PlanStats, CacheStats and Health from many goroutines over a
// deliberately tiny cache, so the LRU and singleflight paths race against
// cache mutation. Run with -race (the CI gate does).
func TestConcurrencyHammer(t *testing.T) {
	lib, err := SharedLibrary(testHW(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompilerFromLibrary(lib, WithCacheCapacity(3))

	const (
		workers = 12
		iters   = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				shape := tensor.GemmShape{M: 16 + (w+i)%6, N: 24, K: 32}
				switch (w + i) % 5 {
				case 0:
					if _, err := c.Plan(shape); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, err := c.PlanOrFallback(context.Background(), shape); err != nil {
						t.Error(err)
						return
					}
				case 2:
					c.ClearCache()
					c.Invalidate(shape)
				case 3:
					c.PlanStats()
					c.Health()
				default:
					if st := c.CacheStats(); st.Size > st.Capacity {
						t.Errorf("cache size %d exceeds capacity %d", st.Size, st.Capacity)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.CacheStats(); st.Size > st.Capacity {
		t.Fatalf("final cache size %d exceeds capacity %d", st.Size, st.Capacity)
	}
}
