package core

import (
	"context"
	"errors"
	"fmt"

	"mikpoly/internal/plancache"
	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// This file is the Compiler's side of the persistent plan-cache tier: export
// the live program cache as a plancache.Snapshot, warm-start from one, swap
// the kernel library without poisoning cached programs, and pre-plan the
// shapes the traffic tracker reports as hot.

// LibraryHash returns the content digest of the compiler's kernel library —
// the component of every cache key that invalidates programs across library
// swaps. Empty when the library cannot be serialized (snapshotting disabled).
func (c *Compiler) LibraryHash() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.libHash
}

// SetLibrary swaps the offline kernel library (e.g. after a retune or a
// reload from disk). The base planner is rebuilt against the new library,
// preserving its search configuration; per-fingerprint degraded planners are
// dropped (they are derived state and rebuild on demand). Cached programs
// are NOT cleared: their keys carry the old library's hash, so they can
// never be served against the new kernels — and swapping back to the
// original library rehits them.
func (c *Compiler) SetLibrary(lib *tune.Library) {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := c.planners[""]
	p := poly.NewPlanner(lib)
	p.Patterns = base.Patterns
	p.Cost = base.Cost
	p.DisablePruning = base.DisablePruning
	p.EnableSplitK = base.EnableSplitK
	p.Workers = base.Workers
	p.Trace = base.Trace
	c.lib = lib
	c.libHash = lib.Hash()
	c.planner = p
	c.planners = map[string]*poly.Planner{"": p}
}

// ExportSnapshot captures every cached program planned from the current
// library as a shareable snapshot. Entries planned from a previously swapped
// library are skipped — a snapshot never mixes library generations.
func (c *Compiler) ExportSnapshot() (*plancache.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.libHash == "" {
		return nil, errors.New("core: library has no content hash; plan-cache snapshots disabled")
	}
	snap := plancache.New(c.libHash, c.lib.HW.Name)
	c.cache.each(func(key cacheKey, prog *poly.Program) {
		if key.lib != c.libHash {
			return
		}
		snap.Entries = append(snap.Entries, plancache.Entry{
			FP:       key.fp,
			Program:  prog,
			CostBits: plancache.CostBits(prog),
		})
	})
	return snap, nil
}

// ImportSnapshot warm-starts the program cache from a snapshot, returning
// how many entries were loaded. The snapshot is validated against the
// compiler's library hash and hardware first; any mismatch — retuned
// library, different planner generation, corrupted entries — rejects the
// whole snapshot (counted in PlanCache().ImportRejects) and leaves the cache
// untouched, so the replica falls back to online planning. Entries already
// cached keep their live program and recency.
func (c *Compiler) ImportSnapshot(snap *plancache.Snapshot) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := snap.Validate(c.libHash, c.lib.HW.Name); err != nil {
		c.importRejects++
		return 0, fmt.Errorf("core: rejecting plan snapshot: %w", err)
	}
	n := 0
	for _, e := range snap.Entries {
		key := cacheKey{shape: e.Program.Shape, lib: c.libHash, fp: e.FP}
		if c.cache.peek(key) {
			continue
		}
		c.cache.add(key, e.Program)
		n++
	}
	c.imported += int64(n)
	return n, nil
}

// HotShapes returns up to n shapes ordered by decayed request count, hottest
// first — the traffic-shaped working set worth pre-planning or snapshotting.
func (c *Compiler) HotShapes(n int) []tensor.GemmShape {
	return c.tracker.Hot(n)
}

// PrePlanHot plans (in the caller's goroutine) up to limit of the tracker's
// hottest shapes that are not yet cached under the current health view,
// returning how many plans were performed. Errors on individual shapes do
// not stop the sweep; the first one is returned. The serving layer's
// snapshot flusher runs this before each flush so the persisted hot set is
// complete.
func (c *Compiler) PrePlanHot(ctx context.Context, limit int) (int, error) {
	v, fp := c.currentView()
	planned := 0
	var firstErr error
	for _, s := range c.tracker.Hot(limit) {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		if c.Cached(s, fp) {
			continue
		}
		if _, err := c.planForView(ctx, s, v, fp); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		planned++
	}
	c.mu.Lock()
	c.prePlans += int64(planned)
	c.mu.Unlock()
	return planned, firstErr
}

// PlanCacheStats reports the plan-cache tier's counters. JSON tags match the
// serving layer's /stats wire format.
type PlanCacheStats struct {
	// LibraryHash is the digest keying every cached program ("" =
	// snapshotting disabled).
	LibraryHash string `json:"library_hash"`
	// Imported counts entries warm-loaded from snapshots; ImportRejects
	// counts whole snapshots rejected as incompatible or invalid.
	Imported      int64 `json:"imported"`
	ImportRejects int64 `json:"import_rejects"`
	// PrePlans counts background plans of tracker-hot shapes.
	PrePlans int64 `json:"preplans"`
	// TrackedShapes is the number of distinct shapes with non-zero decayed
	// weight; Observations the lifetime request count feeding the tracker.
	TrackedShapes int    `json:"tracked_shapes"`
	Observations  uint64 `json:"observations"`
}

// PlanCache returns the plan-cache tier counters.
func (c *Compiler) PlanCache() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		LibraryHash:   c.libHash,
		Imported:      c.imported,
		ImportRejects: c.importRejects,
		PrePlans:      c.prePlans,
		TrackedShapes: c.tracker.Len(),
		Observations:  c.tracker.Total(),
	}
}
