package core

import (
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func fullCompiler(t *testing.T) *Compiler {
	t.Helper()
	lib, err := SharedLibrary(hw.A100(), tune.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return NewCompilerFromLibrary(lib)
}

func TestConvAlgoString(t *testing.T) {
	if AlgoIm2col.String() != "im2col" || AlgoWinograd.String() != "winograd" {
		t.Fatal("algo names wrong")
	}
	if ConvAlgo(7).String() != "ConvAlgo(7)" {
		t.Fatal("unknown algo formatting wrong")
	}
}

func TestPlanConvInvalidShape(t *testing.T) {
	c := fullCompiler(t)
	if _, err := c.PlanConv(tensor.ConvShape{}); err == nil {
		t.Fatal("invalid shape accepted")
	}
}

func TestPlanConvIm2colOnlyForStride2(t *testing.T) {
	c := fullCompiler(t)
	cs := tensor.ConvShape{Batch: 2, InC: 64, InH: 56, InW: 56, OutC: 64, KH: 3, KW: 3, Stride: 2, Pad: 1}
	plan, err := c.PlanConv(cs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algo != AlgoIm2col {
		t.Fatalf("stride-2 must use im2col, got %v", plan.Algo)
	}
	if plan.WinogradCycles != 0 {
		t.Fatal("inapplicable winograd must report zero candidate cost")
	}
	if plan.SimCycles() != plan.Im2colCycles {
		t.Fatal("SimCycles must return the chosen path's cost")
	}
}

func TestPlanConvPicksWinogradOnChannelHeavyLayers(t *testing.T) {
	c := fullCompiler(t)
	cs := tensor.ConvShape{Batch: 8, InC: 512, InH: 28, InW: 28, OutC: 512, KH: 3, KW: 3, Stride: 1, Pad: 1}
	plan, err := c.PlanConv(cs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.WinogradCycles <= 0 {
		t.Fatal("winograd candidate not evaluated")
	}
	if plan.Algo != AlgoWinograd {
		t.Fatalf("channel-heavy stride-1 3x3 should pick winograd (im2col %.0f vs winograd %.0f)",
			plan.Im2colCycles, plan.WinogradCycles)
	}
	if plan.SimCycles() != plan.WinogradCycles {
		t.Fatal("SimCycles must return the winograd cost")
	}
}

func TestPlanConvPicksIm2colOnSmallChannels(t *testing.T) {
	c := fullCompiler(t)
	cs := tensor.ConvShape{Batch: 1, InC: 4, InH: 32, InW: 32, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	plan, err := c.PlanConv(cs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algo != AlgoIm2col {
		t.Fatalf("small-channel conv should pick im2col, got %v", plan.Algo)
	}
}

func TestConvAutoNumericBothPaths(t *testing.T) {
	c := fullCompiler(t)
	cases := []tensor.ConvShape{
		// Small channels → im2col path.
		{Batch: 1, InC: 4, InH: 12, InW: 12, OutC: 6, KH: 3, KW: 3, Stride: 1, Pad: 1},
		// Channel-heavy → winograd path (small spatial dims keep it fast).
		{Batch: 1, InC: 96, InH: 8, InW: 8, OutC: 96, KH: 3, KW: 3, Stride: 1, Pad: 1},
	}
	seenAlgos := map[ConvAlgo]bool{}
	for _, cs := range cases {
		in := tensor.RandomTensor4(cs.Batch, cs.InC, cs.InH, cs.InW, 51)
		w := tensor.RandomTensor4(cs.OutC, cs.InC, cs.KH, cs.KW, 52)
		got, algo, err := c.ConvAuto(in, w, cs)
		if err != nil {
			t.Fatalf("%v: %v", cs, err)
		}
		seenAlgos[algo] = true
		want := tensor.ConvRef(in, w, cs)
		if d := tensor.Tensor4MaxAbsDiff(got, want); d > 1e-2 {
			t.Fatalf("%v (%v): differs from direct conv by %g", cs, algo, d)
		}
	}
	if len(seenAlgos) < 1 {
		t.Fatal("no algorithms exercised")
	}
}

func TestGroupedConvEndToEnd(t *testing.T) {
	c := fullCompiler(t)
	gs := tensor.GroupedConvShape{
		Conv:   tensor.ConvShape{Batch: 2, InC: 8, InH: 9, InW: 9, OutC: 12, KH: 3, KW: 3, Stride: 1, Pad: 1},
		Groups: 4,
	}
	in := tensor.RandomTensor4(2, 8, 9, 9, 81)
	w := tensor.RandomTensor4(12, 2, 3, 3, 82)
	got, err := c.GroupedConv(in, w, gs)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.GroupedConvRef(in, w, gs)
	if d := tensor.Tensor4MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("grouped conv differs from reference by %g", d)
	}
	plan, err := c.PlanGroupedConv(gs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cycles <= 0 {
		t.Fatal("no simulated cost")
	}
	if _, err := c.PlanGroupedConv(tensor.GroupedConvShape{}); err == nil {
		t.Fatal("invalid grouped shape accepted")
	}
}

// Batched launch: groups co-schedule, so G groups cost far less than G
// sequential launches when each group underfills the device.
func TestGroupedConvBatchingEfficiency(t *testing.T) {
	c := fullCompiler(t)
	gs := tensor.GroupedConvShape{
		Conv:   tensor.ConvShape{Batch: 1, InC: 256, InH: 14, InW: 14, OutC: 256, KH: 3, KW: 3, Stride: 1, Pad: 1},
		Groups: 32,
	}
	plan, err := c.PlanGroupedConv(gs)
	if err != nil {
		t.Fatal(err)
	}
	perGroup := plan.Program.Simulate(c.Hardware()).Cycles
	sequential := perGroup * float64(gs.Groups)
	if plan.Cycles > sequential*0.8 {
		t.Fatalf("batched launch (%g) barely beats sequential (%g)", plan.Cycles, sequential)
	}
}
