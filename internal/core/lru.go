package core

import (
	"container/list"

	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// DefaultCacheCapacity bounds the program cache when no explicit capacity is
// configured. Cached programs are small (a handful of regions), but a
// serving process sees an unbounded stream of distinct runtime shapes, so
// the cache must be bounded to hold memory steady under adversarial or
// long-tailed traffic.
const DefaultCacheCapacity = 1024

// CacheStats reports the program cache's bound and cumulative behaviour.
// JSON tags match the snake_case wire format of the serving layer's /stats.
type CacheStats struct {
	// Capacity is the configured bound; Size is the current entry count
	// (Size <= Capacity always holds).
	Capacity int `json:"capacity"`
	Size     int `json:"size"`
	// Hits, Misses and Evictions are cumulative since compiler creation;
	// ClearCache resets Size but not the counters.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Degraded is the number of cached programs planned against a
	// non-healthy hardware view (fingerprint != ""). Healthy and degraded
	// plans for the same shape are distinct entries — the cache never
	// serves one health mode a program planned for another.
	Degraded int `json:"degraded"`
}

// cacheKey identifies a cached program: the runtime shape, the content hash
// of the kernel library it was planned from, and the health fingerprint of
// the hardware view it was planned against ("" = pristine). Keying on all
// three is what prevents cache poisoning: a program polymerized for 107 live
// PEs must never be served once PE 31 is quarantined (and the healthy plan
// must come back verbatim once the view recovers), and a program planned
// from a retuned or reloaded library must never be served against the old
// one's kernels — shapes alone cannot distinguish two libraries whose
// micro-kernel models disagree.
type cacheKey struct {
	shape tensor.GemmShape
	lib   string
	fp    string
}

// lruEntry is one cached program keyed by (shape, library hash, health
// fingerprint).
type lruEntry struct {
	key  cacheKey
	prog *poly.Program
}

// lruCache is a bounded least-recently-used program cache. It is not
// goroutine-safe; the Compiler serializes access under its mutex.
type lruCache struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[cacheKey]*list.Element

	hits, misses, evictions int64
	degraded                int
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = DefaultCacheCapacity
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached program for key and refreshes its recency.
func (c *lruCache) get(key cacheKey) (*poly.Program, bool) {
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).prog, true
}

// peek reports whether key is cached without touching recency or counters.
func (c *lruCache) peek(key cacheKey) bool {
	_, ok := c.items[key]
	return ok
}

// add inserts (or refreshes) a program, evicting the least recently used
// entry when the bound is exceeded.
func (c *lruCache) add(key cacheKey, prog *poly.Program) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).prog = prog
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, prog: prog})
	if key.fp != "" {
		c.degraded++
	}
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		k := oldest.Value.(*lruEntry).key
		delete(c.items, k)
		if k.fp != "" {
			c.degraded--
		}
		c.evictions++
	}
}

// remove drops one key if present.
func (c *lruCache) remove(key cacheKey) {
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
		if key.fp != "" {
			c.degraded--
		}
	}
}

// removeShape drops the shape's entries under every health fingerprint — an
// execution-fault invalidation must not leave a stale plan behind in any
// health mode.
func (c *lruCache) removeShape(shape tensor.GemmShape) {
	for key, el := range c.items {
		if key.shape == shape {
			c.ll.Remove(el)
			delete(c.items, key)
			if key.fp != "" {
				c.degraded--
			}
		}
	}
}

// each calls fn for every cached entry in most-recently-used order. Used by
// snapshot export; does not touch recency or counters.
func (c *lruCache) each(fn func(key cacheKey, prog *poly.Program)) {
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		fn(e.key, e.prog)
	}
}

// shapesMRU returns up to limit distinct shapes in most-recently-used order
// — the working set worth replanning proactively when the health view
// changes.
func (c *lruCache) shapesMRU(limit int) []tensor.GemmShape {
	seen := make(map[tensor.GemmShape]bool)
	var out []tensor.GemmShape
	for el := c.ll.Front(); el != nil && len(out) < limit; el = el.Next() {
		s := el.Value.(*lruEntry).key.shape
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// clear drops every entry, keeping the cumulative counters.
func (c *lruCache) clear() {
	c.ll.Init()
	c.items = make(map[cacheKey]*list.Element, c.capacity)
	c.degraded = 0
}

func (c *lruCache) len() int { return c.ll.Len() }

func (c *lruCache) stats() CacheStats {
	return CacheStats{
		Capacity:  c.capacity,
		Size:      c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Degraded:  c.degraded,
	}
}
