package core

import (
	"container/list"

	"mikpoly/internal/poly"
	"mikpoly/internal/tensor"
)

// DefaultCacheCapacity bounds the program cache when no explicit capacity is
// configured. Cached programs are small (a handful of regions), but a
// serving process sees an unbounded stream of distinct runtime shapes, so
// the cache must be bounded to hold memory steady under adversarial or
// long-tailed traffic.
const DefaultCacheCapacity = 1024

// CacheStats reports the program cache's bound and cumulative behaviour.
// JSON tags match the snake_case wire format of the serving layer's /stats.
type CacheStats struct {
	// Capacity is the configured bound; Size is the current entry count
	// (Size <= Capacity always holds).
	Capacity int `json:"capacity"`
	Size     int `json:"size"`
	// Hits, Misses and Evictions are cumulative since compiler creation;
	// ClearCache resets Size but not the counters.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// lruEntry is one cached program keyed by its shape.
type lruEntry struct {
	shape tensor.GemmShape
	prog  *poly.Program
}

// lruCache is a bounded least-recently-used program cache. It is not
// goroutine-safe; the Compiler serializes access under its mutex.
type lruCache struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[tensor.GemmShape]*list.Element

	hits, misses, evictions int64
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = DefaultCacheCapacity
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[tensor.GemmShape]*list.Element, capacity),
	}
}

// get returns the cached program for shape and refreshes its recency.
func (c *lruCache) get(shape tensor.GemmShape) (*poly.Program, bool) {
	el, ok := c.items[shape]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).prog, true
}

// add inserts (or refreshes) a program, evicting the least recently used
// entry when the bound is exceeded.
func (c *lruCache) add(shape tensor.GemmShape, prog *poly.Program) {
	if el, ok := c.items[shape]; ok {
		el.Value.(*lruEntry).prog = prog
		c.ll.MoveToFront(el)
		return
	}
	c.items[shape] = c.ll.PushFront(&lruEntry{shape: shape, prog: prog})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).shape)
		c.evictions++
	}
}

// remove drops one shape if present.
func (c *lruCache) remove(shape tensor.GemmShape) {
	if el, ok := c.items[shape]; ok {
		c.ll.Remove(el)
		delete(c.items, shape)
	}
}

// clear drops every entry, keeping the cumulative counters.
func (c *lruCache) clear() {
	c.ll.Init()
	c.items = make(map[tensor.GemmShape]*list.Element, c.capacity)
}

func (c *lruCache) len() int { return c.ll.Len() }

func (c *lruCache) stats() CacheStats {
	return CacheStats{
		Capacity:  c.capacity,
		Size:      c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
