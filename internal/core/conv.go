package core

import (
	"fmt"

	"mikpoly/internal/engine"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/winograd"
)

// ConvAlgo identifies a convolution lowering.
type ConvAlgo int

const (
	// AlgoIm2col is the implicit-GEMM path the paper evaluates (§5.1).
	AlgoIm2col ConvAlgo = iota
	// AlgoWinograd is the F(2×2, 3×3) fast-convolution path (§7).
	AlgoWinograd
)

func (a ConvAlgo) String() string {
	switch a {
	case AlgoIm2col:
		return "im2col"
	case AlgoWinograd:
		return "winograd"
	default:
		return fmt.Sprintf("ConvAlgo(%d)", int(a))
	}
}

// ConvPlan is a compiled convolution: the chosen algorithm, its polymerized
// GEMM program, and the predicted cost of both candidates.
type ConvPlan struct {
	Shape tensor.ConvShape
	Algo  ConvAlgo
	// Program is the polymerized GEMM program of the chosen path (the
	// single implicit GEMM, or the batched per-transform-point GEMM).
	Program *poly.Program
	// Im2colCycles and WinogradCycles are the simulated costs of each
	// candidate (WinogradCycles is +Inf when inapplicable).
	Im2colCycles   float64
	WinogradCycles float64

	lowering winograd.Lowering
}

// PlanConv selects the faster convolution algorithm for the runtime shape —
// the dispatch role cuDNN's heuristics play, here driven by the simulated
// cost of each MikPoly-planned candidate.
func (c *Compiler) PlanConv(cs tensor.ConvShape) (*ConvPlan, error) {
	if !cs.Valid() {
		return nil, fmt.Errorf("core: invalid conv shape %v", cs)
	}
	h := c.lib.HW

	im2colProg, err := c.Plan(cs.GemmShape())
	if err != nil {
		return nil, err
	}
	plan := &ConvPlan{
		Shape:          cs,
		Algo:           AlgoIm2col,
		Program:        im2colProg,
		Im2colCycles:   im2colProg.Simulate(h).Cycles,
		WinogradCycles: 0,
	}

	if winograd.Applicable(cs) {
		low, err := winograd.Lower(cs, h.InputBytes)
		if err != nil {
			return nil, err
		}
		wProg, err := c.Plan(low.Gemm)
		if err != nil {
			return nil, err
		}
		single := wProg.Tasks(h)
		batched := make([]sim.Task, 0, len(single)*low.Count)
		for i := 0; i < low.Count; i++ {
			batched = append(batched, single...)
		}
		plan.WinogradCycles = sim.Run(h, batched).Cycles + low.TransformBytes/h.GlobalBytesPerCycle
		if plan.WinogradCycles < plan.Im2colCycles {
			plan.Algo = AlgoWinograd
			plan.Program = wProg
			plan.lowering = low
		}
	}
	return plan, nil
}

// SimCycles returns the chosen path's simulated cost.
func (p *ConvPlan) SimCycles() float64 {
	if p.Algo == AlgoWinograd {
		return p.WinogradCycles
	}
	return p.Im2colCycles
}

// GroupedConvPlan is a compiled grouped convolution: one polymerized
// per-group GEMM launched Groups times as a batch.
type GroupedConvPlan struct {
	Shape   tensor.GroupedConvShape
	Program *poly.Program
	// Cycles is the simulated cost of the batched launch.
	Cycles float64
}

// PlanGroupedConv plans a grouped convolution: the per-group implicit GEMM
// is polymerized once and its tasks replicate across groups in a single
// batched launch (groups are independent, so their grids co-schedule).
func (c *Compiler) PlanGroupedConv(gs tensor.GroupedConvShape) (*GroupedConvPlan, error) {
	if !gs.Valid() {
		return nil, fmt.Errorf("core: invalid grouped conv shape %v", gs)
	}
	prog, err := c.Plan(gs.GroupGemmShape())
	if err != nil {
		return nil, err
	}
	h := c.lib.HW
	single := prog.Tasks(h)
	batched := make([]sim.Task, 0, len(single)*gs.Groups)
	for i := 0; i < gs.Groups; i++ {
		batched = append(batched, single...)
	}
	return &GroupedConvPlan{
		Shape:   gs,
		Program: prog,
		Cycles:  sim.Run(h, batched).Cycles,
	}, nil
}

// GroupedConv plans and executes a grouped convolution numerically. Filters
// are OutC × (InC/Groups) × KH × KW.
func (c *Compiler) GroupedConv(in, filters *tensor.Tensor4, gs tensor.GroupedConvShape) (*tensor.Tensor4, error) {
	plan, err := c.PlanGroupedConv(gs)
	if err != nil {
		return nil, err
	}
	s := gs.Conv
	oh, ow := s.OutDims()
	out := tensor.NewTensor4(s.Batch, s.OutC, oh, ow)
	groupShape := gs.GroupShape()
	for g := 0; g < gs.Groups; g++ {
		gi := tensor.ExtractGroup(in, gs, g)
		gw := tensor.ExtractGroupFilters(filters, gs, g)
		gout, err := engine.ExecuteConv(plan.Program, gi, gw, groupShape)
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", g, err)
		}
		tensor.MergeGroupOutput(out, gout, gs, g)
	}
	return out, nil
}

// ConvAuto plans with algorithm selection and executes the chosen path
// numerically.
func (c *Compiler) ConvAuto(in, filters *tensor.Tensor4, cs tensor.ConvShape) (*tensor.Tensor4, ConvAlgo, error) {
	plan, err := c.PlanConv(cs)
	if err != nil {
		return nil, 0, err
	}
	switch plan.Algo {
	case AlgoWinograd:
		out, err := winograd.Conv(in, filters, cs)
		return out, plan.Algo, err
	default:
		out, err := engine.ExecuteConv(plan.Program, in, filters, cs)
		return out, plan.Algo, err
	}
}
