package core

import (
	"sync"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func testOpts() tune.Options {
	return tune.Options{NGen: 6, NSyn: 9, NMik: 10, NPred: 256}
}

func newTestCompiler(t *testing.T) *Compiler {
	t.Helper()
	lib, err := SharedLibrary(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	return NewCompilerFromLibrary(lib)
}

func TestNewCompiler(t *testing.T) {
	c, err := NewCompiler(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "MikPoly" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Hardware().Name != "nvidia-a100" {
		t.Fatalf("Hardware = %q", c.Hardware().Name)
	}
	if len(c.Library().Kernels) == 0 {
		t.Fatal("empty library")
	}
}

func TestNewCompilerPropagatesErrors(t *testing.T) {
	if _, err := NewCompiler(hw.A100(), tune.Options{}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestPlanCaching(t *testing.T) {
	c := newTestCompiler(t)
	s := tensor.GemmShape{M: 100, N: 200, K: 300}
	p1, err := c.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second Plan must return the cached program")
	}
	if n, _ := c.PlanStats(); n != 1 {
		t.Fatalf("planCount = %d, want 1 (cache hit must not replan)", n)
	}
	c.ClearCache()
	p3, err := c.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("ClearCache did not drop the program")
	}
}

func TestPlanStatsAccumulate(t *testing.T) {
	c := newTestCompiler(t)
	shapes := []tensor.GemmShape{{M: 10, N: 10, K: 10}, {M: 20, N: 20, K: 20}}
	for _, s := range shapes {
		if _, err := c.Plan(s); err != nil {
			t.Fatal(err)
		}
	}
	n, stats := c.PlanStats()
	if n != 2 {
		t.Fatalf("planCount = %d", n)
	}
	if stats.Candidates < 2 || stats.Elapsed <= 0 {
		t.Fatalf("stats not accumulated: %+v", stats)
	}
}

func TestGEMMEndToEnd(t *testing.T) {
	c := newTestCompiler(t)
	a := tensor.RandomMatrix(123, 77, 1)
	b := tensor.RandomMatrix(77, 45, 2)
	got, err := c.GEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, tensor.Gemm(a, b), 1e-3) {
		t.Fatal("compiler GEMM differs from reference")
	}
	if _, err := c.GEMM(a, tensor.NewMatrix(76, 10)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestConvEndToEnd(t *testing.T) {
	c := newTestCompiler(t)
	cs := tensor.ConvShape{Batch: 1, InC: 4, InH: 9, InW: 9, OutC: 6, KH: 3, KW: 3, Stride: 2, Pad: 1}
	in := tensor.RandomTensor4(cs.Batch, cs.InC, cs.InH, cs.InW, 3)
	w := tensor.RandomTensor4(cs.OutC, cs.InC, cs.KH, cs.KW, 4)
	got, err := c.Conv(in, w, cs)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.ConvRef(in, w, cs)
	if d := tensor.Tensor4MaxAbsDiff(got, want); d > 1e-3 {
		t.Fatalf("conv differs by %g", d)
	}
	if _, err := c.Conv(in, w, tensor.ConvShape{}); err == nil {
		t.Fatal("invalid conv shape accepted")
	}
}

func TestSimulate(t *testing.T) {
	c := newTestCompiler(t)
	res, err := c.Simulate(tensor.GemmShape{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.NumTasks <= 0 {
		t.Fatalf("implausible simulation %+v", res)
	}
}

func TestSharedLibraryReuse(t *testing.T) {
	l1, err := SharedLibrary(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := SharedLibrary(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Fatal("SharedLibrary must return the cached instance")
	}
	other := testOpts()
	other.NMik = 5
	l3, err := SharedLibrary(hw.A100(), other)
	if err != nil {
		t.Fatal(err)
	}
	if l3 == l1 {
		t.Fatal("different options must not share a library")
	}
}

func TestPlanConcurrentSafety(t *testing.T) {
	c := newTestCompiler(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := tensor.GemmShape{M: 64 + i%4, N: 64, K: 64}
			if _, err := c.Plan(s); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}

func TestPlanUncachedReportsModeledOverhead(t *testing.T) {
	c := newTestCompiler(t)
	_, st, err := c.PlanUncached(tensor.GemmShape{M: 1000, N: 1000, K: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates < 1 {
		t.Fatal("no candidates reported")
	}
	want := float64(st.Candidates) * 10 // poly.OnlineCostPerCandidate
	if got := st.ModeledOverheadCycles(); got != want {
		t.Fatalf("ModeledOverheadCycles = %g, want %g", got, want)
	}
}

func TestSimulateInvalidShape(t *testing.T) {
	c := newTestCompiler(t)
	if _, err := c.Simulate(tensor.GemmShape{}); err == nil {
		t.Fatal("invalid shape accepted")
	}
}
