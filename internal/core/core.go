// Package core assembles MikPoly's two stages into the compiler described in
// §3.5 / Fig. 4: an offline micro-kernel library (S1) plus the on-the-fly
// polymerization planner (S2), fronted by a bounded program cache so that a
// shape seen twice pays the (already microsecond-scale) online cost once —
// the deployment shape of the paper's end-to-end experiments, where the same
// operator shapes recur across model layers.
//
// The compiler is hardened for serving: the per-shape cache is a bounded LRU
// (memory stays flat under unbounded shape streams), concurrent requests for
// the same uncached shape are deduplicated into one planner invocation
// (singleflight), planning accepts a context for deadlines/cancellation,
// planner panics are isolated into errors, and PlanOrFallback degrades to
// the always-legal single-kernel program instead of failing a request.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mikpoly/internal/engine"
	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/obs"
	"mikpoly/internal/plancache"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// Compiler is the MikPoly dynamic-shape tensor compiler.
type Compiler struct {
	lib     *tune.Library
	planner *poly.Planner

	// libHash is the content digest of lib; every cache key carries it so
	// a retuned or reloaded library can never serve another library's
	// programs ("" disables snapshot sharing).
	libHash string

	// tracker maintains decayed per-shape request counts; its hot set
	// drives background pre-planning and snapshot flushes.
	tracker *plancache.Tracker

	// planFn is the planner invocation; a seam tests use to inject slow or
	// panicking planners. fp is the health fingerprint of the hardware
	// view the plan targets ("" = pristine H).
	planFn func(ctx context.Context, shape tensor.GemmShape, fp string) (*poly.Program, poly.PlanStats, error)

	// hreg, when non-nil, supplies the degraded hardware view H' the
	// online stage plans against. Nil means the pristine H always.
	hreg *health.Registry

	mu       sync.Mutex
	cache    *lruCache
	inflight map[cacheKey]*planCall

	// planners maps health fingerprints to planners targeting the
	// corresponding H' (sharing the offline library's kernels and fitted
	// models); "" is the base planner. Bounded: distinct degraded views
	// are few in practice, but a pathological fault stream must not grow
	// this without bound.
	planners map[string]*poly.Planner

	// lastGen is the health-view generation the compiler last saw;
	// a change triggers background replanning of the hot working set.
	lastGen uint64

	// aggregate online-stage statistics (Fig. 12a accounting)
	planCount int
	planStats poly.PlanStats

	// robustness counters
	fallbacks     int64
	plannerPanics int64
	replans       int64
	degradedPlans int64

	// plan-cache tier counters
	imported      int64 // entries warm-loaded from snapshots
	importRejects int64 // snapshots rejected (incompatible or invalid)
	prePlans      int64 // background pre-plans of tracker-hot shapes

	// observability (nil-safe no-ops when WithObs was not given)
	o            *obs.Obs
	planLatency  *obs.Histogram
	planTotal    *obs.Counter
	planCandObs  *obs.Counter
	planPruneObs *obs.Counter
	fallbackObs  *obs.Counter
	panicObs     *obs.Counter
}

// planCall is one in-flight singleflight planning operation: the first
// caller for an uncached shape plans; later callers wait on done.
type planCall struct {
	done chan struct{}
	prog *poly.Program
	err  error
}

// Option configures a Compiler at construction.
type Option func(*Compiler)

// WithCacheCapacity bounds the program cache to n entries (default
// DefaultCacheCapacity). Values < 1 select the default.
func WithCacheCapacity(n int) Option {
	return func(c *Compiler) { c.cache = newLRU(n) }
}

// WithHealth attaches a health registry: every plan targets the registry's
// current degraded view H' instead of the pristine H, the program cache is
// keyed by (shape, view fingerprint), and a view change triggers background
// replanning of the hot shapes (see SetHealth).
func WithHealth(reg *health.Registry) Option {
	return func(c *Compiler) { c.hreg = reg }
}

// WithSnapshot warm-starts the program cache from a plan-cache snapshot: the
// replica serves the snapshot's shapes with zero online plans. An
// incompatible or invalid snapshot is rejected and counted (see PlanCache);
// construction still succeeds — a cold cache is always correct, merely
// slower.
func WithSnapshot(snap *plancache.Snapshot) Option {
	return func(c *Compiler) { _, _ = c.ImportSnapshot(snap) }
}

// WithPlannerWorkers sets the online search's candidate-evaluation
// parallelism (poly.Planner.Workers): n > 1 spreads (pattern, anchor) units
// across n goroutines with a deterministic merge, so the chosen program is
// identical to the sequential search. Worth it on NPU-style full pattern
// sets; the GPU's two-pattern search is usually too short to amortize the
// fan-out.
func WithPlannerWorkers(n int) Option {
	return func(c *Compiler) { c.planner.Workers = n }
}

// WithObs attaches an observability bundle: the planner records search spans
// through o's tracer, and the compiler feeds the planner-latency histogram
// and online-stage counters into o's registry. A nil o is a no-op, and all
// instruments degrade to no-ops when o's parts are nil, so instrumented code
// never branches on "is observability on".
func WithObs(o *obs.Obs) Option {
	return func(c *Compiler) {
		c.o = o
		c.planner.Trace = o.T()
		m := o.M()
		c.planLatency = m.Histogram("mik_plan_latency_seconds",
			"Online polymerization latency per leader (non-cached, non-coalesced) plan.", nil)
		c.planTotal = m.Counter("mik_plan_total", "Completed leader plans.")
		c.planCandObs = m.Counter("mik_plan_candidates_total", "Candidate programs fully costed by the online search.")
		c.planPruneObs = m.Counter("mik_plan_pruned_anchors_total", "Anchor kernels skipped by branch-and-bound.")
		c.fallbackObs = m.Counter("mik_plan_fallbacks_total", "Requests answered with the single-kernel graceful-degradation program.")
		c.panicObs = m.Counter("mik_plan_panics_total", "Planner panics converted into errors.")
	}
}

// NewCompiler runs the offline stage for hardware h and returns a ready
// compiler. Offline generation is the expensive step ("approximately 6 hours
// for GEMM on GPUs" in the paper; ~100 ms on the simulator substrate) and is
// reused for every shape thereafter.
func NewCompiler(h hw.Hardware, opt tune.Options, opts ...Option) (*Compiler, error) {
	lib, err := tune.Generate(h, opt)
	if err != nil {
		return nil, err
	}
	return NewCompilerFromLibrary(lib, opts...), nil
}

// NewCompilerFromLibrary wraps an existing offline library (for sharing one
// library across compiler variants).
func NewCompilerFromLibrary(lib *tune.Library, opts ...Option) *Compiler {
	c := &Compiler{
		lib:      lib,
		libHash:  lib.Hash(),
		tracker:  plancache.NewTracker(),
		planner:  poly.NewPlanner(lib),
		cache:    newLRU(DefaultCacheCapacity),
		inflight: make(map[cacheKey]*planCall),
		planners: make(map[string]*poly.Planner),
	}
	c.planners[""] = c.planner
	c.planFn = func(ctx context.Context, shape tensor.GemmShape, fp string) (*poly.Program, poly.PlanStats, error) {
		return c.plannerByFP(fp).PlanContext(ctx, shape)
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// SetHealth attaches (or replaces) the health registry after construction —
// the serving layer wires one registry across compiler, runtime and
// handlers. Passing nil restores pristine-only planning.
func (c *Compiler) SetHealth(reg *health.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hreg = reg
	c.lastGen = 0
}

// currentView snapshots the health view and its fingerprint ("" and the
// zero view when no registry is attached).
func (c *Compiler) currentView() (health.View, string) {
	if c.hreg == nil {
		return health.View{}, ""
	}
	v := c.hreg.View()
	return v, v.Fingerprint()
}

// plannersCap bounds the per-fingerprint planner map.
const plannersCap = 16

// plannerForView returns (building if needed) the planner targeting the
// view's degraded hardware. The degraded planner inherits the base
// planner's search configuration — cost model, pattern subset, pruning and
// tracing — and shares the offline library's kernels and models; only the
// hardware abstraction differs.
func (c *Compiler) plannerForView(v health.View, fp string) *poly.Planner {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.planners[fp]; ok {
		return p
	}
	if len(c.planners) >= plannersCap {
		// Degenerate fault churn: keep only the base planner. Dropping
		// degraded planners is safe — they are derived state.
		for k := range c.planners {
			if k != "" {
				delete(c.planners, k)
			}
		}
	}
	base := c.planners[""]
	p := poly.NewPlanner(c.lib.WithHardware(v.Apply(c.lib.HW)))
	p.Patterns = base.Patterns
	p.Cost = base.Cost
	p.DisablePruning = base.DisablePruning
	p.EnableSplitK = base.EnableSplitK
	p.Workers = base.Workers
	p.Trace = base.Trace
	c.planners[fp] = p
	return p
}

// plannerByFP resolves a fingerprint to an already-built planner, falling
// back to the base planner — the plan path materializes the planner via
// plannerForView before invoking planFn, so the fallback only triggers for
// injected planFn seams.
func (c *Compiler) plannerByFP(fp string) *poly.Planner {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.planners[fp]; ok {
		return p
	}
	return c.planners[""]
}

// Name implements the baseline.Planner interface for head-to-head reports.
func (c *Compiler) Name() string { return "MikPoly" }

// Hardware returns the target device abstraction.
func (c *Compiler) Hardware() hw.Hardware { return c.lib.HW }

// Library exposes the offline-stage output.
func (c *Compiler) Library() *tune.Library { return c.lib }

// Planner exposes the online planner for configuration (cost-model variant,
// pattern subset, pruning) before first use. Mutating it after programs are
// cached does not invalidate the cache; call ClearCache as needed.
func (c *Compiler) Planner() *poly.Planner { return c.planner }

// ClearCache drops all cached programs (cumulative cache counters persist).
func (c *Compiler) ClearCache() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache.clear()
}

// Invalidate drops the cached program for one shape — e.g. after an
// execution fault report — so the next request re-plans it. The shape is
// dropped under every health fingerprint.
func (c *Compiler) Invalidate(shape tensor.GemmShape) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache.removeShape(shape)
}

// Cached reports whether a program for (shape, health fingerprint) is
// currently cached, without affecting recency or hit/miss counters. The
// chaos harness uses it to assert healthy↔degraded cache isolation.
func (c *Compiler) Cached(shape tensor.GemmShape, fp string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cache.peek(cacheKey{shape: shape, lib: c.libHash, fp: fp})
}

// CacheStats reports the program cache bound and cumulative hit/miss/eviction
// counts.
func (c *Compiler) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cache.stats()
}

// HealthStats reports the robustness counters.
type HealthStats struct {
	// Fallbacks counts requests answered with the single-kernel
	// graceful-degradation program.
	Fallbacks int64
	// PlannerPanics counts planner panics converted into errors.
	PlannerPanics int64
	// Replans counts background replanning invocations triggered by
	// health-view changes.
	Replans int64
	// DegradedPlans counts leader plans performed against a non-pristine
	// hardware view.
	DegradedPlans int64
}

// Health returns the cumulative robustness counters.
func (c *Compiler) Health() HealthStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return HealthStats{
		Fallbacks:     c.fallbacks,
		PlannerPanics: c.plannerPanics,
		Replans:       c.replans,
		DegradedPlans: c.degradedPlans,
	}
}

// Plan returns the optimized program S* for a runtime shape, caching per
// shape. It never fails on a valid shape — MikPoly's arbitrary-shape
// guarantee.
func (c *Compiler) Plan(shape tensor.GemmShape) (*poly.Program, error) {
	return c.PlanContext(context.Background(), shape)
}

// PlanContext is Plan under a caller-supplied context: the online search is
// cancelled when ctx expires. Concurrent calls for the same uncached shape
// coalesce into a single planner invocation (singleflight); waiters whose
// own context outlives a leader that died of its context retry as the new
// leader. The plan targets the health registry's current degraded view (the
// pristine H without a registry), and the cache key carries the view's
// fingerprint so health transitions never serve a stale-mode program.
func (c *Compiler) PlanContext(ctx context.Context, shape tensor.GemmShape) (*poly.Program, error) {
	if shape.Valid() {
		c.tracker.Observe(shape)
	}
	v, fp := c.currentView()
	c.maybeReplanOnChange(v, fp)
	return c.planForView(ctx, shape, v, fp)
}

// planForView is the cached singleflight plan path against one pinned view.
func (c *Compiler) planForView(ctx context.Context, shape tensor.GemmShape, v health.View, fp string) (*poly.Program, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("core: invalid shape %v", shape)
	}
	for {
		c.mu.Lock()
		key := cacheKey{shape: shape, lib: c.libHash, fp: fp}
		if prog, ok := c.cache.get(key); ok {
			c.mu.Unlock()
			return prog, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
				if call.err == nil {
					return call.prog, nil
				}
				if isCtxErr(call.err) && ctx.Err() == nil {
					continue // leader's deadline, not ours: retry as leader
				}
				return nil, call.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		call := &planCall{done: make(chan struct{})}
		c.inflight[key] = call
		c.mu.Unlock()

		// Materialize the view's planner before planFn runs, so the
		// default planFn (and any injected seam that cares) can resolve
		// fp without re-deriving the view.
		c.plannerForView(v, fp)
		prog, stats, err := c.planIsolated(ctx, shape, fp)

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.cache.add(key, prog)
			c.planCount++
			c.planStats.Candidates += stats.Candidates
			c.planStats.PrunedAnchors += stats.PrunedAnchors
			c.planStats.Elapsed += stats.Elapsed
			if fp != "" {
				c.degradedPlans++
			}
		}
		c.mu.Unlock()

		call.prog, call.err = prog, err
		close(call.done)
		return prog, err
	}
}

// replanLimit bounds how many hot shapes a health-view change replans in the
// background; replanTimeout bounds each replan.
const (
	replanLimit   = 8
	replanTimeout = 2 * time.Second
)

// maybeReplanOnChange detects a health-view generation change and kicks off
// background replanning of the most recently used cached shapes against the
// new view. Requests arriving meanwhile are not blocked: they either hit the
// freshly planned (shape, fp) entries or plan on demand — and until a
// degraded plan lands, PlanOrFallback still answers with the always-legal
// program.
func (c *Compiler) maybeReplanOnChange(v health.View, fp string) {
	if c.hreg == nil {
		return
	}
	c.mu.Lock()
	if v.Generation == c.lastGen {
		c.mu.Unlock()
		return
	}
	c.lastGen = v.Generation
	shapes := c.cache.shapesMRU(replanLimit)
	c.mu.Unlock()
	if len(shapes) == 0 {
		return
	}
	go func() {
		for _, s := range shapes {
			ctx, cancel := context.WithTimeout(context.Background(), replanTimeout)
			_, err := c.planForView(ctx, s, v, fp)
			cancel()
			c.mu.Lock()
			if err == nil {
				c.replans++
			}
			c.mu.Unlock()
		}
	}()
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// planIsolated runs the planner with panic isolation: a panicking planner
// (corrupted library, cost-model bug) becomes an error the serving layer can
// degrade on, instead of killing the process.
func (c *Compiler) planIsolated(ctx context.Context, shape tensor.GemmShape, fp string) (prog *poly.Program, stats poly.PlanStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			c.mu.Lock()
			c.plannerPanics++
			c.mu.Unlock()
			c.panicObs.Inc()
			prog, err = nil, fmt.Errorf("core: planner panic for %v: %v", shape, r)
		}
	}()
	ctx, sp := c.o.T().Start(ctx, "core.plan")
	defer sp.End()
	prog, stats, err = c.planFn(ctx, shape, fp)
	if err == nil {
		c.planTotal.Inc()
		c.planLatency.Observe(stats.Elapsed.Seconds())
		c.planCandObs.Add(int64(stats.Candidates))
		c.planPruneObs.Add(int64(stats.PrunedAnchors))
	}
	return prog, stats, err
}

// PlanOrFallback returns the optimized program for shape, degrading to the
// always-legal single-kernel program (local padding makes it valid for every
// positive shape, §3.4) when planning fails, panics, or exceeds ctx's
// deadline. degraded reports whether the fallback path was taken. Fallback
// programs are not cached, so a later request retries full polymerization.
// Only an invalid shape or an unusable library yields an error.
func (c *Compiler) PlanOrFallback(ctx context.Context, shape tensor.GemmShape) (prog *poly.Program, degraded bool, err error) {
	if shape.Valid() {
		c.tracker.Observe(shape)
	}
	v, fp := c.currentView()
	c.maybeReplanOnChange(v, fp)
	prog, err = c.planForView(ctx, shape, v, fp)
	if err == nil {
		return prog, false, nil
	}
	if !shape.Valid() {
		return nil, false, err
	}
	// The fallback is built against the same view the failed plan
	// targeted: single-kernel legality is shape-local, and its wave count
	// should price the hardware that will actually run it.
	fb, ferr := poly.FallbackProgram(c.plannerForView(v, fp).Lib, shape)
	if ferr != nil {
		return nil, false, errors.Join(err, ferr)
	}
	c.mu.Lock()
	c.fallbacks++
	c.mu.Unlock()
	c.fallbackObs.Inc()
	return fb, true, nil
}

// PlanUncached runs the online stage without consulting or filling the
// cache, returning its statistics — used to measure polymerization overhead.
func (c *Compiler) PlanUncached(shape tensor.GemmShape) (*poly.Program, poly.PlanStats, error) {
	return c.PlanUncachedContext(context.Background(), shape)
}

// PlanUncachedContext is PlanUncached under a caller-supplied context, with
// the same panic isolation as the cached path. It always targets the
// pristine H — overhead measurements want the paper's configuration.
func (c *Compiler) PlanUncachedContext(ctx context.Context, shape tensor.GemmShape) (*poly.Program, poly.PlanStats, error) {
	return c.planIsolated(ctx, shape, "")
}

// PlanStats returns the number of online plans performed and their summed
// search statistics.
func (c *Compiler) PlanStats() (int, poly.PlanStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planCount, c.planStats
}

// GEMM plans (or reuses) a program for the operand shapes and executes it
// numerically: C = A × B.
func (c *Compiler) GEMM(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	return c.GEMMContext(context.Background(), a, b)
}

// GEMMContext is GEMM under a caller-supplied context bounding the planning
// stage.
func (c *Compiler) GEMMContext(ctx context.Context, a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("core: GEMM dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	prog, err := c.PlanContext(ctx, tensor.GemmShape{M: a.Rows, N: b.Cols, K: a.Cols})
	if err != nil {
		return nil, err
	}
	return engine.Execute(prog, a, b)
}

// GEMMFused plans (or reuses) a program and executes it with a fused
// epilogue (bias and/or activation applied during output write-back) — the
// numeric counterpart of the graph-level fusion pass.
func (c *Compiler) GEMMFused(a, b *tensor.Matrix, ep engine.Epilogue) (*tensor.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("core: GEMM dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	prog, err := c.Plan(tensor.GemmShape{M: a.Rows, N: b.Cols, K: a.Cols})
	if err != nil {
		return nil, err
	}
	return engine.ExecuteFused(prog, a, b, ep)
}

// Conv plans and executes a convolution through the implicit-GEMM path.
func (c *Compiler) Conv(in, filters *tensor.Tensor4, shape tensor.ConvShape) (*tensor.Tensor4, error) {
	return c.ConvContext(context.Background(), in, filters, shape)
}

// ConvContext is Conv under a caller-supplied context bounding the planning
// stage.
func (c *Compiler) ConvContext(ctx context.Context, in, filters *tensor.Tensor4, shape tensor.ConvShape) (*tensor.Tensor4, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("core: invalid conv shape %v", shape)
	}
	prog, err := c.PlanContext(ctx, shape.GemmShape())
	if err != nil {
		return nil, err
	}
	return engine.ExecuteConv(prog, in, filters, shape)
}

// Simulate plans a shape and returns its simulated execution on the target —
// the substrate's stand-in for a wall-clock measurement.
func (c *Compiler) Simulate(shape tensor.GemmShape) (sim.Result, error) {
	prog, err := c.Plan(shape)
	if err != nil {
		return sim.Result{}, err
	}
	return prog.Simulate(c.lib.HW), nil
}

// sharedLibs caches offline libraries per (hardware, options) so tests,
// benchmarks and examples pay the offline stage once per process.
var (
	sharedMu   sync.Mutex
	sharedLibs = map[string]*tune.Library{}
)

// SharedLibrary returns a process-wide cached offline library.
func SharedLibrary(h hw.Hardware, opt tune.Options) (*tune.Library, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", h.Name, opt.NGen, opt.NSyn, opt.NMik, opt.NPred)
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if lib, ok := sharedLibs[key]; ok {
		return lib, nil
	}
	lib, err := tune.Generate(h, opt)
	if err != nil {
		return nil, err
	}
	sharedLibs[key] = lib
	return lib, nil
}
