// Package core assembles MikPoly's two stages into the compiler described in
// §3.5 / Fig. 4: an offline micro-kernel library (S1) plus the on-the-fly
// polymerization planner (S2), fronted by a program cache so that a shape
// seen twice pays the (already microsecond-scale) online cost once — the
// deployment shape of the paper's end-to-end experiments, where the same
// operator shapes recur across model layers.
package core

import (
	"fmt"
	"sync"

	"mikpoly/internal/engine"
	"mikpoly/internal/hw"
	"mikpoly/internal/poly"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

// Compiler is the MikPoly dynamic-shape tensor compiler.
type Compiler struct {
	lib     *tune.Library
	planner *poly.Planner

	mu    sync.Mutex
	cache map[tensor.GemmShape]*poly.Program

	// aggregate online-stage statistics (Fig. 12a accounting)
	planCount int
	planStats poly.PlanStats
}

// NewCompiler runs the offline stage for hardware h and returns a ready
// compiler. Offline generation is the expensive step ("approximately 6 hours
// for GEMM on GPUs" in the paper; ~100 ms on the simulator substrate) and is
// reused for every shape thereafter.
func NewCompiler(h hw.Hardware, opt tune.Options) (*Compiler, error) {
	lib, err := tune.Generate(h, opt)
	if err != nil {
		return nil, err
	}
	return NewCompilerFromLibrary(lib), nil
}

// NewCompilerFromLibrary wraps an existing offline library (for sharing one
// library across compiler variants).
func NewCompilerFromLibrary(lib *tune.Library) *Compiler {
	return &Compiler{
		lib:     lib,
		planner: poly.NewPlanner(lib),
		cache:   make(map[tensor.GemmShape]*poly.Program),
	}
}

// Name implements the baseline.Planner interface for head-to-head reports.
func (c *Compiler) Name() string { return "MikPoly" }

// Hardware returns the target device abstraction.
func (c *Compiler) Hardware() hw.Hardware { return c.lib.HW }

// Library exposes the offline-stage output.
func (c *Compiler) Library() *tune.Library { return c.lib }

// Planner exposes the online planner for configuration (cost-model variant,
// pattern subset, pruning) before first use. Mutating it after programs are
// cached does not invalidate the cache; call ClearCache as needed.
func (c *Compiler) Planner() *poly.Planner { return c.planner }

// ClearCache drops all cached programs.
func (c *Compiler) ClearCache() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = make(map[tensor.GemmShape]*poly.Program)
}

// Plan returns the optimized program S* for a runtime shape, caching per
// shape. It never fails on a valid shape — MikPoly's arbitrary-shape
// guarantee.
func (c *Compiler) Plan(shape tensor.GemmShape) (*poly.Program, error) {
	c.mu.Lock()
	if prog, ok := c.cache[shape]; ok {
		c.mu.Unlock()
		return prog, nil
	}
	c.mu.Unlock()

	prog, stats, err := c.planner.Plan(shape)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	c.cache[shape] = prog
	c.planCount++
	c.planStats.Candidates += stats.Candidates
	c.planStats.PrunedAnchors += stats.PrunedAnchors
	c.planStats.Elapsed += stats.Elapsed
	c.mu.Unlock()
	return prog, nil
}

// PlanUncached runs the online stage without consulting or filling the
// cache, returning its statistics — used to measure polymerization overhead.
func (c *Compiler) PlanUncached(shape tensor.GemmShape) (*poly.Program, poly.PlanStats, error) {
	return c.planner.Plan(shape)
}

// PlanStats returns the number of online plans performed and their summed
// search statistics.
func (c *Compiler) PlanStats() (int, poly.PlanStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planCount, c.planStats
}

// GEMM plans (or reuses) a program for the operand shapes and executes it
// numerically: C = A × B.
func (c *Compiler) GEMM(a, b *tensor.Matrix) (*tensor.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("core: GEMM dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	prog, err := c.Plan(tensor.GemmShape{M: a.Rows, N: b.Cols, K: a.Cols})
	if err != nil {
		return nil, err
	}
	return engine.Execute(prog, a, b)
}

// GEMMFused plans (or reuses) a program and executes it with a fused
// epilogue (bias and/or activation applied during output write-back) — the
// numeric counterpart of the graph-level fusion pass.
func (c *Compiler) GEMMFused(a, b *tensor.Matrix, ep engine.Epilogue) (*tensor.Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("core: GEMM dim mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	prog, err := c.Plan(tensor.GemmShape{M: a.Rows, N: b.Cols, K: a.Cols})
	if err != nil {
		return nil, err
	}
	return engine.ExecuteFused(prog, a, b, ep)
}

// Conv plans and executes a convolution through the implicit-GEMM path.
func (c *Compiler) Conv(in, filters *tensor.Tensor4, shape tensor.ConvShape) (*tensor.Tensor4, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("core: invalid conv shape %v", shape)
	}
	prog, err := c.Plan(shape.GemmShape())
	if err != nil {
		return nil, err
	}
	return engine.ExecuteConv(prog, in, filters, shape)
}

// Simulate plans a shape and returns its simulated execution on the target —
// the substrate's stand-in for a wall-clock measurement.
func (c *Compiler) Simulate(shape tensor.GemmShape) (sim.Result, error) {
	prog, err := c.Plan(shape)
	if err != nil {
		return sim.Result{}, err
	}
	return prog.Simulate(c.lib.HW), nil
}

// sharedLibs caches offline libraries per (hardware, options) so tests,
// benchmarks and examples pay the offline stage once per process.
var (
	sharedMu   sync.Mutex
	sharedLibs = map[string]*tune.Library{}
)

// SharedLibrary returns a process-wide cached offline library.
func SharedLibrary(h hw.Hardware, opt tune.Options) (*tune.Library, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", h.Name, opt.NGen, opt.NSyn, opt.NMik, opt.NPred)
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if lib, ok := sharedLibs[key]; ok {
		return lib, nil
	}
	lib, err := tune.Generate(h, opt)
	if err != nil {
		return nil, err
	}
	sharedLibs[key] = lib
	return lib, nil
}
