package core

import (
	"context"
	"errors"
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/plancache"
	"mikpoly/internal/tensor"
	"mikpoly/internal/tune"
)

func otherTestLib(t *testing.T) *tune.Library {
	t.Helper()
	opts := testOpts()
	opts.NMik = 5
	lib, err := SharedLibrary(hw.A100(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// TestCacheKeyIncludesLibraryHash is the regression test for the stale-program
// bug: after SetLibrary swaps in a retuned library, a cached program planned
// from the old kernels must never be served — the cache key carries the
// library hash, so the lookup misses and the shape replans against the new
// library. Swapping back rehits the original entry.
func TestCacheKeyIncludesLibraryHash(t *testing.T) {
	c := newTestCompiler(t)
	origLib := c.Library()
	s := tensor.GemmShape{M: 96, N: 160, K: 224}

	oldProg, err := c.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	oldHash := c.LibraryHash()
	if oldHash == "" {
		t.Fatal("library hash empty; snapshot tier disabled")
	}

	plansBefore, _ := c.PlanStats()
	c.SetLibrary(otherTestLib(t))
	if c.LibraryHash() == oldHash {
		t.Fatal("different library produced the same content hash")
	}
	newProg, err := c.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if newProg == oldProg {
		t.Fatal("swapped library served the old library's cached program")
	}
	if plansAfter, _ := c.PlanStats(); plansAfter != plansBefore+1 {
		t.Fatalf("swap did not force an online replan (%d -> %d plans)", plansBefore, plansAfter)
	}

	// Swapping the original library back must rehit its cached entry — the
	// old keys were shadowed, not poisoned.
	n, _ := c.PlanStats()
	c.SetLibrary(origLib)
	back, err := c.Plan(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != oldProg {
		t.Fatal("swap-back did not rehit the original cached program")
	}
	if after, _ := c.PlanStats(); after != n {
		t.Fatalf("swap-back replanned online (%d -> %d plans)", n, after)
	}
}

// TestWarmStartBitwiseEqual proves the tier's core claim: a compiler
// warm-started from another's snapshot serves the same shapes with zero
// online plans and bitwise-identical programs.
func TestWarmStartBitwiseEqual(t *testing.T) {
	cold := newTestCompiler(t)
	shapes := []tensor.GemmShape{
		{M: 128, N: 768, K: 768},
		{M: 384, N: 3072, K: 768},
		{M: 8, N: 4096, K: 4096},
	}
	coldFP := make(map[tensor.GemmShape]string)
	for _, s := range shapes {
		p, err := cold.Plan(s)
		if err != nil {
			t.Fatal(err)
		}
		coldFP[s] = plancache.ProgramFingerprint(p)
	}
	snap, err := cold.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	warm := newTestCompiler(t)
	n, err := warm.ImportSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(shapes) {
		t.Fatalf("imported %d entries, want %d", n, len(shapes))
	}
	for _, s := range shapes {
		p, err := warm.Plan(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := plancache.ProgramFingerprint(p); got != coldFP[s] {
			t.Errorf("%v: warm program differs from cold:\n cold: %s\n warm: %s", s, coldFP[s], got)
		}
	}
	if plans, _ := warm.PlanStats(); plans != 0 {
		t.Fatalf("warm compiler performed %d online plans, want 0", plans)
	}
	if st := warm.PlanCache(); st.Imported != int64(len(shapes)) || st.ImportRejects != 0 {
		t.Fatalf("PlanCache stats %+v, want imported=%d rejects=0", st, len(shapes))
	}
}

// TestWithSnapshotOption warm-starts through the constructor option.
func TestWithSnapshotOption(t *testing.T) {
	cold := newTestCompiler(t)
	s := tensor.GemmShape{M: 100, N: 200, K: 300}
	if _, err := cold.Plan(s); err != nil {
		t.Fatal(err)
	}
	snap, err := cold.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	warm := NewCompilerFromLibrary(cold.Library(), WithSnapshot(snap))
	if !warm.Cached(s, "") {
		t.Fatal("WithSnapshot did not warm the cache")
	}
	if _, err := warm.Plan(s); err != nil {
		t.Fatal(err)
	}
	if plans, _ := warm.PlanStats(); plans != 0 {
		t.Fatalf("warm compiler planned online %d times, want 0", plans)
	}
}

// TestImportSnapshotRejectsStaleLibrary feeds a snapshot from a different
// library generation: the whole snapshot must be rejected (counted, cache
// untouched) and the compiler must still plan online cleanly.
func TestImportSnapshotRejectsStaleLibrary(t *testing.T) {
	donor := NewCompilerFromLibrary(otherTestLib(t))
	s := tensor.GemmShape{M: 128, N: 768, K: 768}
	if _, err := donor.Plan(s); err != nil {
		t.Fatal(err)
	}
	snap, err := donor.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCompiler(t)
	if _, err := c.ImportSnapshot(snap); !errors.Is(err, plancache.ErrIncompatible) {
		t.Fatalf("stale-library snapshot: got %v, want ErrIncompatible", err)
	}
	if st := c.PlanCache(); st.ImportRejects != 1 || st.Imported != 0 {
		t.Fatalf("PlanCache stats %+v, want rejects=1 imported=0", st)
	}
	if c.Cached(s, "") {
		t.Fatal("rejected snapshot leaked entries into the cache")
	}
	if _, err := c.Plan(s); err != nil {
		t.Fatalf("online replan after rejected snapshot: %v", err)
	}
	if plans, _ := c.PlanStats(); plans != 1 {
		t.Fatalf("replan count %d, want 1", plans)
	}
}

// TestPrePlanHot plans the tracker's hottest shapes in the background path and
// exports them, so a snapshot covers traffic the cache has not seen yet.
func TestPrePlanHot(t *testing.T) {
	c := newTestCompiler(t)
	hotS := tensor.GemmShape{M: 64, N: 128, K: 256}
	// Observe without planning: PlanOrFallback would plan; feed the tracker
	// through PlanContext misses instead — here we just observe via Plan,
	// then invalidate to leave traffic weight without a cached program.
	if _, err := c.Plan(hotS); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(hotS)
	if got := c.HotShapes(4); len(got) != 1 || got[0] != hotS {
		t.Fatalf("HotShapes = %v, want [%v]", got, hotS)
	}

	planned, err := c.PrePlanHot(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if planned != 1 {
		t.Fatalf("pre-planned %d shapes, want 1", planned)
	}
	if !c.Cached(hotS, "") {
		t.Fatal("pre-planned shape not cached")
	}
	// Already cached: a second sweep is a no-op.
	if planned, err = c.PrePlanHot(context.Background(), 8); err != nil || planned != 0 {
		t.Fatalf("second sweep planned %d (err %v), want 0", planned, err)
	}
	if st := c.PlanCache(); st.PrePlans != 1 {
		t.Fatalf("PrePlans = %d, want 1", st.PrePlans)
	}

	snap, err := c.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Entries) != 1 || snap.Entries[0].Program.Shape != hotS {
		t.Fatalf("snapshot entries %+v, want the pre-planned hot shape", snap.Entries)
	}
}
