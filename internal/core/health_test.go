package core

import (
	"context"
	"testing"
	"time"

	"mikpoly/internal/health"
	"mikpoly/internal/hw"
	"mikpoly/internal/sim"
	"mikpoly/internal/tensor"
)

// quarantineOne drives the registry until one PE is quarantined and returns
// the degraded fingerprint.
func quarantineOne(t *testing.T, reg *health.Registry, pe int) string {
	t.Helper()
	r := sim.Result{FaultedTasks: 1, DeadPEs: []int{pe}}
	reg.ObserveResult(reg.View(), r)
	fp := reg.View().Fingerprint()
	if fp == "" {
		t.Fatal("quarantine did not degrade the view")
	}
	return fp
}

func TestHealthKeyedCacheIsolation(t *testing.T) {
	lib, err := SharedLibrary(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := health.NewRegistry(lib.HW.NumPEs, health.Config{})
	c := NewCompilerFromLibrary(lib, WithHealth(reg))

	shape := tensor.GemmShape{M: 300, N: 300, K: 300}
	healthyProg, err := c.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Cached(shape, "") {
		t.Fatal("healthy plan not cached under the empty fingerprint")
	}

	fp := quarantineOne(t, reg, 3)
	degradedProg, err := c.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Cached(shape, fp) {
		t.Fatalf("degraded plan not cached under %q", fp)
	}
	if !c.Cached(shape, "") {
		t.Fatal("degraded planning evicted the healthy entry — cache poisoned")
	}
	// The degraded program targets one fewer PE; the healthy program is
	// untouched and still served once the view recovers.
	if got := degradedProg.HW.NumPEs; got != lib.HW.NumPEs-1 {
		t.Fatalf("degraded program HW has %d PEs, want %d", got, lib.HW.NumPEs-1)
	}
	if healthyProg.HW.NumPEs != lib.HW.NumPEs {
		t.Fatalf("healthy program mutated: %d PEs", healthyProg.HW.NumPEs)
	}

	reg.Reset()
	before, _ := c.PlanStats()
	back, err := c.Plan(shape)
	if err != nil {
		t.Fatal(err)
	}
	if after, _ := c.PlanStats(); after != before {
		t.Fatal("recovered view re-planned instead of hitting the healthy entry")
	}
	if back != healthyProg {
		t.Fatal("recovered view served a different program than the healthy plan")
	}

	if h := c.Health(); h.DegradedPlans == 0 {
		t.Fatalf("DegradedPlans = %d, want > 0", h.DegradedPlans)
	}
}

func TestHealthViewChangeTriggersBackgroundReplan(t *testing.T) {
	lib, err := SharedLibrary(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := health.NewRegistry(lib.HW.NumPEs, health.Config{})
	c := NewCompilerFromLibrary(lib, WithHealth(reg))

	shapes := []tensor.GemmShape{
		{M: 128, N: 128, K: 128},
		{M: 256, N: 64, K: 96},
	}
	for _, s := range shapes {
		if _, err := c.Plan(s); err != nil {
			t.Fatal(err)
		}
	}

	fp := quarantineOne(t, reg, 0)
	// Any plan call notices the generation change and replans the hot set
	// in the background.
	if _, err := c.Plan(tensor.GemmShape{M: 48, N: 48, K: 48}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, s := range shapes {
			if !c.Cached(s, fp) {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot shapes not replanned under %q within deadline", fp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h := c.Health(); h.Replans == 0 {
		t.Fatalf("Replans = %d, want > 0", h.Replans)
	}
}

func TestPlanOrFallbackTargetsDegradedView(t *testing.T) {
	lib, err := SharedLibrary(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := health.NewRegistry(lib.HW.NumPEs, health.Config{})
	c := NewCompilerFromLibrary(lib, WithHealth(reg))
	quarantineOne(t, reg, 7)

	// Expired context: the fallback must price the degraded hardware.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	fb, degraded, err := c.PlanOrFallback(expired, tensor.GemmShape{M: 37, N: 29, K: 31})
	if err != nil || !degraded {
		t.Fatalf("degraded=%v err=%v", degraded, err)
	}
	if fb.HW.NumPEs != lib.HW.NumPEs-1 {
		t.Fatalf("fallback HW has %d PEs, want %d", fb.HW.NumPEs, lib.HW.NumPEs-1)
	}
}

// TestPlanningSurvivesMaximallyDegradedView quarantines every PE the
// registry will give up (all but one) and proves the planner still answers:
// no panic, a legal program targeting the 1-PE H', and the fallback path
// intact under an expired deadline.
func TestPlanningSurvivesMaximallyDegradedView(t *testing.T) {
	lib, err := SharedLibrary(hw.A100(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	reg := health.NewRegistry(lib.HW.NumPEs, health.Config{})
	c := NewCompilerFromLibrary(lib, WithHealth(reg))

	// Kill view-PE 0 repeatedly: each observation quarantines the next
	// surviving base PE until only one remains (the registry refuses the
	// last), plus a few extra rounds that must be no-ops.
	for i := 0; i < lib.HW.NumPEs+2; i++ {
		reg.ObserveResult(reg.View(), sim.Result{FaultedTasks: 1, DeadPEs: []int{0}})
	}
	if q := len(reg.View().Quarantined); q != lib.HW.NumPEs-1 {
		t.Fatalf("quarantined %d PEs, want %d", q, lib.HW.NumPEs-1)
	}

	shape := tensor.GemmShape{M: 192, N: 160, K: 96}
	prog, err := c.Plan(shape)
	if err != nil {
		t.Fatalf("planning on a 1-PE view: %v", err)
	}
	if prog.HW.NumPEs != 1 {
		t.Fatalf("degraded program targets %d PEs, want 1", prog.HW.NumPEs)
	}

	// The deadline-expired path must degrade to the fallback program, not
	// panic, even on the maximally degraded view.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	fb, degraded, err := c.PlanOrFallback(ctx, tensor.GemmShape{M: 37, N: 29, K: 131})
	if err != nil || fb == nil {
		t.Fatalf("PlanOrFallback on 1-PE view: prog=%v err=%v", fb, err)
	}
	if !degraded {
		t.Fatal("expired deadline did not take the fallback path")
	}
}
