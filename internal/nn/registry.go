package nn

import (
	"fmt"
	"sort"
)

// ModelDims carries the dynamic dimensions of a model-build request. Zero
// fields take per-family defaults; the families read different subsets
// (transformers: Seq/Batch, CNNs: Batch/Resolution, llama decode:
// Batch/KVLen).
type ModelDims struct {
	Seq        int
	Batch      int
	Resolution int
	KVLen      int
}

// Default dynamic dimensions used when a request leaves a field zero.
const (
	DefaultSeq        = 128
	DefaultBatch      = 1
	DefaultResolution = 224
	DefaultKVLen      = 128
)

func (d ModelDims) withDefaults() ModelDims {
	if d.Seq == 0 {
		d.Seq = DefaultSeq
	}
	if d.Batch == 0 {
		d.Batch = DefaultBatch
	}
	if d.Resolution == 0 {
		d.Resolution = DefaultResolution
	}
	if d.KVLen == 0 {
		d.KVLen = DefaultKVLen
	}
	return d
}

// modelBuilders maps every servable model name to a dimension-checked
// builder. The set is the paper's evaluated models (§5.1): the four
// language models, the four TorchVision CNNs, and the Llama2 phases.
var modelBuilders = map[string]func(d ModelDims) (Graph, error){
	"bert-base":      transformerBuilder(BERTBaseConfig),
	"distilbert":     transformerBuilder(DistilBERTConfig),
	"roberta-base":   transformerBuilder(RoBERTaBaseConfig),
	"albert-xlarge":  transformerBuilder(ALBERTXLargeConfig),
	"alexnet":        cnnBuilder(AlexNet),
	"googlenet":      cnnBuilder(GoogLeNet),
	"resnet18":       cnnBuilder(ResNet18),
	"vgg11":          cnnBuilder(VGG11),
	"llama2-prefill": llamaPrefillBuilder,
	"llama2-decode":  llamaDecodeBuilder,
}

func transformerBuilder(cfg TransformerConfig) func(ModelDims) (Graph, error) {
	return func(d ModelDims) (Graph, error) {
		if d.Seq < 1 || d.Batch < 1 {
			return Graph{}, fmt.Errorf("nn: %s requires seq >= 1 and batch >= 1, got seq=%d batch=%d", cfg.Name, d.Seq, d.Batch)
		}
		return Transformer(cfg, d.Seq, d.Batch), nil
	}
}

func cnnBuilder(b CNNBuilder) func(ModelDims) (Graph, error) {
	return func(d ModelDims) (Graph, error) {
		if d.Batch < 1 || d.Resolution < 16 {
			return Graph{}, fmt.Errorf("nn: CNN models require batch >= 1 and resolution >= 16, got batch=%d resolution=%d", d.Batch, d.Resolution)
		}
		return b(d.Batch, d.Resolution), nil
	}
}

func llamaPrefillBuilder(d ModelDims) (Graph, error) {
	if d.Batch < 1 || d.Seq < 1 {
		return Graph{}, fmt.Errorf("nn: llama2-prefill requires batch >= 1 and seq >= 1, got batch=%d seq=%d", d.Batch, d.Seq)
	}
	return Llama2Prefill(d.Batch, d.Seq), nil
}

func llamaDecodeBuilder(d ModelDims) (Graph, error) {
	if d.Batch < 1 || d.KVLen < 1 {
		return Graph{}, fmt.Errorf("nn: llama2-decode requires batch >= 1 and kv_len >= 1, got batch=%d kv_len=%d", d.Batch, d.KVLen)
	}
	return Llama2Decode(d.Batch, d.KVLen), nil
}

// ModelNames returns the registry's model names, sorted.
func ModelNames() []string {
	names := make([]string, 0, len(modelBuilders))
	for name := range modelBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildModel instantiates a registered model for the given dynamic
// dimensions (zero fields take defaults). Unlike the family builders, which
// panic on bad input, it validates and returns errors — the entry point for
// untrusted dimension values (the serving layer's /model endpoint).
func BuildModel(name string, d ModelDims) (Graph, error) {
	b, ok := modelBuilders[name]
	if !ok {
		return Graph{}, fmt.Errorf("nn: unknown model %q (known: %v)", name, ModelNames())
	}
	return b(d.withDefaults())
}
