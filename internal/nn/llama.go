package nn

import (
	"fmt"

	"mikpoly/internal/workload"
)

// Llama2-13b under 4-way tensor parallelism (§5.2.4): 40 decoder layers;
// per-GPU GEMM slices as in Table 8. Attention score/context computation is
// fused (FlashAttention-style) identically in FasterTransformer and in the
// MikPoly-integrated build, so it is carried as bandwidth-bound work.
const (
	llamaLayers = 40
	llamaHidden = 5120
)

// Llama2Prefill builds the prompt-processing pass: every GEMM sees
// N = batch·seq in-flight tokens.
func Llama2Prefill(batch, seq int) Graph {
	if batch < 1 || seq < 1 {
		panic(fmt.Sprintf("nn: invalid llama input batch=%d seq=%d", batch, seq))
	}
	return llamaStep(fmt.Sprintf("llama2-13b-prefill@b%d_s%d", batch, seq), batch*seq, batch, seq)
}

// Llama2Decode builds one autoregressive decode step: every GEMM sees
// N = batch in-flight tokens (one new token per sequence, KV-cached).
func Llama2Decode(batch, kvLen int) Graph {
	if batch < 1 || kvLen < 1 {
		panic(fmt.Sprintf("nn: invalid llama decode batch=%d kvLen=%d", batch, kvLen))
	}
	return llamaStep(fmt.Sprintf("llama2-13b-decode@b%d_kv%d", batch, kvLen), batch, batch, kvLen)
}

// llamaStep lays down one full pass with `tokens` tokens in flight and an
// attention context of kvLen per sequence. Explicit dependency edges give
// the true per-layer dataflow (qkv → attention → o_proj → ffn_up →
// ffn_down → elementwise → next layer), which the op emission order —
// GEMMs first, bandwidth-bound work after, the Table 8 convention — does
// not reflect; graph-level schedulers and the memory planner rely on them.
func llamaStep(name string, tokens, batch, kvLen int) Graph {
	g := Graph{Name: name}
	ops := workload.LlamaOps()
	for l := 0; l < llamaLayers; l++ {
		base := len(g.Ops)
		for _, op := range ops {
			// Table 8 convention: M and K are the weight-slice dims,
			// N is the dynamic token dimension.
			g.gemm(fmt.Sprintf("layer%d/%s", l, op.Layer), op.M, tokens, op.K, 1)
		}
		// Fused attention: reads Q plus the KV cache, writes the context
		// (per-GPU slice of the hidden dim), plus RMSNorm/SiLU/residual
		// passes over the token activations.
		attnBytes := float64(batch) * float64(kvLen) * float64(llamaHidden/4) * 2 * 2
		elemBytes := 8 * float64(tokens) * float64(llamaHidden) * 2
		g.other(fmt.Sprintf("layer%d/attention", l), attnBytes, 1)
		g.other(fmt.Sprintf("layer%d/elementwise", l), elemBytes, 1)

		// Layer indices: base+0 qkv_proj, +1 o_proj, +2 ffn_up,
		// +3 ffn_down, +4 attention, +5 elementwise.
		if base > 0 {
			g.Ops[base+0].Inputs = []int{base - 1} // qkv ← previous layer's elementwise
		} else {
			g.Ops[base+0].Inputs = []int{} // graph source
		}
		g.Ops[base+4].Inputs = []int{base + 0} // attention ← qkv_proj
		g.Ops[base+1].Inputs = []int{base + 4} // o_proj ← attention
		g.Ops[base+2].Inputs = []int{base + 1} // ffn_up ← o_proj
		g.Ops[base+3].Inputs = []int{base + 2} // ffn_down ← ffn_up
		g.Ops[base+5].Inputs = []int{base + 3} // elementwise ← ffn_down
	}
	return g
}

// LlamaBatchSizes returns the Fig. 11 batch sweep 2^0..2^3.
func LlamaBatchSizes() []int { return []int{1, 2, 4, 8} }

// LlamaSeqLengths returns the Fig. 11 input-length sweep 2^0..2^9.
func LlamaSeqLengths() []int {
	var out []int
	for i := 0; i <= 9; i++ {
		out = append(out, 1<<i)
	}
	return out
}

// LlamaOutputLen is the fixed generation length of §5.2.4.
const LlamaOutputLen = 512
