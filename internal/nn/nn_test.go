package nn

import (
	"testing"

	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
)

func TestOpValidate(t *testing.T) {
	good := Op{Name: "g", Kind: OpGemm, Gemm: tensor.GemmShape{M: 1, N: 1, K: 1}, Count: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Op{
		{Name: "count", Kind: OpGemm, Gemm: tensor.GemmShape{M: 1, N: 1, K: 1}, Count: 0},
		{Name: "shape", Kind: OpGemm, Count: 1},
		{Name: "conv", Kind: OpConv, Count: 1},
		{Name: "neg", Kind: OpOther, OtherBytes: -1, Count: 1},
		{Name: "kind", Kind: OpKind(9), Count: 1},
	}
	for _, o := range bad {
		if o.Validate() == nil {
			t.Errorf("op %q should fail validation", o.Name)
		}
	}
	// Conv lowering mismatch.
	cs := tensor.ConvShape{Batch: 1, InC: 1, InH: 4, InW: 4, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 0}
	mismatch := Op{Name: "c", Kind: OpConv, Conv: cs, Gemm: tensor.GemmShape{M: 1, N: 1, K: 1}, Count: 1}
	if mismatch.Validate() == nil {
		t.Fatal("lowering mismatch not caught")
	}
}

func TestOtherCycles(t *testing.T) {
	h := hw.A100()
	o := Op{Kind: OpOther, OtherBytes: h.GlobalBytesPerCycle * 100, Count: 1}
	if got := o.OtherCycles(h); got != 100 {
		t.Fatalf("OtherCycles = %g", got)
	}
}

func TestTransformerGraphs(t *testing.T) {
	for _, cfg := range LanguageModels() {
		g := Transformer(cfg, 128, 1)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		shapes := g.GemmShapes()
		qkv := tensor.GemmShape{M: 128, N: 3 * cfg.Hidden, K: cfg.Hidden}
		if shapes[qkv] != cfg.Layers {
			t.Fatalf("%s: qkv count = %d, want %d", cfg.Name, shapes[qkv], cfg.Layers)
		}
		// Score and context GEMMs coincide when headDim == seq (ALBERT at
		// seq 128), so expect at least one layer×head count.
		attn := tensor.GemmShape{M: 128, N: 128, K: cfg.Hidden / cfg.Heads}
		if shapes[attn] < cfg.Layers*cfg.Heads {
			t.Fatalf("%s: attention GEMM count = %d, want >= %d",
				cfg.Name, shapes[attn], cfg.Layers*cfg.Heads)
		}
		if g.TotalFLOPs() <= 0 {
			t.Fatalf("%s: no FLOPs", cfg.Name)
		}
	}
}

func TestDistilBERTHalfOfBERT(t *testing.T) {
	b := Transformer(BERTBaseConfig, 128, 1).TotalFLOPs()
	d := Transformer(DistilBERTConfig, 128, 1).TotalFLOPs()
	if ratio := b / d; ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("BERT/DistilBERT FLOPs ratio = %g, want ~2 (12 vs 6 layers)", ratio)
	}
}

func TestSequenceLengths(t *testing.T) {
	ls := SequenceLengths()
	if len(ls) != 150 {
		t.Fatalf("len = %d, want 150", len(ls))
	}
	for _, l := range ls {
		if l < 5 || l > 500 {
			t.Fatalf("length %d outside [5, 500]", l)
		}
	}
	again := SequenceLengths()
	for i := range ls {
		if ls[i] != again[i] {
			t.Fatal("sequence lengths not deterministic")
		}
	}
}

func TestCNNGraphsValidAcrossSweep(t *testing.T) {
	for name, build := range CNNModels() {
		for _, batch := range []int{1, 128} {
			for _, res := range []int{64, 224, 640} {
				g := build(batch, res)
				if err := g.Validate(); err != nil {
					t.Fatalf("%s b%d r%d: %v", name, batch, res, err)
				}
				convs := 0
				for _, o := range g.Ops {
					if o.Kind == OpConv {
						convs++
					}
				}
				if convs < 5 {
					t.Fatalf("%s: only %d conv layers", name, convs)
				}
			}
		}
	}
}

func TestCNNFLOPsScaleWithInputs(t *testing.T) {
	small := VGG11(1, 64).TotalFLOPs()
	bigBatch := VGG11(8, 64).TotalFLOPs()
	bigRes := VGG11(1, 224).TotalFLOPs()
	if bigBatch < 4*small {
		t.Fatalf("batch scaling too weak: %g vs %g", bigBatch, small)
	}
	if bigRes < 5*small {
		t.Fatalf("resolution scaling too weak: %g vs %g", bigRes, small)
	}
}

func TestCNNSweeps(t *testing.T) {
	if got := CNNBatchSizes(); len(got) != 8 || got[0] != 1 || got[7] != 128 {
		t.Fatalf("batch sweep %v", got)
	}
	if got := CNNResolutions(); len(got) != 10 || got[0] != 64 || got[9] != 640 {
		t.Fatalf("resolution sweep %v", got)
	}
}

func TestResNet18FinalFC(t *testing.T) {
	g := ResNet18(4, 224)
	last := g.Ops[len(g.Ops)-1]
	if last.Kind != OpGemm || last.Gemm.N != 1000 || last.Gemm.K != 512 || last.Gemm.M != 4 {
		t.Fatalf("final FC = %+v", last)
	}
}

func TestGoogLeNetChannelsConcat(t *testing.T) {
	g := GoogLeNet(1, 224)
	// inception 3a concat: 64+128+32+32 = 256 output channels feed 3b's
	// 1x1 branch as K = InC·1·1 = 256.
	found := false
	for _, o := range g.Ops {
		if o.Name == "inception3b/1x1" {
			found = true
			if o.Conv.InC != 256 {
				t.Fatalf("3b input channels = %d, want 256", o.Conv.InC)
			}
		}
	}
	if !found {
		t.Fatal("inception3b/1x1 missing")
	}
}

func TestLlamaGraphs(t *testing.T) {
	pre := Llama2Prefill(2, 128)
	if err := pre.Validate(); err != nil {
		t.Fatal(err)
	}
	dec := Llama2Decode(2, 128)
	if err := dec.Validate(); err != nil {
		t.Fatal(err)
	}
	// 40 layers × 4 GEMMs each.
	if n := len(pre.GemmShapes()); n != 4 {
		t.Fatalf("prefill distinct GEMM shapes = %d, want 4", n)
	}
	total := 0
	for _, c := range pre.GemmShapes() {
		total += c
	}
	if total != 160 {
		t.Fatalf("prefill GEMM count = %d, want 160", total)
	}
	// Decode tokens = batch, prefill tokens = batch*seq.
	for s := range pre.GemmShapes() {
		if s.N != 256 {
			t.Fatalf("prefill token dim = %d, want 256", s.N)
		}
	}
	for s := range dec.GemmShapes() {
		if s.N != 2 {
			t.Fatalf("decode token dim = %d, want 2", s.N)
		}
	}
}

func TestLlamaSweeps(t *testing.T) {
	if got := LlamaBatchSizes(); len(got) != 4 {
		t.Fatalf("batch sweep %v", got)
	}
	if got := LlamaSeqLengths(); len(got) != 10 || got[9] != 512 {
		t.Fatalf("seq sweep %v", got)
	}
	if LlamaOutputLen != 512 {
		t.Fatal("output length must match §5.2.4")
	}
}

func TestGraphValidateEmpty(t *testing.T) {
	g := Graph{Name: "empty"}
	if g.Validate() == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestBuilderPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { Transformer(BERTBaseConfig, 0, 1) },
		func() { AlexNet(0, 224) },
		func() { Llama2Prefill(1, 0) },
		func() { Llama2Decode(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFasterRCNNGraph(t *testing.T) {
	g := FasterRCNN(1, 600, 800, 300)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The ROI head GEMMs must carry the proposal count as their M dim.
	found := false
	for _, o := range g.Ops {
		if o.Name == "roi/fc6" {
			found = true
			if o.Gemm.M != 300 || o.Gemm.K != 512*7*7 {
				t.Fatalf("roi/fc6 = %v", o.Gemm)
			}
		}
	}
	if !found {
		t.Fatal("roi/fc6 missing")
	}
	// Non-square resolutions must flow through the backbone.
	g2 := FasterRCNN(2, 480, 640, 50)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	if g2.TotalFLOPs() >= g.TotalFLOPs()*2 {
		t.Fatal("smaller resolution should not cost more")
	}
}

func TestFasterRCNNDynamicAxesIndependent(t *testing.T) {
	base := FasterRCNN(1, 600, 800, 100)
	moreProps := FasterRCNN(1, 600, 800, 1000)
	bigger := FasterRCNN(1, 1080, 1920, 100)
	// More proposals grow only the ROI GEMMs; higher resolution grows
	// only the backbone convs.
	if moreProps.TotalFLOPs() <= base.TotalFLOPs() {
		t.Fatal("proposals did not scale ROI work")
	}
	if bigger.TotalFLOPs() <= base.TotalFLOPs() {
		t.Fatal("resolution did not scale backbone work")
	}
	baseShapes := base.GemmShapes()
	propShapes := moreProps.GemmShapes()
	// Backbone conv shapes identical across proposal counts.
	for s := range baseShapes {
		if s.K == 512*7*7 || s.K == 1024 {
			continue // ROI head shapes differ by design
		}
		if _, ok := propShapes[s]; !ok {
			t.Fatalf("backbone shape %v changed with proposal count", s)
		}
	}
}

func TestDetectionSweeps(t *testing.T) {
	if len(DetectionProposalCounts()) < 3 {
		t.Fatal("proposal sweep too small")
	}
	for _, r := range DetectionResolutions() {
		if r[0] < 64 || r[1] < 64 {
			t.Fatalf("bad resolution %v", r)
		}
	}
}

func TestFasterRCNNPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FasterRCNN(1, 600, 800, 0)
}
