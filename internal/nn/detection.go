package nn

import (
	"fmt"

	"mikpoly/internal/tensor"
)

// FasterRCNN builds a two-stage detection graph in the style the paper's
// §2.1 names as its dynamic-resolution motivation: a ResNet-18 backbone
// running at the image's *native* resolution (no lossy resize), a region
// proposal network, and ROI heads whose GEMM rows are the *runtime proposal
// count* — two independent dynamic dimensions in one model.
func FasterRCNN(batch, resH, resW, proposals int) Graph {
	if batch < 1 || resH < 64 || resW < 64 || proposals < 1 {
		panic(fmt.Sprintf("nn: invalid detection input batch=%d res=%dx%d proposals=%d",
			batch, resH, resW, proposals))
	}
	g := Graph{Name: fmt.Sprintf("faster-rcnn@b%d_%dx%d_p%d", batch, resH, resW, proposals)}
	s := &cnnState{g: &g, batch: batch, c: 3, h: resH, w: resW}

	// ResNet-18 backbone (no classifier head).
	s.conv("backbone/conv1", 64, 7, 2, 3)
	s.pool("backbone/maxpool")
	stage := func(name string, outC, stride int) {
		s.conv(name+"/b1c1", outC, 3, stride, 1)
		s.conv(name+"/b1c2", outC, 3, 1, 1)
		if stride != 1 {
			s.conv(name+"/down", outC, 1, 1, 0)
		}
		s.conv(name+"/b2c1", outC, 3, 1, 1)
		s.conv(name+"/b2c2", outC, 3, 1, 1)
	}
	stage("backbone/layer1", 64, 1)
	stage("backbone/layer2", 128, 2)
	stage("backbone/layer3", 256, 2)
	stage("backbone/layer4", 512, 2)

	// Region proposal network on the final feature map: a 3×3 conv plus
	// 1×1 objectness and box-regression heads (9 anchors per location).
	const anchors = 9
	s.conv("rpn/conv", 256, 3, 1, 1)
	rpnIn := tensor.ConvShape{
		Batch: s.batch, InC: s.c, InH: s.h, InW: s.w,
		OutC: anchors, KH: 1, KW: 1, Stride: 1, Pad: 0,
	}
	g.conv("rpn/objectness", rpnIn, 1)
	rpnBox := rpnIn
	rpnBox.OutC = 4 * anchors
	g.conv("rpn/bbox", rpnBox, 1)
	// Proposal selection (NMS, sorting) is bandwidth/latency-bound.
	g.other("rpn/nms", float64(s.batch*anchors*s.h*s.w)*8, 1)

	// ROI heads: every proposal is pooled to 7×7×512 and classified. The
	// GEMM row count is the runtime proposal count — the second dynamic
	// dimension.
	rows := batch * proposals
	g.other("roi/align", float64(rows*512*7*7)*2*2, 1)
	g.gemm("roi/fc6", rows, 1024, 512*7*7, 1)
	g.gemm("roi/fc7", rows, 1024, 1024, 1)
	g.gemm("roi/cls", rows, 91, 1024, 1)
	g.gemm("roi/bbox", rows, 4*91, 1024, 1)
	return g
}

// DetectionProposalCounts returns the proposal sweep used by the detection
// scenario experiment: real images keep anywhere from a handful to a
// thousand post-NMS proposals.
func DetectionProposalCounts() []int { return []int{10, 50, 100, 300, 1000} }

// DetectionResolutions returns the native-resolution sweep (height, width):
// detection datasets mix aspect ratios and scales.
func DetectionResolutions() [][2]int {
	return [][2]int{{480, 640}, {600, 800}, {768, 1024}, {800, 1333}, {1080, 1920}}
}
