package nn

import (
	"math"
	"reflect"
	"testing"

	"mikpoly/internal/tensor"
)

func chainGemm(names ...string) Graph {
	g := Graph{Name: "chain"}
	for _, n := range names {
		g.gemm(n, 8, 8, 8, 1)
	}
	return g
}

func TestOpValidateDegenerateCounts(t *testing.T) {
	for _, count := range []int{0, -1, -100} {
		op := Op{Name: "x", Kind: OpGemm, Gemm: tensor.GemmShape{M: 8, N: 8, K: 8}, Count: count}
		if err := op.Validate(); err == nil {
			t.Errorf("count %d accepted", count)
		}
	}
}

func TestOpValidateDegenerateTraffic(t *testing.T) {
	cases := []struct {
		name  string
		bytes float64
		ok    bool
	}{
		{"zero", 0, true},
		{"positive", 1024, true},
		{"negative", -1, false},
		{"nan", math.NaN(), false},
		{"+inf", math.Inf(1), false},
		{"-inf", math.Inf(-1), false},
	}
	for _, c := range cases {
		op := Op{Name: c.name, Kind: OpOther, OtherBytes: c.bytes, Count: 1}
		if err := op.Validate(); (err == nil) != c.ok {
			t.Errorf("%s traffic: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestGraphValidateBadEdges(t *testing.T) {
	base := func() Graph { return chainGemm("a", "b", "c") }

	g := base()
	g.Ops[1].Inputs = []int{5}
	if err := g.Validate(); err == nil {
		t.Error("out-of-range input accepted")
	}
	g = base()
	g.Ops[1].Inputs = []int{-1}
	if err := g.Validate(); err == nil {
		t.Error("negative input accepted")
	}
	g = base()
	g.Ops[1].Inputs = []int{1}
	if err := g.Validate(); err == nil {
		t.Error("self-edge accepted")
	}
	g = base()
	g.Ops[0].Inputs = []int{2}
	g.Ops[2].Inputs = []int{0}
	if err := g.Validate(); err == nil {
		t.Error("dependency cycle accepted")
	}
}

func TestDepsChainDefaultAndExplicit(t *testing.T) {
	g := chainGemm("a", "b", "c")
	if d := g.Deps(0); len(d) != 0 {
		t.Errorf("first op deps %v, want none", d)
	}
	if d := g.Deps(2); !reflect.DeepEqual(d, []int{1}) {
		t.Errorf("chain default deps %v, want [1]", d)
	}
	g.Ops[2].Inputs = []int{0}
	if d := g.Deps(2); !reflect.DeepEqual(d, []int{0}) {
		t.Errorf("explicit deps %v, want [0]", d)
	}
	g.Ops[2].Inputs = []int{}
	if d := g.Deps(2); len(d) != 0 {
		t.Errorf("explicit source deps %v, want none", d)
	}
}

func TestStagesChain(t *testing.T) {
	g := chainGemm("a", "b", "c")
	stages, err := g.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stages, [][]int{{0}, {1}, {2}}) {
		t.Fatalf("chain stages %v", stages)
	}
}

func TestStagesDiamond(t *testing.T) {
	g := chainGemm("a", "b", "c", "d")
	g.Ops[0].Inputs = []int{}
	g.Ops[1].Inputs = []int{0}
	g.Ops[2].Inputs = []int{0}
	g.Ops[3].Inputs = []int{1, 2}
	stages, err := g.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stages, [][]int{{0}, {1, 2}, {3}}) {
		t.Fatalf("diamond stages %v", stages)
	}
}

func TestStagesForwardEdge(t *testing.T) {
	// Edges may point forward in the op list: op 0 consumes op 1's output.
	g := chainGemm("late", "early")
	g.Ops[0].Inputs = []int{1}
	g.Ops[1].Inputs = []int{}
	stages, err := g.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stages, [][]int{{1}, {0}}) {
		t.Fatalf("forward-edge stages %v", stages)
	}
}

func TestConsumersReverseDeps(t *testing.T) {
	g := chainGemm("a", "b", "c", "d")
	g.Ops[3].Inputs = []int{1}
	cons := g.Consumers()
	want := [][]int{{1}, {2, 3}, nil, nil}
	if !reflect.DeepEqual(cons, want) {
		t.Fatalf("consumers %v, want %v", cons, want)
	}
}

// TestLlamaExplicitEdges checks the decode graph's dataflow edges: the graph
// validates, remains a strict per-layer chain (qkv → attention → o_proj →
// ffn_up → ffn_down → elementwise), and layers link through elementwise.
func TestLlamaExplicitEdges(t *testing.T) {
	g := Llama2Decode(1, 64)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stages, err := g.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 6*llamaLayers {
		t.Fatalf("%d stages, want %d (strict chain)", len(stages), 6*llamaLayers)
	}
	for s, stage := range stages {
		if len(stage) != 1 {
			t.Fatalf("stage %d has %d ops, want 1", s, len(stage))
		}
	}
	// Stage order within layer 0: qkv(0), attention(4), o_proj(1),
	// ffn_up(2), ffn_down(3), elementwise(5).
	wantOrder := []int{0, 4, 1, 2, 3, 5}
	for s, want := range wantOrder {
		if stages[s][0] != want {
			t.Fatalf("stage %d runs op %d, want %d", s, stages[s][0], want)
		}
	}
	// Prefill shares the structure.
	if err := Llama2Prefill(2, 128).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildModelRegistry(t *testing.T) {
	for _, name := range ModelNames() {
		g, err := BuildModel(name, ModelDims{})
		if err != nil {
			t.Fatalf("%s with default dims: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s graph invalid: %v", name, err)
		}
	}
	if _, err := BuildModel("no-such-model", ModelDims{}); err == nil {
		t.Fatal("unknown model accepted")
	}
	// Bad dimensions return errors instead of panicking like the raw
	// builders do.
	if _, err := BuildModel("bert-base", ModelDims{Seq: -1}); err == nil {
		t.Fatal("negative seq accepted")
	}
	if _, err := BuildModel("resnet18", ModelDims{Resolution: 8}); err == nil {
		t.Fatal("sub-minimum resolution accepted")
	}
	if _, err := BuildModel("llama2-decode", ModelDims{KVLen: -3}); err == nil {
		t.Fatal("negative kv accepted")
	}
}
