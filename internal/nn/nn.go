// Package nn provides the operator-graph representation used by the
// end-to-end experiments (§5.2.2–§5.2.4): each evaluated model (the
// BERT-family language models, the TorchVision CNNs, and Llama2-13b) is
// expressed as the sequence of GEMM/convolution operators MikPoly replaces
// plus the aggregate memory traffic of the surrounding non-GEMM operators
// (layernorm, softmax, activation, pooling), which cost the same under every
// compared system and are carried as bandwidth-bound work.
package nn

import (
	"fmt"
	"math"

	"mikpoly/internal/hw"
	"mikpoly/internal/tensor"
)

// OpKind classifies graph operators.
type OpKind int

const (
	// OpGemm is a dense matrix multiplication (dynamic shape).
	OpGemm OpKind = iota
	// OpConv is a convolution executed through the implicit-GEMM path.
	OpConv
	// OpOther is bandwidth-bound non-GEMM work identical across systems.
	OpOther
)

func (k OpKind) String() string {
	switch k {
	case OpGemm:
		return "gemm"
	case OpConv:
		return "conv"
	case OpOther:
		return "other"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operator instance in a model graph.
type Op struct {
	// Name labels the operator ("layer3/ffn_up").
	Name string
	// Kind selects the payload fields.
	Kind OpKind
	// Gemm is the GEMM shape (the lowering for OpConv).
	Gemm tensor.GemmShape
	// Conv is the original convolution geometry for OpConv.
	Conv tensor.ConvShape
	// Count repeats the operator (e.g., per-head attention GEMMs). The
	// Count instances are mutually independent and may co-schedule.
	Count int
	// OtherBytes is the memory traffic of an OpOther operator.
	OtherBytes float64
	// Elementwise names the pure elementwise function of an OpOther
	// operator ("relu", "gelu"): such an op can fold into the epilogue of
	// a fused GEMM chain. Empty marks opaque bandwidth-bound work
	// (layernorm, softmax, pooling) that cannot.
	Elementwise string
	// DType is the operator's element type; empty means the default
	// ("f32"). A fused chain requires every member to agree, so a
	// mixed-precision boundary legally blocks fusion.
	DType string
	// Inputs lists the indices of the ops whose outputs this op consumes.
	// nil keeps the default chain dependency (the preceding op, if any);
	// a non-nil empty slice marks an explicit source op. Edges may point
	// forward or backward in the op list — Graph.Stages topologically
	// orders them and rejects cycles.
	Inputs []int
}

// Validate checks internal consistency.
func (o Op) Validate() error {
	if o.Count < 1 {
		return fmt.Errorf("nn: op %q has count %d", o.Name, o.Count)
	}
	switch o.Kind {
	case OpGemm:
		if !o.Gemm.Valid() {
			return fmt.Errorf("nn: op %q has invalid GEMM shape %v", o.Name, o.Gemm)
		}
	case OpConv:
		if !o.Conv.Valid() {
			return fmt.Errorf("nn: op %q has invalid conv shape %v", o.Name, o.Conv)
		}
		if o.Gemm != o.Conv.GemmShape() {
			return fmt.Errorf("nn: op %q GEMM lowering mismatch", o.Name)
		}
	case OpOther:
		if o.OtherBytes < 0 || math.IsNaN(o.OtherBytes) || math.IsInf(o.OtherBytes, 0) {
			return fmt.Errorf("nn: op %q has invalid traffic %g", o.Name, o.OtherBytes)
		}
	default:
		return fmt.Errorf("nn: op %q has unknown kind %d", o.Name, int(o.Kind))
	}
	if o.Elementwise != "" && o.Kind != OpOther {
		return fmt.Errorf("nn: op %q is %v but declares elementwise function %q", o.Name, o.Kind, o.Elementwise)
	}
	return nil
}

// EffectiveDType resolves the operator's element type with the "f32"
// default, so an unset DType and an explicit "f32" compare equal.
func (o Op) EffectiveDType() string {
	if o.DType == "" {
		return "f32"
	}
	return o.DType
}

// OtherCycles converts an OpOther's traffic to device cycles at full global
// bandwidth (fused elementwise kernels are bandwidth-bound on both
// platforms).
func (o Op) OtherCycles(h hw.Hardware) float64 {
	return o.OtherBytes / h.GlobalBytesPerCycle
}

// Graph is one model instantiated at concrete dynamic-input settings.
type Graph struct {
	// Name is "model@inputs", e.g. "bert-base@seq128".
	Name string
	Ops  []Op
}

// Validate checks every operator and the dependency structure.
func (g Graph) Validate() error {
	if len(g.Ops) == 0 {
		return fmt.Errorf("nn: graph %q has no operators", g.Name)
	}
	for _, o := range g.Ops {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("graph %q: %w", g.Name, err)
		}
	}
	if _, err := g.Stages(); err != nil {
		return fmt.Errorf("graph %q: %w", g.Name, err)
	}
	return nil
}

// Deps returns the effective dependency list of op i: its explicit Inputs
// edges, or — when Inputs is nil — the chain default (the preceding op).
func (g Graph) Deps(i int) []int {
	if o := g.Ops[i]; o.Inputs != nil {
		return o.Inputs
	}
	if i == 0 {
		return nil
	}
	return []int{i - 1}
}

// Stages returns the topological schedule of the graph: stage s holds the
// indices of ops whose dependencies all complete in stages < s (each stage
// is the set of ops at equal longest-path depth). Ops sharing a stage are
// mutually independent and may be co-scheduled on the device. An op index
// out of range, a self-edge, or a dependency cycle is an error.
func (g Graph) Stages() ([][]int, error) {
	n := len(g.Ops)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i := 0; i < n; i++ {
		for _, d := range g.Deps(i) {
			if d < 0 || d >= n {
				return nil, fmt.Errorf("nn: op %q input %d out of range [0,%d)", g.Ops[i].Name, d, n)
			}
			if d == i {
				return nil, fmt.Errorf("nn: op %q depends on itself", g.Ops[i].Name)
			}
			succ[d] = append(succ[d], i)
			indeg[i]++
		}
	}
	// Kahn's algorithm by levels, visiting ready ops in index order so the
	// schedule is deterministic.
	var stages [][]int
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	placed := 0
	for len(ready) > 0 {
		stage := ready
		stages = append(stages, stage)
		placed += len(stage)
		ready = nil
		for _, i := range stage {
			for _, s := range succ[i] {
				indeg[s]--
				if indeg[s] == 0 {
					ready = append(ready, s)
				}
			}
		}
	}
	if placed != n {
		return nil, fmt.Errorf("nn: graph has a dependency cycle (%d of %d ops unreachable)", n-placed, n)
	}
	return stages, nil
}

// Consumers returns, per op, the indices of the ops that read its output —
// the reverse adjacency of Deps, used for buffer liveness.
func (g Graph) Consumers() [][]int {
	out := make([][]int, len(g.Ops))
	for i := range g.Ops {
		for _, d := range g.Deps(i) {
			if d >= 0 && d < len(g.Ops) {
				out[d] = append(out[d], i)
			}
		}
	}
	return out
}

// GemmShapes returns the distinct GEMM shapes in the graph with their total
// repeat counts — the planning workload a dynamic-shape compiler sees.
func (g Graph) GemmShapes() map[tensor.GemmShape]int {
	out := make(map[tensor.GemmShape]int)
	for _, o := range g.Ops {
		if o.Kind == OpGemm || o.Kind == OpConv {
			out[o.Gemm] += o.Count
		}
	}
	return out
}

// TotalFLOPs sums the GEMM work of the graph.
func (g Graph) TotalFLOPs() float64 {
	var f float64
	for _, o := range g.Ops {
		if o.Kind == OpGemm || o.Kind == OpConv {
			f += o.Gemm.FLOPs() * float64(o.Count)
		}
	}
	return f
}

// gemm appends a GEMM op.
func (g *Graph) gemm(name string, m, n, k, count int) {
	g.Ops = append(g.Ops, Op{
		Name: name, Kind: OpGemm,
		Gemm:  tensor.GemmShape{M: m, N: n, K: k},
		Count: count,
	})
}

// conv appends a convolution op via its implicit-GEMM lowering.
func (g *Graph) conv(name string, cs tensor.ConvShape, count int) {
	g.Ops = append(g.Ops, Op{
		Name: name, Kind: OpConv,
		Conv: cs, Gemm: cs.GemmShape(),
		Count: count,
	})
}

// other appends bandwidth-bound non-GEMM work.
func (g *Graph) other(name string, bytes float64, count int) {
	g.Ops = append(g.Ops, Op{Name: name, Kind: OpOther, OtherBytes: bytes, Count: count})
}
