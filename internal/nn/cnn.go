package nn

import (
	"fmt"

	"mikpoly/internal/tensor"
)

// CNNBuilder instantiates one of the TorchVision models of Fig. 9 for a
// (batch, resolution) input — the dynamic dimensions of the CNN experiments
// (batch 2^0..2^7, resolution 64·i for i = 1..10).
type CNNBuilder func(batch, res int) Graph

// CNNModels returns the Fig. 9 model set.
func CNNModels() map[string]CNNBuilder {
	return map[string]CNNBuilder{
		"alexnet":   AlexNet,
		"googlenet": GoogLeNet,
		"resnet18":  ResNet18,
		"vgg11":     VGG11,
	}
}

// CNNBatchSizes returns the Fig. 9 batch sweep 2^0..2^7.
func CNNBatchSizes() []int {
	var out []int
	for i := 0; i <= 7; i++ {
		out = append(out, 1<<i)
	}
	return out
}

// CNNResolutions returns the Fig. 9 resolution sweep 64·i, i = 1..10.
func CNNResolutions() []int {
	var out []int
	for i := 1; i <= 10; i++ {
		out = append(out, 64*i)
	}
	return out
}

// cnnState tracks activation geometry while a builder lays down layers.
type cnnState struct {
	g     *Graph
	batch int
	c     int // current channels
	h, w  int // current spatial dims
}

func checkCNNInput(batch, res int) {
	if batch < 1 || res < 16 {
		panic(fmt.Sprintf("nn: invalid CNN input batch=%d res=%d", batch, res))
	}
}

// conv lays down a convolution and updates the activation geometry.
func (s *cnnState) conv(name string, outC, k, stride, pad int) {
	cs := tensor.ConvShape{
		Batch: s.batch, InC: s.c, InH: s.h, InW: s.w,
		OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
	}
	s.g.conv(name, cs, 1)
	oh, ow := cs.OutDims()
	s.c, s.h, s.w = outC, oh, ow
	// ReLU/batchnorm traffic: two passes over the output activations.
	s.g.other(name+"/act", 2*float64(s.batch*outC*oh*ow)*2, 1)
}

// pool halves the spatial dims (stride-2 pooling) and accounts its traffic.
func (s *cnnState) pool(name string) {
	s.g.other(name, float64(s.batch*s.c*s.h*s.w)*2, 1)
	s.h = max(1, s.h/2)
	s.w = max(1, s.w/2)
}

// fc lays down a fully-connected layer as a GEMM over the batch.
func (s *cnnState) fc(name string, out, in int) {
	s.g.gemm(name, s.batch, out, in, 1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AlexNet builds torchvision.models.alexnet (adaptive 6×6 pooling keeps the
// classifier input width fixed across resolutions).
func AlexNet(batch, res int) Graph {
	checkCNNInput(batch, res)
	g := Graph{Name: fmt.Sprintf("alexnet@b%d_r%d", batch, res)}
	s := &cnnState{g: &g, batch: batch, c: 3, h: res, w: res}
	s.conv("conv1", 64, 11, 4, 2)
	s.pool("pool1")
	s.conv("conv2", 192, 5, 1, 2)
	s.pool("pool2")
	s.conv("conv3", 384, 3, 1, 1)
	s.conv("conv4", 256, 3, 1, 1)
	s.conv("conv5", 256, 3, 1, 1)
	s.pool("pool5")
	s.fc("fc6", 4096, 256*6*6)
	s.fc("fc7", 4096, 4096)
	s.fc("fc8", 1000, 4096)
	return g
}

// VGG11 builds torchvision.models.vgg11.
func VGG11(batch, res int) Graph {
	checkCNNInput(batch, res)
	g := Graph{Name: fmt.Sprintf("vgg11@b%d_r%d", batch, res)}
	s := &cnnState{g: &g, batch: batch, c: 3, h: res, w: res}
	s.conv("conv1", 64, 3, 1, 1)
	s.pool("pool1")
	s.conv("conv2", 128, 3, 1, 1)
	s.pool("pool2")
	s.conv("conv3a", 256, 3, 1, 1)
	s.conv("conv3b", 256, 3, 1, 1)
	s.pool("pool3")
	s.conv("conv4a", 512, 3, 1, 1)
	s.conv("conv4b", 512, 3, 1, 1)
	s.pool("pool4")
	s.conv("conv5a", 512, 3, 1, 1)
	s.conv("conv5b", 512, 3, 1, 1)
	s.pool("pool5")
	s.fc("fc6", 4096, 512*7*7)
	s.fc("fc7", 4096, 4096)
	s.fc("fc8", 1000, 4096)
	return g
}

// ResNet18 builds torchvision.models.resnet18 (basic blocks, 1×1 projection
// shortcuts at stage transitions).
func ResNet18(batch, res int) Graph {
	checkCNNInput(batch, res)
	g := Graph{Name: fmt.Sprintf("resnet18@b%d_r%d", batch, res)}
	s := &cnnState{g: &g, batch: batch, c: 3, h: res, w: res}
	s.conv("conv1", 64, 7, 2, 3)
	s.pool("maxpool")
	stage := func(name string, outC, stride int) {
		s.conv(name+"/b1c1", outC, 3, stride, 1)
		s.conv(name+"/b1c2", outC, 3, 1, 1)
		if stride != 1 {
			// The 1×1 projection shortcut runs on the pre-stride input;
			// approximate its cost at the post-stride geometry.
			s.conv(name+"/down", outC, 1, 1, 0)
		}
		s.conv(name+"/b2c1", outC, 3, 1, 1)
		s.conv(name+"/b2c2", outC, 3, 1, 1)
	}
	stage("layer1", 64, 1)
	stage("layer2", 128, 2)
	stage("layer3", 256, 2)
	stage("layer4", 512, 2)
	s.fc("fc", 1000, 512)
	return g
}

// inceptionSpec lists the branch channel counts of one GoogLeNet inception
// block: 1×1, 3×3-reduce, 3×3, 5×5-reduce, 5×5, pool-projection.
type inceptionSpec struct {
	name                       string
	c1, c3r, c3, c5r, c5, pool int
}

var googlenetBlocks = []inceptionSpec{
	{"3a", 64, 96, 128, 16, 32, 32},
	{"3b", 128, 128, 192, 32, 96, 64},
	{"4a", 192, 96, 208, 16, 48, 64},
	{"4b", 160, 112, 224, 24, 64, 64},
	{"4c", 128, 128, 256, 24, 64, 64},
	{"4d", 112, 144, 288, 32, 64, 64},
	{"4e", 256, 160, 320, 32, 128, 128},
	{"5a", 256, 160, 320, 32, 128, 128},
	{"5b", 384, 192, 384, 48, 128, 128},
}

// GoogLeNet builds torchvision.models.googlenet.
func GoogLeNet(batch, res int) Graph {
	checkCNNInput(batch, res)
	g := Graph{Name: fmt.Sprintf("googlenet@b%d_r%d", batch, res)}
	s := &cnnState{g: &g, batch: batch, c: 3, h: res, w: res}
	s.conv("conv1", 64, 7, 2, 3)
	s.pool("pool1")
	s.conv("conv2", 64, 1, 1, 0)
	s.conv("conv3", 192, 3, 1, 1)
	s.pool("pool2")
	for i, blk := range googlenetBlocks {
		inC, h, w := s.c, s.h, s.w
		branch := func(name string, outC, k, pad int, fromC int) {
			cs := tensor.ConvShape{
				Batch: s.batch, InC: fromC, InH: h, InW: w,
				OutC: outC, KH: k, KW: k, Stride: 1, Pad: pad,
			}
			s.g.conv(fmt.Sprintf("inception%s/%s", blk.name, name), cs, 1)
		}
		branch("1x1", blk.c1, 1, 0, inC)
		branch("3x3r", blk.c3r, 1, 0, inC)
		branch("3x3", blk.c3, 3, 1, blk.c3r)
		branch("5x5r", blk.c5r, 1, 0, inC)
		branch("5x5", blk.c5, 5, 2, blk.c5r)
		branch("poolproj", blk.pool, 1, 0, inC)
		s.c = blk.c1 + blk.c3 + blk.c5 + blk.pool
		s.g.other(fmt.Sprintf("inception%s/concat", blk.name),
			float64(s.batch*s.c*h*w)*2, 1)
		// Stage-boundary pools after 3b (i==1) and 4e (i==6).
		if i == 1 || i == 6 {
			s.pool(fmt.Sprintf("pool_after_%s", blk.name))
		}
	}
	s.fc("fc", 1000, 1024)
	return g
}
