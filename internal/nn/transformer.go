package nn

import "fmt"

// TransformerConfig describes an encoder-only language model of the
// HuggingFace families evaluated in Fig. 8 / Table 5.
type TransformerConfig struct {
	Name   string
	Layers int
	Hidden int
	FFN    int
	Heads  int
}

// The four evaluated language models (§5.1): bert-base-uncased,
// distilbert-base-uncased, roberta-base, albert-xlarge-v2.
var (
	BERTBaseConfig     = TransformerConfig{Name: "bert-base", Layers: 12, Hidden: 768, FFN: 3072, Heads: 12}
	DistilBERTConfig   = TransformerConfig{Name: "distilbert", Layers: 6, Hidden: 768, FFN: 3072, Heads: 12}
	RoBERTaBaseConfig  = TransformerConfig{Name: "roberta-base", Layers: 12, Hidden: 768, FFN: 3072, Heads: 12}
	ALBERTXLargeConfig = TransformerConfig{Name: "albert-xlarge", Layers: 24, Hidden: 2048, FFN: 8192, Heads: 16}
)

// LanguageModels returns the Fig. 8 model set.
func LanguageModels() []TransformerConfig {
	return []TransformerConfig{BERTBaseConfig, DistilBERTConfig, RoBERTaBaseConfig, ALBERTXLargeConfig}
}

// Transformer instantiates the encoder graph for one (sequence length,
// batch) input — the dynamic dimensions of Fig. 8. Per layer it emits the
// fused QKV projection, the per-head attention score and context GEMMs, the
// output projection, and the two FFN GEMMs, plus the bandwidth-bound
// layernorm/softmax/GELU/residual traffic.
func Transformer(cfg TransformerConfig, seq, batch int) Graph {
	if seq < 1 || batch < 1 {
		panic(fmt.Sprintf("nn: invalid transformer input seq=%d batch=%d", seq, batch))
	}
	g := Graph{Name: fmt.Sprintf("%s@seq%d_b%d", cfg.Name, seq, batch)}
	rows := seq * batch
	headDim := cfg.Hidden / cfg.Heads
	for l := 0; l < cfg.Layers; l++ {
		p := func(op string) string { return fmt.Sprintf("layer%d/%s", l, op) }
		g.gemm(p("qkv_proj"), rows, 3*cfg.Hidden, cfg.Hidden, 1)
		g.gemm(p("attn_scores"), seq, seq, headDim, batch*cfg.Heads)
		g.gemm(p("attn_context"), seq, headDim, seq, batch*cfg.Heads)
		g.gemm(p("out_proj"), rows, cfg.Hidden, cfg.Hidden, 1)
		g.gemm(p("ffn_up"), rows, cfg.FFN, cfg.Hidden, 1)
		g.gemm(p("ffn_down"), rows, cfg.Hidden, cfg.FFN, 1)
		// layernorm ×2, softmax, GELU, residual adds: ~10 activation
		// passes of rows×hidden fp16 elements.
		g.other(p("elementwise"), 10*float64(rows)*float64(cfg.Hidden)*2, 1)
	}
	return g
}

// SequenceLengths returns the Fig. 8 / Table 5 input sweep: 150
// deterministic pseudo-random sentence lengths in [5, 500].
func SequenceLengths() []int {
	out := make([]int, 0, 150)
	s := uint64(424242)
	for len(out) < 150 {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		v := 5 + int((s*0x2545f4914f6cdd1d)%496)
		out = append(out, v)
	}
	return out
}
