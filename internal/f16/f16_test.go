package f16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},          // largest finite half
		{5.9604645e-8, 0x0001},   // smallest positive subnormal
		{6.1035156e-5, 0x0400},   // smallest positive normal
		{0.333251953125, 0x3555}, // closest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if back := ToFloat32(c.h); back != c.f {
			t.Errorf("ToFloat32(%#04x) = %g, want %g", c.h, back, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	h := FromFloat32(float32(math.Copysign(0, -1)))
	if h != 0x8000 {
		t.Fatalf("-0 = %#04x", h)
	}
	f := ToFloat32(0x8000)
	if f != 0 || !math.Signbit(float64(f)) {
		t.Fatalf("ToFloat32(-0) = %g (signbit %v)", f, math.Signbit(float64(f)))
	}
}

func TestInfAndNaN(t *testing.T) {
	if FromFloat32(float32(math.Inf(1))) != 0x7c00 {
		t.Fatal("+Inf wrong")
	}
	if FromFloat32(float32(math.Inf(-1))) != 0xfc00 {
		t.Fatal("-Inf wrong")
	}
	nan := FromFloat32(float32(math.NaN()))
	if nan&expMask16 != expMask16 || nan&fracMask16 == 0 {
		t.Fatalf("NaN encoding %#04x is not a NaN", nan)
	}
	if !math.IsNaN(float64(ToFloat32(nan))) {
		t.Fatal("NaN did not survive the round trip")
	}
	if !math.IsInf(float64(ToFloat32(0x7c00)), 1) || !math.IsInf(float64(ToFloat32(0xfc00)), -1) {
		t.Fatal("Inf decode wrong")
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(70000); got != 0x7c00 {
		t.Fatalf("70000 = %#04x, want +Inf", got)
	}
	if got := FromFloat32(-1e30); got != 0xfc00 {
		t.Fatalf("-1e30 = %#04x, want -Inf", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := FromFloat32(1e-10); got != 0 {
		t.Fatalf("1e-10 = %#04x, want +0", got)
	}
	if got := FromFloat32(-1e-10); got != 0x8000 {
		t.Fatalf("-1e-10 = %#04x, want -0", got)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 (0x3c00, even) and the next
	// half (0x3c01, odd) → rounds down to even.
	f := float32(1) + float32(1.0/(1<<11))
	if got := FromFloat32(f); got != 0x3c00 {
		t.Fatalf("halfway rounding = %#04x, want 0x3c00 (even)", got)
	}
	// 1 + 3·2^-11 is halfway between 0x3c01 (odd) and 0x3c02 (even) →
	// rounds up to even.
	f = float32(1) + 3*float32(1.0/(1<<11))
	if got := FromFloat32(f); got != 0x3c02 {
		t.Fatalf("halfway rounding = %#04x, want 0x3c02 (even)", got)
	}
}

// Property: every half value round-trips exactly through float32.
func TestAllHalfValuesRoundTrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		f := ToFloat32(uint16(h))
		if math.IsNaN(float64(f)) {
			continue // NaN payloads need not be preserved bit-exactly
		}
		back := FromFloat32(f)
		if back != uint16(h) {
			t.Fatalf("half %#04x -> %g -> %#04x", h, f, back)
		}
	}
}

// Property: quantization error of finite in-range values is within half an
// ULP (relative 2^-11 for normals).
func TestQuantizeErrorBound(t *testing.T) {
	f := func(bits uint32) bool {
		x := math.Float32frombits(bits)
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		if x > 65504 || x < -65504 || (x != 0 && math.Abs(float64(x)) < 6.2e-5) {
			return true // out of the normal-half range
		}
		q := Quantize(x)
		return math.Abs(float64(q-x)) <= math.Abs(float64(x))/2048+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization is idempotent.
func TestQuantizeIdempotent(t *testing.T) {
	f := func(bits uint32) bool {
		x := math.Float32frombits(bits)
		if math.IsNaN(float64(x)) {
			return true
		}
		q := Quantize(x)
		return Quantize(q) == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeSlice(t *testing.T) {
	xs := []float32{1.0 / 3, 2.0 / 3, 100.125}
	QuantizeSlice(xs)
	for _, x := range xs {
		if Quantize(x) != x {
			t.Fatalf("slice element %g not quantized", x)
		}
	}
}

func BenchmarkQuantize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Quantize(float32(i) * 0.001)
	}
}
