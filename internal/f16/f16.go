// Package f16 implements IEEE 754 binary16 (half precision) conversion.
// Both evaluated platforms compute GEMM on fp16 operands with fp32
// accumulation (Tensor Cores and the DaVinci cube unit); this package
// provides the operand quantization so numeric experiments can reproduce
// that precision regime, with round-to-nearest-even, subnormals, infinities
// and NaN handled per the standard.
package f16

import "math"

const (
	signMask16 = 0x8000
	expMask16  = 0x7c00
	fracMask16 = 0x03ff
)

// FromFloat32 converts a float32 to the nearest binary16 value
// (round-to-nearest-even), returning its bit pattern.
func FromFloat32(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & signMask16
	exp := int32(bits>>23) & 0xff
	frac := bits & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if frac != 0 {
			// NaN: preserve a payload bit so it stays a NaN.
			return sign | expMask16 | uint16(frac>>13) | 1
		}
		return sign | expMask16
	case exp == 0 && frac == 0: // signed zero
		return sign
	}

	// Unbiased exponent.
	e := exp - 127
	switch {
	case e > 15: // overflow → Inf
		return sign | expMask16
	case e >= -14: // normal range
		h := sign | uint16(e+15)<<10 | uint16(frac>>13)
		// Round to nearest even on the 13 dropped bits.
		round := frac & 0x1fff
		if round > 0x1000 || (round == 0x1000 && h&1 == 1) {
			h++ // may carry into the exponent; that is correct rounding
		}
		return h
	case e >= -24: // subnormal half
		// Implicit leading 1 becomes explicit; shift by the deficit.
		frac |= 0x800000
		shift := uint32(-e - 14 + 13)
		h := sign | uint16(frac>>shift)
		// Round to nearest even on the dropped bits.
		dropped := frac & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if dropped > halfway || (dropped == halfway && h&1 == 1) {
			h++
		}
		return h
	default: // underflow → signed zero
		return sign
	}
}

// ToFloat32 converts a binary16 bit pattern to float32 (exact).
func ToFloat32(h uint16) float32 {
	sign := uint32(h&signMask16) << 16
	exp := uint32(h&expMask16) >> 10
	frac := uint32(h & fracMask16)

	switch exp {
	case 0:
		if frac == 0 { // signed zero
			return math.Float32frombits(sign)
		}
		// Subnormal: value = ±frac × 2^-24 (exact in float32).
		v := float32(frac) * float32(1.0/(1<<24))
		if sign != 0 {
			v = -v
		}
		return v
	case 0x1f:
		if frac != 0 {
			return float32(math.NaN())
		}
		if sign != 0 {
			return float32(math.Inf(-1))
		}
		return float32(math.Inf(1))
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
	}
}

// Quantize rounds a float32 through binary16 and back — the precision loss
// an fp16 operand suffers when staged into M_local.
func Quantize(f float32) float32 { return ToFloat32(FromFloat32(f)) }

// QuantizeSlice quantizes in place.
func QuantizeSlice(xs []float32) {
	for i, x := range xs {
		xs[i] = Quantize(x)
	}
}
