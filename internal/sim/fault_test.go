package sim

import (
	"testing"

	"mikpoly/internal/hw"
)

// faultTestHW is a small 4-PE device so dropout effects are easy to reason
// about.
func faultTestHW(sched hw.Scheduler) hw.Hardware {
	h := hw.A100()
	h.NumPEs = 4
	h.Scheduler = sched
	return h
}

func computeTask() Task {
	return Task{ComputeCycles: 1000, MemBytes: 1, StartupCycles: 10}
}

func memTask(h hw.Hardware) Task {
	// Streams enough bytes that even a full per-task bandwidth share keeps
	// the task memory-bound.
	return Task{ComputeCycles: 1, MemBytes: 1000 * perTaskBandwidthCap(h), StartupCycles: 0}
}

func repeat(t Task, n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = t
	}
	return out
}

func TestFaultsValidate(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	cases := []struct {
		name string
		f    Faults
		ok   bool
	}{
		{"zero value", Faults{}, true},
		{"drop one", Faults{DropPEs: []int{1}}, true},
		{"drop all", Faults{DropPEs: []int{0, 1, 2, 3}}, false},
		{"drop dup not all", Faults{DropPEs: []int{1, 1, 2}}, true},
		{"drop out of range", Faults{DropPEs: []int{4}}, false},
		{"slow ok", Faults{SlowPE: map[int]float64{0: 2}}, true},
		{"slow below 1", Faults{SlowPE: map[int]float64{0: 0.5}}, false},
		{"slow out of range", Faults{SlowPE: map[int]float64{9: 2}}, false},
		{"bandwidth ok", Faults{Bandwidth: 0.5}, true},
		{"bandwidth above 1", Faults{Bandwidth: 1.5}, false},
		{"rate ok", Faults{TaskFaultRate: 0.3}, true},
		{"rate above 1", Faults{TaskFaultRate: 1.1}, false},
	}
	for _, c := range cases {
		err := c.f.Validate(h)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

func TestPEDropoutStretchesMakespan(t *testing.T) {
	for _, sched := range []hw.Scheduler{hw.ScheduleDynamic, hw.ScheduleStaticMaxMin} {
		h := faultTestHW(sched)
		tasks := repeat(computeTask(), 4)
		healthy := Run(h, tasks)
		degraded, err := RunWithFaults(h, tasks, Faults{DropPEs: []int{2, 3}})
		if err != nil {
			t.Fatal(err)
		}
		// 4 tasks on 4 PEs take one wave; on 2 live PEs, two waves.
		if degraded.Cycles < 1.8*healthy.Cycles {
			t.Fatalf("sched %v: dropout makespan %g, healthy %g — expected ~2x", sched, degraded.Cycles, healthy.Cycles)
		}
		if degraded.PEBusy[2] != 0 || degraded.PEBusy[3] != 0 {
			t.Fatalf("sched %v: dropped PEs ran work: %v", sched, degraded.PEBusy)
		}
	}
}

func TestPESlowdownStretchesCompute(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	tasks := repeat(computeTask(), 1)
	healthy := Run(h, tasks)
	slow, err := RunWithFaults(h, tasks, Faults{SlowPE: map[int]float64{0: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// The lone task lands on PE 0: startup + 3x compute.
	want := computeTask().StartupCycles + 3*computeTask().ComputeCycles
	if slow.Cycles < 0.99*want || slow.Cycles <= healthy.Cycles {
		t.Fatalf("slowdown makespan %g, healthy %g, want ~%g", slow.Cycles, healthy.Cycles, want)
	}
}

func TestBandwidthDegradationStretchesStreaming(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	tasks := repeat(memTask(h), 1)
	healthy := Run(h, tasks)
	degraded, err := RunWithFaults(h, tasks, Faults{Bandwidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Cycles < 1.9*healthy.Cycles {
		t.Fatalf("half bandwidth makespan %g vs healthy %g — expected ~2x", degraded.Cycles, healthy.Cycles)
	}
}

func TestTransientTaskFaultsDeterministic(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	tasks := repeat(computeTask(), 64)

	none, err := RunWithFaults(h, tasks, Faults{Seed: 1, TaskFaultRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if none.FaultedTasks != 0 {
		t.Fatalf("rate 0 produced %d faults", none.FaultedTasks)
	}

	all, err := RunWithFaults(h, tasks, Faults{Seed: 1, TaskFaultRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if all.FaultedTasks != len(tasks) {
		t.Fatalf("rate 1 faulted %d/%d tasks", all.FaultedTasks, len(tasks))
	}

	f := Faults{Seed: 42, TaskFaultRate: 0.25}
	r1, err := RunWithFaults(h, tasks, f)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunWithFaults(h, tasks, f)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FaultedTasks != r2.FaultedTasks || r1.Cycles != r2.Cycles {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
	if r1.FaultedTasks == 0 || r1.FaultedTasks == len(tasks) {
		t.Fatalf("rate 0.25 faulted %d/%d tasks — implausible stream", r1.FaultedTasks, len(tasks))
	}

	// A different salt (retry attempt) realizes a different fault pattern
	// over many tasks, while staying reproducible.
	f2 := f
	f2.Salt = 1
	r3, err := RunWithFaults(h, tasks, f2)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunWithFaults(h, tasks, f2)
	if err != nil {
		t.Fatal(err)
	}
	if r3.FaultedTasks != r4.FaultedTasks {
		t.Fatalf("salted run not reproducible: %d vs %d", r3.FaultedTasks, r4.FaultedTasks)
	}
}

func TestRunWithFaultsMatchesRunWhenHealthy(t *testing.T) {
	for _, sched := range []hw.Scheduler{hw.ScheduleDynamic, hw.ScheduleStaticMaxMin} {
		h := faultTestHW(sched)
		tasks := repeat(computeTask(), 11)
		want := Run(h, tasks)
		got, err := RunWithFaults(h, tasks, Faults{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != want.Cycles || got.NumTasks != want.NumTasks || got.FaultedTasks != 0 {
			t.Fatalf("sched %v: healthy injection diverged: %+v vs %+v", sched, got, want)
		}
	}
}

func TestRunWithFaultsEmptyAndInvalid(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	res, err := RunWithFaults(h, nil, Faults{})
	if err != nil || res.Cycles != 0 {
		t.Fatalf("empty task list: %+v, %v", res, err)
	}
	if _, err := RunWithFaults(h, repeat(computeTask(), 1), Faults{DropPEs: []int{0, 1, 2, 3}}); err == nil {
		t.Fatal("all-dropped config accepted")
	}
}
