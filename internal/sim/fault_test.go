package sim

import (
	"math"
	"reflect"
	"testing"

	"mikpoly/internal/hw"
)

// faultTestHW is a small 4-PE device so dropout effects are easy to reason
// about.
func faultTestHW(sched hw.Scheduler) hw.Hardware {
	h := hw.A100()
	h.NumPEs = 4
	h.Scheduler = sched
	return h
}

func computeTask() Task {
	return Task{ComputeCycles: 1000, MemBytes: 1, StartupCycles: 10}
}

func memTask(h hw.Hardware) Task {
	// Streams enough bytes that even a full per-task bandwidth share keeps
	// the task memory-bound.
	return Task{ComputeCycles: 1, MemBytes: 1000 * perTaskBandwidthCap(h), StartupCycles: 0}
}

func repeat(t Task, n int) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = t
	}
	return out
}

func TestFaultsValidate(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	cases := []struct {
		name string
		f    Faults
		ok   bool
	}{
		{"zero value", Faults{}, true},
		{"drop one", Faults{DropPEs: []int{1}}, true},
		{"drop all", Faults{DropPEs: []int{0, 1, 2, 3}}, false},
		{"drop dup not all", Faults{DropPEs: []int{1, 1, 2}}, true},
		{"drop out of range", Faults{DropPEs: []int{4}}, false},
		{"slow ok", Faults{SlowPE: map[int]float64{0: 2}}, true},
		{"slow below 1", Faults{SlowPE: map[int]float64{0: 0.5}}, false},
		{"slow out of range", Faults{SlowPE: map[int]float64{9: 2}}, false},
		{"bandwidth ok", Faults{Bandwidth: 0.5}, true},
		{"bandwidth above 1", Faults{Bandwidth: 1.5}, false},
		{"rate ok", Faults{TaskFaultRate: 0.3}, true},
		{"rate above 1", Faults{TaskFaultRate: 1.1}, false},
		// NaN fails every <,> comparison, so naive range checks accept it.
		{"bandwidth NaN", Faults{Bandwidth: math.NaN()}, false},
		{"bandwidth +Inf", Faults{Bandwidth: math.Inf(1)}, false},
		{"bandwidth -Inf", Faults{Bandwidth: math.Inf(-1)}, false},
		{"rate NaN", Faults{TaskFaultRate: math.NaN()}, false},
		{"rate +Inf", Faults{TaskFaultRate: math.Inf(1)}, false},
		{"slow NaN", Faults{SlowPE: map[int]float64{0: math.NaN()}}, false},
		{"slow +Inf", Faults{SlowPE: map[int]float64{0: math.Inf(1)}}, false},
		{"death ok", Faults{PEDeathCycle: map[int]float64{1: 500}}, true},
		{"death at zero", Faults{PEDeathCycle: map[int]float64{1: 0}}, true},
		{"death negative", Faults{PEDeathCycle: map[int]float64{1: -1}}, false},
		{"death NaN", Faults{PEDeathCycle: map[int]float64{1: math.NaN()}}, false},
		{"death Inf", Faults{PEDeathCycle: map[int]float64{1: math.Inf(1)}}, false},
		{"death out of range", Faults{PEDeathCycle: map[int]float64{7: 10}}, false},
		{"brownout ok", Faults{Brownout: &Brownout{StartCycle: 10, Duration: 100, Factor: 0.5}}, true},
		{"brownout zero duration", Faults{Brownout: &Brownout{Duration: 0, Factor: 0.5}}, false},
		{"brownout zero factor", Faults{Brownout: &Brownout{Duration: 10, Factor: 0}}, false},
		{"brownout factor NaN", Faults{Brownout: &Brownout{Duration: 10, Factor: math.NaN()}}, false},
		{"brownout factor above 1", Faults{Brownout: &Brownout{Duration: 10, Factor: 1.5}}, false},
		{"brownout start NaN", Faults{Brownout: &Brownout{StartCycle: math.NaN(), Duration: 10, Factor: 0.5}}, false},
		{"brownout duration Inf", Faults{Brownout: &Brownout{Duration: math.Inf(1), Factor: 0.5}}, false},
		{"sticky ok", Faults{StickyFaults: map[int]int{2: 3}}, true},
		{"sticky negative", Faults{StickyFaults: map[int]int{2: -1}}, false},
		{"sticky out of range", Faults{StickyFaults: map[int]int{5: 1}}, false},
	}
	for _, c := range cases {
		err := c.f.Validate(h)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
}

func TestPEDropoutStretchesMakespan(t *testing.T) {
	for _, sched := range []hw.Scheduler{hw.ScheduleDynamic, hw.ScheduleStaticMaxMin} {
		h := faultTestHW(sched)
		tasks := repeat(computeTask(), 4)
		healthy := Run(h, tasks)
		degraded, err := RunWithFaults(h, tasks, Faults{DropPEs: []int{2, 3}})
		if err != nil {
			t.Fatal(err)
		}
		// 4 tasks on 4 PEs take one wave; on 2 live PEs, two waves.
		if degraded.Cycles < 1.8*healthy.Cycles {
			t.Fatalf("sched %v: dropout makespan %g, healthy %g — expected ~2x", sched, degraded.Cycles, healthy.Cycles)
		}
		if degraded.PEBusy[2] != 0 || degraded.PEBusy[3] != 0 {
			t.Fatalf("sched %v: dropped PEs ran work: %v", sched, degraded.PEBusy)
		}
	}
}

func TestPESlowdownStretchesCompute(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	tasks := repeat(computeTask(), 1)
	healthy := Run(h, tasks)
	slow, err := RunWithFaults(h, tasks, Faults{SlowPE: map[int]float64{0: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// The lone task lands on PE 0: startup + 3x compute.
	want := computeTask().StartupCycles + 3*computeTask().ComputeCycles
	if slow.Cycles < 0.99*want || slow.Cycles <= healthy.Cycles {
		t.Fatalf("slowdown makespan %g, healthy %g, want ~%g", slow.Cycles, healthy.Cycles, want)
	}
}

func TestBandwidthDegradationStretchesStreaming(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	tasks := repeat(memTask(h), 1)
	healthy := Run(h, tasks)
	degraded, err := RunWithFaults(h, tasks, Faults{Bandwidth: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Cycles < 1.9*healthy.Cycles {
		t.Fatalf("half bandwidth makespan %g vs healthy %g — expected ~2x", degraded.Cycles, healthy.Cycles)
	}
}

func TestTransientTaskFaultsDeterministic(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	tasks := repeat(computeTask(), 64)

	none, err := RunWithFaults(h, tasks, Faults{Seed: 1, TaskFaultRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if none.FaultedTasks != 0 {
		t.Fatalf("rate 0 produced %d faults", none.FaultedTasks)
	}

	all, err := RunWithFaults(h, tasks, Faults{Seed: 1, TaskFaultRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if all.FaultedTasks != len(tasks) {
		t.Fatalf("rate 1 faulted %d/%d tasks", all.FaultedTasks, len(tasks))
	}

	f := Faults{Seed: 42, TaskFaultRate: 0.25}
	r1, err := RunWithFaults(h, tasks, f)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunWithFaults(h, tasks, f)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FaultedTasks != r2.FaultedTasks || r1.Cycles != r2.Cycles {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
	if r1.FaultedTasks == 0 || r1.FaultedTasks == len(tasks) {
		t.Fatalf("rate 0.25 faulted %d/%d tasks — implausible stream", r1.FaultedTasks, len(tasks))
	}

	// A different salt (retry attempt) realizes a different fault pattern
	// over many tasks, while staying reproducible.
	f2 := f
	f2.Salt = 1
	r3, err := RunWithFaults(h, tasks, f2)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunWithFaults(h, tasks, f2)
	if err != nil {
		t.Fatal(err)
	}
	if r3.FaultedTasks != r4.FaultedTasks {
		t.Fatalf("salted run not reproducible: %d vs %d", r3.FaultedTasks, r4.FaultedTasks)
	}
}

func TestRunWithFaultsMatchesRunWhenHealthy(t *testing.T) {
	for _, sched := range []hw.Scheduler{hw.ScheduleDynamic, hw.ScheduleStaticMaxMin} {
		h := faultTestHW(sched)
		tasks := repeat(computeTask(), 11)
		want := Run(h, tasks)
		got, err := RunWithFaults(h, tasks, Faults{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != want.Cycles || got.NumTasks != want.NumTasks || got.FaultedTasks != 0 {
			t.Fatalf("sched %v: healthy injection diverged: %+v vs %+v", sched, got, want)
		}
	}
}

func TestRunWithFaultsEmptyAndInvalid(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	res, err := RunWithFaults(h, nil, Faults{})
	if err != nil || res.Cycles != 0 {
		t.Fatalf("empty task list: %+v, %v", res, err)
	}
	if _, err := RunWithFaults(h, repeat(computeTask(), 1), Faults{DropPEs: []int{0, 1, 2, 3}}); err == nil {
		t.Fatal("all-dropped config accepted")
	}
}

func TestPEDeathKillsInFlightAndStopsPlacement(t *testing.T) {
	for _, sched := range []hw.Scheduler{hw.ScheduleDynamic, hw.ScheduleStaticMaxMin} {
		h := faultTestHW(sched)
		tasks := repeat(computeTask(), 12) // 3 waves on 4 PEs
		healthy := Run(h, tasks)
		// Kill PE 1 mid first wave: its in-flight task is lost.
		f := Faults{PEDeathCycle: map[int]float64{1: 500}}
		res, err := RunWithFaults(h, tasks, f)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.DeadPEs; !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("sched %v: DeadPEs = %v, want [1]", sched, got)
		}
		if res.FaultedTasks < 1 {
			t.Fatalf("sched %v: in-flight task on dying PE not counted faulted", sched)
		}
		if res.Clean() {
			t.Fatalf("sched %v: death run reported clean", sched)
		}
		// PE 1 stops accruing busy time at the death cycle.
		if res.PEBusy[1] > 500+1 {
			t.Fatalf("sched %v: dead PE busy %g past death cycle", sched, res.PEBusy[1])
		}
		switch sched {
		case hw.ScheduleStaticMaxMin:
			// Statically assigned residual work strands.
			if res.StrandedTasks == 0 {
				t.Fatalf("static: no stranded tasks after mid-run death")
			}
			if res.NumTasks+res.StrandedTasks != len(tasks) {
				t.Fatalf("static: started %d + stranded %d != %d", res.NumTasks, res.StrandedTasks, len(tasks))
			}
		default:
			// The shared queue reroutes everything to survivors.
			if res.StrandedTasks != 0 {
				t.Fatalf("dynamic: %d tasks stranded despite live PEs", res.StrandedTasks)
			}
			if res.NumTasks != len(tasks) {
				t.Fatalf("dynamic: ran %d/%d tasks", res.NumTasks, len(tasks))
			}
			if res.Cycles <= healthy.Cycles {
				t.Fatalf("dynamic: death makespan %g not above healthy %g", res.Cycles, healthy.Cycles)
			}
		}
	}
}

func TestPEDeathAllPEsStrandsRemainder(t *testing.T) {
	for _, sched := range []hw.Scheduler{hw.ScheduleDynamic, hw.ScheduleStaticMaxMin} {
		h := faultTestHW(sched)
		tasks := repeat(computeTask(), 12)
		f := Faults{PEDeathCycle: map[int]float64{0: 100, 1: 100, 2: 100, 3: 100}}
		res, err := RunWithFaults(h, tasks, f)
		if err != nil {
			t.Fatalf("sched %v: %v", sched, err)
		}
		if got := res.DeadPEs; !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
			t.Fatalf("sched %v: DeadPEs = %v", sched, got)
		}
		// First wave of 4 died in flight; the rest never ran.
		if res.FaultedTasks != 4 || res.StrandedTasks != 8 {
			t.Fatalf("sched %v: faulted %d stranded %d, want 4/8", sched, res.FaultedTasks, res.StrandedTasks)
		}
	}
}

func TestBrownoutStretchesOnlyItsWindow(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	tasks := repeat(memTask(h), 4)
	healthy := Run(h, tasks)

	// A brownout covering the whole run behaves like run-long derating.
	whole := Faults{Brownout: &Brownout{StartCycle: 0, Duration: 1e12, Factor: 0.5}}
	rWhole, err := RunWithFaults(h, tasks, whole)
	if err != nil {
		t.Fatal(err)
	}
	if rWhole.Cycles < 1.9*healthy.Cycles {
		t.Fatalf("run-long brownout makespan %g vs healthy %g — expected ~2x", rWhole.Cycles, healthy.Cycles)
	}
	if rWhole.BandwidthDerate != 0.5 {
		t.Fatalf("BandwidthDerate = %g, want 0.5", rWhole.BandwidthDerate)
	}

	// A brownout that ends before the run finishes costs strictly less.
	partial := Faults{Brownout: &Brownout{StartCycle: 0, Duration: healthy.Cycles / 2, Factor: 0.5}}
	rPartial, err := RunWithFaults(h, tasks, partial)
	if err != nil {
		t.Fatal(err)
	}
	if !(healthy.Cycles < rPartial.Cycles && rPartial.Cycles < rWhole.Cycles) {
		t.Fatalf("partial brownout %g not between healthy %g and whole-run %g",
			rPartial.Cycles, healthy.Cycles, rWhole.Cycles)
	}

	// A brownout entirely after the run is a no-op (and not reported).
	after := Faults{Brownout: &Brownout{StartCycle: 10 * healthy.Cycles, Duration: 100, Factor: 0.5}}
	rAfter, err := RunWithFaults(h, tasks, after)
	if err != nil {
		t.Fatal(err)
	}
	if rAfter.Cycles != healthy.Cycles || rAfter.BandwidthDerate != 0 {
		t.Fatalf("future brownout changed the run: cycles %g (healthy %g), derate %g",
			rAfter.Cycles, healthy.Cycles, rAfter.BandwidthDerate)
	}
}

func TestStickyFaultStreakIsSaltIndependent(t *testing.T) {
	h := faultTestHW(hw.ScheduleStaticMaxMin)
	tasks := repeat(computeTask(), 16)
	f := Faults{StickyFaults: map[int]int{2: 3}}
	for salt := uint64(0); salt < 3; salt++ {
		f.Salt = salt
		res, err := RunWithFaults(h, tasks, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.FaultedTasks != 3 {
			t.Fatalf("salt %d: %d faults, want the sticky streak of 3", salt, res.FaultedTasks)
		}
		if len(res.PEFaults) == 0 || res.PEFaults[2] != 3 {
			t.Fatalf("salt %d: PEFaults = %v, want 3 on PE 2", salt, res.PEFaults)
		}
	}
}

func TestPersistentFaultsDeterministicUnderSeed(t *testing.T) {
	h := faultTestHW(hw.ScheduleDynamic)
	tasks := repeat(computeTask(), 32)
	f := Faults{
		Seed:          7,
		TaskFaultRate: 0.05,
		PEDeathCycle:  map[int]float64{3: 1500},
		Brownout:      &Brownout{StartCycle: 200, Duration: 900, Factor: 0.6},
		StickyFaults:  map[int]int{0: 2},
	}
	r1, err := RunWithFaults(h, tasks, f)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunWithFaults(h, tasks, f)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.FaultedTasks != r2.FaultedTasks ||
		r1.StrandedTasks != r2.StrandedTasks || !reflect.DeepEqual(r1.PEFaults, r2.PEFaults) ||
		!reflect.DeepEqual(r1.DeadPEs, r2.DeadPEs) {
		t.Fatalf("same config diverged:\n%+v\n%+v", r1, r2)
	}
}

func TestFaultsPersistent(t *testing.T) {
	if (Faults{Seed: 1, TaskFaultRate: 0.5}).Persistent() {
		t.Fatal("transient-only config reported persistent")
	}
	for _, f := range []Faults{
		{DropPEs: []int{1}},
		{SlowPE: map[int]float64{0: 2}},
		{Bandwidth: 0.5},
		{PEDeathCycle: map[int]float64{0: 10}},
		{Brownout: &Brownout{Duration: 10, Factor: 0.5}},
		{StickyFaults: map[int]int{0: 1}},
	} {
		if !f.Persistent() {
			t.Fatalf("%+v not reported persistent", f)
		}
	}
}

func TestChaosScheduleDeterministicAndValid(t *testing.T) {
	h := hw.A100()
	for seed := uint64(0); seed < 20; seed++ {
		a := ChaosSchedule(seed, h)
		b := ChaosSchedule(seed, h)
		if !reflect.DeepEqual(a.PEDeathCycle, b.PEDeathCycle) ||
			!reflect.DeepEqual(a.StickyFaults, b.StickyFaults) ||
			a.TaskFaultRate != b.TaskFaultRate ||
			(a.Brownout == nil) != (b.Brownout == nil) ||
			(a.Brownout != nil && *a.Brownout != *b.Brownout) {
			t.Fatalf("seed %d: schedule not deterministic:\n%+v\n%+v", seed, a, b)
		}
		if err := a.Validate(h); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		if len(a.PEDeathCycle) != 1 {
			t.Fatalf("seed %d: want exactly one PE death, got %v", seed, a.PEDeathCycle)
		}
	}
	// Different seeds should not all collapse onto the same schedule.
	if reflect.DeepEqual(ChaosSchedule(1, h).PEDeathCycle, ChaosSchedule(2, h).PEDeathCycle) &&
		reflect.DeepEqual(ChaosSchedule(2, h).PEDeathCycle, ChaosSchedule(3, h).PEDeathCycle) {
		t.Fatal("chaos schedules identical across seeds 1..3")
	}
}
