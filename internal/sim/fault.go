package sim

import (
	"fmt"
	"math"

	"mikpoly/internal/hw"
)

// Faults configures the deterministic fault-injection layer: a seeded model
// of degraded hardware that the scheduler and the serving layer above can be
// tested against. All effects are pure functions of (Seed, Salt) and the task
// list, so every injected run is exactly reproducible.
type Faults struct {
	// Seed drives the transient-fault pseudo-random stream.
	Seed uint64

	// Salt varies the fault pattern between otherwise identical runs —
	// the serving layer increments it per retry attempt so a transient
	// fault can clear on re-execution while staying deterministic.
	Salt uint64

	// DropPEs lists PEs that are offline: they accept no tasks. At least
	// one PE must remain live.
	DropPEs []int

	// SlowPE multiplies the compute time of tasks placed on a PE
	// (e.g. {3: 2.0} makes PE 3 compute half as fast). Factors must be
	// >= 1; unlisted PEs run at full speed.
	SlowPE map[int]float64

	// Bandwidth scales global memory bandwidth, in (0, 1]; 0 means
	// unchanged. 0.5 halves the device's bytes/cycle.
	Bandwidth float64

	// TaskFaultRate is the per-task probability in [0, 1] that a task
	// reports a transient execution fault (seeded, deterministic). Faulted
	// tasks still occupy their PE for the full duration — the fault is
	// detected at completion — and are counted in Result.FaultedTasks.
	TaskFaultRate float64
}

// Validate checks the configuration against a device.
func (f Faults) Validate(h hw.Hardware) error {
	dead := 0
	seen := make(map[int]bool)
	for _, pe := range f.DropPEs {
		if pe < 0 || pe >= h.NumPEs {
			return fmt.Errorf("sim: dropped PE %d out of range [0,%d)", pe, h.NumPEs)
		}
		if !seen[pe] {
			seen[pe] = true
			dead++
		}
	}
	if dead >= h.NumPEs {
		return fmt.Errorf("sim: all %d PEs dropped", h.NumPEs)
	}
	for pe, s := range f.SlowPE {
		if pe < 0 || pe >= h.NumPEs {
			return fmt.Errorf("sim: slowed PE %d out of range [0,%d)", pe, h.NumPEs)
		}
		if s < 1 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("sim: slowdown factor for PE %d must be >= 1 and finite, got %g", pe, s)
		}
	}
	if f.Bandwidth < 0 || f.Bandwidth > 1 {
		return fmt.Errorf("sim: bandwidth factor must be in (0,1] or 0 for unchanged, got %g", f.Bandwidth)
	}
	if f.TaskFaultRate < 0 || f.TaskFaultRate > 1 {
		return fmt.Errorf("sim: task fault rate must be in [0,1], got %g", f.TaskFaultRate)
	}
	return nil
}

// faultState is the per-run realization of a Faults config.
type faultState struct {
	dead []bool
	slow []float64
	rate float64
	base uint64 // mixed Seed+Salt stream origin
}

func newFaultState(h hw.Hardware, f Faults) *faultState {
	fs := &faultState{
		dead: make([]bool, h.NumPEs),
		slow: make([]float64, h.NumPEs),
		rate: f.TaskFaultRate,
		base: splitmix64(f.Seed ^ splitmix64(f.Salt+0x5bf0_3635)),
	}
	for i := range fs.slow {
		fs.slow[i] = 1
	}
	for _, pe := range f.DropPEs {
		fs.dead[pe] = true
	}
	for pe, s := range f.SlowPE {
		fs.slow[pe] = s
	}
	return fs
}

// taskFault decides deterministically whether the i-th started task reports a
// transient fault.
func (fs *faultState) taskFault(i int) bool {
	if fs.rate <= 0 {
		return false
	}
	if fs.rate >= 1 {
		return true
	}
	u := splitmix64(fs.base + uint64(i)*0x9e37_79b9_7f4a_7c15)
	return float64(u>>11)/(1<<53) < fs.rate
}

// splitmix64 is the SplitMix64 mixing function — a tiny, well-distributed
// seeded hash so fault decisions need no shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunWithFaults executes the task list on hardware h degraded by f: dropped
// PEs accept no work, slowed PEs stretch compute, global bandwidth is scaled,
// and tasks may report seeded transient faults (Result.FaultedTasks). The
// analytic fast path is never taken — degraded hardware breaks its
// wave-lockstep assumption — so results stay exact. Placement respects the
// device scheduler: the NPU's max-min static allocator only assigns to live
// PEs (a real deployment re-plans around a dead core), while the GPU's
// dynamic queue naturally routes around them.
func RunWithFaults(h hw.Hardware, tasks []Task, f Faults) (Result, error) {
	if err := h.Validate(); err != nil {
		return Result{}, err
	}
	if err := f.Validate(h); err != nil {
		return Result{}, err
	}
	if len(tasks) == 0 {
		return Result{PEBusy: make([]float64, h.NumPEs)}, nil
	}
	if f.Bandwidth > 0 {
		h.GlobalBytesPerCycle *= f.Bandwidth
	}
	fs := newFaultState(h, f)
	var res Result
	switch h.Scheduler {
	case hw.ScheduleStaticMaxMin:
		res = runEventLoopInner(h, staticAssign(h, tasks, fs.dead), nil, fs)
	default:
		res = runEventLoopInner(h, dynamicQueue(tasks), nil, fs)
	}
	return res, nil
}
