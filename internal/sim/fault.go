package sim

import (
	"fmt"
	"math"
	"sort"

	"mikpoly/internal/hw"
)

// Brownout is a bandwidth brownout: within [StartCycle, StartCycle+Duration)
// the device's global-memory bandwidth is multiplied by Factor. It models the
// persistent-but-bounded degradation a shared HBM controller shows under
// thermal throttling or a noisy co-tenant, as opposed to the run-long scaling
// of Faults.Bandwidth.
type Brownout struct {
	// StartCycle is the onset, in device cycles from run start.
	StartCycle float64
	// Duration is the window length in cycles; the window is half-open.
	Duration float64
	// Factor scales bandwidth inside the window, in (0, 1].
	Factor float64
}

// Faults configures the deterministic fault-injection layer: a seeded model
// of degraded hardware that the scheduler and the serving layer above can be
// tested against. All effects are pure functions of (Seed, Salt) and the task
// list, so every injected run is exactly reproducible.
//
// Faults split into two families the health layer above classifies:
//
//   - transient: TaskFaultRate draws per-task faults from the (Seed, Salt)
//     stream, so a retry under a different Salt can clear them;
//   - persistent: DropPEs, SlowPE, Bandwidth, PEDeathCycle, Brownout and
//     StickyFaults are salt-independent — the same degradation re-fires on
//     every attempt until the layer above re-plans around it.
type Faults struct {
	// Seed drives the transient-fault pseudo-random stream.
	Seed uint64

	// Salt varies the fault pattern between otherwise identical runs —
	// the serving layer increments it per retry attempt so a transient
	// fault can clear on re-execution while staying deterministic.
	Salt uint64

	// DropPEs lists PEs that are offline: they accept no tasks. At least
	// one PE must remain live.
	DropPEs []int

	// SlowPE multiplies the compute time of tasks placed on a PE
	// (e.g. {3: 2.0} makes PE 3 compute half as fast). Factors must be
	// >= 1; unlisted PEs run at full speed.
	SlowPE map[int]float64

	// Bandwidth scales global memory bandwidth, in (0, 1]; 0 means
	// unchanged. 0.5 halves the device's bytes/cycle.
	Bandwidth float64

	// TaskFaultRate is the per-task probability in [0, 1] that a task
	// reports a transient execution fault (seeded, deterministic). Faulted
	// tasks still occupy their PE for the full duration — the fault is
	// detected at completion — and are counted in Result.FaultedTasks.
	TaskFaultRate float64

	// PEDeathCycle schedules a permanent PE death: at the given cycle the
	// PE's in-flight task is lost (counted faulted) and the PE accepts no
	// further work for the rest of the run. Salt-independent: the same
	// config kills the same PE at the same cycle on every retry, so only
	// planning around the dead PE (a smaller H') clears it. Tasks
	// statically pre-assigned to a dead PE that never started are counted
	// in Result.StrandedTasks.
	PEDeathCycle map[int]float64

	// Brownout, when non-nil, derates global bandwidth inside its window.
	Brownout *Brownout

	// StickyFaults makes the next N tasks placed on a PE report faults
	// regardless of Salt — a sticky per-PE fault streak (a flaky core)
	// that blind retries cannot clear but quarantining can.
	StickyFaults map[int]int
}

// finite01 reports whether v is a finite value in [0, 1]. NaN fails every
// comparison, so the naive `v < 0 || v > 1` check lets it sail through —
// the explicit form rejects it.
func finite01(v float64) bool {
	return !math.IsNaN(v) && v >= 0 && v <= 1
}

// Validate checks the configuration against a device.
func (f Faults) Validate(h hw.Hardware) error {
	dead := 0
	seen := make(map[int]bool)
	for _, pe := range f.DropPEs {
		if pe < 0 || pe >= h.NumPEs {
			return fmt.Errorf("sim: dropped PE %d out of range [0,%d)", pe, h.NumPEs)
		}
		if !seen[pe] {
			seen[pe] = true
			dead++
		}
	}
	if dead >= h.NumPEs {
		return fmt.Errorf("sim: all %d PEs dropped", h.NumPEs)
	}
	for pe, s := range f.SlowPE {
		if pe < 0 || pe >= h.NumPEs {
			return fmt.Errorf("sim: slowed PE %d out of range [0,%d)", pe, h.NumPEs)
		}
		if s < 1 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("sim: slowdown factor for PE %d must be >= 1 and finite, got %g", pe, s)
		}
	}
	if !finite01(f.Bandwidth) {
		return fmt.Errorf("sim: bandwidth factor must be in (0,1] or 0 for unchanged, got %g", f.Bandwidth)
	}
	if !finite01(f.TaskFaultRate) {
		return fmt.Errorf("sim: task fault rate must be in [0,1], got %g", f.TaskFaultRate)
	}
	for pe, at := range f.PEDeathCycle {
		if pe < 0 || pe >= h.NumPEs {
			return fmt.Errorf("sim: death of PE %d out of range [0,%d)", pe, h.NumPEs)
		}
		if at < 0 || math.IsNaN(at) || math.IsInf(at, 0) {
			return fmt.Errorf("sim: death cycle for PE %d must be >= 0 and finite, got %g", pe, at)
		}
	}
	if b := f.Brownout; b != nil {
		if b.StartCycle < 0 || math.IsNaN(b.StartCycle) || math.IsInf(b.StartCycle, 0) {
			return fmt.Errorf("sim: brownout start must be >= 0 and finite, got %g", b.StartCycle)
		}
		if b.Duration <= 0 || math.IsNaN(b.Duration) || math.IsInf(b.Duration, 0) {
			return fmt.Errorf("sim: brownout duration must be > 0 and finite, got %g", b.Duration)
		}
		if !finite01(b.Factor) || b.Factor == 0 {
			return fmt.Errorf("sim: brownout factor must be in (0,1], got %g", b.Factor)
		}
	}
	for pe, n := range f.StickyFaults {
		if pe < 0 || pe >= h.NumPEs {
			return fmt.Errorf("sim: sticky faults on PE %d out of range [0,%d)", pe, h.NumPEs)
		}
		if n < 0 {
			return fmt.Errorf("sim: sticky fault count for PE %d must be >= 0, got %d", pe, n)
		}
	}
	return nil
}

// Persistent reports whether the config contains any salt-independent
// degradation a retry cannot clear.
func (f Faults) Persistent() bool {
	return len(f.DropPEs) > 0 || len(f.SlowPE) > 0 || f.Bandwidth > 0 ||
		len(f.PEDeathCycle) > 0 || f.Brownout != nil || len(f.StickyFaults) > 0
}

// faultState is the per-run realization of a Faults config.
type faultState struct {
	dead    []bool
	slow    []float64
	rate    float64
	base    uint64 // mixed Seed+Salt stream origin
	deathAt []float64
	sticky  []int
	brown   *Brownout

	// per-run outcome, folded into the Result by the event loop
	peFaults []int
	diedMid  []bool
	stranded int
}

func newFaultState(h hw.Hardware, f Faults) *faultState {
	fs := &faultState{
		dead:     make([]bool, h.NumPEs),
		slow:     make([]float64, h.NumPEs),
		rate:     f.TaskFaultRate,
		base:     splitmix64(f.Seed ^ splitmix64(f.Salt+0x5bf0_3635)),
		deathAt:  make([]float64, h.NumPEs),
		sticky:   make([]int, h.NumPEs),
		brown:    f.Brownout,
		peFaults: make([]int, h.NumPEs),
		diedMid:  make([]bool, h.NumPEs),
	}
	for i := range fs.slow {
		fs.slow[i] = 1
		fs.deathAt[i] = math.Inf(1)
	}
	for _, pe := range f.DropPEs {
		fs.dead[pe] = true
	}
	for pe, s := range f.SlowPE {
		fs.slow[pe] = s
	}
	for pe, at := range f.PEDeathCycle {
		fs.deathAt[pe] = at
	}
	for pe, n := range f.StickyFaults {
		fs.sticky[pe] = n
	}
	return fs
}

// taskFault decides deterministically whether the i-th started task reports a
// transient fault.
func (fs *faultState) taskFault(i int) bool {
	if fs.rate <= 0 {
		return false
	}
	if fs.rate >= 1 {
		return true
	}
	u := splitmix64(fs.base + uint64(i)*0x9e37_79b9_7f4a_7c15)
	return float64(u>>11)/(1<<53) < fs.rate
}

// bwFactor is the brownout multiplier at clock value now.
func (fs *faultState) bwFactor(now float64) float64 {
	if fs == nil || fs.brown == nil {
		return 1
	}
	if now+timeEps(now) >= fs.brown.StartCycle && now < fs.brown.StartCycle+fs.brown.Duration {
		return fs.brown.Factor
	}
	return 1
}

// deadPEs lists the PEs that died mid-run, sorted.
func (fs *faultState) deadPEs() []int {
	var out []int
	for pe, d := range fs.diedMid {
		if d {
			out = append(out, pe)
		}
	}
	sort.Ints(out)
	return out
}

// splitmix64 is the SplitMix64 mixing function — a tiny, well-distributed
// seeded hash so fault decisions need no shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunWithFaults executes the task list on hardware h degraded by f: dropped
// PEs accept no work, slowed PEs stretch compute, global bandwidth is scaled
// (with brownout windows applied on top), PEs may die permanently mid-run,
// and tasks may report seeded transient or sticky faults. The analytic fast
// path is never taken — degraded hardware breaks its wave-lockstep assumption
// — so results stay exact. Placement respects the device scheduler: the NPU's
// max-min static allocator only assigns to live PEs (a real deployment
// re-plans around a dead core), while the GPU's dynamic queue naturally
// routes around them. Work stranded on a mid-run death (statically assigned,
// never started) is reported in Result.StrandedTasks.
func RunWithFaults(h hw.Hardware, tasks []Task, f Faults) (Result, error) {
	if err := h.Validate(); err != nil {
		return Result{}, err
	}
	if err := f.Validate(h); err != nil {
		return Result{}, err
	}
	if len(tasks) == 0 {
		return Result{PEBusy: make([]float64, h.NumPEs)}, nil
	}
	if f.Bandwidth > 0 {
		h.GlobalBytesPerCycle *= f.Bandwidth
	}
	fs := newFaultState(h, f)
	var res Result
	switch h.Scheduler {
	case hw.ScheduleStaticMaxMin:
		res = runEventLoopInner(h, staticAssign(h, tasks, fs.dead), nil, fs)
	default:
		res = runEventLoopInner(h, dynamicQueue(tasks), nil, fs)
	}
	return res, nil
}

// ChaosSchedule derives a randomized-but-fully-deterministic fault schedule
// from a seed: one PE death at a mid-run cycle, a sticky fault streak on a
// second PE, usually a bandwidth brownout, and a low transient task-fault
// rate. Two calls with the same (seed, h) produce identical schedules — the
// contract the chaos harness's reproducibility invariant rests on. The
// transient rate is kept low so faults stay attributable: a uniform fault
// storm is systemic, not a per-PE health signal.
func ChaosSchedule(seed uint64, h hw.Hardware) Faults {
	r := func(i uint64) uint64 { return splitmix64(seed ^ splitmix64(i+0xc4a5)) }
	u01 := func(i uint64) float64 { return float64(r(i)>>11) / (1 << 53) }

	f := Faults{Seed: seed}
	deathPE := int(r(1) % uint64(h.NumPEs))
	f.PEDeathCycle = map[int]float64{
		// Mid-run for typical stage makespans on the modelled devices.
		deathPE: 2_000 + u01(2)*100_000,
	}
	stickyPE := int(r(3) % uint64(h.NumPEs))
	if stickyPE != deathPE {
		f.StickyFaults = map[int]int{stickyPE: 2 + int(r(4)%6)}
	}
	if u01(5) < 0.75 {
		f.Brownout = &Brownout{
			StartCycle: u01(6) * 50_000,
			Duration:   10_000 + u01(7)*200_000,
			Factor:     0.4 + u01(8)*0.5,
		}
	}
	f.TaskFaultRate = u01(9) * 0.01
	return f
}
