package sim

import (
	"reflect"
	"testing"
)

func TestDeviceFaultsValidate(t *testing.T) {
	cases := []struct {
		name string
		f    DeviceFaults
		ok   bool
	}{
		{"zero", DeviceFaults{}, true},
		{"crash", DeviceFaults{CrashAtOp: 5}, true},
		{"negative crash", DeviceFaults{CrashAtOp: -1}, false},
		{"hang", DeviceFaults{HangAtOp: 3, HangOps: 2}, true},
		{"negative hang", DeviceFaults{HangAtOp: -2}, false},
		{"brownout", DeviceFaults{BrownoutFromOp: 2, BrownoutToOp: 5, BrownoutFactor: 0.5}, true},
		{"brownout bad window", DeviceFaults{BrownoutFromOp: 5, BrownoutToOp: 2, BrownoutFactor: 0.5}, false},
		{"brownout bad factor", DeviceFaults{BrownoutFromOp: 2, BrownoutToOp: 5, BrownoutFactor: 1.5}, false},
		{"slow", DeviceFaults{SlowFactor: 2}, true},
		{"slow below one", DeviceFaults{SlowFactor: 0.5}, false},
	}
	for _, tc := range cases {
		if err := tc.f.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDeviceFaultsTriggers(t *testing.T) {
	f := DeviceFaults{CrashAtOp: 10, HangAtOp: 3, HangOps: 2, BrownoutFromOp: 5, BrownoutToOp: 7, BrownoutFactor: 0.5, SlowFactor: 2}
	if f.CrashesAt(9) || !f.CrashesAt(10) || !f.CrashesAt(11) {
		t.Error("crash trigger must fire at and after CrashAtOp")
	}
	if f.HangsAt(2) || !f.HangsAt(3) || !f.HangsAt(4) || f.HangsAt(5) {
		t.Error("hang window must be [HangAtOp, HangAtOp+HangOps)")
	}
	if f.BrownoutAt(4) || !f.BrownoutAt(5) || !f.BrownoutAt(6) || f.BrownoutAt(7) {
		t.Error("brownout window must be [from, to)")
	}
	if f.Slowdown() != 2 {
		t.Errorf("Slowdown() = %g, want 2", f.Slowdown())
	}
	if (DeviceFaults{}).Any() || !f.Any() {
		t.Error("Any() misclassifies fault domains")
	}
	// HangOps <= 0 defaults to a single-op window.
	one := DeviceFaults{HangAtOp: 4}
	if !one.HangsAt(4) || one.HangsAt(5) {
		t.Error("HangOps <= 0 must mean a one-op window")
	}
}

func TestFleetChaosScheduleDeterministicAndSurvivable(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		for _, n := range []int{2, 3, 4, 8} {
			a := FleetChaosSchedule(seed, n, 10)
			b := FleetChaosSchedule(seed, n, 10)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d n %d: schedule is not deterministic", seed, n)
			}
			crashes, hangs := 0, 0
			for i, f := range a {
				if err := f.Validate(); err != nil {
					t.Fatalf("seed %d n %d device %d: invalid schedule: %v", seed, n, i, err)
				}
				if f.CrashAtOp > 0 {
					crashes++
					if f.HangAtOp > 0 || f.SlowFactor > 1 || f.BrownoutToOp > f.BrownoutFromOp {
						t.Fatalf("seed %d n %d device %d: crash victim has extra roles", seed, n, i)
					}
				}
				if f.HangAtOp > 0 {
					hangs++
				}
			}
			if crashes != 1 {
				t.Fatalf("seed %d n %d: want exactly 1 crash victim, got %d", seed, n, crashes)
			}
			if hangs != 1 {
				t.Fatalf("seed %d n %d: want exactly 1 hang victim, got %d", seed, n, hangs)
			}
		}
	}
	// Different seeds must differ somewhere (not a constant schedule).
	if reflect.DeepEqual(FleetChaosSchedule(1, 4, 10), FleetChaosSchedule(2, 4, 10)) {
		t.Error("schedules for seeds 1 and 2 are identical — seed is not mixed in")
	}
}

func TestFleetChaosScheduleSingleDeviceIsHealthy(t *testing.T) {
	for _, f := range FleetChaosSchedule(99, 1, 10) {
		if f.Any() {
			t.Fatal("a 1-device fleet has no failover target; the schedule must stay healthy")
		}
	}
}
