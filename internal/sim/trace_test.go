package sim

import (
	"math"
	"strings"
	"testing"
)

func TestRunTraceMatchesRun(t *testing.T) {
	h := tinyGPU()
	tasks := []Task{
		{ComputeCycles: 100, MemBytes: 50, Tag: 0},
		{ComputeCycles: 200, MemBytes: 20, Tag: 0},
		{ComputeCycles: 150, MemBytes: 80, Tag: 1},
		{ComputeCycles: 90, MemBytes: 10, Tag: 1},
		{ComputeCycles: 60, MemBytes: 5, Tag: 1},
	}
	plain := Run(h, tasks)
	traced, events := RunTrace(h, tasks)
	if math.Abs(plain.Cycles-traced.Cycles) > 1e-9 {
		t.Fatalf("traced makespan %g != plain %g", traced.Cycles, plain.Cycles)
	}
	if len(events) != len(tasks) {
		t.Fatalf("events = %d, want %d", len(events), len(tasks))
	}
	tags := map[int]int{}
	for _, e := range events {
		if e.End <= e.Start {
			t.Fatalf("event with non-positive duration: %+v", e)
		}
		if e.End > traced.Cycles+1e-6 {
			t.Fatalf("event ends after makespan: %+v", e)
		}
		if e.PE < 0 || e.PE >= h.NumPEs {
			t.Fatalf("event on unknown PE: %+v", e)
		}
		tags[e.Tag]++
	}
	if tags[0] != 2 || tags[1] != 3 {
		t.Fatalf("tag counts %v, want 2 and 3", tags)
	}
}

func TestRunTraceEmpty(t *testing.T) {
	res, events := RunTrace(tinyGPU(), nil)
	if res.Cycles != 0 || events != nil {
		t.Fatal("empty trace should be empty")
	}
}

func TestRunTraceNoOverlapPerPE(t *testing.T) {
	h := tinyGPU()
	tasks := make([]Task, 13)
	for i := range tasks {
		tasks[i] = Task{ComputeCycles: float64(50 + i*10), MemBytes: float64(i * 5)}
	}
	_, events := RunTrace(h, tasks)
	byPE := map[int][]TraceEvent{}
	for _, e := range events {
		byPE[e.PE] = append(byPE[e.PE], e)
	}
	for pe, evs := range byPE {
		for i := range evs {
			for j := i + 1; j < len(evs); j++ {
				a, b := evs[i], evs[j]
				if a.Start < b.End-1e-9 && b.Start < a.End-1e-9 {
					t.Fatalf("PE %d runs two tasks at once: %+v and %+v", pe, a, b)
				}
			}
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	events := []TraceEvent{
		{PE: 0, Tag: 0, Start: 0, End: 50},
		{PE: 0, Tag: 1, Start: 50, End: 100},
		{PE: 1, Tag: 0, Start: 0, End: 100},
	}
	out := Timeline(events, 2, 20, 8)
	if !strings.Contains(out, "PE0") || !strings.Contains(out, "PE1") {
		t.Fatalf("timeline missing PE rows:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("timeline missing region letters:\n%s", out)
	}
	if Timeline(nil, 4, 20, 8) != "(no events)" {
		t.Fatal("empty timeline wrong")
	}
}

func TestTimelineSubsamplesPEs(t *testing.T) {
	var events []TraceEvent
	for pe := 0; pe < 100; pe++ {
		events = append(events, TraceEvent{PE: pe, Tag: 0, Start: 0, End: 10})
	}
	out := Timeline(events, 100, 20, 10)
	rows := strings.Count(out, "PE")
	if rows > 12 {
		t.Fatalf("timeline shows %d rows, want <= ~10", rows)
	}
}

// The Fig. 15(b) picture: an underfull second wave appears as idle tail
// cells on most PEs.
func TestTimelineShowsImbalance(t *testing.T) {
	h := tinyGPU()
	task := Task{ComputeCycles: 100}
	tasks := []Task{task, task, task, task, task} // 5 tasks on 4 PEs
	_, events := RunTrace(h, tasks)
	out := Timeline(events, h.NumPEs, 16, 8)
	// Three of four PEs are idle in the second half: dots must appear.
	if !strings.Contains(out, "....") {
		t.Fatalf("imbalance not visible:\n%s", out)
	}
}

func TestRunTraceStaticScheduler(t *testing.T) {
	h := tinyNPU()
	tasks := []Task{
		{ComputeCycles: 100, Tag: 0},
		{ComputeCycles: 200, Tag: 0},
		{ComputeCycles: 150, Tag: 1},
	}
	res, events := RunTrace(h, tasks)
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	plain := Run(h, tasks)
	if math.Abs(res.Cycles-plain.Cycles) > 1e-9 {
		t.Fatal("traced static run diverges from plain run")
	}
}
