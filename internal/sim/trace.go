package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mikpoly/internal/hw"
)

// TraceEvent records one task's residency on a PE.
type TraceEvent struct {
	// PE is the processing engine the task ran on.
	PE int
	// Tag is the task's region tag.
	Tag int
	// Start and End bound the task's residency in cycles.
	Start, End float64
}

// RunTrace executes like Run but also returns the per-task execution trace —
// the raw data behind wave diagrams like the paper's Fig. 15(b/c). Tracing
// always uses the event loop (the analytic fast path has no per-task
// timeline), so prefer Run when only aggregates are needed.
func RunTrace(h hw.Hardware, tasks []Task) (Result, []TraceEvent) {
	if err := h.Validate(); err != nil {
		panic(err)
	}
	if len(tasks) == 0 {
		return Result{PEBusy: make([]float64, h.NumPEs)}, nil
	}
	var events []TraceEvent
	collect := func(e TraceEvent) { events = append(events, e) }
	var res Result
	switch h.Scheduler {
	case hw.ScheduleStaticMaxMin:
		res = runEventLoopTraced(h, staticAssign(h, tasks, nil), collect)
	default:
		res = runEventLoopTraced(h, dynamicQueue(tasks), collect)
	}
	return res, events
}

// Timeline renders a trace as ASCII art: one row per PE (subsampled to at
// most maxPEs rows), time bucketed into width columns, each cell showing the
// region letter ('A' + tag) occupying most of that bucket, '.' when idle.
func Timeline(events []TraceEvent, numPEs, width, maxPEs int) string {
	if len(events) == 0 {
		return "(no events)"
	}
	if width < 8 {
		width = 8
	}
	if maxPEs < 1 {
		maxPEs = 1
	}
	var makespan float64
	for _, e := range events {
		if e.End > makespan {
			makespan = e.End
		}
	}
	if makespan <= 0 {
		return "(empty timeline)"
	}

	step := 1
	if numPEs > maxPEs {
		step = (numPEs + maxPEs - 1) / maxPEs
	}
	byPE := make(map[int][]TraceEvent)
	for _, e := range events {
		if e.PE%step == 0 {
			byPE[e.PE] = append(byPE[e.PE], e)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %.0f cycles (each column ≈ %.0f cycles)\n", makespan, makespan/float64(width))
	pes := make([]int, 0, len(byPE))
	for pe := range byPE {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		row := make([]byte, width)
		occupied := make([]float64, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range byPE[pe] {
			c0 := int(e.Start / makespan * float64(width))
			c1 := int(math.Ceil(e.End / makespan * float64(width)))
			for c := c0; c < c1 && c < width; c++ {
				bStart := float64(c) / float64(width) * makespan
				bEnd := float64(c+1) / float64(width) * makespan
				overlap := math.Min(e.End, bEnd) - math.Max(e.Start, bStart)
				if overlap > occupied[c] {
					occupied[c] = overlap
					row[c] = byte('A' + e.Tag%26)
				}
			}
		}
		fmt.Fprintf(&b, "PE%-4d |%s|\n", pe, row)
	}
	return strings.TrimRight(b.String(), "\n")
}

// runEventLoopTraced wraps the event loop with a completion callback.
func runEventLoopTraced(h hw.Hardware, f feeder, collect func(TraceEvent)) Result {
	return runEventLoopInner(h, f, collect, nil)
}
