package sim

import (
	"math"
	"testing"
	"testing/quick"

	"mikpoly/internal/hw"
)

// tinyGPU is a small dynamic-scheduled device that makes hand calculations
// easy: 4 PEs, bandwidth 4 B/cycle total (fair share 1 B/cycle).
func tinyGPU() hw.Hardware {
	return hw.Hardware{
		Name:                "tiny-gpu",
		NumPEs:              4,
		LocalMemBytes:       1 << 20,
		AccumBytes:          1 << 20,
		FlopsPerCyclePE:     2,
		GlobalBytesPerCycle: 4,
		L2ReuseFactor:       1,
		ClockHz:             1e9,
		InputBytes:          2,
		OutputBytes:         4,
		MMAAlign:            16,
		TaskStartupCycles:   0,
		Scheduler:           hw.ScheduleDynamic,
	}
}

func tinyNPU() hw.Hardware {
	h := tinyGPU()
	h.Name = "tiny-npu"
	h.Scheduler = hw.ScheduleStaticMaxMin
	return h
}

func TestPipelinedTaskCycles(t *testing.T) {
	task := Task{ComputeCycles: 100, MemBytes: 50, StartupCycles: 10}
	// Compute-bound at bw=1: 10 + max(100, 50) = 110.
	if got := PipelinedTaskCycles(task, 1); got != 110 {
		t.Fatalf("compute-bound cost = %g, want 110", got)
	}
	// Memory-bound at bw=0.25: 10 + max(100, 200) = 210.
	if got := PipelinedTaskCycles(task, 0.25); got != 210 {
		t.Fatalf("memory-bound cost = %g, want 210", got)
	}
}

func TestPipelinedTaskCyclesBadBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PipelinedTaskCycles(Task{}, 0)
}

func TestRunEmpty(t *testing.T) {
	r := Run(tinyGPU(), nil)
	if r.Cycles != 0 || r.NumTasks != 0 {
		t.Fatalf("empty run = %+v", r)
	}
	if len(r.PEBusy) != 4 {
		t.Fatalf("PEBusy len = %d", len(r.PEBusy))
	}
}

func TestRunSingleComputeBoundTask(t *testing.T) {
	task := Task{ComputeCycles: 1000, MemBytes: 100, StartupCycles: 50}
	r := Run(tinyGPU(), []Task{task})
	// Alone, the task gets the per-task cap (>= fair share), mem takes
	// 100/1 = 100 < 1000 compute, so makespan = 50 + 1000.
	if math.Abs(r.Cycles-1050) > 1e-6 {
		t.Fatalf("makespan = %g, want 1050", r.Cycles)
	}
	if r.NumTasks != 1 {
		t.Fatalf("NumTasks = %d", r.NumTasks)
	}
	if r.Waves() != 1 {
		t.Fatalf("Waves = %d", r.Waves())
	}
}

func TestRunSingleMemoryBoundTask(t *testing.T) {
	h := tinyGPU()
	// Per-task cap = max(fairShare=1, total/16=0.25) = 1 B/cycle.
	task := Task{ComputeCycles: 10, MemBytes: 1000, StartupCycles: 0}
	r := Run(h, []Task{task})
	if math.Abs(r.Cycles-1000) > 1e-6 {
		t.Fatalf("makespan = %g, want 1000 (cap-limited streaming)", r.Cycles)
	}
}

func TestRunFullWavePerfectBalance(t *testing.T) {
	// 4 identical compute-bound tasks on 4 PEs: one wave, no interference.
	task := Task{ComputeCycles: 500, MemBytes: 100, StartupCycles: 0}
	r := Run(tinyGPU(), []Task{task, task, task, task})
	if math.Abs(r.Cycles-500) > 1e-6 {
		t.Fatalf("makespan = %g, want 500", r.Cycles)
	}
	if e := r.Efficiency(); math.Abs(e-1) > 1e-6 {
		t.Fatalf("efficiency = %g, want 1", e)
	}
}

// The load-imbalance effect of Fig. 15: 5 identical tasks on 4 PEs need two
// waves, and the second wave runs nearly empty, halving efficiency.
func TestRunLastWaveImbalance(t *testing.T) {
	task := Task{ComputeCycles: 500, MemBytes: 100, StartupCycles: 0}
	tasks := []Task{task, task, task, task, task}
	r := Run(tinyGPU(), tasks)
	if math.Abs(r.Cycles-1000) > 1e-6 {
		t.Fatalf("makespan = %g, want 1000 (two waves)", r.Cycles)
	}
	if r.Waves() != 2 {
		t.Fatalf("Waves = %d, want 2", r.Waves())
	}
	if e := r.Efficiency(); math.Abs(e-0.625) > 1e-3 {
		t.Fatalf("efficiency = %g, want 0.625 (5/8)", e)
	}
}

func TestRunBandwidthContention(t *testing.T) {
	// 4 memory-bound tasks share 4 B/cycle equally: each gets 1 B/cycle.
	task := Task{ComputeCycles: 1, MemBytes: 400, StartupCycles: 0}
	r := Run(tinyGPU(), []Task{task, task, task, task})
	if math.Abs(r.Cycles-400) > 1e-6 {
		t.Fatalf("makespan = %g, want 400", r.Cycles)
	}
	// Two tasks: share = min(cap=1, 4/2=2) = 1 (cap-limited), same rate.
	r2 := Run(tinyGPU(), []Task{task, task})
	if math.Abs(r2.Cycles-400) > 1e-6 {
		t.Fatalf("2-task makespan = %g, want 400", r2.Cycles)
	}
}

func TestRunContentionSlowsStreaming(t *testing.T) {
	// Device with generous per-task cap: total BW 64, 4 PEs, cap = 64/16=4
	// so fair share 16 is not the binding limit; cap = max(16, 4) = 16.
	h := tinyGPU()
	h.GlobalBytesPerCycle = 64
	// 8 streaming tasks → share = 64/8 = 8 B/cycle each.
	task := Task{ComputeCycles: 1, MemBytes: 800, StartupCycles: 0}
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = task
	}
	h.NumPEs = 8
	r := Run(h, tasks)
	if math.Abs(r.Cycles-100) > 1e-6 {
		t.Fatalf("makespan = %g, want 100 (8-way shared streaming)", r.Cycles)
	}
}

func TestRunStartupSerializesBeforeStreaming(t *testing.T) {
	task := Task{ComputeCycles: 0, MemBytes: 100, StartupCycles: 25}
	r := Run(tinyGPU(), []Task{task})
	if math.Abs(r.Cycles-125) > 1e-6 {
		t.Fatalf("makespan = %g, want 125", r.Cycles)
	}
}

func TestStaticMaxMinBalances(t *testing.T) {
	// Mixed durations: LPT should land 100+10 vs 60+50 vs 55+54 vs 105
	// style balanced splits. Verify the makespan equals the best possible
	// for this simple instance.
	mk := func(c float64) Task { return Task{ComputeCycles: c, MemBytes: 0, StartupCycles: 0} }
	tasks := []Task{mk(100), mk(60), mk(55), mk(54), mk(50), mk(10), mk(105)}
	r := Run(tinyNPU(), tasks)
	// LPT sorted: 105,100,60,55,54,50,10 → loads 105 | 100+10 | 60+50 |
	// 55+54 → makespan 110.
	if math.Abs(r.Cycles-110) > 1e-6 {
		t.Fatalf("static makespan = %g, want 110", r.Cycles)
	}
	if r.NumTasks != 7 {
		t.Fatalf("NumTasks = %d", r.NumTasks)
	}
}

func TestDynamicSchedulerOverlapsRegions(t *testing.T) {
	// One long task (tag 0) and six short tasks (tag 1) on 4 PEs: the
	// dynamic scheduler packs the short tasks around the long one.
	long := Task{ComputeCycles: 600, Tag: 0}
	short := Task{ComputeCycles: 200, Tag: 1}
	tasks := []Task{long, short, short, short, short, short, short}
	r := Run(tinyGPU(), tasks)
	if math.Abs(r.Cycles-600) > 1e-6 {
		t.Fatalf("makespan = %g, want 600 (shorts fill around the long task)", r.Cycles)
	}
}

func TestResultEfficiencyZeroSafe(t *testing.T) {
	var r Result
	if r.Efficiency() != 0 || r.Waves() != 0 {
		t.Fatal("zero Result must report zero efficiency and waves")
	}
}

// Property: makespan is at least the critical path (longest single task) and
// at least total-work/numPEs, and busy time never exceeds makespan × PEs.
func TestRunBoundsProperty(t *testing.T) {
	h := tinyGPU()
	f := func(seed uint64) bool {
		n := int(seed%11) + 1
		tasks := make([]Task, n)
		s := seed
		var totalCompute float64
		var longest float64
		for i := range tasks {
			s = s*6364136223846793005 + 1442695040888963407
			c := float64(s%1000) + 1
			m := float64(s / 1000 % 500)
			tasks[i] = Task{ComputeCycles: c, MemBytes: m, StartupCycles: 5}
			totalCompute += c + 5
			alone := PipelinedTaskCycles(tasks[i],
				math.Max(h.FairShareBandwidth(), h.GlobalBytesPerCycle/16))
			if alone > longest {
				longest = alone
			}
		}
		r := Run(h, tasks)
		lowerBound := math.Max(longest, totalCompute/float64(h.NumPEs))
		return r.Cycles >= lowerBound-1e-6 &&
			r.BusyPECycles <= r.Cycles*float64(h.NumPEs)+1e-6 &&
			r.NumTasks == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the static max-min allocation is deterministic and its makespan
// is never better than the dynamic scheduler by more than numerical noise on
// identical task sets (dynamic dominates static for identical FIFO work).
func TestStaticVsDynamicProperty(t *testing.T) {
	gpu, npu := tinyGPU(), tinyNPU()
	f := func(seed uint64) bool {
		n := int(seed%9) + 1
		tasks := make([]Task, n)
		s := seed
		for i := range tasks {
			s = s*2862933555777941757 + 3037000493
			tasks[i] = Task{ComputeCycles: float64(s%300) + 1}
		}
		dyn := Run(gpu, tasks)
		st1 := Run(npu, tasks)
		st2 := Run(npu, tasks)
		if st1.Cycles != st2.Cycles {
			return false // determinism
		}
		// LPT static can beat FIFO dynamic, but for compute-only tasks
		// it can never be worse than 4/3 of it (Graham's bound both ways
		// is loose; just check both are within 2× of each other).
		ratio := st1.Cycles / dyn.Cycles
		return ratio > 0.4 && ratio < 2.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministic(t *testing.T) {
	tasks := []Task{
		{ComputeCycles: 123, MemBytes: 456, StartupCycles: 7},
		{ComputeCycles: 89, MemBytes: 1000, StartupCycles: 7},
		{ComputeCycles: 500, MemBytes: 10, StartupCycles: 7},
		{ComputeCycles: 77, MemBytes: 77, StartupCycles: 7},
		{ComputeCycles: 300, MemBytes: 600, StartupCycles: 7},
	}
	a := Run(tinyGPU(), tasks)
	b := Run(tinyGPU(), tasks)
	if a.Cycles != b.Cycles || a.BusyPECycles != b.BusyPECycles {
		t.Fatal("simulation is not deterministic")
	}
}

// The analytic fast path must agree with the event loop at its gate
// boundary: compare a program just below the gate with the scaled analytic
// prediction.
func TestAnalyticFastPathMatchesEventLoop(t *testing.T) {
	h := tinyGPU()
	task := Task{ComputeCycles: 300, MemBytes: 500, StartupCycles: 10}
	// Just below the gate: event loop.
	nSmall := fastPathMinWaves*h.NumPEs - 1
	small := make([]Task, nSmall)
	for i := range small {
		small[i] = task
	}
	ev := Run(h, small)
	// Just above the gate: fast path.
	nBig := fastPathMinWaves * h.NumPEs
	big := make([]Task, nBig)
	for i := range big {
		big[i] = task
	}
	fp := Run(h, big)
	// Per-wave cost must agree closely: scale both to per-task cycles.
	evPer := ev.Cycles / float64((nSmall+h.NumPEs-1)/h.NumPEs)
	fpPer := fp.Cycles / float64(nBig/h.NumPEs)
	if math.Abs(evPer-fpPer)/evPer > 0.02 {
		t.Fatalf("fast path per-wave %g vs event loop %g", fpPer, evPer)
	}
	if fp.NumTasks != nBig {
		t.Fatalf("NumTasks = %d", fp.NumTasks)
	}
	if e := fp.Efficiency(); e < 0.99 || e > 1.01 {
		t.Fatalf("full-wave efficiency = %g, want ~1", e)
	}
}

func TestAnalyticFastPathMixedRunsFallsBack(t *testing.T) {
	h := tinyGPU()
	// Alternating tasks: runs of length 1 must NOT take the fast path
	// (verified via exact event-loop equality with a manual small case).
	a := Task{ComputeCycles: 100}
	b := Task{ComputeCycles: 200}
	tasks := make([]Task, 0, 2*fastPathMinWaves*h.NumPEs)
	for i := 0; i < fastPathMinWaves*h.NumPEs; i++ {
		tasks = append(tasks, a, b)
	}
	if _, ok := analyticFastPath(h, tasks); ok {
		t.Fatal("alternating runs must not take the fast path")
	}
	// Two long runs do take it.
	tasks = tasks[:0]
	for i := 0; i < fastPathMinWaves*h.NumPEs; i++ {
		tasks = append(tasks, a)
	}
	for i := 0; i < fastPathMinWaves*h.NumPEs; i++ {
		tasks = append(tasks, b)
	}
	res, ok := analyticFastPath(h, tasks)
	if !ok {
		t.Fatal("two long runs should take the fast path")
	}
	want := float64(fastPathMinWaves)*100 + float64(fastPathMinWaves)*200
	if math.Abs(res.Cycles-want) > 1e-6 {
		t.Fatalf("fast path cycles = %g, want %g", res.Cycles, want)
	}
}

// Property: for random identical-task programs just above the fast-path
// gate, the analytic result matches an event-loop run of a same-size
// program within a tight tolerance (the paths must agree, not just be
// plausible).
func TestFastPathAgreesWithEventLoopProperty(t *testing.T) {
	h := tinyGPU()
	f := func(seed uint64) bool {
		c := float64(seed%500) + 10
		m := float64(seed / 500 % 800)
		task := Task{ComputeCycles: c, MemBytes: m, StartupCycles: 3}
		n := fastPathMinWaves * h.NumPEs // exactly at the gate
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = task
		}
		fast, ok := analyticFastPath(h, tasks)
		if !ok {
			return false
		}
		ev := runEventLoop(h, dynamicQueue(tasks))
		return math.Abs(fast.Cycles-ev.Cycles)/ev.Cycles < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		name string
		busy []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all idle", []float64{0, 0, 0}, 0},
		{"balanced", []float64{10, 10, 10}, 0},
		{"one idle PE", []float64{10, 10, 0}, 1},
		{"half spread", []float64{10, 5}, 0.5},
	}
	for _, c := range cases {
		if got := Imbalance(c.busy); got != c.want {
			t.Errorf("%s: Imbalance(%v) = %g, want %g", c.name, c.busy, got, c.want)
		}
	}
	if got := (Result{PEBusy: []float64{8, 4, 8, 8}}).Imbalance(); got != 0.5 {
		t.Errorf("Result.Imbalance = %g, want 0.5", got)
	}
}
