// Package sim is the accelerator substrate of the reproduction: a
// deterministic, event-driven simulator for the multi-level abstraction
// H = (P_multi, M_local, M_global) of MikPoly §3.1. Work arrives as
// *pipelined tasks* (§3.3): each task runs on a single PE, overlapping the
// streaming of its operands from M_global with compute on M_local, after a
// fixed pipeline-fill startup. Global memory bandwidth is shared equally
// among tasks with in-flight transfers (recomputed whenever the active set
// changes), which is what produces the memory-bound behaviour and the
// load-imbalance "last wave" effect of the paper's Fig. 15.
package sim

import "math"

// Task is one pipelined task: t instances of a micro-kernel executed on a
// single PE inside a reduction loop, with loads overlapped against compute.
type Task struct {
	// ComputeCycles is the total busy-compute time of the task at rate 1
	// cycle per cycle (all kernel instances plus fixed per-instance issue
	// overhead).
	ComputeCycles float64

	// MemBytes is the total traffic the task streams to/from M_global
	// (operand loads for every instance plus the single result store).
	MemBytes float64

	// StartupCycles is the pipeline-fill latency before compute and
	// streaming begin (the first load of the software pipeline).
	StartupCycles float64

	// Tag identifies the program region (R_i) the task belongs to, for
	// tracing.
	Tag int
}

// PipelinedTaskCycles returns the cost of executing one task in isolation
// with a constant bandwidth share of bw bytes/cycle — the quantity the
// offline stage measures when learning g_predict (§3.3). With the pipeline
// full, the task is limited by whichever of compute or streaming is slower.
func PipelinedTaskCycles(t Task, bw float64) float64 {
	if bw <= 0 {
		panic("sim: bandwidth share must be positive")
	}
	return t.StartupCycles + math.Max(t.ComputeCycles, t.MemBytes/bw)
}

// Result summarizes a simulated program execution.
type Result struct {
	// Cycles is the makespan: time until the last task completes.
	Cycles float64

	// BusyPECycles sums, over PEs, the time each PE had a task resident.
	BusyPECycles float64

	// NumTasks is the number of pipelined tasks executed.
	NumTasks int

	// MemBytesStreamed is the total M_global traffic the executed tasks
	// streamed (operand loads plus result stores). Fused chain programs
	// exist to shrink this number: their strip tasks never round-trip
	// inter-stage intermediates through global memory, so the saving is
	// directly observable here.
	MemBytesStreamed float64

	// FaultedTasks counts tasks that reported a transient execution fault
	// (only non-zero under fault injection, RunWithFaults). A faulted
	// task's output must be discarded and the work re-planned/re-run by
	// the layer above.
	FaultedTasks int

	// PEBusy is the per-PE busy time; its spread reveals load imbalance.
	PEBusy []float64

	// PEFaults counts faulted tasks per PE (nil when no task faulted). A
	// concentration of faults on few PEs is the health registry's signal
	// that the hardware — not the workload — is degrading.
	PEFaults []int

	// DeadPEs lists PEs that died mid-run (Faults.PEDeathCycle), sorted.
	// Work in flight on a dying PE is lost and counted in FaultedTasks.
	DeadPEs []int

	// StrandedTasks counts tasks that never ran because their PE died:
	// statically assigned residual lists, or (if every PE died) the shared
	// queue's leftovers. Stranded work, like faulted work, invalidates the
	// run's output.
	StrandedTasks int

	// BandwidthDerate is the brownout factor if a brownout window
	// overlapped the run (0 when none did) — surfaced so the health layer
	// can distinguish bandwidth degradation from compute faults.
	BandwidthDerate float64
}

// Clean reports whether the run produced a trustworthy result: no faulted
// and no stranded tasks.
func (r Result) Clean() bool { return r.FaultedTasks == 0 && r.StrandedTasks == 0 }

// Efficiency is the fraction of PE-time spent busy until the makespan — the
// analog of the sm_efficiency counter in the paper's Table 9.
func (r Result) Efficiency() float64 {
	if r.Cycles <= 0 || len(r.PEBusy) == 0 {
		return 0
	}
	return r.BusyPECycles / (r.Cycles * float64(len(r.PEBusy)))
}

// Waves returns the wave count ceil(numTasks/numPEs) — the quantity the
// online cost model's f_wave term estimates.
func (r Result) Waves() int {
	if len(r.PEBusy) == 0 {
		return 0
	}
	return (r.NumTasks + len(r.PEBusy) - 1) / len(r.PEBusy)
}

// Imbalance returns the relative busy-time spread across PEs,
// (max − min) / max over the per-PE busy cycles: 0 is a perfectly balanced
// execution, values near 1 mean some PEs idled through almost the whole run
// — the "last wave" effect the polymerized programs exist to shrink. An
// all-idle or empty execution reports 0.
func (r Result) Imbalance() float64 { return Imbalance(r.PEBusy) }

// Imbalance computes the relative spread (max − min) / max of a per-PE busy
// series; see Result.Imbalance. Exposed as a free function so aggregated
// busy series (e.g. the graph runtime's cumulative per-PE counters) can be
// scored the same way.
func Imbalance(peBusy []float64) float64 {
	if len(peBusy) == 0 {
		return 0
	}
	min, max := peBusy[0], peBusy[0]
	for _, b := range peBusy[1:] {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if max <= 0 {
		return 0
	}
	return (max - min) / max
}
