package sim

import (
	"fmt"
	"math"
)

// BrownoutAllRun is a brownout duration long enough to cover any simulated
// run: a device-level brownout derates bandwidth for whole operations, not
// cycle windows, so the fleet layer stretches one PE-level Brownout across
// the entire run of each affected op.
const BrownoutAllRun = 1e18

// DeviceFaults is a device-level fault domain: where Faults degrades PEs
// inside one device, DeviceFaults takes out (or derates) the device as a
// whole, which is what a fleet dispatcher must route around. Triggers are
// keyed on the device's op ordinal — the 1-based count of operations the
// device has started — rather than wall time, so a seeded schedule replays
// identically regardless of host speed.
//
// The four domains mirror how real replicas fail:
//
//   - crash: the op at CrashAtOp fails and the device is dead for good —
//     only failover to another replica helps;
//   - hang: ops inside [HangAtOp, HangAtOp+HangOps) never complete; the
//     caller's context (a hedge or deadline) is the only way out, and the
//     device recovers once the window passes — a prober can readmit it;
//   - brownout: ops inside [BrownoutFromOp, BrownoutToOp) run with global
//     bandwidth scaled by BrownoutFactor — the device still answers, just
//     degraded, and should be derated rather than shed;
//   - slow replica: every op's simulated cycles are multiplied by
//     SlowFactor — a uniformly slower device that load balancing should
//     send proportionally less work.
type DeviceFaults struct {
	// CrashAtOp kills the device permanently at the given op ordinal: that
	// op and everything after it fail. 0 means never.
	CrashAtOp int

	// HangAtOp starts a hang window at the given op ordinal (0 = never);
	// HangOps is the window length in ops (<= 0 means 1). Ops inside the
	// window block until their context is cancelled.
	HangAtOp int
	HangOps  int

	// BrownoutFromOp/BrownoutToOp bound a half-open op window inside which
	// global bandwidth is scaled by BrownoutFactor (in (0, 1)).
	BrownoutFromOp int
	BrownoutToOp   int
	BrownoutFactor float64

	// SlowFactor >= 1 stretches every op's simulated cycles (0 and 1 both
	// mean full speed).
	SlowFactor float64
}

// Validate checks the fault domain for internal consistency.
func (f DeviceFaults) Validate() error {
	if f.CrashAtOp < 0 {
		return fmt.Errorf("sim: crash op must be >= 0, got %d", f.CrashAtOp)
	}
	if f.HangAtOp < 0 {
		return fmt.Errorf("sim: hang op must be >= 0, got %d", f.HangAtOp)
	}
	if f.BrownoutFromOp < 0 || f.BrownoutToOp < f.BrownoutFromOp {
		return fmt.Errorf("sim: brownout op window [%d,%d) is invalid", f.BrownoutFromOp, f.BrownoutToOp)
	}
	if f.BrownoutToOp > f.BrownoutFromOp {
		if !(f.BrownoutFactor > 0 && f.BrownoutFactor < 1) || math.IsNaN(f.BrownoutFactor) {
			return fmt.Errorf("sim: brownout factor must be in (0,1), got %g", f.BrownoutFactor)
		}
	}
	if f.SlowFactor != 0 && (f.SlowFactor < 1 || math.IsNaN(f.SlowFactor) || math.IsInf(f.SlowFactor, 0)) {
		return fmt.Errorf("sim: slow factor must be >= 1 and finite, got %g", f.SlowFactor)
	}
	return nil
}

// Any reports whether the domain injects anything at all.
func (f DeviceFaults) Any() bool {
	return f.CrashAtOp > 0 || f.HangAtOp > 0 || f.BrownoutToOp > f.BrownoutFromOp || f.SlowFactor > 1
}

// CrashesAt reports whether the device is dead at op ordinal op.
func (f DeviceFaults) CrashesAt(op int64) bool {
	return f.CrashAtOp > 0 && op >= int64(f.CrashAtOp)
}

// HangsAt reports whether op ordinal op falls inside the hang window.
func (f DeviceFaults) HangsAt(op int64) bool {
	if f.HangAtOp <= 0 {
		return false
	}
	n := f.HangOps
	if n <= 0 {
		n = 1
	}
	return op >= int64(f.HangAtOp) && op < int64(f.HangAtOp+n)
}

// BrownoutAt reports whether op ordinal op falls inside the brownout window.
func (f DeviceFaults) BrownoutAt(op int64) bool {
	return f.BrownoutToOp > f.BrownoutFromOp &&
		op >= int64(f.BrownoutFromOp) && op < int64(f.BrownoutToOp)
}

// Slowdown returns the effective cycle multiplier (>= 1).
func (f DeviceFaults) Slowdown() float64 {
	if f.SlowFactor > 1 {
		return f.SlowFactor
	}
	return 1
}

// FleetChaosSchedule derives a deterministic per-device fault schedule for a
// fleet of n devices from a seed: one device crashes mid-run, a second hangs
// for a short op window, a third browns out, and a fourth runs slow — as far
// as n allows; smaller fleets get a prefix of those roles, and victims are
// always distinct devices so at least one replica survives every schedule.
// opsHint is the expected per-device op count, used to place triggers
// mid-run. Two calls with the same (seed, n, opsHint) return identical
// schedules — the reproducibility contract the fleet chaos harness rests on.
func FleetChaosSchedule(seed uint64, n, opsHint int) []DeviceFaults {
	out := make([]DeviceFaults, n)
	if n < 2 {
		// A single device has no failover target: injecting a crash or hang
		// would make every schedule unrecoverable, so keep it healthy.
		return out
	}
	if opsHint < 4 {
		opsHint = 4
	}
	r := func(i uint64) uint64 { return splitmix64(seed ^ splitmix64(i+0xf1ee7)) }
	u01 := func(i uint64) float64 { return float64(r(i)>>11) / (1 << 53) }
	// midOp picks an op ordinal in the middle half of the expected run.
	midOp := func(i uint64) int { return 1 + opsHint/4 + int(u01(i)*float64(opsHint)/2) }

	// Assign distinct victims by walking a seeded starting offset: victim k
	// is device (start + k) mod n, so roles never collide.
	start := int(r(1) % uint64(n))
	victim := func(k int) int { return (start + k) % n }

	out[victim(0)].CrashAtOp = midOp(2)
	if n >= 2 {
		out[victim(1)].HangAtOp = midOp(3)
		out[victim(1)].HangOps = 1 + int(r(4)%3)
	}
	if n >= 3 {
		from := midOp(5)
		out[victim(2)].BrownoutFromOp = from
		out[victim(2)].BrownoutToOp = from + 2 + int(r(6)%uint64(opsHint/2+1))
		out[victim(2)].BrownoutFactor = 0.4 + u01(7)*0.5
	}
	if n >= 4 {
		out[victim(3)].SlowFactor = 1.5 + u01(8)*2
	}
	return out
}
