package sim

import (
	"math"
	"sort"

	"mikpoly/internal/hw"
)

const eps = 1e-9

// memEps is the residual-stream threshold in bytes below which a transfer
// counts as drained; absolute because bytes have a natural scale.
const memEps = 1e-3

// timeEps is the time-comparison tolerance at clock value now. It must be
// relative: an absolute epsilon is absorbed by float64 rounding once now
// reaches ~1e9 cycles, stalling event progress on long simulations.
func timeEps(now float64) float64 { return 1e-9 * (now + 1) }

// perTaskBandwidthCap returns the most global bandwidth a single task can
// consume: one PE's load/store unit cannot saturate HBM by itself, so a lone
// task is capped well below the device total (1/16th) but never below the
// fair share.
func perTaskBandwidthCap(h hw.Hardware) float64 {
	return math.Max(h.FairShareBandwidth(), h.GlobalBytesPerCycle/16)
}

// running tracks one in-flight task on a PE.
type running struct {
	task          Task
	pe            int
	start         float64 // dispatch time (for tracing)
	memStartAt    float64 // startup completes, streaming may begin
	computeDoneAt float64 // startup + compute fully elapsed
	memLeft       float64 // bytes still to stream
}

func (r *running) done(now float64) bool {
	return now+timeEps(now) >= r.computeDoneAt && r.memLeft <= memEps
}

// Run executes the task list on hardware h and returns the makespan and
// per-PE utilization. Placement follows h.Scheduler: GPUs hand each ready
// task to the first idle PE (hardware dynamic scheduling, so regions of a
// polymerized program overlap and tail waves shrink); NPUs pre-assign tasks
// with the max-min static allocation of §4 and each core drains its own list.
func Run(h hw.Hardware, tasks []Task) Result {
	if err := h.Validate(); err != nil {
		panic(err)
	}
	if len(tasks) == 0 {
		return Result{PEBusy: make([]float64, h.NumPEs)}
	}
	if res, ok := analyticFastPath(h, tasks); ok {
		return res
	}
	switch h.Scheduler {
	case hw.ScheduleStaticMaxMin:
		return runEventLoop(h, staticAssign(h, tasks, nil))
	default:
		return runEventLoop(h, dynamicQueue(tasks))
	}
}

// fastPathMinWaves gates the analytic path: only programs whose identical
// task runs each span many waves take it, where the boundary-wave
// approximation error is negligible.
const fastPathMinWaves = 64

// analyticFastPath computes the makespan of very large programs in closed
// form. For a run of identical tasks the event loop is exactly wave-lockstep
// — every wave of |P| tasks starts and finishes together with an equal
// bandwidth share — so the analytic result matches the event loop except at
// region boundaries, where the dynamic scheduler would overlap one partial
// wave with the next region's first wave (a ≤1/waves relative error at the
// gated sizes).
func analyticFastPath(h hw.Hardware, tasks []Task) (Result, bool) {
	if len(tasks) < fastPathMinWaves*h.NumPEs {
		return Result{}, false
	}
	// Split into runs of identical tasks; every run must itself be large.
	type run struct {
		t Task
		n int
	}
	var runs []run
	for _, t := range tasks {
		if len(runs) > 0 && runs[len(runs)-1].t == t {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{t: t, n: 1})
		}
	}
	for _, r := range runs {
		if r.n < fastPathMinWaves*h.NumPEs {
			return Result{}, false
		}
	}

	bwCap := perTaskBandwidthCap(h)
	duration := func(t Task, active int) float64 {
		share := math.Min(bwCap, h.GlobalBytesPerCycle/float64(active))
		return t.StartupCycles + math.Max(t.ComputeCycles, t.MemBytes/share)
	}
	var makespan, busy float64
	for _, r := range runs {
		full := r.n / h.NumPEs
		rem := r.n % h.NumPEs
		dFull := duration(r.t, h.NumPEs)
		makespan += float64(full) * dFull
		busy += float64(full*h.NumPEs) * dFull
		if rem > 0 {
			dRem := duration(r.t, rem)
			makespan += dRem
			busy += float64(rem) * dRem
		}
	}
	peBusy := make([]float64, h.NumPEs)
	for i := range peBusy {
		peBusy[i] = busy / float64(h.NumPEs)
	}
	return Result{Cycles: makespan, BusyPECycles: busy, NumTasks: len(tasks), PEBusy: peBusy}, true
}

// feeder abstracts task placement: next returns the task a freed PE should
// run, or false when that PE has no more work.
type feeder interface {
	next(pe int) (Task, bool)
	remaining() int
}

// dynamicQueue models the GPU hardware scheduler: a single FIFO shared by
// all PEs.
type dynQueue struct {
	tasks []Task
	head  int
}

func dynamicQueue(tasks []Task) *dynQueue { return &dynQueue{tasks: tasks} }

func (q *dynQueue) next(pe int) (Task, bool) {
	if q.head >= len(q.tasks) {
		return Task{}, false
	}
	t := q.tasks[q.head]
	q.head++
	return t, true
}

func (q *dynQueue) remaining() int { return len(q.tasks) - q.head }

// staticFeeder holds the per-PE lists computed by the max-min allocator.
type staticFeeder struct {
	perPE [][]Task
	left  int
}

func (f *staticFeeder) next(pe int) (Task, bool) {
	l := f.perPE[pe]
	if len(l) == 0 {
		return Task{}, false
	}
	t := l[0]
	f.perPE[pe] = l[1:]
	f.left--
	return t, true
}

func (f *staticFeeder) remaining() int { return f.left }

// staticAssign implements the max-min static allocation used on the NPU
// platform (§4): tasks are ordered by decreasing estimated duration (with the
// fair-share bandwidth) and each is placed on the currently least-loaded
// core, maximizing the minimum slack — classic LPT scheduling. dead marks PEs
// excluded from placement (fault injection); nil means all PEs are live.
func staticAssign(h hw.Hardware, tasks []Task, dead []bool) *staticFeeder {
	type est struct {
		idx  int
		cost float64
	}
	ests := make([]est, len(tasks))
	bw := h.FairShareBandwidth()
	for i, t := range tasks {
		ests[i] = est{idx: i, cost: PipelinedTaskCycles(t, bw)}
	}
	sort.SliceStable(ests, func(a, b int) bool { return ests[a].cost > ests[b].cost })

	live := make([]int, 0, h.NumPEs)
	for pe := 0; pe < h.NumPEs; pe++ {
		if dead == nil || !dead[pe] {
			live = append(live, pe)
		}
	}
	if len(live) == 0 {
		panic("sim: static assignment with no live PEs")
	}
	load := make([]float64, h.NumPEs)
	perPE := make([][]Task, h.NumPEs)
	for _, e := range ests {
		best := live[0]
		for _, pe := range live[1:] {
			if load[pe] < load[best]-eps {
				best = pe
			}
		}
		load[best] += e.cost
		perPE[best] = append(perPE[best], tasks[e.idx])
	}
	return &staticFeeder{perPE: perPE, left: len(tasks)}
}

// runEventLoop is the event-driven core without tracing.
func runEventLoop(h hw.Hardware, f feeder) Result {
	return runEventLoopInner(h, f, nil, nil)
}

// runEventLoopInner is the event-driven core. At every event boundary it
// recomputes the equal bandwidth share among streaming tasks (capped per
// task), advances streaming progress, retires finished tasks (reporting them
// to collect when tracing), and starts new ones on idle PEs. fs, when
// non-nil, injects deterministic hardware faults (dead PEs, per-PE compute
// slowdown, transient task faults); bandwidth degradation is applied by the
// caller through h.
func runEventLoopInner(h hw.Hardware, f feeder, collect func(TraceEvent), fs *faultState) Result {
	bwCap := perTaskBandwidthCap(h)
	var (
		now     float64
		active  []*running
		peBusy  = make([]float64, h.NumPEs)
		peFree  = make([]bool, h.NumPEs)
		nTasks  int
		faulted int
	)
	for i := range peFree {
		peFree[i] = fs == nil || !fs.dead[i]
	}

	start := func(pe int, t Task) {
		compute := t.ComputeCycles
		if fs != nil {
			compute *= fs.slow[pe]
			if fs.taskFault(nTasks) {
				faulted++
			}
		}
		nTasks++
		active = append(active, &running{
			task:          t,
			pe:            pe,
			start:         now,
			memStartAt:    now + t.StartupCycles,
			computeDoneAt: now + t.StartupCycles + compute,
			memLeft:       t.MemBytes,
		})
		peFree[pe] = false
		peBusy[pe] -= now // completed at retire time below
	}

	for {
		// Retire finished tasks.
		keep := active[:0]
		for _, r := range active {
			if r.done(now) {
				peFree[r.pe] = true
				peBusy[r.pe] += now
				if collect != nil {
					collect(TraceEvent{PE: r.pe, Tag: r.task.Tag, Start: r.start, End: now})
				}
			} else {
				keep = append(keep, r)
			}
		}
		active = keep

		// Fill idle PEs.
		for pe := 0; pe < h.NumPEs; pe++ {
			if !peFree[pe] {
				continue
			}
			t, ok := f.next(pe)
			if !ok {
				continue
			}
			start(pe, t)
		}

		if len(active) == 0 {
			if f.remaining() == 0 {
				break
			}
			// Static feeder can strand work only if every PE list is
			// empty while remaining()>0, which cannot happen; guard
			// against infinite loops regardless.
			panic("sim: no runnable tasks but work remains")
		}

		// Current bandwidth share among streaming tasks.
		tEps := timeEps(now)
		streaming := 0
		for _, r := range active {
			if now+tEps >= r.memStartAt && r.memLeft > memEps {
				streaming++
			}
		}
		share := bwCap
		if streaming > 0 {
			share = math.Min(bwCap, h.GlobalBytesPerCycle/float64(streaming))
		}

		// Next event: a startup completing, a compute finishing, or a
		// stream draining.
		next := math.Inf(1)
		for _, r := range active {
			if r.memStartAt > now+tEps {
				next = math.Min(next, r.memStartAt)
			} else if r.memLeft > memEps {
				next = math.Min(next, now+r.memLeft/share)
			}
			if r.computeDoneAt > now+tEps {
				next = math.Min(next, r.computeDoneAt)
			}
		}
		if math.IsInf(next, 1) {
			// Every active task is already finishable; loop retires them.
			continue
		}
		if next < now+tEps {
			// Force progress past float rounding.
			next = now + tEps
		}

		// Advance streaming progress to the event time. Steps never cross
		// a startup boundary: memStartAt times are event candidates.
		dt := next - now
		for _, r := range active {
			if now+tEps >= r.memStartAt && r.memLeft > memEps {
				r.memLeft = math.Max(0, r.memLeft-share*dt)
			}
		}
		now = next
	}

	var busy float64
	for _, b := range peBusy {
		busy += b
	}
	return Result{Cycles: now, BusyPECycles: busy, NumTasks: nTasks, FaultedTasks: faulted, PEBusy: peBusy}
}
