package sim

import (
	"math"
	"sort"

	"mikpoly/internal/hw"
)

const eps = 1e-9

// memEps is the residual-stream threshold in bytes below which a transfer
// counts as drained; absolute because bytes have a natural scale.
const memEps = 1e-3

// timeEps is the time-comparison tolerance at clock value now. It must be
// relative: an absolute epsilon is absorbed by float64 rounding once now
// reaches ~1e9 cycles, stalling event progress on long simulations.
func timeEps(now float64) float64 { return 1e-9 * (now + 1) }

// perTaskBandwidthCap returns the most global bandwidth a single task can
// consume: one PE's load/store unit cannot saturate HBM by itself, so a lone
// task is capped well below the device total (1/16th) but never below the
// fair share.
func perTaskBandwidthCap(h hw.Hardware) float64 {
	return math.Max(h.FairShareBandwidth(), h.GlobalBytesPerCycle/16)
}

// running tracks one in-flight task on a PE.
type running struct {
	task          Task
	pe            int
	start         float64 // dispatch time (for tracing)
	memStartAt    float64 // startup completes, streaming may begin
	computeDoneAt float64 // startup + compute fully elapsed
	memLeft       float64 // bytes still to stream
	faulted       bool    // injected fault: output must be discarded
}

func (r *running) done(now float64) bool {
	return now+timeEps(now) >= r.computeDoneAt && r.memLeft <= memEps
}

// Run executes the task list on hardware h and returns the makespan and
// per-PE utilization. Placement follows h.Scheduler: GPUs hand each ready
// task to the first idle PE (hardware dynamic scheduling, so regions of a
// polymerized program overlap and tail waves shrink); NPUs pre-assign tasks
// with the max-min static allocation of §4 and each core drains its own list.
func Run(h hw.Hardware, tasks []Task) Result {
	if err := h.Validate(); err != nil {
		panic(err)
	}
	if len(tasks) == 0 {
		return Result{PEBusy: make([]float64, h.NumPEs)}
	}
	if res, ok := analyticFastPath(h, tasks); ok {
		return res
	}
	switch h.Scheduler {
	case hw.ScheduleStaticMaxMin:
		return runEventLoop(h, staticAssign(h, tasks, nil))
	default:
		return runEventLoop(h, dynamicQueue(tasks))
	}
}

// fastPathMinWaves gates the analytic path: only programs whose identical
// task runs each span many waves take it, where the boundary-wave
// approximation error is negligible.
const fastPathMinWaves = 64

// analyticFastPath computes the makespan of very large programs in closed
// form. For a run of identical tasks the event loop is exactly wave-lockstep
// — every wave of |P| tasks starts and finishes together with an equal
// bandwidth share — so the analytic result matches the event loop except at
// region boundaries, where the dynamic scheduler would overlap one partial
// wave with the next region's first wave (a ≤1/waves relative error at the
// gated sizes).
func analyticFastPath(h hw.Hardware, tasks []Task) (Result, bool) {
	if len(tasks) < fastPathMinWaves*h.NumPEs {
		return Result{}, false
	}
	// Split into runs of identical tasks; every run must itself be large.
	type run struct {
		t Task
		n int
	}
	var runs []run
	for _, t := range tasks {
		if len(runs) > 0 && runs[len(runs)-1].t == t {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{t: t, n: 1})
		}
	}
	for _, r := range runs {
		if r.n < fastPathMinWaves*h.NumPEs {
			return Result{}, false
		}
	}

	bwCap := perTaskBandwidthCap(h)
	duration := func(t Task, active int) float64 {
		share := math.Min(bwCap, h.GlobalBytesPerCycle/float64(active))
		return t.StartupCycles + math.Max(t.ComputeCycles, t.MemBytes/share)
	}
	var makespan, busy, streamed float64
	for _, r := range runs {
		streamed += float64(r.n) * r.t.MemBytes
		full := r.n / h.NumPEs
		rem := r.n % h.NumPEs
		dFull := duration(r.t, h.NumPEs)
		makespan += float64(full) * dFull
		busy += float64(full*h.NumPEs) * dFull
		if rem > 0 {
			dRem := duration(r.t, rem)
			makespan += dRem
			busy += float64(rem) * dRem
		}
	}
	peBusy := make([]float64, h.NumPEs)
	for i := range peBusy {
		peBusy[i] = busy / float64(h.NumPEs)
	}
	return Result{Cycles: makespan, BusyPECycles: busy, NumTasks: len(tasks), MemBytesStreamed: streamed, PEBusy: peBusy}, true
}

// feeder abstracts task placement: next returns the task a freed PE should
// run, or false when that PE has no more work. drain discards work only the
// given PE could ever run (a statically assigned list when the PE dies
// mid-run), returning the count; abandon discards everything left, for the
// degenerate case where no live PE remains.
type feeder interface {
	next(pe int) (Task, bool)
	remaining() int
	drain(pe int) int
	abandon() int
}

// dynamicQueue models the GPU hardware scheduler: a single FIFO shared by
// all PEs.
type dynQueue struct {
	tasks []Task
	head  int
}

func dynamicQueue(tasks []Task) *dynQueue { return &dynQueue{tasks: tasks} }

func (q *dynQueue) next(pe int) (Task, bool) {
	if q.head >= len(q.tasks) {
		return Task{}, false
	}
	t := q.tasks[q.head]
	q.head++
	return t, true
}

func (q *dynQueue) remaining() int { return len(q.tasks) - q.head }

// drain is a no-op for the shared queue: any surviving PE can run the work.
func (q *dynQueue) drain(pe int) int { return 0 }

func (q *dynQueue) abandon() int {
	n := len(q.tasks) - q.head
	q.head = len(q.tasks)
	return n
}

// staticFeeder holds the per-PE lists computed by the max-min allocator.
type staticFeeder struct {
	perPE [][]Task
	left  int
}

func (f *staticFeeder) next(pe int) (Task, bool) {
	l := f.perPE[pe]
	if len(l) == 0 {
		return Task{}, false
	}
	t := l[0]
	f.perPE[pe] = l[1:]
	f.left--
	return t, true
}

func (f *staticFeeder) remaining() int { return f.left }

func (f *staticFeeder) drain(pe int) int {
	n := len(f.perPE[pe])
	f.perPE[pe] = nil
	f.left -= n
	return n
}

func (f *staticFeeder) abandon() int {
	n := 0
	for pe := range f.perPE {
		n += f.drain(pe)
	}
	return n
}

// staticAssign implements the max-min static allocation used on the NPU
// platform (§4): tasks are ordered by decreasing estimated duration (with the
// fair-share bandwidth) and each is placed on the currently least-loaded
// core, maximizing the minimum slack — classic LPT scheduling. dead marks PEs
// excluded from placement (fault injection); nil means all PEs are live.
func staticAssign(h hw.Hardware, tasks []Task, dead []bool) *staticFeeder {
	type est struct {
		idx  int
		cost float64
	}
	ests := make([]est, len(tasks))
	bw := h.FairShareBandwidth()
	for i, t := range tasks {
		ests[i] = est{idx: i, cost: PipelinedTaskCycles(t, bw)}
	}
	sort.SliceStable(ests, func(a, b int) bool { return ests[a].cost > ests[b].cost })

	live := make([]int, 0, h.NumPEs)
	for pe := 0; pe < h.NumPEs; pe++ {
		if dead == nil || !dead[pe] {
			live = append(live, pe)
		}
	}
	if len(live) == 0 {
		panic("sim: static assignment with no live PEs")
	}
	load := make([]float64, h.NumPEs)
	perPE := make([][]Task, h.NumPEs)
	for _, e := range ests {
		best := live[0]
		for _, pe := range live[1:] {
			if load[pe] < load[best]-eps {
				best = pe
			}
		}
		load[best] += e.cost
		perPE[best] = append(perPE[best], tasks[e.idx])
	}
	return &staticFeeder{perPE: perPE, left: len(tasks)}
}

// runEventLoop is the event-driven core without tracing.
func runEventLoop(h hw.Hardware, f feeder) Result {
	return runEventLoopInner(h, f, nil, nil)
}

// runEventLoopInner is the event-driven core. At every event boundary it
// recomputes the equal bandwidth share among streaming tasks (capped per
// task), advances streaming progress, retires finished tasks (reporting them
// to collect when tracing), and starts new ones on idle PEs. fs, when
// non-nil, injects deterministic hardware faults (dead PEs, per-PE compute
// slowdown, mid-run PE death, brownout windows, transient and sticky task
// faults); run-long bandwidth degradation is applied by the caller through h.
func runEventLoopInner(h hw.Hardware, f feeder, collect func(TraceEvent), fs *faultState) Result {
	var (
		now      float64
		active   []*running
		peBusy   = make([]float64, h.NumPEs)
		peFree   = make([]bool, h.NumPEs)
		nTasks   int
		faulted  int
		streamed float64
	)
	for i := range peFree {
		peFree[i] = fs == nil || !fs.dead[i]
	}

	start := func(pe int, t Task) {
		compute := t.ComputeCycles
		fault := false
		if fs != nil {
			compute *= fs.slow[pe]
			if fs.sticky[pe] > 0 {
				fs.sticky[pe]--
				fault = true
			} else if fs.taskFault(nTasks) {
				fault = true
			}
		}
		nTasks++
		streamed += t.MemBytes
		active = append(active, &running{
			task:          t,
			pe:            pe,
			start:         now,
			memStartAt:    now + t.StartupCycles,
			computeDoneAt: now + t.StartupCycles + compute,
			memLeft:       t.MemBytes,
			faulted:       fault,
		})
		peFree[pe] = false
		peBusy[pe] -= now // completed at retire time below
	}

	retire := func(r *running) {
		peBusy[r.pe] += now
		if r.faulted {
			faulted++
			if fs != nil {
				fs.peFaults[r.pe]++
			}
		}
		if collect != nil {
			collect(TraceEvent{PE: r.pe, Tag: r.task.Tag, Start: r.start, End: now})
		}
	}

	for {
		// Retire finished tasks.
		keep := active[:0]
		for _, r := range active {
			if r.done(now) {
				peFree[r.pe] = true
				retire(r)
			} else {
				keep = append(keep, r)
			}
		}
		active = keep

		// Process PE deaths due by now: the in-flight task (if any) is
		// lost, the PE accepts no further work, and statically assigned
		// residual work strands. Runs after retirement so a task finishing
		// exactly at the death cycle still completes.
		if fs != nil {
			for pe := 0; pe < h.NumPEs; pe++ {
				if fs.dead[pe] || now+timeEps(now) < fs.deathAt[pe] {
					continue
				}
				fs.dead[pe] = true
				fs.diedMid[pe] = true
				peFree[pe] = false
				keep := active[:0]
				for _, r := range active {
					if r.pe == pe {
						r.faulted = true
						retire(r)
					} else {
						keep = append(keep, r)
					}
				}
				active = keep
				fs.stranded += f.drain(pe)
			}
		}

		// Fill idle PEs.
		for pe := 0; pe < h.NumPEs; pe++ {
			if !peFree[pe] {
				continue
			}
			t, ok := f.next(pe)
			if !ok {
				continue
			}
			start(pe, t)
		}

		if len(active) == 0 {
			if f.remaining() == 0 {
				break
			}
			// Remaining work with nothing runnable: either every PE died
			// mid-run (the shared queue's leftovers strand), or the
			// static feeder misassigned — the latter cannot happen, so
			// any free PE here means a bug.
			for pe := 0; pe < h.NumPEs; pe++ {
				if peFree[pe] {
					panic("sim: no runnable tasks but work remains")
				}
			}
			if fs == nil {
				panic("sim: no runnable tasks but work remains")
			}
			fs.stranded += f.abandon()
			break
		}

		// Current bandwidth: the caller-scaled device total, derated by an
		// active brownout window, shared equally among streaming tasks and
		// capped per task.
		hNow := h
		if fs != nil {
			hNow.GlobalBytesPerCycle *= fs.bwFactor(now)
		}
		bwCap := perTaskBandwidthCap(hNow)
		tEps := timeEps(now)
		streaming := 0
		for _, r := range active {
			if now+tEps >= r.memStartAt && r.memLeft > memEps {
				streaming++
			}
		}
		share := bwCap
		if streaming > 0 {
			share = math.Min(bwCap, hNow.GlobalBytesPerCycle/float64(streaming))
		}

		// Next event: a startup completing, a compute finishing, a stream
		// draining, a PE death killing an in-flight task, or a brownout
		// boundary changing the bandwidth share. Streaming steps never
		// cross any of these boundaries.
		next := math.Inf(1)
		for _, r := range active {
			if r.memStartAt > now+tEps {
				next = math.Min(next, r.memStartAt)
			} else if r.memLeft > memEps {
				next = math.Min(next, now+r.memLeft/share)
			}
			if r.computeDoneAt > now+tEps {
				next = math.Min(next, r.computeDoneAt)
			}
			if fs != nil && !math.IsInf(fs.deathAt[r.pe], 1) && fs.deathAt[r.pe] > now+tEps {
				next = math.Min(next, fs.deathAt[r.pe])
			}
		}
		if fs != nil && fs.brown != nil {
			for _, b := range []float64{fs.brown.StartCycle, fs.brown.StartCycle + fs.brown.Duration} {
				if b > now+tEps {
					next = math.Min(next, b)
				}
			}
		}
		if math.IsInf(next, 1) {
			// Every active task is already finishable; loop retires them.
			continue
		}
		if next < now+tEps {
			// Force progress past float rounding.
			next = now + tEps
		}

		// Advance streaming progress to the event time.
		dt := next - now
		for _, r := range active {
			if now+tEps >= r.memStartAt && r.memLeft > memEps {
				r.memLeft = math.Max(0, r.memLeft-share*dt)
			}
		}
		now = next
	}

	var busy float64
	for _, b := range peBusy {
		busy += b
	}
	res := Result{Cycles: now, BusyPECycles: busy, NumTasks: nTasks, FaultedTasks: faulted, MemBytesStreamed: streamed, PEBusy: peBusy}
	if fs != nil {
		res.StrandedTasks = fs.stranded
		res.DeadPEs = fs.deadPEs()
		for _, n := range fs.peFaults {
			if n > 0 {
				res.PEFaults = append([]int(nil), fs.peFaults...)
				break
			}
		}
		if fs.brown != nil && fs.brown.StartCycle < now {
			res.BandwidthDerate = fs.brown.Factor
		}
	}
	return res
}

// TransferCycles returns the M_global cycles needed to stream n bytes at
// the device's full aggregate bandwidth — the cost model for KV page-copy
// (copy-on-write) and spill traffic charged by the serving scheduler.
func TransferCycles(h hw.Hardware, bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / h.GlobalBytesPerCycle
}
