package kvcache

import (
	"fmt"
	"sync"
	"testing"
)

func prompt(seed int64, n int) []int32 {
	out := make([]int32, n)
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	for i := range out {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		out[i] = int32(x * 0x2545f4914f6cdd1d & 0x7fff)
	}
	return out
}

func mustSeq(t *testing.T, m *Manager, tenant string, p []int32) *Sequence {
	t.Helper()
	s, err := m.NewSequence(tenant, p)
	if err != nil {
		t.Fatalf("NewSequence: %v", err)
	}
	return s
}

func checkOK(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The KV words a sequence holds must be exactly kvWord(token, position) —
// whether the pages came from fresh allocation, a prefix hit, or a COW copy.
func wantKV(p []int32, extra []int32) []uint64 {
	all := append(append([]int32(nil), p...), extra...)
	out := make([]uint64, len(all))
	for i, tok := range all {
		out[i] = kvWord(tok, i)
	}
	return out
}

func eqKV(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPrefixReuseSharesPages(t *testing.T) {
	m := New(Config{NumPages: 64, TokensPerPage: 8})
	shared := prompt(1, 32) // 4 full pages
	a := mustSeq(t, m, "t0", shared)
	if a.Reused() != 0 {
		t.Fatalf("first sequence reused %d tokens", a.Reused())
	}
	// Same prompt plus a divergent tail: all 4 full blocks must hit.
	b := mustSeq(t, m, "t0", append(append([]int32(nil), shared...), 99, 98, 97))
	if b.Reused() != 32 {
		t.Fatalf("reused = %d, want 32", b.Reused())
	}
	st := m.Stats()
	if st.PrefixHits != 4 || st.PrefixHitTokens != 32 {
		t.Fatalf("hits=%d tokens=%d, want 4/32", st.PrefixHits, st.PrefixHitTokens)
	}
	if want := 4 * m.PageBytes(); st.SavedBytes != want {
		t.Fatalf("SavedBytes=%d want %d", st.SavedBytes, want)
	}
	// Shared pages are counted once.
	if st.ActivePages != 4+1 /* b's tail */ +4-4 {
		// a holds 4, b shares those 4 and adds 1 partial tail.
		t.Fatalf("ActivePages=%d want 5", st.ActivePages)
	}
	if got := m.KV(b); !eqKV(got, wantKV(shared, []int32{99, 98, 97})) {
		t.Fatal("shared-prefix KV contents differ from recomputed contents")
	}
	checkOK(t, m)
	m.Release(a)
	m.Release(b)
	if err := m.Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// A misaligned prefix (same tokens, different absolute positions) must not
// share: the chain hash encodes the full history from position zero.
func TestNoMisalignedSharing(t *testing.T) {
	m := New(Config{NumPages: 64, TokensPerPage: 8})
	base := prompt(2, 24)
	a := mustSeq(t, m, "t", base)
	shifted := append([]int32{7}, base...) // same tokens one position later
	b := mustSeq(t, m, "t", shifted)
	if b.Reused() != 0 {
		t.Fatalf("misaligned prompt reused %d tokens", b.Reused())
	}
	if got := m.KV(b); !eqKV(got, wantKV(shifted, nil)) {
		t.Fatal("misaligned KV contents wrong")
	}
	m.Release(a)
	m.Release(b)
	if err := m.Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// Fork + divergent appends: COW must split the tail, and both branches'
// full KV contents must be bitwise-identical to independent recomputation.
func TestForkCOWBitwiseEqual(t *testing.T) {
	m := New(Config{NumPages: 64, TokensPerPage: 8})
	p := prompt(3, 20) // 2 full pages + 4-token tail
	a := mustSeq(t, m, "t", p)
	b := m.Fork(a)
	before := m.Stats()
	if err := m.Append(a, 111); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(b, 222); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.COWCopies-before.COWCopies != 1 {
		t.Fatalf("COW copies = %d, want exactly 1 (first divergent append)", st.COWCopies-before.COWCopies)
	}
	if want := int64(4) * m.Config().BytesPerToken; st.CopiedBytes-before.CopiedBytes != want {
		t.Fatalf("CopiedBytes=%d want %d", st.CopiedBytes-before.CopiedBytes, want)
	}
	if got := m.KV(a); !eqKV(got, wantKV(p, []int32{111})) {
		t.Fatal("branch a KV contents wrong after COW")
	}
	if got := m.KV(b); !eqKV(got, wantKV(p, []int32{222})) {
		t.Fatal("branch b KV contents wrong after COW")
	}
	checkOK(t, m)
	m.Release(a)
	m.Release(b)
	if err := m.Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// Sharing on vs off must produce bitwise-identical KV contents and digests
// for the same token streams — the subsystem's correctness bar.
func TestSharingOnOffBitwiseEqual(t *testing.T) {
	run := func(disable bool) ([]uint64, []uint64, uint64, uint64) {
		m := New(Config{NumPages: 256, TokensPerPage: 16, DisableSharing: disable})
		shared := prompt(4, 40)
		a := mustSeq(t, m, "t", shared)
		b := mustSeq(t, m, "t", append(append([]int32(nil), shared...), 5, 6))
		for i := int32(0); i < 30; i++ {
			if err := m.Append(a, 1000+i); err != nil {
				t.Fatal(err)
			}
			if err := m.Append(b, 2000+i); err != nil {
				t.Fatal(err)
			}
		}
		return m.KV(a), m.KV(b), m.Digest(a), m.Digest(b)
	}
	ka1, kb1, da1, db1 := run(false)
	ka2, kb2, da2, db2 := run(true)
	if !eqKV(ka1, ka2) || !eqKV(kb1, kb2) {
		t.Fatal("KV contents differ between sharing on and off")
	}
	if da1 != da2 || db1 != db2 {
		t.Fatalf("digests differ: on=%x/%x off=%x/%x", da1, db1, da2, db2)
	}
}

// Released prefixes are retained and revived; when the arena fills, cached
// pages are evicted LRU-first and a re-miss is charged as recomputed bytes.
func TestEvictionAccounting(t *testing.T) {
	m := New(Config{NumPages: 8, TokensPerPage: 8})
	p := prompt(5, 32) // 4 pages
	a := mustSeq(t, m, "t", p)
	m.Release(a)
	st := m.Stats()
	if st.CachedPages != 4 || st.ActivePages != 0 {
		t.Fatalf("cached=%d active=%d after release, want 4/0", st.CachedPages, st.ActivePages)
	}
	// Revival: same prompt hits all 4 cached pages.
	b := mustSeq(t, m, "t", p)
	st = m.Stats()
	if b.Reused() != 32 || st.Revived < 4 {
		t.Fatalf("reused=%d revived=%d, want 32/>=4", b.Reused(), st.Revived)
	}
	m.Release(b)
	// Now flood the arena with distinct prompts so the cached prefix is
	// evicted, then re-present the original prompt: zero reuse, and the
	// recompute is charged to the eviction ledger.
	for i := 0; i < 4; i++ {
		c := mustSeq(t, m, "t", prompt(int64(100+i), 16))
		m.Release(c)
	}
	d := mustSeq(t, m, "t", prompt(int64(200), 64)) // needs all 8 pages
	if d.Reused() != 0 {
		t.Fatalf("unexpected reuse %d", d.Reused())
	}
	st = m.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions when the arena filled")
	}
	m.Release(d)
	e := mustSeq(t, m, "t", p) // original prompt: evicted → recomputed
	if e.Reused() != 0 {
		t.Fatalf("reused=%d after eviction, want 0", e.Reused())
	}
	st = m.Stats()
	if want := 4 * m.PageBytes(); st.RecomputedBytes < want {
		t.Fatalf("RecomputedBytes=%d, want >= %d (4 evicted blocks re-missed)", st.RecomputedBytes, want)
	}
	m.Release(e)
	if err := m.Quiescent(); err != nil {
		t.Fatal(err)
	}
}

// Exhaustion with nothing evictable returns ErrNoPages and rolls back
// cleanly — the partially built sequence holds nothing.
func TestExhaustionRollback(t *testing.T) {
	m := New(Config{NumPages: 4, TokensPerPage: 8})
	a := mustSeq(t, m, "t", prompt(6, 24)) // 3 pages
	if _, err := m.NewSequence("t", prompt(7, 24)); err != ErrNoPages {
		t.Fatalf("err = %v, want ErrNoPages", err)
	}
	st := m.Stats()
	if st.FailedAllocs == 0 {
		t.Fatal("FailedAllocs not counted")
	}
	if st.ActivePages != 3 {
		t.Fatalf("rollback leaked: ActivePages=%d want 3", st.ActivePages)
	}
	checkOK(t, m)
	m.Release(a)
	if err := m.Quiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	m := New(Config{NumPages: 8, TokensPerPage: 8})
	s := mustSeq(t, m, "t", prompt(8, 8))
	m.Release(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	m.Release(s)
}

// Fragmentation churn under -race: concurrent tenants allocate, fork,
// append, and release sequences of varying lengths against a small arena.
// The books must balance exactly afterward.
func TestFragmentationChurnRace(t *testing.T) {
	m := New(Config{NumPages: 128, TokensPerPage: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				n := 1 + (w*61+i*17)%40
				s, err := m.NewSequence(fmt.Sprintf("t%d", w%3), prompt(int64(w%4*10+i%7), n))
				if err != nil {
					continue // arena momentarily full — fine
				}
				var f *Sequence
				if i%3 == 0 {
					f = m.Fork(s)
				}
				for j := 0; j < i%5; j++ {
					_ = m.Append(s, int32(j))
					if f != nil {
						_ = m.Append(f, int32(100+j))
					}
				}
				if f != nil {
					m.Release(f)
				}
				m.Release(s)
			}
		}(w)
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.ActivePages != 0 || st.Sequences != 0 {
		t.Fatalf("leak after churn: active=%d seqs=%d", st.ActivePages, st.Sequences)
	}
	if st.Allocs-st.Frees != int64(st.CachedPages) {
		t.Fatalf("books don't balance: allocs=%d frees=%d cached=%d",
			st.Allocs, st.Frees, st.CachedPages)
	}
}

func TestPaddedLen(t *testing.T) {
	m := New(Config{TokensPerPage: 16})
	for _, tc := range []struct{ in, want int }{{1, 16}, {16, 16}, {17, 32}, {100, 112}} {
		if got := m.PaddedLen(tc.in); got != tc.want {
			t.Fatalf("PaddedLen(%d)=%d want %d", tc.in, got, tc.want)
		}
	}
}
