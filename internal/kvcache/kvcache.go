// Package kvcache is the paged KV-cache manager behind the LLM serving
// scheduler: a fixed-size-page arena carved out of the device's M_global
// budget, per-sequence page tables, hash-based prefix reuse, and
// copy-on-write on divergence.
//
// Sequences append tokens one page at a time. A page that fills up is
// *sealed* — it becomes immutable and is registered in a prefix index keyed
// by the chain hash of every token from the sequence start, so a later
// sequence whose prompt begins with the same tokens at the same positions
// shares the page instead of recomputing its KV entries. Partial tail pages
// are private to one sequence unless the sequence is forked (parallel
// sampling); a write to a page with more than one reference copies it first
// (COW), so branches can never corrupt each other's KV state.
//
// The manager carries simulated KV contents — one deterministic word per
// (token, absolute position) — rather than real tensors. That is what makes
// the subsystem's central claim testable: decode driven through shared
// prefixes and COW copies must observe bitwise-identical KV contents to
// decode with sharing disabled, and the tests assert exactly that.
//
// Eviction: when a sequence releases its pages, sealed prefix pages are
// retained in a cached LRU (refcount zero, still indexed) and reclaimed only
// when the free list runs dry. Every block whose recompute was avoided by a
// prefix hit is accounted in SavedBytes; every block that *would* have hit a
// page the LRU already reclaimed is accounted in RecomputedBytes — the exact
// bytes-saved-versus-recomputed ledger the eviction policy is judged by.
package kvcache

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoPages means the arena cannot satisfy an allocation even after
// reclaiming every cached page. The scheduler reacts by keeping the request
// queued rather than failing it.
var ErrNoPages = errors.New("kvcache: out of pages")

// Config sizes the pager. Zero fields take defaults.
type Config struct {
	// NumPages is the arena size in pages (default 2048).
	NumPages int
	// TokensPerPage is the page granularity in tokens (default 16). It is
	// also the KV padding quantum the decode batcher needs: shapes pad to
	// the next page boundary, nothing more.
	TokensPerPage int
	// BytesPerToken is the KV footprint of one token of one sequence
	// (default 5120: Llama2-13b under 4-way tensor parallelism, K+V ×
	// hidden/4 × fp16).
	BytesPerToken int64
	// DisableSharing turns the prefix index off: every page is private and
	// nothing is retained after release. The correctness baseline the
	// bitwise-equality tests compare against, and the ablation knob.
	DisableSharing bool
	// EvictedLedger bounds the evicted-hash ledger used to account
	// recomputed bytes exactly (default 8192 hashes).
	EvictedLedger int
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.NumPages <= 0 {
		c.NumPages = 2048
	}
	if c.TokensPerPage <= 0 {
		c.TokensPerPage = 16
	}
	if c.BytesPerToken <= 0 {
		c.BytesPerToken = 5120
	}
	if c.EvictedLedger <= 0 {
		c.EvictedLedger = 8192
	}
	return c
}

// PageID indexes the arena.
type PageID int32

// page is one fixed-size KV page. tokens and data are parallel: data[i] is
// the simulated KV content of tokens[i] at its absolute sequence position.
type page struct {
	refs   int32
	n      int // tokens stored
	tokens []int32
	data   []uint64
	// sealed pages are full, immutable, and indexed under hash (the chain
	// hash of every token from sequence start through this page).
	sealed bool
	hash   uint64
	// cached pages are sealed pages with zero references retained for
	// future prefix hits; lru is their reclaim ordering tick.
	cached bool
	lru    uint64
}

// Sequence is one sequence's view of the cache: an ordered page table plus
// the chain hash of its sealed prefix.
type Sequence struct {
	id      uint64
	tenant  string
	pages   []PageID
	length  int
	reused  int // tokens acquired via prefix hits instead of recompute
	chain   uint64
	dead    bool
	digest  uint64 // running fold of KV words, updated as tokens land
	ndigest int    // tokens folded into digest so far
}

// ID returns the sequence's manager-unique id.
func (s *Sequence) ID() uint64 { return s.id }

// Tenant returns the owning tenant.
func (s *Sequence) Tenant() string { return s.tenant }

// Len returns the sequence length in tokens.
func (s *Sequence) Len() int { return s.length }

// Reused returns how many prompt tokens were satisfied by prefix hits —
// tokens whose KV entries the scheduler does not have to prefill.
func (s *Sequence) Reused() int { return s.reused }

// Pages returns the page-table length.
func (s *Sequence) Pages() int { return len(s.pages) }

// Stats is the manager's cumulative + instantaneous accounting. All byte
// fields are exact: they are derived from page-granularity events, never
// estimated.
type Stats struct {
	Pages       int `json:"pages"`
	FreePages   int `json:"free_pages"`
	ActivePages int `json:"active_pages"` // refs > 0
	CachedPages int `json:"cached_pages"` // retained, refs == 0
	Sequences   int `json:"sequences"`

	PrefixHits      int64 `json:"prefix_hits"`       // blocks shared instead of recomputed
	PrefixHitTokens int64 `json:"prefix_hit_tokens"` // tokens those blocks carried
	Revived         int64 `json:"revived"`           // hits served by a cached (refs==0) page
	COWCopies       int64 `json:"cow_copies"`
	CopiedBytes     int64 `json:"copied_bytes"` // COW page-copy traffic (bandwidth, charged by the scheduler)
	Evictions       int64 `json:"evictions"`    // cached pages reclaimed
	SavedBytes      int64 `json:"saved_bytes"`  // KV bytes not recomputed thanks to sharing
	RecomputedBytes int64 `json:"recomputed_bytes"`
	Allocs          int64 `json:"allocs"`
	Frees           int64 `json:"frees"`
	FailedAllocs    int64 `json:"failed_allocs"`
}

// Manager is the paged KV-cache manager. Safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	cfg   Config
	pages []page
	free  []PageID
	// index maps a chain hash to the sealed pages carrying it (a short
	// collision list; token contents are always verified before sharing).
	index map[uint64][]PageID
	// evicted is the bounded ledger of chain hashes whose page was
	// reclaimed, backing the recomputed-bytes accounting.
	evicted     map[uint64]struct{}
	evictedFIFO []uint64
	seqs        int
	nextSeq     uint64
	tick        uint64
	stats       Stats
}

// New builds a manager. Zero Config fields take defaults.
func New(cfg Config) *Manager {
	cfg = cfg.WithDefaults()
	m := &Manager{
		cfg:     cfg,
		pages:   make([]page, cfg.NumPages),
		free:    make([]PageID, cfg.NumPages),
		index:   make(map[uint64][]PageID),
		evicted: make(map[uint64]struct{}),
	}
	for i := range m.pages {
		m.pages[i].tokens = make([]int32, 0, cfg.TokensPerPage)
		m.pages[i].data = make([]uint64, 0, cfg.TokensPerPage)
		// Free list in reverse so allocation order starts at page 0.
		m.free[i] = PageID(cfg.NumPages - 1 - i)
	}
	m.stats.Pages = cfg.NumPages
	return m
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// PageBytes returns one page's KV footprint.
func (m *Manager) PageBytes() int64 {
	return int64(m.cfg.TokensPerPage) * m.cfg.BytesPerToken
}

// PaddedLen rounds a KV length up to the page boundary — the only padding a
// paged cache needs, replacing the batcher's coarse KV-quantum buckets.
func (m *Manager) PaddedLen(n int) int {
	q := m.cfg.TokensPerPage
	return (n + q - 1) / q * q
}

// kvWord is the simulated KV content of token tok at absolute position pos:
// a deterministic word (splitmix64 finalizer) that depends on both, so a
// page shared at the wrong offset or a COW copy that lost data produces a
// different sequence digest instead of silently passing.
func kvWord(tok int32, pos int) uint64 {
	x := uint64(uint32(tok))<<32 | uint64(uint32(pos))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// chainMix folds one token into a running chain hash.
func chainMix(h uint64, tok int32) uint64 {
	h ^= uint64(uint32(tok)) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 29
	h *= 0xff51afd7ed558ccd
	return h ^ h>>32
}

// NewSequence builds a sequence over prompt, sharing every full prompt block
// the prefix index already holds and allocating fresh pages for the rest.
// On ErrNoPages nothing is held: partially acquired pages are rolled back.
func (m *Manager) NewSequence(tenant string, prompt []int32) (*Sequence, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("kvcache: empty prompt")
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	m.nextSeq++
	s := &Sequence{id: m.nextSeq, tenant: tenant}
	q := m.cfg.TokensPerPage
	pos := 0
	for pos < len(prompt) {
		blk := prompt[pos:]
		if len(blk) > q {
			blk = blk[:q]
		}
		full := len(blk) == q
		var chain uint64
		if full {
			chain = s.chain
			for _, t := range blk {
				chain = chainMix(chain, t)
			}
		}
		if full && !m.cfg.DisableSharing {
			if id, ok := m.lookupLocked(chain, blk); ok {
				m.refLocked(id)
				s.pages = append(s.pages, id)
				s.chain = chain
				s.length += q
				s.reused += q
				m.stats.PrefixHits++
				m.stats.PrefixHitTokens += int64(q)
				m.stats.SavedBytes += m.PageBytes()
				m.foldDigestLocked(s, id)
				pos += q
				continue
			}
			if _, was := m.evicted[chain]; was {
				// This very block used to be resident: its recompute is
				// the price of the eviction that reclaimed it.
				m.stats.RecomputedBytes += m.PageBytes()
			}
		}
		id, err := m.allocLocked()
		if err != nil {
			m.rollbackLocked(s)
			return nil, err
		}
		p := &m.pages[id]
		for i, t := range blk {
			p.tokens = append(p.tokens, t)
			p.data = append(p.data, kvWord(t, s.length+i))
		}
		p.n = len(blk)
		if full {
			m.sealLocked(id, chain)
		}
		s.pages = append(s.pages, id)
		s.length += len(blk)
		if full {
			s.chain = chain
		}
		m.foldDigestLocked(s, id)
		pos += len(blk)
	}
	m.seqs++
	m.stats.Sequences = m.seqs
	return s, nil
}

// Append adds one generated token to the sequence, allocating a fresh page
// at page boundaries and copying a shared tail page first (COW).
func (m *Manager) Append(s *Sequence, tok int32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.dead {
		panic(fmt.Sprintf("kvcache: append to released sequence %d", s.id))
	}
	q := m.cfg.TokensPerPage
	if s.length%q == 0 {
		// Boundary: the previous page (if any) is full and already sealed;
		// start a fresh private page.
		id, err := m.allocLocked()
		if err != nil {
			return err
		}
		s.pages = append(s.pages, id)
	} else {
		last := s.pages[len(s.pages)-1]
		if m.pages[last].refs > 1 {
			// Divergence on a shared tail (forked branches): copy first.
			id, err := m.allocLocked()
			if err != nil {
				return err
			}
			src, dst := &m.pages[last], &m.pages[id]
			dst.tokens = append(dst.tokens, src.tokens...)
			dst.data = append(dst.data, src.data...)
			dst.n = src.n
			m.stats.COWCopies++
			m.stats.CopiedBytes += int64(src.n) * m.cfg.BytesPerToken
			m.unrefLocked(last)
			s.pages[len(s.pages)-1] = id
		}
	}
	id := s.pages[len(s.pages)-1]
	p := &m.pages[id]
	p.tokens = append(p.tokens, tok)
	p.data = append(p.data, kvWord(tok, s.length))
	p.n++
	s.length++
	s.digest ^= rotl(p.data[p.n-1], uint(s.ndigest%63)+1)
	s.ndigest++
	if p.n == q {
		s.chain = sealChain(s.chain, p.tokens)
		if !m.cfg.DisableSharing {
			m.sealLocked(id, s.chain)
		}
	}
	return nil
}

// Fork clones a sequence for parallel sampling: every page — including the
// partial tail — is shared by reference, so the clone costs zero pages until
// the branches diverge and COW splits the tail.
func (m *Manager) Fork(s *Sequence) *Sequence {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.dead {
		panic(fmt.Sprintf("kvcache: fork of released sequence %d", s.id))
	}
	m.nextSeq++
	c := &Sequence{
		id: m.nextSeq, tenant: s.tenant,
		pages:  append([]PageID(nil), s.pages...),
		length: s.length, reused: s.reused, chain: s.chain,
		digest: s.digest, ndigest: s.ndigest,
	}
	for _, id := range c.pages {
		m.refLocked(id)
	}
	m.seqs++
	m.stats.Sequences = m.seqs
	return c
}

// Release drops the sequence's references. Sealed pages reaching refcount
// zero are retained in the cached LRU for future prefix hits (unless sharing
// is disabled); everything else is freed. Releasing twice panics — page
// lifetime bugs must surface at the cause, as in the graphrt arena.
func (m *Manager) Release(s *Sequence) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.dead {
		panic(fmt.Sprintf("kvcache: double release of sequence %d", s.id))
	}
	s.dead = true
	for _, id := range s.pages {
		m.unrefLocked(id)
	}
	s.pages = nil
	m.seqs--
	m.stats.Sequences = m.seqs
}

// Digest returns the running fold of every KV word the sequence holds, in
// position order — the value decode outputs are derived from, and the value
// the bitwise sharing-on/off equality tests compare.
func (m *Manager) Digest(s *Sequence) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return s.digest
}

// KV returns a copy of the sequence's full simulated KV contents (tests).
func (m *Manager) KV(s *Sequence) []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, s.length)
	for _, id := range s.pages {
		p := &m.pages[id]
		out = append(out, p.data[:p.n]...)
	}
	return out
}

// EvictCached reclaims up to n cached pages (oldest first), returning how
// many were reclaimed. The allocator calls this implicitly when the free
// list runs dry; the scheduler may call it to make room proactively.
func (m *Manager) EvictCached(n int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	evicted := 0
	for evicted < n && m.evictOneLocked() {
		evicted++
	}
	return evicted
}

// Stats snapshots the accounting.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.FreePages = len(m.free)
	active, cached := 0, 0
	for i := range m.pages {
		if m.pages[i].refs > 0 {
			active++
		} else if m.pages[i].cached {
			cached++
		}
	}
	st.ActivePages = active
	st.CachedPages = cached
	return st
}

// CheckInvariants verifies the arena's books: every page is exactly one of
// free, cached, or referenced; refcounts are non-negative; the index holds
// only sealed pages. It returns the first violation found (tests and the
// chaos harness call it after every scenario).
func (m *Manager) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	onFree := make(map[PageID]bool, len(m.free))
	for _, id := range m.free {
		if onFree[id] {
			return fmt.Errorf("kvcache: page %d on free list twice", id)
		}
		onFree[id] = true
	}
	counted := 0
	for i := range m.pages {
		p := &m.pages[i]
		id := PageID(i)
		switch {
		case p.refs < 0:
			return fmt.Errorf("kvcache: page %d refcount %d < 0", id, p.refs)
		case onFree[id] && (p.refs > 0 || p.cached):
			return fmt.Errorf("kvcache: page %d free but refs=%d cached=%v", id, p.refs, p.cached)
		case p.cached && p.refs != 0:
			return fmt.Errorf("kvcache: page %d cached with refs=%d", id, p.refs)
		case p.refs == 0 && !p.cached && !onFree[id]:
			return fmt.Errorf("kvcache: page %d leaked (refs=0, not cached, not free)", id)
		}
		if onFree[id] {
			counted++
		}
	}
	if counted != len(m.free) {
		return fmt.Errorf("kvcache: free list references %d distinct pages, holds %d", counted, len(m.free))
	}
	for h, ids := range m.index {
		for _, id := range ids {
			p := &m.pages[id]
			if !p.sealed || p.hash != h {
				return fmt.Errorf("kvcache: index[%x] holds page %d sealed=%v hash=%x", h, id, p.sealed, p.hash)
			}
		}
	}
	return nil
}

// Quiescent returns an error if any page is still referenced or any
// sequence is still live — the KV-leak assertion the chaos harness runs
// after every scenario drains.
func (m *Manager) Quiescent() error {
	if err := m.CheckInvariants(); err != nil {
		return err
	}
	st := m.Stats()
	if st.ActivePages != 0 || st.Sequences != 0 {
		return fmt.Errorf("kvcache: not quiescent: %d active pages, %d live sequences", st.ActivePages, st.Sequences)
	}
	return nil
}

// ---- internals (callers hold m.mu) ----

func sealChain(chain uint64, tokens []int32) uint64 {
	for _, t := range tokens {
		chain = chainMix(chain, t)
	}
	return chain
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// foldDigestLocked folds a freshly attached page's words into the digest.
func (m *Manager) foldDigestLocked(s *Sequence, id PageID) {
	p := &m.pages[id]
	for i := 0; i < p.n; i++ {
		s.digest ^= rotl(p.data[i], uint(s.ndigest%63)+1)
		s.ndigest++
	}
}

// lookupLocked finds a sealed page for (chain, tokens), reviving it from the
// cached LRU if necessary.
func (m *Manager) lookupLocked(chain uint64, blk []int32) (PageID, bool) {
	for _, id := range m.index[chain] {
		p := &m.pages[id]
		if p.n != len(blk) {
			continue
		}
		match := true
		for i, t := range blk {
			if p.tokens[i] != t {
				match = false
				break
			}
		}
		if match {
			if p.cached {
				p.cached = false
				m.stats.Revived++
			}
			return id, true
		}
	}
	return 0, false
}

func (m *Manager) refLocked(id PageID) {
	p := &m.pages[id]
	if p.cached {
		p.cached = false
		m.stats.Revived++
	}
	p.refs++
}

// unrefLocked drops one reference; at zero the page is cached (sealed,
// sharing on) or freed.
func (m *Manager) unrefLocked(id PageID) {
	p := &m.pages[id]
	if p.refs <= 0 {
		panic(fmt.Sprintf("kvcache: page %d refcount underflow (refs=%d)", id, p.refs))
	}
	p.refs--
	if p.refs > 0 {
		return
	}
	if p.sealed && !m.cfg.DisableSharing {
		m.tick++
		p.cached = true
		p.lru = m.tick
		return
	}
	m.freeLocked(id)
}

// allocLocked pops a free page, evicting the oldest cached page when the
// free list is empty. The returned page is reset.
func (m *Manager) allocLocked() (PageID, error) {
	if len(m.free) == 0 && !m.evictOneLocked() {
		m.stats.FailedAllocs++
		return 0, ErrNoPages
	}
	id := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	p := &m.pages[id]
	p.refs = 1
	p.n = 0
	p.tokens = p.tokens[:0]
	p.data = p.data[:0]
	p.sealed = false
	p.hash = 0
	p.cached = false
	m.stats.Allocs++
	return id, nil
}

// evictOneLocked reclaims the least-recently-used cached page, recording its
// hash in the evicted ledger so a later miss on it is accounted as
// recomputed bytes.
func (m *Manager) evictOneLocked() bool {
	victim, oldest := PageID(-1), uint64(0)
	for i := range m.pages {
		p := &m.pages[i]
		if p.cached && (victim < 0 || p.lru < oldest) {
			victim, oldest = PageID(i), p.lru
		}
	}
	if victim < 0 {
		return false
	}
	p := &m.pages[victim]
	m.stats.Evictions++
	if _, dup := m.evicted[p.hash]; !dup {
		m.evicted[p.hash] = struct{}{}
		m.evictedFIFO = append(m.evictedFIFO, p.hash)
		if len(m.evictedFIFO) > m.cfg.EvictedLedger {
			drop := m.evictedFIFO[0]
			m.evictedFIFO = m.evictedFIFO[1:]
			delete(m.evicted, drop)
		}
	}
	p.cached = false
	m.freeLocked(victim)
	return true
}

// freeLocked returns a page to the free list, removing it from the index if
// sealed. Freeing a referenced or already-free page panics.
func (m *Manager) freeLocked(id PageID) {
	p := &m.pages[id]
	if p.refs != 0 {
		panic(fmt.Sprintf("kvcache: freeing page %d with refs=%d", id, p.refs))
	}
	if p.sealed {
		ids := m.index[p.hash]
		for i, x := range ids {
			if x == id {
				ids = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(ids) == 0 {
			delete(m.index, p.hash)
		} else {
			m.index[p.hash] = ids
		}
		p.sealed = false
	}
	for _, f := range m.free {
		if f == id {
			panic(fmt.Sprintf("kvcache: page %d freed twice", id))
		}
	}
	m.free = append(m.free, id)
	m.stats.Frees++
}

// sealLocked marks a full page immutable and registers it for sharing.
func (m *Manager) sealLocked(id PageID, chain uint64) {
	p := &m.pages[id]
	p.sealed = true
	p.hash = chain
	m.index[chain] = append(m.index[chain], id)
}

// rollbackLocked undoes a partially built sequence after an allocation
// failure, leaving the arena exactly as found.
func (m *Manager) rollbackLocked(s *Sequence) {
	for _, id := range s.pages {
		m.unrefLocked(id)
	}
	s.pages = nil
	s.length = 0
	s.reused = 0
}
