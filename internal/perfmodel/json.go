package perfmodel

import (
	"encoding/json"
	"fmt"
)

// modelJSON is the serialized form of a fitted model: the knot positions and
// measured costs.
type modelJSON struct {
	Xs []float64 `json:"xs"`
	Ys []float64 `json:"ys"`
}

// MarshalJSON serializes the fitted knots, so offline-stage artifacts can be
// shipped with the micro-kernel binaries and reloaded without re-measuring.
func (m *Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{Xs: m.xs, Ys: m.ys})
}

// UnmarshalJSON restores a fitted model, validating the knot invariants.
func (m *Model) UnmarshalJSON(b []byte) error {
	var raw modelJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	if len(raw.Xs) == 0 || len(raw.Xs) != len(raw.Ys) {
		return fmt.Errorf("perfmodel: malformed model: %d xs, %d ys", len(raw.Xs), len(raw.Ys))
	}
	for i := 1; i < len(raw.Xs); i++ {
		if raw.Xs[i] <= raw.Xs[i-1] {
			return fmt.Errorf("perfmodel: knots not strictly increasing at %d", i)
		}
	}
	for i, y := range raw.Ys {
		if y < 0 {
			return fmt.Errorf("perfmodel: negative cost at knot %d", i)
		}
	}
	m.xs = raw.Xs
	m.ys = raw.Ys
	return nil
}
