package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleGrid(t *testing.T) {
	g := SampleGrid(5120)
	if g[0] != 1 {
		t.Fatal("grid must start at 1")
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not strictly increasing at %d: %v", i, g)
		}
	}
	if g[len(g)-1] != 5120 {
		t.Fatalf("grid must end at maxT, got %d", g[len(g)-1])
	}
	if len(g) > 40 {
		t.Fatalf("grid too dense: %d points", len(g))
	}
}

func TestSampleGridSmall(t *testing.T) {
	g := SampleGrid(1)
	if len(g) != 1 || g[0] != 1 {
		t.Fatalf("SampleGrid(1) = %v", g)
	}
	g = SampleGrid(3)
	if g[len(g)-1] != 3 {
		t.Fatalf("SampleGrid(3) = %v", g)
	}
}

func TestSampleGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SampleGrid(0)
}

func TestFitExactLinear(t *testing.T) {
	// A linear cost is reproduced exactly at every t, including between
	// knots and beyond the grid.
	m := Fit(func(t int) float64 { return 100 + 7*float64(t) }, 1000)
	for _, tt := range []int{1, 2, 5, 9, 17, 33, 999, 1000, 4096} {
		want := 100 + 7*float64(tt)
		if got := m.Predict(tt); math.Abs(got-want) > 1e-6 {
			t.Fatalf("Predict(%d) = %g, want %g", tt, got, want)
		}
	}
}

func TestFitPiecewiseMax(t *testing.T) {
	// cost = startup + max(compute·t, mem·t + store): piecewise linear
	// with a crossover; the fit should be close everywhere.
	cost := func(t int) float64 {
		x := float64(t)
		return 50 + math.Max(3*x, 1.5*x+400)
	}
	m := Fit(cost, 2048)
	for tt := 1; tt <= 2048; tt += 13 {
		want := cost(tt)
		got := m.Predict(tt)
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("Predict(%d) = %g, want %g (>5%% off)", tt, got, want)
		}
	}
}

func TestPredictBelowFirstKnot(t *testing.T) {
	m := Fit(func(t int) float64 { return float64(t) }, 100)
	if got := m.Predict(1); got != 1 {
		t.Fatalf("Predict(1) = %g", got)
	}
}

func TestPredictPanicsOnZero(t *testing.T) {
	m := Fit(func(t int) float64 { return float64(t) }, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict(0)
}

func TestFitRejectsInvalidMeasurement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fit(func(t int) float64 { return math.NaN() }, 10)
}

func TestKnotsAndMaxT(t *testing.T) {
	m := Fit(func(t int) float64 { return float64(t) }, 512)
	if m.Knots() < 10 {
		t.Fatalf("too few knots: %d", m.Knots())
	}
	if m.MaxT() != 512 {
		t.Fatalf("MaxT = %d", m.MaxT())
	}
}

// Property: for any monotone cost function, prediction is monotone in t and
// exact at every knot.
func TestFitMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		slope := float64(a%50) + 0.5
		base := float64(b % 200)
		cost := func(t int) float64 { return base + slope*math.Sqrt(float64(t))*10 + slope*float64(t) }
		m := Fit(cost, 640)
		prev := m.Predict(1)
		for tt := 2; tt <= 700; tt += 7 {
			cur := m.Predict(tt)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		for _, knot := range SampleGrid(640) {
			if math.Abs(m.Predict(knot)-cost(knot)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
