// Package perfmodel implements the micro-kernel performance models of
// MikPoly §3.3: for each fixed-size micro-kernel K̃, the offline stage learns
// a piecewise-linear function g_predict(t) estimating the cost of a
// pipelined task with t kernel instances on a single PE. The function is
// fitted to measurements (simulated runs in this reproduction, hardware runs
// in the paper) taken at a logarithmic grid of t values up to n_pred.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// Model is a fitted piecewise-linear cost function over the instance count t.
type Model struct {
	// xs are the knot positions (t values) in strictly increasing order;
	// ys are the measured costs at those knots.
	xs []float64
	ys []float64
}

// SampleGrid returns the t values at which measurements are taken:
// dense at the start (1..8) where pipeline fill dominates, then geometric
// up to maxT (the paper's n_pred, 5120 by default).
func SampleGrid(maxT int) []int {
	if maxT < 1 {
		panic(fmt.Sprintf("perfmodel: maxT must be >= 1, got %d", maxT))
	}
	var grid []int
	for t := 1; t <= 8 && t <= maxT; t++ {
		grid = append(grid, t)
	}
	for t := 12; t <= maxT; t = t * 3 / 2 {
		grid = append(grid, t)
	}
	if grid[len(grid)-1] != maxT {
		grid = append(grid, maxT)
	}
	return grid
}

// Fit learns a model by measuring the cost at the sample grid. measure must
// return the cost (in cycles) of a pipelined task with the given instance
// count.
func Fit(measure func(t int) float64, maxT int) *Model {
	grid := SampleGrid(maxT)
	m := &Model{xs: make([]float64, len(grid)), ys: make([]float64, len(grid))}
	for i, t := range grid {
		c := measure(t)
		if math.IsNaN(c) || c < 0 {
			panic(fmt.Sprintf("perfmodel: invalid measurement %g at t=%d", c, t))
		}
		m.xs[i] = float64(t)
		m.ys[i] = c
	}
	return m
}

// Predict evaluates g_predict(t): linear interpolation between knots, and
// linear extrapolation of the final segment beyond n_pred.
func (m *Model) Predict(t int) float64 {
	if t < 1 {
		panic(fmt.Sprintf("perfmodel: Predict needs t >= 1, got %d", t))
	}
	x := float64(t)
	n := len(m.xs)
	if n == 1 {
		return m.ys[0]
	}
	if x <= m.xs[0] {
		return m.ys[0]
	}
	// Find the segment [xs[i-1], xs[i]] containing x.
	i := sort.SearchFloat64s(m.xs, x)
	if i >= n {
		i = n - 1 // extrapolate the last segment
	}
	x0, x1 := m.xs[i-1], m.xs[i]
	y0, y1 := m.ys[i-1], m.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Knots reports the number of fitted knots (for diagnostics).
func (m *Model) Knots() int { return len(m.xs) }

// MaxT reports the largest fitted t.
func (m *Model) MaxT() int { return int(m.xs[len(m.xs)-1]) }
