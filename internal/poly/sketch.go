package poly

import (
	"fmt"
	"strings"
)

// Sketch renders the program's region layout as ASCII art on a grid of at
// most width×height cells — the visual form of Fig. 14's polymerization
// strategies. Each region is drawn with a distinct letter (A, B, C, ...) in
// row-major region order.
func (p *Program) Sketch(width, height int) string {
	if width < 4 {
		width = 4
	}
	if height < 2 {
		height = 2
	}
	if len(p.Regions) == 0 || p.Shape.M <= 0 || p.Shape.N <= 0 {
		return "(empty program)"
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = '?'
		}
	}
	for ri, r := range p.Regions {
		label := byte('A' + ri%26)
		y0 := r.M0 * height / p.Shape.M
		y1 := (r.M0 + r.M) * height / p.Shape.M
		x0 := r.N0 * width / p.Shape.N
		x1 := (r.N0 + r.N) * width / p.Shape.N
		if y1 <= y0 {
			y1 = y0 + 1
		}
		if x1 <= x0 {
			x1 = x0 + 1
		}
		for y := y0; y < y1 && y < height; y++ {
			for x := x0; x < x1 && x < width; x++ {
				grid[y][x] = label
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s|\n", row)
	}
	fmt.Fprintf(&b, "+%s+", strings.Repeat("-", width))
	for ri, r := range p.Regions {
		fmt.Fprintf(&b, "\n%c = %v over %dx%d at (%d,%d)",
			'A'+ri%26, r.Kern, r.M, r.N, r.M0, r.N0)
	}
	return b.String()
}
