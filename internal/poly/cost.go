package poly

import (
	"mikpoly/internal/sim"
	"mikpoly/internal/tune"
)

// WaveCount returns f_wave = ceil(tasks / pes): the number of scheduling
// waves a task grid needs on pes processing engines. This is THE wave-count
// definition — the planner's cost model, the Explain breakdown and the
// split-K scorer all call it, so the three can never drift apart (they used
// to each inline their own ceil). Integer arithmetic keeps it exact for any
// representable task count.
func WaveCount(tasks, pes int) float64 {
	if pes <= 0 {
		panic("poly: wave count with no processing engines")
	}
	if tasks <= 0 {
		return 0
	}
	return float64((tasks + pes - 1) / pes)
}

// ProgramCost evaluates the full cost model (Eq. 2) for an already-built
// program against a library — the authoritative scorer the planner's
// incremental search must agree with (cross-checked by tests). Output-plane
// patterns sum waves×pipe per region; split-K regions co-run over one shared
// output, so the wave term covers the combined grid and the pipe term is the
// slowest slice.
func ProgramCost(prog *Program, lib *tune.Library) float64 {
	if prog.Pattern == PatternChain {
		// Fused chains: one strip task per row band, priced exactly as
		// the simulator runs it (the scale g_predict is fitted against).
		bw := lib.HW.FairShareBandwidth()
		var sum float64
		for _, r := range prog.Regions {
			t1, _, _ := r.Tiles()
			sum += WaveCount(t1, lib.HW.NumPEs) * sim.PipelinedTaskCycles(r.chainTask(lib.HW), bw)
		}
		return sum
	}
	if prog.Pattern == PatternSplitK {
		total := 0
		maxPipe := 0.0
		for _, r := range prog.Regions {
			total += r.Tasks()
			_, _, t3 := r.Tiles()
			if c := lib.PredictTask(r.Kern, t3); c > maxPipe {
				maxPipe = c
			}
		}
		return WaveCount(total, lib.HW.NumPEs) * maxPipe
	}
	var sum float64
	for _, r := range prog.Regions {
		_, _, t3 := r.Tiles()
		sum += WaveCount(r.Tasks(), lib.HW.NumPEs) * lib.PredictTask(r.Kern, t3)
	}
	return sum
}
